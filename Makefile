.PHONY: check build vet test race bench bench-smoke

# The full pre-merge gate: build everything, vet, and run the test
# suite under the race detector (the parallel scan and copy-on-write
# Refresh are exercised concurrently in the tests).
check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem

# One pass over the hot-path benchmark — enough to catch an
# accidentally-instrumented fast path (the no-sink overhead budget is
# ≤2% on BenchmarkSuggest) without the cost of a full bench run.
bench-smoke:
	go test -run='^$$' -bench='^BenchmarkSuggest$$' -benchtime=1x .
