.PHONY: check build vet test race bench

# The full pre-merge gate: build everything, vet, and run the test
# suite under the race detector (the parallel scan and copy-on-write
# Refresh are exercised concurrently in the tests).
check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem
