.PHONY: check build fmt vet test race bench bench-smoke bench-json bench-gate fuzz-smoke snapshot-smoke mmap-smoke cluster-smoke replica-smoke shed-smoke trace-smoke ingest-smoke

# The full pre-merge gate: gofmt cleanliness, build everything, vet,
# run the test suite under the race detector (the parallel scan and
# copy-on-write Refresh are exercised concurrently in the tests), and
# give the binary-format fuzz targets a short bounded run.
check: fmt build vet race fuzz-smoke

build:
	go build ./...

# Fail if any file needs reformatting (gofmt -l prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem

# One pass over the hot-path benchmark — enough to catch an
# accidentally-instrumented fast path (the no-sink overhead budget is
# ≤2% on BenchmarkSuggest) without the cost of a full bench run.
bench-smoke:
	go test -run='^$$' -bench='^BenchmarkSuggest$$' -benchtime=1x .

# Bounded fuzz pass over the untrusted-bytes decoders: the snapshot
# split-posting-list decoder and the whole snapfile open path.
# Truncation, flipped bytes, and oversized varints must error — never
# panic, never allocate proportionally to an unvalidated count.
# -fuzzminimizetime is capped because the default 60s-per-input
# minimization starves the fuzz loop on small CI machines.
FUZZTIME ?= 10s
fuzz-smoke:
	go test -run='^$$' -fuzz='^FuzzListOverPayload$$' -fuzztime=$(FUZZTIME) \
		-fuzzminimizetime=5x ./internal/postings
	go test -run='^$$' -fuzz='^FuzzOpen$$' -fuzztime=$(FUZZTIME) \
		-fuzzminimizetime=5x ./internal/snapfile

# End-to-end mmap warm-start smoke test: build a corpus, flush it to a
# .seg snapshot, reopen via mmap, and assert open latency ≪ cold build
# (and under an absolute millisecond budget) plus byte-identical
# suggestions, including through the -no-mmap fallback.
mmap-smoke:
	./scripts/mmap_smoke.sh

# End-to-end snapshot round trip: generate a corpus, build and save
# its index, then answer a query from the reopened snapshot — the same
# persistence path the catalog's warm-starts use.
snapshot-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	go run ./cmd/xgen -out "$$tmp/corpus.xml" -kind dblp -articles 500 -queries 1 && \
	go run ./cmd/xclean -doc "$$tmp/corpus.xml" -save-index "$$tmp/corpus.idx" && \
	q=$$(head -1 "$$tmp/corpus.xml.queries.tsv" | cut -f2) && \
	go run ./cmd/xclean -index "$$tmp/corpus.idx" "$$q" && \
	echo "snapshot-smoke: OK"

# Machine-readable perf snapshot: run the latency-bearing experiments
# at a small corpus size and append a BENCH_<date>.json trajectory
# file (median/p95 latency, throughput per experiment).
bench-json:
	go run ./cmd/xbench -exp table6,workers -dblp 5000 -wiki 500 -queries 20 \
		-json BENCH_$$(date +%Y%m%d).json

# Perf regression gate: rerun the latency-bearing experiments and
# compare against the newest committed BENCH_*.json checkpoint via
# benchgate. The corpus parameters must match the checkpoint's (same
# -dblp/-wiki/-queries/-seed) or mean latencies are not comparable.
# Three runs are taken and each record is scored on its best one —
# load noise is one-sided, so min-of-N strips contention spikes.
# TOLERANCE stays loose (+100%) because the checkpoint was recorded on
# different hardware than CI: the gate catches order-of-magnitude
# mistakes (an accidentally quadratic path, a lost index), not
# single-digit drift — interleaved A/B go-bench runs and the committed
# checkpoints are the precise record.
TOLERANCE ?= 1.0
BENCH_GATE_RUNS ?= 3
bench-gate:
	@base=$$(ls BENCH_*.json | sort -V | tail -1) && \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	echo "bench-gate: baseline $$base ($(BENCH_GATE_RUNS) candidate runs)" && \
	for i in $$(seq $(BENCH_GATE_RUNS)); do \
		go run ./cmd/xbench -exp table6,workers -dblp 5000 -wiki 500 -queries 20 \
			-json "$$tmp/bench$$i.json" >/dev/null || exit 1; done && \
	go run ./cmd/benchgate -base "$$base" -new "$$tmp/bench1.json" -tolerance $(TOLERANCE) \
		$$(for i in $$(seq 2 $(BENCH_GATE_RUNS)); do printf '%s ' "$$tmp/bench$$i.json"; done)

# End-to-end scatter-gather smoke test: 2 shard servers + 1
# coordinator on loopback; a healthy query must be complete, and a
# query after killing one shard must degrade to "partial": true.
cluster-smoke:
	./scripts/cluster_smoke.sh

# End-to-end replica-failover drill: 2 shards x 2 replicas + a
# standalone reference + 1 coordinator; a Go loader sustains mixed
# GET/batched-POST load while one replica of each shard is killed, and
# asserts zero "partial": true answers and 1e-12 score parity with the
# reference throughout.
replica-smoke:
	./scripts/replica_smoke.sh

# End-to-end admission-control smoke test: saturate an xserve running
# with -max-inflight 1 -max-queue 0 and assert a 429 shed with
# Retry-After and the JSON error envelope, then a 200 after the burst.
shed-smoke:
	./scripts/shed_smoke.sh

# End-to-end distributed-tracing smoke test: 2 shard servers (one
# artificially slowed with -inject-delay) + 1 tracing coordinator; the
# tail sampler must retain the slow trace and /tracez?id= must serve
# the stitched coordinator → shard-attempt → shard-stage span tree.
trace-smoke:
	./scripts/trace_smoke.sh

# End-to-end live-ingest smoke test: stream document additions and
# removals through /corpora admin actions while a query loop runs,
# asserting zero query errors, no stale cache answers, at least one
# completed background compaction, and a clean flush to one segment.
ingest-smoke:
	./scripts/ingest_smoke.sh
