package xclean

import (
	"strings"
	"testing"
)

func TestWitnessAndPreview(t *testing.T) {
	e := openSample(t, Options{StoreText: true})
	sugs := e.Suggest("rose architecure fpga")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	top := sugs[0]
	if top.Witness == "" {
		t.Fatal("missing witness")
	}
	preview := e.Preview(top, 200)
	// The witness entity must actually contain the suggested keywords —
	// the non-empty-result guarantee made visible.
	for _, w := range []string{"rose", "architecture", "fpga"} {
		if !strings.Contains(preview, w) {
			t.Errorf("preview %q missing %q", preview, w)
		}
	}
	// Truncation.
	short := e.Preview(top, 5)
	if len([]rune(strings.TrimSuffix(short, "…"))) > 5 {
		t.Errorf("truncated preview too long: %q", short)
	}
}

func TestPreviewWithoutStoreText(t *testing.T) {
	e := openSample(t, Options{})
	sugs := e.Suggest("rose architecure fpga")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if got := e.Preview(sugs[0], 100); got != "" {
		t.Errorf("preview %q without StoreText", got)
	}
	if got := e.Preview(Suggestion{}, 100); got != "" {
		t.Errorf("preview %q for empty suggestion", got)
	}
	if got := e.Preview(Suggestion{Witness: "not-a-dewey"}, 100); got != "" {
		t.Errorf("preview %q for bad witness", got)
	}
}

func TestWitnessUnderAllSemantics(t *testing.T) {
	for _, sem := range []Semantics{SemanticsResultType, SemanticsSLCA, SemanticsELCA} {
		e := openSample(t, Options{Semantics: sem, StoreText: true})
		sugs := e.Suggest("rose architecure")
		if len(sugs) == 0 {
			t.Fatalf("semantics %d: no suggestions", sem)
		}
		if sugs[0].Witness == "" {
			t.Errorf("semantics %d: missing witness", sem)
		}
		if p := e.Preview(sugs[0], 100); p == "" {
			t.Errorf("semantics %d: empty preview", sem)
		}
	}
}
