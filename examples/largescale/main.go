// Largescale: index a corpus the memory-frugal way — streaming
// construction (no materialized tree) plus block-compressed posting
// lists — and compare footprint and query latency against the default
// path. This is the configuration for documents in the paper's INEX
// class (multi-GB), scaled to run in seconds.
//
//	go run ./examples/largescale
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"xclean"
	"xclean/internal/dataset"
)

func heapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

func main() {
	const articles = 15000
	corpus := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 13, Articles: articles})
	var xmlDoc strings.Builder
	if _, err := corpus.Tree.WriteXML(&xmlDoc); err != nil {
		log.Fatal(err)
	}
	doc := xmlDoc.String()
	queries := corpus.SampleQueries(14, 25)
	corpus = nil // the generator's tree is no longer needed

	fmt.Printf("corpus: %d articles, %.1f MB of XML\n\n", articles,
		float64(len(doc))/(1<<20))

	type variant struct {
		name string
		open func() (*xclean.Engine, error)
	}
	variants := []variant{
		{"tree build, raw postings", func() (*xclean.Engine, error) {
			return xclean.Open(strings.NewReader(doc), xclean.Options{MaxErrors: 2})
		}},
		{"streaming build, compressed postings", func() (*xclean.Engine, error) {
			return xclean.OpenStreaming(strings.NewReader(doc),
				xclean.Options{MaxErrors: 2, CompactPostings: true})
		}},
	}

	for _, v := range variants {
		before := heapMB()
		t0 := time.Now()
		eng, err := v.open()
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(t0)
		after := heapMB()

		// Query latency over perturbed clean queries.
		var worst, total time.Duration
		for _, q := range queries {
			dirty := q[:len(q)-1] + "z"
			t0 := time.Now()
			sugs := eng.Suggest(dirty)
			d := time.Since(t0)
			total += d
			if d > worst {
				worst = d
			}
			if len(sugs) == 0 {
				log.Fatalf("%s: no suggestion for %q", v.name, dirty)
			}
		}
		fmt.Printf("%s\n", v.name)
		fmt.Printf("  build %v, resident ≈ %.0f MB\n", buildTime.Round(time.Millisecond), after-before)
		fmt.Printf("  query mean %v, worst %v over %d queries\n\n",
			(total / time.Duration(len(queries))).Round(time.Microsecond),
			worst.Round(time.Microsecond), len(queries))
		runtime.KeepAlive(eng)
	}
}
