// Bibliography search with query cleaning — the paper's DBLP scenario.
//
// A data-centric bibliography is generated, dirty queries in the style
// of Section VII-A are derived, and XClean's suggestions are compared
// against the PY08 baseline so the scoring-bias discussion of Section
// II can be observed on live data.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"

	"xclean"
	"xclean/internal/baseline"
	"xclean/internal/core"
	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/queryset"
	"xclean/internal/tokenizer"
)

func main() {
	corpus := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 7, Articles: 10000})
	ix := invindex.Build(corpus.Tree, tokenizer.Options{})
	eng := xclean.FromIndex(ix, xclean.Options{MaxErrors: 2, TopK: 3})
	py := baseline.NewPY08(ix, core.Config{Epsilon: 2, K: 3})

	st := eng.Stats()
	fmt.Printf("bibliography: %d nodes, %d terms\n\n", st.Nodes, st.DistinctTerms)

	clean := corpus.SampleQueries(11, 8)
	pert := queryset.NewPerturber(13, ix.Vocab)

	for _, cq := range clean {
		dirty, ok := pert.Rand(cq)
		if !ok {
			continue
		}
		fmt.Printf("dirty : %s\n", dirty)
		fmt.Printf("truth : %s\n", cq)
		if sugs := eng.Suggest(dirty); len(sugs) > 0 {
			fmt.Printf("XClean: %s  (%d entities of type %s)\n",
				sugs[0].Query, sugs[0].Entities, sugs[0].ResultType)
		} else {
			fmt.Println("XClean: no valid suggestion")
		}
		if sugs := py.Suggest(dirty); len(sugs) > 0 {
			fmt.Printf("PY08  : %s\n", sugs[0].Query())
		}
		fmt.Println()
	}
}
