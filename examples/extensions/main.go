// Extensions: a tour of everything beyond the paper's core algorithm —
// space errors (Sec. VI-A), phonetic and synonym variants (Sec. VI-A),
// SLCA/ELCA semantics (Sec. VI-B and beyond), the bigram coherence
// factor, entity priors, compressed postings, incremental document
// addition, and result previews.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"
	"strings"

	"xclean"
)

const corpus = `<catalog>
  <product>
    <name>powerpoint presentation templates</name>
    <blurb>professional slides for business presentations</blurb>
  </product>
  <product>
    <name>health insurance policy builder</name>
    <blurb>compare health insurance plans and premiums</blurb>
  </product>
  <product>
    <name>health insurance claims assistant</name>
    <blurb>track health insurance claims status easily</blurb>
  </product>
  <product>
    <name>instance health</name>
  </product>
  <product>
    <name>smith forecasting engine</name>
    <blurb>time series prediction by smyth methods</blurb>
  </product>
</catalog>`

func open(opts xclean.Options) *xclean.Engine {
	eng, err := xclean.Open(strings.NewReader(corpus), opts)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func show(title, query string, sugs []xclean.Suggestion) {
	fmt.Printf("%s\n  query: %q\n", title, query)
	if len(sugs) == 0 {
		fmt.Println("  (no valid suggestion)")
		return
	}
	for i, s := range sugs {
		if i >= 2 {
			break
		}
		fmt.Printf("  %d. %s\n", i+1, s.Query)
	}
}

func main() {
	// 1. Space errors (Section VI-A): "power point" → "powerpoint".
	e := open(xclean.Options{})
	show("1. space errors", "power point", e.SuggestWithSpaces("power point"))

	// 2. Phonetic (cognitive) errors: "helth inshurance" is 2-3 edits
	// out, but Soundex-equal to the intended words.
	e = open(xclean.Options{PhoneticMatching: true})
	show("\n2. phonetic matching", "inshurance premums",
		e.Suggest("inshurance premums"))

	// 3. Synonyms from a small thesaurus.
	e = open(xclean.Options{Synonyms: map[string][]string{
		"meeting": {"presentation", "presentations"},
	}})
	show("\n3. synonyms", "business meeting", e.Suggest("business meeting"))

	// 4. Bigram coherence: "health instance" combines frequent words,
	// but only "health insurance" is an attested phrase.
	plain := open(xclean.Options{MaxErrors: 2, ErrorPenalty: -1, Smoothing: 1})
	bigram := open(xclean.Options{MaxErrors: 2, ErrorPenalty: -1, Smoothing: 1,
		BigramCoherence: true})
	q := "health insurnce"
	show("\n4a. unigram only", q, plain.Suggest(q))
	show("4b. with bigram coherence", q, bigram.Suggest(q))

	// 5. Previews: the witness entity makes the non-empty-result
	// guarantee tangible.
	e = open(xclean.Options{StoreText: true})
	sugs := e.Suggest("helth insurance")
	if len(sugs) > 0 {
		fmt.Printf("\n5. previews\n  query: %q\n  1. %s\n     witness %s: %.60s…\n",
			"helth insurance", sugs[0].Query, sugs[0].Witness,
			e.Preview(sugs[0], 60))
	}

	// 6. Incremental growth: new vocabulary is searchable immediately.
	e = open(xclean.Options{})
	if got := e.Suggest("quantum toolkit"); got == nil {
		fmt.Println("\n6. incremental add\n  before: no results for \"quantum toolkit\"")
	}
	err := e.AddDocument(strings.NewReader(
		`<product><name>quantum computing toolkit</name></product>`))
	if err != nil {
		log.Fatal(err)
	}
	show("  after AddDocument", "quantun toolkit", e.Suggest("quantun toolkit"))

	// 7. Semantics: the same dirty query under all three entity
	// decompositions.
	for _, sem := range []struct {
		name string
		s    xclean.Semantics
	}{
		{"result-type", xclean.SemanticsResultType},
		{"SLCA", xclean.SemanticsSLCA},
		{"ELCA", xclean.SemanticsELCA},
	} {
		e := open(xclean.Options{Semantics: sem.s})
		sugs := e.Suggest("smith forcasting")
		top := "(none)"
		if len(sugs) > 0 {
			top = sugs[0].Query
		}
		fmt.Printf("\n7. %-11s top: %s", sem.name, top)
	}
	fmt.Println()

	// 8. Compressed postings: identical answers, smaller index.
	compact := open(xclean.Options{CompactPostings: true})
	show("\n8. compressed postings", "powerpint templates",
		compact.Suggest("powerpint templates"))
}
