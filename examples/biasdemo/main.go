// Figure 1 of the paper, runnable: the PY08 scoring function prefers
// the rare, disconnected token "instance" to the frequent, connected
// "insurance" for the query "health insurance", while XClean's
// result-quality scoring keeps the right answer and refuses to suggest
// the root-only-connected alternative at all.
//
//	go run ./examples/biasdemo
package main

import (
	"fmt"
	"strings"

	"xclean"
	"xclean/internal/baseline"
	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func main() {
	// Build Figure 1's corpus: many records pairing health+insurance,
	// one unrelated note containing the rare word "instance".
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 8; i++ {
		b.WriteString("<record><title>health insurance policy</title>")
		b.WriteString("<body>national health insurance coverage details</body></record>")
	}
	b.WriteString("<note><text>instance</text></note></db>")

	tree, err := xmltree.Parse(strings.NewReader(b.String()))
	if err != nil {
		panic(err)
	}
	ix := invindex.Build(tree, tokenizer.Options{})

	query := "health insurance"
	fmt.Printf("query: %q\n", query)
	fmt.Printf("df(insurance)=%d (frequent, co-occurs with health)\n", ix.DocFreq("insurance"))
	fmt.Printf("df(instance)=%d (rare, connected to health only via the root)\n\n", ix.DocFreq("instance"))

	py := baseline.NewPY08(ix, core.Config{Epsilon: 2, K: 3})
	fmt.Println("PY08 (max-tfidf per keyword — rare-token bias):")
	for i, s := range py.Suggest(query) {
		fmt.Printf("  %d. %s\n", i+1, s.Query())
	}

	eng := xclean.FromIndex(ix, xclean.Options{MaxErrors: 2, TopK: 3})
	fmt.Println("\nXClean (result-quality scoring):")
	for i, s := range eng.Suggest(query) {
		fmt.Printf("  %d. %-20s entities=%d type=%s\n", i+1, s.Query, s.Entities, s.ResultType)
	}
	fmt.Println("\nnote: 'health instance' is absent from XClean's list — it has no")
	fmt.Println("connected result below the root, so it is never suggested.")
}
