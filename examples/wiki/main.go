// Document-centric search — the paper's INEX/Wikipedia scenario.
//
// Demonstrates (1) cleaning over deep, prose-heavy XML, (2) the
// result-type vs SLCA semantics comparison of Section VI-B, and
// (3) the space-error extension of Section VI-A.
//
//	go run ./examples/wiki
package main

import (
	"fmt"

	"xclean"
	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/queryset"
	"xclean/internal/tokenizer"
)

func main() {
	corpus := dataset.GenerateWiki(dataset.WikiConfig{Seed: 3, Articles: 1500})
	ix := invindex.Build(corpus.Tree, tokenizer.Options{})

	typeEng := xclean.FromIndex(ix, xclean.Options{MaxErrors: 2, TopK: 3})
	slcaEng := xclean.FromIndex(ix, xclean.Options{
		MaxErrors: 2, TopK: 3, Semantics: xclean.SemanticsSLCA,
	})

	st := typeEng.Stats()
	fmt.Printf("wiki collection: %d nodes, max depth %d, %d terms\n\n",
		st.Nodes, st.MaxDepth, st.DistinctTerms)

	pert := queryset.NewPerturber(5, ix.Vocab)
	for _, cq := range corpus.SampleQueries(9, 6) {
		dirty, ok := pert.Rand(cq)
		if !ok {
			continue
		}
		fmt.Printf("dirty : %s   (truth: %s)\n", dirty, cq)
		if s := typeEng.Suggest(dirty); len(s) > 0 {
			fmt.Printf("  type semantics : %s  -> %d entities of %s\n",
				s[0].Query, s[0].Entities, s[0].ResultType)
		} else {
			fmt.Println("  type semantics : no suggestion")
		}
		if s := slcaEng.Suggest(dirty); len(s) > 0 {
			fmt.Printf("  SLCA semantics : %s  -> %d SLCA entities\n",
				s[0].Query, s[0].Entities)
		} else {
			fmt.Println("  SLCA semantics : no suggestion")
		}
		fmt.Println()
	}

	// Space errors (Section VI-A): the corpus indexes e.g. "greenland";
	// a user typing "green land" gets the merged form suggested.
	fmt.Println("space-error cleaning:")
	for _, q := range []string{"green land glacier", "ice land"} {
		sugs := typeEng.SuggestWithSpaces(q)
		if len(sugs) == 0 {
			fmt.Printf("  %-22s -> no suggestion\n", q)
			continue
		}
		fmt.Printf("  %-22s -> %s\n", q, sugs[0].Query)
	}
}
