// Server: run the XClean "Did you mean" HTTP service on a generated
// bibliography, exercise it with a client (suggestions with previews,
// clicks, top queries), and shut down gracefully — the online
// deployment the paper's introduction motivates.
//
//	go run ./examples/server
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"xclean"
	"xclean/internal/dataset"
	"xclean/internal/qlog"
	"xclean/internal/server"
	"xclean/internal/tokenizer"
)

func main() {
	// A seeded 2000-article bibliography stands in for DBLP.
	corpus := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 7, Articles: 2000})
	eng := xclean.FromTree(corpus.Tree, xclean.Options{
		MaxErrors: 2,
		TopK:      3,
		StoreText: true, // enable ?preview=1
	})
	st := eng.Stats()
	fmt.Printf("indexed %d nodes, %d terms\n", st.Nodes, st.DistinctTerms)

	queryLog := qlog.New(tokenizer.Options{})
	srv := server.New(eng, server.Config{QueryLog: queryLog})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	fmt.Printf("serving on %s\n\n", base)

	// Pick a real clean query from the corpus and dirty it up.
	clean := corpus.SampleQueries(8, 1)[0]
	dirty := clean[:len(clean)-1] + "x" // inject one trailing typo

	fmt.Printf("GET /suggest?q=%q&preview=1\n", dirty)
	var sr server.SuggestResponse
	getJSON(base+"/suggest?preview=1&q="+urlEscape(dirty), &sr)
	for i, s := range sr.Suggestions {
		fmt.Printf("  %d. %-40s witness=%s\n", i+1, s.Query, s.Witness)
		if s.Preview != "" {
			fmt.Printf("     preview: %.70s\n", s.Preview)
		}
	}

	// The user clicks the top suggestion's witness entity.
	if len(sr.Suggestions) > 0 {
		w := sr.Suggestions[0].Witness
		resp, err := http.Post(base+"/click?entity="+w, "", nil)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("\nPOST /click?entity=%s -> %s\n", w, resp.Status)
	}

	// Popularity surfaces in the query log.
	var top []qlog.QueryFreq
	getJSON(base+"/topqueries?n=3", &top)
	fmt.Println("\nGET /topqueries:")
	for _, row := range top {
		fmt.Printf("  %4d  %s\n", row.Count, row.Query)
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		log.Fatal("shutdown timed out")
	}
	q, c := queryLog.Len()
	fmt.Printf("\nshut down cleanly; query log holds %d queries, %d clicked entities\n", q, c)
}

func getJSON(url string, v interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func urlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '+')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
