// Quickstart: index a small XML document and clean a few misspelt
// keyword queries using only the public xclean API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"xclean"
)

const bibliography = `<dblp>
  <article>
    <author>hinrich schutze</author>
    <title>introduction to information retrieval</title>
    <year>2008</year>
  </article>
  <article>
    <author>hinrich schutze</author>
    <title>automatic geo tagging of text documents</title>
    <year>2009</year>
  </article>
  <article>
    <author>jonathan rose</author>
    <title>fpga architecture synthesis and routing</title>
    <year>2001</year>
  </article>
  <article>
    <author>mary fisher</author>
    <title>keyword search over xml databases</title>
    <year>2007</year>
  </article>
</dblp>`

func main() {
	eng, err := xclean.Open(strings.NewReader(bibliography), xclean.Options{
		MaxErrors: 2, // allow up to two typos per keyword
		TopK:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("indexed %d nodes, %d distinct terms\n\n", st.Nodes, st.DistinctTerms)

	queries := []string{
		"schutze geo taging",     // Section I's motivating typo
		"rose architecure fpga",  // keyboard slip
		"keyward search databse", // two dirty keywords
		"fisher xml search",      // already clean: suggested as-is
	}
	for _, q := range queries {
		fmt.Printf("query: %q\n", q)
		sugs := eng.Suggest(q)
		if len(sugs) == 0 {
			fmt.Println("  no valid suggestion")
			continue
		}
		for i, s := range sugs {
			fmt.Printf("  %d. %-35s (results in %d %s entities)\n",
				i+1, s.Query, s.Entities, s.ResultType)
		}
		fmt.Println()
	}
}
