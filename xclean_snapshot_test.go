package xclean

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"xclean/internal/dataset"
)

// reopen round-trips an engine through SaveIndex → OpenIndex, the
// persistence path the catalog's snapshot warm-starts rely on.
func reopen(t *testing.T, e *Engine, opts Options) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatalf("save index: %v", err)
	}
	re, err := OpenIndex(&buf, opts)
	if err != nil {
		t.Fatalf("reopen index: %v", err)
	}
	return re
}

// TestSnapshotDifferentialSample asserts a saved-and-reopened index is
// observably identical to the live engine it came from: same stats and
// the same ranked suggestions (queries, words, scores, witnesses) for
// clean, misspelled, and space-error inputs.
func TestSnapshotDifferentialSample(t *testing.T) {
	opts := Options{StoreText: true}
	live := openSample(t, opts)
	snap := reopen(t, live, opts)

	if !reflect.DeepEqual(live.Stats(), snap.Stats()) {
		t.Errorf("stats diverge: live %+v snapshot %+v", live.Stats(), snap.Stats())
	}
	queries := []string{
		"rose architecure fpga", // misspelling
		"databse indexing",      // misspelling
		"keyword search",        // clean
		"data base indexing",    // space error
		"zzz nothing here",      // no match
	}
	for _, q := range queries {
		if got, want := snap.Suggest(q), live.Suggest(q); !reflect.DeepEqual(got, want) {
			t.Errorf("Suggest(%q) diverges:\nlive: %+v\nsnap: %+v", q, want, got)
		}
		if got, want := snap.SuggestWithSpaces(q), live.SuggestWithSpaces(q); !reflect.DeepEqual(got, want) {
			t.Errorf("SuggestWithSpaces(%q) diverges:\nlive: %+v\nsnap: %+v", q, want, got)
		}
	}
}

// TestSnapshotDifferentialGenerated repeats the differential check at
// scale: a generated DBLP corpus and its own sampled query workload.
func TestSnapshotDifferentialGenerated(t *testing.T) {
	gen := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 7, Articles: 500})
	var xml bytes.Buffer
	if _, err := gen.Tree.WriteXML(&xml); err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	live, err := Open(strings.NewReader(xml.String()), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reopen(t, live, opts)

	if !reflect.DeepEqual(live.Stats(), snap.Stats()) {
		t.Errorf("stats diverge: live %+v snapshot %+v", live.Stats(), snap.Stats())
	}
	for _, q := range gen.SampleQueries(3, 25) {
		if got, want := snap.Suggest(q), live.Suggest(q); !reflect.DeepEqual(got, want) {
			t.Errorf("Suggest(%q) diverges:\nlive: %+v\nsnap: %+v", q, want, got)
		}
	}
}
