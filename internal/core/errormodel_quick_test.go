package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xclean/internal/fastss"
)

// TestErrorModelNormalizedQuick: for any variant set, the error-model
// weights form a probability distribution over var_ε(q), weights are
// non-increasing in edit distance, and a larger β concentrates more
// mass on the closest variants (Eq. (4)).
func TestErrorModelNormalizedQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		matches := make([]fastss.Match, n)
		for i := range matches {
			matches[i] = fastss.Match{
				Word: string(rune('a' + i)),
				Dist: r.Intn(4),
			}
		}
		beta := float64(1 + r.Intn(10))
		kw := ErrorModel{Beta: beta}.Keyword("q", matches)

		var sum float64
		for _, v := range kw.Variants {
			if v.Weight < 0 || v.Weight > 1 {
				return false
			}
			sum += v.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Monotone: smaller distance never gets less weight.
		for i := range kw.Variants {
			for j := range kw.Variants {
				if kw.Variants[i].Dist < kw.Variants[j].Dist &&
					kw.Variants[i].Weight < kw.Variants[j].Weight-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorModelBetaConcentration(t *testing.T) {
	matches := []fastss.Match{
		{Word: "near", Dist: 0},
		{Word: "far", Dist: 2},
	}
	low := ErrorModel{Beta: 1}.Keyword("q", matches)
	high := ErrorModel{Beta: 8}.Keyword("q", matches)
	if high.Variants[0].Weight <= low.Variants[0].Weight {
		t.Errorf("β=8 mass on d=0 (%g) should exceed β=1 (%g)",
			high.Variants[0].Weight, low.Variants[0].Weight)
	}
	zero := ErrorModel{Beta: -1}.Keyword("q", matches) // literal β=0
	if math.Abs(zero.Variants[0].Weight-0.5) > 1e-12 {
		t.Errorf("β=0 should be uniform, got %g", zero.Variants[0].Weight)
	}
}

func TestErrorModelEmptyVariants(t *testing.T) {
	kw := ErrorModel{}.Keyword("q", nil)
	if len(kw.Variants) != 0 || kw.Raw != "q" {
		t.Errorf("kw=%+v", kw)
	}
}
