package core

import (
	"reflect"
	"sync"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/obs"
	"xclean/internal/tokenizer"
)

// explainEngine builds an engine over the bias tree, which is rich
// enough to exercise the full pipeline (variants, cache hits,
// multi-subtree scans).
func explainEngine(cfg Config) *Engine {
	ix := invindex.Build(biasTree(), tokenizer.Options{})
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 2
	}
	return NewEngine(ix, cfg)
}

func TestExplainSpansSumToTotal(t *testing.T) {
	e := explainEngine(Config{Workers: 1})
	out, ex := e.SuggestExplained("health insurence")
	if len(out) == 0 {
		t.Fatal("no suggestions")
	}
	if ex == nil {
		t.Fatal("nil explain")
	}
	if len(ex.Spans) == 0 {
		t.Fatal("no spans")
	}
	var sum int64
	for _, sp := range ex.Spans {
		if sp.DurationNs < 0 {
			t.Errorf("negative span %+v", sp)
		}
		sum += sp.DurationNs
	}
	// With one worker the stages partition the call: their sum must
	// account for most of the wall clock (dispatch overhead is the
	// remainder) and can never exceed it by more than clock jitter.
	if sum > ex.TookNs+int64(ex.TookNs/5) {
		t.Errorf("spans sum %dns exceeds total %dns", sum, ex.TookNs)
	}
	if sum < ex.TookNs/2 {
		t.Errorf("spans sum %dns accounts for under half of total %dns", sum, ex.TookNs)
	}
}

func TestExplainContents(t *testing.T) {
	e := explainEngine(Config{})
	out, ex := e.SuggestExplained("health insurence")
	if ex.Query != "health insurence" {
		t.Errorf("query %q", ex.Query)
	}
	if len(ex.Keywords) != 2 {
		t.Fatalf("keyword count %d", len(ex.Keywords))
	}
	for _, kw := range ex.Keywords {
		if kw.Variants < 1 {
			t.Errorf("keyword %q has %d variants", kw.Token, kw.Variants)
		}
	}
	if len(ex.Candidates) != len(out) {
		t.Fatalf("candidate table %d rows, %d suggestions", len(ex.Candidates), len(out))
	}
	for i, c := range ex.Candidates {
		if c.Score != out[i].Score || c.ResultType == "" {
			t.Errorf("candidate %d = %+v vs suggestion %+v", i, c, out[i])
		}
	}
	st := ex.Stats
	if st.CandidatesSeen == 0 || st.Subtrees == 0 {
		t.Errorf("work counters empty: %+v", st)
	}
	// Every candidate observation either hit or missed the type cache.
	if st.TypeCacheHits+st.TypeComputations != st.CandidatesSeen {
		t.Errorf("hits %d + misses %d != candidates %d",
			st.TypeCacheHits, st.TypeComputations, st.CandidatesSeen)
	}
	if st.TypeCacheHits == 0 {
		t.Error("no type-cache hits on a repetitive corpus")
	}
}

func TestExplainMatchesSuggest(t *testing.T) {
	e := explainEngine(Config{})
	plain := e.Suggest("health insurence")
	traced, _ := e.SuggestExplained("health insurence")
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("explain changed results:\n%v\n%v", plain, traced)
	}
}

func TestWorkerSubtreesAggregate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := explainEngine(Config{Workers: workers})
		_, st := e.SuggestDetailed("health insurence")
		if len(st.WorkerSubtrees) != workers {
			t.Fatalf("Workers=%d: %d shard entries", workers, len(st.WorkerSubtrees))
		}
		sum := 0
		for _, n := range st.WorkerSubtrees {
			sum += n
		}
		if sum != st.Subtrees {
			t.Errorf("Workers=%d: shard subtrees sum %d != total %d", workers, sum, st.Subtrees)
		}
	}
}

func TestSinkCountersMatchStats(t *testing.T) {
	e := explainEngine(Config{})
	sink := obs.NewSink()
	e.SetSink(sink)
	_, st := e.SuggestDetailed("health insurence")

	if got := sink.Queries.Value(); got != 1 {
		t.Errorf("queries = %d", got)
	}
	if got := sink.PostingsRead.Value(); got != int64(st.PostingsRead) {
		t.Errorf("postings %d != stats %d", got, st.PostingsRead)
	}
	if got := sink.Subtrees.Value(); got != int64(st.Subtrees) {
		t.Errorf("subtrees %d != stats %d", got, st.Subtrees)
	}
	if got := sink.CandidatesSeen.Value(); got != int64(st.CandidatesSeen) {
		t.Errorf("candidates %d != stats %d", got, st.CandidatesSeen)
	}
	if got := sink.TypeCacheHits.Value(); got != int64(st.TypeCacheHits) {
		t.Errorf("cache hits %d != stats %d", got, st.TypeCacheHits)
	}
	if got := sink.TypeCacheMisses.Value(); got != int64(st.TypeComputations) {
		t.Errorf("cache misses %d != stats %d", got, st.TypeComputations)
	}
	if got := sink.QueryDur.Count(); got != 1 {
		t.Errorf("latency observations = %d", got)
	}
	// The scan stage must have been timed for the one call.
	if got := sink.Stage[obs.StageScan].Count(); got != 1 {
		t.Errorf("scan stage observations = %d", got)
	}
}

func TestSinkSurvivesRefresh(t *testing.T) {
	e := explainEngine(Config{})
	sink := obs.NewSink()
	e.SetSink(sink)
	ne := e.Refresh(nil)
	if ne.Sink() != sink {
		t.Error("sink dropped across Refresh")
	}
}

func TestSinkResultsIdentical(t *testing.T) {
	plain := explainEngine(Config{})
	observed := explainEngine(Config{})
	observed.SetSink(obs.NewSink())
	for _, q := range []string{"health insurence", "helth insurance", "coverage detials"} {
		a := plain.Suggest(q)
		b := observed.Suggest(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q: sink changed results:\n%v\n%v", q, a, b)
		}
	}
}

func TestSpaceSearchExplained(t *testing.T) {
	e := explainEngine(Config{Workers: 2})
	e.SetSink(obs.NewSink())
	out, ex := e.SuggestWithSpacesExplained("health insurence")
	if len(out) == 0 || ex == nil {
		t.Fatalf("out=%v ex=%v", out, ex)
	}
	want := e.SuggestWithSpaces("health insurence")
	if !reflect.DeepEqual(out, want) {
		t.Errorf("explained space search changed results")
	}
	if len(ex.Spans) == 0 || len(ex.Keywords) == 0 {
		t.Errorf("trace empty: %+v", ex)
	}
}

// TestConcurrentSuggestSharedSink is the engine-level race test: many
// goroutines suggesting through one sink (run under -race).
func TestConcurrentSuggestSharedSink(t *testing.T) {
	e := explainEngine(Config{Workers: 2})
	sink := obs.NewSink()
	e.SetSink(sink)
	queries := []string{"health insurence", "helth insurance", "coverage detials", "policy healt"}
	var wg sync.WaitGroup
	const per = 10
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				e.Suggest(queries[(i+j)%len(queries)])
			}
		}(i)
	}
	wg.Wait()
	if got := sink.Queries.Value(); got != 4*per {
		t.Errorf("queries = %d, want %d", got, 4*per)
	}
}
