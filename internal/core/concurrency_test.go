package core

import (
	"reflect"
	"sync"
	"testing"
)

// Engines must be safe for concurrent Suggest calls (run under -race
// in CI).
func TestConcurrentSuggest(t *testing.T) {
	e := paperEngine(Config{})
	want := e.Suggest("tree icdt")

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, st := e.SuggestDetailed("tree icdt")
				if !reflect.DeepEqual(got, want) {
					errs <- "result mismatch under concurrency"
					return
				}
				if st.Subtrees != 3 {
					errs <- "stats mismatch under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
