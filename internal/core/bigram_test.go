package core

import (
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// bigramTree recreates the Figure 1 tension with connectivity intact:
// "health insurance" is an attested phrase in three entities, while
// one short entity contains "instance health" (both words, reversed
// order). The unigram model's rare-token and short-document effects
// make "health instance" win; the bigram coherence factor restores
// "health insurance".
func bigramTree() *invindex.Index {
	tr := xmltree.NewTree("db")
	for i := 0; i < 3; i++ {
		rec := tr.AddChild(tr.Root, "rec", "")
		tr.AddChild(rec, "f", "health insurance claims processing today")
	}
	rec := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(rec, "f", "instance health")
	return invindex.Build(tr, tokenizer.Options{})
}

func TestBigramFlipsFigure1Scenario(t *testing.T) {
	ix := bigramTree()
	// β→0 gives both corrections equal error weight (insurance is at
	// distance 1, instance at 2); μ=1 sharpens document-length effects.
	base := Config{Epsilon: 2, Beta: -1, Mu: 1}

	uni := NewEngine(ix, base)
	sugs := uni.Suggest("health insurnce")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if got := sugs[0].Query(); got != "health instance" {
		t.Fatalf("unigram top=%q; the fixture should make the rare-token candidate win", got)
	}

	biCfg := base
	biCfg.Bigram = true
	bi := NewEngine(ix, biCfg)
	sugs = bi.Suggest("health insurnce")
	if len(sugs) == 0 {
		t.Fatal("no suggestions with bigram")
	}
	if got := sugs[0].Query(); got != "health insurance" {
		t.Fatalf("bigram top=%q want %q", got, "health insurance")
	}
}

// TestBigramSingleKeywordNeutral: one-word queries carry no adjacency
// evidence, so the bigram factor must not change their ranking.
func TestBigramSingleKeywordNeutral(t *testing.T) {
	ix := bigramTree()
	uni := NewEngine(ix, Config{Epsilon: 1})
	biCfg := Config{Epsilon: 1, Bigram: true}
	bi := NewEngine(ix, biCfg)

	a := uni.Suggest("helth")
	b := bi.Suggest("helth")
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		t.Fatalf("suggestion counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query() != b[i].Query() || a[i].Score != b[i].Score {
			t.Fatalf("rank %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBigramKeepsNonEmptyGuarantee: the coherence factor rescales
// scores but never admits entity-less candidates.
func TestBigramKeepsNonEmptyGuarantee(t *testing.T) {
	ix := bigramTree()
	e := NewEngine(ix, Config{Epsilon: 2, Bigram: true})
	for _, s := range e.Suggest("health insurnce") {
		if s.Entities < 1 {
			t.Errorf("suggestion %q has no entities", s.Query())
		}
	}
}
