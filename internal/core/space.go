package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"time"

	"xclean/internal/obs"
	"xclean/internal/tokenizer"
)

// shape is one alternative tokenization of the query obtained by
// inserting or deleting spaces (Section VI-A).
type shape struct {
	tokens  []string
	changes int
}

// SuggestWithSpaces extends Suggest with the space-error model of
// Section VI-A: up to τ (Config.MaxSpaceChanges) insertions or
// deletions of spaces are explored, each validated against the
// vocabulary, and every resulting candidate query competes in one
// ranked list. Each space change is penalized like a single edit
// error, exp(-β), on the final score.
func (e *Engine) SuggestWithSpaces(query string) []Suggestion {
	out, _ := e.SuggestWithSpacesDetailed(query)
	return out
}

// SuggestWithSpacesContext is SuggestWithSpaces under a context: every
// shape's scan polls the same context, so a cancelled or expired ctx
// stops the whole shape fan-out cooperatively and the call returns
// ctx.Err() with no suggestions (see Engine.SuggestContext).
func (e *Engine) SuggestWithSpacesContext(ctx context.Context, query string) ([]Suggestion, error) {
	out, _, _, err := e.suggestSpacesObserved(ctx, query, false)
	return out, err
}

// SuggestWithSpacesDetailed is SuggestWithSpaces plus the work
// counters of this call, summed over every explored shape (the same
// aggregate Engine.Stats reports after the call).
//
// Shapes are independent Algorithm 1 runs over the same index, so they
// are embarrassingly parallel: up to Config.Workers shapes run
// concurrently (each with a sequential scan, keeping the call's total
// parallelism at Config.Workers), and their results are merged in
// deterministic shape order.
func (e *Engine) SuggestWithSpacesDetailed(query string) ([]Suggestion, Stats) {
	out, st, _, _ := e.suggestSpacesObserved(context.Background(), query, false)
	return out, st
}

// SuggestWithSpacesDetailedContext is SuggestWithSpacesDetailed under
// a context. On cancellation the returned Stats still report the work
// of the shapes that ran before the scan stopped.
func (e *Engine) SuggestWithSpacesDetailedContext(ctx context.Context, query string) ([]Suggestion, Stats, error) {
	out, st, _, err := e.suggestSpacesObserved(ctx, query, false)
	return out, st, err
}

// SuggestWithSpacesExplained is SuggestWithSpaces plus the per-query
// trace (see SuggestExplained). Shape-level spans are concatenated in
// deterministic shape order; the keyword table reports the base
// (unchanged) tokenization.
func (e *Engine) SuggestWithSpacesExplained(query string) ([]Suggestion, *Explain) {
	out, _, ex, _ := e.suggestSpacesObserved(context.Background(), query, true)
	return out, ex
}

// SuggestWithSpacesExplainedContext is SuggestWithSpacesExplained
// under a context. A cancelled call returns no trace.
func (e *Engine) SuggestWithSpacesExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	out, _, ex, err := e.suggestSpacesObserved(ctx, query, true)
	return out, ex, err
}

// suggestSpacesObserved is the single user-call entry of the space
// path. Shapes are independent Algorithm 1 runs, so each carries its
// own runCtx (no shared timing state across goroutines); the contexts
// are merged in shape order once every shape has finished.
func (e *Engine) suggestSpacesObserved(ctx context.Context, query string, explain bool) ([]Suggestion, Stats, *Explain, error) {
	timed := e.sink != nil || explain
	var start time.Time
	var rc *runCtx
	if timed {
		start = time.Now()
		rc = &runCtx{}
	}
	raw := tokenizer.TokenizeRaw(query)
	shapes := e.expandShapes(raw, e.cfg.tau())
	if timed {
		rc.stages[obs.StageTokenize] += time.Since(start)
	}

	type shapeResult struct {
		sugs []Suggestion
		st   Stats
		kws  []Keyword
		rc   *runCtx
		err  error
	}
	results := make([]shapeResult, len(shapes))
	run := func(i, inner int) {
		kept := e.filterShape(shapes[i].tokens)
		if len(kept) == 0 {
			return
		}
		var src *runCtx
		var tv time.Time
		if timed {
			src = &runCtx{}
			tv = time.Now()
		}
		kws := e.keywordsFor(kept)
		if timed {
			src.stages[obs.StageVariants] += time.Since(tv)
		}
		sugs, st, err := e.suggestKeywordsN(ctx, kws, inner, src)
		results[i] = shapeResult{sugs: sugs, st: st, kws: kws, rc: src, err: err}
	}
	if w := e.cfg.workers(); w > 1 && len(shapes) > 1 {
		// Parallelism lives at the shape level here: each shape's scan
		// runs sequentially (inner = 1) so one call stays bounded at
		// Config.Workers goroutines rather than Workers² through nested
		// fan-out.
		sem := make(chan struct{}, w)
		var wg sync.WaitGroup
		for i := range shapes {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				run(i, 1)
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range shapes {
			run(i, e.cfg.workers())
		}
	}

	var tr time.Time
	if timed {
		tr = time.Now()
	}
	var total Stats
	var scanErr error
	beta := e.em.beta()
	best := make(map[string]Suggestion)
	for i, sh := range shapes {
		total.add(results[i].st)
		if err := results[i].err; err != nil && scanErr == nil {
			scanErr = err
		}
		penalty := math.Exp(-beta * float64(sh.changes))
		for _, s := range results[i].sugs {
			s.Score *= penalty
			s.EditDistance += sh.changes
			q := s.Query()
			if old, ok := best[q]; !ok || s.Score > old.Score {
				best[q] = s
			}
		}
	}
	e.setLastStats(total)
	if scanErr != nil {
		// A cancelled shape poisons the whole call: a merged list missing
		// one shape's candidates would silently mis-rank. The aggregate
		// counters (and, when timed, the sink observation below) still
		// reflect the work actually done.
		if timed {
			for i := range results {
				if src := results[i].rc; src != nil {
					rc.stages.Add(&src.stages)
					rc.workers = append(rc.workers, src.workers...)
				}
			}
			e.observeCall(time.Since(start), rc, total)
		}
		return nil, total, nil, scanErr
	}

	var out []Suggestion
	if len(best) > 0 {
		out = make([]Suggestion, 0, len(best))
		for _, s := range best {
			out = append(out, s)
		}
		sortSuggestions(out)
		if k := e.cfg.k(); len(out) > k {
			out = out[:k]
		}
	}

	if !timed {
		return out, total, nil, nil
	}
	for i := range results {
		if src := results[i].rc; src != nil {
			rc.stages.Add(&src.stages)
			rc.workers = append(rc.workers, src.workers...)
		}
	}
	rc.stages[obs.StageRank] += time.Since(tr)
	totalDur := time.Since(start)
	e.observeCall(totalDur, rc, total)
	var ex *Explain
	if explain {
		ex = e.newExplain(query, results[0].kws, rc, total, out, totalDur)
	}
	return out, total, ex, nil
}

// expandShapes enumerates tokenizations reachable with at most tau
// space changes: merging two adjacent tokens (space deletion) when the
// concatenation is a vocabulary term, and splitting one token into two
// vocabulary terms (space insertion).
func (e *Engine) expandShapes(tokens []string, tau int) []shape {
	seen := map[string]bool{}
	var out []shape
	var queue []shape
	push := func(s shape) {
		key := strings.Join(s.tokens, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
			queue = append(queue, s)
		}
	}
	push(shape{tokens: tokens})

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.changes >= tau {
			continue
		}
		// Space deletions: merge adjacent pairs.
		for i := 0; i+1 < len(cur.tokens); i++ {
			merged := cur.tokens[i] + cur.tokens[i+1]
			if !e.ix.Vocabulary().Contains(merged) {
				continue
			}
			next := make([]string, 0, len(cur.tokens)-1)
			next = append(next, cur.tokens[:i]...)
			next = append(next, merged)
			next = append(next, cur.tokens[i+2:]...)
			push(shape{tokens: next, changes: cur.changes + 1})
		}
		// Space insertions: split one token into two vocabulary terms.
		for i, tok := range cur.tokens {
			r := []rune(tok)
			for cut := 1; cut < len(r); cut++ {
				a, b := string(r[:cut]), string(r[cut:])
				if !e.ix.Vocabulary().Contains(a) || !e.ix.Vocabulary().Contains(b) {
					continue
				}
				next := make([]string, 0, len(cur.tokens)+1)
				next = append(next, cur.tokens[:i]...)
				next = append(next, a, b)
				next = append(next, cur.tokens[i+1:]...)
				push(shape{tokens: next, changes: cur.changes + 1})
			}
		}
	}
	return out
}

// filterShape applies the index token filters (stop words, numbers,
// minimum length) to a shape's tokens.
func (e *Engine) filterShape(tokens []string) []string {
	var kept []string
	for _, t := range tokens {
		if ts := e.cfg.Tokenizer.Tokenize(t); len(ts) == 1 {
			kept = append(kept, ts[0])
		}
	}
	return kept
}

// keywordsFor builds keyword structures for already-tokenized input.
func (e *Engine) keywordsFor(tokens []string) []Keyword {
	kws := make([]Keyword, len(tokens))
	for i, tok := range tokens {
		kws[i] = e.em.Keyword(tok, e.variants(tok))
	}
	return kws
}
