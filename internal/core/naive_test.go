package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/lm"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// naiveSuggest is an independent reference implementation of the
// XClean scoring model, computed directly from the tree with no
// inverted lists, no merged-list skipping, no anchor grouping, and no
// pruning: it enumerates the full candidate space, scores every
// candidate against every node of its best result type, and sorts.
// Algorithm 1 (with unlimited γ) must produce exactly the same
// ranking.
func naiveSuggest(tr *xmltree.Tree, e *Engine, query string, beta float64, mu float64, r float64, minDepth int) []Suggestion {
	kws := e.Keywords(query)
	if len(kws) == 0 {
		return nil
	}
	for _, kw := range kws {
		if len(kw.Variants) == 0 {
			return nil
		}
	}

	// Gather, for every node, its subtree token counts.
	type nodeInfo struct {
		node   *xmltree.Node
		counts map[string]int32
		length int32
	}
	var infos []*nodeInfo
	var collect func(n *xmltree.Node) *nodeInfo
	collect = func(n *xmltree.Node) *nodeInfo {
		in := &nodeInfo{node: n, counts: map[string]int32{}}
		opts := tokenizer.Options{MinLength: 1}
		for _, tok := range opts.Tokenize(n.Text) {
			in.counts[tok]++
			in.length++
		}
		for _, c := range n.Children {
			ci := collect(c)
			for w, k := range ci.counts {
				in.counts[w] += k
			}
			in.length += ci.length
		}
		infos = append(infos, in)
		return in
	}
	collect(tr.Root)

	// Background model identical to the engine's.
	model := lm.New(e.ix.Vocabulary(), mu)

	// f_p^w over the whole tree.
	fpw := func(w string, p xmltree.PathID) float64 {
		n := 0
		for _, in := range infos {
			if in.node.Path == p && in.counts[w] > 0 {
				n++
			}
		}
		return float64(n)
	}
	pathsOf := func() []xmltree.PathID {
		seen := map[xmltree.PathID]bool{}
		var out []xmltree.PathID
		for _, in := range infos {
			if !seen[in.node.Path] {
				seen[in.node.Path] = true
				out = append(out, in.node.Path)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}()

	var out []Suggestion
	// Full Cartesian candidate space.
	idx := make([]int, len(kws))
	for {
		words := make([]string, len(kws))
		weight, dist := 1.0, 0
		for i, j := range idx {
			v := kws[i].Variants[j]
			words[i] = v.Word
			weight *= v.Weight
			dist += v.Dist
		}

		// Best result type by direct evaluation of Eq. (7).
		best := xmltree.InvalidPath
		bestU := 0.0
		for _, p := range pathsOf {
			depth := tr.Paths.Depth(p)
			if depth < minDepth {
				continue
			}
			prod := 1.0
			ok := true
			for _, w := range words {
				f := fpw(w, p)
				if f == 0 {
					ok = false
					break
				}
				prod *= f
			}
			if !ok {
				continue
			}
			u := math.Log(1+prod) * math.Pow(r, float64(depth))
			if best == xmltree.InvalidPath || u > bestU || (u == bestU && p < best) {
				best, bestU = p, u
			}
		}
		if best != xmltree.InvalidPath {
			// Score over all entities of the best type that contain
			// every keyword.
			var nEntities int32
			sum := 0.0
			matched := 0
			for _, in := range infos {
				if in.node.Path != best {
					continue
				}
				nEntities++
				all := true
				for _, w := range words {
					if in.counts[w] == 0 {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				matched++
				prob := 1.0
				for _, w := range words {
					prob *= model.Prob(w, in.counts[w], in.length)
				}
				sum += prob
			}
			if matched > 0 {
				out = append(out, Suggestion{
					Words:        words,
					Score:        weight * sum / float64(nEntities),
					ResultType:   best,
					Entities:     matched,
					EditDistance: dist,
				})
			}
		}

		// Next point of the product space.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(kws[i].Variants) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	sortSuggestions(out)
	return out
}

// randCorpus builds a random small labeled tree with words drawn from
// a tight vocabulary (to force dense variant sets and frequent
// co-occurrence).
func randCorpus(rng *rand.Rand) *xmltree.Tree {
	vocab := []string{"tree", "trees", "trie", "tred", "icde", "icdt",
		"query", "quern", "clean", "cleans", "clear"}
	labels := []string{"a", "b", "c"}
	tr := xmltree.NewTree("root")
	nArts := 2 + rng.Intn(5)
	for i := 0; i < nArts; i++ {
		art := tr.AddChild(tr.Root, labels[rng.Intn(len(labels))], "")
		nFields := 1 + rng.Intn(3)
		for j := 0; j < nFields; j++ {
			nWords := 1 + rng.Intn(4)
			var ws []string
			for k := 0; k < nWords; k++ {
				ws = append(ws, vocab[rng.Intn(len(vocab))])
			}
			tr.AddChild(art, labels[rng.Intn(len(labels))], strings.Join(ws, " "))
		}
	}
	return tr
}

func TestAlgorithmMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{"tree icde", "trie", "quer clean", "tred icdt", "tree query clean"}
	for trial := 0; trial < 150; trial++ {
		tr := randCorpus(rng)
		ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
		cfg := Config{
			Epsilon:   1 + rng.Intn(2),
			Gamma:     -1, // unlimited: pruning off for exact comparison
			K:         100,
			Tokenizer: tokenizer.Options{MinLength: 1},
		}
		e := NewEngine(ix, cfg)
		for _, q := range queries {
			got := e.Suggest(q)
			want := naiveSuggest(tr, e, q, DefaultBeta, lm.DefaultMu, 0.8, 2)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %q: %d vs %d suggestions\n got=%v\nwant=%v",
					trial, q, len(got), len(want), got, want)
			}
			for i := range got {
				g, w := got[i], want[i]
				if g.Query() != w.Query() || g.ResultType != w.ResultType ||
					g.Entities != w.Entities || g.EditDistance != w.EditDistance {
					t.Fatalf("trial %d query %q rank %d:\n got=%+v\nwant=%+v", trial, q, i, g, w)
				}
				if math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
					t.Fatalf("trial %d query %q rank %d: score %g vs %g", trial, q, i, g.Score, w.Score)
				}
			}
		}
	}
}
