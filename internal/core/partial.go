package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"xclean/internal/fastss"
	"xclean/internal/obs"
	"xclean/internal/xmltree"
)

// Scatter-gather support: Eq. (8) scores a candidate as
//
//	P(C|T) = (1/N) Σ_j Π_{w∈C} P(w|D(r_j))
//
// — a sum over disjoint entities — so the score decomposes additively
// over any partition of the entity set. A shard holding a subset of
// the entities (invindex.Index.ShardEntities) can therefore report,
// per candidate, its local Σ_j term and its local entity counts, and a
// coordinator recovers the exact global score by adding partial sums
// and normalizing by the summed entity counts. The error-model weights
// and the bigram coherence factor are entity-independent, so they are
// applied once, coordinator-side, from the union of the shards'
// variant hits.
//
// SuggestPartials is the shard half; MergePartials is the coordinator
// half. Both work on label-path strings and dot-form Dewey codes so
// the types survive a JSON wire format without sharing a path table.

// PartialVariant is one variant hit of a query keyword: a vocabulary
// word within the edit threshold, with its edit distance.
type PartialVariant struct {
	Word string `json:"word"`
	Dist int    `json:"dist"`
}

// PartialCandidate is one candidate query's shard-local contribution:
// the raw prior-weighted entity sum of Eq. (8) before error-model
// weighting and normalization.
type PartialCandidate struct {
	// Words is the candidate keyword sequence.
	Words []string `json:"words"`
	// ResultType is the inferred result type as a label path.
	ResultType string `json:"resultType"`
	// Sum is Σ_j P(r_j|T)·Π_w P(w|D(r_j)) over locally matched
	// entities (with the local background adjustment under exact
	// scoring).
	Sum float64 `json:"sum"`
	// Entities is the number of locally matched entities.
	Entities int `json:"entities"`
	// Witness is the first locally matched entity root (dot form).
	Witness string `json:"witness,omitempty"`
	// Coherence is the bigram sequence factor (1 when the bigram
	// extension is off). Bigram statistics are collection-global, so
	// every shard reports the same value for the same words.
	Coherence float64 `json:"coherence"`
}

// PartialSet is one shard's complete answer for one query.
type PartialSet struct {
	// Keywords lists, per query keyword position, the shard's variant
	// hits. Shards built with ShardEntities share the collection
	// vocabulary, so these sets coincide across shards; the coordinator
	// unions them defensively before recomputing error weights.
	Keywords [][]PartialVariant `json:"keywords"`
	// TypeNorms maps each eligible result-type label path to the
	// shard-local prior normalizer (the local entity count under the
	// uniform prior). Summed across shards it is the global N of
	// Eq. (8).
	TypeNorms map[string]float64 `json:"typeNorms,omitempty"`
	// Candidates are the shard's γ-bounded accumulators. They are not
	// truncated to top-k: a candidate outside one shard's local top-k
	// may still make the global top-k.
	Candidates []PartialCandidate `json:"candidates,omitempty"`
}

// SuggestPartials runs the scan half of Algorithm 1 and returns the
// raw per-candidate partial sums instead of ranked suggestions — the
// shard side of the cluster's scatter-gather protocol. The second
// return value reports the work counters of the call.
func (e *Engine) SuggestPartials(query string) (PartialSet, Stats) {
	ps, st, _ := e.SuggestPartialsContext(context.Background(), query)
	return ps, st
}

// SuggestPartialsContext is SuggestPartials under a context: the shard
// scan polls ctx and abandons the call with ctx.Err() once the
// coordinator's forwarded deadline (or the client) cancels it, so a
// shard never keeps scanning for an answer nobody will merge. The
// returned Stats then report the work done before the stop.
func (e *Engine) SuggestPartialsContext(ctx context.Context, query string) (PartialSet, Stats, error) {
	ps, st, _, err := e.suggestPartials(ctx, query, false)
	return ps, st, err
}

// SuggestPartialsExplainedContext is SuggestPartialsContext plus the
// stage spans of the call — the shard half of distributed tracing: a
// traced coordinator request forces stage timing on the shard scan so
// the shard can return its per-stage subtree in the wire envelope.
// Like the Explained suggestion variants, it is marginally slower
// than the plain call (a few clock reads per stage).
func (e *Engine) SuggestPartialsExplainedContext(ctx context.Context, query string) (PartialSet, Stats, []obs.Span, error) {
	ps, st, rc, err := e.suggestPartials(ctx, query, true)
	var spans []obs.Span
	if err == nil && rc != nil {
		spans = obs.SpansOf(&rc.stages, rc.workers)
	}
	return ps, st, spans, err
}

// suggestPartials is the shared body of the partials entry points.
// explain forces a runCtx even without a sink, so stage durations are
// collected for the caller.
func (e *Engine) suggestPartials(ctx context.Context, query string, explain bool) (PartialSet, Stats, *runCtx, error) {
	var rc *runCtx
	start := time.Now()
	if e.sink != nil || explain {
		rc = &runCtx{}
	}
	var kws []Keyword
	if rc != nil {
		t0 := time.Now()
		toks := e.cfg.Tokenizer.Tokenize(query)
		rc.stages[obs.StageTokenize] += time.Since(t0)
		t0 = time.Now()
		kws = e.keywordsFor(toks)
		rc.stages[obs.StageVariants] += time.Since(t0)
	} else {
		kws = e.Keywords(query)
	}

	ps := PartialSet{Keywords: make([][]PartialVariant, len(kws))}
	for i, kw := range kws {
		vs := make([]PartialVariant, len(kw.Variants))
		for j, v := range kw.Variants {
			vs[j] = PartialVariant{Word: v.Word, Dist: v.Dist}
		}
		ps.Keywords[i] = vs
	}

	acc, st, err := e.scanKeywords(ctx, kws, e.cfg.workers(), rc)
	e.setLastStats(st)
	if rc != nil {
		e.observeCall(time.Since(start), rc, st)
	}
	if err != nil {
		return PartialSet{}, st, rc, err
	}
	// Report the local normalizer of every eligible result type even
	// when no candidate matched locally: the coordinator's global N for
	// a type must include the entity counts of shards where the
	// candidate found no match, or a half-empty shard would inflate
	// every other shard's scores.
	norms := make(map[string]float64)
	d := e.cfg.minDepth()
	for p := xmltree.PathID(0); int(p) < e.ix.PathTable().Len(); p++ {
		if e.ix.PathTable().Depth(p) < d {
			continue
		}
		if n := e.liveNorm(p); n > 0 {
			norms[e.ix.PathTable().String(p)] = n
		}
	}
	ps.TypeNorms = norms

	if acc == nil {
		return ps, st, rc, nil
	}
	// The candidates below hold the accumulators' words; only the
	// table's storage is recycled.
	defer acc.release()
	if acc.len() == 0 {
		return ps, st, rc, nil
	}

	all := acc.all()
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	ps.Candidates = make([]PartialCandidate, 0, len(all))
	for _, a := range all {
		sum := a.sum
		if e.cfg.ScoreMode == ScoreModeExact {
			// The shard-local exact adjustment: unmatched local entities
			// contribute their background-only mass. Entities on other
			// shards are accounted for by their own partials only when
			// the candidate is discovered there, so exact-mode cluster
			// scores are a shard-local approximation (matched-only mode,
			// the default, is exact).
			sum += e.backgroundMass(a.words, a.resultType) - a.bgMatched
		}
		coherence := 1.0
		if e.bigram != nil {
			coherence = e.bigram.SequenceProb(a.words)
		}
		witness := ""
		if a.witness != "" {
			witness = xmltree.DeweyFromKey(a.witness).String()
		}
		ps.Candidates = append(ps.Candidates, PartialCandidate{
			Words:      a.words,
			ResultType: e.ix.PathTable().String(a.resultType),
			Sum:        sum,
			Entities:   a.entities,
			Witness:    witness,
			Coherence:  coherence,
		})
	}
	return ps, st, rc, nil
}

// MergeConfig tunes MergePartials. It must mirror the shards' engine
// configuration where it overlaps (Beta, K).
type MergeConfig struct {
	// Beta is the error penalty β of the error model (0 = DefaultBeta).
	Beta float64
	// K is the number of suggestions returned (0 = 10).
	K int
}

func (c MergeConfig) k() int {
	if c.K <= 0 {
		return 10
	}
	return c.K
}

// MergedSuggestion is one globally ranked suggestion assembled from
// shard partials. It mirrors Suggestion with wire-friendly types
// (label-path and dot-form strings instead of table IDs).
type MergedSuggestion struct {
	Words        []string
	Score        float64
	ResultType   string
	Entities     int
	EditDistance int
	Witness      string
}

// Query renders the suggestion as a query string.
func (s MergedSuggestion) Query() string { return strings.Join(s.Words, " ") }

// MergePartials folds per-shard partial sets into the global top-k —
// the coordinator half of the scatter-gather protocol, and the
// cross-process analogue of the private per-worker accumulator merge.
// Per-candidate sums and per-type normalizers are added in set order
// (pass sets in shard order: shards hold contiguous document ranges,
// so that reproduces the standalone engine's summation order up to
// floating-point association), and the error-model weights are
// recomputed once from the union of the shards' variant hits. Sets
// from failed shards are simply omitted by the caller; the merge then
// yields the surviving shards' best answer.
//
// It returns an error when the sets disagree on the number of query
// keywords (shards answering different queries or tokenizer configs).
func MergePartials(cfg MergeConfig, sets []PartialSet) ([]MergedSuggestion, error) {
	nkw := -1
	for _, s := range sets {
		if len(s.Keywords) == 0 && len(s.Candidates) == 0 {
			continue // hopeless or empty shard answer carries no arity
		}
		if nkw == -1 {
			nkw = len(s.Keywords)
		} else if len(s.Keywords) != nkw {
			return nil, fmt.Errorf("core: keyword arity mismatch across shards (%d vs %d)",
				nkw, len(s.Keywords))
		}
	}
	if nkw <= 0 {
		return nil, nil
	}

	// Union the variant hits per keyword position (minimum distance
	// wins) and recompute normalized error weights once. Sorting by
	// (dist, word) reproduces the shard-side variant order, so the
	// normalizer z is summed in the same order as a standalone engine.
	type vw struct {
		weight float64
		dist   int
	}
	em := ErrorModel{Beta: cfg.Beta}
	weights := make([]map[string]vw, nkw)
	for i := 0; i < nkw; i++ {
		best := make(map[string]int)
		for _, s := range sets {
			if len(s.Keywords) != nkw {
				continue
			}
			for _, v := range s.Keywords[i] {
				if d, ok := best[v.Word]; !ok || v.Dist < d {
					best[v.Word] = v.Dist
				}
			}
		}
		matches := make([]fastss.Match, 0, len(best))
		for w, d := range best {
			matches = append(matches, fastss.Match{Word: w, Dist: d})
		}
		sort.Slice(matches, func(a, b int) bool {
			if matches[a].Dist != matches[b].Dist {
				return matches[a].Dist < matches[b].Dist
			}
			return matches[a].Word < matches[b].Word
		})
		kw := em.Keyword("", matches)
		weights[i] = make(map[string]vw, len(kw.Variants))
		for _, v := range kw.Variants {
			weights[i][v.Word] = vw{weight: v.Weight, dist: v.Dist}
		}
	}

	// Global normalizers: Σ over shards of the local per-type norms.
	norms := make(map[string]float64)
	for _, s := range sets {
		for label, n := range s.TypeNorms {
			norms[label] += n
		}
	}

	// Fold candidates by keyword sequence, adding partial sums in set
	// order and keeping the document-first witness.
	type merged struct {
		c       PartialCandidate
		witness string // fixed-width key form, for document-order min
	}
	byKey := make(map[string]*merged)
	var order []string
	for _, s := range sets {
		if len(s.Keywords) != nkw {
			continue
		}
		for _, c := range s.Candidates {
			if len(c.Words) != nkw {
				continue
			}
			key := strings.Join(c.Words, "\x00")
			m, ok := byKey[key]
			if !ok {
				cc := c
				cc.Words = append([]string(nil), c.Words...)
				byKey[key] = &merged{c: cc, witness: witnessKey(c.Witness)}
				order = append(order, key)
				continue
			}
			m.c.Sum += c.Sum
			m.c.Entities += c.Entities
			if wk := witnessKey(c.Witness); wk != "" && (m.witness == "" || wk < m.witness) {
				m.witness = wk
				m.c.Witness = c.Witness
			}
		}
	}

	out := make([]MergedSuggestion, 0, len(order))
	for _, key := range order {
		m := byKey[key]
		norm := norms[m.c.ResultType]
		if norm == 0 {
			continue
		}
		// Mirror finalize's operation order exactly: Π variant weights,
		// then the coherence factor, then × (sum / norm).
		weight := 1.0
		dist := 0
		known := true
		for i, w := range m.c.Words {
			v, ok := weights[i][w]
			if !ok {
				known = false
				break
			}
			weight *= v.weight
			dist += v.dist
		}
		if !known {
			continue
		}
		if m.c.Coherence != 0 {
			weight *= m.c.Coherence
		}
		out = append(out, MergedSuggestion{
			Words:        m.c.Words,
			Score:        weight * (m.c.Sum / norm),
			ResultType:   m.c.ResultType,
			Entities:     m.c.Entities,
			EditDistance: dist,
			Witness:      m.c.Witness,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query() < out[j].Query()
	})
	if k := cfg.k(); len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// witnessKey converts a dot-form Dewey code to its fixed-width key,
// whose byte order is document order ("" for empty or malformed).
func witnessKey(code string) string {
	if code == "" {
		return ""
	}
	d, err := xmltree.ParseDewey(code)
	if err != nil {
		return ""
	}
	return d.Key()
}
