package core

import (
	"reflect"
	"testing"

	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
)

// TestSuggestCompactedEquivalence: suggestions over a compacted index
// must be byte-identical to suggestions over the raw index — the
// compression is pure storage, never semantics.
func TestSuggestCompactedEquivalence(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 11, Articles: 800})
	raw := invindex.Build(c.Tree, tokenizer.Options{})
	comp := invindex.Build(c.Tree, tokenizer.Options{})
	comp.Compact()

	er := NewEngine(raw, Config{Epsilon: 2})
	ec := NewEngine(comp, Config{Epsilon: 2})

	queries := append(c.SampleQueries(12, 15),
		"databse systems", "algoritm", "quer optimization", "")
	for _, q := range queries {
		sr := er.Suggest(q)
		sc := ec.Suggest(q)
		if !reflect.DeepEqual(sr, sc) {
			t.Fatalf("query %q: raw and compacted suggestions diverge\nraw:  %v\ncomp: %v",
				q, sr, sc)
		}
	}
}

// TestSuggestCompactedStats: the one-pass I/O property must survive
// compression — the compacted run reads the same number of postings.
func TestSuggestCompactedStats(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 13, Articles: 500})
	raw := invindex.Build(c.Tree, tokenizer.Options{})
	comp := invindex.Build(c.Tree, tokenizer.Options{})
	comp.Compact()

	er := NewEngine(raw, Config{})
	ec := NewEngine(comp, Config{})
	q := c.SampleQueries(14, 1)[0]
	_, str := er.SuggestDetailed(q)
	_, stc := ec.SuggestDetailed(q)
	if str.PostingsRead != stc.PostingsRead || str.Subtrees != stc.Subtrees {
		t.Fatalf("work counters diverge: raw=%+v comp=%+v", str, stc)
	}
}
