package core

import (
	"fmt"
	"reflect"
	"testing"

	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// biasTree reproduces Figure 1 of the paper: "insurance" co-occurs
// with "health" inside records, while the rarer "instance" appears
// only in an unrelated branch, connected to "health" through the root
// alone.
func biasTree() *xmltree.Tree {
	t := xmltree.NewTree("db")
	for i := 0; i < 5; i++ {
		rec := t.AddChild(t.Root, "record", "")
		t.AddChild(rec, "title", "health insurance policy")
		t.AddChild(rec, "body", "national health insurance coverage details")
	}
	other := t.AddChild(t.Root, "note", "")
	t.AddChild(other, "text", "single instance running")
	return t
}

func TestFigure1BiasResolved(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, Config{Epsilon: 2})

	sugs := e.Suggest("health insurence")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "health insurance" {
		t.Errorf("top suggestion %q, want 'health insurance'", sugs[0].Query())
	}
	// "health instance" must not be suggested at all: the two tokens
	// only connect at the root, below the minimal depth threshold.
	if _, ok := findSuggestion(sugs, "health instance"); ok {
		t.Error("'health instance' suggested despite being connected only at the root")
	}
}

func TestNonEmptyResultGuarantee(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, Config{Epsilon: 2})
	for _, q := range []string{"health insurence", "helth insurance", "coverage detials", "policy healt"} {
		for _, s := range e.Suggest(q) {
			if s.Entities < 1 {
				t.Errorf("query %q: suggestion %q has no result", q, s.Query())
			}
		}
	}
}

func TestSuggestDeterministic(t *testing.T) {
	e := paperEngine(Config{})
	a := e.Suggest("tree icdt")
	b := e.Suggest("tree icdt")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic results:\n%v\n%v", a, b)
	}
}

// TestSuggestScratchIsolation pins the pooled-scratch contract: a
// query's results must not change because other queries (of different
// keyword counts and variant sets) ran in between and left their
// buffers in the pool, sequentially or across parallel shards.
func TestSuggestScratchIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := paperEngine(Config{Workers: workers})
		want := e.Suggest("tree icdt")
		for _, q := range []string{
			"databse theory", "xml keyword query processing", "icdt", "a b c d e",
		} {
			e.Suggest(q)
		}
		if got := e.Suggest("tree icdt"); !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: results changed after interleaved queries:\n%v\n%v",
				workers, want, got)
		}
	}
}

func TestSuggestEmptyAndHopeless(t *testing.T) {
	e := paperEngine(Config{})
	if got := e.Suggest(""); got != nil {
		t.Errorf("empty query -> %v", got)
	}
	if got := e.Suggest("zzzzzzz qqqqqq"); got != nil {
		t.Errorf("un-matchable query -> %v", got)
	}
	// One matchable plus one hopeless keyword: no valid candidates.
	if got := e.Suggest("tree zzzzzzz"); got != nil {
		t.Errorf("half-matchable query -> %v", got)
	}
}

func TestSuggestSingleKeyword(t *testing.T) {
	e := paperEngine(Config{})
	sugs := e.Suggest("icdt")
	if len(sugs) == 0 {
		t.Fatal("no suggestions for single keyword")
	}
	if sugs[0].Query() != "icdt" {
		t.Errorf("top=%q want icdt (exact match)", sugs[0].Query())
	}
	if _, ok := findSuggestion(sugs, "icde"); !ok {
		t.Error("icde variant missing")
	}
}

func TestKConfig(t *testing.T) {
	e := paperEngine(Config{K: 1})
	if got := e.Suggest("tree icdt"); len(got) != 1 {
		t.Errorf("K=1 returned %d suggestions", len(got))
	}
}

func TestGammaPruning(t *testing.T) {
	e := paperEngine(Config{Gamma: 1})
	sugs := e.Suggest("tree icdt")
	// With a single accumulator at most one candidate survives.
	if len(sugs) > 1 {
		t.Errorf("gamma=1 kept %d candidates", len(sugs))
	}
	if e.Stats().Evictions == 0 {
		t.Error("expected evictions with gamma=1")
	}

	// Unlimited gamma keeps all three.
	e2 := paperEngine(Config{Gamma: -1})
	if got := e2.Suggest("tree icdt"); len(got) != 3 {
		t.Errorf("unlimited gamma kept %d", len(got))
	}
}

func TestGammaQualityMonotone(t *testing.T) {
	// With enough accumulators the result equals the unlimited run.
	big := paperEngine(Config{Gamma: 1000}).Suggest("tree icdt")
	unlimited := paperEngine(Config{Gamma: -1}).Suggest("tree icdt")
	if !reflect.DeepEqual(big, unlimited) {
		t.Error("gamma=1000 differs from unlimited on a tiny corpus")
	}
}

func TestLinearSkipEquivalence(t *testing.T) {
	fast := paperEngine(Config{})
	slow := paperEngine(Config{LinearSkip: true})
	a := fast.Suggest("tree icdt")
	b := slow.Suggest("tree icdt")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("linear vs galloping skip mismatch:\n%v\n%v", a, b)
	}
}

func TestExactScoreMode(t *testing.T) {
	matched := paperEngine(Config{})
	exact := paperEngine(Config{ScoreMode: ScoreModeExact})
	a := matched.Suggest("tree icdt")
	b := exact.Suggest("tree icdt")
	if len(a) != len(b) {
		t.Fatalf("candidate sets differ: %d vs %d", len(a), len(b))
	}
	// Exact mode adds non-negative background mass, so each candidate's
	// score must be at least its matched-only score.
	for _, sa := range a {
		sb, ok := findSuggestion(b, sa.Query())
		if !ok {
			t.Fatalf("%q missing in exact mode", sa.Query())
		}
		if sb.Score < sa.Score {
			t.Errorf("%q: exact score %g < matched score %g", sa.Query(), sb.Score, sa.Score)
		}
	}
}

func TestEvictionPolicies(t *testing.T) {
	for _, pol := range []EvictionPolicy{EvictLowestEstimate, EvictFIFO} {
		e := paperEngine(Config{Gamma: 2, Eviction: pol})
		sugs := e.Suggest("tree icdt")
		if len(sugs) == 0 || len(sugs) > 2 {
			t.Errorf("policy %v: %d suggestions", pol, len(sugs))
		}
	}
}

func TestMinDepthRootBan(t *testing.T) {
	// Tokens that co-occur only at the root must yield no suggestion
	// with the default d=2, but do yield one with MinDepth=1.
	tr := xmltree.NewTree("a")
	b := tr.AddChild(tr.Root, "b", "")
	tr.AddChild(b, "x", "alpha")
	c := tr.AddChild(tr.Root, "c", "")
	tr.AddChild(c, "x", "beta")
	ix := invindex.Build(tr, tokenizer.Options{})

	e := NewEngine(ix, Config{})
	if got := e.Suggest("alpha beta"); got != nil {
		t.Errorf("root-only connection suggested: %v", got)
	}
	e1 := NewEngine(ix, Config{MinDepth: 1})
	if got := e1.Suggest("alpha beta"); len(got) == 0 {
		t.Error("MinDepth=1 should allow the root entity")
	}
}

func TestSharedFastSSEngines(t *testing.T) {
	tr := paperTree()
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	fss := fastss.Build(ix.VocabList(), fastss.Config{MaxErrors: 1})
	e1 := NewEngineWithFastSS(ix, fss, Config{Tokenizer: tokenizer.Options{MinLength: 1}})
	e2 := NewEngineWithFastSS(ix, fss, Config{Beta: 2, Tokenizer: tokenizer.Options{MinLength: 1}})
	a := e1.Suggest("tree icdt")
	b := e2.Suggest("tree icdt")
	if len(a) != 3 || len(b) != 3 {
		t.Errorf("shared-index engines broken: %d, %d", len(a), len(b))
	}
}

func TestErrorModelWeights(t *testing.T) {
	m := ErrorModel{Beta: 5}
	kw := m.Keyword("tree", []fastss.Match{
		{Word: "tree", Dist: 0}, {Word: "trees", Dist: 1}, {Word: "trie", Dist: 1},
	})
	var sum float64
	for _, v := range kw.Variants {
		sum += v.Weight
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("weights must normalize, sum=%g", sum)
	}
	if kw.Variants[0].Weight <= kw.Variants[1].Weight {
		t.Error("closer variant must weigh more")
	}
	if kw.Variants[1].Weight != kw.Variants[2].Weight {
		t.Error("equal distances must weigh equally")
	}

	// β=0 (passed as negative) gives the uniform distribution.
	m0 := ErrorModel{Beta: -1}
	kw0 := m0.Keyword("tree", []fastss.Match{
		{Word: "tree", Dist: 0}, {Word: "trees", Dist: 1},
	})
	if kw0.Variants[0].Weight != kw0.Variants[1].Weight {
		t.Errorf("beta=0 should be uniform: %+v", kw0.Variants)
	}

	// Empty variant set must not divide by zero.
	if kw := m.Keyword("zz", nil); len(kw.Variants) != 0 {
		t.Error("empty variants mishandled")
	}
}

func TestAccumulators(t *testing.T) {
	acc := newAccumulators(2, EvictLowestEstimate)
	p := xmltree.PathID(1)
	a1 := acc.add([]byte("a"), []string{"a"}, []int{0}, p, 1.0, 0.5, 0, 1, "w")
	if a1 == nil || acc.len() != 1 {
		t.Fatal("first insert failed")
	}
	// Merge into the same candidate.
	a1b := acc.add([]byte("a"), []string{"a"}, []int{0}, p, 1.0, 0.25, 0, 2, "w")
	if a1b != a1 || a1.sum != 0.75 || a1.entities != 3 {
		t.Errorf("merge failed: %+v", a1)
	}
	acc.add([]byte("b"), []string{"b"}, []int{0}, p, 1.0, 0.3, 0, 1, "w")

	// Table full: a weak newcomer must be rejected.
	if got := acc.add([]byte("c"), []string{"c"}, []int{0}, p, 1.0, 0.01, 0, 1, "w"); got != nil {
		t.Error("weak newcomer should be rejected")
	}
	if acc.evictions != 1 {
		t.Errorf("evictions=%d", acc.evictions)
	}
	// A strong newcomer evicts the weakest ("b", estimate 0.3).
	if got := acc.add([]byte("d"), []string{"d"}, []int{0}, p, 1.0, 5.0, 0, 1, "w"); got == nil {
		t.Error("strong newcomer rejected")
	}
	if _, ok := acc.m["b"]; ok {
		t.Error("weakest entry not evicted")
	}
	if _, ok := acc.m["a"]; !ok {
		t.Error("strong entry wrongly evicted")
	}
}

func TestAccumulatorsFIFO(t *testing.T) {
	acc := newAccumulators(2, EvictFIFO)
	p := xmltree.PathID(1)
	acc.add([]byte("a"), []string{"a"}, []int{0}, p, 1.0, 9.0, 0, 1, "w")
	acc.add([]byte("b"), []string{"b"}, []int{0}, p, 1.0, 1.0, 0, 1, "w")
	acc.add([]byte("c"), []string{"c"}, []int{0}, p, 1.0, 0.1, 0, 1, "w")
	if _, ok := acc.m["a"]; ok {
		t.Error("FIFO should evict the oldest regardless of score")
	}
	if _, ok := acc.m["c"]; !ok {
		t.Error("FIFO should admit the newcomer")
	}
}

func TestAccumulatorsUnlimited(t *testing.T) {
	acc := newAccumulators(0, EvictLowestEstimate)
	p := xmltree.PathID(1)
	for i := 0; i < 100; i++ {
		acc.add([]byte(fmt.Sprintf("k%d", i)), []string{"w"}, []int{0}, p, 1, 1, 0, 1, "w")
	}
	if acc.len() != 100 || acc.evictions != 0 {
		t.Errorf("unlimited table evicted: len=%d ev=%d", acc.len(), acc.evictions)
	}
}
