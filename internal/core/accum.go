package core

import (
	"container/heap"
	"sort"
	"sync"

	"xclean/internal/xmltree"
)

// accum is the in-memory score accumulator of one candidate query
// (Section V-D).
type accum struct {
	key        string
	words      []string
	choice     []int
	resultType xmltree.PathID
	// sum is Σ_j Π_w p(w|D(r_j)) over matched entities so far.
	sum float64
	// bgMatched is Σ_j Π_w p_bg(w|D(r_j)) over matched entities (exact
	// scoring mode bookkeeping).
	bgMatched float64
	entities  int
	// witness is the Dewey key of the first matched entity root.
	witness string
	// weightOverN is errWeight(C)/N, the static factor of the final
	// score; estimate() = weightOverN · sum is the Hoeffding-style
	// sample estimate used to pick eviction victims.
	weightOverN float64
	seq         int
	// version increments whenever a fresh priority-queue entry is
	// pushed, invalidating older ones.
	version int64
	// pqEst is the estimate recorded by the accumulator's live queue
	// entry; a fresh entry is only pushed when the estimate has grown
	// substantially, keeping queue churn low.
	pqEst float64
}

func (a *accum) estimate() float64 { return a.weightOverN * a.sum }

// pqEntry is a lazily-invalidated min-heap entry; it is stale when the
// accumulator it referenced was merged into (version moved on),
// evicted, or replaced by a new accumulator under the same key (seq
// differs).
type pqEntry struct {
	key     string
	seq     int
	version int64
	est     float64
}

type estimateHeap []pqEntry

func (h estimateHeap) Len() int            { return len(h) }
func (h estimateHeap) Less(i, j int) bool  { return h[i].est < h[j].est }
func (h estimateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *estimateHeap) Push(x interface{}) { *h = append(*h, x.(pqEntry)) }
func (h *estimateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// accumulators is the bounded candidate-score table. At most limit
// candidates are tracked; when full, the entry with the lowest
// estimated final score (or the oldest, under FIFO) is discarded.
//
// Victim selection is O(log γ) amortized via a lazy priority queue:
// every insert/merge pushes a fresh (estimate, version) entry and
// stale entries are skipped when popped. Since entity contributions
// are non-negative, estimates only grow, so a live popped entry is a
// true minimum.
type accumulators struct {
	limit  int // ≤ 0 means unlimited
	policy EvictionPolicy
	m      map[string]*accum
	seq    int
	pq     estimateHeap
	// fifo lists keys in insertion order for the FIFO ablation policy;
	// entries whose accumulator is gone are skipped lazily.
	fifo []pqEntry
	// evictions counts discarded accumulators.
	evictions int
}

func newAccumulators(limit int, policy EvictionPolicy) *accumulators {
	if limit < 0 {
		limit = 0 // unlimited
	}
	return &accumulators{limit: limit, policy: policy, m: make(map[string]*accum)}
}

// accTablePool recycles accumulator tables (the map, queue, and FIFO
// buffers — never the accumulators themselves, whose words and keys
// escape into Suggestions and PartialCandidates).
var accTablePool = sync.Pool{New: func() interface{} {
	return &accumulators{m: make(map[string]*accum)}
}}

// getAccumulators is newAccumulators over pooled storage. Tables
// obtained here should be returned with release once their
// accumulators have been extracted.
func getAccumulators(limit int, policy EvictionPolicy) *accumulators {
	if limit < 0 {
		limit = 0 // unlimited
	}
	t := accTablePool.Get().(*accumulators)
	t.limit = limit
	t.policy = policy
	t.seq = 0
	t.evictions = 0
	return t
}

// release returns the table's storage to the pool. The accumulators it
// held remain valid — only the table's own references are dropped.
func (t *accumulators) release() {
	clear(t.m)
	t.pq = t.pq[:0]
	t.fifo = t.fifo[:0]
	accTablePool.Put(t)
}

// add merges one subtree's contribution for a candidate identified by
// keyBytes (a byte view so that the lookup for known candidates — the
// overwhelmingly common case — does not materialize a string). It
// returns the accumulator (nil if the candidate was rejected because
// the table is full and its estimate is the lowest).
func (t *accumulators) add(
	keyBytes []byte,
	words []string,
	choice []int,
	resultType xmltree.PathID,
	weightOverN float64,
	sum float64,
	bgMatched float64,
	entities int,
	witness string,
) *accum {
	if a, ok := t.m[string(keyBytes)]; ok { // no alloc: map lookup
		a.sum += sum
		a.bgMatched += bgMatched
		a.entities += entities
		if a.witness == "" {
			a.witness = witness
		}
		// Refresh the queue entry only when the estimate doubled: the
		// stale entry under-estimates by at most 2×, a bounded error in
		// an already-heuristic victim rule, and the queue stays small.
		if t.limit > 0 && t.policy == EvictLowestEstimate && a.estimate() > 2*a.pqEst {
			a.version++
			a.pqEst = a.estimate()
			heap.Push(&t.pq, pqEntry{key: a.key, seq: a.seq, version: a.version, est: a.pqEst})
		}
		return a
	}
	key := string(keyBytes)
	a := &accum{
		key:         key,
		words:       append([]string(nil), words...),
		choice:      append([]int(nil), choice...),
		resultType:  resultType,
		sum:         sum,
		bgMatched:   bgMatched,
		entities:    entities,
		witness:     witness,
		weightOverN: weightOverN,
		seq:         t.seq,
	}
	t.seq++
	if t.limit > 0 && len(t.m) >= t.limit {
		victim := t.victim()
		if t.policy == EvictLowestEstimate && victim != nil && a.estimate() <= victim.estimate() {
			// The newcomer itself is the lowest; reject it.
			t.evictions++
			return nil
		}
		if victim != nil {
			delete(t.m, victim.key)
			t.evictions++
		}
	}
	t.m[key] = a
	if t.limit > 0 {
		a.pqEst = a.estimate()
		e := pqEntry{key: a.key, seq: a.seq, version: a.version, est: a.pqEst}
		if t.policy == EvictLowestEstimate {
			heap.Push(&t.pq, e)
		} else {
			t.fifo = append(t.fifo, e)
		}
	}
	return a
}

// wouldReject reports whether add would reject a brand-new candidate
// whose final estimate is known to be at most estUB: the table is full
// under the lowest-estimate policy, the candidate is not already
// tracked, and even its upper bound does not beat the current victim.
// Since add rejects exactly when estimate ≤ victim.estimate() and
// estUB ≥ estimate, a true result reproduces add's decision without
// the caller having to compute the real score — the γ bound applied
// before the work it prunes, not after. A rejection is counted as an
// eviction, as add would.
func (t *accumulators) wouldReject(keyBytes []byte, estUB float64) bool {
	if t.limit <= 0 || t.policy != EvictLowestEstimate || len(t.m) < t.limit {
		return false
	}
	if _, ok := t.m[string(keyBytes)]; ok { // no alloc: map lookup
		return false
	}
	v := t.victim()
	if v == nil || estUB > v.estimate() {
		return false
	}
	t.evictions++
	return true
}

// victim selects the entry to discard under the configured policy,
// skipping stale queue entries.
func (t *accumulators) victim() *accum {
	if t.policy == EvictFIFO {
		for len(t.fifo) > 0 {
			e := t.fifo[0]
			t.fifo = t.fifo[1:]
			if a, ok := t.m[e.key]; ok && a.seq == e.seq {
				return a
			}
		}
		return nil
	}
	for len(t.pq) > 0 {
		e := t.pq[0]
		a, ok := t.m[e.key]
		if !ok || a.seq != e.seq || a.version != e.version {
			heap.Pop(&t.pq) // stale
			continue
		}
		return a
	}
	return nil
}

// mergeAccumulators folds per-worker accumulator tables into one.
// Per-candidate partial sums are added in worker order — each key
// occurs at most once per part, so the result is deterministic even
// though map iteration is not — and the witness becomes the earliest
// entity root in document order (Dewey keys compare lexicographically
// in document order). Afterwards the global γ bound is re-applied:
// if the merged table exceeds limit, the lowest-estimate candidates
// are dropped, mirroring the probabilistic eviction rule. The second
// return value is the number of candidates dropped at merge time.
//
// The parts are consumed: their accumulators are rehomed into the
// merged table, their storage is recycled, and they must not be used
// afterwards.
func mergeAccumulators(parts []*accumulators, limit int) (*accumulators, int) {
	merged := getAccumulators(0, EvictLowestEstimate)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for key, a := range p.m {
			t, ok := merged.m[key]
			if !ok {
				merged.m[key] = a
				continue
			}
			t.sum += a.sum
			t.bgMatched += a.bgMatched
			t.entities += a.entities
			if t.witness == "" || (a.witness != "" && a.witness < t.witness) {
				t.witness = a.witness
			}
		}
		p.release()
	}
	if limit <= 0 || len(merged.m) <= limit {
		return merged, 0
	}
	all := merged.all()
	sort.Slice(all, func(i, j int) bool {
		ei, ej := all[i].estimate(), all[j].estimate()
		if ei != ej {
			return ei > ej
		}
		return all[i].key < all[j].key
	})
	for _, a := range all[limit:] {
		delete(merged.m, a.key)
	}
	return merged, len(all) - limit
}

// all returns the live accumulators in unspecified order.
func (t *accumulators) all() []*accum {
	out := make([]*accum, 0, len(t.m))
	for _, a := range t.m {
		out = append(out, a)
	}
	return out
}

func (t *accumulators) len() int { return len(t.m) }
