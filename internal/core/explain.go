package core

import (
	"time"

	"xclean/internal/obs"
)

// Explain is the per-query trace returned by SuggestExplained (and the
// space-search variant): the wall-clock stage spans of the one call it
// describes, per-keyword variant counts, the work counters, and the
// final scored candidate table. It is what /suggest?debug=1 and
// `xclean -explain` render.
type Explain struct {
	// Query is the raw query that was traced.
	Query string `json:"query"`
	// TookNs is the total wall-clock time of the call in nanoseconds.
	// The call-level spans (worker == -1) plus the longest path through
	// the per-worker spans account for ≈ all of it; the remainder is
	// dispatch overhead.
	TookNs int64 `json:"tookNs"`
	// Spans are the stage spans: call-level stages carry worker == -1,
	// scan-phase stages one entry per shard.
	Spans []obs.Span `json:"spans"`
	// Keywords lists each scanned keyword with its ε-variant count.
	Keywords []ExplainKeyword `json:"keywords"`
	// Stats are the work counters of this call (same aggregate
	// SuggestDetailed returns).
	Stats Stats `json:"stats"`
	// Candidates is the final scored candidate table, in rank order.
	Candidates []ExplainCandidate `json:"candidates"`
}

// ExplainKeyword is one query keyword and the size of its ε-variant
// family (exact match included).
type ExplainKeyword struct {
	Token    string `json:"token"`
	Variants int    `json:"variants"`
}

// ExplainCandidate is one row of the final candidate table.
type ExplainCandidate struct {
	Words        []string `json:"words"`
	Score        float64  `json:"score"`
	EditDistance int      `json:"editDistance"`
	Entities     int      `json:"entities"`
	// ResultType is the inferred result node type, rendered as a
	// slash-separated path.
	ResultType string `json:"resultType"`
}

// newExplain assembles the trace of one finished call.
func (e *Engine) newExplain(query string, kws []Keyword, rc *runCtx, st Stats, out []Suggestion, total time.Duration) *Explain {
	ex := &Explain{
		Query:    query,
		TookNs:   total.Nanoseconds(),
		Spans:    obs.SpansOf(&rc.stages, rc.workers),
		Keywords: make([]ExplainKeyword, len(kws)),
		Stats:    st,
	}
	for i, kw := range kws {
		ex.Keywords[i] = ExplainKeyword{Token: kw.Raw, Variants: len(kw.Variants)}
	}
	ex.Candidates = make([]ExplainCandidate, len(out))
	for i, s := range out {
		ex.Candidates[i] = ExplainCandidate{
			Words:        s.Words,
			Score:        s.Score,
			EditDistance: s.EditDistance,
			Entities:     s.Entities,
			ResultType:   e.ix.PathTable().String(s.ResultType),
		}
	}
	return ex
}
