package core

import (
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// paperTree builds a tree equivalent to Figure 2 of the paper (the
// running example of Examples 2–5): the query is "tree icdt" with
// variants tree→{tree,trees,trie} and icdt→{icdt,icde}.
//
//	a
//	├── c (1.1): x "trees"
//	├── c (1.2): x "trie", x "tree", x "icde"
//	├── d (1.3): x "icdt", x "trie", x "icde"
//	└── d (1.4): x "trie", x "icde"
//
// Expected behaviour (Example 5): candidate "trie icde" has best type
// /a/d and matches entities 1.3 and 1.4; "tree icde" has best type
// /a/c and matches entity 1.2; "trie icdt" has best type /a/d and
// matches entity 1.3.
func paperTree() *xmltree.Tree {
	t := xmltree.NewTree("a")
	c1 := t.AddChild(t.Root, "c", "")
	t.AddChild(c1, "x", "trees")
	c2 := t.AddChild(t.Root, "c", "")
	t.AddChild(c2, "x", "trie")
	t.AddChild(c2, "x", "tree")
	t.AddChild(c2, "x", "icde")
	d1 := t.AddChild(t.Root, "d", "")
	t.AddChild(d1, "x", "icdt")
	t.AddChild(d1, "x", "trie")
	t.AddChild(d1, "x", "icde")
	d2 := t.AddChild(t.Root, "d", "")
	t.AddChild(d2, "x", "trie")
	t.AddChild(d2, "x", "icde")
	return t
}

func paperEngine(cfg Config) *Engine {
	if cfg.Tokenizer == (tokenizer.Options{}) {
		cfg.Tokenizer = tokenizer.Options{MinLength: 1}
	}
	tr := paperTree()
	ix := invindex.Build(tr, cfg.Tokenizer)
	return NewEngine(ix, cfg)
}

func findSuggestion(sugs []Suggestion, query string) (Suggestion, bool) {
	for _, s := range sugs {
		if s.Query() == query {
			return s, true
		}
	}
	return Suggestion{}, false
}

func TestPaperExampleVariants(t *testing.T) {
	e := paperEngine(Config{})
	kws := e.Keywords("tree icdt")
	if len(kws) != 2 {
		t.Fatalf("keywords=%d", len(kws))
	}
	var treeVars, icdtVars []string
	for _, v := range kws[0].Variants {
		treeVars = append(treeVars, v.Word)
	}
	for _, v := range kws[1].Variants {
		icdtVars = append(icdtVars, v.Word)
	}
	// Example 2: var(tree) = {tree, trees, trie}, var(icdt) = {icdt, icde}.
	wantTree := map[string]bool{"tree": true, "trees": true, "trie": true}
	for _, w := range treeVars {
		if !wantTree[w] {
			t.Errorf("unexpected variant %q of tree", w)
		}
		delete(wantTree, w)
	}
	if len(wantTree) != 0 {
		t.Errorf("missing variants of tree: %v", wantTree)
	}
	wantIcdt := map[string]bool{"icdt": true, "icde": true}
	for _, w := range icdtVars {
		if !wantIcdt[w] {
			t.Errorf("unexpected variant %q of icdt", w)
		}
		delete(wantIcdt, w)
	}
	if len(wantIcdt) != 0 {
		t.Errorf("missing variants of icdt: %v", wantIcdt)
	}
	// Weights: the exact keyword must carry almost all the mass.
	if kws[0].Variants[0].Word != "tree" || kws[0].Variants[0].Weight < 0.9 {
		t.Errorf("tree variant weights wrong: %+v", kws[0].Variants)
	}
}

func TestPaperExampleSuggestions(t *testing.T) {
	e := paperEngine(Config{})
	sugs := e.Suggest("tree icdt")
	if len(sugs) != 3 {
		t.Fatalf("got %d suggestions: %v", len(sugs), sugs)
	}

	c1, ok1 := findSuggestion(sugs, "trie icde")
	c2, ok2 := findSuggestion(sugs, "tree icde")
	c3, ok3 := findSuggestion(sugs, "trie icdt")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing expected candidates: %v", sugs)
	}

	paths := e.ix.PathTable()
	if got := paths.String(c1.ResultType); got != "/a/d" {
		t.Errorf("result type of 'trie icde' = %s want /a/d", got)
	}
	if got := paths.String(c2.ResultType); got != "/a/c" {
		t.Errorf("result type of 'tree icde' = %s want /a/c", got)
	}
	if got := paths.String(c3.ResultType); got != "/a/d" {
		t.Errorf("result type of 'trie icdt' = %s want /a/d", got)
	}
	if c1.Entities != 2 {
		t.Errorf("'trie icde' entities=%d want 2 (1.3 and 1.4)", c1.Entities)
	}
	if c2.Entities != 1 {
		t.Errorf("'tree icde' entities=%d want 1 (node 1.2)", c2.Entities)
	}
	if c3.Entities != 1 {
		t.Errorf("'trie icdt' entities=%d want 1 (node 1.3)", c3.Entities)
	}

	// The double-error candidate must rank below the single-error ones.
	if sugs[2].Query() != "trie icde" {
		t.Errorf("'trie icde' (2 edits) should rank last, got order %v, %v, %v",
			sugs[0].Query(), sugs[1].Query(), sugs[2].Query())
	}
	// Non-empty result guarantee.
	for _, s := range sugs {
		if s.Entities < 1 {
			t.Errorf("suggestion %q has no matching entity", s.Query())
		}
	}
}

func TestPaperExampleStats(t *testing.T) {
	e := paperEngine(Config{})
	e.Suggest("tree icdt")
	st := e.Stats()
	// Example 5 processes the subtrees of 1.2, 1.3, and 1.4; subtree
	// 1.1 is skipped entirely.
	if st.Subtrees != 3 {
		t.Errorf("subtrees=%d want 3", st.Subtrees)
	}
	// The 'trees' posting in subtree 1.1 must never be read.
	// Postings under 1.2..1.4: trie×3, tree×1, icde×3, icdt×1 = 8.
	if st.PostingsRead != 8 {
		t.Errorf("postingsRead=%d want 8", st.PostingsRead)
	}
	if st.TypeComputations > st.CandidatesSeen {
		t.Errorf("type computations %d exceed candidates %d",
			st.TypeComputations, st.CandidatesSeen)
	}
}

func TestPaperExampleCleanQuery(t *testing.T) {
	// A clean, answerable query must be suggested first.
	e := paperEngine(Config{})
	sugs := e.Suggest("trie icde")
	if len(sugs) == 0 || sugs[0].Query() != "trie icde" {
		t.Fatalf("clean query not top-ranked: %v", sugs)
	}
	if sugs[0].EditDistance != 0 {
		t.Errorf("clean query edit distance = %d", sugs[0].EditDistance)
	}
}
