package core

import (
	"fmt"
	"math"
	"testing"

	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
)

// Differential parity: a corpus split into entity-range shards and
// answered through SuggestPartials + MergePartials must reproduce the
// standalone engine's ranking exactly — same candidates, types, entity
// counts, distances, and witnesses, with scores within 1e-12 relative
// (partial sums associate differently across shard boundaries). γ must
// be non-binding: a shard-local accumulator bound can evict a
// candidate a global scan would keep.

// sameMerged compares a merged cluster ranking against a standalone
// ranking. The standalone side carries table IDs and Dewey values; the
// merged side carries their wire forms (label paths, dot-form codes).
func sameMerged(t *testing.T, ctx string, ix *invindex.Index, got []MergedSuggestion, want []Suggestion) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d suggestions\n got=%v\nwant=%v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Query() != w.Query() || g.ResultType != ix.Paths.String(w.ResultType) ||
			g.Entities != w.Entities || g.EditDistance != w.EditDistance ||
			g.Witness != w.Witness.String() {
			t.Fatalf("%s rank %d:\n got=%+v\nwant=%+v", ctx, i, g, w)
		}
		if math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
			t.Fatalf("%s rank %d: score %g vs %g", ctx, i, g.Score, w.Score)
		}
	}
}

// shardEngines builds one engine per entity-range shard of ix.
func shardEngines(t *testing.T, ix *invindex.Index, n int, cfg Config) []*Engine {
	t.Helper()
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		sl, err := ix.ShardEntities(i, n)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		engines[i] = NewEngine(sl, cfg)
	}
	return engines
}

func TestMergePartialsMatchesStandalone(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 17, Articles: 800})
	ix := invindex.Build(c.Tree, tokenizer.Options{})

	queries := append(c.SampleQueries(18, 15),
		"databse systems", "algoritm", "quer optimization",
		"xml keywod search", "zzzzqq", "")

	configs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{Epsilon: 2, Gamma: -1}},
		{"bigram", Config{Epsilon: 2, Gamma: -1, Bigram: true}},
		{"beta2-k5", Config{Epsilon: 1, Beta: 2, Gamma: -1, K: 5}},
	}
	for _, tc := range configs {
		full := NewEngine(ix, tc.cfg)
		for _, n := range []int{1, 2, 4} {
			shards := shardEngines(t, ix, n, tc.cfg)
			mc := MergeConfig{Beta: tc.cfg.Beta, K: tc.cfg.K}
			for _, q := range queries {
				ctx := fmt.Sprintf("%s shards=%d query=%q", tc.name, n, q)
				want := full.Suggest(q)
				sets := make([]PartialSet, n)
				for i, sh := range shards {
					sets[i], _ = sh.SuggestPartials(q)
				}
				got, err := MergePartials(mc, sets)
				if err != nil {
					t.Fatalf("%s: merge: %v", ctx, err)
				}
				sameMerged(t, ctx, ix, got, want)
			}
		}
	}
}

// A single shard holds the whole corpus, so the merge adds nothing:
// the scores must be bitwise identical, not merely within tolerance.
func TestMergePartialsSingleShardBitwise(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 19, Articles: 400})
	ix := invindex.Build(c.Tree, tokenizer.Options{})
	cfg := Config{Epsilon: 2, Gamma: -1}
	full := NewEngine(ix, cfg)
	solo := shardEngines(t, ix, 1, cfg)[0]

	for _, q := range append(c.SampleQueries(20, 8), "databse") {
		want := full.Suggest(q)
		ps, _ := solo.SuggestPartials(q)
		got, err := MergePartials(MergeConfig{}, []PartialSet{ps})
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %d vs %d suggestions", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				t.Fatalf("query %q rank %d: score %v != %v (must be bitwise equal)",
					q, i, got[i].Score, want[i].Score)
			}
		}
	}
}

// Omitting a shard's set (the degraded path) must still merge into a
// well-formed ranking: every surviving candidate scored from the
// remaining shards' sums and norms, never an error.
func TestMergePartialsDroppedShard(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 23, Articles: 400})
	ix := invindex.Build(c.Tree, tokenizer.Options{})
	cfg := Config{Epsilon: 2, Gamma: -1}
	shards := shardEngines(t, ix, 2, cfg)

	q := c.SampleQueries(24, 1)[0]
	ps0, _ := shards[0].SuggestPartials(q)
	ps1, _ := shards[1].SuggestPartials(q)

	both, err := MergePartials(MergeConfig{}, []PartialSet{ps0, ps1})
	if err != nil {
		t.Fatal(err)
	}
	only0, err := MergePartials(MergeConfig{}, []PartialSet{ps0})
	if err != nil {
		t.Fatal(err)
	}
	if len(both) == 0 {
		t.Fatalf("query %q found nothing with both shards", q)
	}
	// The surviving shard's answer normalizes by its local N only —
	// scores differ from the full answer, but the structure holds.
	for _, s := range only0 {
		if len(s.Words) == 0 || s.ResultType == "" || s.Entities <= 0 {
			t.Fatalf("degraded merge produced malformed suggestion %+v", s)
		}
		if math.IsNaN(s.Score) || math.IsInf(s.Score, 0) || s.Score <= 0 {
			t.Fatalf("degraded merge produced non-finite score %+v", s)
		}
	}
}

func TestMergePartialsArityMismatch(t *testing.T) {
	one := PartialSet{Keywords: [][]PartialVariant{{{Word: "a", Dist: 0}}}}
	two := PartialSet{Keywords: [][]PartialVariant{
		{{Word: "a", Dist: 0}}, {{Word: "b", Dist: 0}},
	}}
	if _, err := MergePartials(MergeConfig{}, []PartialSet{one, two}); err == nil {
		t.Fatal("keyword arity mismatch accepted")
	}
	// Empty sets carry no arity and are skipped, not errors.
	out, err := MergePartials(MergeConfig{}, []PartialSet{{}, {}})
	if err != nil || out != nil {
		t.Fatalf("empty sets: out=%v err=%v", out, err)
	}
}
