package core

import (
	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// Prior selects the entity prior P(r_j|T) of Eq. (8). The paper uses a
// uniform prior "for simplicity" and notes the framework "can be
// easily generalized to non-uniform priors if additional data or
// domain knowledge is available (e.g., query logs)" — these are those
// generalizations.
type Prior int

const (
	// PriorUniform is the paper's default: P(r_j|T) = 1/N.
	PriorUniform Prior = iota
	// PriorLength weights each entity by its virtual-document length,
	// P(r_j|T) ∝ |D(r_j)|: users are assumed likelier to target
	// content-rich entities. This is the document-prior analogue of
	// length-based priors in the language-modeling IR literature.
	PriorLength
	// PriorCustom weights entities by Config.CustomPrior (e.g. click or
	// view counts from a query log); absent entities get weight 1, so a
	// partial log degrades gracefully toward uniform.
	PriorCustom
)

// entityPrior evaluates P(r_j|T) up to the per-result-type normalizer.
type entityPrior struct {
	mode   Prior
	custom map[string]float64
	ix     invindex.Source
	// norm caches Σ weights per result type; populated eagerly at
	// construction so concurrent Suggest calls read it lock-free.
	norm map[xmltree.PathID]float64
}

func newEntityPrior(ix invindex.Source, mode Prior, custom map[string]float64) *entityPrior {
	ep := &entityPrior{mode: mode, custom: custom, ix: ix}
	if mode == PriorUniform {
		return ep // normFor answers from NodesWithPath; no cache needed
	}
	ep.norm = make(map[xmltree.PathID]float64, ix.PathTable().Len())
	for p := xmltree.PathID(0); int(p) < ix.PathTable().Len(); p++ {
		var z float64
		switch mode {
		case PriorLength:
			for _, l := range ix.SubtreeLensByPath(p) {
				z += float64(l)
			}
		case PriorCustom:
			for _, key := range ix.RootsByPath(p) {
				z += ep.customWeight(key)
			}
		}
		ep.norm[p] = z
	}
	return ep
}

func (ep *entityPrior) customWeight(rootKey string) float64 {
	if w, ok := ep.custom[rootKey]; ok && w > 0 {
		return 1 + w
	}
	return 1
}

// weight is the unnormalized prior weight of one entity.
func (ep *entityPrior) weight(rootKey string, docLen int32) float64 {
	switch ep.mode {
	case PriorLength:
		return float64(docLen)
	case PriorCustom:
		return ep.customWeight(rootKey)
	default:
		return 1
	}
}

// EntityWeight is the unnormalized prior weight of one entity under
// the configured prior. The LCA-family engines, which normalize per
// candidate rather than per result type, share it.
func (c Config) EntityWeight(rootKey string, docLen int32) float64 {
	switch c.Prior {
	case PriorLength:
		return float64(docLen)
	case PriorCustom:
		if w, ok := c.CustomPrior[rootKey]; ok && w > 0 {
			return 1 + w
		}
		return 1
	default:
		return 1
	}
}

// normFor is Σ weight over all entities of result type p; 0 means the
// type admits no entity mass and candidates typed there are dropped.
func (ep *entityPrior) normFor(p xmltree.PathID) float64 {
	if ep.mode == PriorUniform {
		return float64(ep.ix.NodesWithPath(p))
	}
	return ep.norm[p]
}
