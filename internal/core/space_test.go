package core

import (
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// spaceTree has documents mentioning "powerpoint" (one token) and
// "data base" (two tokens), exercising both space deletion and
// insertion.
func spaceTree() *xmltree.Tree {
	t := xmltree.NewTree("docs")
	d1 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d1, "title", "powerpoint presentation tips")
	d2 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d2, "title", "data base systems overview")
	d3 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d3, "title", "powerpoint slides data")
	return t
}

func spaceEngine() *Engine {
	tr := spaceTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	return NewEngine(ix, Config{})
}

func TestSpaceDeletion(t *testing.T) {
	e := spaceEngine()
	// "power point" only becomes matchable after merging the tokens.
	sugs := e.SuggestWithSpaces("power point presentation")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "powerpoint presentation" {
		t.Errorf("top=%q want 'powerpoint presentation'", sugs[0].Query())
	}
	// Plain Suggest cannot fix this error class.
	if got := e.Suggest("power point presentation"); got != nil {
		t.Errorf("plain Suggest unexpectedly matched: %v", got)
	}
}

func TestSpaceInsertion(t *testing.T) {
	e := spaceEngine()
	sugs := e.SuggestWithSpaces("database systems")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "data base systems" {
		t.Errorf("top=%q want 'data base systems'", sugs[0].Query())
	}
}

func TestSpaceCleanQueryUnharmed(t *testing.T) {
	e := spaceEngine()
	sugs := e.SuggestWithSpaces("powerpoint slides")
	if len(sugs) == 0 || sugs[0].Query() != "powerpoint slides" {
		t.Fatalf("clean query displaced: %v", sugs)
	}
	if sugs[0].EditDistance != 0 {
		t.Errorf("clean query edit distance=%d", sugs[0].EditDistance)
	}
}

func TestSpacePenaltyOrdersShapes(t *testing.T) {
	e := spaceEngine()
	// "powerpoint data" is clean; the split shape "power point data"
	// (not in vocabulary) must not outrank it.
	sugs := e.SuggestWithSpaces("powerpoint data")
	if len(sugs) == 0 || sugs[0].Query() != "powerpoint data" {
		t.Fatalf("unexpected ranking: %v", sugs)
	}
}

func TestExpandShapesTauBound(t *testing.T) {
	e := spaceEngine()
	shapes := e.expandShapes([]string{"power", "point", "data", "base"}, 2)
	for _, sh := range shapes {
		if sh.changes > 2 {
			t.Errorf("shape %v exceeds tau", sh.tokens)
		}
	}
	// τ=0 yields only the original shape.
	shapes0 := e.expandShapes([]string{"power", "point"}, 0)
	if len(shapes0) != 1 || shapes0[0].changes != 0 {
		t.Errorf("tau=0 shapes: %v", shapes0)
	}
}

func TestSpaceHopelessQuery(t *testing.T) {
	e := spaceEngine()
	if got := e.SuggestWithSpaces("zzz qqq"); got != nil {
		t.Errorf("hopeless query -> %v", got)
	}
	if got := e.SuggestWithSpaces(""); got != nil {
		t.Errorf("empty query -> %v", got)
	}
}
