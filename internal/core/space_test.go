package core

import (
	"context"
	"reflect"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// spaceTree has documents mentioning "powerpoint" (one token) and
// "data base" (two tokens), exercising both space deletion and
// insertion.
func spaceTree() *xmltree.Tree {
	t := xmltree.NewTree("docs")
	d1 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d1, "title", "powerpoint presentation tips")
	d2 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d2, "title", "data base systems overview")
	d3 := t.AddChild(t.Root, "doc", "")
	t.AddChild(d3, "title", "powerpoint slides data")
	return t
}

func spaceEngine() *Engine {
	tr := spaceTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	return NewEngine(ix, Config{})
}

func TestSpaceDeletion(t *testing.T) {
	e := spaceEngine()
	// "power point" only becomes matchable after merging the tokens.
	sugs := e.SuggestWithSpaces("power point presentation")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "powerpoint presentation" {
		t.Errorf("top=%q want 'powerpoint presentation'", sugs[0].Query())
	}
	// Plain Suggest cannot fix this error class.
	if got := e.Suggest("power point presentation"); got != nil {
		t.Errorf("plain Suggest unexpectedly matched: %v", got)
	}
}

func TestSpaceInsertion(t *testing.T) {
	e := spaceEngine()
	sugs := e.SuggestWithSpaces("database systems")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "data base systems" {
		t.Errorf("top=%q want 'data base systems'", sugs[0].Query())
	}
}

func TestSpaceCleanQueryUnharmed(t *testing.T) {
	e := spaceEngine()
	sugs := e.SuggestWithSpaces("powerpoint slides")
	if len(sugs) == 0 || sugs[0].Query() != "powerpoint slides" {
		t.Fatalf("clean query displaced: %v", sugs)
	}
	if sugs[0].EditDistance != 0 {
		t.Errorf("clean query edit distance=%d", sugs[0].EditDistance)
	}
}

func TestSpacePenaltyOrdersShapes(t *testing.T) {
	e := spaceEngine()
	// "powerpoint data" is clean; the split shape "power point data"
	// (not in vocabulary) must not outrank it.
	sugs := e.SuggestWithSpaces("powerpoint data")
	if len(sugs) == 0 || sugs[0].Query() != "powerpoint data" {
		t.Fatalf("unexpected ranking: %v", sugs)
	}
}

func TestExpandShapesTauBound(t *testing.T) {
	e := spaceEngine()
	shapes := e.expandShapes([]string{"power", "point", "data", "base"}, 2)
	for _, sh := range shapes {
		if sh.changes > 2 {
			t.Errorf("shape %v exceeds tau", sh.tokens)
		}
	}
	// τ=0 yields only the original shape.
	shapes0 := e.expandShapes([]string{"power", "point"}, 0)
	if len(shapes0) != 1 || shapes0[0].changes != 0 {
		t.Errorf("tau=0 shapes: %v", shapes0)
	}
}

// SuggestWithSpaces must report the work of every explored shape, not
// just the last one (the Stats-clobbering regression: each shape's run
// used to overwrite lastStats).
func TestSuggestWithSpacesAggregatesStats(t *testing.T) {
	// Corpus where both the joined and the split forms are indexed, so
	// at least two shapes do real scanning work.
	tr := xmltree.NewTree("docs")
	d1 := tr.AddChild(tr.Root, "doc", "")
	tr.AddChild(d1, "title", "notebook computing")
	d2 := tr.AddChild(tr.Root, "doc", "")
	tr.AddChild(d2, "title", "note book binding")
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, Config{})

	query := "note book"
	raw := tokenizer.TokenizeRaw(query)
	var want Stats
	productive := 0
	for _, sh := range e.expandShapes(raw, e.cfg.tau()) {
		kept := e.filterShape(sh.tokens)
		if len(kept) == 0 {
			continue
		}
		_, st, _ := e.suggestKeywordsN(context.Background(), e.keywordsFor(kept), e.cfg.workers(), nil)
		if st.Subtrees > 0 {
			productive++
		}
		want.add(st)
	}
	if productive < 2 {
		t.Fatalf("fixture too weak: only %d productive shapes", productive)
	}

	e.SuggestWithSpaces(query)
	if got := e.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("stats not aggregated across shapes:\n got=%+v\nwant=%+v", got, want)
	}
}

func TestSpaceHopelessQuery(t *testing.T) {
	e := spaceEngine()
	if got := e.SuggestWithSpaces("zzz qqq"); got != nil {
		t.Errorf("hopeless query -> %v", got)
	}
	if got := e.SuggestWithSpaces(""); got != nil {
		t.Errorf("empty query -> %v", got)
	}
}
