package core

import (
	"sort"
	"testing"
)

// Direct unit tests for mergeAccumulators — the partial-table fold
// shared by the in-process parallel scan and (via MergePartials) the
// cluster coordinator. The Workers:1-vs-N differential tests cover it
// end-to-end; these pin the fold and re-prune rules in isolation.

func mkAccum(key string, weightOverN, sum float64, entities int, witness string) *accum {
	return &accum{
		key:         key,
		words:       []string{key},
		sum:         sum,
		weightOverN: weightOverN,
		entities:    entities,
		witness:     witness,
	}
}

func tableOf(as ...*accum) *accumulators {
	t := newAccumulators(0, EvictLowestEstimate)
	for _, a := range as {
		t.m[a.key] = a
	}
	return t
}

func sortedKeys(t *accumulators) []string {
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestMergeAccumulatorsEmptyAndNilParts(t *testing.T) {
	merged, dropped := mergeAccumulators(nil, 10)
	if merged.len() != 0 || dropped != 0 {
		t.Fatalf("nil parts: len=%d dropped=%d", merged.len(), dropped)
	}
	merged, dropped = mergeAccumulators([]*accumulators{nil, tableOf(), nil}, 10)
	if merged.len() != 0 || dropped != 0 {
		t.Fatalf("empty parts: len=%d dropped=%d", merged.len(), dropped)
	}
}

func TestMergeAccumulatorsSingletonPartition(t *testing.T) {
	a := mkAccum("a", 0.5, 2.0, 3, "w1")
	b := mkAccum("b", 0.25, 1.0, 1, "w2")
	merged, dropped := mergeAccumulators([]*accumulators{tableOf(a, b)}, 10)
	if dropped != 0 {
		t.Fatalf("singleton partition dropped %d", dropped)
	}
	if got := sortedKeys(merged); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("keys = %v", got)
	}
	if m := merged.m["a"]; m.sum != 2.0 || m.entities != 3 || m.witness != "w1" {
		t.Fatalf("a = %+v", m)
	}
}

func TestMergeAccumulatorsFoldsPartialSums(t *testing.T) {
	// The same candidate in three parts: sums, background sums, and
	// entity counts add; the witness becomes the smallest Dewey key
	// (document order), and an empty witness never wins.
	p1 := tableOf(&accum{key: "c", sum: 1.0, bgMatched: 0.1, entities: 2, witness: ""})
	p2 := tableOf(&accum{key: "c", sum: 2.0, bgMatched: 0.2, entities: 3, witness: "kB"})
	p3 := tableOf(&accum{key: "c", sum: 4.0, bgMatched: 0.4, entities: 5, witness: "kA"})
	merged, dropped := mergeAccumulators([]*accumulators{p1, p2, p3}, 0)
	if dropped != 0 || merged.len() != 1 {
		t.Fatalf("len=%d dropped=%d", merged.len(), dropped)
	}
	m := merged.m["c"]
	if m.sum != 7.0 {
		t.Fatalf("sum = %g, want 7", m.sum)
	}
	wantBg := float64(0.1)
	wantBg += 0.2
	wantBg += 0.4 // part-order float addition, matching the fold
	if m.bgMatched != wantBg {
		t.Fatalf("bgMatched = %g, want %g", m.bgMatched, wantBg)
	}
	if m.entities != 10 {
		t.Fatalf("entities = %d, want 10", m.entities)
	}
	if m.witness != "kA" {
		t.Fatalf("witness = %q, want kA (document-order minimum)", m.witness)
	}
}

func TestMergeAccumulatorsGammaReprune(t *testing.T) {
	// Distinct candidates across two parts, union exceeding γ=2: the
	// lowest-estimate candidates are dropped, and the drop count comes
	// back for the Evictions stat.
	p1 := tableOf(
		mkAccum("high", 1.0, 4.0, 1, ""), // estimate 4
		mkAccum("low", 1.0, 1.0, 1, ""),  // estimate 1
	)
	p2 := tableOf(
		mkAccum("mid", 1.0, 3.0, 1, ""),    // estimate 3
		mkAccum("lower", 1.0, 0.5, 1, ""),  // estimate 0.5
		mkAccum("higher", 1.0, 5.0, 1, ""), // estimate 5
	)
	merged, dropped := mergeAccumulators([]*accumulators{p1, p2}, 2)
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if got := sortedKeys(merged); len(got) != 2 || got[0] != "high" || got[1] != "higher" {
		t.Fatalf("survivors = %v, want [high higher]", got)
	}

	// A limit at least the union size re-prunes nothing.
	p3 := tableOf(mkAccum("a", 1.0, 1.0, 1, ""), mkAccum("b", 1.0, 2.0, 1, ""))
	merged, dropped = mergeAccumulators([]*accumulators{p3}, 2)
	if dropped != 0 || merged.len() != 2 {
		t.Fatalf("at-limit: len=%d dropped=%d", merged.len(), dropped)
	}

	// limit ≤ 0 means unlimited: nothing is dropped however large.
	p4 := tableOf(mkAccum("a", 1.0, 1.0, 1, ""), mkAccum("b", 1.0, 2.0, 1, ""),
		mkAccum("c", 1.0, 3.0, 1, ""))
	merged, dropped = mergeAccumulators([]*accumulators{p4}, 0)
	if dropped != 0 || merged.len() != 3 {
		t.Fatalf("unlimited: len=%d dropped=%d", merged.len(), dropped)
	}
}

func TestMergeAccumulatorsRepruneTieBreaksByKey(t *testing.T) {
	// Equal estimates: the re-prune keeps the smallest keys, matching
	// the deterministic victim order of the scan-time eviction rule.
	p := tableOf(
		mkAccum("c", 1.0, 1.0, 1, ""),
		mkAccum("a", 1.0, 1.0, 1, ""),
		mkAccum("d", 1.0, 1.0, 1, ""),
		mkAccum("b", 1.0, 1.0, 1, ""),
	)
	merged, dropped := mergeAccumulators([]*accumulators{p}, 2)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if got := sortedKeys(merged); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("survivors = %v, want [a b]", got)
	}
}

func TestMergeAccumulatorsSumsCrossPartEstimates(t *testing.T) {
	// A candidate weak in every part but present in all must outrank a
	// candidate strong in one part only when its merged estimate is
	// larger — the re-prune must act on merged sums, not per-part ones.
	parts := []*accumulators{
		tableOf(mkAccum("spread", 1.0, 2.0, 1, ""), mkAccum("solo", 1.0, 3.0, 1, "")),
		tableOf(&accum{key: "spread", words: []string{"spread"}, weightOverN: 1.0, sum: 2.0, entities: 1}),
	}
	merged, dropped := mergeAccumulators(parts, 1)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if _, ok := merged.m["spread"]; !ok {
		t.Fatalf("survivor = %v, want spread (merged estimate 4 > 3)", sortedKeys(merged))
	}
}
