package core

import (
	"sync"

	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// scanScratch bundles every reusable buffer of one scan shard: merged
// lists, the per-shard result-type cache, the per-anchor occurrence
// maps, and the candidate-enumeration scratch. One query allocated all
// of these fresh (some once per anchor subtree); pooling them makes the
// steady-state scan nearly allocation-free. A scratch is owned by
// exactly one shard for the duration of one scan and returned to the
// pool when the shard finishes.
type scanScratch struct {
	lists  []*invindex.MergedList
	tokens []string
	// typeCache memoizes result-type inference per candidate key. It is
	// cleared on release: the pool is shared across engines, and a type
	// cached against one index is wrong for another.
	typeCache map[string]xmltree.PathID
	// occ[i] collects postings of keyword i's variants inside the
	// current anchor subtree, densely indexed by variant ordinal.
	occ []occSet
	// present[i] lists the variant indices of keyword i observed in the
	// current subtree, sorted.
	present [][]int
	// groups caches the per-(keyword, variant, depth) entity groupings
	// of the current subtree; reset per anchor, retiring value slices to
	// free for reuse.
	groups map[groupKey][]groupEntry
	free   [][]groupEntry
	cand   candScratch
}

// occSet is one keyword's per-anchor occurrence table: byVariant[v]
// lists the postings of variant v inside the current subtree, and
// touched lists the variants with at least one posting. Dense slice
// indexing replaces the map the scan previously rebuilt per anchor —
// variant ordinals are small and contiguous, and the touched list makes
// reset cost proportional to the postings actually collected, so the
// buffers stay warm across anchors and scans with no per-anchor
// hashing at all. Invariant: every byVariant entry not in touched has
// length 0.
type occSet struct {
	byVariant [][]invindex.Posting
	touched   []int
}

// size prepares the set for a keyword with nv variants. Entries beyond
// a previous scan's length are zero-length by the reset invariant.
func (o *occSet) size(nv int) {
	if cap(o.byVariant) < nv {
		b := make([][]invindex.Posting, nv)
		copy(b, o.byVariant)
		o.byVariant = b
	}
	o.byVariant = o.byVariant[:nv]
	o.touched = o.touched[:0]
}

// reset empties the set for the next anchor, truncating in place so
// posting buffers keep their capacity.
func (o *occSet) reset() {
	for _, v := range o.touched {
		o.byVariant[v] = o.byVariant[v][:0]
	}
	o.touched = o.touched[:0]
}

// add records one posting of variant v.
func (o *occSet) add(v int, p invindex.Posting) {
	s := o.byVariant[v]
	if len(s) == 0 {
		o.touched = append(o.touched, v)
	}
	o.byVariant[v] = append(s, p)
}

var scanPool = sync.Pool{New: func() interface{} {
	return &scanScratch{
		typeCache: make(map[string]xmltree.PathID),
		groups:    make(map[groupKey][]groupEntry),
	}
}}

// getScanScratch returns a scratch sized for nk keywords.
func getScanScratch(nk int) *scanScratch {
	s := scanPool.Get().(*scanScratch)
	if cap(s.lists) < nk {
		s.lists = make([]*invindex.MergedList, nk)
	}
	s.lists = s.lists[:nk]
	if cap(s.occ) < nk {
		occ := make([]occSet, nk)
		copy(occ, s.occ)
		s.occ = occ
	}
	s.occ = s.occ[:nk]
	if cap(s.present) < nk {
		s.present = make([][]int, nk)
	}
	s.present = s.present[:nk]
	s.cand.size(nk)
	return s
}

// release returns the scratch to the pool. Index-specific state (the
// type cache, merged-list cursors) is dropped; capacity-bearing buffers
// are kept warm.
func (s *scanScratch) release() {
	clear(s.typeCache)
	for i := range s.lists {
		s.lists[i] = nil
	}
	for i := range s.occ {
		s.occ[i].reset() // restore the all-empty invariant
	}
	s.resetGroups()
	scanPool.Put(s)
}

// resetGroups empties the per-anchor grouping cache, retiring the
// value slices for reuse by newGroup.
func (s *scanScratch) resetGroups() {
	if len(s.groups) == 0 {
		return
	}
	for _, g := range s.groups {
		if cap(g) > 0 {
			s.free = append(s.free, g[:0])
		}
	}
	clear(s.groups)
}

// newGroup returns an empty grouping slice, reusing a retired one when
// available.
func (s *scanScratch) newGroup() []groupEntry {
	if n := len(s.free); n > 0 {
		g := s.free[n-1]
		s.free = s.free[:n-1]
		return g
	}
	return nil
}

// size grows the candidate scratch to nk keywords.
func (c *candScratch) size(nk int) {
	if cap(c.choice) < nk {
		c.choice = make([]int, nk)
		c.words = make([]string, nk)
		c.counts = make([]int32, nk)
		c.odo = make([]int, nk)
		c.others = make([][]groupEntry, nk)
		c.pos = make([]int, nk)
	}
	c.choice = c.choice[:nk]
	c.words = c.words[:nk]
	c.counts = c.counts[:nk]
	c.odo = c.odo[:nk]
	if nk > 0 {
		c.others = c.others[:nk-1]
		c.pos = c.pos[:nk-1]
	}
}
