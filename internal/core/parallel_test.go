package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
)

// sameSuggestions asserts two rankings are identical: same candidates
// in the same order with the same result types, entity counts, edit
// distances, and witnesses. Scores may differ by float summation order
// (per-worker partial sums add in a different order than the
// sequential scan), so they are compared within 1e-12 relative.
func sameSuggestions(t *testing.T, ctx string, got, want []Suggestion) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d suggestions\n got=%v\nwant=%v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Query() != w.Query() || g.ResultType != w.ResultType ||
			g.Entities != w.Entities || g.EditDistance != w.EditDistance ||
			g.Witness.String() != w.Witness.String() {
			t.Fatalf("%s rank %d:\n got=%+v\nwant=%+v", ctx, i, g, w)
		}
		if math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
			t.Fatalf("%s rank %d: score %g vs %g", ctx, i, g.Score, w.Score)
		}
	}
}

// The sharded scan must return exactly the sequential results on the
// paper's running example, for every scoring configuration, and must
// do no more work than the sequential scan (sharding partitions the
// subtrees; a worker may even visit fewer — skipping other shards can
// exhaust a list before trailing incomplete groups are reached).
func TestParallelMatchesSequentialPaperExample(t *testing.T) {
	queries := []string{"tree icdt", "trie icde", "tree", "trees icde"}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"finite-gamma", Config{Gamma: 1000}},
		{"exact-scoring", Config{ScoreMode: ScoreModeExact}},
		{"unlimited-gamma", Config{Gamma: -1}},
	}
	for _, tc := range configs {
		seqCfg := tc.cfg
		seqCfg.Workers = 1
		seq := paperEngine(seqCfg)
		for _, n := range []int{2, 3, 4, 8} {
			parCfg := tc.cfg
			parCfg.Workers = n
			par := paperEngine(parCfg)
			for _, q := range queries {
				ctx := fmt.Sprintf("%s workers=%d query=%q", tc.name, n, q)
				want, wantSt := seq.SuggestDetailed(q)
				got, gotSt := par.SuggestDetailed(q)
				sameSuggestions(t, ctx, got, want)
				if gotSt.Subtrees > wantSt.Subtrees || gotSt.PostingsRead > wantSt.PostingsRead {
					t.Errorf("%s: parallel did extra work: subtrees %d vs %d, postings %d vs %d",
						ctx, gotSt.Subtrees, wantSt.Subtrees, gotSt.PostingsRead, wantSt.PostingsRead)
				}
				if gotSt.Subtrees == 0 && wantSt.Subtrees > 0 {
					t.Errorf("%s: parallel scan did nothing (sequential: %d subtrees)", ctx, wantSt.Subtrees)
				}
			}
		}
	}
}

// Randomized differential test: on random corpora, random worker
// counts must match the sequential path exactly, across scoring modes.
func TestParallelMatchesSequentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []string{"tree icde", "quer clean", "tred icdt", "tree query clean"}
	for trial := 0; trial < 60; trial++ {
		tr := randCorpus(rng)
		ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
		base := Config{
			Epsilon:   1 + rng.Intn(2),
			K:         100,
			Tokenizer: tokenizer.Options{MinLength: 1},
		}
		switch trial % 3 {
		case 1:
			base.ScoreMode = ScoreModeExact
		case 2:
			base.Gamma = -1
		}
		seqCfg := base
		seqCfg.Workers = 1
		parCfg := base
		parCfg.Workers = 2 + rng.Intn(7)
		seq := NewEngine(ix, seqCfg)
		par := NewEngine(ix, parCfg)
		for _, q := range queries {
			ctx := fmt.Sprintf("trial=%d workers=%d query=%q", trial, parCfg.Workers, q)
			want, wantSt := seq.SuggestDetailed(q)
			got, gotSt := par.SuggestDetailed(q)
			sameSuggestions(t, ctx, got, want)
			if gotSt.Subtrees > wantSt.Subtrees || gotSt.PostingsRead > wantSt.PostingsRead {
				t.Errorf("%s: parallel did extra work: subtrees %d vs %d, postings %d vs %d",
					ctx, gotSt.Subtrees, wantSt.Subtrees, gotSt.PostingsRead, wantSt.PostingsRead)
			}
		}
	}
}

// Under a γ tight enough to force evictions the victim choice is
// heuristic in both paths (per-worker bound, then merge re-prune), so
// exact equality is not guaranteed; the parallel path must still obey
// the bound and the non-empty-result guarantee.
func TestParallelTightGammaStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const gamma = 2
	for trial := 0; trial < 30; trial++ {
		tr := randCorpus(rng)
		ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
		base := Config{
			Epsilon:   2,
			Gamma:     gamma,
			K:         100,
			Tokenizer: tokenizer.Options{MinLength: 1},
		}
		seqCfg := base
		seqCfg.Workers = 1
		parCfg := base
		parCfg.Workers = 4
		seq := NewEngine(ix, seqCfg)
		par := NewEngine(ix, parCfg)
		for _, q := range []string{"tree query clean", "quer tred"} {
			want := seq.Suggest(q)
			got := par.Suggest(q)
			if (len(want) > 0) != (len(got) > 0) {
				t.Errorf("trial %d query %q: sequential returned %d, parallel %d",
					trial, q, len(want), len(got))
			}
			if len(got) > gamma {
				t.Errorf("trial %d query %q: %d suggestions exceed γ=%d", trial, q, len(got), gamma)
			}
			for _, s := range got {
				if s.Entities < 1 {
					t.Errorf("trial %d query %q: suggestion %q has no entity", trial, q, s.Query())
				}
			}
		}
	}
}

// SuggestWithSpaces runs shapes concurrently; results must match the
// sequential shape loop.
func TestParallelSpacesMatchesSequential(t *testing.T) {
	tr := spaceTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	seq := NewEngine(ix, Config{Workers: 1})
	par := NewEngine(ix, Config{Workers: 4})
	for _, q := range []string{"power point presentation", "database systems", "powerpoint slides"} {
		want := seq.SuggestWithSpaces(q)
		got := par.SuggestWithSpaces(q)
		sameSuggestions(t, fmt.Sprintf("spaces query=%q", q), got, want)
	}
}

// Refresh must be copy-on-write: engines created before a Refresh keep
// serving identical answers while Refresh extends the (cloned) variant
// index. Before the fix, Refresh called Add on the shared FastSS index
// and this test failed under -race.
func TestConcurrentSuggestAndRefresh(t *testing.T) {
	e := paperEngine(Config{})
	want := e.Suggest("tree icdt")

	stop := make(chan struct{})
	errs := make(chan string, 16)
	var wg, ready sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := e.Suggest("tree icdt"); !reflect.DeepEqual(got, want) {
					select {
					case errs <- "suggest diverged during concurrent Refresh":
					default:
					}
					return
				}
			}
		}()
	}
	// Don't start refreshing until every Suggest goroutine is live, so
	// the reads and the (pre-fix) writes genuinely overlap.
	ready.Wait()

	var last *Engine
	for i := 0; i < 2000; i++ {
		// Each Refresh adds a fresh word, forcing a write into the
		// variant index — shared with the Suggest goroutines above
		// unless Refresh clones first.
		last = e.Refresh([]string{fmt.Sprintf("w%04d", i)})
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	if got := last.Suggest("tree icdt"); !reflect.DeepEqual(got, want) {
		t.Errorf("refreshed engine diverged:\n got=%v\nwant=%v", got, want)
	}
}

// A Refresh must leave the original engine's variant index untouched.
func TestRefreshDoesNotMutateOriginal(t *testing.T) {
	e := paperEngine(Config{})
	before := e.fss.Size()
	e2 := e.Refresh([]string{"treet", "icdx"})
	if got := e.fss.Size(); got != before {
		t.Errorf("original variant index grew: %d -> %d", before, got)
	}
	if got := e2.fss.Size(); got != before+2 {
		t.Errorf("refreshed variant index size=%d want %d", got, before+2)
	}
}
