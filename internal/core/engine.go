package core

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/lm"
	"xclean/internal/obs"
	"xclean/internal/phonetic"
	"xclean/internal/resulttype"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// ScoreMode selects how P(C|T) is computed.
type ScoreMode int

const (
	// ScoreModeMatchedOnly follows Algorithm 1: only entities that
	// contain at least one instance of every keyword contribute. This
	// also guarantees suggested queries have non-empty results.
	ScoreModeMatchedOnly ScoreMode = iota
	// ScoreModeExact additionally adds the smoothed background-only
	// contribution of entities that match no keyword, approximating
	// the full sum of Eq. (8). Used by the scoring ablation.
	ScoreModeExact
)

// EvictionPolicy selects the accumulator victim rule of Section V-D.
type EvictionPolicy int

const (
	// EvictLowestEstimate evicts the candidate whose estimated final
	// score (error weight × accumulated mean) is lowest — the paper's
	// probabilistic pruning.
	EvictLowestEstimate EvictionPolicy = iota
	// EvictFIFO evicts the oldest candidate; the ablation baseline.
	EvictFIFO
)

// Config collects every tunable of the XClean engine. The zero value
// yields the paper's defaults (ε=1, β=5, μ=2000, r=0.8, d=2, γ=1000,
// k=10).
type Config struct {
	// Epsilon is the maximum edit errors per keyword (0 = 1).
	Epsilon int
	// Beta is the error penalty β. 0 means DefaultBeta (5); negative
	// values mean a literal β of 0 (no penalty), which Table IV sweeps.
	Beta float64
	// Mu is the Dirichlet smoothing parameter (0 = lm.DefaultMu).
	Mu float64
	// R is the depth reduction rate of Eq. (7) (0 = resulttype.DefaultR).
	R float64
	// MinDepth is the minimal depth threshold d (0 = 2).
	MinDepth int
	// Gamma is the maximum number of in-memory score accumulators
	// (0 = 1000). Negative means unlimited. Under parallel execution
	// (Workers ≠ 1) the bound applies per worker during the scan and is
	// re-applied globally when the per-worker tables are merged.
	Gamma int
	// K is the number of suggestions returned (0 = 10).
	K int
	// PartitionLen is the FastSS partition length l_p (0 = 12).
	PartitionLen int
	// ScoreMode selects matched-only (default, Algorithm 1) or exact
	// scoring.
	ScoreMode ScoreMode
	// Eviction selects the accumulator victim policy.
	Eviction EvictionPolicy
	// LinearSkip disables galloping search in MergedList.SkipTo (the
	// skipping ablation).
	LinearSkip bool
	// MaxSpaceChanges is τ of Section VI-A, the maximum number of
	// space insertions/deletions explored by SuggestWithSpaces.
	// (0 = 1).
	MaxSpaceChanges int
	// Phonetic enables the Soundex cognitive-error extension of
	// Section VI-A: vocabulary words sounding like a keyword join its
	// variant set with an effective edit distance of PhoneticDistance.
	Phonetic bool
	// PhoneticDistance is the penalty distance of phonetic variants
	// (0 = 2).
	PhoneticDistance int
	// Synonyms maps keywords to alternative terms (a thesaurus or
	// ontology, Section VI-A); in-vocabulary synonyms join the variant
	// set with SynonymDistance.
	Synonyms map[string][]string
	// SynonymDistance is the penalty distance of synonym variants
	// (0 = 1).
	SynonymDistance int
	// Prior selects the entity prior P(r_j|T) of Eq. (8); the zero
	// value is the paper's uniform prior.
	Prior Prior
	// CustomPrior maps entity root Dewey keys (xmltree.Dewey.Key) to
	// unnormalized prior weights; consulted only under PriorCustom.
	CustomPrior map[string]float64
	// Bigram multiplies every candidate's score by the interpolated
	// bigram coherence of its keyword sequence (the language-model
	// extension beyond the paper's unigram Eq. (9)).
	Bigram bool
	// BigramLambda is the interpolation weight λ of the bigram model
	// (0 = lm.DefaultLambda).
	BigramLambda float64
	// Tokenizer overrides the indexing tokenizer options for queries.
	Tokenizer tokenizer.Options
	// Workers bounds the parallelism of one suggestion call: the
	// anchor-subtree scan of Algorithm 1 is sharded across this many
	// goroutines by top-level child, and SuggestWithSpaces runs up to
	// this many shapes concurrently. 0 = GOMAXPROCS; 1 = the exact
	// sequential path of Algorithm 1; n > 1 = n workers. Negative
	// values mean 1. When γ does not bind, results are identical for
	// every setting up to floating-point summation order; under a
	// binding γ the parallel path may prune a different (still valid)
	// candidate set than the sequential scan, because the per-worker
	// bound plus merge-time re-prune can evict different accumulators
	// (see Gamma).
	Workers int
}

func (c Config) epsilon() int {
	if c.Epsilon <= 0 {
		return 1
	}
	return c.Epsilon
}

func (c Config) minDepth() int {
	if c.MinDepth <= 0 {
		return 2
	}
	return c.MinDepth
}

func (c Config) gamma() int {
	if c.Gamma == 0 {
		return 1000
	}
	return c.Gamma
}

func (c Config) k() int {
	if c.K <= 0 {
		return 10
	}
	return c.K
}

func (c Config) partitionLen() int {
	if c.PartitionLen <= 0 {
		return 12
	}
	return c.PartitionLen
}

func (c Config) tau() int {
	if c.MaxSpaceChanges <= 0 {
		return 1
	}
	return c.MaxSpaceChanges
}

func (c Config) workers() int {
	if c.Workers < 0 || c.Workers == 1 {
		return 1
	}
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) phoneticDistance() int {
	if c.PhoneticDistance <= 0 {
		return 2
	}
	return c.PhoneticDistance
}

func (c Config) synonymDistance() int {
	if c.SynonymDistance <= 0 {
		return 1
	}
	return c.SynonymDistance
}

// Suggestion is one alternative query with its score P(C|Q,T) up to
// the constant κ, and diagnostic detail.
type Suggestion struct {
	// Words are the suggested keywords, aligned with the input
	// keywords (after space expansion they may differ in number).
	Words []string
	// Score is errWeight(C) · P(C|T); comparable within one Suggest
	// call only.
	Score float64
	// ResultType is the inferred best result node type p_C.
	ResultType xmltree.PathID
	// Entities is the number of entities of type p_C that matched all
	// keywords — always ≥ 1, which is the paper's non-empty-result
	// guarantee.
	Entities int
	// EditDistance is the total edit distance from the observed query.
	EditDistance int
	// Witness is the root of the first entity that matched every
	// keyword — a concrete exhibit of the non-empty-result guarantee,
	// usable for result previews.
	Witness xmltree.Dewey
}

// Query renders the suggestion as a query string.
func (s Suggestion) Query() string { return strings.Join(s.Words, " ") }

// Engine answers top-k query cleaning requests against one index.
// Engines are safe for concurrent use: all index structures are
// read-only after construction and every Suggest call works on its own
// state.
type Engine struct {
	ix invindex.Source
	// fss is the deletion-variant dictionary. It is a structure derived
	// from the vocabulary — O(vocab) to build — so snapshot-backed
	// engines defer it: NewEngineLazy leaves fss nil and sets fssInit,
	// and the first query pays the build (guarded by fssOnce). Access
	// only through fastss().
	fss     *fastss.Index
	fssOnce sync.Once
	fssInit func() *fastss.Index
	phon    *phonetic.Index // nil unless Config.Phonetic
	model   *lm.Model
	bigram  *lm.BigramModel // nil unless Config.Bigram
	inf     *resulttype.Inferrer
	em      ErrorModel
	prior   *entityPrior
	cfg     Config

	// scanPaths, deadOrds, and deadNorm are set only on scan-variant
	// engines (ScanVariant), which score one sealed index segment inside
	// a segmented stack. scanPaths is the newest (superset) path table of
	// the stack, consulted wherever a result type inferred from global
	// statistics may name a path this segment's own table has never
	// interned. deadOrds marks tombstoned top-level document ordinals:
	// the anchor scan skips their subtrees without reading postings.
	// deadNorm is the tombstoned prior mass per result type, subtracted
	// from the cached normalizers so scores reflect only live entities.
	// All three are nil on ordinary engines, which therefore pay one nil
	// check on the affected paths.
	scanPaths *xmltree.PathTable
	deadOrds  map[uint32]bool
	deadNorm  map[xmltree.PathID]float64

	// sink receives aggregate metrics of every call; nil disables all
	// instrumentation (one branch per call site). Set via SetSink;
	// carried across Refresh.
	sink *obs.Sink

	// mu guards lastStats, the diagnostics of the most recent call.
	mu        sync.Mutex
	lastStats Stats
}

// Stats reports work counters of the last Suggest call, used by the
// efficiency experiments. Under parallel execution (Config.Workers)
// the counters are summed across workers; SuggestWithSpaces sums them
// across every explored shape. TypeComputations may exceed the
// sequential count because each worker keeps its own type cache.
// Subtrees and PostingsRead may be lower than the sequential count:
// a worker's galloping skip over other shards' children can exhaust a
// list early, so trailing incomplete anchor groups — which contribute
// no candidates — are never visited at all.
type Stats struct {
	// PostingsRead is the number of merged-list entries consumed.
	PostingsRead int
	// Subtrees is the number of anchor subtrees processed.
	Subtrees int
	// CandidatesSeen is the number of candidate-query observations
	// (per subtree).
	CandidatesSeen int
	// TypeComputations counts FindResultType invocations (cache
	// misses).
	TypeComputations int
	// TypeCacheHits counts result-type cache hits; together with
	// TypeComputations it makes per-worker cache effectiveness
	// measurable (hits / (hits + misses)).
	TypeCacheHits int
	// Evictions counts accumulator evictions, including candidates
	// dropped when per-worker tables are re-pruned to γ at merge time.
	Evictions int
	// WorkerSubtrees lists the anchor subtrees processed by each scan
	// shard of the call, in shard order, exposing parallel skew. The
	// sequential path reports one entry; under the space search the
	// shard lists of every explored shape are concatenated in shape
	// order. Its sum always equals Subtrees.
	WorkerSubtrees []int
}

// add accumulates another run's counters into s (per-worker shards,
// per-shape runs). Per-shard subtree lists concatenate, so the
// per-worker attribution of every constituent run survives
// aggregation.
func (s *Stats) add(o Stats) {
	s.PostingsRead += o.PostingsRead
	s.Subtrees += o.Subtrees
	s.CandidatesSeen += o.CandidatesSeen
	s.TypeComputations += o.TypeComputations
	s.TypeCacheHits += o.TypeCacheHits
	s.Evictions += o.Evictions
	s.WorkerSubtrees = append(s.WorkerSubtrees, o.WorkerSubtrees...)
}

// NewEngine builds an engine over an existing index. The FastSS
// variant index is constructed over the index vocabulary.
func NewEngine(ix invindex.Source, cfg Config) *Engine {
	fss := fastss.Build(ix.VocabList(), fastss.Config{
		MaxErrors:    cfg.epsilon(),
		PartitionLen: cfg.partitionLen(),
	})
	return NewEngineWithFastSS(ix, fss, cfg)
}

// NewEngineLazy builds an engine whose FastSS variant index is
// constructed on first use rather than up front. Snapshot-backed
// engines use it to keep open cost O(schema): walking the mapped
// vocabulary to derive the variant dictionary is the one unavoidable
// O(vocab) step, and deferring it moves that cost off the open path
// onto the first query.
func NewEngineLazy(ix invindex.Source, cfg Config) *Engine {
	e := NewEngineWithFastSS(ix, nil, cfg)
	e.fssInit = func() *fastss.Index {
		return fastss.Build(ix.VocabList(), fastss.Config{
			MaxErrors:    cfg.epsilon(),
			PartitionLen: cfg.partitionLen(),
		})
	}
	return e
}

// fastss returns the variant dictionary, building it on first use when
// the engine was constructed lazily. Safe for concurrent callers.
func (e *Engine) fastss() *fastss.Index {
	e.fssOnce.Do(func() {
		if e.fss == nil && e.fssInit != nil {
			e.fss = e.fssInit()
		}
	})
	return e.fss
}

// NewEngineWithFastSS builds an engine reusing a prebuilt variant
// index (so that several engines with different scoring parameters can
// share it, as the β and γ sweeps do).
func NewEngineWithFastSS(ix invindex.Source, fss *fastss.Index, cfg Config) *Engine {
	e := &Engine{
		ix:    ix,
		fss:   fss,
		model: lm.New(ix.Vocabulary(), cfg.Mu),
		inf: &resulttype.Inferrer{
			Index:    ix,
			R:        cfg.R,
			MinDepth: cfg.minDepth(),
		},
		em:    ErrorModel{Beta: cfg.Beta},
		prior: newEntityPrior(ix, cfg.Prior, cfg.CustomPrior),
		cfg:   cfg,
	}
	if cfg.Phonetic {
		e.phon = phonetic.Build(ix.VocabList())
	}
	if cfg.Bigram {
		e.bigram = lm.NewBigram(ix, ix.Vocabulary(), cfg.BigramLambda)
	}
	return e
}

// Refresh rebuilds the structures derived from the index after an
// incremental index mutation (invindex.Index.AddDocument): the given
// words — typically every token of the added document; known words are
// ignored — join the variant index, and prior caches, the phonetic
// index, and the language models are rebuilt. Queries go to the
// returned engine.
//
// Refresh is copy-on-write: when words are added, the shared variant
// index is cloned before being extended, so the receiver and any
// sibling engines sharing the same FastSS index may keep serving
// Suggest traffic concurrently with the Refresh.
func (e *Engine) Refresh(newWords []string) *Engine {
	fss := e.fastss()
	if len(newWords) > 0 {
		fss = fss.Clone()
		for _, w := range newWords {
			fss.Add(w)
		}
	}
	ne := NewEngineWithFastSS(e.ix, fss, e.cfg)
	ne.sink = e.sink
	return ne
}

// SetSink attaches a metrics sink: every subsequent call records its
// latency, per-stage timing, and work counters there. A nil sink
// disables instrumentation entirely — the hot path then pays only a
// nil check per call. Engines produced by Refresh inherit the sink.
// SetSink must not race with in-flight Suggest calls (attach before
// serving, like the other configuration).
func (e *Engine) SetSink(s *obs.Sink) { e.sink = s }

// Sink returns the attached metrics sink (nil when disabled).
func (e *Engine) Sink() *obs.Sink { return e.sink }

// setLastStats records the diagnostics of a completed call.
func (e *Engine) setLastStats(st Stats) {
	e.mu.Lock()
	e.lastStats = st
	e.mu.Unlock()
}

// Stats returns the work counters of the most recent Suggest call.
// Under concurrent use, prefer SuggestDetailed, which returns the
// counters of one specific call.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastStats
}

// Keywords tokenizes a raw query and attaches the variant sets. A
// keyword with an empty variant set makes every candidate invalid, so
// callers can detect hopeless queries early.
func (e *Engine) Keywords(query string) []Keyword {
	toks := e.cfg.Tokenizer.Tokenize(query)
	kws := make([]Keyword, len(toks))
	for i, tok := range toks {
		kws[i] = e.em.Keyword(tok, e.variants(tok))
	}
	return kws
}

// variants merges all enabled variant sources for one keyword:
// edit-distance neighbors (FastSS), phonetic equivalents, and
// synonyms. When a word arises from several sources, the smallest
// effective distance wins.
func (e *Engine) variants(tok string) []fastss.Match {
	matches := e.fastss().Search(tok)
	if e.phon == nil && e.cfg.Synonyms == nil {
		return matches
	}
	best := make(map[string]int, len(matches))
	for _, m := range matches {
		best[m.Word] = m.Dist
	}
	merge := func(word string, dist int) {
		if d, ok := best[word]; !ok || dist < d {
			best[word] = dist
		}
	}
	if e.phon != nil {
		for _, w := range e.phon.Search(tok) {
			merge(w, e.cfg.phoneticDistance())
		}
	}
	if e.cfg.Synonyms != nil {
		for _, s := range e.cfg.Synonyms[tok] {
			if s != tok && e.ix.Vocabulary().Contains(s) {
				merge(s, e.cfg.synonymDistance())
			}
		}
	}
	if len(best) == len(matches) {
		return matches
	}
	out := make([]fastss.Match, 0, len(best))
	for w, d := range best {
		out = append(out, fastss.Match{Word: w, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Word < out[j].Word
	})
	return out
}

// CancelCheckEvery is the cooperative cancellation granularity of the
// anchor-subtree scan: each scan shard polls its context once per this
// many anchor iterations (and once before the first), so a cancelled
// call stops within one check interval per worker. The scan's own work
// per anchor (list alignment, subtree collection, candidate
// enumeration) dwarfs one channel poll, so amortizing it 64-fold keeps
// the uncancelled hot path inside the existing ≤2% no-sink budget
// (BenchmarkSuggestContext proves it); calls carrying no cancelable
// context skip the polling entirely.
const CancelCheckEvery = 64

// Suggest returns the top-k alternative queries for the raw query,
// ranked by P(C|Q,T). It implements Algorithm 1 of the paper.
func (e *Engine) Suggest(query string) []Suggestion {
	out, _ := e.SuggestDetailed(query)
	return out
}

// SuggestContext is Suggest under a context: a cancelled or expired ctx
// stops the anchor-subtree scan cooperatively (within CancelCheckEvery
// anchors per worker) and the call returns ctx.Err() with no
// suggestions. A context that can never be cancelled (such as
// context.Background()) costs nothing over Suggest.
func (e *Engine) SuggestContext(ctx context.Context, query string) ([]Suggestion, error) {
	out, _, _, err := e.suggestObserved(ctx, query, false)
	return out, err
}

// SuggestDetailed is Suggest plus the work counters of this call.
func (e *Engine) SuggestDetailed(query string) ([]Suggestion, Stats) {
	out, st, _, _ := e.suggestObserved(context.Background(), query, false)
	return out, st
}

// SuggestDetailedContext is SuggestDetailed under a context (see
// SuggestContext). On cancellation the returned Stats still report the
// work done before the scan stopped.
func (e *Engine) SuggestDetailedContext(ctx context.Context, query string) ([]Suggestion, Stats, error) {
	out, st, _, err := e.suggestObserved(ctx, query, false)
	return out, st, err
}

// SuggestExplained is Suggest plus a per-query trace: stage spans with
// per-worker attribution, per-keyword variant counts, cache and
// eviction counters, and the scored candidate table. Tracing forces
// timing on even without an attached sink, so the call is marginally
// slower than plain Suggest; results are identical.
func (e *Engine) SuggestExplained(query string) ([]Suggestion, *Explain) {
	out, _, ex, _ := e.suggestObserved(context.Background(), query, true)
	return out, ex
}

// SuggestExplainedContext is SuggestExplained under a context (see
// SuggestContext). A cancelled call returns no trace.
func (e *Engine) SuggestExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	out, _, ex, err := e.suggestObserved(ctx, query, true)
	return out, ex, err
}

// suggestObserved is the single user-call entry of the non-space path:
// it tokenizes, builds variants, runs Algorithm 1, and — when a sink
// is attached or a trace is requested — times every pipeline stage and
// publishes the aggregates.
func (e *Engine) suggestObserved(ctx context.Context, query string, explain bool) ([]Suggestion, Stats, *Explain, error) {
	if e.sink == nil && !explain {
		// Fast path: no instrumentation beyond the always-on counters.
		out, st, err := e.suggestKeywordsN(ctx, e.Keywords(query), e.cfg.workers(), nil)
		e.setLastStats(st)
		return out, st, nil, err
	}

	start := time.Now()
	rc := &runCtx{}
	t0 := start
	toks := e.cfg.Tokenizer.Tokenize(query)
	rc.stages[obs.StageTokenize] += time.Since(t0)

	t0 = time.Now()
	kws := e.keywordsFor(toks)
	rc.stages[obs.StageVariants] += time.Since(t0)

	out, st, err := e.suggestKeywordsN(ctx, kws, e.cfg.workers(), rc)
	total := time.Since(start)
	e.setLastStats(st)
	e.observeCall(total, rc, st)
	if err != nil {
		// The partial scan still consumed resources (observed above),
		// but a cancelled call yields neither suggestions nor a trace.
		return nil, st, nil, err
	}

	var ex *Explain
	if explain {
		ex = e.newExplain(query, kws, rc, st, out, total)
	}
	return out, st, ex, nil
}

// observeCall publishes one completed user call to the sink.
func (e *Engine) observeCall(total time.Duration, rc *runCtx, st Stats) {
	s := e.sink
	if s == nil {
		return
	}
	s.ObserveSuggest(total, &rc.stages)
	s.PostingsRead.Add(int64(st.PostingsRead))
	s.Subtrees.Add(int64(st.Subtrees))
	s.CandidatesSeen.Add(int64(st.CandidatesSeen))
	s.TypeCacheHits.Add(int64(st.TypeCacheHits))
	s.TypeCacheMisses.Add(int64(st.TypeComputations))
	s.Evictions.Add(int64(st.Evictions))
	if len(rc.workers) > 1 {
		var sum, max time.Duration
		for i := range rc.workers {
			d := rc.workers[i].Total()
			sum += d
			if d > max {
				max = d
			}
		}
		if sum > 0 {
			s.WorkerImbalance.Observe(float64(max) * float64(len(rc.workers)) / float64(sum))
		}
	}
}

// runCtx carries the per-call observability state. A nil *runCtx
// disables stage timing throughout the scan (the default when no sink
// is attached and no trace was requested); the struct is owned by one
// user call and filled by at most one goroutine at a time — parallel
// shards fill their own StageDurations entries.
type runCtx struct {
	// stages aggregates stage time across the whole call (parallel
	// shards summed).
	stages obs.StageDurations
	// workers holds the scan-stage durations of each shard, in shard
	// order (concatenated across shapes under the space search).
	workers []obs.StageDurations
}

// suggestKeywordsN runs Algorithm 1 over a prepared keyword list with
// an explicit scan worker count, sharding the anchor-subtree scan
// across that many goroutines. Each worker owns the top-level children
// whose ordinal is congruent to its shard index and skips the rest
// with one galloping SkipTo per foreign child, so every posting is
// still read at most once, by exactly one worker. Per-worker
// accumulator tables are merged (and re-pruned to γ) before finalize.
// The explicit count lets SuggestWithSpaces force sequential inner
// scans when it already fans out over shapes (so one call never
// exceeds Config.Workers goroutines in total). It does not touch
// lastStats — callers that own a whole user call record the aggregate.
func (e *Engine) suggestKeywordsN(ctx context.Context, kws []Keyword, n int, rc *runCtx) ([]Suggestion, Stats, error) {
	acc, st, err := e.scanKeywords(ctx, kws, n, rc)
	if err != nil || acc == nil {
		return nil, st, err
	}
	out := e.finalizeTimed(kws, acc, rc)
	// The ranked suggestions hold the accumulators' words; only the
	// table's storage is recycled.
	acc.release()
	return out, st, nil
}

// scanKeywords is the scan half of Algorithm 1: it shards the
// anchor-subtree scan across n goroutines and returns the merged,
// γ-bounded accumulator table, without ranking it. It returns a nil
// table when the keyword list is empty or some keyword has no
// variants. SuggestPartials uses it directly to expose raw
// accumulators to the cluster coordinator; suggestKeywordsN ranks its
// result.
func (e *Engine) scanKeywords(ctx context.Context, kws []Keyword, n int, rc *runCtx) (*accumulators, Stats, error) {
	var st Stats
	if len(kws) == 0 {
		return nil, st, nil
	}
	for _, kw := range kws {
		if len(kw.Variants) == 0 {
			return nil, st, nil
		}
	}

	if n <= 1 {
		var tm *obs.StageDurations
		if rc != nil {
			tm = &obs.StageDurations{}
		}
		acc, st, err := e.scanShard(ctx, kws, 0, 1, tm)
		st.WorkerSubtrees = []int{st.Subtrees}
		if rc != nil {
			rc.stages.Add(tm)
			rc.workers = append(rc.workers, *tm)
		}
		if err != nil {
			return nil, st, err
		}
		return acc, st, nil
	}

	parts := make([]*accumulators, n)
	stats := make([]Stats, n)
	errs := make([]error, n)
	var tms []obs.StageDurations
	if rc != nil {
		tms = make([]obs.StageDurations, n)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var tm *obs.StageDurations
			if tms != nil {
				tm = &tms[i]
			}
			parts[i], stats[i], errs[i] = e.scanShard(ctx, kws, i, n, tm)
		}(i)
	}
	// Every shard polls the same context, so cancellation drains the
	// whole fan-out within one check interval per worker; the Wait
	// guarantees no scan goroutine outlives the call either way.
	wg.Wait()
	for _, s := range stats {
		st.add(s)
	}
	st.WorkerSubtrees = make([]int, n)
	for i := range stats {
		st.WorkerSubtrees[i] = stats[i].Subtrees
	}
	if rc != nil {
		for i := range tms {
			rc.stages.Add(&tms[i])
		}
		rc.workers = append(rc.workers, tms...)
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	acc, dropped := mergeAccumulators(parts, e.cfg.gamma())
	st.Evictions += dropped
	return acc, st, nil
}

// finalizeTimed is finalize with the rank stage attributed to rc.
func (e *Engine) finalizeTimed(kws []Keyword, acc *accumulators, rc *runCtx) []Suggestion {
	if rc == nil {
		return e.finalize(kws, acc)
	}
	t0 := time.Now()
	out := e.finalize(kws, acc)
	rc.stages[obs.StageRank] += time.Since(t0)
	return out
}

// scanShard is the scan loop of Algorithm 1 restricted to one shard of
// the anchor subtrees. With nShards == 1 it is exactly the sequential
// algorithm. Each shard reads the merged lists through its own
// cursors, so shards share only the immutable index. When tm is
// non-nil the shard attributes its wall time across the scan,
// enumerate, typeinfer, and accumulate stages; tm must be zeroed and
// owned by this shard alone.
//
// The shard polls ctx.Done() once per CancelCheckEvery anchor
// iterations (including before the first) and abandons the scan with
// ctx.Err() when the context is dead; the returned Stats then report
// the work done up to that point. A non-cancelable context (Done() ==
// nil) skips the polling entirely.
func (e *Engine) scanShard(ctx context.Context, kws []Keyword, shard, nShards int, tm *obs.StageDurations) (*accumulators, Stats, error) {
	var st Stats
	var t0 time.Time
	if tm != nil {
		t0 = time.Now()
	}
	done := ctx.Done()
	sinceCheck := 0
	d := e.cfg.minDepth()
	sc := getScanScratch(len(kws))
	defer sc.release()
	lists := sc.lists
	for i, kw := range kws {
		tokens := sc.tokens[:0]
		for _, v := range kw.Variants {
			tokens = append(tokens, v.Word)
		}
		sc.tokens = tokens // MergedListFor does not retain the slice
		lists[i] = e.ix.MergedListFor(tokens)
		lists[i].SetLinearSkip(e.cfg.LinearSkip)
		sc.occ[i].size(len(kw.Variants))
	}

	acc := getAccumulators(e.cfg.gamma(), e.cfg.Eviction)
	occ := sc.occ

	anchor, ok := e.maxHead(lists)
	for ok {
		if done != nil {
			if sinceCheck == 0 {
				select {
				case <-done:
					if tm != nil {
						tm[obs.StageScan] += time.Since(t0) -
							tm[obs.StageEnumerate] - tm[obs.StageTypeInfer] - tm[obs.StageAccumulate]
					}
					acc.release()
					return nil, st, ctx.Err()
				default:
				}
				sinceCheck = CancelCheckEvery
			}
			sinceCheck--
		}
		g := anchor.Truncate(d)
		if e.deadOrds != nil && len(g) >= 2 && e.deadOrds[g[1]] {
			// Tombstoned document: gallop every list past its subtree
			// without reading the postings.
			target := xmltree.Dewey{g[0], g[1] + 1}
			for _, l := range lists {
				l.SkipTo(target)
			}
			anchor, ok = e.maxHead(lists)
			continue
		}
		if nShards > 1 {
			if len(g) < 2 {
				// An anchor directly under the root has no top-level
				// child ordinal; shard 0 owns it, the others drain the
				// group without recording anything.
				if shard != 0 {
					for _, l := range lists {
						l.CollectSubtree(g, func(invindex.Entry) {})
					}
					anchor, ok = e.maxHead(lists)
					continue
				}
			} else if c := int(g[1]) % nShards; c != shard {
				// Foreign child: gallop every list to this shard's next
				// top-level child, skipping the intervening postings
				// without reading them.
				next := g[1] + uint32((shard-c+nShards)%nShards)
				target := xmltree.Dewey{g[0], next}
				for _, l := range lists {
					l.SkipTo(target)
				}
				anchor, ok = e.maxHead(lists)
				continue
			}
		}
		st.Subtrees++

		// Align every list to g and collect the subtree occurrences.
		for i := range occ {
			occ[i].reset()
		}
		complete := true
		for i, l := range lists {
			found := false
			l.CollectSubtree(g, func(entry invindex.Entry) {
				occ[i].add(entry.TokenIdx, entry.Posting)
				st.PostingsRead++
				found = true
			})
			if !found {
				complete = false
			}
		}
		if complete {
			e.enumerateAndScore(kws, sc, acc, &st, tm)
		}

		anchor, ok = e.maxHead(lists)
	}

	if tm != nil {
		// Everything not attributed to an inner stage is merged-list
		// scanning: anchor selection, galloping skips, collection.
		tm[obs.StageScan] += time.Since(t0) -
			tm[obs.StageEnumerate] - tm[obs.StageTypeInfer] - tm[obs.StageAccumulate]
	}
	return acc, st, nil
}

// maxHead returns the anchor: the largest Dewey code among the current
// heads. ok is false when any list is exhausted (no further subtree
// can contain all keywords).
func (e *Engine) maxHead(lists []*invindex.MergedList) (xmltree.Dewey, bool) {
	var max xmltree.Dewey
	for _, l := range lists {
		entry, ok := l.CurPos()
		if !ok {
			return nil, false
		}
		if max == nil || entry.Dewey.Compare(max) > 0 {
			max = entry.Dewey
		}
	}
	return max, max != nil
}

// groupEntry is one entity root observed for a (keyword, variant) at a
// given depth, with the summed term frequency under it.
type groupEntry struct {
	rootKey string
	path    xmltree.PathID
	count   int32
}

// groupKey identifies one per-subtree grouping: a keyword's variant at
// an entity depth.
type groupKey struct {
	kw, variant, depth int
}

// enumerateAndScore enumerates every candidate query formable from the
// variants observed in the current subtree and accumulates entity
// scores. Occurrence groupings by entity depth are computed lazily and
// shared across the candidates that need the same (variant, depth)
// pair, so each occurrence is touched O(#depths) rather than
// O(#candidates) times. The cross product is walked with an odometer
// over the scratch's position counters — keyword order, last keyword
// fastest, exactly the order of the recursive formulation it replaces,
// but without a per-anchor closure.
func (e *Engine) enumerateAndScore(
	kws []Keyword,
	sc *scanScratch,
	acc *accumulators,
	st *Stats,
	tm *obs.StageDurations,
) {
	if tm != nil {
		t0 := time.Now()
		beforeTI, beforeAcc := tm[obs.StageTypeInfer], tm[obs.StageAccumulate]
		defer func() {
			// Enumeration is this call's wall time minus the inner
			// inference and accumulation work recorded during it.
			tm[obs.StageEnumerate] += time.Since(t0) -
				(tm[obs.StageTypeInfer] - beforeTI) - (tm[obs.StageAccumulate] - beforeAcc)
		}()
	}
	occ, present := sc.occ, sc.present
	for i := range kws {
		if len(occ[i].touched) == 0 {
			return
		}
		present[i] = append(present[i][:0], occ[i].touched...)
		sort.Ints(present[i])
	}

	sc.resetGroups()
	cand := &sc.cand
	choice, words, odo := cand.choice, cand.words, cand.odo
	for i := range kws {
		odo[i] = 0
		choice[i] = present[i][0]
		words[i] = kws[i].Variants[choice[i]].Word
	}
	for {
		e.scoreCandidate(kws, sc, acc, st, tm)
		i := len(kws) - 1
		for i >= 0 {
			odo[i]++
			if odo[i] < len(present[i]) {
				choice[i] = present[i][odo[i]]
				words[i] = kws[i].Variants[choice[i]].Word
				break
			}
			odo[i] = 0
			choice[i] = present[i][0]
			words[i] = kws[i].Variants[choice[i]].Word
			i--
		}
		if i < 0 {
			return
		}
	}
}

// candScratch holds per-enumeration buffers reused across candidates.
type candScratch struct {
	choice []int
	words  []string
	keyBuf []byte
	counts []int32
	odo    []int
	others [][]groupEntry
	pos    []int
}

// group returns this subtree's occurrences of (keyword kw, variant
// idx), grouped by entity root at the given depth (lazily computed).
// Occurrences arrive in document order, so equal roots are adjacent;
// adjacency is detected by comparing Dewey prefixes (alias slices), and
// the root key string is materialized only once per distinct root.
func (e *Engine) group(sc *scanScratch, kw, idx, depth int) []groupEntry {
	k := groupKey{kw, idx, depth}
	if g, ok := sc.groups[k]; ok {
		return g
	}
	g := sc.newGroup()
	var prev xmltree.Dewey
	for _, p := range sc.occ[kw].byVariant[idx] {
		if p.Dewey.Depth() < depth {
			continue
		}
		if e.deadOrds != nil && len(p.Dewey) >= 2 && e.deadOrds[p.Dewey[1]] {
			// Occurrences inside tombstoned documents can still reach the
			// grouping through a root-level anchor (direct root text makes
			// the whole tree one anchor group); drop them here so dead
			// entities never contribute.
			continue
		}
		root := p.Dewey.Truncate(depth)
		if prev != nil && root.Compare(prev) == 0 {
			g[len(g)-1].count += p.TF
			continue
		}
		path := e.ix.PathTable().Ancestor(p.Path, depth)
		g = append(g, groupEntry{rootKey: root.Key(), path: path, count: p.TF})
		prev = root
	}
	sc.groups[k] = g
	return g
}

// scoreCandidate scores one candidate (identified by per-keyword
// variant indices) within the current subtree's occurrences.
func (e *Engine) scoreCandidate(
	kws []Keyword,
	sc *scanScratch,
	acc *accumulators,
	st *Stats,
	tm *obs.StageDurations,
) {
	st.CandidatesSeen++
	cand := &sc.cand
	choice, words := cand.choice, cand.words
	buf := cand.keyBuf[:0]
	for i, w := range words {
		if i > 0 {
			buf = append(buf, 0)
		}
		buf = append(buf, w...)
	}
	cand.keyBuf = buf

	var t0 time.Time
	if tm != nil {
		t0 = time.Now()
	}
	resType, cached := sc.typeCache[string(buf)] // no alloc: map lookup
	if cached {
		st.TypeCacheHits++
	} else {
		st.TypeComputations++
		best, _, ok := e.inf.Best(words)
		if !ok {
			best = xmltree.InvalidPath
		}
		resType = best
		sc.typeCache[string(buf)] = resType
	}
	if tm != nil {
		tm[obs.StageTypeInfer] += time.Since(t0)
		t1 := time.Now()
		defer func() { tm[obs.StageAccumulate] += time.Since(t1) }()
	}
	if resType == xmltree.InvalidPath {
		return
	}
	dp := e.pathsView().Depth(resType)
	norm := e.liveNorm(resType)
	if norm <= 0 {
		return
	}
	weight := 1.0
	for i, idx := range choice {
		weight *= kws[i].Variants[idx].Weight
	}

	// Intersect the per-keyword entity groupings at depth dp,
	// restricted to roots whose label path is the result type. The
	// first keyword's group drives the scan; the rest are probed in
	// order (all groups are in document order).
	base := e.group(sc, 0, choice[0], dp)
	if len(base) == 0 {
		return
	}

	// γ early termination (Section V-D, applied before the work it
	// saves): under the uniform prior every matched entity contributes
	// prior weight 1 × QueryProb ≤ 1, so this subtree's contribution to
	// a new candidate's estimate is at most weight/norm · |base|. If
	// even that bound cannot beat the current victim, add would reject
	// the candidate — skip the remaining grouping and intersection work.
	// The decision is identical to add's, so results do not change.
	if e.cfg.Prior == PriorUniform &&
		acc.wouldReject(buf, weight/norm*float64(len(base))) {
		st.Evictions++
		return
	}

	others := cand.others
	for i := 1; i < len(kws); i++ {
		others[i-1] = e.group(sc, i, choice[i], dp)
		if len(others[i-1]) == 0 {
			return
		}
	}

	var sum, bgMatched float64
	matched := 0
	witness := ""
	counts := cand.counts
	pos := cand.pos
	for i := range pos {
		pos[i] = 0
	}
	for _, ge := range base {
		if ge.path != resType {
			continue
		}
		counts[0] = ge.count
		ok := true
		for j, og := range others {
			// Advance this keyword's cursor to ge.rootKey.
			for pos[j] < len(og) && og[pos[j]].rootKey < ge.rootKey {
				pos[j]++
			}
			if pos[j] >= len(og) || og[pos[j]].rootKey != ge.rootKey {
				ok = false
				break
			}
			counts[j+1] = og[pos[j]].count
		}
		if !ok {
			continue
		}
		docLen := e.ix.SubtreeLenKey(ge.rootKey)
		pw := e.prior.weight(ge.rootKey, docLen)
		sum += pw * e.model.QueryProb(words, counts, docLen)
		if e.cfg.ScoreMode == ScoreModeExact {
			bgMatched += pw * e.model.BackgroundOnlyProb(words, docLen)
		}
		if matched == 0 {
			witness = ge.rootKey
		}
		matched++
	}
	if matched == 0 {
		return
	}

	before := acc.evictions
	acc.add(buf, words, choice, resType, weight/norm, sum, bgMatched, matched, witness)
	st.Evictions += acc.evictions - before
}

// finalize converts accumulators into ranked suggestions.
func (e *Engine) finalize(kws []Keyword, acc *accumulators) []Suggestion {
	var out []Suggestion
	for _, a := range acc.all() {
		norm := e.liveNorm(a.resultType)
		if norm <= 0 {
			continue
		}
		sum := a.sum
		if e.cfg.ScoreMode == ScoreModeExact {
			sum += e.backgroundMass(a.words, a.resultType) - a.bgMatched
		}
		pCT := sum / norm
		weight := 1.0
		dist := 0
		for i, idx := range a.choice {
			weight *= kws[i].Variants[idx].Weight
			dist += kws[i].Variants[idx].Dist
		}
		if e.bigram != nil {
			weight *= e.bigram.SequenceProb(a.words)
		}
		var witness xmltree.Dewey
		if a.witness != "" {
			witness = xmltree.DeweyFromKey(a.witness)
		}
		out = append(out, Suggestion{
			Words:        a.words,
			Score:        weight * pCT,
			ResultType:   a.resultType,
			Entities:     a.entities,
			EditDistance: dist,
			Witness:      witness,
		})
	}
	sortSuggestions(out)
	if k := e.cfg.k(); len(out) > k {
		out = out[:k]
	}
	return out
}

// sortSuggestions orders suggestions by descending score, breaking
// ties by query text for determinism.
func sortSuggestions(out []Suggestion) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query() < out[j].Query()
	})
}

// backgroundMass is Σ over all entities of type p of the prior-weighted
// background-only product — the unmatched-entity contribution of the
// exact scoring mode.
func (e *Engine) backgroundMass(words []string, p xmltree.PathID) float64 {
	var sum float64
	if e.cfg.Prior == PriorUniform {
		for _, l := range e.ix.SubtreeLensByPath(p) {
			sum += e.model.BackgroundOnlyProb(words, l)
		}
		return sum
	}
	for _, key := range e.ix.RootsByPath(p) {
		l := e.ix.SubtreeLenKey(key)
		sum += e.prior.weight(key, l) * e.model.BackgroundOnlyProb(words, l)
	}
	return sum
}
