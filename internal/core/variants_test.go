package core

import (
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// variantTree holds tokens that are phonetically but not
// typographically close ("wright"/"write": edit distance 3, Soundex
// W623/W630... use "smith"/"smyth" style pairs instead) plus synonym
// targets.
func variantTree() *xmltree.Tree {
	t := xmltree.NewTree("db")
	r1 := t.AddChild(t.Root, "rec", "")
	t.AddChild(r1, "f", "naight compiler design") // 'naight' sounds like 'knight'... keep simple
	r2 := t.AddChild(t.Root, "rec", "")
	t.AddChild(r2, "f", "automobile engine repair")
	r3 := t.AddChild(t.Root, "rec", "")
	t.AddChild(r3, "f", "fisher quantum computing")
	return t
}

func TestPhoneticVariants(t *testing.T) {
	tr := variantTree()
	ix := invindex.Build(tr, tokenizer.Options{})

	// "fischer" is 1 insertion from "fisher", but "physher" is far in
	// edit distance while phonetically close... use a cleaner case:
	// query "fissher" (distance 1, covered by FastSS) and query
	// "phisher" (distance 2 — Soundex F260 == fisher F260 via ph->f?
	// Soundex('phisher')=P260 differs in first letter).
	//
	// Instead verify mechanics directly: with Phonetic on, a
	// same-code word at edit distance > ε still becomes a variant.
	eng := NewEngine(ix, Config{Epsilon: 1, Phonetic: true})
	vs := eng.variants("fishar") // ed(fishar,fisher)=1 and same code
	foundFisher := false
	for _, v := range vs {
		if v.Word == "fisher" {
			foundFisher = true
			if v.Dist != 1 {
				t.Errorf("edit distance should win over phonetic distance: %+v", v)
			}
		}
	}
	if !foundFisher {
		t.Fatalf("variants=%v", vs)
	}

	// "fusheir" is 2 edits from fisher (beyond ε=1) but Soundex-equal
	// (F260), so it is reachable only phonetically.
	plain := NewEngine(ix, Config{Epsilon: 1})
	if vs := plain.variants("fusheir"); len(vs) != 0 {
		t.Fatalf("plain engine should not match: %v", vs)
	}
	vs = eng.variants("fusheir")
	if len(vs) != 1 || vs[0].Word != "fisher" || vs[0].Dist != 2 {
		t.Fatalf("phonetic variants=%v", vs)
	}

	// End to end: the phonetic engine can clean the query.
	sugs := eng.Suggest("fusheir quantum")
	if len(sugs) == 0 || sugs[0].Query() != "fisher quantum" {
		t.Errorf("sugs=%v", sugs)
	}
}

func TestSynonymVariants(t *testing.T) {
	tr := variantTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	eng := NewEngine(ix, Config{
		Epsilon:  1,
		Synonyms: map[string][]string{"car": {"automobile", "vehicle"}},
	})

	// "car" has no edit-distance variants in this vocabulary; the
	// synonym "automobile" is in the corpus, "vehicle" is not.
	vs := eng.variants("car")
	if len(vs) != 1 || vs[0].Word != "automobile" || vs[0].Dist != 1 {
		t.Fatalf("variants=%v", vs)
	}

	sugs := eng.Suggest("car engine")
	if len(sugs) == 0 || sugs[0].Query() != "automobile engine" {
		t.Errorf("sugs=%v", sugs)
	}

	// Without the thesaurus the query is hopeless.
	plain := NewEngine(ix, Config{Epsilon: 1})
	if got := plain.Suggest("car engine"); got != nil {
		t.Errorf("plain engine matched: %v", got)
	}
}

func TestSynonymSelfAndUnknownIgnored(t *testing.T) {
	tr := variantTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	eng := NewEngine(ix, Config{
		Epsilon:  1,
		Synonyms: map[string][]string{"engine": {"engine", "motorizer"}},
	})
	vs := eng.variants("engine")
	for _, v := range vs {
		if v.Word == "motorizer" {
			t.Error("out-of-vocabulary synonym admitted")
		}
		if v.Word == "engine" && v.Dist != 0 {
			t.Error("self-synonym must not raise the distance")
		}
	}
}
