// Package core implements the XClean framework itself: the error
// model (Section IV-B1), the candidate query space, the main one-pass
// top-k algorithm (Algorithm 1, Section V-C), and the probabilistic
// accumulator pruning (Section V-D).
package core

import (
	"math"

	"xclean/internal/fastss"
)

// DefaultBeta is the error penalty parameter; the paper finds β=5 best
// on almost every query set (Table IV).
const DefaultBeta = 5

// Variant is one vocabulary word within the edit threshold of a query
// keyword, with its error-model weight.
type Variant struct {
	Word string
	Dist int
	// Weight is the normalized error probability P(w|q) of Eq. (4):
	// exp(-β·ed(q,w)) / z, where z sums over the variant set.
	Weight float64
}

// Keyword is one query keyword with its variant set var_ε(q).
type Keyword struct {
	Raw      string
	Variants []Variant
}

// ErrorModel assigns error probabilities to variants (Eq. (4)/(5)).
//
// The paper derives P(q|w) = P(w|q)·P(q)/P(w); ranking a fixed query Q
// leaves P(q) constant, and we take a uniform prior over intended
// words so that the normalized P(w|q) itself serves as the per-keyword
// error weight.
type ErrorModel struct {
	// Beta is the error penalty β (0 = DefaultBeta).
	Beta float64
}

func (m ErrorModel) beta() float64 {
	if m.Beta < 0 {
		return 0
	}
	if m.Beta == 0 {
		return DefaultBeta
	}
	return m.Beta
}

// Keyword converts a raw keyword and its FastSS matches into a Keyword
// with normalized weights. With β=0 every variant is equally likely;
// large β concentrates the mass on the closest variants.
func (m ErrorModel) Keyword(raw string, matches []fastss.Match) Keyword {
	kw := Keyword{Raw: raw, Variants: make([]Variant, len(matches))}
	beta := m.beta()
	var z float64
	for i, match := range matches {
		w := math.Exp(-beta * float64(match.Dist))
		kw.Variants[i] = Variant{Word: match.Word, Dist: match.Dist, Weight: w}
		z += w
	}
	if z > 0 {
		for i := range kw.Variants {
			kw.Variants[i].Weight /= z
		}
	}
	return kw
}

// ExactBeta is a Beta value that makes the model treat a 0-distance
// variant as (near-)certain; used in tests.
const ExactBeta = 50
