package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// cancelCorpus builds a corpus big enough that a full scan visits many
// anchor subtrees — enough to straddle several cancellation check
// intervals.
func cancelCorpus() *xmltree.Tree {
	t := xmltree.NewTree("db")
	for i := 0; i < 400; i++ {
		rec := t.AddChild(t.Root, "record", "")
		t.AddChild(rec, "title", fmt.Sprintf("tree query processing volume %d", i))
		t.AddChild(rec, "body", "xml keyword search with spelling cleanup")
	}
	return t
}

func cancelEngine(workers int) *Engine {
	ix := invindex.Build(cancelCorpus(), tokenizer.Options{})
	return NewEngine(ix, Config{Epsilon: 2, Workers: workers})
}

// A context cancelled before the call must stop the scan at the very
// first cancellation poll: zero subtrees processed (the poll fires at
// iteration 0, well within one CancelCheckEvery interval) and the
// context's error surfaced.
func TestCancelledContextStopsScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := cancelEngine(workers)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			sugs, st, err := e.SuggestDetailedContext(ctx, "tree qurey")
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err=%v, want context.Canceled", err)
			}
			if sugs != nil {
				t.Errorf("cancelled call returned suggestions: %v", sugs)
			}
			if st.Subtrees != 0 {
				t.Errorf("cancelled before the call but %d subtrees scanned (bound: 0)", st.Subtrees)
			}
		})
	}
}

// An expired deadline surfaces as context.DeadlineExceeded, not as a
// generic cancellation.
func TestDeadlineExceededPropagates(t *testing.T) {
	e := cancelEngine(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.SuggestContext(ctx, "tree qurey"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
}

// The space-error search runs shapes through the same scan: a
// cancelled context poisons the whole call rather than silently
// merging a truncated shape.
func TestCancelledContextSpaces(t *testing.T) {
	e := cancelEngine(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sugs, err := e.SuggestWithSpacesContext(ctx, "tree qurey")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if sugs != nil {
		t.Errorf("cancelled spaces call returned suggestions: %v", sugs)
	}
}

// The shard-partial scan honors the forwarded deadline too.
func TestCancelledContextPartials(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := cancelEngine(workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		set, st, err := e.SuggestPartialsContext(ctx, "tree qurey")
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if len(set.Candidates) != 0 {
			t.Errorf("workers=%d: cancelled partial scan returned %d candidates", workers, len(set.Candidates))
		}
		if st.Subtrees != 0 {
			t.Errorf("workers=%d: %d subtrees scanned after pre-cancel", workers, st.Subtrees)
		}
	}
}

// The context-taking variants with a live Background context must be
// the exact same computation as the context-free methods.
func TestContextVariantsMatchPlain(t *testing.T) {
	e := cancelEngine(2)
	q := "tree qurey"
	want := e.Suggest(q)
	got, err := e.SuggestContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SuggestContext diverges from Suggest:\n got=%v\nwant=%v", got, want)
	}

	wantSp := e.SuggestWithSpaces("tree qu ery")
	gotSp, err := e.SuggestWithSpacesContext(context.Background(), "tree qu ery")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSp, wantSp) {
		t.Errorf("SuggestWithSpacesContext diverges:\n got=%v\nwant=%v", gotSp, wantSp)
	}

	wantPs, _ := e.SuggestPartials(q)
	gotPs, _, err := e.SuggestPartialsContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPs, wantPs) {
		t.Errorf("SuggestPartialsContext diverges from SuggestPartials")
	}
}

// Mid-scan cancellation under -race: many goroutines scanning while
// their contexts are cancelled at random points. Whatever the timing,
// a call either completes with the full answer or fails with the
// context's error and no suggestions — never a silently truncated
// ranking.
func TestMidScanCancellationRace(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := cancelEngine(workers)
			want := e.Suggest("tree qurey")
			if len(want) == 0 {
				t.Fatal("corpus finds nothing for the probe query")
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						ctx, cancel := context.WithCancel(context.Background())
						go func() {
							// Vary the cancel point from "before the scan
							// starts" to "after it finished".
							time.Sleep(time.Duration(i%5) * 30 * time.Microsecond)
							cancel()
						}()
						sugs, _, err := e.SuggestDetailedContext(ctx, "tree qurey")
						if err != nil {
							if !errors.Is(err, context.Canceled) {
								t.Errorf("unexpected error: %v", err)
							}
							if sugs != nil {
								t.Error("error with non-nil suggestions")
							}
						} else if !reflect.DeepEqual(sugs, want) {
							t.Error("uncancelled call diverged from baseline")
						}
						cancel()
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
