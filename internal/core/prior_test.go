package core

import (
	"testing"

	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// priorTree builds two same-type entities: e1 is short and matches
// "alpha beta"; e2 is long, repeats "alpha betas" four times, and is
// padded with filler. The unigram model's length normalization makes
// e1's candidate win under the uniform prior, while the length prior's
// linear weight on |D(e2)| flips the ranking.
func priorTree() (*xmltree.Tree, xmltree.Dewey, xmltree.Dewey) {
	tr := xmltree.NewTree("db")
	e1 := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(e1, "f", "alpha beta")
	e2 := tr.AddChild(tr.Root, "rec", "")
	text := "alpha betas alpha betas alpha betas alpha betas"
	for i := 0; i < 10; i++ {
		text += " filler" + string(rune('a'+i))
	}
	tr.AddChild(e2, "f", text)
	return tr, e1.Dewey, e2.Dewey
}

func topQuery(t *testing.T, e *Engine, q string) string {
	t.Helper()
	sugs := e.Suggest(q)
	if len(sugs) == 0 {
		t.Fatalf("no suggestions for %q", q)
	}
	return sugs[0].Query()
}

func TestPriorLengthFlipsRanking(t *testing.T) {
	tr, _, _ := priorTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	// Small μ so document length matters; both corrections are at edit
	// distance 1 from the dirty keyword.
	q := "alpha betaz"

	uni := NewEngine(ix, Config{Mu: 1})
	if got := topQuery(t, uni, q); got != "alpha beta" {
		t.Fatalf("uniform prior: top=%q want %q", got, "alpha beta")
	}
	long := NewEngine(ix, Config{Mu: 1, Prior: PriorLength})
	if got := topQuery(t, long, q); got != "alpha betas" {
		t.Fatalf("length prior: top=%q want %q", got, "alpha betas")
	}
}

func TestPriorCustomBoostsEntity(t *testing.T) {
	tr, _, e2 := priorTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	q := "alpha betaz"

	uni := NewEngine(ix, Config{Mu: 1})
	if got := topQuery(t, uni, q); got != "alpha beta" {
		t.Fatalf("uniform prior: top=%q", got)
	}
	boosted := NewEngine(ix, Config{
		Mu:          1,
		Prior:       PriorCustom,
		CustomPrior: map[string]float64{e2.Key(): 10000},
	})
	if got := topQuery(t, boosted, q); got != "alpha betas" {
		t.Fatalf("custom prior: top=%q want %q", got, "alpha betas")
	}
}

// TestPriorCustomUniformEquivalence: all-equal custom weights must
// reproduce the uniform ranking exactly (the prior is normalized per
// result type, so a constant cancels).
func TestPriorCustomUniformEquivalence(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 21, Articles: 300})
	ix := invindex.Build(c.Tree, tokenizer.Options{})

	flat := make(map[string]float64)
	ix.Tokens(func(string) {}) // no-op; weights default to 1 when absent
	uni := NewEngine(ix, Config{})
	cus := NewEngine(ix, Config{Prior: PriorCustom, CustomPrior: flat})

	for _, q := range c.SampleQueries(22, 10) {
		a := uni.Suggest(q)
		b := cus.Suggest(q)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d suggestions", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Query() != b[i].Query() {
				t.Fatalf("query %q: rank %d diverges: %q vs %q", q, i, a[i].Query(), b[i].Query())
			}
			if diff := a[i].Score - b[i].Score; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("query %q: rank %d score %g vs %g", q, i, a[i].Score, b[i].Score)
			}
		}
	}
}

// TestPriorNonEmptyGuaranteeHolds: non-uniform priors reweight
// entities but must never admit a candidate without matching entities.
func TestPriorNonEmptyGuaranteeHolds(t *testing.T) {
	tr, _, _ := priorTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	for _, p := range []Prior{PriorUniform, PriorLength, PriorCustom} {
		e := NewEngine(ix, Config{Prior: p})
		for _, s := range e.Suggest("alpha betaz") {
			if s.Entities < 1 {
				t.Errorf("prior %d: suggestion %q has no entities", p, s.Query())
			}
		}
	}
}

func TestEntityWeight(t *testing.T) {
	key := xmltree.Dewey{1, 2}.Key()
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{}, 1},
		{Config{Prior: PriorLength}, 7},
		{Config{Prior: PriorCustom}, 1},
		{Config{Prior: PriorCustom, CustomPrior: map[string]float64{key: 4}}, 5},
		{Config{Prior: PriorCustom, CustomPrior: map[string]float64{key: -3}}, 1},
	}
	for i, c := range cases {
		if got := c.cfg.EntityWeight(key, 7); got != c.want {
			t.Errorf("case %d: EntityWeight=%g want %g", i, got, c.want)
		}
	}
}
