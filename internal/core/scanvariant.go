package core

import (
	"context"
	"sort"

	"xclean/internal/fastss"
	"xclean/internal/lm"
	"xclean/internal/resulttype"
	"xclean/internal/xmltree"
)

// Segmented-index support: a segmented engine (internal/segment) keeps
// a stack of immutable index segments, each holding a disjoint range of
// top-level documents. Eq. (8) decomposes additively over that
// partition — exactly the property the cluster's scatter-gather
// protocol exploits — so a segmented query runs the scan half of
// Algorithm 1 once per segment and folds the partial sums with
// MergePartials. Two things distinguish the in-process stack from the
// cluster: smoothing, type inference, and bigram statistics must come
// from the stack-global live collection (a remote shard uses its own,
// the stack substitutes shared models via ScanVariant), and segments
// carry tombstones (deadOrds/deadNorm) that the scan must filter.

// ScanOverrides configures a scan-variant engine: substituted global
// models and the tombstone state of one segment.
type ScanOverrides struct {
	// Model is the query generation model smoothed against the
	// stack-global live background.
	Model *lm.Model
	// Inferrer infers result types from stack-global live type lists.
	Inferrer *resulttype.Inferrer
	// Bigram is the stack-global coherence model; nil when the bigram
	// extension is off.
	Bigram *lm.BigramModel
	// Paths is the newest path table of the stack — a superset of every
	// segment's own table (tables grow append-only and clones preserve
	// IDs), consulted for paths this segment never interned.
	Paths *xmltree.PathTable
	// DeadOrds marks tombstoned top-level document ordinals of this
	// segment; their subtrees are skipped wholesale.
	DeadOrds map[uint32]bool
	// DeadNorm is the tombstoned prior mass per result type, subtracted
	// from the segment's cached normalizers.
	DeadNorm map[xmltree.PathID]float64
}

// ScanVariant returns a read-only copy of the engine that scores this
// engine's index with substituted global models and tombstone filters.
// The copy shares every immutable structure (index, variant index,
// cached priors) with the receiver; it carries no sink — the segment
// store owns the user call and observes it once. The receiver is not
// modified and may keep serving queries concurrently.
func (e *Engine) ScanVariant(o ScanOverrides) *Engine {
	// Field-by-field construction: Engine embeds a mutex (lastStats), so
	// a struct copy would trip go vet and copy lock state.
	return &Engine{
		ix:        e.ix,
		fss:       e.fastss(),
		phon:      e.phon,
		model:     o.Model,
		bigram:    o.Bigram,
		inf:       o.Inferrer,
		em:        e.em,
		prior:     e.prior,
		cfg:       e.cfg,
		scanPaths: o.Paths,
		deadOrds:  o.DeadOrds,
		deadNorm:  o.DeadNorm,
	}
}

// pathsView is the path table used to interpret result types: the
// stack-global table on scan-variant engines, the index's own table
// otherwise.
func (e *Engine) pathsView() *xmltree.PathTable {
	if e.scanPaths != nil {
		return e.scanPaths
	}
	return e.ix.PathTable()
}

// liveNorm is the prior normalizer of result type p minus the
// tombstoned mass of this scan view (normFor itself on ordinary
// engines).
func (e *Engine) liveNorm(p xmltree.PathID) float64 {
	n := e.prior.normFor(p)
	if e.deadNorm != nil {
		n -= e.deadNorm[p]
	}
	return n
}

// VariantMatches exposes the engine's merged variant set for one
// keyword token (edit-distance neighbors plus any enabled phonetic and
// synonym sources). The segment store unions these across segments to
// build the stack-global variant sets.
func (e *Engine) VariantMatches(tok string) []fastss.Match { return e.variants(tok) }

// SuggestPartialsForKeywords runs the scan half of Algorithm 1 over a
// prepared keyword list and returns the raw per-candidate partial sums
// — the per-segment half of the segmented query path. Unlike
// SuggestPartials it performs no tokenization, no variant lookup, and
// no sink observation: the caller built the keywords once against the
// whole stack and owns the user-call observability. workers ≤ 0 means
// the engine's configured parallelism.
func (e *Engine) SuggestPartialsForKeywords(ctx context.Context, kws []Keyword, workers int) (PartialSet, Stats, error) {
	if workers <= 0 {
		workers = e.cfg.workers()
	}
	ps := PartialSet{Keywords: make([][]PartialVariant, len(kws))}
	for i, kw := range kws {
		vs := make([]PartialVariant, len(kw.Variants))
		for j, v := range kw.Variants {
			vs[j] = PartialVariant{Word: v.Word, Dist: v.Dist}
		}
		ps.Keywords[i] = vs
	}

	acc, st, err := e.scanKeywords(ctx, kws, workers, nil)
	if err != nil {
		return PartialSet{}, st, err
	}

	// Live normalizers of every eligible result type in this segment.
	// Paths that exist only in other segments contribute no entities
	// here, so iterating the segment's own table is complete.
	norms := make(map[string]float64)
	d := e.cfg.minDepth()
	for p := xmltree.PathID(0); int(p) < e.ix.PathTable().Len(); p++ {
		if e.ix.PathTable().Depth(p) < d {
			continue
		}
		if n := e.liveNorm(p); n > 0 {
			norms[e.ix.PathTable().String(p)] = n
		}
	}
	ps.TypeNorms = norms

	if acc == nil {
		return ps, st, nil
	}
	// The candidates below hold the accumulators' words; only the
	// table's storage is recycled.
	defer acc.release()
	if acc.len() == 0 {
		return ps, st, nil
	}

	all := acc.all()
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	ps.Candidates = make([]PartialCandidate, 0, len(all))
	for _, a := range all {
		sum := a.sum
		if e.cfg.ScoreMode == ScoreModeExact {
			sum += e.backgroundMass(a.words, a.resultType) - a.bgMatched
		}
		coherence := 1.0
		if e.bigram != nil {
			coherence = e.bigram.SequenceProb(a.words)
		}
		witness := ""
		if a.witness != "" {
			witness = xmltree.DeweyFromKey(a.witness).String()
		}
		ps.Candidates = append(ps.Candidates, PartialCandidate{
			Words:      a.words,
			ResultType: e.pathsView().String(a.resultType),
			Sum:        sum,
			Entities:   a.entities,
			Witness:    witness,
			Coherence:  coherence,
		})
	}
	return ps, st, nil
}
