package segment

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/obs"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func doc(i int) string {
	return fmt.Sprintf(`<article><author>author%d shared</author><title>topic%d common words</title></article>`, i, i)
}

func parseDoc(t *testing.T, xml string) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// newTestStore builds a store over a base collection of n documents.
func newTestStore(t *testing.T, n int, cfg Config) *Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("<dblp>")
	for i := 1; i <= n; i++ {
		b.WriteString(doc(i))
	}
	b.WriteString("</dblp>")
	tree := parseDoc(t, b.String())
	ix := invindex.BuildStored(tree, tokenizer.Options{})
	cfg.StoreText = true
	st, err := NewStore(ix, core.NewEngine(ix, cfg.Core), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func (st *Store) addN(t *testing.T, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.AddDocument(parseDoc(t, doc(from+i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSealAtTailLimit(t *testing.T) {
	st := newTestStore(t, 2, Config{TailLimit: 3})
	st.addN(t, 3, 2)
	if s := st.SegmentStats(); s.Segments != 1 || s.TailDocs != 2 {
		t.Fatalf("before seal: %+v", s)
	}
	st.addN(t, 5, 1) // third tail doc triggers the seal
	if s := st.SegmentStats(); s.Segments != 2 || s.TailDocs != 0 {
		t.Fatalf("after seal: %+v", s)
	}
	// Ordinal bookkeeping: next add lands at 1.6.
	st.addN(t, 6, 1)
	if got := st.SubtreeText(xmltree.Dewey{1, 6}, 100); !strings.Contains(got, "author6") {
		t.Fatalf("1.6 = %q", got)
	}
}

func TestFastEngineTransitions(t *testing.T) {
	st := newTestStore(t, 2, Config{TailLimit: 10})
	if st.FastEngine() == nil {
		t.Fatal("flat base stack should expose a fast engine")
	}
	st.addN(t, 3, 1)
	if st.FastEngine() != nil {
		t.Fatal("base + tail is not flat")
	}
	// A tombstone on the single sealed segment also defeats the fast
	// path after the tail drains.
	if err := st.RemoveDocument(xmltree.Dewey{1, 3}); err != nil { // tail doc: dropped outright
		t.Fatal(err)
	}
	if st.FastEngine() == nil {
		t.Fatal("tail drained back to the flat base: fast engine expected")
	}
	if err := st.RemoveDocument(xmltree.Dewey{1, 1}); err != nil { // sealed doc: tombstone
		t.Fatal(err)
	}
	if st.FastEngine() != nil {
		t.Fatal("tombstoned segment must not serve the fast path")
	}
	if _, err := st.Flatten(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.FastEngine() == nil {
		t.Fatal("flattened stack should expose a fast engine")
	}
}

func TestRemoveErrors(t *testing.T) {
	st := newTestStore(t, 2, Config{TailLimit: 10})
	if err := st.RemoveDocument(xmltree.Dewey{1}); err == nil {
		t.Error("root removal accepted")
	}
	if err := st.RemoveDocument(xmltree.Dewey{1, 1, 1}); err == nil {
		t.Error("deep removal accepted")
	}
	if err := st.RemoveDocument(xmltree.Dewey{1, 99}); err == nil {
		t.Error("absent ordinal accepted")
	}
	if err := st.RemoveDocument(xmltree.Dewey{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveDocument(xmltree.Dewey{1, 2}); err == nil {
		t.Error("double removal accepted")
	}
}

func TestPurgeDropsEmptySegment(t *testing.T) {
	st := newTestStore(t, 2, Config{TailLimit: 2})
	st.addN(t, 3, 2) // seals a second segment {1.3, 1.4}
	if s := st.SegmentStats(); s.Segments != 2 {
		t.Fatalf("setup: %+v", s)
	}
	for _, ord := range []uint32{3, 4} {
		if err := st.RemoveDocument(xmltree.Dewey{1, ord}); err != nil {
			t.Fatal(err)
		}
	}
	// A fully tombstoned segment is dropped at removal time.
	if s := st.SegmentStats(); s.Segments != 1 || s.Tombstones != 0 {
		t.Fatalf("after emptying a segment: %+v", s)
	}
	// The survivors are untouched.
	if got := st.SubtreeText(xmltree.Dewey{1, 1}, 100); !strings.Contains(got, "author1") {
		t.Fatalf("1.1 = %q", got)
	}
}

func TestPurgeRewritesTombstonedSegment(t *testing.T) {
	st := newTestStore(t, 8, Config{TailLimit: 100})
	// Two of eight documents tombstoned reaches the 1/4 purge threshold.
	for _, ord := range []uint32{2, 5} {
		if err := st.RemoveDocument(xmltree.Dewey{1, ord}); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.SegmentStats(); s.Tombstones != 2 {
		t.Fatalf("setup: %+v", s)
	}
	did, err := st.CompactOnce(context.Background())
	if err != nil || !did {
		t.Fatalf("purge did=%v err=%v", did, err)
	}
	s := st.SegmentStats()
	if s.Segments != 1 || s.Tombstones != 0 || s.Compactions != 1 {
		t.Fatalf("after purge: %+v", s)
	}
	if st.FastEngine() == nil {
		t.Fatal("purged flat stack should expose a fast engine")
	}
	if got := st.SubtreeText(xmltree.Dewey{1, 2}, 100); got != "" {
		t.Fatalf("purged document still stored: %q", got)
	}
	if got := st.SubtreeText(xmltree.Dewey{1, 6}, 100); !strings.Contains(got, "author6") {
		t.Fatalf("surviving 1.6 = %q", got)
	}
}

func TestMergeShrinksDeepStack(t *testing.T) {
	st := newTestStore(t, 1, Config{TailLimit: 1})
	st.addN(t, 2, 6) // every add seals: 7 single-doc segments
	if s := st.SegmentStats(); s.Segments != 7 {
		t.Fatalf("setup: %+v", s)
	}
	for {
		did, err := st.CompactOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	s := st.SegmentStats()
	if s.Segments > maxSealed {
		t.Fatalf("stack still deep after merging: %+v", s)
	}
	if s.Compactions == 0 {
		t.Fatal("no compaction counted")
	}
	// Every document remains reachable through the merged segments.
	for ord := uint32(1); ord <= 7; ord++ {
		if got := st.SubtreeText(xmltree.Dewey{1, ord}, 100); got == "" {
			t.Errorf("1.%d lost in merge", ord)
		}
	}
}

func TestStatsMatchMonolithicRebuild(t *testing.T) {
	st := newTestStore(t, 2, Config{TailLimit: 2})
	st.addN(t, 3, 3)
	if err := st.RemoveDocument(xmltree.Dewey{1, 4}); err != nil {
		t.Fatal(err)
	}
	// Reference: the surviving documents in one monolithic index.
	var b strings.Builder
	b.WriteString("<dblp>")
	for _, i := range []int{1, 2, 3, 5} {
		b.WriteString(doc(i))
	}
	b.WriteString("</dblp>")
	ref := invindex.BuildStored(parseDoc(t, b.String()), tokenizer.Options{})

	got := st.Stats()
	if got.Nodes != ref.NodeCount() || got.Tokens != ref.TotalTokens() ||
		got.Vocab != ref.Vocab.Size() || got.MaxDepth != ref.MaxDepth() {
		t.Fatalf("stats %+v vs reference nodes=%d tokens=%d vocab=%d depth=%d",
			got, ref.NodeCount(), ref.TotalTokens(), ref.Vocab.Size(), ref.MaxDepth())
	}
}

func TestSinkGaugesAndCounters(t *testing.T) {
	sink := obs.NewSink()
	st := newTestStore(t, 2, Config{TailLimit: 2, Sink: sink})
	st.addN(t, 3, 3) // one seal (docs 3,4), doc 5 in tail
	if err := st.RemoveDocument(xmltree.Dewey{1, 1}); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if snap.Segments != 2 || snap.TailDocs != 1 || snap.Tombstones != 1 {
		t.Fatalf("gauges: %+v", snap)
	}
	if snap.DocsAdded != 3 || snap.DocsRemoved != 1 {
		t.Fatalf("counters: added=%d removed=%d", snap.DocsAdded, snap.DocsRemoved)
	}
	if _, err := st.Flatten(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap = sink.Snapshot()
	if snap.Segments != 1 || snap.TailDocs != 0 || snap.Tombstones != 0 {
		t.Fatalf("gauges after flatten: %+v", snap)
	}
	if snap.CompactionRuns != 1 || snap.CompactionBytes == 0 {
		t.Fatalf("compaction counters: %+v", snap)
	}
}
