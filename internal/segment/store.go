package segment

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/obs"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// DefaultTailLimit is the number of buffered tail documents that
// triggers a seal when Config.TailLimit is zero.
const DefaultTailLimit = 64

// Config tunes a segment store.
type Config struct {
	// Core is the engine configuration shared by every segment; the
	// stack substitutes global models per query, so segments must agree
	// on every tunable.
	Core core.Config
	// TailLimit is the tail size (documents) that triggers a seal
	// (0 = DefaultTailLimit).
	TailLimit int
	// CompactInterval starts a background ticker that attempts a
	// compaction step this often; 0 leaves only the write-triggered
	// compactor.
	CompactInterval time.Duration
	// CompactPostings compresses the postings of compacted segments
	// (mirrors Options.CompactPostings; the mutable tail always stays
	// raw).
	CompactPostings bool
	// StoreText gates removals, matching the monolithic contract:
	// RemoveDocument needs the stored text to reconstruct per-structure
	// deltas.
	StoreText bool
	// Sink receives the store's write/compaction metrics and the
	// per-query observation (may be nil).
	Sink *obs.Sink
}

func (c Config) tailLimit() int {
	if c.TailLimit <= 0 {
		return DefaultTailLimit
	}
	return c.TailLimit
}

// View is one immutable snapshot of the stack. Queries load it once
// and use it throughout; writers publish successors.
type View struct {
	epoch uint64
	// segs are the sealed segments in ascending ordinal order.
	segs []*Segment
	// tail is the mutable tail's current incarnation (nil when empty).
	// The Segment value itself is immutable; every write builds a new
	// one.
	tail *Segment
	// paths is the newest path table of the stack — a superset of every
	// segment's own table (tables grow append-only; clones preserve
	// IDs).
	paths *xmltree.PathTable
	// nextOrd is the root-child ordinal the next added document gets.
	nextOrd uint32
	// vocabSize is the number of distinct live terms across the stack
	// (the denominator companion of the live background model).
	vocabSize int
}

// all returns sealed segments followed by the tail — the stack in
// ordinal order, which MergePartials relies on to reproduce the
// monolithic summation order.
func (v *View) all() []*Segment {
	if v.tail == nil {
		return v.segs
	}
	out := make([]*Segment, 0, len(v.segs)+1)
	out = append(out, v.segs...)
	return append(out, v.tail)
}

// tombstones is the total tombstoned document count.
func (v *View) tombstones() int {
	n := 0
	for _, s := range v.segs {
		n += s.dead.DeadDocs()
	}
	return n
}

// Store is the segmented engine: a single-writer, many-reader stack of
// index segments with live add/remove traffic and background
// compaction.
type Store struct {
	cfg       core.Config
	tailLimit int
	interval  time.Duration
	compactPx bool
	storeText bool
	rootLabel string
	tokOpts   tokenizer.Options
	sink      *obs.Sink

	view atomic.Pointer[View]

	// mu serializes writers (AddDocument, RemoveDocument, seal,
	// compaction swaps, Flatten). Queries never take it.
	mu sync.Mutex
	// tailTrees/tailOrds are the parsed documents of the current tail,
	// in insertion order; the tail index is rebuilt from them on every
	// write (trees are immutable, so rebuilt segments share them
	// safely).
	tailTrees []*xmltree.Tree
	tailOrds  []uint32
	nextID    uint64

	inFlight    atomic.Bool
	closed      atomic.Bool
	compactions atomic.Int64
	stop        chan struct{}
	stopOnce    sync.Once
}

// NewStore wraps an already-built index and engine as the base sealed
// segment of a new stack. The base index is never mutated afterwards —
// which is why a segmented engine accepts live writes even when the
// base postings are compacted.
func NewStore(base *invindex.Index, baseEng *core.Engine, cfg Config) (*Store, error) {
	rootLabel, err := base.RootLabel()
	if err != nil {
		return nil, fmt.Errorf("segment store: %w", err)
	}
	lo, hi := base.RootOrdinalRange()
	st := &Store{
		cfg:       cfg.Core,
		tailLimit: cfg.tailLimit(),
		interval:  cfg.CompactInterval,
		compactPx: cfg.CompactPostings,
		storeText: cfg.StoreText,
		rootLabel: rootLabel,
		tokOpts:   base.TokenizerOptions(),
		sink:      cfg.Sink,
		nextID:    1,
		stop:      make(chan struct{}),
	}
	seg := &Segment{
		id:     1,
		ix:     base,
		eng:    baseEng,
		minOrd: lo,
		maxOrd: hi,
		docs:   base.RootChildCount(),
	}
	v := &View{
		epoch:     1,
		segs:      []*Segment{seg},
		paths:     base.Paths,
		nextOrd:   hi + 1,
		vocabSize: base.Vocab.Size(),
	}
	st.view.Store(v)
	st.publishGauges(v)
	if st.interval > 0 {
		go st.tick()
	}
	return st, nil
}

// SetSink replaces the metrics sink. Like the engine's SetObserver it
// must not race with in-flight calls; it applies the sink to every
// current segment engine, and engines built later inherit it.
func (st *Store) SetSink(s *obs.Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sink = s
	v := st.view.Load()
	for _, sg := range v.all() {
		sg.eng.SetSink(s)
	}
	st.publishGauges(v)
}

// Paths is the newest path table of the stack (interprets every
// segment's result-type IDs).
func (st *Store) Paths() *xmltree.PathTable { return st.view.Load().paths }

// FastEngine returns the single engine able to answer queries alone —
// when the stack is one segment with no tombstones — or nil when the
// multi-segment path must run. Callers use it to keep the monolithic
// code path (and its per-stage observability) whenever the stack is
// flat.
func (st *Store) FastEngine() *core.Engine {
	v := st.view.Load()
	if v.tail == nil && len(v.segs) == 1 && v.segs[0].dead.DeadDocs() == 0 {
		return v.segs[0].eng
	}
	if v.tail != nil && len(v.segs) == 0 {
		return v.tail.eng
	}
	return nil
}

// Close stops the background compaction ticker. In-flight queries are
// unaffected; further writes still work (only the ticker dies).
func (st *Store) Close() {
	st.closed.Store(true)
	st.stopOnce.Do(func() { close(st.stop) })
}

// AddDocument appends a parsed document to the mutable tail and
// publishes a view containing it. Single writer: callers must not
// invoke AddDocument/RemoveDocument concurrently with each other;
// queries may proceed concurrently.
func (st *Store) AddDocument(tree *xmltree.Tree) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := st.view.Load()
	ord := v.nextOrd
	st.tailTrees = append(st.tailTrees, tree)
	st.tailOrds = append(st.tailOrds, ord)
	nv, err := st.rebuildTailLocked(v, ord+1)
	if err != nil {
		st.tailTrees = st.tailTrees[:len(st.tailTrees)-1]
		st.tailOrds = st.tailOrds[:len(st.tailOrds)-1]
		return err
	}
	st.publishLocked(nv)
	if st.sink != nil {
		st.sink.DocsAdded.Inc()
	}
	if len(st.tailTrees) >= st.tailLimit {
		st.sealLocked()
	}
	st.maybeCompactAsync()
	return nil
}

// RemoveDocument logically removes the document rooted at the given
// top-level Dewey code. Tail documents are dropped by rebuilding the
// tail; sealed documents become tombstones that queries filter and
// compaction purges.
func (st *Store) RemoveDocument(d xmltree.Dewey) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(d) != 2 || d[0] != 1 {
		return fmt.Errorf("%s is not a direct child of the root", d)
	}
	if !st.storeText {
		return fmt.Errorf("RemoveDocument requires an index built with stored text (Options.StoreText)")
	}
	v := st.view.Load()
	ord := d[1]

	// Tail hit: rebuild the tail without the document.
	if v.tail != nil {
		for i, o := range st.tailOrds {
			if o == ord {
				st.tailTrees = append(st.tailTrees[:i], st.tailTrees[i+1:]...)
				st.tailOrds = append(st.tailOrds[:i], st.tailOrds[i+1:]...)
				nv, err := st.rebuildTailLocked(v, v.nextOrd)
				if err != nil {
					return err
				}
				st.publishLocked(nv)
				if st.sink != nil {
					st.sink.DocsRemoved.Inc()
				}
				return nil
			}
		}
	}

	// Sealed hit: extend the owning segment's tombstone set.
	for i, sg := range v.segs {
		if ord < sg.minOrd || ord > sg.maxOrd || !sg.ix.HasRootChild(ord) {
			continue
		}
		if sg.deadOrds[ord] {
			break // already tombstoned: fall through to "no document"
		}
		newDead, err := sg.ix.AnalyzeRemoval(d, sg.dead)
		if err != nil {
			return err
		}
		ns := sg.withDead(newDead, st.cfg)
		segs := make([]*Segment, 0, len(v.segs))
		segs = append(segs, v.segs[:i]...)
		if ns.liveDocs() > 0 {
			segs = append(segs, ns)
		}
		segs = append(segs, v.segs[i+1:]...)
		nv := &View{
			epoch:     v.epoch + 1,
			segs:      segs,
			tail:      v.tail,
			paths:     v.paths,
			nextOrd:   v.nextOrd,
			vocabSize: v.vocabSize,
		}
		// Terms whose live count may have hit zero: those this removal
		// touched.
		for w := range newDead.Vocab {
			if sg.dead.DeadVocab(w) == newDead.Vocab[w] {
				continue // unchanged by this removal
			}
			if liveCountIn(nv, w) == 0 {
				nv.vocabSize--
			}
		}
		st.publishLocked(nv)
		if st.sink != nil {
			st.sink.DocsRemoved.Inc()
		}
		st.maybeCompactAsync()
		return nil
	}
	return fmt.Errorf("no document at %s", d)
}

// rebuildTailLocked builds a fresh tail segment from the buffered
// trees and returns the successor view (not yet published). Trees are
// immutable, so queries pinning the previous view are unaffected.
func (st *Store) rebuildTailLocked(v *View, nextOrd uint32) (*View, error) {
	if len(st.tailTrees) == 0 {
		// Tail emptied: keep the newest table (it is immutable now).
		nv := &View{
			epoch:     v.epoch + 1,
			segs:      v.segs,
			tail:      nil,
			paths:     v.paths,
			nextOrd:   nextOrd,
			vocabSize: v.vocabSize,
		}
		nv.vocabSize = st.recountVocabDelta(v, nv)
		return nv, nil
	}
	paths := v.paths.Clone()
	ix := invindex.NewSegment(st.rootLabel, paths, st.tokOpts, st.storeText)
	for i, tree := range st.tailTrees {
		if err := ix.GraftDocument(tree, st.tailOrds[i]); err != nil {
			return nil, err
		}
	}
	eng := core.NewEngine(ix, st.cfg)
	eng.SetSink(st.sink)
	st.nextID++
	tail := &Segment{
		id:     st.nextID,
		ix:     ix,
		eng:    eng,
		minOrd: st.tailOrds[0],
		maxOrd: st.tailOrds[len(st.tailOrds)-1],
		docs:   len(st.tailTrees),
	}
	nv := &View{
		epoch:     v.epoch + 1,
		segs:      v.segs,
		tail:      tail,
		paths:     paths,
		nextOrd:   nextOrd,
		vocabSize: v.vocabSize,
	}
	nv.vocabSize = st.recountVocabDelta(v, nv)
	return nv, nil
}

// recountVocabDelta adjusts the live distinct-term count across a tail
// replacement: terms of either tail incarnation whose global live
// count transitioned between zero and non-zero. Both tails are small
// (≤ tail limit documents), so the scan is cheap.
func (st *Store) recountVocabDelta(old, nv *View) int {
	size := old.vocabSize
	seen := make(map[string]bool, 64)
	check := func(w string) {
		if seen[w] {
			return
		}
		seen[w] = true
		was := liveCountIn(old, w) > 0
		is := liveCountIn(nv, w) > 0
		switch {
		case is && !was:
			size++
		case was && !is:
			size--
		}
	}
	if nv.tail != nil {
		nv.tail.ix.Vocab.Terms(func(w string, _ int64) { check(w) })
	}
	if old.tail != nil {
		old.tail.ix.Vocab.Terms(func(w string, _ int64) { check(w) })
	}
	return size
}

// liveCountIn is the stack-global live corpus frequency of w in a
// view.
func liveCountIn(v *View, w string) int64 {
	var n int64
	for _, s := range v.segs {
		n += s.liveCount(w)
	}
	if v.tail != nil {
		n += v.tail.ix.Vocab.Count(w)
	}
	return n
}

// sealLocked promotes the current tail to a sealed segment and resets
// the tail buffer. The tail's index and engine are reused as-is; its
// path table becomes frozen (the next tail clones it).
func (st *Store) sealLocked() {
	v := st.view.Load()
	if v.tail == nil {
		return
	}
	segs := make([]*Segment, 0, len(v.segs)+1)
	segs = append(segs, v.segs...)
	segs = append(segs, v.tail)
	nv := &View{
		epoch:     v.epoch + 1,
		segs:      segs,
		tail:      nil,
		paths:     v.paths,
		nextOrd:   v.nextOrd,
		vocabSize: v.vocabSize,
	}
	st.tailTrees = nil
	st.tailOrds = nil
	st.publishLocked(nv)
}

// publishLocked swaps the view and refreshes the stack gauges.
func (st *Store) publishLocked(nv *View) {
	st.view.Store(nv)
	st.publishGauges(nv)
}

func (st *Store) publishGauges(v *View) {
	if st.sink == nil {
		return
	}
	st.sink.SegmentCount.Set(int64(len(v.segs)))
	tail := 0
	if v.tail != nil {
		tail = v.tail.docs
	}
	st.sink.TailDocs.Set(int64(tail))
	st.sink.Tombstones.Set(int64(v.tombstones()))
}

// CorpusStats mirrors the monolithic index's summary statistics,
// deduplicating what segments share (one conceptual root) and
// excluding tombstoned content.
type CorpusStats struct {
	Nodes      int
	MaxDepth   int
	Tokens     int64
	Vocab      int
	LabelPaths int
}

// Stats summarizes the live stack.
func (st *Store) Stats() CorpusStats {
	v := st.view.Load()
	out := CorpusStats{Vocab: v.vocabSize, LabelPaths: v.paths.Len()}
	n := 0
	for _, s := range v.all() {
		out.Nodes += s.ix.NodeCount() - s.dead.DeadNodes()
		out.Tokens += s.liveTokens()
		if d := s.ix.MaxDepth(); d > out.MaxDepth {
			out.MaxDepth = d
		}
		n++
	}
	if n > 1 {
		out.Nodes -= n - 1 // every segment repeats the shared root node
	}
	return out
}

// SegStats describes the stack itself (exposed via /metricz and the
// catalog's corpus status).
type SegStats struct {
	// Segments is the sealed segment count (tail excluded).
	Segments int `json:"segments"`
	// TailDocs is the number of documents in the mutable tail.
	TailDocs int `json:"tailDocs"`
	// Tombstones is the number of logically removed documents not yet
	// purged.
	Tombstones int `json:"tombstones"`
	// Compactions is the number of completed compaction operations.
	Compactions int64 `json:"compactions"`
	// Epoch increments on every published view.
	Epoch uint64 `json:"epoch"`
}

// SegmentStats reports the current stack shape.
func (st *Store) SegmentStats() SegStats {
	v := st.view.Load()
	tail := 0
	if v.tail != nil {
		tail = v.tail.docs
	}
	return SegStats{
		Segments:    len(v.segs),
		TailDocs:    tail,
		Tombstones:  v.tombstones(),
		Compactions: st.compactions.Load(),
		Epoch:       v.epoch,
	}
}

// SubtreeText renders the stored text under a Dewey code, routing to
// the segment owning its top-level ordinal. Tombstoned and unknown
// documents yield "".
func (st *Store) SubtreeText(d xmltree.Dewey, maxLen int) string {
	v := st.view.Load()
	if len(d) < 2 {
		if fe := st.FastEngine(); fe != nil && len(v.segs) == 1 {
			return v.segs[0].ix.SubtreeText(d, maxLen)
		}
		return ""
	}
	ord := d[1]
	for _, s := range v.all() {
		if ord < s.minOrd || ord > s.maxOrd || !s.ix.HasRootChild(ord) {
			continue
		}
		if s.deadOrds[ord] {
			return ""
		}
		return s.ix.SubtreeText(d, maxLen)
	}
	return ""
}

// SealedIndexes seals the tail and returns the stack's per-segment
// indexes in ordinal order, with tombstoned documents purged from each.
// It is the multi-segment persistence hook: the snapshot writer emits
// one segment file per returned index. Unlike Flatten it never merges,
// so the published stack shape is unchanged (apart from the seal) and
// the cost is proportional to the tombstoned segments only.
func (st *Store) SealedIndexes(ctx context.Context) ([]*invindex.Index, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sealLocked()
	v := st.view.Load()
	if len(v.segs) == 0 {
		return nil, fmt.Errorf("snapshot: empty segment stack")
	}
	out := make([]*invindex.Index, len(v.segs))
	for i, s := range v.segs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = s.ix
		if s.dead.DeadDocs() > 0 {
			purged, err := s.ix.CloneDropping(s.dead)
			if err != nil {
				return nil, err
			}
			out[i] = purged
		}
	}
	return out, nil
}

// Flatten merges the whole stack — tail sealed, tombstones purged —
// into a single segment and publishes it, returning the merged index.
// It runs entirely under the writer lock: writes wait, queries keep
// reading the previous view until the swap. This is the bridge back
// to every single-index operation (persistence, entity sharding).
func (st *Store) Flatten(ctx context.Context) (*invindex.Index, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sealLocked()
	v := st.view.Load()
	all := v.segs
	if len(all) == 0 {
		return nil, fmt.Errorf("flatten: empty segment stack")
	}
	var err error
	if len(all) == 1 && all[0].dead.DeadDocs() == 0 {
		return all[0].ix, nil // already flat
	}
	start := time.Now()
	parts := make([]*invindex.Index, len(all))
	for i, s := range all {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		parts[i] = s.ix
		if s.dead.DeadDocs() > 0 {
			parts[i], err = s.ix.CloneDropping(s.dead)
			if err != nil {
				return nil, err
			}
		}
	}
	merged := parts[0]
	if len(parts) > 1 {
		merged, err = invindex.MergeOrdered(parts)
		if err != nil {
			return nil, err
		}
	}
	if st.compactPx {
		merged.Compact()
	}
	eng := core.NewEngine(merged, st.cfg)
	eng.SetSink(st.sink)
	st.nextID++
	lo, hi := merged.RootOrdinalRange()
	seg := &Segment{
		id:     st.nextID,
		ix:     merged,
		eng:    eng,
		minOrd: lo,
		maxOrd: hi,
		docs:   merged.RootChildCount(),
	}
	nv := &View{
		epoch:     v.epoch + 1,
		segs:      []*Segment{seg},
		paths:     merged.Paths,
		nextOrd:   v.nextOrd,
		vocabSize: merged.Vocab.Size(),
	}
	st.publishLocked(nv)
	st.compactions.Add(1)
	if st.sink != nil {
		st.sink.CompactionRuns.Inc()
		st.sink.CompactionBytes.Add(merged.PostingsBytes())
		st.sink.CompactionDur.ObserveDuration(time.Since(start))
	}
	return merged, nil
}
