// Package segment implements the engine-level segmented index: a
// stack of immutable sealed segments plus a small in-memory mutable
// tail that absorbs live document additions and removals, in the style
// of an LSM tree.
//
// Each segment wraps one invindex.Index (and its engine, variant index
// included) over a disjoint range of top-level document ordinals.
// Because the scoring function — Eq. (8) of the XClean paper — sums
// over entities, and entities partition by document, a query over the
// stack runs the scan half of Algorithm 1 once per segment with
// stack-global models substituted (core.Engine.ScanVariant) and folds
// the per-segment partial sums with core.MergePartials, reproducing
// the monolithic engine's scores exactly (up to floating-point
// association). Removals are tombstones (invindex.RemovalStats) that
// the per-segment scan filters out and a background compactor
// eventually purges; the compactor also merges small ordinal-adjacent
// segments so the stack stays shallow under sustained write traffic.
//
// Readers never lock: the whole stack is published as an immutable
// View behind an atomic pointer, so a query pins one consistent
// snapshot while writes and compactions publish successors.
package segment

import (
	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// Segment is one immutable member of the stack: an index over a
// contiguous range of top-level document ordinals, its engine, and the
// tombstone state accumulated since it was sealed. The wrapped index
// and engine are never mutated; a removal replaces the Segment value
// with one carrying a larger tombstone set.
type Segment struct {
	// id is unique within one store (diagnostics only).
	id uint64
	ix *invindex.Index
	// eng is a full engine over ix (with its own variant index). The
	// multi-segment query path replaces its models per call via
	// ScanVariant; the single-segment fast path uses it directly.
	eng *core.Engine
	// minOrd..maxOrd is the root-child ordinal range, tombstoned
	// documents included.
	minOrd, maxOrd uint32
	// docs counts documents in ix, tombstoned ones included.
	docs int
	// dead is the tombstone set (nil = none). deadOrds and deadNorm are
	// the projections of dead the scan consumes: the removed ordinals
	// and the removed prior mass per result type.
	dead     *invindex.RemovalStats
	deadOrds map[uint32]bool
	deadNorm map[xmltree.PathID]float64
}

// liveDocs is the number of non-tombstoned documents.
func (s *Segment) liveDocs() int { return s.docs - s.dead.DeadDocs() }

// liveTokens is the number of live token occurrences (the compactor's
// size measure).
func (s *Segment) liveTokens() int64 { return s.ix.TotalTokens() - s.dead.DeadToks() }

// liveCount is the live corpus frequency of w in this segment.
func (s *Segment) liveCount(w string) int64 {
	return s.ix.Vocab.Count(w) - s.dead.DeadVocab(w)
}

// withDead returns a copy of s carrying the given tombstone set; the
// index and engine are shared.
func (s *Segment) withDead(dead *invindex.RemovalStats, cfg core.Config) *Segment {
	return &Segment{
		id:       s.id,
		ix:       s.ix,
		eng:      s.eng,
		minOrd:   s.minOrd,
		maxOrd:   s.maxOrd,
		docs:     s.docs,
		dead:     dead,
		deadOrds: dead.DeadOrds(),
		deadNorm: deadNormFor(cfg, s.ix, dead),
	}
}

// deadNormFor projects a tombstone set onto the entity-prior
// normalizers: for every result type, the prior mass of the removed
// nodes, so liveNorm(p) = normFor(p) − deadNorm[p] reflects only live
// entities. Under the length prior the root's own weight is its
// subtree length, which shrinks by the removed total (relevant only
// when MinDepth admits the root as a result type).
func deadNormFor(cfg core.Config, ix *invindex.Index, dead *invindex.RemovalStats) map[xmltree.PathID]float64 {
	if dead == nil || len(dead.Nodes) == 0 {
		return nil
	}
	m := make(map[xmltree.PathID]float64, 16)
	for _, n := range dead.Nodes {
		m[n.Path] += cfg.EntityWeight(n.Key, n.Len)
	}
	if cfg.Prior == core.PriorLength {
		if root, err := ix.RootLabel(); err == nil {
			if p := ix.Paths.Lookup("/" + root); p != xmltree.InvalidPath {
				m[p] += float64(dead.DeadTotal())
			}
		}
	}
	return m
}
