package segment

import (
	"context"
	"time"

	"xclean/internal/core"
	"xclean/internal/invindex"
)

// The background compactor. Two kinds of work, smallest-first:
//
//   - purge: a segment whose tombstones reach a quarter of its
//     documents is rewritten without them (CloneDropping), reclaiming
//     postings and dropping the tombstone overlay from the hot path;
//   - merge: when the stack grows past maxSealed segments, the
//     ordinal-adjacent run of 2..mergeFan sealed segments with the
//     fewest live tokens is merged (tombstones purged first) into one.
//
// All index construction happens outside the writer lock; the swap
// revalidates by pointer identity that the segments it replaces are
// still in the stack (a concurrent removal publishes a new *Segment
// value for the same index, aborting the stale swap harmlessly).

const (
	// A segment qualifies for a purge when its tombstoned fraction
	// reaches purgeNum/purgeDen of its documents.
	purgeNum, purgeDen = 1, 4
	// maxSealed is the sealed-segment count that triggers merging.
	maxSealed = 4
	// mergeFan bounds how many segments one merge combines.
	mergeFan = 4
	// maxOpsPerTrigger bounds the work of one write-triggered
	// compaction burst.
	maxOpsPerTrigger = 4
)

func needsPurge(s *Segment) bool {
	return s.docs > 0 && s.dead.DeadDocs()*purgeDen >= s.docs*purgeNum
}

func (st *Store) needsCompaction(v *View) bool {
	if len(v.segs) > maxSealed {
		return true
	}
	for _, s := range v.segs {
		if needsPurge(s) {
			return true
		}
	}
	return false
}

// maybeCompactAsync starts one background compaction burst if work is
// pending and none is running. Called after every write.
func (st *Store) maybeCompactAsync() {
	if st.closed.Load() || !st.needsCompaction(st.view.Load()) {
		return
	}
	if !st.inFlight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer st.inFlight.Store(false)
		ctx := context.Background()
		for i := 0; i < maxOpsPerTrigger; i++ {
			did, err := st.CompactOnce(ctx)
			if err != nil || !did {
				return
			}
		}
	}()
}

// tick drives the optional interval compactor until Close.
func (st *Store) tick() {
	t := time.NewTicker(st.interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			if st.inFlight.CompareAndSwap(false, true) {
				_, _ = st.CompactOnce(context.Background())
				st.inFlight.Store(false)
			}
		}
	}
}

// CompactOnce performs at most one compaction operation (one purge or
// one merge) and reports whether it did anything. Safe to call
// concurrently with queries and writes; concurrent CompactOnce calls
// serialize on the swap and the loser aborts.
func (st *Store) CompactOnce(ctx context.Context) (bool, error) {
	if st.closed.Load() {
		return false, nil
	}
	v := st.view.Load()

	// Purge pass: smallest qualifying segment first.
	var victim *Segment
	for _, s := range v.segs {
		if needsPurge(s) && (victim == nil || s.liveTokens() < victim.liveTokens()) {
			victim = s
		}
	}
	if victim != nil {
		return st.purge(ctx, v, victim)
	}

	// Merge pass: the adjacent run with the fewest live tokens.
	if len(v.segs) <= maxSealed {
		return false, nil
	}
	fan := mergeFan
	if fan > len(v.segs) {
		fan = len(v.segs)
	}
	bestAt, bestN := -1, 0
	var bestTokens int64
	for n := 2; n <= fan; n++ {
		for i := 0; i+n <= len(v.segs); i++ {
			var toks int64
			for _, s := range v.segs[i : i+n] {
				toks += s.liveTokens()
			}
			// Prefer wider merges at equal cost magnitude: amortize the
			// rewrite over more stack reduction.
			if bestAt < 0 || toks < bestTokens || (toks == bestTokens && n > bestN) {
				bestAt, bestN, bestTokens = i, n, toks
			}
		}
	}
	if bestAt < 0 {
		return false, nil
	}
	return st.merge(ctx, v, v.segs[bestAt:bestAt+bestN])
}

// purge rewrites one segment without its tombstones and swaps it in.
func (st *Store) purge(ctx context.Context, v *View, victim *Segment) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	start := time.Now()
	if victim.liveDocs() == 0 {
		// Nothing lives here; drop the segment entirely.
		return st.swap(v, []*Segment{victim}, nil, start)
	}
	clean, err := victim.ix.CloneDropping(victim.dead)
	if err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if st.compactPx {
		clean.Compact()
	}
	ns := st.newSealed(clean)
	return st.swap(v, []*Segment{victim}, ns, start)
}

// merge purges and concatenates an ordinal-adjacent run into one
// segment and swaps it in.
func (st *Store) merge(ctx context.Context, v *View, run []*Segment) (bool, error) {
	parts := make([]*invindex.Index, len(run))
	start := time.Now()
	for i, s := range run {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		parts[i] = s.ix
		if s.dead.DeadDocs() > 0 {
			var err error
			parts[i], err = s.ix.CloneDropping(s.dead)
			if err != nil {
				return false, err
			}
		}
	}
	merged, err := invindex.MergeOrdered(parts)
	if err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if st.compactPx {
		merged.Compact()
	}
	ns := st.newSealed(merged)
	return st.swap(v, run, ns, start)
}

// newSealed wraps a freshly built index as a sealed segment.
func (st *Store) newSealed(ix *invindex.Index) *Segment {
	eng := core.NewEngine(ix, st.cfg)
	eng.SetSink(st.sink)
	lo, hi := ix.RootOrdinalRange()
	return &Segment{
		ix:     ix,
		eng:    eng,
		minOrd: lo,
		maxOrd: hi,
		docs:   ix.RootChildCount(),
	}
}

// swap replaces a contiguous run of sealed segments with repl (nil to
// drop the run) under the writer lock, aborting if any member was
// replaced since the view was loaded.
func (st *Store) swap(v *View, run []*Segment, repl *Segment, start time.Time) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.view.Load()
	at := -1
	for i := range cur.segs {
		if cur.segs[i] == run[0] {
			at = i
			break
		}
	}
	if at < 0 || at+len(run) > len(cur.segs) {
		return false, nil
	}
	for i, s := range run {
		if cur.segs[at+i] != s {
			return false, nil // concurrent removal republished a member
		}
	}
	segs := make([]*Segment, 0, len(cur.segs))
	segs = append(segs, cur.segs[:at]...)
	if repl != nil {
		st.nextID++
		repl.id = st.nextID
		segs = append(segs, repl)
	}
	segs = append(segs, cur.segs[at+len(run):]...)
	nv := &View{
		epoch:     cur.epoch + 1,
		segs:      segs,
		tail:      cur.tail,
		paths:     cur.paths,
		nextOrd:   cur.nextOrd,
		vocabSize: cur.vocabSize, // purging removes only dead occurrences
	}
	st.publishLocked(nv)
	st.compactions.Add(1)
	if st.sink != nil {
		st.sink.CompactionRuns.Inc()
		if repl != nil {
			st.sink.CompactionBytes.Add(repl.ix.PostingsBytes())
		}
		st.sink.CompactionDur.ObserveDuration(time.Since(start))
	}
	return true, nil
}
