package segment

import (
	"context"
	"math"
	"sort"
	"strings"
	"time"

	"xclean/internal/core"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/lm"
	"xclean/internal/resulttype"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// The multi-segment query path. Eq. (8) sums over entities, entities
// partition by document, and documents partition by segment — so the
// per-candidate score decomposes into per-segment partial sums that
// core.MergePartials recombines exactly. What must NOT be per-segment
// is everything derived from collection-wide statistics: the variant
// sets (a word live in any segment is a valid variant), the Dirichlet
// background P(w|B), the result-type lists f_p^w, and the bigram
// table. This file materializes those stack-global live models once
// per query and injects them into every segment's scan via
// core.Engine.ScanVariant.

func (st *Store) minDepth() int {
	if st.cfg.MinDepth <= 0 {
		return 2
	}
	return st.cfg.MinDepth
}

func (st *Store) k() int {
	if st.cfg.K <= 0 {
		return 10
	}
	return st.cfg.K
}

func (st *Store) tau() int {
	if st.cfg.MaxSpaceChanges <= 0 {
		return 1
	}
	return st.cfg.MaxSpaceChanges
}

func (st *Store) beta() float64 {
	if st.cfg.Beta < 0 {
		return 0
	}
	if st.cfg.Beta == 0 {
		return core.DefaultBeta
	}
	return st.cfg.Beta
}

// Suggest answers one user query against a pinned view of the stack:
// the segmented analogue of the engine's Suggest family, with optional
// space-error expansion and explain trace. Stats are summed across
// segments (and shapes); the sink observes the call once at this
// level — the per-segment scan engines carry no sink.
func (st *Store) Suggest(ctx context.Context, query string, spaces, explain bool) ([]core.MergedSuggestion, core.Stats, *core.Explain, error) {
	start := time.Now()
	v := st.view.Load()
	var (
		out   []core.MergedSuggestion
		stats core.Stats
		kws   []core.Keyword
		err   error
	)
	if spaces {
		out, stats, kws, err = st.suggestSpaces(ctx, v, query)
	} else {
		kws = st.keywords(v, st.cfg.Tokenizer.Tokenize(query))
		out, stats, err = st.suggestKeywords(ctx, v, kws)
	}
	took := time.Since(start)
	if st.sink != nil {
		st.sink.ObserveSuggest(took, nil)
		st.sink.PostingsRead.Add(int64(stats.PostingsRead))
		st.sink.Subtrees.Add(int64(stats.Subtrees))
		st.sink.CandidatesSeen.Add(int64(stats.CandidatesSeen))
		st.sink.TypeCacheHits.Add(int64(stats.TypeCacheHits))
		st.sink.TypeCacheMisses.Add(int64(stats.TypeComputations))
		st.sink.Evictions.Add(int64(stats.Evictions))
	}
	if err != nil {
		return nil, stats, nil, err
	}
	var ex *core.Explain
	if explain {
		ex = &core.Explain{Query: query, TookNs: took.Nanoseconds(), Stats: stats}
		ex.Keywords = make([]core.ExplainKeyword, len(kws))
		for i, kw := range kws {
			ex.Keywords[i] = core.ExplainKeyword{Token: kw.Raw, Variants: len(kw.Variants)}
		}
		ex.Candidates = make([]core.ExplainCandidate, len(out))
		for i, s := range out {
			ex.Candidates[i] = core.ExplainCandidate{
				Words:        s.Words,
				Score:        s.Score,
				EditDistance: s.EditDistance,
				Entities:     s.Entities,
				ResultType:   s.ResultType,
			}
		}
	}
	return out, stats, ex, nil
}

// keywords builds the stack-global keyword structures: per token, the
// union of every segment's variant matches (minimum distance wins),
// restricted to words still live somewhere, sorted like the
// monolithic variant set, and weighted by the shared error model.
func (st *Store) keywords(v *View, toks []string) []core.Keyword {
	em := core.ErrorModel{Beta: st.cfg.Beta}
	segs := v.all()
	kws := make([]core.Keyword, len(toks))
	for i, tok := range toks {
		min := make(map[string]int)
		for _, sg := range segs {
			for _, m := range sg.eng.VariantMatches(tok) {
				if d, ok := min[m.Word]; !ok || m.Dist < d {
					min[m.Word] = m.Dist
				}
			}
		}
		matches := make([]fastss.Match, 0, len(min))
		for w, d := range min {
			if liveCountIn(v, w) > 0 {
				matches = append(matches, fastss.Match{Word: w, Dist: d})
			}
		}
		sort.Slice(matches, func(a, b int) bool {
			if matches[a].Dist != matches[b].Dist {
				return matches[a].Dist < matches[b].Dist
			}
			return matches[a].Word < matches[b].Word
		})
		kws[i] = em.Keyword(tok, matches)
	}
	return kws
}

// suggestKeywords scans every segment with the global models and folds
// the partials. Segments run sequentially (each scan parallelizes
// internally per the engine's Workers setting); the set order is the
// ordinal order, reproducing the monolithic summation order.
func (st *Store) suggestKeywords(ctx context.Context, v *View, kws []core.Keyword) ([]core.MergedSuggestion, core.Stats, error) {
	var stats core.Stats
	if len(kws) == 0 {
		return nil, stats, nil
	}
	models := st.buildModels(v, kws)
	sets := make([]core.PartialSet, 0, len(v.segs)+1)
	for _, sg := range v.all() {
		se := sg.eng.ScanVariant(core.ScanOverrides{
			Model:    models.model,
			Inferrer: models.inf,
			Bigram:   models.bigram,
			Paths:    v.paths,
			DeadOrds: sg.deadOrds,
			DeadNorm: sg.deadNorm,
		})
		ps, sstat, err := se.SuggestPartialsForKeywords(ctx, kws, 0)
		if err != nil {
			return nil, stats, err
		}
		addStats(&stats, sstat)
		sets = append(sets, ps)
	}
	out, err := core.MergePartials(core.MergeConfig{Beta: st.cfg.Beta, K: st.cfg.K}, sets)
	return out, stats, err
}

// suggestSpaces is the space-error path over the stack: shapes are
// enumerated against the live vocabulary, each shape runs the full
// segmented scan, and per-shape top-k lists compete after the
// exp(−β·changes) penalty — mirroring the monolithic
// suggestSpacesObserved ordering (truncate per shape, then penalize,
// then merge).
func (st *Store) suggestSpaces(ctx context.Context, v *View, query string) ([]core.MergedSuggestion, core.Stats, []core.Keyword, error) {
	var stats core.Stats
	raw := tokenizer.TokenizeRaw(query)
	shapes := st.expandShapes(v, raw, st.tau())
	beta := st.beta()
	var baseKws []core.Keyword
	best := make(map[string]core.MergedSuggestion)
	for si, sh := range shapes {
		kept := st.filterShape(sh.tokens)
		if len(kept) == 0 {
			if si == 0 {
				baseKws = nil
			}
			continue
		}
		kws := st.keywords(v, kept)
		if si == 0 {
			baseKws = kws
		}
		sugs, sstat, err := st.suggestKeywords(ctx, v, kws)
		addStats(&stats, sstat)
		if err != nil {
			return nil, stats, baseKws, err
		}
		penalty := math.Exp(-beta * float64(sh.changes))
		for _, s := range sugs {
			s.Score *= penalty
			s.EditDistance += sh.changes
			q := s.Query()
			if old, ok := best[q]; !ok || s.Score > old.Score {
				best[q] = s
			}
		}
	}
	var out []core.MergedSuggestion
	if len(best) > 0 {
		out = make([]core.MergedSuggestion, 0, len(best))
		for _, s := range best {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].Query() < out[j].Query()
		})
		if k := st.k(); len(out) > k {
			out = out[:k]
		}
	}
	return out, stats, baseKws, nil
}

type spaceShape struct {
	tokens  []string
	changes int
}

// expandShapes mirrors core.Engine.expandShapes with the stack-global
// live vocabulary as the validity oracle.
func (st *Store) expandShapes(v *View, tokens []string, tau int) []spaceShape {
	contains := func(w string) bool { return liveCountIn(v, w) > 0 }
	seen := map[string]bool{}
	var out []spaceShape
	var queue []spaceShape
	push := func(s spaceShape) {
		key := strings.Join(s.tokens, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
			queue = append(queue, s)
		}
	}
	push(spaceShape{tokens: tokens})
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.changes >= tau {
			continue
		}
		for i := 0; i+1 < len(cur.tokens); i++ {
			merged := cur.tokens[i] + cur.tokens[i+1]
			if !contains(merged) {
				continue
			}
			next := make([]string, 0, len(cur.tokens)-1)
			next = append(next, cur.tokens[:i]...)
			next = append(next, merged)
			next = append(next, cur.tokens[i+2:]...)
			push(spaceShape{tokens: next, changes: cur.changes + 1})
		}
		for i, tok := range cur.tokens {
			r := []rune(tok)
			for cut := 1; cut < len(r); cut++ {
				a, b := string(r[:cut]), string(r[cut:])
				if !contains(a) || !contains(b) {
					continue
				}
				next := make([]string, 0, len(cur.tokens)+1)
				next = append(next, cur.tokens[:i]...)
				next = append(next, a, b)
				next = append(next, cur.tokens[i+1:]...)
				push(spaceShape{tokens: next, changes: cur.changes + 1})
			}
		}
	}
	return out
}

func (st *Store) filterShape(tokens []string) []string {
	var kept []string
	for _, t := range tokens {
		if ts := st.cfg.Tokenizer.Tokenize(t); len(ts) == 1 {
			kept = append(kept, ts[0])
		}
	}
	return kept
}

// queryModels bundles the per-query global model substitutions.
type queryModels struct {
	model  *lm.Model
	inf    *resulttype.Inferrer
	bigram *lm.BigramModel
}

// buildModels materializes the stack-global live statistics the scan
// engines consume. Everything a concurrent scan reads is precomputed
// into read-only maps keyed by the query's variant words; rare lookups
// outside that set fall back to stateless sums over the pinned view.
func (st *Store) buildModels(v *View, kws []core.Keyword) queryModels {
	words := make([]string, 0, 16)
	seen := make(map[string]bool, 16)
	for _, kw := range kws {
		for _, vr := range kw.Variants {
			if !seen[vr.Word] {
				seen[vr.Word] = true
				words = append(words, vr.Word)
			}
		}
	}

	var liveTotal int64
	for _, s := range v.all() {
		liveTotal += s.liveTokens()
	}
	lv := &liveVocab{
		v:      v,
		counts: make(map[string]int64, len(words)),
		total:  liveTotal,
		size:   int64(v.vocabSize),
	}
	for _, w := range words {
		lv.counts[w] = liveCountIn(v, w)
	}

	lt := &liveTypes{v: v, lists: make(map[string][]invindex.TypeCount, len(words))}
	for _, w := range words {
		lt.lists[w] = mergedTypeList(v, w)
	}

	m := queryModels{
		model: lm.New(lv, st.cfg.Mu),
		inf:   &resulttype.Inferrer{Index: lt, R: st.cfg.R, MinDepth: st.minDepth()},
	}
	if st.cfg.Bigram {
		m.bigram = lm.NewBigram(&liveBigrams{v: v}, lv, st.cfg.BigramLambda)
	}
	return m
}

// liveVocab is the stack-global live background distribution: the
// Dirichlet background P(w|B) of Eq. (9) over non-tombstoned content,
// matching tokenizer.Vocabulary.Prob on a monolithic index of the same
// live corpus. It implements lm.Background and lm.UnigramSource.
type liveVocab struct {
	v      *View
	counts map[string]int64 // precomputed for the query's variant words
	total  int64
	size   int64
}

func (lv *liveVocab) Count(w string) int64 {
	if c, ok := lv.counts[w]; ok {
		return c
	}
	return liveCountIn(lv.v, w)
}

func (lv *liveVocab) Prob(w string) float64 {
	denom := lv.total + lv.size
	if denom == 0 {
		return 0
	}
	return float64(lv.Count(w)+1) / float64(denom)
}

// liveTypes is the stack-global live type-list source (f_p^w of
// Eq. (7)). It implements resulttype.Source.
type liveTypes struct {
	v     *View
	lists map[string][]invindex.TypeCount
}

func (lt *liveTypes) TypeList(tok string) []invindex.TypeCount {
	if l, ok := lt.lists[tok]; ok {
		return l
	}
	return mergedTypeList(lt.v, tok)
}

func (lt *liveTypes) PathDepth(p xmltree.PathID) int { return lt.v.paths.Depth(p) }

// mergedTypeList sums the segments' tombstone-adjusted type lists.
// Every segment containing the token counts the shared root once, so
// the root entry is clamped to one — the monolithic value. The result
// is sorted by path ID (the inferrer binary-searches it).
func mergedTypeList(v *View, tok string) []invindex.TypeCount {
	sum := make(map[xmltree.PathID]int32, 8)
	for _, s := range v.all() {
		deadTypes := s.dead.DeadTypes(tok)
		for _, tc := range s.ix.TypeList(tok) {
			f := tc.F - deadTypes[tc.Path]
			if f != 0 {
				sum[tc.Path] += f
			}
		}
	}
	if len(sum) == 0 {
		return nil
	}
	out := make([]invindex.TypeCount, 0, len(sum))
	for p, f := range sum {
		if f <= 0 {
			continue
		}
		if v.paths.Depth(p) == 1 && f > 1 {
			f = 1
		}
		out = append(out, invindex.TypeCount{Path: p, F: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// liveBigrams is the stack-global live adjacency source; stateless
// per-lookup sums keep it race-free. It implements lm.BigramSource.
type liveBigrams struct{ v *View }

func (lb *liveBigrams) BigramCount(w1, w2 string) int64 {
	var n int64
	for _, s := range lb.v.all() {
		n += s.ix.BigramCount(w1, w2) - s.dead.DeadBigrams(w1, w2)
	}
	return n
}

// addStats accumulates per-segment scan counters (core.Stats.add is
// unexported; the fields are not).
func addStats(dst *core.Stats, s core.Stats) {
	dst.PostingsRead += s.PostingsRead
	dst.Subtrees += s.Subtrees
	dst.CandidatesSeen += s.CandidatesSeen
	dst.TypeComputations += s.TypeComputations
	dst.TypeCacheHits += s.TypeCacheHits
	dst.Evictions += s.Evictions
	dst.WorkerSubtrees = append(dst.WorkerSubtrees, s.WorkerSubtrees...)
}
