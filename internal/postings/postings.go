// Package postings implements the compressed posting-list codec behind
// the inverted index of Section V-C. A posting is one (dewey, label
// path, tf) tuple — the paper's inverted-list entry — extended with the
// node's direct token count needed by the PY08 baseline.
//
// Lists are stored in document order and encoded in blocks:
//
//   - within a block, each Dewey code is delta-encoded against its
//     predecessor as (shared-prefix length, suffix components), which
//     exploits the long shared prefixes of document-ordered codes;
//   - all integers use unsigned varints;
//   - every block begins with a full (undeltaed) Dewey code, so blocks
//     decode independently and a skip table over block-first codes
//     supports SkipTo without touching earlier blocks — the on-disk
//     analogue of the MergedList skipping that Algorithm 1 relies on.
//
// The codec is used two ways: the index persistence format stores every
// list compressed, and Index.Compact keeps lists compressed in memory,
// trading per-query decode work for a several-fold smaller resident
// index (the AblationCompression benchmark quantifies both sides).
package postings

import (
	"encoding/binary"
	"fmt"

	"xclean/internal/xmltree"
)

// Posting is one inverted-list entry: token occurrence(s) in the direct
// text of one tree node. invindex.Posting aliases this type.
type Posting struct {
	Dewey xmltree.Dewey
	Path  xmltree.PathID
	TF    int32
	// NodeLen is the number of kept tokens in the node's direct text
	// (|t| in the PY08 tf·idf formula).
	NodeLen int32
}

// BlockSize is the number of postings per compression block. 128
// balances skip granularity against per-block header overhead.
const BlockSize = 128

// List is one immutable compressed posting list.
type List struct {
	data   []byte  // concatenated block payloads
	offs   []int   // byte offset of each block in data
	firsts []uint8 // length (components) of each block's first dewey
	// skips[i] is the first Dewey code of block i, all codes
	// concatenated; skipStart[i] indexes its start (component units).
	skipComps []uint32
	skipStart []int
	n         int
}

// Encode compresses a document-ordered posting list.
func Encode(ps []Posting) *List {
	l := &List{n: len(ps)}
	if len(ps) == 0 {
		return l
	}
	var prev xmltree.Dewey
	buf := make([]byte, binary.MaxVarintLen64)
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(buf, v)
		l.data = append(l.data, buf[:n]...)
	}
	for i, p := range ps {
		if i%BlockSize == 0 {
			l.offs = append(l.offs, len(l.data))
			l.firsts = append(l.firsts, uint8(len(p.Dewey)))
			l.skipStart = append(l.skipStart, len(l.skipComps))
			l.skipComps = append(l.skipComps, p.Dewey...)
			prev = nil
		}
		shared := sharedPrefix(prev, p.Dewey)
		putUvarint(uint64(shared))
		putUvarint(uint64(len(p.Dewey) - shared))
		for _, c := range p.Dewey[shared:] {
			putUvarint(uint64(c))
		}
		putUvarint(uint64(p.Path))
		putUvarint(uint64(p.TF))
		putUvarint(uint64(p.NodeLen))
		prev = p.Dewey
	}
	l.skipStart = append(l.skipStart, len(l.skipComps))
	return l
}

func sharedPrefix(a, b xmltree.Dewey) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Len is the number of postings in the list.
func (l *List) Len() int { return l.n }

// SizeBytes is the compressed payload size, excluding the in-memory
// skip table.
func (l *List) SizeBytes() int { return len(l.data) }

// blockFirst returns block i's first Dewey code (aliases internal
// storage; callers must not mutate).
func (l *List) blockFirst(i int) xmltree.Dewey {
	return xmltree.Dewey(l.skipComps[l.skipStart[i] : l.skipStart[i]+int(l.firsts[i])])
}

func (l *List) blocks() int { return len(l.offs) }

// Decode expands the whole list. Every returned Dewey is an independent
// copy.
func (l *List) Decode() []Posting {
	out := make([]Posting, 0, l.n)
	it := l.Iter()
	for {
		p, ok := it.Head()
		if !ok {
			break
		}
		p.Dewey = p.Dewey.Clone()
		out = append(out, p)
		it.Advance()
	}
	return out
}

// Iter returns an iterator positioned at the first posting.
type Iterator struct {
	l     *List
	block int // current block index
	pos   int // byte position within data
	idx   int // posting index within the whole list
	cur   Posting
	curD  xmltree.Dewey // reusable buffer holding the current code
	ok    bool
}

// Iter returns a fresh iterator over the list.
func (l *List) Iter() *Iterator {
	it := &Iterator{l: l}
	if l.n > 0 {
		it.pos = 0
		it.decodeNext()
	}
	return it
}

// Head returns the current posting without advancing. The posting's
// Dewey aliases an internal buffer that the next Advance/SkipTo call
// overwrites; callers needing to retain it must Clone.
func (it *Iterator) Head() (Posting, bool) { return it.cur, it.ok }

// Advance moves to the next posting.
func (it *Iterator) Advance() {
	if !it.ok {
		return
	}
	it.idx++
	if it.idx >= it.l.n {
		it.ok = false
		return
	}
	if it.idx%BlockSize == 0 {
		it.block++
		it.curD = it.curD[:0] // block starts undeltaed
	}
	it.decodeNext()
}

// decodeNext decodes the posting at it.pos, deltaed against it.curD.
// The wire format carries no checksum, so corrupt payloads are
// possible; any structural violation (truncated varint, shared prefix
// longer than the previous code) fail-stops the iterator instead of
// panicking — the list simply appears exhausted.
func (it *Iterator) decodeNext() {
	data := it.l.data[it.pos:]
	read := 0
	bad := false
	uv := func() uint64 {
		v, n := binary.Uvarint(data[read:])
		if n <= 0 {
			bad = true
			return 0
		}
		read += n
		return v
	}
	shared := int(uv())
	suffix := int(uv())
	if bad || shared < 0 || shared > len(it.curD) {
		it.ok = false
		return
	}
	it.curD = it.curD[:shared]
	for i := 0; i < suffix; i++ {
		c := uint32(uv())
		if bad {
			it.ok = false
			return
		}
		it.curD = append(it.curD, c)
	}
	it.cur = Posting{
		Dewey:   it.curD,
		Path:    xmltree.PathID(uv()),
		TF:      int32(uv()),
		NodeLen: int32(uv()),
	}
	if bad {
		it.ok = false
		return
	}
	it.pos += read
	it.ok = true
}

// SkipTo advances the iterator to the first posting whose Dewey code is
// ≥ d (in document order), never moving backward. It binary-searches
// the block skip table, then scans within the landing block.
func (it *Iterator) SkipTo(d xmltree.Dewey) (Posting, bool) {
	if !it.ok || it.cur.Dewey.Compare(d) >= 0 {
		return it.cur, it.ok
	}
	// Find the last block whose first code is ≤ d; only jump forward.
	lo, hi := it.block, it.l.blocks()-1
	target := it.block
	for lo <= hi {
		mid := (lo + hi) / 2
		if it.l.blockFirst(mid).Compare(d) <= 0 {
			target = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if target > it.block {
		it.block = target
		it.idx = target * BlockSize
		it.pos = it.l.offs[target]
		it.curD = it.curD[:0]
		it.decodeNext()
	}
	for it.ok && it.cur.Dewey.Compare(d) < 0 {
		it.Advance()
	}
	return it.cur, it.ok
}

// Wire format of one list:
//
//	uvarint n            postings
//	uvarint blocks       block count
//	per block: uvarint payload length
//	payloads             concatenated block bytes
//
// Block-first codes are reconstructed from the payloads at load time.

// AppendTo serializes the list, appending to buf.
func (l *List) AppendTo(buf []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(l.n))
	put(uint64(l.blocks()))
	for i := range l.offs {
		end := len(l.data)
		if i+1 < len(l.offs) {
			end = l.offs[i+1]
		}
		put(uint64(end - l.offs[i]))
	}
	return append(buf, l.data...)
}

// DecodeList parses one serialized list from the front of buf and
// returns it along with the number of bytes consumed.
func DecodeList(buf []byte) (*List, int, error) {
	read := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(buf[read:])
		if n <= 0 {
			return 0, fmt.Errorf("postings: truncated list header")
		}
		read += n
		return v, nil
	}
	n, err := uv()
	if err != nil {
		return nil, 0, err
	}
	blocks, err := uv()
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		if blocks != 0 {
			return nil, 0, fmt.Errorf("postings: empty list with %d blocks", blocks)
		}
		return &List{}, read, nil
	}
	if want := (n + BlockSize - 1) / BlockSize; blocks != want {
		return nil, 0, fmt.Errorf("postings: %d postings need %d blocks, header says %d", n, want, blocks)
	}
	lens := make([]int, blocks)
	total := 0
	for i := range lens {
		v, err := uv()
		if err != nil {
			return nil, 0, err
		}
		lens[i] = int(v)
		total += int(v)
	}
	if read+total > len(buf) {
		return nil, 0, fmt.Errorf("postings: truncated list payload (need %d bytes, have %d)", total, len(buf)-read)
	}
	l := &List{
		n:    int(n),
		data: buf[read : read+total],
	}
	off := 0
	for _, bl := range lens {
		if err := l.indexBlock(off); err != nil {
			return nil, 0, err
		}
		off += bl
	}
	l.skipStart = append(l.skipStart, len(l.skipComps))
	return l, read + total, nil
}

// indexBlock records block metadata by decoding the first posting's
// Dewey code at the given payload offset.
func (l *List) indexBlock(off int) error {
	l.offs = append(l.offs, off)
	data := l.data[off:]
	read := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(data[read:])
		if n <= 0 {
			return 0, false
		}
		read += n
		return v, true
	}
	shared, ok1 := uv()
	suffix, ok2 := uv()
	if !ok1 || !ok2 || shared != 0 {
		return fmt.Errorf("postings: corrupt block at offset %d", off)
	}
	l.skipStart = append(l.skipStart, len(l.skipComps))
	l.firsts = append(l.firsts, uint8(suffix))
	for i := 0; i < int(suffix); i++ {
		c, ok := uv()
		if !ok {
			return fmt.Errorf("postings: corrupt block dewey at offset %d", off)
		}
		l.skipComps = append(l.skipComps, uint32(c))
	}
	return nil
}
