package postings

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xclean/internal/xmltree"
)

// randomList builds a sorted, document-ordered posting list of n
// entries with random tree positions.
func randomList(rng *rand.Rand, n int) []Posting {
	if n == 0 {
		return nil
	}
	type nodeGen struct{ d xmltree.Dewey }
	nodes := []nodeGen{{xmltree.Dewey{1}}}
	for len(nodes) < n {
		p := nodes[rng.Intn(len(nodes))]
		if len(p.d) >= 8 {
			continue
		}
		nodes = append(nodes, nodeGen{p.d.Child(uint32(1 + rng.Intn(5)))})
	}
	seen := map[string]bool{}
	var out []Posting
	for _, nd := range nodes {
		if seen[nd.d.Key()] {
			continue
		}
		seen[nd.d.Key()] = true
		out = append(out, Posting{
			Dewey:   nd.d,
			Path:    xmltree.PathID(rng.Intn(100)),
			TF:      int32(1 + rng.Intn(9)),
			NodeLen: int32(1 + rng.Intn(50)),
		})
	}
	sortPostings(out)
	return out
}

func sortPostings(ps []Posting) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Dewey.Compare(ps[j-1].Dewey) < 0; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func clonePostings(ps []Posting) []Posting {
	out := make([]Posting, len(ps))
	for i, p := range ps {
		out[i] = p
		out[i].Dewey = p.Dewey.Clone()
	}
	return out
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 127, 128, 129, 400, 1000} {
		ps := randomList(rng, n)
		l := Encode(ps)
		if l.Len() != len(ps) {
			t.Fatalf("n=%d: Len=%d want %d", n, l.Len(), len(ps))
		}
		got := l.Decode()
		if !reflect.DeepEqual(got, ps) {
			if len(got) != 0 || len(ps) != 0 {
				t.Fatalf("n=%d: roundtrip mismatch", n)
			}
		}
	}
}

func TestRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, size uint8) bool {
		_ = seed
		ps := randomList(rng, int(size))
		got := Encode(ps).Decode()
		if len(ps) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 128, 300} {
		ps := randomList(rng, n)
		buf := Encode(ps).AppendTo(nil)
		// Append trailing garbage: DecodeList must report exact usage.
		buf = append(buf, 0xde, 0xad)
		l, used, err := DecodeList(buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if used != len(buf)-2 {
			t.Fatalf("n=%d: used %d want %d", n, used, len(buf)-2)
		}
		got := l.Decode()
		if len(ps) == 0 {
			if len(got) != 0 {
				t.Fatalf("n=%d: decoded %d postings from empty", n, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, ps) {
			t.Fatalf("n=%d: serialize roundtrip mismatch", n)
		}
	}
}

func TestDecodeListCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	good := Encode(randomList(rng, 200)).AppendTo(nil)
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"bad-count": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x01},
	}
	for name, buf := range cases {
		if _, _, err := DecodeList(buf); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestIteratorSkipTo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomList(rng, 700)
	l := Encode(ps)
	// Differential: SkipTo must land exactly where a linear scan lands.
	for trial := 0; trial < 300; trial++ {
		target := ps[rng.Intn(len(ps))].Dewey
		if rng.Intn(2) == 0 {
			// Also try codes not in the list.
			target = target.Child(uint32(rng.Intn(3)))
		}
		it := l.Iter()
		// Optionally advance a random amount first (SkipTo never goes
		// backward).
		start := rng.Intn(len(ps))
		for i := 0; i < start; i++ {
			it.Advance()
		}
		got, ok := it.SkipTo(target)
		var want *Posting
		for i := start; i < len(ps); i++ {
			if ps[i].Dewey.Compare(target) >= 0 {
				want = &ps[i]
				break
			}
		}
		if want == nil {
			if ok {
				t.Fatalf("trial %d: SkipTo(%s) returned %v, want exhausted", trial, target, got.Dewey)
			}
			continue
		}
		if !ok || got.Dewey.Compare(want.Dewey) != 0 || got.TF != want.TF {
			t.Fatalf("trial %d: SkipTo(%s) = %v/%v, want %v", trial, target, got.Dewey, ok, want.Dewey)
		}
	}
}

func TestIteratorSkipToMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := randomList(rng, 500)
	l := Encode(ps)
	it := l.Iter()
	// SkipTo with an earlier target must not move the iterator.
	for i := 0; i < 100; i++ {
		it.Advance()
	}
	cur, _ := it.Head()
	curCopy := cur.Dewey.Clone()
	got, ok := it.SkipTo(xmltree.Dewey{1})
	if !ok || got.Dewey.Compare(curCopy) != 0 {
		t.Fatalf("SkipTo moved backward: %v -> %v", curCopy, got.Dewey)
	}
}

func TestIteratorHeadAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := randomList(rng, 10)
	it := Encode(ps).Iter()
	p1, _ := it.Head()
	saved := p1.Dewey.Clone()
	it.Advance()
	// The documented contract: Head's Dewey aliases an internal buffer.
	// Cloned copies must stay valid.
	if saved.Compare(ps[0].Dewey) != 0 {
		t.Fatalf("cloned head changed: %v vs %v", saved, ps[0].Dewey)
	}
}

func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := randomList(rng, 2000)
	raw := 0
	for _, p := range ps {
		raw += 4*len(p.Dewey) + 12
	}
	l := Encode(ps)
	if l.SizeBytes() >= raw {
		t.Errorf("compressed %d ≥ raw %d bytes", l.SizeBytes(), raw)
	}
	t.Logf("raw=%dB compressed=%dB ratio=%.2f", raw, l.SizeBytes(),
		float64(raw)/float64(l.SizeBytes()))
}

func TestEmptyIterator(t *testing.T) {
	it := Encode(nil).Iter()
	if _, ok := it.Head(); ok {
		t.Error("empty list has a head")
	}
	if _, ok := it.SkipTo(xmltree.Dewey{1}); ok {
		t.Error("empty list SkipTo succeeded")
	}
	it.Advance() // must not panic
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ps := randomList(rng, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(ps)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	l := Encode(randomList(rng, 5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Decode()
	}
}

func BenchmarkSkipTo(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	ps := randomList(rng, 5000)
	l := Encode(ps)
	targets := make([]xmltree.Dewey, 64)
	for i := range targets {
		targets[i] = ps[rng.Intn(len(ps))].Dewey
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := l.Iter()
		for _, t := range targets {
			it.SkipTo(t)
		}
	}
}
