package postings

import (
	"math/rand"
	"testing"
)

// FuzzDecodeList: arbitrary bytes never panic the decoder, and
// whatever it accepts must decode without panicking too.
func FuzzDecodeList(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 130, 400} {
		f.Add(Encode(randomList(rng, n)).AppendTo(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, used, err := DecodeList(data)
		if err != nil {
			return
		}
		if used > len(data) {
			t.Fatalf("used %d > input %d", used, len(data))
		}
		// Decoding must not panic; it may legitimately produce any
		// postings (the wire format carries no checksum).
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on accepted input: %v", r)
			}
		}()
		l.Decode()
		it := l.Iter()
		for i := 0; i < 10; i++ {
			if _, ok := it.Head(); !ok {
				break
			}
			it.Advance()
		}
	})
}

// FuzzListOverPayload feeds arbitrary payload/metadata pairs to the
// snapshot split-list decoder. Structurally invalid metadata must
// error — truncation, flipped bytes, oversized varints — and input
// that passes the structural checks must then survive full iteration
// and decoding (the iterator's fail-stop contract): never a panic,
// never an allocation sized by an unvalidated count.
func FuzzListOverPayload(f *testing.F) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{0, 1, 130, 400} {
		l := Encode(randomList(rng, n))
		f.Add(l.Payload(), l.AppendMeta(nil))
	}
	seed := Encode(randomList(rng, 300))
	payload, meta := seed.Payload(), seed.AppendMeta(nil)
	f.Add(payload, []byte{})
	f.Add(payload[:len(payload)/2], meta)
	f.Add([]byte{}, meta)
	mut := append([]byte(nil), meta...)
	mut[1] ^= 0xff
	f.Add(payload, mut)
	f.Add(payload, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload, meta []byte) {
		l, err := ListOverPayload(payload, meta)
		if err != nil {
			return
		}
		n := 0
		for it := l.Iter(); ; it.Advance() {
			if _, ok := it.Head(); !ok {
				break
			}
			if n++; n > l.Len() {
				t.Fatalf("iterator yielded more than Len %d", l.Len())
			}
		}
		if ps := l.Decode(); len(ps) > l.Len() {
			t.Fatalf("Decode yielded %d > Len %d", len(ps), l.Len())
		}
	})
}
