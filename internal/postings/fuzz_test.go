package postings

import (
	"math/rand"
	"testing"
)

// FuzzDecodeList: arbitrary bytes never panic the decoder, and
// whatever it accepts must decode without panicking too.
func FuzzDecodeList(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 130, 400} {
		f.Add(Encode(randomList(rng, n)).AppendTo(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, used, err := DecodeList(data)
		if err != nil {
			return
		}
		if used > len(data) {
			t.Fatalf("used %d > input %d", used, len(data))
		}
		// Decoding must not panic; it may legitimately produce any
		// postings (the wire format carries no checksum).
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on accepted input: %v", r)
			}
		}()
		l.Decode()
		it := l.Iter()
		for i := 0; i < 10; i++ {
			if _, ok := it.Head(); !ok {
				break
			}
			it.Advance()
		}
	})
}
