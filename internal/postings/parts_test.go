package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestListOverPayloadRoundTrip: splitting a list into (payload, meta)
// and rebuilding it yields identical postings and skip behaviour.
func TestListOverPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for _, n := range []int{0, 1, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		orig := Encode(randomList(rng, n))
		re, err := ListOverPayload(orig.Payload(), orig.AppendMeta(nil))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if re.Len() != orig.Len() {
			t.Fatalf("n=%d: Len %d vs %d", n, re.Len(), orig.Len())
		}
		if !reflect.DeepEqual(re.Decode(), orig.Decode()) {
			t.Fatalf("n=%d: postings diverge", n)
		}
		// Skip probes land identically.
		want := orig.Decode()
		for step := 1; step < len(want); step += len(want)/7 + 1 {
			io, ir := orig.Iter(), re.Iter()
			io.SkipTo(want[step].Dewey)
			ir.SkipTo(want[step].Dewey)
			ho, oko := io.Head()
			hr, okr := ir.Head()
			if oko != okr || (oko && !reflect.DeepEqual(ho, hr)) {
				t.Fatalf("n=%d step=%d: skip diverges", n, step)
			}
		}
	}
}

// TestListOverPayloadRejects pins a few structural corruption classes
// with exact errors (the fuzz target covers the long tail).
func TestListOverPayloadRejects(t *testing.T) {
	orig := Encode(randomList(rand.New(rand.NewSource(78)), 300))
	payload, meta := orig.Payload(), orig.AppendMeta(nil)
	cases := map[string]struct{ p, m []byte }{
		"empty meta":        {payload, nil},
		"truncated meta":    {payload, meta[:len(meta)/2]},
		"truncated payload": {payload[:len(payload)-1], meta},
		"extended payload":  {append(append([]byte(nil), payload...), 0), meta},
		"trailing meta":     {payload, append(append([]byte(nil), meta...), 7)},
		"phantom postings":  {nil, []byte{200, 1, 2}}, // n=200, blocks=2, no payload
	}
	for name, c := range cases {
		if _, err := ListOverPayload(c.p, c.m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
