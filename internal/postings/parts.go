package postings

import (
	"encoding/binary"
	"fmt"
)

// On-disk split representation (internal/snapfile): a list's block
// payloads and its block/skip metadata are stored as two separate
// byte ranges, so a reader can rebuild the skip table by decoding the
// small metadata blob alone — O(blocks), never touching the payload
// pages — and serve SkipTo probes straight off an mmap'd payload.
//
// Metadata layout (all uvarints):
//
//	n                    postings
//	blocks               block count
//	per block:
//	  payloadLen         block payload bytes
//	  firstLen           components of the block's first Dewey code
//	  firstLen × comp    the code itself
//
// This duplicates what DecodeList reconstructs by decoding the first
// posting of every block, trading a few bytes per block for not
// faulting in any payload page at open time.

// Payload returns the concatenated block payloads. The slice aliases
// internal storage and must not be mutated.
func (l *List) Payload() []byte { return l.data }

// AppendMeta appends the list's block/skip metadata to buf.
func (l *List) AppendMeta(buf []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(l.n))
	put(uint64(l.blocks()))
	for i := range l.offs {
		end := len(l.data)
		if i+1 < len(l.offs) {
			end = l.offs[i+1]
		}
		put(uint64(end - l.offs[i]))
		first := l.blockFirst(i)
		put(uint64(len(first)))
		for _, c := range first {
			put(uint64(c))
		}
	}
	return buf
}

// ListOverPayload reconstructs a list over an existing concatenated
// block payload using metadata produced by AppendMeta. The payload is
// aliased, not copied, and — unlike DecodeList — never read: the skip
// table comes entirely from meta, so reconstruction is O(blocks).
//
// Both inputs may be untrusted bytes (a corrupt snapshot): every
// structural inconsistency returns an error, and no allocation is
// sized from an unvalidated header count, so corrupt input can never
// cause a panic or an outsized allocation. Payload corruption that
// metadata cannot reveal (flipped bytes inside a block) surfaces later
// as the iterator's fail-stop behaviour, never as a crash.
func ListOverPayload(payload, meta []byte) (*List, error) {
	read := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(meta[read:])
		if n <= 0 {
			return 0, fmt.Errorf("postings: truncated list metadata")
		}
		read += n
		return v, nil
	}
	n, err := uv()
	if err != nil {
		return nil, err
	}
	blocks, err := uv()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if blocks != 0 || len(payload) != 0 {
			return nil, fmt.Errorf("postings: empty list with %d blocks, %d payload bytes", blocks, len(payload))
		}
		return &List{}, nil
	}
	// Every posting costs at least 5 payload bytes (two header varints,
	// one path, one tf, one node length), so a count beyond the payload
	// size is structurally impossible — and would otherwise let corrupt
	// metadata size Decode's preallocation.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("postings: %d postings cannot fit %d payload bytes", n, len(payload))
	}
	if want := (n + BlockSize - 1) / BlockSize; blocks != want {
		return nil, fmt.Errorf("postings: %d postings need %d blocks, metadata says %d", n, want, blocks)
	}
	l := &List{n: int(n), data: payload}
	off := 0
	for b := uint64(0); b < blocks; b++ {
		plen, err := uv()
		if err != nil {
			return nil, err
		}
		if plen > uint64(len(payload)-off) {
			return nil, fmt.Errorf("postings: block %d overruns payload", b)
		}
		firstLen, err := uv()
		if err != nil {
			return nil, err
		}
		if firstLen < 1 || firstLen > 255 {
			return nil, fmt.Errorf("postings: block %d has impossible first-code length %d", b, firstLen)
		}
		l.offs = append(l.offs, off)
		l.firsts = append(l.firsts, uint8(firstLen))
		l.skipStart = append(l.skipStart, len(l.skipComps))
		for i := uint64(0); i < firstLen; i++ {
			c, err := uv()
			if err != nil {
				return nil, err
			}
			if c > 1<<32-1 {
				return nil, fmt.Errorf("postings: block %d first-code component overflows uint32", b)
			}
			l.skipComps = append(l.skipComps, uint32(c))
		}
		off += int(plen)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("postings: block metadata covers %d of %d payload bytes", off, len(payload))
	}
	if read != len(meta) {
		return nil, fmt.Errorf("postings: %d trailing metadata bytes", len(meta)-read)
	}
	l.skipStart = append(l.skipStart, len(l.skipComps))
	return l, nil
}
