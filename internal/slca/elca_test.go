package slca

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func postingsAt(t *testing.T, ss ...string) []invindex.Posting {
	t.Helper()
	out := make([]invindex.Posting, len(ss))
	for i, s := range ss {
		d, err := xmltree.ParseDewey(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = invindex.Posting{Dewey: d, TF: 1}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dewey.Compare(out[b].Dewey) < 0 })
	return out
}

// TestElcaSupersetOfSlca: the canonical XRank scenario. With keyword A
// at {1.1.1, 1.2} and keyword B at {1.1.2, 1.3}, node 1.1 is the SLCA;
// node 1 is additionally an ELCA because the occurrences 1.2 and 1.3
// are not inside any containing descendant of 1.
func TestElcaSupersetOfSlca(t *testing.T) {
	occ := [][]invindex.Posting{
		postingsAt(t, "1.1.1", "1.2"),
		postingsAt(t, "1.1.2", "1.3"),
	}
	slcas := deweyStrings(slcaOfSets(occ))
	if want := []string{"1.1"}; !reflect.DeepEqual(slcas, want) {
		t.Fatalf("slca got %v want %v", slcas, want)
	}
	elcas := deweyStrings(elcaOfSets(occ, 1))
	if want := []string{"1", "1.1"}; !reflect.DeepEqual(elcas, want) {
		t.Fatalf("elca got %v want %v", elcas, want)
	}
}

// TestElcaExclusivity: when the extra occurrences all live inside the
// containing descendant, the ancestor is NOT an ELCA.
func TestElcaExclusivity(t *testing.T) {
	occ := [][]invindex.Posting{
		postingsAt(t, "1.1.1", "1.1.3"),
		postingsAt(t, "1.1.2"),
	}
	// 1.1 contains everything; 1 has no exclusive witness for keyword 2.
	elcas := deweyStrings(elcaOfSets(occ, 1))
	if want := []string{"1.1"}; !reflect.DeepEqual(elcas, want) {
		t.Fatalf("elca got %v want %v", elcas, want)
	}
}

// TestElcaMinDepth: entities shallower than minDepth are excluded even
// when exclusivity holds.
func TestElcaMinDepth(t *testing.T) {
	occ := [][]invindex.Posting{
		postingsAt(t, "1.1.1", "1.2"),
		postingsAt(t, "1.1.2", "1.3"),
	}
	elcas := deweyStrings(elcaOfSets(occ, 2))
	if want := []string{"1.1"}; !reflect.DeepEqual(elcas, want) {
		t.Fatalf("elca got %v want %v", elcas, want)
	}
}

func TestElcaEmpty(t *testing.T) {
	occ := [][]invindex.Posting{
		postingsAt(t, "1.1.1"),
		nil,
	}
	if got := elcaOfSets(occ, 1); got != nil {
		t.Fatalf("elca over empty set: %v", got)
	}
}

// bruteELCA checks the XRank definition directly: v is an ELCA iff for
// every keyword some occurrence under v lies outside every containing
// proper descendant of v.
func bruteELCA(tr *xmltree.Tree, keywordOccs [][]xmltree.Dewey, minDepth int) []string {
	contains := func(v xmltree.Dewey) bool {
		for _, occs := range keywordOccs {
			found := false
			for _, d := range occs {
				if v.AncestorOrSelf(d) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	var containing []xmltree.Dewey
	tr.Walk(func(n *xmltree.Node) bool {
		if contains(n.Dewey) {
			containing = append(containing, n.Dewey)
		}
		return true
	})
	var out []string
	for _, v := range containing {
		if v.Depth() < minDepth {
			continue
		}
		ok := true
		for _, occs := range keywordOccs {
			witness := false
			for _, x := range occs {
				if !v.AncestorOrSelf(x) {
					continue
				}
				inside := false
				for _, c := range containing {
					if v.AncestorOf(c) && c.AncestorOrSelf(x) {
						inside = true
						break
					}
				}
				if !inside {
					witness = true
					break
				}
			}
			if !witness {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v.String())
		}
	}
	sort.Strings(out)
	return out
}

func TestElcaOfSetsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 500; trial++ {
		tr := xmltree.NewTree("r")
		nodes := []*xmltree.Node{tr.Root}
		for i := 0; i < 19; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			if parent.Dewey.Depth() >= 5 {
				continue
			}
			nodes = append(nodes, tr.AddChild(parent, "n", ""))
		}
		l := 2 + rng.Intn(2)
		occ := make([][]invindex.Posting, l)
		kocc := make([][]xmltree.Dewey, l)
		empty := false
		for i := 0; i < l; i++ {
			n := 1 + rng.Intn(4)
			seen := map[string]bool{}
			var ds []xmltree.Dewey
			for j := 0; j < n; j++ {
				d := nodes[rng.Intn(len(nodes))].Dewey
				if !seen[d.Key()] {
					seen[d.Key()] = true
					ds = append(ds, d)
				}
			}
			sort.Slice(ds, func(a, b int) bool { return ds[a].Compare(ds[b]) < 0 })
			kocc[i] = ds
			for _, d := range ds {
				occ[i] = append(occ[i], invindex.Posting{Dewey: d, TF: 1})
			}
			if len(ds) == 0 {
				empty = true
			}
		}
		if empty {
			continue
		}
		minDepth := 1 + rng.Intn(2)
		got := deweyStrings(elcaOfSets(occ, minDepth))
		sort.Strings(got)
		want := bruteELCA(tr, kocc, minDepth)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (d=%d): got %v want %v (occ=%v)", trial, minDepth, got, want, kocc)
		}
	}
}

// TestElcaContainsSlcaProperty: every SLCA must appear in the ELCA set
// (at minDepth 1) — ELCA is a superset semantics.
func TestElcaContainsSlcaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		tr := xmltree.NewTree("r")
		nodes := []*xmltree.Node{tr.Root}
		for i := 0; i < 24; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			if parent.Dewey.Depth() >= 6 {
				continue
			}
			nodes = append(nodes, tr.AddChild(parent, "n", ""))
		}
		l := 2 + rng.Intn(3)
		occ := make([][]invindex.Posting, l)
		for i := 0; i < l; i++ {
			n := 1 + rng.Intn(5)
			seen := map[string]bool{}
			var ds []xmltree.Dewey
			for j := 0; j < n; j++ {
				d := nodes[rng.Intn(len(nodes))].Dewey
				if !seen[d.Key()] {
					seen[d.Key()] = true
					ds = append(ds, d)
				}
			}
			sort.Slice(ds, func(a, b int) bool { return ds[a].Compare(ds[b]) < 0 })
			for _, d := range ds {
				occ[i] = append(occ[i], invindex.Posting{Dewey: d, TF: 1})
			}
		}
		skip := false
		for i := range occ {
			if len(occ[i]) == 0 {
				skip = true
			}
		}
		if skip {
			continue
		}
		slcas := deweyStrings(slcaOfSets(occ))
		elcas := map[string]bool{}
		for _, d := range elcaOfSets(occ, 1) {
			elcas[d.String()] = true
		}
		for _, s := range slcas {
			if !elcas[s] {
				t.Fatalf("trial %d: slca %s missing from elca set %v", trial, s, elcas)
			}
		}
	}
}

func TestELCAEngineSuggest(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewELCAEngine(ix, core.Config{})
	sugs := e.Suggest("rose fpga architecure")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "rose fpga architecture" {
		t.Errorf("top=%q", sugs[0].Query())
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty guarantee violated")
	}
}

// TestELCAEngineMoreEntities: on a tree where an article element has
// exclusive evidence beyond its child-level matches, the ELCA engine
// must report at least as many entities as the SLCA engine.
func TestELCAEngineMoreEntities(t *testing.T) {
	tr := xmltree.NewTree("dblp")
	art := tr.AddChild(tr.Root, "article", "")
	sec := tr.AddChild(art, "section", "")
	tr.AddChild(sec, "p", "fpga architecture")
	tr.AddChild(art, "title", "fpga survey")
	tr.AddChild(art, "note", "architecture notes")
	ix := invindex.Build(tr, tokenizer.Options{})

	s := NewEngine(ix, core.Config{}).Suggest("fpga architecture")
	e := NewELCAEngine(ix, core.Config{}).Suggest("fpga architecture")
	if len(s) == 0 || len(e) == 0 {
		t.Fatalf("missing suggestions: slca=%v elca=%v", s, e)
	}
	if e[0].Entities < s[0].Entities {
		t.Errorf("elca entities %d < slca entities %d", e[0].Entities, s[0].Entities)
	}
	// The <section> node (depth 3) is the SLCA; <article> additionally
	// qualifies as an ELCA through its title/note evidence.
	if e[0].Entities != s[0].Entities+1 {
		t.Errorf("expected exactly one extra ELCA entity: slca=%d elca=%d",
			s[0].Entities, e[0].Entities)
	}
}

func TestELCAEngineRootOnlyConnection(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewELCAEngine(ix, core.Config{})
	// rose and database meet only at the dblp root (depth 1 < d=2) —
	// must not be suggested.
	if got := e.Suggest("rose database"); got != nil {
		t.Errorf("root-only pair suggested: %v", got)
	}
}
