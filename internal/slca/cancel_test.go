package slca

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
)

// A pre-cancelled context stops the SLCA anchor scan at the first
// cancellation poll (iteration 0) and surfaces the context's error.
func TestSLCACancelledContext(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sugs, err := e.SuggestContext(ctx, "rose fpga architecure")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if sugs != nil {
		t.Errorf("cancelled call returned suggestions: %v", sugs)
	}
}

// With a live context the context-taking variant is the same
// computation as Suggest.
func TestSLCAContextMatchesPlain(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})
	want := e.Suggest("rose fpga architecure")
	got, err := e.SuggestContext(context.Background(), "rose fpga architecure")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SuggestContext diverges:\n got=%v\nwant=%v", got, want)
	}
}
