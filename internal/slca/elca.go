// ELCA (Exclusive Lowest Common Ancestor) semantics, the XRank-style
// entity decomposition. The paper's framework (Section IV-B2) accepts
// any decomposition of the tree into entities; Section VI-B works out
// the SLCA instance, and this file extends the same engine with the
// ELCA instance, the other widely used LCA-family result semantics.
//
// A node v is an ELCA of occurrence sets S_1..S_l if v's subtree
// contains at least one occurrence of every keyword even after
// excluding the subtrees of v's proper descendants that themselves
// contain all keywords. Every SLCA is an ELCA, so ELCA entities are a
// superset: they additionally keep ancestors that have independent
// ("exclusive") keyword evidence of their own.
package slca

import (
	"xclean/internal/core"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// elcaOfSets computes the ELCA set of the per-keyword occurrence
// lists, restricted to nodes at depth ≥ minDepth (the paper's minimal
// depth threshold, which rules out entities connected only through
// near-root nodes). Occurrence lists must be in document order.
//
// The algorithm runs in three steps, O(total occurrences · depth):
//
//  1. SLCAs via slcaOfSets; the set of all-keyword-containing nodes is
//     exactly the ancestors-or-self of the SLCAs (containment is
//     upward closed, and every containing node has a minimal
//     containing node — an SLCA — below or equal to it).
//  2. For every occurrence, find its lowest containing ancestor.
//  3. v is an ELCA iff every keyword has a witness occurrence whose
//     lowest containing ancestor is v itself: such an occurrence lies
//     under v but under none of v's containing proper descendants.
func elcaOfSets(occ [][]invindex.Posting, minDepth int) []xmltree.Dewey {
	slcas := slcaOfSets(occ)
	if len(slcas) == 0 {
		return nil
	}

	// Step 1: containing nodes = ancestors (depth ≥ minDepth) of SLCAs.
	containing := make(map[string]xmltree.Dewey)
	for _, s := range slcas {
		for depth := s.Depth(); depth >= minDepth; depth-- {
			trunc := s.Truncate(depth)
			key := trunc.Key()
			if _, ok := containing[key]; ok {
				// Ancestors of an already-seen node are present too.
				break
			}
			containing[key] = trunc.Clone()
		}
	}

	// Steps 2+3: per-keyword witnesses at each containing node.
	witness := make(map[string][]bool, len(containing))
	for i, list := range occ {
		for _, p := range list {
			key, ok := lowestContaining(p.Dewey, containing, minDepth)
			if !ok {
				continue
			}
			w := witness[key]
			if w == nil {
				w = make([]bool, len(occ))
				witness[key] = w
			}
			w[i] = true
		}
	}

	var out []xmltree.Dewey
	for key, w := range witness {
		all := true
		for _, seen := range w {
			if !seen {
				all = false
				break
			}
		}
		if all {
			out = append(out, containing[key])
		}
	}
	sortDeweys(out)
	return out
}

// lowestContaining returns the Key of the deepest containing node that
// is an ancestor-or-self of d, or ok=false when d has none at depth ≥
// minDepth.
func lowestContaining(d xmltree.Dewey, containing map[string]xmltree.Dewey, minDepth int) (string, bool) {
	for depth := d.Depth(); depth >= minDepth; depth-- {
		key := d.Truncate(depth).Key()
		if _, ok := containing[key]; ok {
			return key, true
		}
	}
	return "", false
}

func sortDeweys(ds []xmltree.Dewey) {
	// Insertion sort: ELCA sets per subtree are small, and the helper
	// keeps package sort out of this file's hot path.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Compare(ds[j-1]) < 0; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// NewELCAEngine builds an engine identical to NewEngine except that
// candidate entities are ELCA nodes instead of SLCA nodes.
func NewELCAEngine(ix *invindex.Index, cfg core.Config) *Engine {
	e := NewEngine(ix, cfg)
	e.elca = true
	return e
}

// NewELCAEngineWithFastSS is NewELCAEngine reusing a prebuilt variant
// index.
func NewELCAEngineWithFastSS(ix *invindex.Index, fss *fastss.Index, cfg core.Config) *Engine {
	e := NewEngineWithFastSS(ix, fss, cfg)
	e.elca = true
	return e
}
