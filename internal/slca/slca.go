// Package slca implements the SLCA-semantics variant of the XClean
// framework (Section VI-B of the paper): each candidate query's
// entities are its Smallest Lowest Common Ancestor nodes, and Eq. (8)
// is evaluated over that per-candidate entity set.
//
// The engine follows the same one-pass structure as Algorithm 1 —
// merged variant lists, anchor nodes, subtree grouping at the minimal
// depth d — and computes SLCAs inside each group with the classic
// pairwise slca merge of Xu & Papakonstantinou (the "multi-way SLCA"
// algorithm the paper adapts), so every inverted list is still read
// only once.
package slca

import (
	"context"
	"sort"
	"strings"
	"time"

	"xclean/internal/core"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/lm"
	"xclean/internal/obs"
	"xclean/internal/xmltree"
)

// Engine answers top-k cleaning requests under the SLCA semantics, or
// under the ELCA semantics when built by NewELCAEngine.
type Engine struct {
	ix    *invindex.Index
	fss   *fastss.Index
	model *lm.Model
	em    core.ErrorModel
	cfg   core.Config
	// elca switches the entity decomposition from SLCA to ELCA nodes.
	elca bool
	// sink, when non-nil, receives per-call latency, stage, and work
	// aggregates. Carried across Refresh.
	sink *obs.Sink
}

// SetSink attaches (or with nil, detaches) the observability sink.
// Must not race with in-flight queries; set it before serving.
func (e *Engine) SetSink(s *obs.Sink) { e.sink = s }

// Sink returns the attached sink, or nil.
func (e *Engine) Sink() *obs.Sink { return e.sink }

// NewEngine builds an SLCA engine over an index with the same Config
// knobs as the core engine. The ResultType of returned suggestions is
// always InvalidPath: SLCA entities have no single type.
func NewEngine(ix *invindex.Index, cfg core.Config) *Engine {
	fss := fastss.Build(ix.VocabList(), fastss.Config{
		MaxErrors:    maxErrors(cfg),
		PartitionLen: partitionLen(cfg),
	})
	return NewEngineWithFastSS(ix, fss, cfg)
}

// NewEngineWithFastSS builds an SLCA engine reusing a prebuilt variant
// index.
func NewEngineWithFastSS(ix *invindex.Index, fss *fastss.Index, cfg core.Config) *Engine {
	return &Engine{
		ix:    ix,
		fss:   fss,
		model: lm.New(ix.Vocab, cfg.Mu),
		em:    core.ErrorModel{Beta: cfg.Beta},
		cfg:   cfg,
	}
}

// Refresh rebuilds derived structures after an incremental index
// mutation, adding the given words to the variant index (known words
// are ignored). Queries must go to the returned engine. Like the
// result-type engine's Refresh, it is copy-on-write: the shared
// variant index is cloned before being extended, so sibling engines
// may keep serving queries concurrently.
func (e *Engine) Refresh(newWords []string) *Engine {
	fss := e.fss
	if len(newWords) > 0 {
		fss = fss.Clone()
		for _, w := range newWords {
			fss.Add(w)
		}
	}
	ne := NewEngineWithFastSS(e.ix, fss, e.cfg)
	ne.elca = e.elca
	ne.sink = e.sink
	return ne
}

func maxErrors(cfg core.Config) int {
	if cfg.Epsilon <= 0 {
		return 1
	}
	return cfg.Epsilon
}

func partitionLen(cfg core.Config) int {
	if cfg.PartitionLen <= 0 {
		return 12
	}
	return cfg.PartitionLen
}

func (e *Engine) minDepth() int {
	if e.cfg.MinDepth <= 0 {
		return 2
	}
	return e.cfg.MinDepth
}

func (e *Engine) k() int {
	if e.cfg.K <= 0 {
		return 10
	}
	return e.cfg.K
}

// candAgg accumulates one candidate's entity sum across subtrees.
type candAgg struct {
	words    []string
	weight   float64
	sum      float64
	norm     float64 // Σ prior weights over this candidate's entities
	entities int
	dist     int
	witness  xmltree.Dewey // first entity root
}

// Suggest returns the top-k alternative queries under the SLCA
// semantics.
func (e *Engine) Suggest(query string) []core.Suggestion {
	out, _, _ := e.suggestObserved(context.Background(), query, false)
	return out
}

// SuggestContext is Suggest under a context: the anchor scan polls ctx
// once per cancellation interval and a cancelled or expired ctx makes
// the call return ctx.Err() with no suggestions. A context that can
// never be cancelled costs nothing over Suggest.
func (e *Engine) SuggestContext(ctx context.Context, query string) ([]core.Suggestion, error) {
	out, _, err := e.suggestObserved(ctx, query, false)
	return out, err
}

// SuggestExplained is Suggest plus the per-query trace. The SLCA scan
// is single-threaded, so the trace carries one worker entry; result
// types are empty (SLCA entities have no single node type), and the
// type-cache counters stay zero (this path infers no types).
func (e *Engine) SuggestExplained(query string) ([]core.Suggestion, *core.Explain) {
	out, ex, _ := e.suggestObserved(context.Background(), query, true)
	return out, ex
}

// SuggestExplainedContext is SuggestExplained under a context (see
// SuggestContext). A cancelled call returns no trace.
func (e *Engine) SuggestExplainedContext(ctx context.Context, query string) ([]core.Suggestion, *core.Explain, error) {
	return e.suggestObserved(ctx, query, true)
}

// suggestObserved runs the SLCA scan, timing each pipeline stage when
// a sink is attached or a trace was requested (timed == false costs
// nothing beyond the branch checks).
func (e *Engine) suggestObserved(ctx context.Context, query string, explain bool) ([]core.Suggestion, *core.Explain, error) {
	timed := e.sink != nil || explain
	var start, t0 time.Time
	var stages, worker obs.StageDurations
	var st core.Stats
	if timed {
		start = time.Now()
		t0 = start
	}
	finish := func(out []core.Suggestion, kws []core.Keyword, err error) ([]core.Suggestion, *core.Explain, error) {
		if err != nil {
			out = nil
		}
		if !timed {
			return out, nil, err
		}
		stages[obs.StageScan] += worker[obs.StageScan]
		stages[obs.StageEnumerate] += worker[obs.StageEnumerate]
		total := time.Since(start)
		if s := e.sink; s != nil {
			s.ObserveSuggest(total, &stages)
			s.PostingsRead.Add(int64(st.PostingsRead))
			s.Subtrees.Add(int64(st.Subtrees))
			s.CandidatesSeen.Add(int64(st.CandidatesSeen))
		}
		if !explain || err != nil {
			return out, nil, err
		}
		st.WorkerSubtrees = []int{st.Subtrees}
		ex := &core.Explain{
			Query:    query,
			TookNs:   total.Nanoseconds(),
			Spans:    obs.SpansOf(&stages, []obs.StageDurations{worker}),
			Keywords: make([]core.ExplainKeyword, len(kws)),
			Stats:    st,
		}
		for i, kw := range kws {
			ex.Keywords[i] = core.ExplainKeyword{Token: kw.Raw, Variants: len(kw.Variants)}
		}
		ex.Candidates = make([]core.ExplainCandidate, len(out))
		for i, s := range out {
			ex.Candidates[i] = core.ExplainCandidate{
				Words:        s.Words,
				Score:        s.Score,
				EditDistance: s.EditDistance,
				Entities:     s.Entities,
			}
		}
		return out, ex, nil
	}

	toks := e.cfg.Tokenizer.Tokenize(query)
	if timed {
		stages[obs.StageTokenize] += time.Since(t0)
		t0 = time.Now()
	}
	if len(toks) == 0 {
		return finish(nil, nil, nil)
	}
	kws := make([]core.Keyword, len(toks))
	for i, tok := range toks {
		kws[i] = e.em.Keyword(tok, e.fss.Search(tok))
		if len(kws[i].Variants) == 0 {
			if timed {
				stages[obs.StageVariants] += time.Since(t0)
			}
			return finish(nil, kws[:i+1], nil)
		}
	}
	if timed {
		stages[obs.StageVariants] += time.Since(t0)
		t0 = time.Now()
	}

	d := e.minDepth()
	lists := make([]*invindex.MergedList, len(kws))
	for i, kw := range kws {
		tokens := make([]string, len(kw.Variants))
		for j, v := range kw.Variants {
			tokens[j] = v.Word
		}
		lists[i] = e.ix.MergedListFor(tokens)
		lists[i].SetLinearSkip(e.cfg.LinearSkip)
	}

	aggs := make(map[string]*candAgg)
	occ := make([]map[int][]invindex.Posting, len(kws))
	for i := range occ {
		occ[i] = make(map[int][]invindex.Posting)
	}

	// The SLCA scan is single-threaded, so it polls the context itself
	// at the same granularity as the core engine's scan shards.
	done := ctx.Done()
	sinceCheck := 0
	anchor, ok := maxHead(lists)
	for ok {
		if done != nil {
			if sinceCheck == 0 {
				select {
				case <-done:
					if timed {
						worker[obs.StageScan] += time.Since(t0) - worker[obs.StageEnumerate]
					}
					return finish(nil, kws, ctx.Err())
				default:
				}
				sinceCheck = core.CancelCheckEvery
			}
			sinceCheck--
		}
		g := anchor.Truncate(d)
		for i := range occ {
			for k := range occ[i] {
				delete(occ[i], k)
			}
		}
		complete := true
		for i, l := range lists {
			found := false
			l.CollectSubtree(g, func(entry invindex.Entry) {
				occ[i][entry.TokenIdx] = append(occ[i][entry.TokenIdx], entry.Posting)
				st.PostingsRead++
				found = true
			})
			if !found {
				complete = false
			}
		}
		if complete {
			st.Subtrees++
			var te time.Time
			if timed {
				te = time.Now()
			}
			e.enumerate(kws, occ, aggs, &st)
			if timed {
				worker[obs.StageEnumerate] += time.Since(te)
			}
		}
		anchor, ok = maxHead(lists)
	}
	if timed {
		worker[obs.StageScan] += time.Since(t0) - worker[obs.StageEnumerate]
		t0 = time.Now()
	}

	var out []core.Suggestion
	for _, a := range aggs {
		if a.entities == 0 || a.norm == 0 {
			continue
		}
		out = append(out, core.Suggestion{
			Words:        a.words,
			Score:        a.weight * a.sum / a.norm,
			ResultType:   xmltree.InvalidPath,
			Entities:     a.entities,
			EditDistance: a.dist,
			Witness:      a.witness,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query() < out[j].Query()
	})
	if k := e.k(); len(out) > k {
		out = out[:k]
	}
	if timed {
		stages[obs.StageRank] += time.Since(t0)
	}
	return finish(out, kws, nil)
}

func maxHead(lists []*invindex.MergedList) (xmltree.Dewey, bool) {
	var max xmltree.Dewey
	for _, l := range lists {
		entry, ok := l.CurPos()
		if !ok {
			return nil, false
		}
		if max == nil || entry.Dewey.Compare(max) > 0 {
			max = entry.Dewey
		}
	}
	return max, max != nil
}

// enumerate walks the candidate space present in the current subtree
// and scores each candidate's SLCA entities.
func (e *Engine) enumerate(kws []core.Keyword, occ []map[int][]invindex.Posting, aggs map[string]*candAgg, st *core.Stats) {
	present := make([][]int, len(kws))
	for i := range kws {
		if len(occ[i]) == 0 {
			return
		}
		for idx := range occ[i] {
			present[i] = append(present[i], idx)
		}
		sort.Ints(present[i])
	}
	choice := make([]int, len(kws))
	var rec func(i int)
	rec = func(i int) {
		if i == len(kws) {
			st.CandidatesSeen++
			e.scoreCandidate(kws, choice, occ, aggs)
			return
		}
		for _, idx := range present[i] {
			choice[i] = idx
			rec(i + 1)
		}
	}
	rec(0)
}

func (e *Engine) scoreCandidate(kws []core.Keyword, choice []int, occ []map[int][]invindex.Posting, aggs map[string]*candAgg) {
	words := make([]string, len(kws))
	occSets := make([][]invindex.Posting, len(kws))
	for i, idx := range choice {
		words[i] = kws[i].Variants[idx].Word
		occSets[i] = occ[i][idx]
		if len(occSets[i]) == 0 {
			return
		}
	}

	d := e.minDepth()
	var entities []xmltree.Dewey
	if e.elca {
		entities = elcaOfSets(occSets, d)
	} else {
		entities = slcaOfSets(occSets)
	}
	if len(entities) == 0 {
		return
	}

	key := strings.Join(words, "\x00")
	a := aggs[key]
	for _, root := range entities {
		if root.Depth() < d {
			continue
		}
		counts := make([]int32, len(kws))
		for i := range kws {
			for _, p := range occSets[i] {
				if root.AncestorOrSelf(p.Dewey) {
					counts[i] += p.TF
				}
			}
		}
		docLen := e.ix.SubtreeLen(root)
		pw := e.cfg.EntityWeight(root.Key(), docLen)
		prob := e.model.QueryProb(words, counts, docLen)
		if a == nil {
			a = &candAgg{words: append([]string(nil), words...)}
			a.weight = 1
			for i, idx := range choice {
				a.weight *= kws[i].Variants[idx].Weight
				a.dist += kws[i].Variants[idx].Dist
			}
			aggs[key] = a
		}
		a.sum += pw * prob
		a.norm += pw
		if a.entities == 0 {
			a.witness = root.Clone()
		}
		a.entities++
	}
}

// slcaOfSets computes the SLCA set of l Dewey sets by repeated
// pairwise merging: slca(S1,...,Sl) = slca(slca(S1,...,S_{l-1}), Sl).
func slcaOfSets(occ [][]invindex.Posting) []xmltree.Dewey {
	cur := deweys(occ[0])
	cur = removeAncestors(cur)
	for i := 1; i < len(occ); i++ {
		cur = slcaPair(cur, deweys(occ[i]))
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func deweys(pl []invindex.Posting) []xmltree.Dewey {
	out := make([]xmltree.Dewey, len(pl))
	for i, p := range pl {
		out[i] = p.Dewey
	}
	return out
}

// slcaPair computes slca(A, B) for doc-ordered Dewey sets: for each
// a∈A, the deeper of lca(a, pred_B(a)) and lca(a, succ_B(a)), with
// ancestors removed.
func slcaPair(a, b []xmltree.Dewey) []xmltree.Dewey {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var res []xmltree.Dewey
	for _, x := range a {
		// succ: first element of b ≥ x.
		i := sort.Search(len(b), func(j int) bool { return b[j].Compare(x) >= 0 })
		var best xmltree.Dewey
		if i < len(b) {
			best = lca(x, b[i])
		}
		if i > 0 {
			if l := lca(x, b[i-1]); best == nil || l.Depth() > best.Depth() {
				best = l
			}
		}
		if best != nil && best.Depth() > 0 {
			res = append(res, best)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Compare(res[j]) < 0 })
	return removeAncestors(res)
}

// lca returns the longest common prefix of two Dewey codes.
func lca(a, b xmltree.Dewey) xmltree.Dewey {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// removeAncestors drops every element that is an ancestor of (or equal
// to) another element, leaving a doc-ordered antichain. Input must be
// sorted in document order.
func removeAncestors(in []xmltree.Dewey) []xmltree.Dewey {
	var out []xmltree.Dewey
	for _, d := range in {
		// Drop previous results that are ancestors of d; skip d if it
		// equals the previous result.
		for len(out) > 0 && out[len(out)-1].AncestorOf(d) {
			out = out[:len(out)-1]
		}
		if len(out) > 0 && out[len(out)-1].Compare(d) == 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}
