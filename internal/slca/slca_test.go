package slca

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func mkDeweys(t *testing.T, ss ...string) []xmltree.Dewey {
	t.Helper()
	out := make([]xmltree.Dewey, len(ss))
	for i, s := range ss {
		d, err := xmltree.ParseDewey(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func deweyStrings(ds []xmltree.Dewey) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"1.2.3", "1.2.4", "1.2"},
		{"1.2.3", "1.2.3.4", "1.2.3"},
		{"1.2", "1.3", "1"},
		{"1", "1", "1"},
	}
	for _, c := range cases {
		a, _ := xmltree.ParseDewey(c.a)
		b, _ := xmltree.ParseDewey(c.b)
		if got := lca(a, b).String(); got != c.want {
			t.Errorf("lca(%s,%s)=%s want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestRemoveAncestors(t *testing.T) {
	in := mkDeweys(t, "1", "1.2", "1.2.3", "1.3", "1.3", "1.4.1")
	got := deweyStrings(removeAncestors(in))
	want := []string{"1.2.3", "1.3", "1.4.1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	if removeAncestors(nil) != nil {
		t.Error("empty input should stay empty")
	}
}

func TestSlcaPair(t *testing.T) {
	a := mkDeweys(t, "1.1.1", "1.2.1")
	b := mkDeweys(t, "1.1.2", "1.3.1")
	got := deweyStrings(slcaPair(a, b))
	// lca(1.1.1, 1.1.2)=1.1 ; lca(1.2.1, {1.1.2 or 1.3.1})=1. 1 is an
	// ancestor of 1.1 so only 1.1 survives... but 1 appears after
	// removal? removeAncestors keeps the deepest: {1.1}.
	want := []string{"1.1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// brute-force SLCA over an explicit tree for differential testing.
func bruteSLCA(tr *xmltree.Tree, keywordOccs [][]xmltree.Dewey) []string {
	// Common ancestors: nodes whose subtree contains at least one
	// occurrence of every keyword.
	var cas []xmltree.Dewey
	tr.Walk(func(n *xmltree.Node) bool {
		all := true
		for _, occs := range keywordOccs {
			found := false
			for _, d := range occs {
				if n.Dewey.AncestorOrSelf(d) {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			cas = append(cas, n.Dewey)
		}
		return true
	})
	// Keep only CAs with no descendant CA.
	var out []string
	for _, c := range cas {
		minimal := true
		for _, d := range cas {
			if c.AncestorOf(d) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c.String())
		}
	}
	sort.Strings(out)
	return out
}

func TestSlcaOfSetsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		// Random tree of ~20 nodes, depth up to 5.
		tr := xmltree.NewTree("r")
		nodes := []*xmltree.Node{tr.Root}
		for i := 0; i < 19; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			if parent.Dewey.Depth() >= 5 {
				continue
			}
			nodes = append(nodes, tr.AddChild(parent, "n", ""))
		}
		// 2-3 keywords, each with occurrences at random nodes.
		l := 2 + rng.Intn(2)
		occ := make([][]invindex.Posting, l)
		kocc := make([][]xmltree.Dewey, l)
		okSets := true
		for i := 0; i < l; i++ {
			n := 1 + rng.Intn(4)
			seen := map[string]bool{}
			var ds []xmltree.Dewey
			for j := 0; j < n; j++ {
				d := nodes[rng.Intn(len(nodes))].Dewey
				if !seen[d.Key()] {
					seen[d.Key()] = true
					ds = append(ds, d)
				}
			}
			sort.Slice(ds, func(a, b int) bool { return ds[a].Compare(ds[b]) < 0 })
			kocc[i] = ds
			for _, d := range ds {
				occ[i] = append(occ[i], invindex.Posting{Dewey: d, TF: 1})
			}
			if len(ds) == 0 {
				okSets = false
			}
		}
		if !okSets {
			continue
		}
		got := deweyStrings(slcaOfSets(occ))
		sort.Strings(got)
		want := bruteSLCA(tr, kocc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %v want %v (occ=%v)", trial, got, want, kocc)
		}
	}
}

// slcaTree: a data-centric corpus to exercise end-to-end SLCA
// suggestion.
func slcaTree() *xmltree.Tree {
	t := xmltree.NewTree("dblp")
	add := func(author, title string) {
		art := t.AddChild(t.Root, "article", "")
		t.AddChild(art, "author", author)
		t.AddChild(art, "title", title)
	}
	add("rose", "fpga architecture synthesis")
	add("rose", "reconfigurable fpga design")
	add("smith", "database indexing methods")
	add("jones", "xml keyword search ranking")
	return t
}

func TestSLCAEngineSuggest(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})

	sugs := e.Suggest("rose fpga architecure")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "rose fpga architecture" {
		t.Errorf("top=%q", sugs[0].Query())
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty guarantee violated")
	}
	if sugs[0].ResultType != xmltree.InvalidPath {
		t.Error("SLCA suggestions should have no result type")
	}
}

func TestSLCAEngineCleanQuery(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})
	sugs := e.Suggest("database indexing")
	if len(sugs) == 0 || sugs[0].Query() != "database indexing" {
		t.Fatalf("clean query displaced: %v", sugs)
	}
}

func TestSLCAEngineRootOnlyConnection(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})
	// rose and database never co-occur below the root.
	if got := e.Suggest("rose database"); got != nil {
		t.Errorf("root-only pair suggested: %v", got)
	}
}

func TestSLCAEngineEmptyQueries(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{})
	if got := e.Suggest(""); got != nil {
		t.Errorf("empty -> %v", got)
	}
	if got := e.Suggest("zzzzz"); got != nil {
		t.Errorf("hopeless -> %v", got)
	}
}

func TestSLCAEngineTopK(t *testing.T) {
	tr := slcaTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewEngine(ix, core.Config{K: 1})
	if got := e.Suggest("fpga desing"); len(got) > 1 {
		t.Errorf("K=1 violated: %v", got)
	}
}
