// Package qlog records query activity and derives the data-driven
// signals the XClean framework can consume but the paper leaves to
// "additional data or domain knowledge":
//
//   - query popularity, which powers log-based correction (the
//     behaviour of the commercial search engines of Section VII, stood
//     in for by baseline.LogCorrector);
//   - entity click counts, which become the non-uniform entity prior
//     P(r_j|T) of Eq. (8) via core.Config.CustomPrior.
//
// A Log is safe for concurrent use and persists as a line-oriented
// text format (easy to inspect, diff, and truncate).
package qlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Log accumulates query and click counts.
type Log struct {
	mu      sync.Mutex
	queries map[string]int64 // normalized query -> count
	clicks  map[string]int64 // entity Dewey key -> count
	opts    tokenizer.Options
}

// New returns an empty log whose queries are normalized with the given
// tokenizer options (use the options of the index the queries run
// against, so log lookups survive case and punctuation differences).
func New(opts tokenizer.Options) *Log {
	return &Log{
		queries: make(map[string]int64),
		clicks:  make(map[string]int64),
		opts:    opts,
	}
}

// normalize maps a query to its canonical logged form.
func (l *Log) normalize(q string) string {
	return strings.Join(l.opts.Tokenize(q), " ")
}

// RecordQuery counts one submission of q. Queries that normalize to
// nothing (stop words only) are dropped.
func (l *Log) RecordQuery(q string) {
	n := l.normalize(q)
	if n == "" {
		return
	}
	l.mu.Lock()
	l.queries[n]++
	l.mu.Unlock()
}

// RecordClick counts one click on (selection of) the entity rooted at
// d — evidence that users care about that entity.
func (l *Log) RecordClick(d xmltree.Dewey) {
	if len(d) == 0 {
		return
	}
	l.mu.Lock()
	l.clicks[d.Key()]++
	l.mu.Unlock()
}

// QueryCount returns how often q (after normalization) was recorded.
func (l *Log) QueryCount(q string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queries[l.normalize(q)]
}

// Queries snapshots the query-frequency table, in the shape
// baseline.NewLogCorrector consumes.
func (l *Log) Queries() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.queries))
	for q, c := range l.queries {
		out[q] = c
	}
	return out
}

// EntityPriors snapshots the click counts as unnormalized entity
// weights, in the shape core.Config.CustomPrior consumes (keys are
// Dewey keys; the engine smooths absent entities to weight 1).
func (l *Log) EntityPriors() map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.clicks))
	for k, c := range l.clicks {
		out[k] = float64(c)
	}
	return out
}

// QueryFreq is one row of TopQueries.
type QueryFreq struct {
	Query string
	Count int64
}

// TopQueries returns the n most frequent queries, ties broken by query
// text for determinism.
func (l *Log) TopQueries(n int) []QueryFreq {
	l.mu.Lock()
	rows := make([]QueryFreq, 0, len(l.queries))
	for q, c := range l.queries {
		rows = append(rows, QueryFreq{Query: q, Count: c})
	}
	l.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Query < rows[j].Query
	})
	if n >= 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Len returns the number of distinct logged queries and clicked
// entities.
func (l *Log) Len() (queries, entities int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queries), len(l.clicks)
}

// Save writes the log as text, one record per line:
//
//	q <count> <query text>
//	c <count> <dot-form dewey>
func (l *Log) Save(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	bw := bufio.NewWriter(w)
	// Deterministic order: sorted keys.
	qs := make([]string, 0, len(l.queries))
	for q := range l.queries {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	for _, q := range qs {
		if _, err := fmt.Fprintf(bw, "q %d %s\n", l.queries[q], q); err != nil {
			return fmt.Errorf("qlog: save: %w", err)
		}
	}
	ks := make([]string, 0, len(l.clicks))
	for k := range l.clicks {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		if _, err := fmt.Fprintf(bw, "c %d %s\n", l.clicks[k], xmltree.DeweyFromKey(k)); err != nil {
			return fmt.Errorf("qlog: save: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("qlog: save: %w", err)
	}
	return nil
}

// Load reads records previously written by Save, merging counts into
// the log (so several log files can be combined).
func (l *Log) Load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 {
			return fmt.Errorf("qlog: load: line %d: malformed record %q", lineNo, line)
		}
		count, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || count < 0 {
			return fmt.Errorf("qlog: load: line %d: bad count %q", lineNo, parts[1])
		}
		switch parts[0] {
		case "q":
			n := l.normalize(parts[2])
			if n == "" {
				continue
			}
			l.mu.Lock()
			l.queries[n] += count
			l.mu.Unlock()
		case "c":
			d, err := xmltree.ParseDewey(parts[2])
			if err != nil {
				return fmt.Errorf("qlog: load: line %d: %v", lineNo, err)
			}
			l.mu.Lock()
			l.clicks[d.Key()] += count
			l.mu.Unlock()
		default:
			return fmt.Errorf("qlog: load: line %d: unknown record type %q", lineNo, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("qlog: load: %w", err)
	}
	return nil
}
