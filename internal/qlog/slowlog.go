package qlog

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultSlowThreshold is the slow-query cutoff when none is given.
const DefaultSlowThreshold = 250 * time.Millisecond

// SlowRecord is one slow-query log entry: the request identity plus
// the full trace of the outlier call, so the stage that blew the
// budget is visible without reproducing the query.
type SlowRecord struct {
	// Time is the completion time in RFC 3339 with nanoseconds.
	Time string `json:"time"`
	// RequestID ties the entry to the access log and the /suggest
	// response that carried it.
	RequestID string `json:"requestId,omitempty"`
	// Corpus names the catalog corpus the query ran against (empty in
	// single-engine deployments), so one misbehaving corpus is separable
	// from the rest in a multi-corpus slow log.
	Corpus string `json:"corpus,omitempty"`
	Query  string `json:"query"`
	// Spaces records whether the space-error search ran.
	Spaces bool `json:"spaces,omitempty"`
	// Shard records that the entry is a /shard/suggest partial scan (a
	// coordinator fan-out leg, correlated to the coordinator's own slow
	// log by the forwarded RequestID).
	Shard      bool  `json:"shard,omitempty"`
	DurationNs int64 `json:"durationNs"`
	// Suggestions is the number of suggestions returned.
	Suggestions int `json:"suggestions"`
	// Explain is the per-stage trace (a *core.Explain in practice; typed
	// loosely so this package stays independent of the engine).
	Explain any `json:"explain,omitempty"`
	// Trace is the stitched distributed span tree (a *obs.Trace in
	// practice) when the slow request was also sampled for tracing.
	Trace any `json:"trace,omitempty"`
}

// SlowLog appends the trace of every request slower than a threshold
// to a writer as one JSON object per line (JSONL — greppable, and each
// line is independently parseable). It is safe for concurrent use.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	count     int64
}

// NewSlowLog builds a slow-query log writing to w. A zero or negative
// threshold uses DefaultSlowThreshold.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold returns the slow cutoff.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Count returns how many records have been written.
func (l *SlowLog) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Record writes rec if its duration reaches the threshold, reporting
// whether it did. A nil receiver records nothing.
func (l *SlowLog) Record(rec SlowRecord) bool {
	if l == nil || time.Duration(rec.DurationNs) < l.threshold {
		return false
	}
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err != nil {
		return false
	}
	l.count++
	return true
}
