package qlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)

	if l.Record(SlowRecord{Query: "fast", DurationNs: int64(time.Millisecond)}) {
		t.Error("fast request recorded")
	}
	if !l.Record(SlowRecord{RequestID: "r1", Corpus: "dblp", Query: "slow", DurationNs: int64(time.Second), Suggestions: 2}) {
		t.Error("slow request dropped")
	}
	if l.Count() != 1 {
		t.Errorf("count %d", l.Count())
	}

	line := strings.TrimRight(buf.String(), "\n")
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("expected one JSONL line, got %q", buf.String())
	}
	// Every record carries the request ID and corpus name on the wire,
	// so one outlier request is traceable to its corpus and access-log
	// line with grep alone.
	for _, key := range []string{`"requestId":"r1"`, `"corpus":"dblp"`} {
		if !strings.Contains(line, key) {
			t.Errorf("line %q missing %s", line, key)
		}
	}
	var rec SlowRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if rec.Query != "slow" || rec.RequestID != "r1" || rec.Corpus != "dblp" || rec.Suggestions != 2 {
		t.Errorf("record %+v", rec)
	}
	if rec.Time == "" {
		t.Error("no timestamp stamped")
	}
}

func TestSlowLogOmitsEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, time.Nanosecond)
	l.Record(SlowRecord{Query: "q", DurationNs: int64(time.Second)})
	if strings.Contains(buf.String(), `"corpus"`) {
		t.Errorf("single-engine record should omit corpus: %s", buf.String())
	}
}

func TestSlowLogDefaults(t *testing.T) {
	l := NewSlowLog(&bytes.Buffer{}, 0)
	if l.Threshold() != DefaultSlowThreshold {
		t.Errorf("threshold %v", l.Threshold())
	}
	var nilLog *SlowLog
	if nilLog.Record(SlowRecord{DurationNs: int64(time.Hour)}) {
		t.Error("nil log recorded")
	}
	if nilLog.Count() != 0 || nilLog.Threshold() != 0 {
		t.Error("nil log accessors")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, time.Nanosecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Record(SlowRecord{Query: "q", DurationNs: int64(time.Second)})
			}
		}()
	}
	wg.Wait()
	if l.Count() != 400 {
		t.Fatalf("count %d", l.Count())
	}
	// Every line must be independently parseable (no interleaving).
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, ln := range lines {
		var rec SlowRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("corrupt line %q: %v", ln, err)
		}
	}
}
