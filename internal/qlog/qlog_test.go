package qlog

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func TestRecordAndCount(t *testing.T) {
	l := New(tokenizer.Options{})
	l.RecordQuery("Great Barrier Reef")
	l.RecordQuery("great barrier reef")
	l.RecordQuery("great  barrier,  reef") // normalization collapses these
	if got := l.QueryCount("GREAT barrier reef"); got != 3 {
		t.Errorf("count=%d want 3", got)
	}
	l.RecordQuery("the of") // stop words only: dropped
	if q, _ := l.Len(); q != 1 {
		t.Errorf("distinct queries=%d want 1", q)
	}
}

func TestRecordClick(t *testing.T) {
	l := New(tokenizer.Options{})
	d := xmltree.Dewey{1, 4, 2}
	l.RecordClick(d)
	l.RecordClick(d)
	l.RecordClick(nil) // ignored
	priors := l.EntityPriors()
	if priors[d.Key()] != 2 {
		t.Errorf("priors=%v", priors)
	}
	if len(priors) != 1 {
		t.Errorf("spurious entries: %v", priors)
	}
}

func TestTopQueries(t *testing.T) {
	l := New(tokenizer.Options{})
	for i := 0; i < 5; i++ {
		l.RecordQuery("popular query terms")
	}
	for i := 0; i < 2; i++ {
		l.RecordQuery("rare query terms")
	}
	l.RecordQuery("single query terms")
	top := l.TopQueries(2)
	if len(top) != 2 || top[0].Query != "popular query terms" || top[0].Count != 5 {
		t.Errorf("top=%v", top)
	}
	if all := l.TopQueries(-1); len(all) != 3 {
		t.Errorf("TopQueries(-1)=%v", all)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	l := New(tokenizer.Options{})
	l.RecordQuery("barrier reef diving")
	l.RecordQuery("barrier reef diving")
	l.RecordQuery("coral biology")
	l.RecordClick(xmltree.Dewey{1, 2})
	l.RecordClick(xmltree.Dewey{1, 3, 1})

	var sb strings.Builder
	if err := l.Save(&sb); err != nil {
		t.Fatal(err)
	}
	got := New(tokenizer.Options{})
	if err := got.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Queries(), l.Queries()) {
		t.Errorf("queries diverge: %v vs %v", got.Queries(), l.Queries())
	}
	if !reflect.DeepEqual(got.EntityPriors(), l.EntityPriors()) {
		t.Errorf("priors diverge")
	}

	// Loading twice merges counts.
	if err := got.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if got.QueryCount("barrier reef diving") != 4 {
		t.Errorf("merge failed: %d", got.QueryCount("barrier reef diving"))
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"malformed": "q 1\n",
		"bad-count": "q x barrier reef\n",
		"neg-count": "q -2 barrier reef\n",
		"bad-type":  "z 1 thing\n",
		"bad-dewey": "c 1 1.x.2\n",
	}
	for name, in := range cases {
		l := New(tokenizer.Options{})
		if err := l.Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Comments and blank lines are fine.
	l := New(tokenizer.Options{})
	if err := l.Load(strings.NewReader("# header\n\nq 1 coral biology\n")); err != nil {
		t.Errorf("comment/blank rejected: %v", err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := New(tokenizer.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.RecordQuery("stress test query")
				l.RecordClick(xmltree.Dewey{1, uint32(i % 4)})
			}
		}()
	}
	wg.Wait()
	if got := l.QueryCount("stress test query"); got != 1600 {
		t.Errorf("count=%d want 1600", got)
	}
}

// TestClickPriorsImproveRanking closes the loop: clicks recorded in a
// qlog become the custom entity prior and change the engine's ranking
// toward the clicked entity, exactly the generalization Eq. (8)
// promises.
func TestClickPriorsImproveRanking(t *testing.T) {
	tr := xmltree.NewTree("db")
	e1 := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(e1, "f", "alpha beta")
	e2 := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(e2, "f", "alpha betas")
	ix := invindex.Build(tr, tokenizer.Options{})

	// Without clicks the two symmetric candidates tie; text order wins.
	plain := core.NewEngine(ix, core.Config{Mu: 1})
	sugs := plain.Suggest("alpha betaz")
	if len(sugs) == 0 || sugs[0].Query() != "alpha beta" {
		t.Fatalf("baseline top: %v", sugs)
	}

	// Users keep clicking the second entity.
	l := New(tokenizer.Options{})
	for i := 0; i < 50; i++ {
		l.RecordClick(e2.Dewey)
	}
	boosted := core.NewEngine(ix, core.Config{
		Mu:          1,
		Prior:       core.PriorCustom,
		CustomPrior: l.EntityPriors(),
	})
	sugs = boosted.Suggest("alpha betaz")
	if len(sugs) == 0 || sugs[0].Query() != "alpha betas" {
		t.Fatalf("click-informed top: %v", sugs)
	}
}
