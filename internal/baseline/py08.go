// Package baseline implements the comparison systems of Section VII:
//
//   - PY08, the relational keyword-query cleaning method of Pu & Yu
//     adapted to XML exactly as the paper does ("treating each XML
//     element as a document"), including both scoring biases Section II
//     analyzes;
//   - LogCorrector, a query-log-based corrector standing in for the two
//     commercial search engines (SE1/SE2), reproducing their
//     qualitative behaviour: excellent on clean queries, strong on
//     human-rule misspellings, popularity-biased.
package baseline

import (
	"container/heap"
	"math"
	"sort"
	"strconv"
	"strings"

	"xclean/internal/core"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// PY08 scores candidate queries with
//
//	score(C)     = Σ_{w∈C} score_IR(w) · f(w)
//	score_IR(w)  = max_t tfidf(w,t),  tfidf(w,t) = count(w,t)/|t| · log(N/df(w))
//	f(w)         = 1 / (1 + ed(q,w))
//
// where each XML element is one "tuple" t. Because every keyword is
// maximized independently, the method inherits the two biases of
// Section II: a preference for rare tokens (df in the denominator) and
// no connectivity requirement between keywords — and it cannot
// guarantee non-empty results.
type PY08 struct {
	ix  *invindex.Index
	fss *fastss.Index
	cfg core.Config
}

// NewPY08 builds the baseline over an index. Config supplies Epsilon
// (variant threshold), Gamma (number of top partial candidates
// combined, the γ the paper reports for PY08 in Table V), and K.
func NewPY08(ix *invindex.Index, cfg core.Config) *PY08 {
	fss := fastss.Build(ix.VocabList(), fastss.Config{
		MaxErrors:    epsOf(cfg),
		PartitionLen: plenOf(cfg),
	})
	return NewPY08WithFastSS(ix, fss, cfg)
}

// NewPY08WithFastSS builds the baseline reusing a prebuilt variant
// index.
func NewPY08WithFastSS(ix *invindex.Index, fss *fastss.Index, cfg core.Config) *PY08 {
	return &PY08{ix: ix, fss: fss, cfg: cfg}
}

func epsOf(cfg core.Config) int {
	if cfg.Epsilon <= 0 {
		return 1
	}
	return cfg.Epsilon
}

func plenOf(cfg core.Config) int {
	if cfg.PartitionLen <= 0 {
		return 12
	}
	return cfg.PartitionLen
}

func (e *PY08) gamma() int {
	switch {
	case e.cfg.Gamma == 0:
		return 1000
	case e.cfg.Gamma < 0:
		return math.MaxInt32
	default:
		return e.cfg.Gamma
	}
}

func (e *PY08) k() int {
	if e.cfg.K <= 0 {
		return 10
	}
	return e.cfg.K
}

// scoreIR computes max_t tfidf(w,t) by scanning w's full inverted
// list. PY08 has no skipping machinery, so this is a complete pass —
// the source of the 5–10× running-time gap of Table VI.
func (e *PY08) scoreIR(w string) float64 {
	pl := e.ix.Postings(w)
	if len(pl) == 0 {
		return 0
	}
	idf := math.Log(float64(e.ix.NodeCount()) / float64(len(pl)))
	var max float64
	for _, p := range pl {
		tf := float64(p.TF) / float64(p.NodeLen)
		if s := tf * idf; s > max {
			max = s
		}
	}
	return max
}

type py08Variant struct {
	word  string
	dist  int
	score float64 // score_IR(w)·f(w)
}

// Suggest returns the top-k candidate queries under the PY08 scoring.
// The top-γ candidate combinations are enumerated best-first; each is
// then verified with another pass over its variants' inverted lists
// (the "segment combination" passes of the original method).
func (e *PY08) Suggest(query string) []core.Suggestion {
	toks := e.cfg.Tokenizer.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	perKW := make([][]py08Variant, len(toks))
	for i, tok := range toks {
		matches := e.fss.Search(tok)
		if len(matches) == 0 {
			return nil
		}
		vs := make([]py08Variant, len(matches))
		for j, m := range matches {
			vs[j] = py08Variant{
				word:  m.Word,
				dist:  m.Dist,
				score: e.scoreIR(m.Word) / float64(1+m.Dist),
			}
		}
		sort.Slice(vs, func(a, b int) bool {
			if vs[a].score != vs[b].score {
				return vs[a].score > vs[b].score
			}
			return vs[a].word < vs[b].word
		})
		perKW[i] = vs
	}

	combos := topCombos(perKW, e.gamma())

	out := make([]core.Suggestion, 0, len(combos))
	for _, c := range combos {
		words := make([]string, len(toks))
		dist := 0
		score := 0.0
		for i, j := range c.idx {
			v := perKW[i][j]
			words[i] = v.word
			dist += v.dist
			// Verification pass: recompute the segment score from the
			// inverted list, as the original combines segments with
			// repeated list accesses.
			score += e.scoreIR(v.word) / float64(1+v.dist)
		}
		out = append(out, core.Suggestion{
			Words:        words,
			Score:        score,
			ResultType:   xmltree.InvalidPath,
			EditDistance: dist,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query() < out[j].Query()
	})
	if k := e.k(); len(out) > k {
		out = out[:k]
	}
	return out
}

// combo is one point of the candidate product space.
type combo struct {
	idx   []int
	score float64
}

type comboHeap []combo

func (h comboHeap) Len() int            { return len(h) }
func (h comboHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h comboHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *comboHeap) Push(x interface{}) { *h = append(*h, x.(combo)) }
func (h *comboHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// topCombos emits up to limit highest-scoring index vectors from the
// per-keyword variant lists (each sorted descending) via best-first
// search over the product lattice.
func topCombos(perKW [][]py08Variant, limit int) []combo {
	l := len(perKW)
	first := combo{idx: make([]int, l)}
	for i := range perKW {
		first.score += perKW[i][0].score
	}
	h := comboHeap{first}
	seen := map[string]bool{comboKey(first.idx): true}
	var out []combo
	for len(h) > 0 && len(out) < limit {
		c := heap.Pop(&h).(combo)
		out = append(out, c)
		for i := 0; i < l; i++ {
			if c.idx[i]+1 >= len(perKW[i]) {
				continue
			}
			next := make([]int, l)
			copy(next, c.idx)
			next[i]++
			key := comboKey(next)
			if seen[key] {
				continue
			}
			seen[key] = true
			score := c.score - perKW[i][c.idx[i]].score + perKW[i][next[i]].score
			heap.Push(&h, combo{idx: next, score: score})
		}
	}
	return out
}

func comboKey(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	return b.String()
}
