package baseline

import (
	"math"
	"sort"

	"xclean/internal/core"
	"xclean/internal/editdist"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// LogCorrector is the stand-in for the commercial search engines
// (SE1/SE2) the paper compares against. Like them, it corrects purely
// from a query log, token by token, and returns at most one
// suggestion:
//
//   - a token seen in the log is trusted and kept — so clean queries
//     are (almost) never altered, reproducing the SEs' near-perfect
//     behaviour on the CLEAN sets;
//   - a token matching a known human misspelling rule is rewritten to
//     its correction — reproducing the SEs' strength on RULE errors,
//     which the paper attributes to their logs;
//   - any other token is mapped to the log token maximizing
//     log(1+freq) · exp(-β·ed), which is *popularity-biased*: a rare
//     correct word loses to a frequent similar one (the "TiGe serum →
//     Tigi serum" failure of Section I).
type LogCorrector struct {
	freq map[string]int64
	// rules maps a known misspelling to its correction.
	rules map[string]string
	beta  float64
	eps   int
	tok   tokenizer.Options
	vocab []string
	known interface{ Contains(string) bool }
}

// LogConfig configures a LogCorrector.
type LogConfig struct {
	// Beta is the distance penalty (0 = core.DefaultBeta).
	Beta float64
	// Epsilon is the maximum edit distance considered (0 = 2).
	Epsilon int
	// Tokenizer matches the engine's query tokenization.
	Tokenizer tokenizer.Options
	// KnownWords, if non-nil, is the indexed site vocabulary (the
	// paper queries the engines with site: restriction, so they know
	// the corpus terms). Tokens it contains are trusted and kept,
	// which is what makes real engines leave clean queries alone.
	KnownWords interface{ Contains(string) bool }
}

// NewLogCorrector builds a corrector from a log of (query, frequency)
// pairs and a misspelling rule list (misspelling → correction).
func NewLogCorrector(queries map[string]int64, rules map[string]string, cfg LogConfig) *LogCorrector {
	c := &LogCorrector{
		freq:  make(map[string]int64),
		rules: make(map[string]string, len(rules)),
		beta:  cfg.Beta,
		eps:   cfg.Epsilon,
		tok:   cfg.Tokenizer,
		known: cfg.KnownWords,
	}
	if c.beta <= 0 {
		c.beta = core.DefaultBeta
	}
	if c.eps <= 0 {
		c.eps = 2
	}
	for q, n := range queries {
		for _, t := range c.tok.Tokenize(q) {
			c.freq[t] += n
		}
	}
	for miss, corr := range rules {
		c.rules[miss] = corr
	}
	c.vocab = make([]string, 0, len(c.freq))
	for w := range c.freq {
		c.vocab = append(c.vocab, w)
	}
	sort.Strings(c.vocab)
	return c
}

// Suggest returns at most one suggestion, like the search engines the
// paper queries with the site: operator. The suggestion may equal the
// input (meaning "looks correct").
func (c *LogCorrector) Suggest(query string) []core.Suggestion {
	toks := c.tok.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	words := make([]string, len(toks))
	dist := 0
	score := 1.0
	for i, t := range toks {
		w, d, s := c.correctToken(t)
		words[i] = w
		dist += d
		score *= s
	}
	return []core.Suggestion{{
		Words:        words,
		Score:        score,
		ResultType:   xmltree.InvalidPath,
		EditDistance: dist,
	}}
}

// correctToken maps one token to its correction, its distance, and a
// confidence factor.
func (c *LogCorrector) correctToken(t string) (string, int, float64) {
	if _, ok := c.freq[t]; ok {
		return t, 0, 1
	}
	if corr, ok := c.rules[t]; ok {
		return corr, editdist.Distance(t, corr), 1
	}
	if c.known != nil && c.known.Contains(t) {
		return t, 0, 1
	}
	bestWord, bestScore, bestDist := t, 0.0, 0
	for _, w := range c.vocab {
		d, ok := editdist.WithinK(t, w, c.eps)
		if !ok {
			continue
		}
		s := math.Log(1+float64(c.freq[w])) * math.Exp(-c.beta*float64(d))
		if s > bestScore {
			bestWord, bestScore, bestDist = w, s, d
		}
	}
	if bestScore == 0 {
		return t, 0, 0.5 // unknown token, kept verbatim with low confidence
	}
	return bestWord, bestDist, bestScore
}
