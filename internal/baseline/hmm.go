// The HMM baseline: Pu's follow-up to PY08 (reference [7] of the
// paper), which models query generation as a Hidden Markov Model. The
// paper's related-work section describes it precisely enough to
// reproduce its behaviour: every database node approximately matching
// a query keyword is a state, the user is assumed to "sequentially
// travel" the database emitting one keyword per step, and aggressive
// state pruning keeps the state space tractable.
//
// The implementation follows that description:
//
//   - States at position j are (node, variant) pairs: node's direct
//     text contains variant, variant ∈ var_ε(q_j).
//   - Emission probability is the same exponential edit-error model
//     XClean uses, P(q_j|w) ∝ exp(-β·ed(q_j,w)), so the comparison
//     isolates the generation model.
//   - Transition probability decays with tree distance:
//     P(s→s') ∝ r^dist(n,n'), dist = depth(n)+depth(n')−2·depth(lca).
//     Nearby nodes are likely successors; nodes connected only through
//     the root are heavily discounted but — unlike XClean — never
//     excluded, so the model cannot guarantee non-empty results.
//   - Per-position states are pruned to the MaxStates best by emission
//     × tf weight (the "aggressive states pruning" the paper notes may
//     hurt quality).
//   - Viterbi decoding returns the top-k distinct keyword sequences
//     among the best paths into each final state.
//
// Both weaknesses the paper analyzes emerge naturally: the state space
// grows with the data (so pruning discards good paths), and the
// sequential-travel assumption mis-scores queries that combine
// concepts from unrelated parts of the document.
package baseline

import (
	"math"
	"sort"
	"strings"

	"xclean/internal/core"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// DefaultHMMStates is the per-position state cap when Config.Gamma is
// unset. Viterbi is O(l·S²), so the default is deliberately modest.
const DefaultHMMStates = 200

// HMM is the Hidden-Markov-Model query cleaning baseline.
type HMM struct {
	ix  *invindex.Index
	fss *fastss.Index
	cfg core.Config
	em  core.ErrorModel
}

// NewHMM builds the baseline over an index. Config supplies Epsilon
// (variant threshold), Beta (emission error penalty), R (transition
// decay rate), Gamma (per-position state cap), and K.
func NewHMM(ix *invindex.Index, cfg core.Config) *HMM {
	fss := fastss.Build(ix.VocabList(), fastss.Config{
		MaxErrors:    epsOf(cfg),
		PartitionLen: plenOf(cfg),
	})
	return NewHMMWithFastSS(ix, fss, cfg)
}

// NewHMMWithFastSS builds the baseline reusing a prebuilt variant
// index.
func NewHMMWithFastSS(ix *invindex.Index, fss *fastss.Index, cfg core.Config) *HMM {
	return &HMM{ix: ix, fss: fss, cfg: cfg, em: core.ErrorModel{Beta: cfg.Beta}}
}

func (e *HMM) maxStates() int {
	switch {
	case e.cfg.Gamma == 0:
		return DefaultHMMStates
	case e.cfg.Gamma < 0:
		return math.MaxInt32
	default:
		return e.cfg.Gamma
	}
}

func (e *HMM) k() int {
	if e.cfg.K <= 0 {
		return 10
	}
	return e.cfg.K
}

func (e *HMM) decay() float64 {
	if e.cfg.R <= 0 || e.cfg.R >= 1 {
		return 0.8
	}
	return e.cfg.R
}

// hmmState is one (node, variant) state with its Viterbi bookkeeping.
type hmmState struct {
	dewey xmltree.Dewey
	word  string
	dist  int
	// emit is the normalized error-model weight P(w|q_j).
	emit float64
	// pruneWeight orders states for the per-position cap: emission
	// scaled by the node-local term frequency.
	pruneWeight float64

	// Viterbi: best log-probability of any path ending here, and the
	// predecessor state index on that path.
	score float64
	prev  int
}

// Suggest returns the top-k candidate queries under the HMM model.
func (e *HMM) Suggest(query string) []core.Suggestion {
	toks := e.cfg.Tokenizer.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}

	levels := make([][]hmmState, len(toks))
	for j, tok := range toks {
		kw := e.em.Keyword(tok, e.fss.Search(tok))
		if len(kw.Variants) == 0 {
			return nil
		}
		var states []hmmState
		for _, v := range kw.Variants {
			for _, p := range e.ix.Postings(v.Word) {
				states = append(states, hmmState{
					dewey:       p.Dewey,
					word:        v.Word,
					dist:        v.Dist,
					emit:        v.Weight,
					pruneWeight: v.Weight * float64(p.TF) / float64(p.NodeLen),
				})
			}
		}
		if len(states) == 0 {
			return nil
		}
		// Aggressive state pruning: keep the MaxStates most promising.
		if limit := e.maxStates(); len(states) > limit {
			sort.Slice(states, func(a, b int) bool {
				if states[a].pruneWeight != states[b].pruneWeight {
					return states[a].pruneWeight > states[b].pruneWeight
				}
				return states[a].dewey.Compare(states[b].dewey) < 0
			})
			states = states[:limit]
		}
		levels[j] = states
	}

	// Viterbi in log space. Uniform initial distribution.
	logDecay := math.Log(e.decay())
	for i := range levels[0] {
		levels[0][i].score = math.Log(levels[0][i].emit)
		levels[0][i].prev = -1
	}
	for j := 1; j < len(levels); j++ {
		prev, cur := levels[j-1], levels[j]
		for i := range cur {
			best := math.Inf(-1)
			bestPrev := -1
			for pi := range prev {
				s := prev[pi].score + logDecay*float64(treeDist(prev[pi].dewey, cur[i].dewey))
				if s > best {
					best = s
					bestPrev = pi
				}
			}
			cur[i].score = best + math.Log(cur[i].emit)
			cur[i].prev = bestPrev
		}
	}

	// Collect top-k distinct keyword sequences among final-state paths.
	final := levels[len(levels)-1]
	order := make([]int, len(final))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if final[order[a]].score != final[order[b]].score {
			return final[order[a]].score > final[order[b]].score
		}
		return final[order[a]].dewey.Compare(final[order[b]].dewey) < 0
	})

	seen := make(map[string]bool)
	var out []core.Suggestion
	for _, fi := range order {
		if len(out) >= e.k() {
			break
		}
		words := make([]string, len(levels))
		dist := 0
		i := fi
		for j := len(levels) - 1; j >= 0; j-- {
			st := levels[j][i]
			words[j] = st.word
			dist += st.dist
			i = st.prev
		}
		key := strings.Join(words, "\x00")
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, core.Suggestion{
			Words:        words,
			Score:        final[fi].score, // log-probability: higher is better
			ResultType:   xmltree.InvalidPath,
			EditDistance: dist,
		})
	}
	return out
}

// treeDist is the number of edges on the tree path between two nodes.
func treeDist(a, b xmltree.Dewey) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	shared := 0
	for shared < n && a[shared] == b[shared] {
		shared++
	}
	return len(a) + len(b) - 2*shared
}
