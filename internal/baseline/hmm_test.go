package baseline

import (
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func hmmTree() *xmltree.Tree {
	t := xmltree.NewTree("dblp")
	add := func(author, title string) {
		art := t.AddChild(t.Root, "article", "")
		t.AddChild(art, "author", author)
		t.AddChild(art, "title", title)
	}
	add("rose", "fpga architecture synthesis")
	add("rose", "reconfigurable fpga architecture")
	add("smith", "database indexing methods")
	add("jones", "xml keyword search ranking")
	return t
}

func TestHMMCorrectsTypo(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{})
	sugs := e.Suggest("rose fpga architecure")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "rose fpga architecture" {
		t.Errorf("top=%q want %q", sugs[0].Query(), "rose fpga architecture")
	}
}

func TestHMMKeepsCleanQuery(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{})
	sugs := e.Suggest("database indexing")
	if len(sugs) == 0 || sugs[0].Query() != "database indexing" {
		t.Fatalf("clean query displaced: %v", sugs)
	}
}

// TestHMMNoNonEmptyGuarantee: the paper's key criticism — sequential
// travel with decaying transitions still assigns positive probability
// to keyword pairs that never co-occur below the root, so the HMM
// suggests queries with empty results where XClean refuses.
func TestHMMNoNonEmptyGuarantee(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{})
	sugs := e.Suggest("rose database")
	if len(sugs) == 0 {
		t.Fatal("HMM should (wrongly) suggest the root-only-connected pair")
	}
	if sugs[0].Query() != "rose database" {
		t.Errorf("top=%q", sugs[0].Query())
	}
	// The corresponding XClean engine refuses the same pair.
	xc := core.NewEngine(ix, core.Config{})
	if got := xc.Suggest("rose database"); got != nil {
		t.Fatalf("XClean suggested the root-only pair: %v", got)
	}
}

// TestHMMPrefersCloseNodes: with two spelling-valid alternatives, the
// transition decay must favour the keyword pair that co-occurs in one
// entity over the pair connected only through the root.
func TestHMMPrefersCloseNodes(t *testing.T) {
	tr := xmltree.NewTree("db")
	a := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(a, "f", "health insurance policy")
	b := tr.AddChild(tr.Root, "rec", "")
	tr.AddChild(b, "f", "instance segmentation")
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewHMM(ix, core.Config{Epsilon: 2})

	sugs := e.Suggest("health insurence")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "health insurance" {
		t.Errorf("top=%q want %q (transition decay should beat the rare-token path)",
			sugs[0].Query(), "health insurance")
	}
}

func TestHMMStatePruning(t *testing.T) {
	// A corpus with many nodes containing the same word: state cap 1
	// must still produce a suggestion (one surviving state per level).
	tr := xmltree.NewTree("db")
	for i := 0; i < 30; i++ {
		r := tr.AddChild(tr.Root, "rec", "")
		tr.AddChild(r, "f", "common words here")
	}
	ix := invindex.Build(tr, tokenizer.Options{})
	e := NewHMM(ix, core.Config{Gamma: 1})
	sugs := e.Suggest("common words")
	if len(sugs) != 1 {
		t.Fatalf("got %d suggestions, want 1", len(sugs))
	}
	if sugs[0].Query() != "common words" {
		t.Errorf("top=%q", sugs[0].Query())
	}
}

func TestHMMEmptyAndHopeless(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{})
	if got := e.Suggest(""); got != nil {
		t.Errorf("empty -> %v", got)
	}
	if got := e.Suggest("zzzzzzzz"); got != nil {
		t.Errorf("hopeless -> %v", got)
	}
}

func TestHMMTopK(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{K: 2, Epsilon: 2})
	if got := e.Suggest("fpga architecure"); len(got) > 2 {
		t.Errorf("K=2 violated: %d suggestions", len(got))
	}
}

func TestHMMDeterminism(t *testing.T) {
	ix := invindex.Build(hmmTree(), tokenizer.Options{})
	e := NewHMM(ix, core.Config{Epsilon: 2})
	a := e.Suggest("rose fpga architecure")
	b := e.Suggest("rose fpga architecure")
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query() != b[i].Query() || a[i].Score != b[i].Score {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTreeDist(t *testing.T) {
	mk := func(s string) xmltree.Dewey {
		d, err := xmltree.ParseDewey(s)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		a, b string
		want int
	}{
		{"1.2.3", "1.2.3", 0},
		{"1.2.3", "1.2.4", 2},
		{"1.2", "1.2.3", 1},
		{"1.2.3", "1.3.4.5", 5},
		{"1", "1.2", 1},
	}
	for _, c := range cases {
		if got := treeDist(mk(c.a), mk(c.b)); got != c.want {
			t.Errorf("treeDist(%s,%s)=%d want %d", c.a, c.b, got, c.want)
		}
		if got := treeDist(mk(c.b), mk(c.a)); got != c.want {
			t.Errorf("treeDist(%s,%s)=%d want %d (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}
