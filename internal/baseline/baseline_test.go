package baseline

import (
	"testing"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// biasTree reproduces Figure 1: frequent "insurance" co-occurs with
// "health"; rare "instance" sits in an unrelated branch.
func biasTree() *xmltree.Tree {
	t := xmltree.NewTree("db")
	for i := 0; i < 5; i++ {
		rec := t.AddChild(t.Root, "record", "")
		t.AddChild(rec, "title", "health insurance policy")
		t.AddChild(rec, "body", "national health insurance coverage details")
	}
	other := t.AddChild(t.Root, "note", "")
	t.AddChild(other, "text", "instance")
	return t
}

func findSuggestion(sugs []core.Suggestion, query string) (core.Suggestion, bool) {
	for _, s := range sugs {
		if s.Query() == query {
			return s, true
		}
	}
	return core.Suggestion{}, false
}

func TestPY08RareTokenBias(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	py := NewPY08(ix, core.Config{Epsilon: 2})

	// Figure 1's query is the *clean* "health insurance"; instance is
	// within 2 edits of insurance and PY08 still prefers it.
	sugs := py.Suggest("health insurance")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query() != "health instance" {
		t.Errorf("PY08 top=%q, expected the biased 'health instance'", sugs[0].Query())
	}
	// XClean on the same corpus keeps the connected frequent token.
	xc := core.NewEngine(ix, core.Config{Epsilon: 2})
	xsugs := xc.Suggest("health insurance")
	if len(xsugs) == 0 || xsugs[0].Query() != "health insurance" {
		t.Errorf("XClean top=%v, want 'health insurance'", xsugs)
	}
	if _, ok := findSuggestion(xsugs, "health instance"); ok {
		t.Error("XClean suggested the root-only-connected 'health instance'")
	}
}

func TestPY08TopKAndGamma(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	py := NewPY08(ix, core.Config{Epsilon: 2, K: 2})
	if got := py.Suggest("health insurence"); len(got) > 2 {
		t.Errorf("K=2 violated: %d", len(got))
	}
	py1 := NewPY08(ix, core.Config{Epsilon: 2, Gamma: 1})
	if got := py1.Suggest("health insurence"); len(got) != 1 {
		t.Errorf("gamma=1 should emit exactly one combo, got %d", len(got))
	}
}

func TestPY08EmptyAndHopeless(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	py := NewPY08(ix, core.Config{})
	if got := py.Suggest(""); got != nil {
		t.Errorf("empty -> %v", got)
	}
	if got := py.Suggest("zzzzzz"); got != nil {
		t.Errorf("hopeless -> %v", got)
	}
}

func TestPY08ScoresDescending(t *testing.T) {
	tr := biasTree()
	ix := invindex.Build(tr, tokenizer.Options{})
	py := NewPY08(ix, core.Config{Epsilon: 2})
	sugs := py.Suggest("health insurence")
	for i := 1; i < len(sugs); i++ {
		if sugs[i-1].Score < sugs[i].Score {
			t.Errorf("scores not descending at %d", i)
		}
	}
}

func TestTopCombos(t *testing.T) {
	perKW := [][]py08Variant{
		{{word: "a1", score: 10}, {word: "a2", score: 1}},
		{{word: "b1", score: 5}, {word: "b2", score: 4}},
	}
	combos := topCombos(perKW, 10)
	if len(combos) != 4 {
		t.Fatalf("got %d combos", len(combos))
	}
	wantScores := []float64{15, 14, 6, 5}
	for i, c := range combos {
		if c.score != wantScores[i] {
			t.Errorf("combo %d score=%g want %g", i, c.score, wantScores[i])
		}
	}
	// Bounded enumeration.
	if got := topCombos(perKW, 2); len(got) != 2 {
		t.Errorf("limit violated: %d", len(got))
	}
}

func TestLogCorrectorCleanQueryKept(t *testing.T) {
	lc := NewLogCorrector(map[string]int64{
		"great barrier reef": 100,
		"health insurance":   50,
	}, nil, LogConfig{})
	sugs := lc.Suggest("great barrier reef")
	if len(sugs) != 1 || sugs[0].Query() != "great barrier reef" {
		t.Errorf("clean query altered: %v", sugs)
	}
	if sugs[0].EditDistance != 0 {
		t.Error("clean query distance nonzero")
	}
}

func TestLogCorrectorRuleHit(t *testing.T) {
	lc := NewLogCorrector(map[string]int64{
		"great barrier reef": 100,
	}, map[string]string{"gerat": "great"}, LogConfig{})
	sugs := lc.Suggest("gerat barrier reef")
	if sugs[0].Query() != "great barrier reef" {
		t.Errorf("rule correction failed: %v", sugs)
	}
}

func TestLogCorrectorPopularityBias(t *testing.T) {
	// The paper's Section I example: "tige serum" should stay (it is a
	// valid rare term), but a log-based corrector rewrites it to the
	// popular "tigi serum".
	lc := NewLogCorrector(map[string]int64{
		"tigi serum": 1000,
	}, nil, LogConfig{})
	sugs := lc.Suggest("tige serum")
	if sugs[0].Query() != "tigi serum" {
		t.Errorf("popularity bias not reproduced: %v", sugs)
	}
}

func TestLogCorrectorEditFallback(t *testing.T) {
	lc := NewLogCorrector(map[string]int64{
		"barrier reef": 10,
	}, nil, LogConfig{})
	sugs := lc.Suggest("barier reef")
	if sugs[0].Query() != "barrier reef" {
		t.Errorf("edit fallback failed: %v", sugs)
	}
}

func TestLogCorrectorUnknownToken(t *testing.T) {
	lc := NewLogCorrector(map[string]int64{"reef": 1}, nil, LogConfig{})
	sugs := lc.Suggest("xqzwvut reef")
	if len(sugs) != 1 {
		t.Fatalf("sugs=%v", sugs)
	}
	// Token too far from anything: kept verbatim.
	if sugs[0].Words[0] != "xqzwvut" {
		t.Errorf("unknown token rewritten: %v", sugs)
	}
}

func TestLogCorrectorEmpty(t *testing.T) {
	lc := NewLogCorrector(nil, nil, LogConfig{})
	if got := lc.Suggest(""); got != nil {
		t.Errorf("empty -> %v", got)
	}
}
