package catalog

import (
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xclean"
)

// Tests for the seg-format snapshot lifecycle: what the catalog
// writes, how corruption surfaces, and the one-time legacy rewrite.

// TestSnapshotFormatSeg: the default snapshot format is the mmap-able
// seg file, and revival from it serves snapshot-backed.
func TestSnapshotFormatSeg(t *testing.T) {
	now := time.Now()
	c, dir := newTestCatalog(t, Config{IdleTTL: time.Minute, Now: func() time.Time { return now }})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("dblp")
	if filepath.Ext(st.Snapshot) != ".seg" {
		t.Fatalf("snapshot = %q, want a .seg file", st.Snapshot)
	}
	if _, err := os.Stat(st.Snapshot); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	if n := c.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	eng, err := c.Get("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if !eng.SnapshotBacked() {
		t.Error("revived engine is not snapshot-backed (not serving off the mapping)")
	}
	if sugs := eng.Suggest("rose fpga"); len(sugs) == 0 {
		t.Error("revived engine returns no suggestions")
	}
	c.maintWG.Wait() // background verify must pass on a healthy snapshot
	if st, _ := c.Status("dblp"); st.State != StateReady {
		t.Errorf("state after background verify = %s (%s)", st.State, st.Error)
	}
}

// TestSnapshotFormatGob: the legacy format remains selectable.
func TestSnapshotFormatGob(t *testing.T) {
	c, dir := newTestCatalog(t, Config{SnapshotFormat: "gob"})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("dblp")
	if filepath.Ext(st.Snapshot) != ".idx" {
		t.Fatalf("snapshot = %q, want a .idx file under SnapshotFormat=gob", st.Snapshot)
	}
}

// TestCorruptSnapshotSurfacesFailure: a truncated snapshot must fail
// the warm-start loudly — state=failed with the error in the status
// and a log line — never panic, never serve silently.
func TestCorruptSnapshotSurfacesFailure(t *testing.T) {
	now := time.Now()
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	c, dir := newTestCatalog(t, Config{IdleTTL: time.Minute, Logger: logger, Now: func() time.Time { return now }})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("dblp")
	snap := st.Snapshot
	now = now.Add(time.Hour)
	if n := c.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("dblp"); err == nil {
		t.Fatal("Get served a truncated snapshot")
	}
	st, _ = c.Status("dblp")
	if st.State != StateFailed || st.Error == "" {
		t.Errorf("status = state %s, error %q; want failed with error", st.State, st.Error)
	}
	if !strings.Contains(logBuf.String(), "corpus warm-start failed") {
		t.Errorf("warm-start failure not logged:\n%s", logBuf.String())
	}
	// A repaired snapshot revives the corpus.
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("dblp"); err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
}

// TestBackgroundVerifyWithdrawsCorrupt: damage that slips past the
// O(schema) open checks (a flipped byte in a data section) is caught
// by the background checksum pass, which withdraws the engine and
// fails the corpus rather than letting it serve wrong answers.
func TestBackgroundVerifyWithdrawsCorrupt(t *testing.T) {
	dir := t.TempDir()
	eng, err := xclean.Open(strings.NewReader(corpusA), xclean.Options{StoreText: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "a.seg")
	if err := eng.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Find a flip that passes Open but fails the full checksum pass.
	bad := filepath.Join(dir, "bad.seg")
	found := false
	for i := len(data) / 2; i < len(data)-64 && !found; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := xclean.OpenIndexFile(bad, xclean.Options{})
		if err != nil {
			continue
		}
		found = e.VerifySnapshot() != nil
	}
	if !found {
		t.Skip("no byte flip passed open while failing verify on this corpus")
	}

	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	c := New(Config{Logger: logger})
	if err := c.AddSnapshot("frozen", bad); err != nil {
		t.Fatalf("open of the mutant unexpectedly failed: %v", err)
	}
	c.maintWG.Wait()
	st, _ := c.Status("frozen")
	if st.State != StateFailed || !strings.Contains(st.Error, "verification") {
		t.Errorf("status after verify = state %s, error %q", st.State, st.Error)
	}
	if st.Serving {
		t.Error("corpus still serving a snapshot that failed verification")
	}
	if _, err := c.Get("frozen"); err == nil {
		t.Error("Get revived a corpus whose snapshot failed verification")
	}
	if !strings.Contains(logBuf.String(), "failed verification") {
		t.Errorf("verification failure not logged:\n%s", logBuf.String())
	}
}

// TestLegacyGobRewrittenToSeg: a corpus warm-started from a legacy
// gob .idx is rewritten to the seg format once, in the background, and
// subsequent revivals mmap it.
func TestLegacyGobRewrittenToSeg(t *testing.T) {
	dir := t.TempDir()
	eng, err := xclean.Open(strings.NewReader(corpusA), xclean.Options{})
	if err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "frozen.idx")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	now := time.Now()
	snapDir := filepath.Join(dir, "snapshots")
	c := New(Config{SnapshotDir: snapDir, IdleTTL: time.Minute, Now: func() time.Time { return now }})
	if err := c.AddSnapshot("frozen", legacy); err != nil {
		t.Fatal(err)
	}
	c.maintWG.Wait()
	st, _ := c.Status("frozen")
	want := filepath.Join(snapDir, "frozen.seg")
	if st.Snapshot != want {
		t.Fatalf("snapshot after rewrite = %q, want %q", st.Snapshot, want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("frozen"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	if n := c.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	got, err := c.Get("frozen")
	if err != nil {
		t.Fatal(err)
	}
	if !got.SnapshotBacked() {
		t.Error("revival after rewrite is not snapshot-backed")
	}
	if sugs := got.Suggest("rose fpga"); len(sugs) == 0 {
		t.Error("revived engine returns no suggestions")
	}
	c.maintWG.Wait()
}
