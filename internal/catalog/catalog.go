// Package catalog serves many named corpora from one process — the
// layer between the HTTP surface and xclean.Engine that turns the
// single-document library into a multi-tenant service. XClean's
// per-entity decomposition (Eq. 8/9) makes corpora fully independent,
// so each one wraps its own engine behind an atomically swappable
// handle:
//
//   - registration from raw XML (a file, or a directory joined under a
//     virtual root) or from a saved index snapshot (warm-start, several
//     times faster than re-indexing — measured and logged at load);
//   - background rebuild on explicit Reload or detected source mtime
//     change, swapped in atomically ONLY on success — a failed rebuild
//     keeps the previous engine serving and surfaces the error in the
//     corpus status;
//   - idle eviction: engines unused past IdleTTL are dropped (their
//     memory reclaimed) and transparently warm-started from their
//     snapshot on the next hit;
//   - per-corpus status (state, build timings, doc count, last access)
//     and a per-corpus obs.Sink that survives swaps, exposed as
//     corpus-labeled Prometheus series.
//
// Suggest traffic never takes a lock: Get is one map read (RLock), one
// atomic pointer load, and one atomic store of the access time. Builds,
// swaps, revivals, and evictions serialize per corpus on a build mutex
// that the read path only touches when the handle is empty.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xclean"
	"xclean/internal/obs"
)

// State is the lifecycle state of one corpus. The machine is
//
//	loading → ready ⇄ evicted
//	   ↓        ↓↑
//	failed ← failed (previous engine keeps serving)
//
// ready → failed happens on a failed rebuild; the corpus still answers
// queries from the previous generation (Status.Serving stays true) and
// the next successful build returns it to ready.
type State string

const (
	StateLoading State = "loading"
	StateReady   State = "ready"
	StateFailed  State = "failed"
	StateEvicted State = "evicted"
)

// Sentinel errors, exposed so the serving layer can map catalog
// failures to HTTP statuses (errors.Is through the wrapped chain).
var (
	// ErrUnknownCorpus marks requests for a name the catalog does not
	// hold (HTTP 404).
	ErrUnknownCorpus = errors.New("unknown corpus")
	// ErrCorpusRequired marks default resolution failing because several
	// corpora are served and none is named "default" (HTTP 400).
	ErrCorpusRequired = errors.New("corpus parameter required")
	// ErrNotServing marks a corpus that exists but has no engine and no
	// snapshot to revive from (HTTP 503).
	ErrNotServing = errors.New("corpus not serving")
	// ErrDuplicateCorpus marks an Add under a name already registered
	// (HTTP 409).
	ErrDuplicateCorpus = errors.New("corpus already exists")
)

// Config tunes a Catalog.
type Config struct {
	// Options is the engine configuration applied to every corpus.
	Options xclean.Options
	// SnapshotDir, when non-empty, persists every successfully built
	// index as <dir>/<name>.seg (or .idx under SnapshotFormat "gob"),
	// written atomically (temp file + rename). Snapshots enable idle
	// eviction and warm restarts.
	SnapshotDir string
	// SnapshotFormat selects the snapshot format written after a
	// successful build: "seg" (the default) is the mmap-able columnar
	// snapfile format — warm-start opens it in milliseconds regardless
	// of corpus size, and an evicted corpus costs only its mapping;
	// "gob" is the legacy heap-decoded format. Loading negotiates the
	// version by content, so existing .idx snapshots keep warm-starting
	// either way and are rewritten to the seg format in the background
	// after their first warm-start (one-time, logged).
	SnapshotFormat string
	// IdleTTL evicts a corpus's engine after this much time without a
	// Get (0 disables eviction). Eviction requires a snapshot to revive
	// from, so it is also disabled without SnapshotDir.
	IdleTTL time.Duration
	// Logger receives build/swap/evict lines; nil disables logging.
	Logger *slog.Logger
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// snapshotExt maps the configured format to its file extension.
func (c Config) snapshotExt() string {
	switch c.SnapshotFormat {
	case "gob", "idx":
		return ".idx"
	default:
		return ".seg"
	}
}

// Status is the externally visible state of one corpus (the JSON of
// GET /corpora).
type Status struct {
	Name  string `json:"name"`
	State State  `json:"state"`
	// Serving reports whether an engine is currently resident — true in
	// ready, true in failed when the previous generation still answers,
	// false in evicted/loading.
	Serving bool `json:"serving"`
	// Source is the XML file or directory the corpus rebuilds from
	// (empty for snapshot-only corpora).
	Source string `json:"source,omitempty"`
	// Snapshot is the saved-index path evictions revive from.
	Snapshot string `json:"snapshot,omitempty"`
	// Docs is the number of XML documents joined into the corpus.
	Docs int `json:"docs"`
	// Error is the message of the last failed build ("" after success).
	Error string `json:"error,omitempty"`
	// Builds and WarmStarts count successful cold (XML) builds and
	// snapshot opens; Evictions counts idle evictions.
	Builds     int `json:"builds"`
	WarmStarts int `json:"warmStarts"`
	Evictions  int `json:"evictions"`
	// LastBuildMillis is the duration of the most recent successful
	// build or warm-start; LastBuildKind says which one it was
	// ("xml" or "snapshot"). ColdBuildMillis and WarmStartMillis keep
	// the latest timing of each kind so the warm/cold speedup is
	// observable even after further loads.
	LastBuildMillis float64 `json:"lastBuildMillis"`
	LastBuildKind   string  `json:"lastBuildKind,omitempty"`
	ColdBuildMillis float64 `json:"coldBuildMillis,omitempty"`
	WarmStartMillis float64 `json:"warmStartMillis,omitempty"`
	// LastAccess is the time of the latest Get, RFC 3339 (zero before
	// the first).
	LastAccess string `json:"lastAccess,omitempty"`
	// Stats describes the served index (zero while not serving).
	Stats xclean.IndexStats `json:"stats"`
	// Seg describes the corpus's segment stack once live document
	// writes switched the engine to its segmented form (all zero while
	// monolithic or not serving).
	Seg xclean.SegmentStats `json:"segments"`
}

// corpus is one catalog entry. The engine handle and access time are
// lock-free; everything else is guarded by mu. buildMu serializes the
// expensive operations (build, revive, evict) without blocking status
// reads.
type corpus struct {
	name     string
	source   string // XML file or directory; "" = snapshot-only
	snapshot string // saved-index path; "" = none

	engine     atomic.Pointer[xclean.Engine]
	sink       *obs.Sink    // survives swaps: one metrics stream per corpus
	lastAccess atomic.Int64 // unix nanos of the latest Get (0 = never)

	buildMu sync.Mutex

	mu         sync.Mutex
	state      State
	err        error
	docs       int
	builds     int
	warmStarts int
	evictions  int
	lastBuild  time.Duration
	buildKind  string
	coldBuild  time.Duration
	warmStart  time.Duration
	mtime      time.Time // source mtime at the last successful build
	stats      xclean.IndexStats
	rewrote    bool // legacy→seg snapshot rewrite already attempted
}

// Catalog owns a set of named corpora.
type Catalog struct {
	cfg Config

	mu      sync.RWMutex
	corpora map[string]*corpus
	order   []string // registration order; order[0] is the default corpus

	// swapHooks run after every engine swap (hot-swap, warm-start,
	// eviction, removal) with the corpus name; see OnSwap.
	swapHooks []func(name string)

	// maintWG tracks post-warm-start maintenance goroutines (snapshot
	// verification, legacy-format rewrite) so tests and shutdown can
	// wait for them.
	maintWG sync.WaitGroup
}

// New builds an empty catalog.
func New(cfg Config) *Catalog {
	return &Catalog{cfg: cfg, corpora: make(map[string]*corpus)}
}

// OnSwap registers a hook invoked with the corpus name every time a
// corpus's engine pointer changes: successful rebuild or reload,
// snapshot warm-start, idle eviction, and removal. The server uses it
// to drop that corpus's entries from the suggestion cache, so a
// hot-swapped corpus never serves pre-swap answers. Hooks may run with
// internal catalog locks held: they must be fast and must not call
// back into the Catalog. Register hooks before serving; OnSwap must
// not race with swaps.
func (c *Catalog) OnSwap(fn func(name string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.swapHooks = append(c.swapHooks, fn)
}

// notifySwap runs the registered swap hooks for one corpus.
func (c *Catalog) notifySwap(name string) {
	c.mu.RLock()
	hooks := c.swapHooks
	c.mu.RUnlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// validName rejects names that would break metric labels, snapshot
// paths, or URLs.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("catalog: empty corpus name")
	}
	if strings.ContainsAny(name, `/\"{}`+" \t\n") {
		return fmt.Errorf("catalog: invalid corpus name %q", name)
	}
	return nil
}

// register inserts an empty corpus entry, failing on duplicates.
func (c *Catalog) register(name, source string) (*corpus, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.corpora[name]; ok {
		return nil, fmt.Errorf("catalog: corpus %q: %w", name, ErrDuplicateCorpus)
	}
	co := &corpus{name: name, source: source, sink: obs.NewSink(), state: StateLoading}
	c.corpora[name] = co
	c.order = append(c.order, name)
	return co, nil
}

// unregister removes the entry (used to roll back a failed initial add
// and by Remove).
func (c *Catalog) unregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.corpora, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Add registers a corpus built from source — one XML file, or a
// directory whose *.xml files are joined under a virtual root — and
// builds it synchronously. On failure nothing is registered.
func (c *Catalog) Add(name, source string) error {
	co, err := c.register(name, source)
	if err != nil {
		return err
	}
	if err := c.rebuild(co); err != nil {
		c.unregister(name)
		return err
	}
	return nil
}

// AddSnapshot registers a corpus served from a saved index (warm-start
// only; it has no XML source, so Reload re-opens the same snapshot).
// On failure nothing is registered.
func (c *Catalog) AddSnapshot(name, snapshot string) error {
	co, err := c.register(name, "")
	if err != nil {
		return err
	}
	co.snapshot = snapshot
	if err := c.openSnapshot(co); err != nil {
		c.unregister(name)
		return err
	}
	return nil
}

// lookup finds a corpus by name.
func (c *Catalog) lookup(name string) (*corpus, error) {
	c.mu.RLock()
	co, ok := c.corpora[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: %w: %q", ErrUnknownCorpus, name)
	}
	return co, nil
}

// Get returns the engine serving the named corpus, reviving it from
// its snapshot if it was evicted. It records the access time; the hot
// path takes no locks beyond the registry RLock.
func (c *Catalog) Get(name string) (*xclean.Engine, error) {
	co, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	co.lastAccess.Store(c.cfg.now().UnixNano())
	if e := co.engine.Load(); e != nil {
		return e, nil
	}
	return c.revive(co)
}

// Resolve is Get with default-corpus resolution: an empty name picks
// the only corpus, or the one literally named "default". It returns
// the resolved name for cache keys and logs.
func (c *Catalog) Resolve(name string) (*xclean.Engine, string, error) {
	if name == "" {
		c.mu.RLock()
		switch {
		case len(c.order) == 1:
			name = c.order[0]
		case c.corpora["default"] != nil:
			name = "default"
		}
		c.mu.RUnlock()
		if name == "" {
			return nil, "", fmt.Errorf("catalog: %w (%d corpora served)", ErrCorpusRequired, c.Len())
		}
	}
	e, err := c.Get(name)
	return e, name, err
}

// revive warm-starts an evicted corpus from its snapshot.
func (c *Catalog) revive(co *corpus) (*xclean.Engine, error) {
	co.buildMu.Lock()
	defer co.buildMu.Unlock()
	if e := co.engine.Load(); e != nil { // lost the race to another revive
		return e, nil
	}
	co.mu.Lock()
	snapshot, state, err := co.snapshot, co.state, co.err
	co.mu.Unlock()
	if snapshot == "" {
		if err != nil {
			return nil, fmt.Errorf("catalog: %w: %q (state %s): %v", ErrNotServing, co.name, state, err)
		}
		return nil, fmt.Errorf("catalog: %w: %q (state %s)", ErrNotServing, co.name, state)
	}
	if err := c.openSnapshot(co); err != nil {
		return nil, err
	}
	return co.engine.Load(), nil
}

// openSnapshot loads co.snapshot and swaps the engine in, recording
// the warm-start timing. Caller holds buildMu (or the corpus is not
// yet visible).
func (c *Catalog) openSnapshot(co *corpus) error {
	start := time.Now()
	eng, err := xclean.OpenIndexFile(co.snapshot, c.cfg.Options)
	if err != nil {
		co.mu.Lock()
		co.state = StateFailed
		co.err = err
		co.mu.Unlock()
		// A truncated or corrupt snapshot must never be papered over:
		// the failure is logged here and kept in the corpus status.
		if c.cfg.Logger != nil {
			c.cfg.Logger.Error("corpus warm-start failed", "corpus", co.name,
				"snapshot", co.snapshot, "err", err)
		}
		return fmt.Errorf("catalog: corpus %q: warm-start: %w", co.name, err)
	}
	took := time.Since(start)
	eng.SetObserver(co.sink)
	co.engine.Store(eng)
	co.mu.Lock()
	co.state = StateReady
	co.err = nil
	co.warmStarts++
	co.lastBuild = took
	co.buildKind = "snapshot"
	co.warmStart = took
	if co.docs == 0 {
		co.docs = 1
	}
	co.stats = engineStats(eng)
	co.mu.Unlock()
	c.notifySwap(co.name)
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("corpus warm-started from snapshot", "corpus", co.name,
			"snapshot", co.snapshot, "tookMillis", millis(took))
	}
	c.maintWG.Add(1)
	go c.postOpenMaintenance(co, eng)
	return nil
}

// postOpenMaintenance runs after every warm-start, off the serving
// path. Two jobs:
//
//   - Integrity: opening a seg snapshot verifies only the schema
//     sections (that is what makes warm-start O(1) in corpus size), so
//     the full checksum pass over the data sections runs here. On a
//     mismatch the engine is withdrawn, the corpus turns failed with
//     the error in its status, and the snapshot path is cleared so
//     revival cannot silently re-serve the corrupt file.
//   - Version negotiation: a corpus warm-started from a legacy gob
//     .idx snapshot under SnapshotFormat "seg" is rewritten to the seg
//     format once, in the background, so the next start mmaps.
func (c *Catalog) postOpenMaintenance(co *corpus, eng *xclean.Engine) {
	defer c.maintWG.Done()
	if err := eng.VerifySnapshot(); err != nil {
		co.buildMu.Lock()
		defer co.buildMu.Unlock()
		if co.engine.Load() != eng {
			return // already swapped for a newer engine; nothing to withdraw
		}
		co.engine.Store(nil)
		co.mu.Lock()
		bad := co.snapshot
		co.snapshot = ""
		co.state = StateFailed
		co.err = fmt.Errorf("snapshot %s failed verification: %w", bad, err)
		co.mu.Unlock()
		c.notifySwap(co.name)
		if c.cfg.Logger != nil {
			c.cfg.Logger.Error("corpus snapshot failed verification; engine withdrawn",
				"corpus", co.name, "snapshot", bad, "err", err)
		}
		return
	}
	co.mu.Lock()
	legacy := filepath.Ext(co.snapshot) == ".idx"
	done := co.rewrote
	co.rewrote = true
	co.mu.Unlock()
	if c.cfg.SnapshotDir == "" || c.cfg.snapshotExt() != ".seg" || !legacy || done {
		return
	}
	co.buildMu.Lock()
	defer co.buildMu.Unlock()
	if co.engine.Load() != eng {
		return
	}
	path, err := c.writeSnapshot(co.name, eng)
	if err != nil {
		if c.cfg.Logger != nil {
			c.cfg.Logger.Error("legacy snapshot rewrite failed", "corpus", co.name, "err", err)
		}
		return
	}
	co.mu.Lock()
	old := co.snapshot
	co.snapshot = path
	co.mu.Unlock()
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("legacy snapshot rewritten to seg format", "corpus", co.name,
			"from", old, "to", path)
	}
}

// Reload rebuilds the named corpus from its source and swaps the new
// engine in atomically on success. On failure the previous engine (if
// any) keeps serving, the error is recorded in the status, and Reload
// returns it. Concurrent Suggest traffic is never blocked: the build
// runs outside the read path, and the swap is one atomic store.
func (c *Catalog) Reload(name string) error {
	co, err := c.lookup(name)
	if err != nil {
		return err
	}
	return c.rebuild(co)
}

func (c *Catalog) rebuild(co *corpus) error {
	co.buildMu.Lock()
	defer co.buildMu.Unlock()
	if co.source == "" {
		// Snapshot-only corpus: reload = re-open the snapshot.
		return c.openSnapshot(co)
	}

	start := time.Now()
	eng, docs, mtime, err := c.buildXML(co.source)
	took := time.Since(start)
	if err != nil {
		co.mu.Lock()
		co.state = StateFailed
		co.err = err
		serving := co.engine.Load() != nil
		co.mu.Unlock()
		if c.cfg.Logger != nil {
			c.cfg.Logger.Error("corpus build failed", "corpus", co.name,
				"source", co.source, "serving", serving, "err", err)
		}
		return fmt.Errorf("catalog: corpus %q: %w", co.name, err)
	}

	snapshot, snapErr := c.writeSnapshot(co.name, eng)

	eng.SetObserver(co.sink)
	co.engine.Store(eng) // the atomic hot-swap
	co.mu.Lock()
	co.state = StateReady
	co.err = nil
	co.docs = docs
	co.builds++
	co.lastBuild = took
	co.buildKind = "xml"
	co.coldBuild = took
	co.mtime = mtime
	if snapshot != "" {
		co.snapshot = snapshot
	}
	co.stats = engineStats(eng)
	co.mu.Unlock()
	c.notifySwap(co.name)
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("corpus built from XML", "corpus", co.name, "source", co.source,
			"docs", docs, "tookMillis", millis(took), "snapshot", snapshot)
		if snapErr != nil {
			c.cfg.Logger.Error("snapshot write failed", "corpus", co.name, "err", snapErr)
		}
	}
	return nil
}

// buildXML opens one file, or joins a directory's *.xml files under a
// virtual root, returning the engine, document count, and the newest
// source mtime (for change detection).
func (c *Catalog) buildXML(source string) (*xclean.Engine, int, time.Time, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	if !fi.IsDir() {
		eng, err := xclean.OpenFile(source, c.cfg.Options)
		return eng, 1, fi.ModTime(), err
	}
	files, mtime, err := xmlFiles(source)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	if len(files) == 0 {
		return nil, 0, time.Time{}, fmt.Errorf("no *.xml files in %s", source)
	}
	open := make([]*os.File, 0, len(files))
	defer func() {
		for _, f := range open {
			f.Close()
		}
	}()
	readers := make([]io.Reader, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, time.Time{}, err
		}
		open = append(open, f)
		readers = append(readers, f)
	}
	eng, err := xclean.OpenCollection(filepath.Base(source), c.cfg.Options, readers...)
	return eng, len(files), mtime, err
}

// xmlFiles lists dir's *.xml entries sorted by name and the newest
// mtime among them.
func xmlFiles(dir string) ([]string, time.Time, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, time.Time{}, err
	}
	var (
		files  []string
		newest time.Time
	)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // raced with a delete
			}
			return nil, time.Time{}, err
		}
		files = append(files, filepath.Join(dir, e.Name()))
		if info.ModTime().After(newest) {
			newest = info.ModTime()
		}
	}
	sort.Strings(files)
	return files, newest, nil
}

// writeSnapshot persists the engine's index to SnapshotDir atomically
// (temp file + rename). Returns the final path, or "" when snapshots
// are disabled.
func (c *Catalog) writeSnapshot(name string, eng *xclean.Engine) (string, error) {
	if c.cfg.SnapshotDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(c.cfg.SnapshotDir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(c.cfg.SnapshotDir, name+c.cfg.snapshotExt())
	if c.cfg.snapshotExt() == ".seg" {
		// SaveSnapshot is itself atomic (temp + rename) and emits the
		// mmap-able columnar format; a segmented engine flattens first.
		if err := eng.SaveSnapshot(final); err != nil {
			return "", err
		}
		return final, nil
	}
	tmp, err := os.CreateTemp(c.cfg.SnapshotDir, name+".idx.tmp*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := eng.SaveIndex(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return final, nil
}

// mutate runs one document write against the named corpus's engine
// under the corpus build mutex, so live writes, rebuilds, revivals,
// and evictions all share the engine's single-writer contract. On
// success it refreshes the cached doc count and index stats and fires
// the swap hooks — the corpus's answers changed, so the serving layer
// must drop its cached suggestions.
func (c *Catalog) mutate(name string, docsDelta int, fn func(*xclean.Engine) error) error {
	co, err := c.lookup(name)
	if err != nil {
		return err
	}
	if _, err := c.Get(name); err != nil { // revive if evicted
		return err
	}
	co.buildMu.Lock()
	defer co.buildMu.Unlock()
	eng := co.engine.Load()
	if eng == nil {
		return fmt.Errorf("catalog: %w: %q", ErrNotServing, name)
	}
	if err := fn(eng); err != nil {
		return err
	}
	co.mu.Lock()
	co.docs += docsDelta
	co.stats = engineStats(eng)
	co.mu.Unlock()
	c.notifySwap(co.name)
	return nil
}

// AddDocumentTo streams one XML document into the named corpus's live
// index (Engine.AddDocument): it is searchable as soon as the call
// returns, absorbed by the segment stack's mutable tail. Live writes
// mutate only the resident engine — a later rebuild from source or
// revival from snapshot serves the corpus as of that artifact.
func (c *Catalog) AddDocumentTo(name string, r io.Reader) error {
	return c.mutate(name, 1, func(e *xclean.Engine) error { return e.AddDocument(r) })
}

// RemoveDocumentFrom removes the document rooted at the given
// top-level Dewey code from the named corpus (Engine.RemoveDocument):
// a tombstone for sealed content, an outright drop for still-buffered
// tail content. The same persistence caveat as AddDocumentTo applies.
func (c *Catalog) RemoveDocumentFrom(name, code string) error {
	return c.mutate(name, -1, func(e *xclean.Engine) error { return e.RemoveDocument(code) })
}

// CompactCorpus synchronously runs at most one segment-compaction step
// (tombstone purge or small-segment merge) on the named corpus,
// reporting whether any work was done.
func (c *Catalog) CompactCorpus(ctx context.Context, name string) (bool, error) {
	eng, err := c.Get(name)
	if err != nil {
		return false, err
	}
	return eng.CompactNow(ctx)
}

// FlushCorpus flattens the named corpus's segment stack — tail sealed,
// tombstones purged — into a single segment, restoring the monolithic
// fast path.
func (c *Catalog) FlushCorpus(ctx context.Context, name string) error {
	eng, err := c.Get(name)
	if err != nil {
		return err
	}
	return eng.FlushSegments(ctx)
}

// Remove drops the corpus from the catalog. In-flight requests holding
// its engine finish normally; the snapshot file (if any) is left on
// disk.
func (c *Catalog) Remove(name string) error {
	co, err := c.lookup(name)
	if err != nil {
		return err
	}
	c.unregister(name)
	co.engine.Store(nil)
	c.notifySwap(co.name)
	return nil
}

// EvictIdle drops the engines of ready corpora idle past IdleTTL that
// have a snapshot to revive from, returning how many were evicted.
func (c *Catalog) EvictIdle() int {
	if c.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := c.cfg.now().Add(-c.cfg.IdleTTL).UnixNano()
	evicted := 0
	for _, co := range c.snapshotCorpora() {
		if c.evictOne(co, cutoff) {
			evicted++
		}
	}
	return evicted
}

func (c *Catalog) evictOne(co *corpus, cutoff int64) bool {
	// TryLock: never stall the janitor behind an in-flight build, and
	// never evict mid-build (the build will swap a fresh engine in).
	if !co.buildMu.TryLock() {
		return false
	}
	defer co.buildMu.Unlock()
	last := co.lastAccess.Load()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.state != StateReady || co.snapshot == "" || co.engine.Load() == nil || last > cutoff {
		return false
	}
	co.engine.Store(nil)
	co.state = StateEvicted
	co.evictions++
	// Hooks run with co.mu held here — the OnSwap contract (fast, no
	// calls back into the Catalog) keeps that safe.
	c.notifySwap(co.name)
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("corpus evicted (idle)", "corpus", co.name,
			"idle", time.Duration(c.cfg.now().UnixNano()-last).Round(time.Second))
	}
	return true
}

// snapshotCorpora copies the current corpus set (so sweeps don't hold
// the registry lock across builds).
func (c *Catalog) snapshotCorpora() []*corpus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*corpus, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.corpora[name])
	}
	return out
}

// SweepSources reloads every corpus whose source file (or any *.xml in
// its source directory) has an mtime newer than the one captured at
// its last successful build. Returns the number of corpora reloaded
// (successfully or not — a failed rebuild surfaces via status).
func (c *Catalog) SweepSources() int {
	reloaded := 0
	for _, co := range c.snapshotCorpora() {
		if co.source == "" {
			continue
		}
		co.mu.Lock()
		prev, state := co.mtime, co.state
		co.mu.Unlock()
		if state == StateLoading {
			continue
		}
		mtime, err := sourceMtime(co.source)
		if err != nil || !mtime.After(prev) {
			continue
		}
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("source changed, rebuilding", "corpus", co.name, "source", co.source)
		}
		_ = c.rebuild(co) // failure keeps the old engine; status carries the error
		reloaded++
	}
	return reloaded
}

func sourceMtime(source string) (time.Time, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return time.Time{}, err
	}
	if !fi.IsDir() {
		return fi.ModTime(), nil
	}
	_, mtime, err := xmlFiles(source)
	return mtime, err
}

// Watch runs the maintenance loop until ctx is done: every interval it
// evicts idle engines and — when reload is true — rebuilds corpora
// whose sources changed.
func (c *Catalog) Watch(ctx context.Context, interval time.Duration, reload bool) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if reload {
				c.SweepSources()
			}
			c.EvictIdle()
		}
	}
}

// Len returns the number of registered corpora.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.corpora)
}

// Names lists the corpora in registration order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Status reports one corpus's state.
func (c *Catalog) Status(name string) (Status, error) {
	co, err := c.lookup(name)
	if err != nil {
		return Status{}, err
	}
	return co.status(), nil
}

// List reports every corpus's status, in registration order.
func (c *Catalog) List() []Status {
	corpora := c.snapshotCorpora()
	out := make([]Status, len(corpora))
	for i, co := range corpora {
		out[i] = co.status()
	}
	return out
}

func (co *corpus) status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := Status{
		Name:            co.name,
		State:           co.state,
		Serving:         co.engine.Load() != nil,
		Source:          co.source,
		Snapshot:        co.snapshot,
		Docs:            co.docs,
		Builds:          co.builds,
		WarmStarts:      co.warmStarts,
		Evictions:       co.evictions,
		LastBuildMillis: millis(co.lastBuild),
		LastBuildKind:   co.buildKind,
		ColdBuildMillis: millis(co.coldBuild),
		WarmStartMillis: millis(co.warmStart),
		Stats:           co.stats,
	}
	if co.err != nil {
		st.Error = co.err.Error()
	}
	if last := co.lastAccess.Load(); last != 0 {
		st.LastAccess = time.Unix(0, last).UTC().Format(time.RFC3339Nano)
	}
	if e := co.engine.Load(); e != nil {
		st.Seg = e.SegmentStats()
	}
	return st
}

// Sinks returns the per-corpus metrics sinks in registration order
// (the JSON side of /metricz).
func (c *Catalog) Sinks() map[string]*obs.Sink {
	out := make(map[string]*obs.Sink)
	for _, co := range c.snapshotCorpora() {
		out[co.name] = co.sink
	}
	return out
}

// WritePrometheus emits the catalog's metrics in Prometheus text
// exposition format: per-corpus engine sinks labeled corpus="<name>"
// under <ns>, plus catalog-level lifecycle series under <ns>_catalog.
func (c *Catalog) WritePrometheus(w io.Writer, ns string) {
	if ns == "" {
		ns = "xclean_engine"
	}
	corpora := c.snapshotCorpora()
	named := make([]obs.NamedSink, len(corpora))
	for i, co := range corpora {
		named[i] = obs.NamedSink{Label: co.name, Sink: co.sink}
	}
	obs.WritePrometheusLabeled(w, ns, "corpus", named)

	cns := ns + "_catalog"
	obs.WriteHeader(w, cns+"_serving", "1 when the corpus has a resident engine, else 0.", "gauge")
	statuses := make([]Status, len(corpora))
	for i, co := range corpora {
		statuses[i] = co.status()
	}
	for _, st := range statuses {
		v := 0.0
		if st.Serving {
			v = 1
		}
		obs.WriteLabeledGaugeSample(w, cns+"_serving", label(st.Name), v)
	}
	obs.WriteHeader(w, cns+"_builds_total", "Successful XML builds per corpus.", "counter")
	for _, st := range statuses {
		obs.WriteLabeledCounterSample(w, cns+"_builds_total", label(st.Name), int64(st.Builds))
	}
	obs.WriteHeader(w, cns+"_warm_starts_total", "Snapshot warm-starts per corpus.", "counter")
	for _, st := range statuses {
		obs.WriteLabeledCounterSample(w, cns+"_warm_starts_total", label(st.Name), int64(st.WarmStarts))
	}
	obs.WriteHeader(w, cns+"_evictions_total", "Idle evictions per corpus.", "counter")
	for _, st := range statuses {
		obs.WriteLabeledCounterSample(w, cns+"_evictions_total", label(st.Name), int64(st.Evictions))
	}
	obs.WriteHeader(w, cns+"_last_build_seconds", "Duration of the last successful build or warm-start.", "gauge")
	for _, st := range statuses {
		obs.WriteLabeledGaugeSample(w, cns+"_last_build_seconds", label(st.Name), st.LastBuildMillis/1000)
	}
}

func label(name string) string { return fmt.Sprintf("corpus=%q", name) }

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func engineStats(e *xclean.Engine) xclean.IndexStats { return e.Stats() }
