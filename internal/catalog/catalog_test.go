package catalog

import (
	"bytes"

	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xclean"
	"xclean/internal/dataset"
)

const corpusA = `<dblp>
  <article><author>jonathan rose</author><title>fpga architecture synthesis</title></article>
  <article><author>jonathan rose</author><title>reconfigurable fpga routing</title></article>
  <article><author>mary smith</author><title>database indexing structures</title></article>
</dblp>`

const corpusB = `<bib>
  <paper><author>alan turing</author><title>computing machinery intelligence</title></paper>
  <paper><author>claude shannon</author><title>mathematical theory communication</title></paper>
</bib>`

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func newTestCatalog(t *testing.T, cfg Config) (*Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	if cfg.SnapshotDir == "" {
		cfg.SnapshotDir = filepath.Join(dir, "snapshots")
	}
	return New(cfg), dir
}

func TestAddResolveSuggest(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}

	// Named and default resolution agree for a single corpus.
	eng, name, err := c.Resolve("")
	if err != nil || name != "dblp" {
		t.Fatalf("Resolve(\"\") = %q, %v", name, err)
	}
	sugs := eng.Suggest("rose architecure fpga")
	if len(sugs) == 0 || sugs[0].Query != "rose architecture fpga" {
		t.Fatalf("suggestions = %+v", sugs)
	}

	st, err := c.Status("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateReady || !st.Serving || st.Docs != 1 || st.Builds != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.Snapshot == "" {
		t.Error("no snapshot recorded despite SnapshotDir")
	}
	if _, err := os.Stat(st.Snapshot); err != nil {
		t.Errorf("snapshot file missing: %v", err)
	}
	if st.LastAccess == "" {
		t.Error("last access not recorded")
	}
	if st.ColdBuildMillis <= 0 {
		t.Error("cold build timing not recorded")
	}
}

func TestResolveRequiresCorpusWhenAmbiguous(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	writeFile(t, filepath.Join(dir, "a.xml"), corpusA)
	writeFile(t, filepath.Join(dir, "b.xml"), corpusB)
	if err := c.Add("a", filepath.Join(dir, "a.xml")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b", filepath.Join(dir, "b.xml")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Resolve(""); err == nil {
		t.Error("Resolve(\"\") should fail with two corpora and no default")
	}
	if _, _, err := c.Resolve("nope"); err == nil {
		t.Error("Resolve of unknown corpus should fail")
	}
	if _, name, err := c.Resolve("b"); err != nil || name != "b" {
		t.Errorf("Resolve(b) = %q, %v", name, err)
	}
}

func TestDirectoryCorpus(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	docs := filepath.Join(dir, "docs")
	if err := os.Mkdir(docs, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(docs, "a.xml"), corpusA)
	writeFile(t, filepath.Join(docs, "b.xml"), corpusB)
	writeFile(t, filepath.Join(docs, "notes.txt"), "ignored")
	if err := c.Add("joined", docs); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("joined")
	if st.Docs != 2 {
		t.Errorf("docs = %d, want 2", st.Docs)
	}
	eng, err := c.Get("joined")
	if err != nil {
		t.Fatal(err)
	}
	// Keywords from both files answer under the joined root.
	if sugs := eng.Suggest("turing computing"); len(sugs) == 0 {
		t.Error("corpus B content not searchable in joined corpus")
	}
	if sugs := eng.Suggest("rose fpga"); len(sugs) == 0 {
		t.Error("corpus A content not searchable in joined corpus")
	}
}

func TestReloadSwapsNewContent(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	writeFile(t, doc, corpusB)
	if err := c.Reload("dblp"); err != nil {
		t.Fatal(err)
	}
	eng, _ := c.Get("dblp")
	if sugs := eng.Suggest("turing computing"); len(sugs) == 0 {
		t.Error("new content not served after reload")
	}
	if sugs := eng.Suggest("rose fpga"); len(sugs) != 0 {
		t.Errorf("old content still served after reload: %+v", sugs)
	}
	st, _ := c.Status("dblp")
	if st.Builds != 2 || st.State != StateReady {
		t.Errorf("status after reload = %+v", st)
	}
}

func TestFailedReloadKeepsServing(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	before, _ := c.Get("dblp")
	want := before.Suggest("rose architecure fpga")

	// A rebuild over a corrupt document must not swap.
	writeFile(t, doc, "<dblp><article>unclosed")
	if err := c.Reload("dblp"); err == nil {
		t.Fatal("reload of corrupt XML should fail")
	}
	st, _ := c.Status("dblp")
	if st.State != StateFailed {
		t.Errorf("state = %s, want failed", st.State)
	}
	if !st.Serving {
		t.Error("previous engine should keep serving after a failed rebuild")
	}
	if st.Error == "" {
		t.Error("error not surfaced in status")
	}
	after, err := c.Get("dblp")
	if err != nil {
		t.Fatalf("Get after failed reload: %v", err)
	}
	if got := after.Suggest("rose architecure fpga"); !reflect.DeepEqual(got, want) {
		t.Errorf("suggestions changed after failed reload:\n got %+v\nwant %+v", got, want)
	}

	// Fixing the source recovers the corpus.
	writeFile(t, doc, corpusB)
	if err := c.Reload("dblp"); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status("dblp")
	if st.State != StateReady || st.Error != "" {
		t.Errorf("status after recovery = %+v", st)
	}
}

// TestEvictionWarmStart is the eviction acceptance test: an idle corpus
// is evicted, revives transparently from its snapshot on the next Get,
// and the warm-start is measurably faster than the cold XML build
// (timings logged by the catalog and asserted from its status).
func TestEvictionWarmStart(t *testing.T) {
	// A corpus big enough that parse+index time dominates gob decode.
	gen := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 11, Articles: 2000})
	var xml bytes.Buffer
	if _, err := gen.Tree.WriteXML(&xml); err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	clock := func() time.Time { return now }
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	c, dir := newTestCatalog(t, Config{IdleTTL: time.Minute, Logger: logger, Now: clock})
	doc := filepath.Join(dir, "big.xml")
	writeFile(t, doc, xml.String())
	if err := c.Add("big", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("big"); err != nil {
		t.Fatal(err)
	}

	// Not yet idle: nothing evicted.
	if n := c.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d corpora before TTL", n)
	}
	// Jump the clock past the TTL.
	now = now.Add(2 * time.Minute)
	if n := c.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d corpora, want 1", n)
	}
	st, _ := c.Status("big")
	if st.State != StateEvicted || st.Serving || st.Evictions != 1 {
		t.Errorf("status after eviction = %+v", st)
	}

	// The next Get revives from the snapshot.
	eng, err := c.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if sugs := eng.Suggest("database indexing"); len(sugs) == 0 {
		t.Error("revived engine returns no suggestions")
	}
	st, _ = c.Status("big")
	if st.State != StateReady || st.WarmStarts != 1 || st.LastBuildKind != "snapshot" {
		t.Errorf("status after revival = %+v", st)
	}
	if st.WarmStartMillis <= 0 || st.ColdBuildMillis <= 0 {
		t.Fatalf("timings not recorded: %+v", st)
	}
	if st.WarmStartMillis >= st.ColdBuildMillis {
		t.Errorf("warm start (%.1fms) not faster than cold XML build (%.1fms)",
			st.WarmStartMillis, st.ColdBuildMillis)
	}
	t.Logf("cold build %.1fms, warm start %.1fms (%.1fx speedup)",
		st.ColdBuildMillis, st.WarmStartMillis, st.ColdBuildMillis/st.WarmStartMillis)

	// The timings are also logged at load time.
	logs := logBuf.String()
	if !strings.Contains(logs, "corpus built from XML") || !strings.Contains(logs, "tookMillis") {
		t.Errorf("cold build not logged with timing:\n%s", logs)
	}
	if !strings.Contains(logs, "corpus warm-started from snapshot") {
		t.Errorf("warm start not logged:\n%s", logs)
	}
	if !strings.Contains(logs, "corpus evicted (idle)") {
		t.Errorf("eviction not logged:\n%s", logs)
	}
}

func TestEvictionSkippedWithoutSnapshot(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	// SnapshotDir intentionally left empty: nothing to revive from.
	c := New(Config{IdleTTL: time.Minute, Now: func() time.Time { return now }})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	if n := c.EvictIdle(); n != 0 {
		t.Errorf("evicted %d corpora without snapshots", n)
	}
	if st, _ := c.Status("dblp"); st.State != StateReady {
		t.Errorf("state = %s", st.State)
	}
}

func TestAddSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	eng, err := xclean.Open(strings.NewReader(corpusA), xclean.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "a.idx")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c := New(Config{})
	if err := c.AddSnapshot("frozen", snap); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("frozen")
	if err != nil {
		t.Fatal(err)
	}
	if sugs := got.Suggest("rose fpga"); len(sugs) == 0 {
		t.Error("snapshot-backed corpus returns no suggestions")
	}
	st, _ := c.Status("frozen")
	if st.WarmStarts != 1 || st.LastBuildKind != "snapshot" || st.Source != "" {
		t.Errorf("status = %+v", st)
	}
}

func TestSweepSourcesReloadsOnMtimeChange(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	if n := c.SweepSources(); n != 0 {
		t.Fatalf("sweep reloaded %d unchanged corpora", n)
	}
	writeFile(t, doc, corpusB)
	// Force the mtime visibly forward (coarse filesystem clocks).
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(doc, future, future); err != nil {
		t.Fatal(err)
	}
	if n := c.SweepSources(); n != 1 {
		t.Fatalf("sweep reloaded %d corpora, want 1", n)
	}
	eng, _ := c.Get("dblp")
	if sugs := eng.Suggest("turing computing"); len(sugs) == 0 {
		t.Error("sweep did not pick up the new content")
	}
}

func TestAddErrors(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	if err := c.Add("bad/name", filepath.Join(dir, "a.xml")); err == nil {
		t.Error("invalid name accepted")
	}
	if err := c.Add("missing", filepath.Join(dir, "nope.xml")); err == nil {
		t.Error("missing source accepted")
	}
	if c.Len() != 0 {
		t.Errorf("failed adds left %d corpora registered", c.Len())
	}
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("dblp", doc); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := c.Remove("dblp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("dblp"); err == nil {
		t.Error("removed corpus still resolvable")
	}
}

// TestConcurrentSuggestDuringHotSwap drives Suggest traffic from many
// goroutines while the corpus is rebuilt (successfully and
// unsuccessfully) and evicted/revived. Run under -race this is the
// hot-swap safety test; in any mode it asserts zero failed requests.
func TestConcurrentSuggestDuringHotSwap(t *testing.T) {
	now := atomic.Int64{}
	now.Store(time.Now().UnixNano())
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	c, dir := newTestCatalog(t, Config{IdleTTL: time.Minute, Now: clock})
	doc := filepath.Join(dir, "a.xml")
	writeFile(t, doc, corpusA)
	if err := c.Add("dblp", doc); err != nil {
		t.Fatal(err)
	}

	var (
		stop     atomic.Bool
		failures atomic.Int64
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				eng, _, err := c.Resolve("dblp")
				if err != nil {
					failures.Add(1)
					continue
				}
				if sugs := eng.Suggest("rose architecure fpga"); len(sugs) == 0 {
					// corpusB generations answer this query with nothing
					// valid; only a nil engine would be a bug, and that is
					// caught above. Count successful calls either way.
				}
				requests.Add(1)
			}
		}()
	}

	// Gate each round on fresh traffic so swaps demonstrably interleave
	// with serving (the bare loop can finish before the workers are even
	// scheduled).
	waitTraffic := func() {
		base := requests.Load()
		deadline := time.Now().Add(5 * time.Second)
		for requests.Load() == base && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if requests.Load() == base {
			t.Fatal("workers served no traffic within the deadline")
		}
	}

	for round := 0; round < 6; round++ {
		waitTraffic()
		content := corpusA
		if round%2 == 1 {
			content = corpusB
		}
		writeFile(t, doc, content)
		if err := c.Reload("dblp"); err != nil {
			t.Errorf("reload round %d: %v", round, err)
		}
		// A failed rebuild mid-traffic must not disturb serving either.
		writeFile(t, doc, "<broken")
		if err := c.Reload("dblp"); err == nil {
			t.Error("corrupt reload unexpectedly succeeded")
		}
		writeFile(t, doc, content)
		// And an eviction/revival cycle in the middle of traffic.
		now.Store(clock().Add(2 * time.Minute).UnixNano())
		c.EvictIdle()
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Errorf("%d failed requests during hot swaps (of %d)", failures.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Error("no traffic was served during the test")
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	c, dir := newTestCatalog(t, Config{})
	writeFile(t, filepath.Join(dir, "a.xml"), corpusA)
	writeFile(t, filepath.Join(dir, "b.xml"), corpusB)
	if err := c.Add("alpha", filepath.Join(dir, "a.xml")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("beta", filepath.Join(dir, "b.xml")); err != nil {
		t.Fatal(err)
	}
	eng, _ := c.Get("alpha")
	eng.Suggest("rose fpga")

	var buf bytes.Buffer
	c.WritePrometheus(&buf, "xclean_engine")
	out := buf.String()
	for _, want := range []string{
		`xclean_engine_suggest_requests_total{corpus="alpha"} 1`,
		`xclean_engine_suggest_requests_total{corpus="beta"} 0`,
		`xclean_engine_catalog_serving{corpus="alpha"} 1`,
		`xclean_engine_catalog_builds_total{corpus="beta"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if n := strings.Count(out, "# TYPE xclean_engine_suggest_requests_total counter"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

// syncBuffer is a bytes.Buffer safe for concurrent writes (slog handler
// may be driven from several goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
