package tokenizer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Keyword Search on XML-data, 2011 edition!")
	want := []string{"keyword", "search", "xml", "data", "edition"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeDropsShortStopNumeric(t *testing.T) {
	got := Tokenize("a an the 42 ab go trees 007")
	want := []string{"trees"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Hinrich Schütze geo-tagging")
	want := []string{"hinrich", "schütze", "geo", "tagging"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeOptions(t *testing.T) {
	o := Options{MinLength: 1, KeepNumbers: true, KeepStopwords: true}
	got := o.Tokenize("a 42 the ok")
	want := []string{"a", "42", "the", "ok"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeRaw(t *testing.T) {
	got := TokenizeRaw("The TREE, a icdt!")
	want := []string{"the", "tree", "a", "icdt"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input -> %v", got)
	}
	if got := Tokenize("  ,.;:!  "); len(got) != 0 {
		t.Errorf("punctuation-only input -> %v", got)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("tree") {
		t.Error("stopword classification wrong")
	}
}

// Property: every kept token is lowercase, ≥3 bytes, not a stop word,
// and not numeric.
func TestTokenizeInvariants(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < 3 || stopwords[tok] || isNumber(tok) {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing is idempotent — re-tokenizing the joined output
// reproduces it.
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		first := Tokenize(s)
		joined := ""
		for _, tok := range first {
			joined += tok + " "
		}
		second := Tokenize(joined)
		return reflect.DeepEqual(first, second) || (len(first) == 0 && len(second) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	v.Add("tree", 3)
	v.Add("icde", 1)
	v.Add("tree", 2)

	if !v.Contains("tree") || v.Contains("trie") {
		t.Error("Contains wrong")
	}
	if v.Count("tree") != 5 || v.Count("icde") != 1 || v.Count("none") != 0 {
		t.Error("Count wrong")
	}
	if v.Total() != 6 || v.Size() != 2 {
		t.Errorf("Total=%d Size=%d", v.Total(), v.Size())
	}

	pTree, pIcde, pUnk := v.Prob("tree"), v.Prob("icde"), v.Prob("zzz")
	if !(pTree > pIcde && pIcde > pUnk && pUnk > 0) {
		t.Errorf("prob ordering wrong: %f %f %f", pTree, pIcde, pUnk)
	}

	seen := map[string]int64{}
	v.Terms(func(w string, c int64) { seen[w] = c })
	if seen["tree"] != 5 || seen["icde"] != 1 {
		t.Errorf("Terms iteration wrong: %v", seen)
	}
}

func TestVocabularyEmptyProb(t *testing.T) {
	v := NewVocabulary()
	if v.Prob("x") != 0 {
		t.Error("empty vocabulary should have zero prob")
	}
}

// Property: probabilities of observed terms sum to (roughly) ≤ 1 given
// add-one smoothing mass is shared with unknowns.
func TestVocabularyProbMass(t *testing.T) {
	v := NewVocabulary()
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i, w := range words {
		v.Add(w, int64(i+1))
	}
	sum := 0.0
	for _, w := range words {
		sum += v.Prob(w)
	}
	if sum <= 0 || sum > 1.0000001 {
		t.Errorf("probability mass of observed terms = %f", sum)
	}
}

func TestVocabularySub(t *testing.T) {
	v := NewVocabulary()
	v.Add("alpha", 5)
	v.Add("beta", 2)

	v.Sub("alpha", 3)
	if v.Count("alpha") != 2 || v.Total() != 4 {
		t.Errorf("after partial sub: count=%d total=%d", v.Count("alpha"), v.Total())
	}
	// Subtracting to (or past) zero deletes the term and caps at the
	// available count.
	v.Sub("alpha", 10)
	if v.Contains("alpha") || v.Total() != 2 || v.Size() != 1 {
		t.Errorf("after over-sub: contains=%v total=%d size=%d",
			v.Contains("alpha"), v.Total(), v.Size())
	}
	// Unknown terms are a no-op.
	v.Sub("gamma", 1)
	if v.Total() != 2 {
		t.Errorf("unknown sub changed total: %d", v.Total())
	}
	v.Sub("beta", 2)
	if v.Size() != 0 || v.Total() != 0 {
		t.Errorf("emptied vocab: size=%d total=%d", v.Size(), v.Total())
	}
}
