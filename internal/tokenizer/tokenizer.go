// Package tokenizer splits XML text contents and keyword queries into
// index tokens. Following Section VII-A of the XClean paper, text is
// split on whitespace and punctuation, lowercased, and stop words,
// pure numbers, and tokens shorter than three characters are dropped
// from the indexable stream.
package tokenizer

import (
	"strings"
	"unicode"
)

// Options controls tokenization. The zero value applies the paper's
// settings (MinLength 3, stop words and numbers dropped).
type Options struct {
	// MinLength is the minimum token length kept; values < 1 mean the
	// default of 3.
	MinLength int
	// KeepNumbers retains purely numeric tokens.
	KeepNumbers bool
	// KeepStopwords retains stop words.
	KeepStopwords bool
}

func (o Options) minLen() int {
	if o.MinLength < 1 {
		return 3
	}
	return o.MinLength
}

// Default are the paper's indexing options.
var Default Options

// stopwords is a compact English stop word list. Stop words are not
// indexed and are silently dropped from queries.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
		a an and are as at be but by for from has have had he her his i
		if in into is it its not of on or she that the their them they
		this to was were will with you your we our us out up so than
		then there these those what when where which who whom why how
		all any both each few more most other some such no nor only own
		same too very can just don should now did do does doing would
		could about after again against because been before being below
		between during further here once over under while also may might
		must shall am itself himself herself themselves myself yourself`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether w (already lowercased) is a stop word.
func IsStopword(w string) bool { return stopwords[w] }

// Tokenize splits text into kept tokens using the default options.
func Tokenize(text string) []string { return Default.Tokenize(text) }

// Tokenize splits text into kept tokens.
func (o Options) Tokenize(text string) []string {
	var out []string
	o.tokenize(text, func(tok string) { out = append(out, tok) })
	return out
}

// TokenizeRaw splits text into lowercase word tokens without applying
// the stop word, number, or length filters. Query parsing uses this so
// that a user's short or misspelt-to-short keyword still reaches the
// variant generator.
func TokenizeRaw(text string) []string {
	var out []string
	eachWord(text, func(tok string) { out = append(out, tok) })
	return out
}

func (o Options) tokenize(text string, emit func(string)) {
	min := o.minLen()
	eachWord(text, func(tok string) {
		if len(tok) < min {
			return
		}
		if !o.KeepStopwords && stopwords[tok] {
			return
		}
		if !o.KeepNumbers && isNumber(tok) {
			return
		}
		emit(tok)
	})
}

// eachWord calls emit for each maximal run of letters/digits in text,
// lowercased. Unicode letters are kept (so "schütze" is one token).
func eachWord(text string, emit func(string)) {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			emit(strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
}

func isNumber(tok string) bool {
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(tok) > 0
}

// Vocabulary is the set of index tokens of a corpus with collection
// frequencies, used for variant validation and the background language
// model.
type Vocabulary struct {
	counts map[string]int64
	total  int64
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{counts: make(map[string]int64)}
}

// Add records n occurrences of token w.
func (v *Vocabulary) Add(w string, n int64) {
	v.counts[w] += n
	v.total += n
}

// Sub removes n occurrences of token w, deleting the term entirely
// when its count reaches zero (so Size and the smoothing denominator
// shrink with the corpus).
func (v *Vocabulary) Sub(w string, n int64) {
	c, ok := v.counts[w]
	if !ok {
		return
	}
	if n > c {
		n = c
	}
	v.total -= n
	if c == n {
		delete(v.counts, w)
	} else {
		v.counts[w] = c - n
	}
}

// Contains reports whether w is a vocabulary term.
func (v *Vocabulary) Contains(w string) bool {
	_, ok := v.counts[w]
	return ok
}

// Count is the collection frequency of w.
func (v *Vocabulary) Count(w string) int64 { return v.counts[w] }

// Total is the collection length (sum of all counts).
func (v *Vocabulary) Total() int64 { return v.total }

// Size is the number of distinct terms.
func (v *Vocabulary) Size() int { return len(v.counts) }

// Prob is the background unigram probability p(w|B). Unknown terms get
// a small positive epsilon probability (1 / (total + size)) so that
// smoothed models never hit exact zero.
func (v *Vocabulary) Prob(w string) float64 {
	denom := float64(v.total) + float64(len(v.counts))
	if denom == 0 {
		return 0
	}
	c, ok := v.counts[w]
	if !ok {
		return 1 / denom
	}
	return (float64(c) + 1) / denom
}

// Terms calls fn for every term; iteration order is unspecified.
func (v *Vocabulary) Terms(fn func(w string, count int64)) {
	for w, c := range v.counts {
		fn(w, c)
	}
}
