// Package resulttype infers the most probable result node type of a
// candidate query, following Eq. (7) of the XClean paper (which adopts
// the XReal formula):
//
//	U(C,p) = log(1 + Π_{w∈C} f_p^w) · r^depth(p)
//
// where f_p^w is the number of nodes of label path p whose subtree
// contains w, and r < 1 penalizes deep paths. The best type defines
// the entity decomposition used by the query generation model.
package resulttype

import (
	"math"

	"xclean/internal/invindex"
	"xclean/internal/xmltree"
)

// DefaultR is the depth reduction rate used when Inferrer.R is zero;
// the paper's examples use 0.8.
const DefaultR = 0.8

// Source supplies the statistics inference reads: the type lists
// f_p^w and path depths. invindex.Index implements it directly; the
// segmented engine substitutes a tombstone-adjusted multi-segment
// view.
type Source interface {
	TypeList(tok string) []invindex.TypeCount
	PathDepth(p xmltree.PathID) int
}

// Inferrer computes best result types against one index.
type Inferrer struct {
	Index Source
	// R is the depth reduction factor (0 = DefaultR).
	R float64
	// MinDepth is the minimal depth threshold d of Section V-B: label
	// paths shallower than this are never result types. 0 or 1 means
	// no restriction beyond the root.
	MinDepth int
}

func (in *Inferrer) r() float64 {
	if in.R <= 0 {
		return DefaultR
	}
	return in.R
}

// Utility is U(C,p) for the candidate query given as a token slice.
// It returns 0 when some token never occurs under a node of path p.
func (in *Inferrer) Utility(tokens []string, p xmltree.PathID) float64 {
	prod := 1.0
	for _, w := range tokens {
		f := int32(0)
		for _, tc := range in.Index.TypeList(w) {
			if tc.Path == p {
				f = tc.F
				break
			}
		}
		if f == 0 {
			return 0
		}
		prod *= float64(f)
	}
	depth := in.Index.PathDepth(p)
	return math.Log(1+prod) * math.Pow(in.r(), float64(depth))
}

// Best implements FindResultType(C): it intersects the type lists of
// all tokens and returns the path maximizing U(C,p), restricted to
// paths of depth ≥ MinDepth. ok is false when no type contains every
// token (the candidate query has no connected result).
func (in *Inferrer) Best(tokens []string) (best xmltree.PathID, score float64, ok bool) {
	if len(tokens) == 0 {
		return xmltree.InvalidPath, 0, false
	}
	// Start from the rarest type list to keep the intersection small.
	lists := make([][]invindex.TypeCount, len(tokens))
	minIdx := 0
	for i, w := range tokens {
		lists[i] = in.Index.TypeList(w)
		if len(lists[i]) == 0 {
			return xmltree.InvalidPath, 0, false
		}
		if len(lists[i]) < len(lists[minIdx]) {
			minIdx = i
		}
	}

	best = xmltree.InvalidPath
	r := in.r()
	for _, tc := range lists[minIdx] {
		depth := in.Index.PathDepth(tc.Path)
		if depth < in.MinDepth {
			continue
		}
		prod := float64(tc.F)
		found := true
		for i, l := range lists {
			if i == minIdx {
				continue
			}
			f := lookup(l, tc.Path)
			if f == 0 {
				found = false
				break
			}
			prod *= float64(f)
		}
		if !found {
			continue
		}
		u := math.Log(1+prod) * math.Pow(r, float64(depth))
		if best == xmltree.InvalidPath || u > score || (u == score && tc.Path < best) {
			best, score = tc.Path, u
		}
	}
	return best, score, best != xmltree.InvalidPath
}

// lookup finds path p in a type list sorted by path ID (binary search).
func lookup(l []invindex.TypeCount, p xmltree.PathID) int32 {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case l[mid].Path < p:
			lo = mid + 1
		case l[mid].Path > p:
			hi = mid
		default:
			return l[mid].F
		}
	}
	return 0
}
