package resulttype

import (
	"math"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// example3Tree reproduces the counts of Example 3 of the paper for the
// candidate query "trie icde":
//
//	f_{/a/c}^trie = 2, f_{/a/c/x}^trie = 3,
//	f_{/a/d}^trie = 2, f_{/a/d/x}^trie = 2,
//	f_{/a/c}^icde = 1, f_{/a/c/x}^icde = 1,
//	f_{/a/d}^icde = 2, f_{/a/d/x}^icde = 2.
func example3Tree() *xmltree.Tree {
	t := xmltree.NewTree("a")
	c1 := t.AddChild(t.Root, "c", "")
	t.AddChild(c1, "x", "trie icde")
	t.AddChild(c1, "x", "trie")
	c2 := t.AddChild(t.Root, "c", "")
	t.AddChild(c2, "x", "trie")
	d1 := t.AddChild(t.Root, "d", "")
	t.AddChild(d1, "x", "trie icde")
	d2 := t.AddChild(t.Root, "d", "")
	t.AddChild(d2, "x", "trie icde")
	return t
}

func TestUtilityMatchesExample3(t *testing.T) {
	tr := example3Tree()
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	in := &Inferrer{Index: ix, R: 0.8}
	paths := tr.Paths

	C := []string{"trie", "icde"}
	r := 0.8
	cases := []struct {
		path string
		prod float64
	}{
		{"/a/c", 2 * 1},
		{"/a/c/x", 3 * 1},
		{"/a/d", 2 * 2},
		{"/a/d/x", 2 * 2},
	}
	for _, c := range cases {
		id := paths.Lookup(c.path)
		want := math.Log(1+c.prod) * math.Pow(r, float64(paths.Depth(id)))
		if got := in.Utility(C, id); math.Abs(got-want) > 1e-12 {
			t.Errorf("U(C,%s)=%g want %g", c.path, got, want)
		}
	}

	// Example 3: with r=0.8, /a/d is the best result type.
	best, _, ok := in.Best(C)
	if !ok {
		t.Fatal("no best type found")
	}
	if got := paths.String(best); got != "/a/d" {
		t.Errorf("best type=%s want /a/d", got)
	}
}

func TestBestRespectesMinDepth(t *testing.T) {
	tr := example3Tree()
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	in := &Inferrer{Index: ix, R: 0.8, MinDepth: 3}
	best, _, ok := in.Best([]string{"trie", "icde"})
	if !ok {
		t.Fatal("no best type")
	}
	if got := tr.Paths.String(best); got != "/a/d/x" && got != "/a/c/x" {
		t.Errorf("best at depth>=3 = %s", got)
	}
	if tr.Paths.Depth(best) < 3 {
		t.Errorf("MinDepth violated: depth=%d", tr.Paths.Depth(best))
	}
}

func TestBestDisconnectedTokens(t *testing.T) {
	tr := xmltree.NewTree("a")
	b := tr.AddChild(tr.Root, "b", "alpha")
	_ = b
	c := tr.AddChild(tr.Root, "c", "beta")
	_ = c
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	in := &Inferrer{Index: ix, MinDepth: 2}

	// alpha and beta only share the root (/a), which MinDepth=2 bans.
	if _, _, ok := in.Best([]string{"alpha", "beta"}); ok {
		t.Error("tokens connected only at the root should have no type at depth>=2")
	}
	// Without the depth limit the root qualifies.
	in.MinDepth = 0
	best, _, ok := in.Best([]string{"alpha", "beta"})
	if !ok || tr.Paths.String(best) != "/a" {
		t.Errorf("best=%v ok=%v", best, ok)
	}
}

func TestBestUnknownToken(t *testing.T) {
	tr := example3Tree()
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	in := &Inferrer{Index: ix}
	if _, _, ok := in.Best([]string{"trie", "nosuchtoken"}); ok {
		t.Error("unknown token should yield no type")
	}
	if _, _, ok := in.Best(nil); ok {
		t.Error("empty candidate should yield no type")
	}
}

func TestUtilityZeroForAbsentPath(t *testing.T) {
	tr := example3Tree()
	ix := invindex.Build(tr, tokenizer.Options{MinLength: 1})
	in := &Inferrer{Index: ix}
	// icde never occurs under /a/c's second instance... pick a path
	// that lacks one token entirely: none here, so use an absent pair.
	p := tr.Paths.Lookup("/a/c/x")
	if u := in.Utility([]string{"absent"}, p); u != 0 {
		t.Errorf("U=%g want 0", u)
	}
}

func TestLookupBinarySearch(t *testing.T) {
	l := []invindex.TypeCount{{Path: 1, F: 10}, {Path: 5, F: 20}, {Path: 9, F: 30}}
	if lookup(l, 5) != 20 || lookup(l, 1) != 10 || lookup(l, 9) != 30 {
		t.Error("lookup hit wrong")
	}
	if lookup(l, 2) != 0 || lookup(l, 0) != 0 || lookup(l, 99) != 0 {
		t.Error("lookup miss wrong")
	}
	if lookup(nil, 1) != 0 {
		t.Error("lookup empty wrong")
	}
}
