package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a=%d/%v", v, ok)
	}
	// Overwrite keeps a single entry.
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a=%d after overwrite", v)
	}
	if c.Len() != 2 {
		t.Errorf("len=%d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // refresh a: b is now the oldest
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted", k)
		}
	}
}

func TestClear(t *testing.T) {
	c := New[string](4)
	c.Put("a", "x")
	c.Put("b", "y")
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("len=%d after clear", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived clear")
	}
	// Cache works after clearing.
	c.Put("a", "z")
	if v, ok := c.Get("a"); !ok || v != "z" {
		t.Error("put after clear failed")
	}
}

func TestStats(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Errorf("hits=%d misses=%d", h, m)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int](0) // clamped to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len=%d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if _, ok := c.Get(key); !ok {
					c.Put(key, i)
				}
				if i%97 == 0 {
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len=%d exceeds capacity", c.Len())
	}
}
