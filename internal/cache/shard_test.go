package cache

import (
	"container/list"
	"fmt"
	"sync"
	"testing"
)

func TestNumShards(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1},
		{2, 1},
		{64, 1},
		{127, 1},
		{128, 2},
		{256, 4},
		{512, 8},
		{1024, 16},
		{1 << 20, 16},
	}
	for _, c := range cases {
		if got := numShards(c.capacity); got != c.want {
			t.Errorf("numShards(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

// TestShardedCapacity checks that a multi-shard cache never holds more
// than its construction capacity, regardless of how keys hash.
func TestShardedCapacity(t *testing.T) {
	const capacity = 1001 // 8 shards, uneven split (125 or 126 each)
	c := New[int](capacity)
	if c.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", c.Shards())
	}
	for i := 0; i < 5*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > capacity {
		t.Errorf("Len() = %d after overfill, want <= %d", n, capacity)
	}
	// A freshly inserted key must be resident.
	c.Put("fresh", 1)
	if _, ok := c.Get("fresh"); !ok {
		t.Error("fresh key evicted immediately")
	}
}

// TestShardedClearPrefix checks prefix invalidation reaches every
// shard: entries of one prefix hash across all shards, and only they
// are removed.
func TestShardedClearPrefix(t *testing.T) {
	c := New[int](1024)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("alpha\x01key-%d", i), i)
		c.Put(fmt.Sprintf("beta\x01key-%d", i), i)
	}
	before := c.Len()
	c.ClearPrefix("alpha\x01")
	for i := 0; i < 200; i++ {
		if _, ok := c.Get(fmt.Sprintf("alpha\x01key-%d", i)); ok {
			t.Fatalf("alpha key %d survived ClearPrefix", i)
		}
		if _, ok := c.Get(fmt.Sprintf("beta\x01key-%d", i)); !ok {
			t.Fatalf("beta key %d dropped by foreign ClearPrefix", i)
		}
	}
	if n := c.Len(); n != before-200 {
		t.Errorf("Len() = %d after ClearPrefix, want %d", n, before-200)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len() = %d after Clear, want 0", c.Len())
	}
}

// TestShardedStats checks hit/miss counters aggregate across shards.
func TestShardedStats(t *testing.T) {
	c := New[int](1024)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	for i := 0; i < 100; i++ {
		c.Get(fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 40; i++ {
		c.Get(fmt.Sprintf("missing%d", i))
	}
	hits, misses := c.Stats()
	if hits != 100 || misses != 40 {
		t.Errorf("Stats() = (%d,%d), want (100,40)", hits, misses)
	}
}

// TestGetHitZeroAllocs pins the allocation-free contract of the
// cache-hit path: a steady-state Get must not allocate.
func TestGetHitZeroAllocs(t *testing.T) {
	c := New[string](1024)
	c.Put("architecure", "architecture")
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get("architecure"); !ok {
			t.Fatal("expected hit")
		}
	}); n != 0 {
		t.Errorf("Get hit allocates %.1f per call, want 0", n)
	}
}

// TestShardedConcurrent exercises the sharded cache under the race
// detector: concurrent Get/Put/Clear/ClearPrefix across all shards.
func TestShardedConcurrent(t *testing.T) {
	c := New[int](1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%64)
				c.Put(key, i)
				c.Get(key)
				switch i % 100 {
				case 50:
					c.ClearPrefix(fmt.Sprintf("g%d-", g))
				case 99:
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 1024 {
		t.Errorf("Len() = %d, want <= 1024", n)
	}
}

// BenchmarkCacheParallel measures hit throughput with all procs
// hammering the cache — the contention profile the admission gate's
// cache-hit bypass sees. Sharding should scale this with GOMAXPROCS
// where the single-mutex design serialized.
func BenchmarkCacheParallel(b *testing.B) {
	c := New[int](4096)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("query-%d-with-typical-length", i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}

// BenchmarkCacheParallelSingleShard is the identical workload forced
// onto a single shard of the same total capacity — the pre-sharding
// contention baseline (every hit serializes on one mutex).
func BenchmarkCacheParallelSingleShard(b *testing.B) {
	c := &LRU[int]{shards: make([]lruShard[int], 1)}
	c.shards[0] = lruShard[int]{
		capacity: 4096,
		ll:       list.New(),
		items:    make(map[string]*list.Element, 4096),
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("query-%d-with-typical-length", i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}
