// Package cache provides a small concurrency-safe LRU used to front
// the suggestion engine in the HTTP service: "Did you mean" traffic is
// Zipfian (the same misspellings recur), so caching whole suggestion
// lists by query text removes the engine from the hot path for popular
// queries. Mutating the index (AddDocument / RemoveDocument) must be
// followed by Clear.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a bounded least-recently-used map. The zero value is not
// usable; construct with New.
type LRU[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores the value for key, evicting the least recently used entry
// when full.
func (c *LRU[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[V]).key)
		}
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// Clear drops every entry (call after index mutations). Hit/miss
// counters are preserved.
func (c *LRU[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
}

// ClearPrefix drops every entry whose key starts with prefix — the
// per-corpus variant of Clear, used when one corpus of a multi-corpus
// cache is hot-swapped and only its entries are stale. An empty prefix
// clears everything. The walk is O(entries); invalidation is rare next
// to lookups, so keeping Get/Put at one map operation wins over
// maintaining a per-prefix index.
func (c *LRU[V]) ClearPrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*entry[V])
		if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
	}
}

// Len is the current number of entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *LRU[V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
