// Package cache provides a small concurrency-safe LRU used to front
// the suggestion engine in the HTTP service: "Did you mean" traffic is
// Zipfian (the same misspellings recur), so caching whole suggestion
// lists by query text removes the engine from the hot path for popular
// queries. Mutating the index (AddDocument / RemoveDocument) must be
// followed by Clear.
//
// Large caches are sharded by key hash: each shard owns a disjoint
// slice of the capacity behind its own mutex, so concurrent hits on
// different shards never serialize — the property the admission gate's
// cache-hit bypass relies on under full concurrency. Small caches
// (below shardMinCapacity entries per shard) stay single-sharded and
// keep exact global LRU order. Hit/miss counters are atomics updated
// outside the shard locks, and the hit path performs no allocation.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// maxShards bounds the shard fan-out; 16 single-mutex shards cover the
// admission gate's realistic concurrency without fragmenting tiny
// caches.
const maxShards = 16

// shardMinCapacity is the smallest per-shard capacity worth splitting
// for: below it, eviction quality (per-shard LRU approximates global
// LRU poorly at tiny sizes) costs more than the contention saved.
const shardMinCapacity = 64

// LRU is a bounded least-recently-used map. The zero value is not
// usable; construct with New. Total resident entries never exceed the
// construction capacity; with more than one shard, recency is tracked
// per shard (standard sharded-LRU semantics — eviction picks the least
// recent entry of the full shard the newcomer hashes to).
type LRU[V any] struct {
	shards []lruShard[V]
	hits   atomic.Int64
	misses atomic.Int64
}

type lruShard[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	// pad keeps neighboring shards' hot state off one cache line.
	_ [40]byte
}

type entry[V any] struct {
	key string
	val V
}

// numShards picks the shard count for a capacity: the largest power of
// two ≤ maxShards that still leaves every shard at least
// shardMinCapacity entries.
func numShards(capacity int) int {
	n := 1
	for n*2 <= maxShards && capacity/(n*2) >= shardMinCapacity {
		n *= 2
	}
	return n
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	n := numShards(capacity)
	c := &LRU[V]{shards: make([]lruShard[V], n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		c.shards[i] = lruShard[V]{
			capacity: cap,
			ll:       list.New(),
			items:    make(map[string]*list.Element, cap),
		}
	}
	return c
}

// shardFor maps a key to its shard by FNV-1a hash (inlined: the hash
// must not allocate — Get sits on the request hot path).
func (c *LRU[V]) shardFor(key string) *lruShard[V] {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&uint32(len(c.shards)-1)]
}

// Get returns the cached value for key, refreshing its recency.
func (c *LRU[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put stores the value for key, evicting the least recently used entry
// of its shard when that shard is full.
func (c *LRU[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*entry[V]).key)
		}
	}
	s.items[key] = s.ll.PushFront(&entry[V]{key: key, val: val})
}

// Clear drops every entry (call after index mutations). Hit/miss
// counters are preserved.
func (c *LRU[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element, s.capacity)
		s.mu.Unlock()
	}
}

// ClearPrefix drops every entry whose key starts with prefix — the
// per-corpus variant of Clear, used when one corpus of a multi-corpus
// cache is hot-swapped and only its entries are stale. An empty prefix
// clears everything. The walk is O(entries); invalidation is rare next
// to lookups, so keeping Get/Put at one map operation wins over
// maintaining a per-prefix index. Shards are swept one at a time, so
// lookups on other shards proceed during the sweep.
func (c *LRU[V]) ClearPrefix(prefix string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var next *list.Element
		for el := s.ll.Front(); el != nil; el = next {
			next = el.Next()
			e := el.Value.(*entry[V])
			if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
				s.ll.Remove(el)
				delete(s.items, e.key)
			}
		}
		s.mu.Unlock()
	}
}

// Len is the current number of entries.
func (c *LRU[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *LRU[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Shards reports the shard count (a sizing diagnostic).
func (c *LRU[V]) Shards() int { return len(c.shards) }
