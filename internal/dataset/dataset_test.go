package dataset

import (
	"strings"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
)

func TestGenerateDBLPDeterministic(t *testing.T) {
	a := GenerateDBLP(DBLPConfig{Seed: 1, Articles: 50})
	b := GenerateDBLP(DBLPConfig{Seed: 1, Articles: 50})
	if len(a.Articles) != 50 || len(b.Articles) != 50 {
		t.Fatalf("article counts: %d %d", len(a.Articles), len(b.Articles))
	}
	for i := range a.Articles {
		if strings.Join(a.Articles[i].Title, " ") != strings.Join(b.Articles[i].Title, " ") {
			t.Fatal("generation not deterministic")
		}
	}
	c := GenerateDBLP(DBLPConfig{Seed: 2, Articles: 50})
	same := true
	for i := range a.Articles {
		if strings.Join(a.Articles[i].Title, " ") != strings.Join(c.Articles[i].Title, " ") {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestDBLPStructure(t *testing.T) {
	c := GenerateDBLP(DBLPConfig{Seed: 7, Articles: 100})
	st := c.Tree.ComputeStats()
	if st.MaxDepth != 3 {
		t.Errorf("maxDepth=%d want 3 (data-centric shallow)", st.MaxDepth)
	}
	// 1 root + per article: 1 + authors(1..3) + title + year + venue.
	if st.Nodes < 100*5 || st.Nodes > 1+100*7 {
		t.Errorf("nodes=%d outside expected range", st.Nodes)
	}
	if c.Tree.Paths.Lookup("/dblp/article/title") < 0 {
		t.Error("missing /dblp/article/title path")
	}
	// Titles indexed and answerable.
	ix := invindex.Build(c.Tree, tokenizer.Options{})
	a := c.Articles[0]
	for _, w := range a.Title {
		if len(w) >= 3 && !tokenizer.IsStopword(w) && ix.DocFreq(w) == 0 {
			t.Errorf("title word %q not indexed", w)
		}
	}
}

func TestDBLPSampleQueriesAnswerable(t *testing.T) {
	c := GenerateDBLP(DBLPConfig{Seed: 3, Articles: 500})
	qs := c.SampleQueries(11, 20)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	ix := invindex.Build(c.Tree, tokenizer.Options{})
	for _, q := range qs {
		for _, w := range tokenizer.Tokenize(q) {
			if ix.DocFreq(w) == 0 {
				t.Errorf("query %q has unindexed token %q", q, w)
			}
		}
	}
	// Deterministic sampling.
	qs2 := c.SampleQueries(11, 20)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestGenerateWikiStructure(t *testing.T) {
	c := GenerateWiki(WikiConfig{Seed: 5, Articles: 50})
	if len(c.Articles) != 50 {
		t.Fatalf("articles=%d", len(c.Articles))
	}
	st := c.Tree.ComputeStats()
	if st.MaxDepth < 5 {
		t.Errorf("maxDepth=%d want >=5 (document-centric deep)", st.MaxDepth)
	}
	if c.Tree.Paths.Lookup("/wiki/article/body/section/p") < 0 {
		t.Error("missing paragraph path")
	}
	// Document-centric: much more text per node than DBLP.
	d := GenerateDBLP(DBLPConfig{Seed: 5, Articles: 50})
	dst := d.Tree.ComputeStats()
	wikiPerNode := float64(st.TextBytes) / float64(st.Nodes)
	dblpPerNode := float64(dst.TextBytes) / float64(dst.Nodes)
	if wikiPerNode <= dblpPerNode {
		t.Errorf("wiki text/node %.1f not above dblp %.1f", wikiPerNode, dblpPerNode)
	}
}

func TestWikiSampleQueriesAnswerable(t *testing.T) {
	c := GenerateWiki(WikiConfig{Seed: 5, Articles: 200})
	qs := c.SampleQueries(13, 20)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	ix := invindex.Build(c.Tree, tokenizer.Options{})
	for _, q := range qs {
		for _, w := range tokenizer.Tokenize(q) {
			if ix.DocFreq(w) == 0 {
				t.Errorf("query %q token %q unindexed", q, w)
			}
		}
	}
}

func TestWordListsSane(t *testing.T) {
	for name, list := range map[string][]string{
		"GeneralWords": GeneralWords,
		"CSWords":      CSWords,
		"Surnames":     Surnames,
		"GivenNames":   GivenNames,
		"Venues":       Venues,
		"WikiTopics":   WikiTopics,
	} {
		if len(list) < 30 {
			t.Errorf("%s too small: %d", name, len(list))
		}
		seen := map[string]bool{}
		for _, w := range list {
			if len(w) < 2 {
				t.Errorf("%s has tiny word %q", name, w)
			}
			if strings.ToLower(w) != w {
				t.Errorf("%s has non-lowercase %q", name, w)
			}
			if seen[w] {
				t.Errorf("%s has duplicate %q", name, w)
			}
			seen[w] = true
		}
	}
	if len(GeneralWords) < 500 {
		t.Errorf("GeneralWords=%d want >=500", len(GeneralWords))
	}
}
