package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// DBLPConfig sizes the data-centric bibliography corpus.
type DBLPConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Articles is the number of bibliography entries (0 = 20000).
	Articles int
}

func (c DBLPConfig) articles() int {
	if c.Articles <= 0 {
		return 20000
	}
	return c.Articles
}

// Article records the generated metadata of one entry, used to sample
// answerable clean queries.
type Article struct {
	Authors []string // "given surname"
	Title   []string
	Venue   string
	Year    int
}

// DBLPCorpus is the generated data-centric corpus: shallow, highly
// repetitive element types, short virtual documents — the structural
// profile of the real DBLP snapshot in Table I.
type DBLPCorpus struct {
	Tree     *xmltree.Tree
	Articles []Article
}

// GenerateDBLP builds the bibliography corpus.
//
// Author surnames follow a Zipf distribution (a few prolific authors,
// a long tail), and title words mix the CS vocabulary with general
// English, again Zipf-distributed, so df statistics resemble real
// bibliographies.
func GenerateDBLP(cfg DBLPConfig) *DBLPCorpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.articles()

	surZipf := rand.NewZipf(rng, 1.4, 4, uint64(len(Surnames)-1))
	givenZipf := rand.NewZipf(rng, 1.3, 4, uint64(len(GivenNames)-1))
	// Inflected forms give the vocabulary the dense edit-distance
	// neighborhoods of real text (tree/trees, index/indexing, ...).
	titlePool := Inflect(append(append([]string{}, CSWords...), GeneralWords...))
	titleZipf := rand.NewZipf(rng, 1.25, 8, uint64(len(titlePool)-1))
	venueZipf := rand.NewZipf(rng, 1.2, 2, uint64(len(Venues)-1))

	tree := xmltree.NewTree("dblp")
	corpus := &DBLPCorpus{Tree: tree, Articles: make([]Article, 0, n)}

	for i := 0; i < n; i++ {
		var a Article
		nAuthors := 1 + rng.Intn(3)
		for j := 0; j < nAuthors; j++ {
			a.Authors = append(a.Authors,
				GivenNames[givenZipf.Uint64()]+" "+Surnames[surZipf.Uint64()])
		}
		tLen := 4 + rng.Intn(7)
		seen := map[string]bool{}
		for len(a.Title) < tLen {
			w := titlePool[titleZipf.Uint64()]
			if !seen[w] {
				seen[w] = true
				a.Title = append(a.Title, w)
			}
		}
		a.Venue = Venues[venueZipf.Uint64()]
		a.Year = 1985 + rng.Intn(25)

		art := tree.AddChild(tree.Root, "article", "")
		for _, au := range a.Authors {
			tree.AddChild(art, "author", au)
		}
		tree.AddChild(art, "title", withNoise(rng, a.Title))
		tree.AddChild(art, "year", fmt.Sprint(a.Year))
		tree.AddChild(art, "booktitle", a.Venue)
		corpus.Articles = append(corpus.Articles, a)
	}
	return corpus
}

// SampleQueries draws n answerable clean queries in the style of the
// paper's DBLP query set: an author surname plus keywords from one of
// that author's papers (e.g. "rose architecture fpga").
func (c *DBLPCorpus) SampleQueries(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []string
	for attempts := 0; len(out) < n && attempts < n*50; attempts++ {
		a := c.Articles[rng.Intn(len(c.Articles))]
		author := a.Authors[rng.Intn(len(a.Authors))]
		surname := author[strings.LastIndex(author, " ")+1:]
		nKw := 1 + rng.Intn(2)
		words := []string{surname}
		// Skip stop words: they are not indexed (Section VII-A), so a
		// query containing one could never be suggested verbatim.
		for _, j := range rng.Perm(len(a.Title)) {
			if len(words) > nKw {
				break
			}
			if w := a.Title[j]; !tokenizer.IsStopword(w) {
				words = append(words, w)
			}
		}
		if len(words) < 2 {
			continue
		}
		q := strings.Join(words, " ")
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}
