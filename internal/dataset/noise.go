package dataset

import (
	"math/rand"
	"strings"
)

// noiseRate is the chance (1 in noiseRate) that a corpus token gains a
// misspelt duplicate. Real databases contain such dirty content — the
// paper's Section I example is a paper title spelt "vverification" —
// and those rare near-neighbor tokens are precisely what a
// rare-token-biased scorer latches onto.
const noiseRate = 120

// withNoise renders a token slice as text, occasionally inserting a
// corrupted duplicate of a token right after it. The clean tokens are
// all preserved, so queries sampled from the clean metadata remain
// answerable.
func withNoise(rng *rand.Rand, tokens []string) string {
	var b strings.Builder
	for i, t := range tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t)
		if len(t) > 4 && rng.Intn(noiseRate) == 0 {
			b.WriteByte(' ')
			b.WriteString(corrupt(rng, t))
		}
	}
	return b.String()
}

const noiseAlphabet = "abcdefghijklmnopqrstuvwxyz"

// corrupt applies one random edit operation to a token.
func corrupt(rng *rand.Rand, t string) string {
	r := []rune(t)
	switch rng.Intn(3) {
	case 0: // substitution
		i := rng.Intn(len(r))
		r[i] = rune(noiseAlphabet[rng.Intn(26)])
		return string(r)
	case 1: // deletion
		i := rng.Intn(len(r))
		return string(r[:i]) + string(r[i+1:])
	default: // insertion
		i := rng.Intn(len(r) + 1)
		return string(r[:i]) + string(noiseAlphabet[rng.Intn(26)]) + string(r[i:])
	}
}
