// Package dataset generates the two synthetic corpora that stand in
// for the paper's DBLP and INEX/Wikipedia datasets (see DESIGN.md §3
// for the substitution argument): a data-centric bibliography and a
// document-centric article collection, both deterministic under a
// seed, with Zipfian token usage so that term-frequency statistics
// resemble real text.
package dataset

import "strings"

func split(s string) []string { return strings.Fields(s) }

// GeneralWords is the shared English vocabulary used by both corpora.
// It deliberately includes the correct forms of the misspelling rule
// list (internal/queryset), so RULE perturbation applies to generated
// queries the way the Wikipedia misspelling list applied to INEX
// topics.
var GeneralWords = split(`
	ability absence account accident achieve acquire address advance
	adventure advice affect agency agreement amount analysis ancient
	animal announce answer apparent appearance approach argument arrival
	article artist aspect assembly assume atmosphere attempt attention
	attitude audience author authority average balance barrier basic
	battle beautiful because beginning behaviour belief believe benefit
	better bicycle biology board border bottle bottom boundary branch
	breath bridge brief brilliant broad brother budget building business
	calendar camera campaign capable capacity capital captain carbon
	career careful carriage category cattle caught causes celebrate
	center central century ceremony certain chamber champion chance
	change channel chapter character charge chief choice church circle
	citizen classic climate closer clothes coast collect college colour
	column combine comfortable coming command comment commercial
	committee common community company compare complete concern
	condition conference confidence connect conscious consider constant
	contact contain content contest continue contract control convert
	corner correct cotton council country couple courage course cousin
	cover create creature credit crisis critic culture curious current
	custom damage danger daughter debate decade decide decision declare
	deep defense definitely degree deliver demand density department
	describe desert design desire detail develop device diamond
	difference different difficult dinner direct discipline discover
	discuss disease distance district divide doctor document dollar
	domain double doubt dozen dramatic dream dress drive early earth
	eastern economy edition education effect effort eight either
	election electric element eleven embarrass emergency emotion
	emperor empire employ energy engine enough enter entire environment
	equal equipment escape especially essay estate evening event
	evidence exactly example excellent except exchange excite exercise
	exist expect experience experiment expert explain express extend
	extreme fabric factor factory familiar family famous farmer fashion
	father feature federal feeling fellow female fiction field fifteen
	fifth fifty fight figure final finance finger finish fire first
	flight floor flower follow football foreign forest forget formal
	format fortune forty forward foundation fourth frame freedom
	frequent fresh friend front fruit function further future garden
	gather general generation gentle glass global gold government
	grammar grand great green ground group growth guarantee guard
	guess guest guide habit handle happen harbor hardly health heart
	heavy height herself highway himself history holiday honest horizon
	horse hospital hotel house however human hundred hungry hunting idea
	identify image imagine immediate impact important impossible improve
	incident include income increase indeed independent indicate
	industry influence inform initial injury inside instance instead
	insurance intelligence interest international interview
	introduce invasion involve island issue itself journal journey
	judge judgment junior justice kingdom kitchen knife knowledge
	labor ladder language large later laugh launch leader league
	learn leather leave lecture legal length lesson letter level
	liberty library license light likely limit listen literature little
	local location longer lovely lower machine magazine maintain major
	manage manner manufacture margin marine market marriage master
	match material matter maximum maybe meaning measure mechanic
	medical medicine medium member memory mention message metal method
	middle might military million mineral minister minute mirror
	mission mistake mixture model modern moment money monitor month
	moral morning mother motion mountain mouth movement murder muscle
	museum music mystery narrow nation native natural nature nearly
	necessary needle neighbor neither nerve never night nobody noise
	normal northern notice notion novel nuclear number object observe
	obtain obvious occasion occur ocean offer office officer official
	often opera operation opinion oppose option orange orchestra order
	ordinary organize origin other outside owner oxygen package page
	paint palace paper parent parliament particular partner party
	passage passenger patient pattern payment peace people pepper
	perfect perform perhaps period permanent person phrase physical
	piano picture piece pilot pioneer place plain plan planet plant
	plastic plate platform player pleasant please pleasure plenty
	pocket poem point police policy politic popular population portion
	position possess possible potato pound powder power powerful
	practical practice prepare presence present president pressure
	pretty prevent previous price pride priest primary prince princess
	principle print prison private prize probable problem procedure
	process produce product profession professor profit program
	progress project promise property propose protect protest proud
	prove provide public publish purpose quality quarter question quick
	quiet radio railway raise range rapid rather reach reaction read
	ready reason receive recent recognize recommend record reduce
	refer reflect reform refuse region regular relation release
	religion remain remark remember remove repeat replace report
	represent request require research resource respect respond
	response rest result return reveal review reward rhythm rich ride
	right river road rocket rough round royal rubber rural safety
	salary sample satisfy scale scene schedule scheme scholar school
	science screen search season second secret section secure seed
	seize senior sense sentence separate series serious servant serve
	service settle seven several severe shadow shake shape share sharp
	sheet shelter shine shirt shoot shore short shoulder shout show
	sight signal silence silver similar simple since single sister
	situation sixteen sixty skill sleep slight small smart smile smooth
	social society soldier solid solution somebody somehow someone
	source southern space speak special specific speech speed spend
	spirit splendid sport spread spring square stable staff stage
	stand standard start state station statue status steady steel step
	still stock stomach stone store storm story straight strange
	stream street strength stress stretch strike strong structure
	struggle student studio study stuff style subject substance
	succeed success sudden suffer sugar suggest summer supply support
	suppose surface surprise surround survey survive sweet swim symbol
	system table talent target teach teacher temperature temple tennis
	term terrible territory theater theory there thick thing think
	third thirty thousand threat three through throw ticket tight
	tissue title today together tomorrow tongue tonight total touch
	toward tower track trade tradition traffic train transfer
	transport travel treasure treat treatment triangle trick trouble
	truck trust truth twelve twenty twice type under understand union
	unique unite universe university unless until upper urban useful
	usual valley value variety various vehicle venture version very
	vessel veteran victory view village violence visit vital voice
	volume voyage wagon watch water wave wealth weapon wear weather
	wedding weekend weight welcome western wheel where which while
	white whole whose window winter wisdom wish within without witness
	woman wonder wooden world worry worth would write writer wrong
	yellow yesterday young`)

// CSWords is the computer-science title vocabulary of the
// bibliography corpus (the DBLP stand-in).
var CSWords = split(`
	abstraction adaptive aggregation algebra algorithm alignment
	analysis annotation anomaly application approximation architecture
	association asynchronous atomic attribute authentication automata
	automatic autonomous bandwidth bayesian benchmark binary boolean
	bounded branch broadcast buffer cache calculus cardinality
	certification checkpoint circuit classification cluster clustering
	coding cognitive collaborative compilation compiler complexity
	component compression computation computing concurrency concurrent
	consensus consistency constraint construction context cooperative
	coordination corpus correctness correlation coverage crawling
	cryptography database debugging decentralized decidability
	decision declarative decomposition deduction deduplication
	dependency deployment detection deterministic diagnosis dimension
	discovery distributed duplicate dynamic efficient elastic
	embedding empirical encoding encryption engineering entity
	enumeration equivalence estimation evaluation execution expansion
	exploration expression extraction failover fairness fault feature
	federated feedback filtering formal fragment framework frequent
	functional fusion garbage generation generic genetic granularity
	graph graphical greedy grid hashing heuristic hierarchy
	homomorphic hybrid hypertext identification incremental index
	indexing inference information integration integrity interactive
	interface interpolation invariant isolation iterative kernel
	keyword labeling language latency lattice layered learning
	lightweight linear linkage locality locking logic lossless
	machine maintenance mapping matching materialized matrix
	measurement membership memory metadata migration mining mobile
	modeling modular monitoring multicast multimedia multiprocessor
	network neural normalization notation numeric object online
	ontology operator optimal optimization ordering orthogonal
	overlay packet paging parallel parametric parsing partition
	pattern performance persistence pipeline placement planning
	polynomial portable precision predicate prediction prefetching
	preprocessing privacy probabilistic profiling propagation
	protocol provenance pruning quantum query queue random ranking
	reachability reasoning recognition reconfigurable recovery
	recursive redundancy refinement regression relational reliability
	replication repository representation resilient resolution
	retrieval rewriting robust routing runtime sampling scalable
	scaling scheduling schema searching secure security segmentation
	selectivity semantic semantics sensor sequence sequential
	serializable similarity simulation skyline spatial specification
	spectrum speculative statistical storage streaming structural
	subgraph summarization supervised symbolic synchronization
	synthesis temporal testing theorem throughput tolerant topology
	tracing tracking transaction transformation translation traversal
	twig unification unsupervised validation vectorization
	verification versioning virtual visualization warehouse wavelet
	workflow workload wrapper`)

// Surnames is the author surname pool of the bibliography corpus.
var Surnames = split(`
	abiteboul agrawal anderson armstrong bailey baker barnes bell
	bennett bernstein brewer brooks brown butler campbell carter chen
	clark codd collins cooper crawford davis dewitt dietrich dixon
	duncan edwards elliott evans ferguson fischer fisher fletcher
	foster franklin fraser garcia gardner gibson gonzalez gordon
	graham grant gray green griffin halevy hamilton harris harrison
	hellerstein henderson hernandez howard hughes hunter jackson
	jagadish jensen johnson jones jordan kemper kennedy knuth kossmann
	kumar lamport lawrence lewis lindsay livny lomet madden marshall
	martin mason matthews mcdonald miller mitchell mohan montgomery
	morgan morris murphy murray naughton nelson newman nichols olston
	ooi owens palmer parker patel paterson pearson perez peterson
	phillips porter powell price quinn ramakrishnan reed reeves
	reynolds richards richardson riley roberts robinson rogers rose
	russell ryan sanders schmidt scott shapiro shaw silberschatz
	simmons simpson smith snodgrass spencer stevens stewart
	stonebraker sullivan taylor thomas thompson turner ullman valduriez
	vance vianu wagner walker wallace walton warren watson weaver
	webber weber wells whang wilkins williams willis wilson wong
	woods wright young zaniolo zhang zhou`)

// GivenNames is the author given-name pool.
var GivenNames = split(`
	adam alan albert alice andrew anna anthony barbara benjamin betty
	brian carol charles christine christopher daniel david deborah
	dennis diana donald dorothy douglas edward elizabeth emily eric
	frank george hannah harold helen henry irene jacob james jane
	jason jennifer jeremy jessica joan john jonathan joseph joshua
	joyce judith julia karen katherine keith kenneth kevin laura
	lawrence linda louis madeleine margaret maria marie mark martha
	martin mary matthew michael michelle nancy nathan nicholas olivia
	patricia patrick paul peter philip rachel raymond rebecca richard
	robert roger ronald rose russell ruth samuel sandra sarah scott
	sharon simon stephen steven susan teresa theodore thomas timothy
	victor victoria vincent virginia walter wayne william`)

// Venues is the publication venue pool (booktitle/journal names).
var Venues = split(`
	sigmod vldb icde edbt cikm sigir kdd icdm wsdm ecir cidr pods
	icdt webdb dasfaa ssdbm tkde tods vldbj jacm sigkdd apweb waim
	sosp osdi nsdi atc eurosys podc disc spaa ppopp isca micro asplos`)

// WikiTopics is the article-subject vocabulary of the
// document-centric corpus (the INEX/Wikipedia stand-in).
var WikiTopics = split(`
	amazon andes antarctica arctic atlantic australia austria bavaria
	beijing berlin brazil britain brooklyn budapest byzantine cairo
	california cambridge canada caribbean carthage chicago chile china
	colonial columbia congo copenhagen cornwall croatia cuba cyprus
	damascus danube denmark dublin dynasty ecuador egypt england
	ethiopia europe everest finland florence france galaxy ganges
	genoa georgia germany glacier granada greece greenland guatemala
	hawaii himalaya holland hungary iberia iceland india indonesia
	ireland istanbul italy jakarta jamaica japan jerusalem jordan
	jupiter kenya kingston korea kremlin lagoon lisbon london madrid
	malaysia manhattan mediterranean melbourne mexico milan mongolia
	monsoon montreal morocco moscow mumbai munich naples nebula
	netherlands nigeria normandy norway oceania orbit oregon ottoman
	oxford pacific pakistan panama paris parthenon patagonia peking
	persia peru phoenix poland portugal prague prussia pyramid quebec
	renaissance rhine roman rome russia sahara saturn saxony
	scandinavia scotland seattle serbia shanghai siberia sicily
	singapore slovakia somalia spain sweden switzerland sydney syria
	taiwan thailand tibet tokyo toronto tundra turkey tuscany ukraine
	uruguay venice vienna vietnam virginia volcano wales warsaw
	yangtze zealand zurich barrier reef skyscraper cathedral
	monastery lighthouse aqueduct amphitheater citadel fortress`)

// Inflect expands a word pool with inflected forms (plural, past,
// gerund). Real corpora are full of such distance-1/2 neighbors
// ("tree"/"trees"/"treed"), which is what makes variant sets dense and
// spelling suggestion non-trivial; a pool without them would make
// every system look perfect.
func Inflect(words []string) []string {
	out := make([]string, 0, len(words)*2)
	for i, w := range words {
		out = append(out, w)
		if !strings.HasSuffix(w, "s") {
			out = append(out, w+"s")
		}
		// Every third word also gets -ed / -ing style forms.
		if i%3 == 0 {
			if strings.HasSuffix(w, "e") {
				out = append(out, w+"d")
			} else {
				out = append(out, w+"ing")
			}
		}
	}
	return out
}
