package dataset

import (
	"math/rand"
	"strings"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// WikiConfig sizes the document-centric corpus.
type WikiConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Articles is the number of encyclopedia articles (0 = 2000).
	Articles int
}

func (c WikiConfig) articles() int {
	if c.Articles <= 0 {
		return 2000
	}
	return c.Articles
}

// WikiArticle records a generated article's salient terms for query
// sampling.
type WikiArticle struct {
	Title   []string
	Salient []string // content words tied to this article
}

// WikiCorpus is the generated document-centric corpus: deeper nesting,
// long mixed-vocabulary virtual documents, larger vocabulary — the
// structural profile of the INEX 2008 Wikipedia collection in Table I.
type WikiCorpus struct {
	Tree     *xmltree.Tree
	Articles []WikiArticle
}

// GenerateWiki builds the encyclopedia corpus. Every article has a
// topical theme: a handful of topic words recur across its sections,
// embedded in Zipf-distributed general prose (so co-occurrence inside
// an article is much more likely than across articles).
func GenerateWiki(cfg WikiConfig) *WikiCorpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.articles()

	prosePool := Inflect(append(append([]string{}, GeneralWords...), WikiTopics...))
	proseZipf := rand.NewZipf(rng, 1.2, 10, uint64(len(prosePool)-1))

	tree := xmltree.NewTree("wiki")
	corpus := &WikiCorpus{Tree: tree, Articles: make([]WikiArticle, 0, n)}

	for i := 0; i < n; i++ {
		// Theme: 2 topic words + 3-5 theme prose words that recur.
		var wa WikiArticle
		t1 := WikiTopics[rng.Intn(len(WikiTopics))]
		t2 := WikiTopics[rng.Intn(len(WikiTopics))]
		for t2 == t1 {
			t2 = WikiTopics[rng.Intn(len(WikiTopics))]
		}
		wa.Title = []string{t1, t2}
		theme := []string{t1, t2}
		nTheme := 3 + rng.Intn(3)
		for j := 0; j < nTheme; j++ {
			w := prosePool[proseZipf.Uint64()]
			theme = append(theme, w)
			wa.Salient = append(wa.Salient, w)
		}

		sentence := func(min, max int) string {
			k := min + rng.Intn(max-min+1)
			words := make([]string, 0, k)
			for j := 0; j < k; j++ {
				// ~1 in 5 words comes from the article theme.
				if rng.Intn(5) == 0 {
					words = append(words, theme[rng.Intn(len(theme))])
				} else {
					words = append(words, prosePool[proseZipf.Uint64()])
				}
			}
			return withNoise(rng, words)
		}

		art := tree.AddChild(tree.Root, "article", "")
		tree.AddChild(art, "title", strings.Join(wa.Title, " "))
		body := tree.AddChild(art, "body", "")
		nSec := 1 + rng.Intn(4)
		for s := 0; s < nSec; s++ {
			sec := tree.AddChild(body, "section", "")
			tree.AddChild(sec, "heading", sentence(2, 4))
			nPar := 1 + rng.Intn(3)
			for p := 0; p < nPar; p++ {
				tree.AddChild(sec, "p", sentence(20, 60))
			}
			// Occasional subsections for extra depth, as in real
			// Wikipedia markup.
			if rng.Intn(3) == 0 {
				sub := tree.AddChild(sec, "subsection", "")
				tree.AddChild(sub, "heading", sentence(2, 4))
				tree.AddChild(sub, "p", sentence(15, 40))
			}
		}
		corpus.Articles = append(corpus.Articles, wa)
	}
	return corpus
}

// SampleQueries draws n answerable clean queries in the style of the
// INEX topics: short phrases built from one article's title and
// salient content words (e.g. "great barrier reef").
func (c *WikiCorpus) SampleQueries(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []string
	for attempts := 0; len(out) < n && attempts < n*50; attempts++ {
		a := c.Articles[rng.Intn(len(c.Articles))]
		words := append([]string{}, a.Title...)
		if len(a.Salient) > 0 && rng.Intn(2) == 0 {
			// Skip stop words: they are not indexed (Section VII-A).
			if w := a.Salient[rng.Intn(len(a.Salient))]; !tokenizer.IsStopword(w) {
				words = append(words, w)
			}
		}
		q := strings.Join(dedupe(words), " ")
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

func dedupe(words []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
