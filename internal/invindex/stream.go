package invindex

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// BuildFromReader indexes one XML document directly from its byte
// stream, never materializing an xmltree.Tree. Peak memory is the
// index itself plus one root-to-leaf stack, which is what makes
// corpora like the paper's 5.8 GB INEX collection indexable on a
// laptop. The resulting index is identical to
// Build(xmltree.Parse(r), opts).
//
// Attributes become child nodes and character data attaches to the
// containing element, exactly as xmltree.Parse does.
func BuildFromReader(r io.Reader, opts tokenizer.Options) (*Index, error) {
	return buildFromReader(r, opts, false)
}

// BuildStoredFromReader is BuildFromReader plus stored node text.
func BuildStoredFromReader(r io.Reader, opts tokenizer.Options) (*Index, error) {
	return buildFromReader(r, opts, true)
}

// streamFrame is one open element on the parse stack.
type streamFrame struct {
	dewey    xmltree.Dewey
	path     xmltree.PathID
	children uint32
	// text accumulates the element's character data.
	text strings.Builder
	// subtree counts the kept tokens under the element so far
	// (descendants only; the element's own text is added on close).
	subtree int32
}

func buildFromReader(r io.Reader, opts tokenizer.Options, store bool) (*Index, error) {
	ix := &Index{
		Paths:      xmltree.NewPathTable(),
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting),
		typeLists:  make(map[string][]TypeCount),
		subtreeLen: make(map[string]int32),
		pathNodes:  make(map[xmltree.PathID]int32),
		pathLens:   make(map[xmltree.PathID][]int32),
		pathRoots:  make(map[xmltree.PathID][]string),
		bigrams:    make(map[string]int64),
		opts:       opts,
	}
	if store {
		ix.storedText = make(map[string]string)
	}

	dec := xml.NewDecoder(r)
	var stack []*streamFrame
	rootSeen := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("invindex: stream: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			var frame *streamFrame
			if len(stack) == 0 {
				if rootSeen {
					return nil, fmt.Errorf("invindex: stream: multiple root elements")
				}
				rootSeen = true
				frame = &streamFrame{
					dewey: xmltree.Dewey{1},
					path:  ix.Paths.Intern(xmltree.InvalidPath, el.Name.Local),
				}
			} else {
				parent := stack[len(stack)-1]
				parent.children++
				frame = &streamFrame{
					dewey: parent.dewey.Child(parent.children),
					path:  ix.Paths.Intern(parent.path, el.Name.Local),
				}
			}
			ix.openNode(frame)
			stack = append(stack, frame)
			// Attributes are leaf children, opened and closed here.
			for _, a := range el.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				frame.children++
				attr := &streamFrame{
					dewey: frame.dewey.Child(frame.children),
					path:  ix.Paths.Intern(frame.path, a.Name.Local),
				}
				attr.text.WriteString(a.Value)
				ix.openNode(attr)
				frame.subtree += ix.closeNode(attr)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("invindex: stream: unbalanced end element %q", el.Name.Local)
			}
			frame := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			total := ix.closeNode(frame)
			if len(stack) > 0 {
				stack[len(stack)-1].subtree += total
			}
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(el))
				if text != "" {
					top := stack[len(stack)-1]
					if top.text.Len() > 0 {
						top.text.WriteByte(' ')
					}
					top.text.WriteString(text)
				}
			}
		}
	}
	if !rootSeen {
		return nil, fmt.Errorf("invindex: stream: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("invindex: stream: unexpected EOF inside element")
	}
	ix.buildTypeLists()
	return ix, nil
}

// openNode records the structural facts available at element start.
func (ix *Index) openNode(f *streamFrame) {
	ix.nodeCount++
	ix.pathNodes[f.path]++
	if d := f.dewey.Depth(); d > ix.maxDepth {
		ix.maxDepth = d
	}
}

// closeNode tokenizes the element's accumulated text, emits postings,
// and finalizes subtree statistics. It returns the subtree token count.
//
// Postings are emitted at element close rather than open, so within
// one token's list a parent follows the children that closed before
// it; a document-order sort per list fixes this afterwards... except
// that would cost O(n log n). Instead, note that a node's text is
// known only at close, but its Dewey code is smaller than every
// descendant's. The lists are therefore repaired with a bounded
// insertion pass: each emitted posting sinks past the (rare, shallow)
// descendants already present.
func (ix *Index) closeNode(f *streamFrame) int32 {
	key := f.dewey.Key()
	text := f.text.String()
	if ix.storedText != nil && text != "" {
		// Stored keys are sorted on demand here (insertion like the
		// postings repair below).
		ix.storedKeys = append(ix.storedKeys, key)
		for i := len(ix.storedKeys) - 1; i > 0 && ix.storedKeys[i] < ix.storedKeys[i-1]; i-- {
			ix.storedKeys[i], ix.storedKeys[i-1] = ix.storedKeys[i-1], ix.storedKeys[i]
		}
		ix.storedText[key] = text
	}

	var direct int32
	if text != "" {
		toks := ix.opts.Tokenize(text)
		direct = int32(len(toks))
		if direct > 0 {
			tf := make(map[string]int32, len(toks))
			order := make([]string, 0, len(toks))
			for _, tok := range toks {
				if tf[tok] == 0 {
					order = append(order, tok)
				}
				tf[tok]++
			}
			for _, tok := range order {
				pl := append(ix.postings[tok], Posting{
					Dewey:   f.dewey,
					Path:    f.path,
					TF:      tf[tok],
					NodeLen: direct,
				})
				// Sink into document order past already-closed
				// descendants (ancestors precede descendants in doc
				// order, but close after them).
				for i := len(pl) - 1; i > 0 && pl[i].Dewey.Compare(pl[i-1].Dewey) < 0; i-- {
					pl[i], pl[i-1] = pl[i-1], pl[i]
				}
				ix.postings[tok] = pl
				ix.Vocab.Add(tok, int64(tf[tok]))
			}
			for i := 1; i < len(toks); i++ {
				ix.bigrams[toks[i-1]+"\x00"+toks[i]]++
			}
			ix.totalTok += int64(direct)
		}
	}

	total := f.subtree + direct
	ix.subtreeLen[key] = total
	ix.pathLens[f.path] = append(ix.pathLens[f.path], total)
	ix.pathRoots[f.path] = append(ix.pathRoots[f.path], key)
	return total
}
