package invindex

import (
	"container/heap"

	"xclean/internal/postings"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// VocabView is the read surface of a corpus vocabulary: membership,
// collection frequencies, and the background unigram model p(w|B).
// tokenizer.Vocabulary implements it over heap maps; snapfile readers
// implement it by binary search over an mmap'd offset table. Prob must
// follow tokenizer.Vocabulary.Prob exactly ((count+1)/(total+size),
// epsilon for unknown terms) so scores agree to the last bit across
// backends.
type VocabView interface {
	Contains(w string) bool
	Count(w string) int64
	Prob(w string) float64
	Total() int64
	Size() int
}

// Source is the complete read surface the scoring engine
// (internal/core) and the public facade scan against. *Index
// implements it over heap maps; *snapfile.Reader implements it
// directly over an mmap'd snapshot, which is how a corpus serves
// without ever being materialized. Everything here must be safe for
// concurrent use.
type Source interface {
	// PathTable is the label-path interner of the corpus schema. It is
	// always a materialized table: the schema is tiny (Heaps' law on
	// label paths) and every hot path resolves IDs through it.
	PathTable() *xmltree.PathTable
	// Vocabulary is the corpus vocabulary / background model.
	Vocabulary() VocabView
	// VocabList returns all distinct indexed tokens, sorted.
	VocabList() []string
	// MergedListFor builds the Section V-C merged list over the
	// inverted lists of the given variant tokens.
	MergedListFor(tokens []string) *MergedList
	// TypeList returns the (path, f_p^w) list of tok sorted by path ID.
	TypeList(tok string) []TypeCount
	// PathDepth is the depth of label path p (resulttype.Source).
	PathDepth(p xmltree.PathID) int
	// SubtreeLenKey is |D(r)| keyed by a precomputed Dewey.Key().
	SubtreeLenKey(key string) int32
	// NodesWithPath is N_p, the entity count N of Eq. (8).
	NodesWithPath(p xmltree.PathID) int32
	// SubtreeLensByPath returns the subtree token counts of every node
	// of path p (order unspecified).
	SubtreeLensByPath(p xmltree.PathID) []int32
	// RootsByPath returns the Dewey keys of every node of path p.
	RootsByPath(p xmltree.PathID) []string
	// BigramCount is the adjacency count of the bigram extension.
	BigramCount(w1, w2 string) int64
	// DocFreq is df(w): the number of nodes whose direct text contains w.
	DocFreq(tok string) int
	NodeCount() int
	MaxDepth() int
	TotalTokens() int64
	// TokenizerOptions returns the options the corpus was indexed with.
	TokenizerOptions() tokenizer.Options
	// HasStoredText reports whether previews are available.
	HasStoredText() bool
	// SubtreeText renders the stored text under root (see
	// Index.SubtreeText).
	SubtreeText(root xmltree.Dewey, maxLen int) string
}

// PathTable returns the index's label-path table (Source).
func (ix *Index) PathTable() *xmltree.PathTable { return ix.Paths }

// Vocabulary returns the index's vocabulary (Source).
func (ix *Index) Vocabulary() VocabView { return ix.Vocab }

// MergedListFromLists builds a merged list whose members stream the
// given compressed lists; lists[i] is the inverted list of tokens[i]
// (nil or empty lists are skipped). Snapshot readers use it to serve
// MergedListFor straight off mmap'd block payloads.
func MergedListFromLists(tokens []string, lists []*postings.List) *MergedList {
	m := &MergedList{}
	for i, l := range lists {
		if l == nil || l.Len() == 0 {
			continue
		}
		m.h = append(m.h, &member{
			listCursor: newCompCursor(l),
			token:      tokens[i],
			tokenIdx:   i,
		})
	}
	heap.Init(&m.h)
	return m
}
