package invindex

import (
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func storedFullTree(rows [][2]string) *xmltree.Tree {
	return fullTree(rows)
}

// TestRemoveDocumentRoundtrip: adding documents and removing them again
// must restore the index to exactly the state of a fresh build.
func TestRemoveDocumentRoundtrip(t *testing.T) {
	base := incRows[:3]
	want := BuildStored(storedFullTree(base), tokenizer.Options{})

	got := BuildStored(storedFullTree(base), tokenizer.Options{})
	for _, r := range incRows[3:] {
		if err := got.AddDocument(article(r[0], r[1])); err != nil {
			t.Fatal(err)
		}
	}
	// Remove in reverse order (5 then 4).
	for i := len(incRows) - 1; i >= 3; i-- {
		d := xmltree.Dewey{1, uint32(i + 1)}
		if err := got.RemoveDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	assertIndexEqual(t, want, got)
	// Stored text must match too.
	for _, k := range want.storedKeys {
		d := xmltree.DeweyFromKey(k)
		if want.SubtreeText(d, 0) != got.SubtreeText(d, 0) {
			t.Fatalf("stored text diverges at %s", d)
		}
	}
	if len(got.storedKeys) != len(want.storedKeys) {
		t.Fatalf("stored keys: %d vs %d", len(got.storedKeys), len(want.storedKeys))
	}
}

// TestRemoveMiddleDocument: removing a middle document keeps the
// remaining documents' Dewey codes and answers intact.
func TestRemoveMiddleDocument(t *testing.T) {
	ix := BuildStored(storedFullTree(incRows), tokenizer.Options{})
	// Remove the third document ("smith", "database indexing methods").
	if err := ix.RemoveDocument(xmltree.Dewey{1, 3}); err != nil {
		t.Fatal(err)
	}
	if ix.DocFreq("indexing") != 0 || ix.Vocab.Contains("smith") {
		t.Error("removed document's unique tokens survive")
	}
	// Shared tokens lose only the removed occurrences.
	if ix.DocFreq("fpga") != 2 {
		t.Errorf("DocFreq(fpga)=%d want 2", ix.DocFreq("fpga"))
	}
	// Later documents keep their codes.
	if got := ix.SubtreeLen(xmltree.Dewey{1, 4}); got == 0 {
		t.Error("document 4 lost its subtree length")
	}
	// Node count: 17 original (1 root + 4×... ) minus 3 for the doc.
	want := 1 + 5*3 - 3
	if ix.NodeCount() != want {
		t.Errorf("NodeCount=%d want %d", ix.NodeCount(), want)
	}
}

func TestRemoveDocumentErrors(t *testing.T) {
	stored := BuildStored(storedFullTree(incRows[:2]), tokenizer.Options{})
	cases := []struct {
		name string
		d    xmltree.Dewey
	}{
		{"not-child-of-root", xmltree.Dewey{1, 1, 1}},
		{"root-itself", xmltree.Dewey{1}},
		{"absent", xmltree.Dewey{1, 9}},
	}
	for _, c := range cases {
		if err := stored.RemoveDocument(c.d); err == nil {
			t.Errorf("%s: removal accepted", c.name)
		}
	}

	plain := Build(storedFullTree(incRows[:2]), tokenizer.Options{})
	if err := plain.RemoveDocument(xmltree.Dewey{1, 1}); err == nil {
		t.Error("unstored index accepted removal")
	}

	stored.Compact()
	if err := stored.RemoveDocument(xmltree.Dewey{1, 1}); err == nil {
		t.Error("compacted index accepted removal")
	}
}

// TestRemoveAllDocuments empties the corpus document by document.
func TestRemoveAllDocuments(t *testing.T) {
	ix := BuildStored(storedFullTree(incRows), tokenizer.Options{})
	for i := range incRows {
		if err := ix.RemoveDocument(xmltree.Dewey{1, uint32(i + 1)}); err != nil {
			t.Fatalf("doc %d: %v", i+1, err)
		}
	}
	if ix.TotalTokens() != 0 || ix.Vocab.Size() != 0 {
		t.Errorf("tokens=%d vocab=%d after emptying", ix.TotalTokens(), ix.Vocab.Size())
	}
	if ix.NodeCount() != 1 { // the root survives
		t.Errorf("NodeCount=%d want 1", ix.NodeCount())
	}
	if ix.MaxDepth() != 1 {
		t.Errorf("MaxDepth=%d want 1", ix.MaxDepth())
	}
	// The emptied index accepts new documents again.
	if err := ix.AddDocument(article("new", "fresh start content")); err != nil {
		t.Fatal(err)
	}
	if ix.DocFreq("fresh") != 1 {
		t.Error("re-add after emptying failed")
	}
}
