package invindex

import (
	"bytes"
	"strings"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func storedTree() *xmltree.Tree {
	tr := xmltree.NewTree("bib")
	a := tr.AddChild(tr.Root, "paper", "")
	tr.AddChild(a, "title", "probabilistic query cleaning")
	tr.AddChild(a, "abstract", "we study spelling suggestions")
	b := tr.AddChild(tr.Root, "paper", "")
	tr.AddChild(b, "title", "unrelated work")
	return tr
}

func TestSubtreeText(t *testing.T) {
	ix := BuildStored(storedTree(), tokenizer.Options{})
	if !ix.HasStoredText() {
		t.Fatal("HasStoredText false after BuildStored")
	}
	first, _ := xmltree.ParseDewey("1.1")
	got := ix.SubtreeText(first, 0)
	want := "probabilistic query cleaning we study spelling suggestions"
	if got != want {
		t.Errorf("SubtreeText=%q want %q", got, want)
	}
	// Second paper's subtree excludes the first's text.
	second, _ := xmltree.ParseDewey("1.2")
	if got := ix.SubtreeText(second, 0); got != "unrelated work" {
		t.Errorf("SubtreeText=%q", got)
	}
	// Whole document from the root.
	root, _ := xmltree.ParseDewey("1")
	if got := ix.SubtreeText(root, 0); !strings.Contains(got, "unrelated work") ||
		!strings.Contains(got, "probabilistic") {
		t.Errorf("root SubtreeText=%q", got)
	}
}

func TestSubtreeTextTruncation(t *testing.T) {
	ix := BuildStored(storedTree(), tokenizer.Options{})
	first, _ := xmltree.ParseDewey("1.1")
	got := ix.SubtreeText(first, 13)
	if got != "probabilistic…" {
		t.Errorf("truncated=%q", got)
	}
}

func TestSubtreeTextWithoutStore(t *testing.T) {
	ix := Build(storedTree(), tokenizer.Options{})
	if ix.HasStoredText() {
		t.Fatal("plain Build claims stored text")
	}
	root, _ := xmltree.ParseDewey("1")
	if got := ix.SubtreeText(root, 0); got != "" {
		t.Errorf("SubtreeText=%q on unstored index", got)
	}
}

func TestSubtreeTextMissingSubtree(t *testing.T) {
	ix := BuildStored(storedTree(), tokenizer.Options{})
	absent, _ := xmltree.ParseDewey("1.9.9")
	if got := ix.SubtreeText(absent, 0); got != "" {
		t.Errorf("SubtreeText=%q for absent subtree", got)
	}
}

func TestStoredTextPersistRoundtrip(t *testing.T) {
	ix := BuildStored(storedTree(), tokenizer.Options{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasStoredText() {
		t.Fatal("stored text lost on save/load")
	}
	first, _ := xmltree.ParseDewey("1.1")
	if a, b := ix.SubtreeText(first, 0), got.SubtreeText(first, 0); a != b {
		t.Errorf("stored text diverges: %q vs %q", a, b)
	}

	// Unstored indexes stay unstored through persistence.
	plain := Build(storedTree(), tokenizer.Options{})
	buf.Reset()
	if err := plain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasStoredText() {
		t.Error("unstored index gained stored text")
	}
}
