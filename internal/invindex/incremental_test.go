package invindex

import (
	"reflect"
	"strings"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// article builds a standalone document tree (to be grafted) with an
// author and title.
func article(author, title string) *xmltree.Tree {
	t := xmltree.NewTree("article")
	t.AddChild(t.Root, "author", author)
	t.AddChild(t.Root, "title", title)
	return t
}

// fullTree builds the equivalent corpus in one piece.
func fullTree(rows [][2]string) *xmltree.Tree {
	t := xmltree.NewTree("dblp")
	for _, r := range rows {
		art := t.AddChild(t.Root, "article", "")
		t.AddChild(art, "author", r[0])
		t.AddChild(art, "title", r[1])
	}
	return t
}

var incRows = [][2]string{
	{"rose", "fpga architecture synthesis"},
	{"rose", "reconfigurable fpga design"},
	{"smith", "database indexing methods"},
	{"jones", "xml keyword search ranking"},
	{"chen", "novel probabilistic cleaning"},
}

// assertIndexEqual compares every observable index structure.
func assertIndexEqual(t *testing.T, want, got *Index) {
	t.Helper()
	wantVocab := want.VocabList()
	if !reflect.DeepEqual(wantVocab, got.VocabList()) {
		t.Fatalf("vocab diverges:\nwant %v\ngot  %v", wantVocab, got.VocabList())
	}
	for _, tok := range wantVocab {
		if !reflect.DeepEqual(want.Postings(tok), got.Postings(tok)) {
			t.Fatalf("postings diverge for %q:\nwant %v\ngot  %v",
				tok, want.Postings(tok), got.Postings(tok))
		}
		if !reflect.DeepEqual(want.TypeList(tok), got.TypeList(tok)) {
			t.Fatalf("type lists diverge for %q:\nwant %v\ngot  %v",
				tok, want.TypeList(tok), got.TypeList(tok))
		}
		if want.Vocab.Count(tok) != got.Vocab.Count(tok) {
			t.Fatalf("vocab count diverges for %q", tok)
		}
	}
	if want.NodeCount() != got.NodeCount() || want.MaxDepth() != got.MaxDepth() ||
		want.TotalTokens() != got.TotalTokens() {
		t.Fatalf("stats diverge: want (%d,%d,%d) got (%d,%d,%d)",
			want.NodeCount(), want.MaxDepth(), want.TotalTokens(),
			got.NodeCount(), got.MaxDepth(), got.TotalTokens())
	}
	// Path-level structures, via the path table's string forms.
	for id := xmltree.PathID(0); int(id) < want.Paths.Len(); id++ {
		ps := want.Paths.String(id)
		gid := got.Paths.Lookup(ps)
		if gid == xmltree.InvalidPath {
			t.Fatalf("path %s missing", ps)
		}
		if want.NodesWithPath(id) != got.NodesWithPath(gid) {
			t.Fatalf("path %s: node counts diverge", ps)
		}
		wl := append([]int32(nil), want.SubtreeLensByPath(id)...)
		gl := append([]int32(nil), got.SubtreeLensByPath(gid)...)
		sortInt32(wl)
		sortInt32(gl)
		if !reflect.DeepEqual(wl, gl) {
			t.Fatalf("path %s: subtree lens diverge: %v vs %v", ps, wl, gl)
		}
	}
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestAddDocumentEquivalence: building incrementally must equal the
// full rebuild, whatever the split point.
func TestAddDocumentEquivalence(t *testing.T) {
	want := Build(fullTree(incRows), tokenizer.Options{})
	for split := 0; split <= len(incRows); split++ {
		got := Build(fullTree(incRows[:split]), tokenizer.Options{})
		for _, r := range incRows[split:] {
			if err := got.AddDocument(article(r[0], r[1])); err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
		}
		assertIndexEqual(t, want, got)
	}
}

// TestAddDocumentStoredText: stored text grows with the graft.
func TestAddDocumentStoredText(t *testing.T) {
	ix := BuildStored(fullTree(incRows[:2]), tokenizer.Options{})
	if err := ix.AddDocument(article("chen", "novel probabilistic cleaning")); err != nil {
		t.Fatal(err)
	}
	d, _ := xmltree.ParseDewey("1.3")
	got := ix.SubtreeText(d, 0)
	if !strings.Contains(got, "probabilistic cleaning") || !strings.Contains(got, "chen") {
		t.Errorf("grafted text %q", got)
	}
}

func TestAddDocumentErrors(t *testing.T) {
	ix := Build(fullTree(incRows[:1]), tokenizer.Options{})
	if err := ix.AddDocument(nil); err == nil {
		t.Error("nil document accepted")
	}
	ix.Compact()
	if err := ix.AddDocument(article("a", "b")); err == nil {
		t.Error("compacted index mutated")
	}
}

// TestAddDocumentNewVocabulary: queries over tokens that only exist in
// the grafted document must work (via a fresh engine; checked here at
// the index level through postings and type lists).
func TestAddDocumentNewVocabulary(t *testing.T) {
	ix := Build(fullTree(incRows[:2]), tokenizer.Options{})
	if ix.DocFreq("quantum") != 0 {
		t.Fatal("unexpected token")
	}
	if err := ix.AddDocument(article("zhang", "quantum query processing")); err != nil {
		t.Fatal(err)
	}
	if ix.DocFreq("quantum") != 1 {
		t.Errorf("DocFreq(quantum)=%d", ix.DocFreq("quantum"))
	}
	// The new token's type list counts the root exactly once.
	tl := ix.TypeList("quantum")
	rootPath := ix.Paths.Lookup("/dblp")
	found := false
	for _, tc := range tl {
		if tc.Path == rootPath {
			found = true
			if tc.F != 1 {
				t.Errorf("root f=%d want 1", tc.F)
			}
		}
	}
	if !found {
		t.Error("root missing from new token's type list")
	}
}

// TestAddDocumentPersistRoundtrip: an incrementally grown index
// survives save/load and further growth.
func TestAddDocumentPersistRoundtrip(t *testing.T) {
	ix := Build(fullTree(incRows[:3]), tokenizer.Options{})
	if err := ix.AddDocument(article(incRows[3][0], incRows[3][1])); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ix.Save(&stringsWriter{&buf}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddDocument(article(incRows[4][0], incRows[4][1])); err != nil {
		t.Fatal(err)
	}
	want := Build(fullTree(incRows), tokenizer.Options{})
	assertIndexEqual(t, want, loaded)
}

type stringsWriter struct{ b *strings.Builder }

func (w *stringsWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
