package invindex

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := buildSample()
	orig := Build(tr, tokenizer.Options{})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NodeCount() != orig.NodeCount() ||
		loaded.MaxDepth() != orig.MaxDepth() ||
		loaded.TotalTokens() != orig.TotalTokens() {
		t.Errorf("scalar stats differ")
	}
	if !reflect.DeepEqual(loaded.VocabList(), orig.VocabList()) {
		t.Errorf("vocab differs")
	}
	orig.Tokens(func(tok string) {
		if !reflect.DeepEqual(loaded.Postings(tok), orig.Postings(tok)) {
			t.Errorf("postings of %q differ", tok)
		}
		if !reflect.DeepEqual(loaded.TypeList(tok), orig.TypeList(tok)) {
			t.Errorf("type list of %q differ", tok)
		}
		if loaded.Vocab.Count(tok) != orig.Vocab.Count(tok) {
			t.Errorf("vocab count of %q differs", tok)
		}
	})
	// Subtree lengths and path statistics.
	for _, s := range []string{"1", "1.1", "1.1.1", "1.2.1"} {
		d, _ := xmltree.ParseDewey(s)
		if loaded.SubtreeLen(d) != orig.SubtreeLen(d) {
			t.Errorf("subtree len of %s differs", s)
		}
	}
	cx := orig.Paths.Lookup("/a/c/x")
	if loaded.Paths.Lookup("/a/c/x") != cx {
		t.Errorf("path IDs differ after reload")
	}
	if loaded.NodesWithPath(cx) != orig.NodesWithPath(cx) {
		t.Errorf("path node counts differ")
	}
	if !reflect.DeepEqual(loaded.SubtreeLensByPath(cx), orig.SubtreeLensByPath(cx)) {
		t.Errorf("path lens differ")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOTANINDEXxxxxxxxxxxxxx",
		"truncated": "XCLEANIDX\x01partial",
	}
	for name, data := range cases {
		if _, err := Load(strings.NewReader(data)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Wrong version byte.
	tr := buildSample()
	var buf bytes.Buffer
	if err := Build(tr, tokenizer.Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len("XCLEANIDX")] = 99
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("wrong version: want error")
	}
}

func TestLoadRejectsBitrot(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := Build(tr, tokenizer.Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the gob payload mid-stream.
	b := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("truncated payload: want error")
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	tr := xmltree.NewTree("a")
	var buf bytes.Buffer
	if err := Build(tr, tokenizer.Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NodeCount() != 1 || loaded.Vocab.Size() != 0 {
		t.Errorf("empty index mangled: %d nodes, %d terms", loaded.NodeCount(), loaded.Vocab.Size())
	}
}
