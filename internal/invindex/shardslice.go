package invindex

import (
	"fmt"
	"sort"

	"xclean/internal/xmltree"
)

// Entity-range shard slicing for the scatter-gather cluster layer.
//
// A shard is a document-partitioned view of the corpus: posting lists,
// entity-root tables, and stored text are restricted to a contiguous
// run of top-level entity roots (direct children of the document root,
// in document order — the same unit the in-process parallel scan
// shards by), while every collection-global statistic is kept whole:
//
//   - the vocabulary and its counts (the Dirichlet background model of
//     Eq. (9) must see collection frequencies, not shard frequencies);
//   - the type lists f_p^w (result-type inference must agree on every
//     shard or the additive decomposition of Eq. (8) breaks);
//   - the path table, bigram table, and subtree-length table.
//
// Tokens whose postings all live on other shards keep an empty posting
// entry, so VocabList — and therefore the FastSS variant index and the
// error-model normalizer built over it — is identical on every shard.
//
// With those invariants, a candidate's shard-local entity sums add up
// to exactly the standalone sum, and the shard-local entity counts per
// result type add up to exactly the global N of Eq. (8), which is what
// makes coordinator-side score merging correct.

// ShardEntities returns shard `shard` of `n`: a self-contained Index
// over the shard'th contiguous range of top-level entity roots.
// Entities directly under the root with no top-level ordinal (depth <
// 2 nodes, including the root itself) belong to shard 0. The slice
// shares the receiver's immutable global tables; neither index may be
// mutated afterwards (AddDocument/RemoveDocument would corrupt both).
func (ix *Index) ShardEntities(shard, n int) (*Index, error) {
	if n < 1 {
		return nil, fmt.Errorf("invindex: shard count %d < 1", n)
	}
	if shard < 0 || shard >= n {
		return nil, fmt.Errorf("invindex: shard %d out of range [0,%d)", shard, n)
	}

	// Top-level entity roots are the depth-2 nodes; their ordinal is
	// the second Dewey component. The subtree-length table covers every
	// node, so its depth-2 keys enumerate them all.
	var ordinals []uint32
	for key := range ix.subtreeLen {
		if len(key) == 8 { // depth 2: two 4-byte components
			ordinals = append(ordinals, xmltree.DeweyFromKey(key)[1])
		}
	}
	sort.Slice(ordinals, func(i, j int) bool { return ordinals[i] < ordinals[j] })
	lo := shard * len(ordinals) / n
	hi := (shard + 1) * len(ordinals) / n
	owned := make(map[uint32]bool, hi-lo)
	for _, ord := range ordinals[lo:hi] {
		owned[ord] = true
	}
	owns := func(d xmltree.Dewey) bool {
		if len(d) < 2 {
			return shard == 0
		}
		return owned[d[1]]
	}

	sl := &Index{
		Paths:      ix.Paths,
		Vocab:      ix.Vocab,
		postings:   make(map[string][]Posting),
		typeLists:  ix.typeLists,
		subtreeLen: ix.subtreeLen,
		pathNodes:  make(map[xmltree.PathID]int32),
		pathLens:   make(map[xmltree.PathID][]int32),
		pathRoots:  make(map[xmltree.PathID][]string),
		bigrams:    ix.bigrams,
		maxDepth:   ix.maxDepth,
		totalTok:   ix.totalTok,
		opts:       ix.opts,
	}

	// Posting lists: keep only owned entries, but keep every token key
	// (possibly with an empty list) so the shard vocabulary — and the
	// variant sets derived from it — matches the full corpus.
	ix.Tokens(func(tok string) {
		var kept []Posting
		for _, p := range ix.Postings(tok) {
			if owns(p.Dewey) {
				kept = append(kept, p)
			}
		}
		sl.postings[tok] = kept
	})

	// Entity tables: pathRoots and pathLens are appended in lockstep at
	// build time, so filtering them jointly by index keeps them aligned.
	for p, roots := range ix.pathRoots {
		lens := ix.pathLens[p]
		for i, key := range roots {
			if !owns(xmltree.DeweyFromKey(key)) {
				continue
			}
			sl.pathRoots[p] = append(sl.pathRoots[p], key)
			sl.pathLens[p] = append(sl.pathLens[p], lens[i])
		}
		if c := len(sl.pathRoots[p]); c > 0 {
			sl.pathNodes[p] = int32(c)
			sl.nodeCount += c
		}
	}

	if ix.storedText != nil {
		sl.storedText = make(map[string]string)
		for _, key := range ix.storedKeys {
			if owns(xmltree.DeweyFromKey(key)) {
				sl.storedText[key] = ix.storedText[key]
				sl.storedKeys = append(sl.storedKeys, key)
			}
		}
	}
	return sl, nil
}
