package invindex

import (
	"fmt"
	"sort"

	"xclean/internal/postings"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Tables is the flat, column-oriented shape of an Index: every map
// unrolled into sorted parallel arrays. It is the interchange format
// between the heap index and the on-disk snapshot layer
// (internal/snapfile): ExportTables flattens an index for the snapshot
// writer, FromTables reassembles one when a reader materializes (the
// write path of a snapshot-backed engine).
type Tables struct {
	// PathParents/PathLabels are xmltree.PathTable.Export output.
	PathParents []int32
	PathLabels  []string

	// Tokens is the sorted vocabulary; the per-token columns below are
	// all indexed parallel to it.
	Tokens []string
	// Counts are the vocabulary collection frequencies.
	Counts []int64
	// Lists are the block-compressed posting lists.
	Lists []*postings.List
	// TypeLists are the f_p^w lists, sorted by path ID.
	TypeLists [][]TypeCount

	// SubtreeKeys are all node Dewey keys, sorted (byte order ==
	// document order); SubtreeLens[i] is |D(SubtreeKeys[i])|.
	SubtreeKeys []string
	SubtreeLens []int32

	// PathNodes[p] is N_p; PathEnts[p] lists the entities of path p as
	// indices into SubtreeKeys. Both are indexed by PathID.
	PathNodes []int32
	PathEnts  [][]int32

	// BigramKeys are the sorted "w1\x00w2" adjacency keys;
	// BigramVals[i] is the count of BigramKeys[i].
	BigramKeys []string
	BigramVals []int64

	// StoredKeys/StoredTexts carry BuildStored's preview text in
	// document order (both nil without stored text).
	StoredKeys  []string
	StoredTexts []string

	NodeCount int
	MaxDepth  int
	TotalTok  int64
	Opts      tokenizer.Options
}

// ExportTables flattens the index into sorted columnar tables. The
// returned structure shares no mutable state with the index except the
// stored-text strings and compressed list payloads (both immutable).
func (ix *Index) ExportTables() Tables {
	t := Tables{
		NodeCount: ix.nodeCount,
		MaxDepth:  ix.maxDepth,
		TotalTok:  ix.totalTok,
		Opts:      ix.opts,
	}
	t.PathParents, t.PathLabels = ix.Paths.Export()

	t.Tokens = ix.VocabList()
	t.Counts = make([]int64, len(t.Tokens))
	t.Lists = make([]*postings.List, len(t.Tokens))
	t.TypeLists = make([][]TypeCount, len(t.Tokens))
	for i, tok := range t.Tokens {
		t.Counts[i] = ix.Vocab.Count(tok)
		if ix.comp != nil {
			t.Lists[i] = ix.comp[tok]
		} else {
			t.Lists[i] = postings.Encode(ix.postings[tok])
		}
		t.TypeLists[i] = ix.typeLists[tok]
	}

	t.SubtreeKeys = make([]string, 0, len(ix.subtreeLen))
	for k := range ix.subtreeLen {
		t.SubtreeKeys = append(t.SubtreeKeys, k)
	}
	sort.Strings(t.SubtreeKeys)
	t.SubtreeLens = make([]int32, len(t.SubtreeKeys))
	subIdx := make(map[string]int32, len(t.SubtreeKeys))
	for i, k := range t.SubtreeKeys {
		t.SubtreeLens[i] = ix.subtreeLen[k]
		subIdx[k] = int32(i)
	}

	nPaths := ix.Paths.Len()
	t.PathNodes = make([]int32, nPaths)
	t.PathEnts = make([][]int32, nPaths)
	for p := xmltree.PathID(0); int(p) < nPaths; p++ {
		t.PathNodes[p] = ix.pathNodes[p]
		roots := ix.pathRoots[p]
		if len(roots) == 0 {
			continue
		}
		ents := make([]int32, len(roots))
		for j, key := range roots {
			ents[j] = subIdx[key]
		}
		t.PathEnts[p] = ents
	}

	t.BigramKeys = make([]string, 0, len(ix.bigrams))
	for k := range ix.bigrams {
		t.BigramKeys = append(t.BigramKeys, k)
	}
	sort.Strings(t.BigramKeys)
	t.BigramVals = make([]int64, len(t.BigramKeys))
	for i, k := range t.BigramKeys {
		t.BigramVals[i] = ix.bigrams[k]
	}

	if ix.storedText != nil {
		t.StoredKeys = ix.storedKeys
		t.StoredTexts = make([]string, len(ix.storedKeys))
		for i, k := range ix.storedKeys {
			t.StoredTexts[i] = ix.storedText[k]
		}
	}
	return t
}

// FromTables reassembles a heap index from columnar tables. Posting
// lists stay block-compressed (the result reports Compacted()==true),
// matching the CompactPostings build mode; scores are unaffected. It
// is the materialization path a snapshot-backed engine takes on its
// first write.
func FromTables(t Tables) (*Index, error) {
	if len(t.Counts) != len(t.Tokens) || len(t.Lists) != len(t.Tokens) ||
		len(t.TypeLists) != len(t.Tokens) {
		return nil, fmt.Errorf("invindex: tables: inconsistent vocab columns")
	}
	if len(t.SubtreeLens) != len(t.SubtreeKeys) {
		return nil, fmt.Errorf("invindex: tables: inconsistent subtree columns")
	}
	if len(t.BigramVals) != len(t.BigramKeys) {
		return nil, fmt.Errorf("invindex: tables: inconsistent bigram columns")
	}
	if len(t.StoredTexts) != len(t.StoredKeys) {
		return nil, fmt.Errorf("invindex: tables: inconsistent stored-text columns")
	}
	paths, err := xmltree.ImportPathTable(t.PathParents, t.PathLabels)
	if err != nil {
		return nil, fmt.Errorf("invindex: tables: %w", err)
	}
	nPaths := paths.Len()
	if len(t.PathNodes) > nPaths || len(t.PathEnts) > nPaths {
		return nil, fmt.Errorf("invindex: tables: path stats exceed path table")
	}
	ix := &Index{
		Paths:      paths,
		Vocab:      tokenizer.NewVocabulary(),
		comp:       make(map[string]*postings.List, len(t.Tokens)),
		typeLists:  make(map[string][]TypeCount, len(t.Tokens)),
		subtreeLen: make(map[string]int32, len(t.SubtreeKeys)),
		pathNodes:  make(map[xmltree.PathID]int32, len(t.PathNodes)),
		pathLens:   make(map[xmltree.PathID][]int32, len(t.PathEnts)),
		pathRoots:  make(map[xmltree.PathID][]string, len(t.PathEnts)),
		bigrams:    make(map[string]int64, len(t.BigramKeys)),
		nodeCount:  t.NodeCount,
		maxDepth:   t.MaxDepth,
		totalTok:   t.TotalTok,
		opts:       t.Opts,
	}
	for i, tok := range t.Tokens {
		if t.Lists[i] == nil {
			return nil, fmt.Errorf("invindex: tables: token %q has no posting list", tok)
		}
		ix.comp[tok] = t.Lists[i]
		ix.typeLists[tok] = t.TypeLists[i]
		ix.Vocab.Add(tok, t.Counts[i])
	}
	for i, k := range t.SubtreeKeys {
		ix.subtreeLen[k] = t.SubtreeLens[i]
	}
	for p, n := range t.PathNodes {
		if n != 0 {
			ix.pathNodes[xmltree.PathID(p)] = n
		}
	}
	for p, ents := range t.PathEnts {
		if len(ents) == 0 {
			continue
		}
		roots := make([]string, len(ents))
		lens := make([]int32, len(ents))
		for j, idx := range ents {
			if idx < 0 || int(idx) >= len(t.SubtreeKeys) {
				return nil, fmt.Errorf("invindex: tables: entity index %d out of range", idx)
			}
			roots[j] = t.SubtreeKeys[idx]
			lens[j] = t.SubtreeLens[idx]
		}
		ix.pathRoots[xmltree.PathID(p)] = roots
		ix.pathLens[xmltree.PathID(p)] = lens
	}
	for i, k := range t.BigramKeys {
		ix.bigrams[k] = t.BigramVals[i]
	}
	if t.StoredKeys != nil {
		ix.storedKeys = t.StoredKeys
		ix.storedText = make(map[string]string, len(t.StoredKeys))
		for i, k := range t.StoredKeys {
			ix.storedText[k] = t.StoredTexts[i]
		}
	}
	return ix, nil
}
