package invindex

import (
	"fmt"
	"sort"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Segment support: the primitives internal/segment composes into an
// LSM-style stack of immutable index segments plus a mutable tail.
//
//   - NewSegment / GraftDocument build a small index over a document
//     range without parsing a whole corpus;
//   - AnalyzeRemoval computes the exact per-structure deltas of a
//     document removal WITHOUT mutating the index (the tombstone set a
//     sealed segment carries);
//   - CloneDropping materializes a purged copy of a segment with its
//     tombstones applied;
//   - MergeOrdered concatenates ordinal-disjoint segments back into one
//     index identical to a cold build over the union.
//
// All of them preserve the invariant the rest of the system depends
// on: the resulting index is indistinguishable from Build over the
// same set of live documents (up to root-child ordinals, which are
// never reused).

// PathDepth is the depth of label path p (resulttype.Source).
func (ix *Index) PathDepth(p xmltree.PathID) int { return ix.Paths.Depth(p) }

// RootLabel returns the label of the indexed tree's root.
func (ix *Index) RootLabel() (string, error) {
	rootPath, err := ix.rootPathID()
	if err != nil {
		return "", err
	}
	return ix.Paths.Label(rootPath), nil
}

// MaxRootChildOrdinal is the largest sibling ordinal in use directly
// under the root (0 on an empty index).
func (ix *Index) MaxRootChildOrdinal() uint32 {
	return ix.maxRootChildOrdinal(xmltree.Dewey{1})
}

// RootOrdinalRange is the smallest and largest sibling ordinal in use
// directly under the root (both 0 on an empty index). The segment store
// uses it to order and merge ordinal-disjoint segments.
func (ix *Index) RootOrdinalRange() (lo, hi uint32) {
	return ix.rootOrdinalRange()
}

// RootChildCount is the number of documents (direct children of the
// root) in the index.
func (ix *Index) RootChildCount() int {
	rk := xmltree.Dewey{1}.Key()
	n := 0
	for key := range ix.subtreeLen {
		if len(key) == len(rk)+4 && key[:len(rk)] == rk {
			n++
		}
	}
	return n
}

// HasRootChild reports whether a document with the given root-child
// ordinal exists in the index (tombstones are not consulted — the
// caller overlays its own removal state).
func (ix *Index) HasRootChild(ord uint32) bool {
	_, ok := ix.subtreeLen[xmltree.Dewey{1, ord}.Key()]
	return ok
}

// NewSegment returns an empty mutable index holding only a root node
// with the given label: the starting point of a tail segment. The
// root's label is interned into paths, so when paths is (a clone of)
// the base corpus's table, the segment's root PathID — and every path
// under it — agrees with the base segment's IDs.
func NewSegment(rootLabel string, paths *xmltree.PathTable, opts tokenizer.Options, storeText bool) *Index {
	rootPath := paths.Intern(xmltree.InvalidPath, rootLabel)
	rk := xmltree.Dewey{1}.Key()
	ix := &Index{
		Paths:      paths,
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting),
		typeLists:  make(map[string][]TypeCount),
		subtreeLen: map[string]int32{rk: 0},
		pathNodes:  map[xmltree.PathID]int32{rootPath: 1},
		pathLens:   map[xmltree.PathID][]int32{rootPath: {0}},
		pathRoots:  map[xmltree.PathID][]string{rootPath: {rk}},
		bigrams:    make(map[string]int64),
		nodeCount:  1,
		maxDepth:   1,
		opts:       opts,
	}
	if storeText {
		ix.storedText = make(map[string]string)
	}
	return ix
}

// GraftDocument is AddDocument with an explicit root-child ordinal:
// doc's root becomes child `ordinal` of the indexed root. Ordinals
// must be grafted in increasing order (posting lists grow by
// appending). It is how a tail segment absorbs documents whose
// ordinals were assigned globally across the whole segment stack.
func (ix *Index) GraftDocument(doc *xmltree.Tree, ordinal uint32) error {
	if ix.comp != nil {
		return fmt.Errorf("invindex: AddDocument: compacted index is immutable")
	}
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("invindex: AddDocument: empty document")
	}
	if ordinal == 0 {
		return fmt.Errorf("invindex: GraftDocument: ordinal must be ≥ 1")
	}

	rootPath, err := ix.rootPathID()
	if err != nil {
		return err
	}
	root := xmltree.Dewey{1}
	if ordinal <= ix.maxRootChildOrdinal(root) {
		return fmt.Errorf("invindex: GraftDocument: ordinal %d not past the last document", ordinal)
	}
	if ix.nextRootChild <= ordinal {
		ix.nextRootChild = ordinal + 1
	}

	// Index the grafted subtree, collecting the tokens it introduces.
	newPostings := make(map[string][]Posting)
	added := ix.indexGrafted(doc.Root, root.Child(ordinal), rootPath, newPostings)

	// The root's virtual document grew.
	rootKey := root.Key()
	ix.subtreeLen[rootKey] += added
	if lens := ix.pathLens[rootPath]; len(lens) == 1 {
		lens[0] += added
	}

	// Merge type-list deltas. Ancestors at depth ≥ 2 lie inside the
	// grafted subtree, so every (token, ancestor) pair there is new;
	// the root (depth 1) was already counted for any token that existed
	// before this call.
	for tok, plist := range newPostings {
		counts := make(map[xmltree.PathID]int32)
		var prev xmltree.Dewey
		for _, p := range plist {
			div := divergeDepth(prev, p.Dewey)
			if div < 2 {
				div = 1 // never re-count depth-1 here
			}
			for k := div + 1; k <= p.Dewey.Depth(); k++ {
				counts[ix.Paths.Ancestor(p.Path, k)]++
			}
			prev = p.Dewey
		}
		if len(ix.postings[tok]) == len(plist) {
			// Brand-new token: the root now counts for it too.
			counts[rootPath]++
		}
		ix.mergeTypeCounts(tok, counts)
	}
	return nil
}

// RemovedNode is one node of a tombstoned document: its Dewey key,
// label path, and subtree token count.
type RemovedNode struct {
	Key  string
	Path xmltree.PathID
	Len  int32
}

// RemovalStats is the tombstone set of a sealed segment: the exact
// per-structure deltas of every document logically removed from it.
// Values are immutable once published — AnalyzeRemoval returns a fresh
// merged copy rather than extending one in place, so concurrent
// readers may keep using the previous snapshot.
type RemovalStats struct {
	// Ords are the removed root-child ordinals.
	Ords map[uint32]bool
	// Docs counts removed documents (== len(Ords)).
	Docs int
	// Nodes lists every removed node with its path and subtree length.
	Nodes []RemovedNode
	// Vocab holds removed token occurrences, Postings removed posting
	// entries (distinct nodes), per token.
	Vocab    map[string]int64
	Postings map[string]int
	// Types holds the type-list deltas per token (the reverse of the
	// AddDocument merge, root transition included).
	Types map[string]map[xmltree.PathID]int32
	// Bigrams holds removed adjacency counts.
	Bigrams map[string]int64
	// Toks is the removed token total, Total the removed root subtree
	// length (they are equal today; kept separate for clarity).
	Toks  int64
	Total int32
}

// DeadOrds returns the removed ordinals as a set shared with the
// receiver (callers must not mutate it).
func (rs *RemovalStats) DeadOrds() map[uint32]bool {
	if rs == nil {
		return nil
	}
	return rs.Ords
}

// DeadPostings is the number of tombstoned posting entries of tok.
func (rs *RemovalStats) DeadPostings(tok string) int {
	if rs == nil {
		return 0
	}
	return rs.Postings[tok]
}

// DeadVocab is the number of tombstoned occurrences of tok.
func (rs *RemovalStats) DeadVocab(tok string) int64 {
	if rs == nil {
		return 0
	}
	return rs.Vocab[tok]
}

// DeadTypes returns the tombstoned type-list delta of tok (nil-safe).
func (rs *RemovalStats) DeadTypes(tok string) map[xmltree.PathID]int32 {
	if rs == nil {
		return nil
	}
	return rs.Types[tok]
}

// DeadBigrams is the tombstoned adjacency count of the pair (w1, w2).
func (rs *RemovalStats) DeadBigrams(w1, w2 string) int64 {
	if rs == nil {
		return 0
	}
	return rs.Bigrams[w1+"\x00"+w2]
}

// DeadToks is the tombstoned token total.
func (rs *RemovalStats) DeadToks() int64 {
	if rs == nil {
		return 0
	}
	return rs.Toks
}

// DeadDocs is the number of tombstoned documents.
func (rs *RemovalStats) DeadDocs() int {
	if rs == nil {
		return 0
	}
	return rs.Docs
}

// DeadNodes is the number of tombstoned nodes.
func (rs *RemovalStats) DeadNodes() int {
	if rs == nil {
		return 0
	}
	return len(rs.Nodes)
}

// clone returns a deep copy of rs (empty stats when rs is nil).
func (rs *RemovalStats) clone() *RemovalStats {
	out := &RemovalStats{
		Ords:     make(map[uint32]bool),
		Vocab:    make(map[string]int64),
		Postings: make(map[string]int),
		Types:    make(map[string]map[xmltree.PathID]int32),
		Bigrams:  make(map[string]int64),
	}
	if rs == nil {
		return out
	}
	out.Docs = rs.Docs
	out.Toks = rs.Toks
	out.Total = rs.Total
	out.Nodes = append([]RemovedNode(nil), rs.Nodes...)
	for k, v := range rs.Ords {
		out.Ords[k] = v
	}
	for k, v := range rs.Vocab {
		out.Vocab[k] = v
	}
	for k, v := range rs.Postings {
		out.Postings[k] = v
	}
	for tok, m := range rs.Types {
		cm := make(map[xmltree.PathID]int32, len(m))
		for p, f := range m {
			cm[p] = f
		}
		out.Types[tok] = cm
	}
	for k, v := range rs.Bigrams {
		out.Bigrams[k] = v
	}
	return out
}

// AnalyzeRemoval computes the removal deltas of the document rooted at
// the given direct child of the indexed root, WITHOUT mutating the
// index: the same bookkeeping RemoveDocument performs, returned as a
// tombstone set merged with any prior removals from the same segment.
// Like RemoveDocument it requires stored text (the removed tokens and
// bigrams are re-derived from it). The receiver may be compacted —
// nothing is written.
//
// prior matters beyond accumulation: the type-list root transition
// ("does the root still count for this token?") must be evaluated
// against the LIVE state of the segment, i.e. net of documents already
// tombstoned.
func (ix *Index) AnalyzeRemoval(root xmltree.Dewey, prior *RemovalStats) (*RemovalStats, error) {
	if ix.storedText == nil {
		return nil, fmt.Errorf("invindex: RemoveDocument: requires an index built with BuildStored")
	}
	if root.Depth() != 2 {
		return nil, fmt.Errorf("invindex: RemoveDocument: %s is not a direct child of the root", root)
	}
	rootKey := root.Key()
	removedTotal, ok := ix.subtreeLen[rootKey]
	if !ok || prior.DeadOrds()[root[1]] {
		return nil, fmt.Errorf("invindex: RemoveDocument: no document at %s", root)
	}
	docRootPath, err := ix.rootPathID()
	if err != nil {
		return nil, err
	}

	out := prior.clone()
	out.Ords[root[1]] = true
	out.Docs++
	out.Total += removedTotal

	// Enumerate every node of the subtree with its label path.
	pathOf := make(map[string]xmltree.PathID)
	for path, keys := range ix.pathRoots {
		for _, k := range keys {
			if isUnder(k, rootKey) {
				out.Nodes = append(out.Nodes, RemovedNode{Key: k, Path: path, Len: ix.subtreeLen[k]})
				pathOf[k] = path
			}
		}
	}

	// Token-level deltas, re-derived from the stored text in document
	// order (so the type-list delta is computed exactly as AddDocument's
	// merge was).
	lo := sort.SearchStrings(ix.storedKeys, rootKey)
	removedPostings := make(map[string][]Posting)
	for hi := lo; hi < len(ix.storedKeys) && isUnder(ix.storedKeys[hi], rootKey); hi++ {
		key := ix.storedKeys[hi]
		toks := ix.opts.Tokenize(ix.storedText[key])
		if len(toks) == 0 {
			continue
		}
		dewey := xmltree.DeweyFromKey(key)
		path := pathOf[key]
		tf := make(map[string]int32, len(toks))
		order := make([]string, 0, len(toks))
		for _, tok := range toks {
			if tf[tok] == 0 {
				order = append(order, tok)
			}
			tf[tok]++
		}
		for _, tok := range order {
			removedPostings[tok] = append(removedPostings[tok], Posting{
				Dewey: dewey, Path: path, TF: tf[tok],
			})
			out.Vocab[tok] += int64(tf[tok])
		}
		for i := 1; i < len(toks); i++ {
			out.Bigrams[toks[i-1]+"\x00"+toks[i]]++
		}
		out.Toks += int64(len(toks))
	}

	for tok, plist := range removedPostings {
		out.Postings[tok] += len(plist)

		// Reverse type-list delta for this document.
		counts := out.Types[tok]
		if counts == nil {
			counts = make(map[xmltree.PathID]int32)
			out.Types[tok] = counts
		}
		var prevD xmltree.Dewey
		for _, p := range plist {
			div := divergeDepth(prevD, p.Dewey)
			if div < 2 {
				div = 1
			}
			for k := div + 1; k <= p.Dewey.Depth(); k++ {
				counts[ix.Paths.Ancestor(p.Path, k)]++
			}
			prevD = p.Dewey
		}
		if ix.DocFreq(tok)-out.Postings[tok] == 0 {
			counts[docRootPath]++ // the root no longer counts for tok
		}
	}
	return out, nil
}

// CloneDropping returns an independent copy of the index with every
// tombstoned document purged — the segment a compaction publishes in
// place of (segment, tombstones). dead may be nil or empty, in which
// case the result is a plain deep copy. The result always holds raw
// posting lists (callers may Compact it); the path table is shared
// (it is append-only and the clone introduces no new paths).
func (ix *Index) CloneDropping(dead *RemovalStats) (*Index, error) {
	deadOrd := func(d xmltree.Dewey) bool {
		return len(d) >= 2 && dead.DeadOrds()[d[1]]
	}
	deadKey := func(key string) bool {
		return len(key) >= 8 && dead.DeadOrds()[xmltree.DeweyFromKey(key)[1]]
	}

	out := &Index{
		Paths:      ix.Paths,
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting),
		typeLists:  make(map[string][]TypeCount),
		subtreeLen: make(map[string]int32, len(ix.subtreeLen)),
		pathNodes:  make(map[xmltree.PathID]int32),
		pathLens:   make(map[xmltree.PathID][]int32),
		pathRoots:  make(map[xmltree.PathID][]string),
		bigrams:    make(map[string]int64, len(ix.bigrams)),
		totalTok:   ix.totalTok - dead.DeadToks(),
		opts:       ix.opts,
	}

	var err error
	ix.Tokens(func(tok string) {
		if err != nil {
			return
		}
		full := ix.Postings(tok)
		kept := make([]Posting, 0, len(full)-dead.DeadPostings(tok))
		for _, p := range full {
			if !deadOrd(p.Dewey) {
				kept = append(kept, p)
			}
		}
		if len(full)-len(kept) != dead.DeadPostings(tok) {
			err = fmt.Errorf("invindex: CloneDropping: postings for %q diverge from tombstones (%d dropped, %d recorded); index corrupt",
				tok, len(full)-len(kept), dead.DeadPostings(tok))
			return
		}
		if len(kept) > 0 {
			out.postings[tok] = kept
		}
		if c := ix.Vocab.Count(tok) - dead.DeadVocab(tok); c > 0 {
			out.Vocab.Add(tok, c)
		}
		deadTypes := dead.DeadTypes(tok)
		tl := ix.typeLists[tok]
		keptTL := make([]TypeCount, 0, len(tl))
		for _, tc := range tl {
			tc.F -= deadTypes[tc.Path]
			if tc.F > 0 {
				keptTL = append(keptTL, tc)
			}
		}
		if len(keptTL) > 0 {
			out.typeLists[tok] = keptTL
		}
	})
	if err != nil {
		return nil, err
	}

	for k, v := range ix.bigrams {
		out.bigrams[k] = v
	}
	if dead != nil {
		for k, v := range dead.Bigrams {
			if out.bigrams[k] -= v; out.bigrams[k] <= 0 {
				delete(out.bigrams, k)
			}
		}
	}

	for key, l := range ix.subtreeLen {
		if deadKey(key) {
			continue
		}
		out.subtreeLen[key] = l
	}
	rk := xmltree.Dewey{1}.Key()
	out.subtreeLen[rk] -= dead.DeadTotal()

	// Entity tables: pathRoots and pathLens are appended in lockstep at
	// build time, so filtering them jointly by index keeps them aligned.
	rootPath, rpErr := ix.rootPathID()
	if rpErr != nil {
		return nil, rpErr
	}
	for p, roots := range ix.pathRoots {
		lens := ix.pathLens[p]
		for i, key := range roots {
			if deadKey(key) {
				continue
			}
			l := lens[i]
			if p == rootPath && len(key) == 4 {
				l -= dead.DeadTotal()
			}
			out.pathRoots[p] = append(out.pathRoots[p], key)
			out.pathLens[p] = append(out.pathLens[p], l)
		}
		if c := len(out.pathRoots[p]); c > 0 {
			out.pathNodes[p] = int32(c)
			out.nodeCount += c
		}
	}

	for key := range out.subtreeLen {
		if d := len(key) / 4; d > out.maxDepth {
			out.maxDepth = d
		}
	}

	if ix.storedText != nil {
		out.storedText = make(map[string]string, len(ix.storedText))
		for _, key := range ix.storedKeys {
			if deadKey(key) {
				continue
			}
			out.storedText[key] = ix.storedText[key]
			out.storedKeys = append(out.storedKeys, key)
		}
	}
	return out, nil
}

// DeadTotal is the tombstoned root subtree-length delta.
func (rs *RemovalStats) DeadTotal() int32 {
	if rs == nil {
		return 0
	}
	return rs.Total
}

// rootOrdinalRange returns the smallest and largest root-child
// ordinals present in the index (0, 0 when it holds no documents).
func (ix *Index) rootOrdinalRange() (lo, hi uint32) {
	rk := xmltree.Dewey{1}.Key()
	for key := range ix.subtreeLen {
		if len(key) != len(rk)+4 || key[:len(rk)] != rk {
			continue
		}
		d := xmltree.DeweyFromKey(key)
		o := d[len(d)-1]
		if lo == 0 || o < lo {
			lo = o
		}
		if o > hi {
			hi = o
		}
	}
	return lo, hi
}

// MergeOrdered concatenates ordinal-disjoint segment indexes — parts
// must be ordered so every document ordinal in parts[i] is smaller
// than every ordinal in parts[i+1] — into one index identical to a
// cold build over the union of their documents. Posting lists stay in
// document order by construction (per-token concatenation in part
// order), the shared synthetic root is de-duplicated, and
// collection-global statistics (vocabulary, type lists, bigrams,
// lengths) are exact sums. Parts are not mutated. The path tables of
// all parts must share one interning lineage (clones of one base
// table), which the segment store guarantees.
func MergeOrdered(parts []*Index) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("invindex: MergeOrdered: no parts")
	}
	var prevHi uint32
	for i, p := range parts {
		lo, hi := p.rootOrdinalRange()
		if i > 0 && lo != 0 && lo <= prevHi {
			return nil, fmt.Errorf("invindex: MergeOrdered: part %d overlaps ordinal range of part %d", i, i-1)
		}
		if hi != 0 {
			prevHi = hi
		}
	}

	// The newest path table (largest) covers every part's IDs: tables
	// are append-only clones of one lineage.
	paths := parts[0].Paths
	for _, p := range parts {
		if p.Paths.Len() > paths.Len() {
			paths = p.Paths
		}
	}
	rootPath, err := parts[0].rootPathID()
	if err != nil {
		return nil, err
	}
	rk := xmltree.Dewey{1}.Key()

	stored := true
	for _, p := range parts {
		if !p.HasStoredText() {
			stored = false
			break
		}
	}

	out := &Index{
		Paths:      paths,
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting),
		typeLists:  make(map[string][]TypeCount),
		subtreeLen: make(map[string]int32),
		pathNodes:  make(map[xmltree.PathID]int32),
		pathLens:   make(map[xmltree.PathID][]int32),
		pathRoots:  make(map[xmltree.PathID][]string),
		bigrams:    make(map[string]int64),
		opts:       parts[0].opts,
	}
	if stored {
		out.storedText = make(map[string]string)
	}

	typeAcc := make(map[string]map[xmltree.PathID]int32)
	var rootLen int32
	for _, part := range parts {
		part.Tokens(func(tok string) {
			pl := part.Postings(tok)
			if len(pl) > 0 {
				out.postings[tok] = append(out.postings[tok], pl...)
			}
			if c := part.Vocab.Count(tok); c > 0 {
				out.Vocab.Add(tok, c)
			}
			acc := typeAcc[tok]
			if acc == nil {
				acc = make(map[xmltree.PathID]int32)
				typeAcc[tok] = acc
			}
			for _, tc := range part.typeLists[tok] {
				acc[tc.Path] += tc.F
			}
		})
		out.totalTok += part.totalTok

		for k, v := range part.bigrams {
			out.bigrams[k] += v
		}
		for key, l := range part.subtreeLen {
			if key == rk {
				rootLen += l
				continue
			}
			out.subtreeLen[key] = l
		}
		for p, roots := range part.pathRoots {
			lens := part.pathLens[p]
			for i, key := range roots {
				if p == rootPath && key == rk {
					continue // shared synthetic root, added once below
				}
				out.pathRoots[p] = append(out.pathRoots[p], key)
				out.pathLens[p] = append(out.pathLens[p], lens[i])
			}
		}
		if d := part.maxDepth; d > out.maxDepth {
			out.maxDepth = d
		}
		if stored {
			for _, key := range part.storedKeys {
				out.storedText[key] = part.storedText[key]
				out.storedKeys = append(out.storedKeys, key)
			}
		}
	}

	// One shared root node across all parts.
	out.subtreeLen[rk] = rootLen
	out.pathRoots[rootPath] = append(out.pathRoots[rootPath], rk)
	out.pathLens[rootPath] = append(out.pathLens[rootPath], rootLen)

	for p, roots := range out.pathRoots {
		out.pathNodes[p] = int32(len(roots))
		out.nodeCount += len(roots)
	}

	// Type lists: per-part sums are exact for every path except the
	// shared root, which counts once per part containing the token but
	// must count once total (there is exactly one root node).
	for tok, acc := range typeAcc {
		if acc[rootPath] > 0 {
			acc[rootPath] = 1
		}
		tl := make([]TypeCount, 0, len(acc))
		for p, f := range acc {
			if f > 0 {
				tl = append(tl, TypeCount{Path: p, F: f})
			}
		}
		if len(tl) == 0 {
			continue
		}
		sort.Slice(tl, func(i, j int) bool { return tl[i].Path < tl[j].Path })
		out.typeLists[tok] = tl
	}

	if stored {
		sort.Strings(out.storedKeys)
	}
	return out, nil
}
