package invindex

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// buildEntityTree builds a flat DBLP-like tree with n top-level
// entities; entity i's title carries a distinct token plus one token
// shared by every entity.
func buildEntityTree(n int) *xmltree.Tree {
	t := xmltree.NewTree("dblp")
	for i := 0; i < n; i++ {
		a := t.AddChild(t.Root, "article", "")
		t.AddChild(a, "title", fmt.Sprintf("paper%d shared", i))
	}
	return t
}

func TestShardEntitiesPartition(t *testing.T) {
	full := Build(buildEntityTree(7), tokenizer.Options{})
	for _, n := range []int{1, 2, 3, 7} {
		shards := make([]*Index, n)
		for i := range shards {
			var err error
			shards[i], err = full.ShardEntities(i, n)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
		}

		// Every shard exposes the full vocabulary (empty entries kept),
		// and concatenating each token's shard postings in shard order
		// reproduces the full posting list exactly — the shards are a
		// contiguous partition in document order.
		fullVocab := full.VocabList()
		full.Tokens(func(tok string) {
			var concat []Posting
			for i, sh := range shards {
				if !reflect.DeepEqual(sh.VocabList(), fullVocab) {
					t.Fatalf("n=%d shard %d: vocabulary differs", n, i)
				}
				concat = append(concat, sh.Postings(tok)...)
			}
			if !reflect.DeepEqual(concat, full.Postings(tok)) {
				t.Fatalf("n=%d token %q: concatenated shard postings differ\n got %v\nwant %v",
					n, tok, concat, full.Postings(tok))
			}
		})

		// Collection-global statistics are shared, entity tables are
		// local: per-path node counts sum back to the global count (the
		// Σ-of-local-norms = global-N invariant the coordinator needs).
		nodeSum := 0
		for i, sh := range shards {
			nodeSum += sh.NodeCount()
			if sh.TotalTokens() != full.TotalTokens() || sh.MaxDepth() != full.MaxDepth() {
				t.Fatalf("n=%d shard %d: global scalars differ", n, i)
			}
			if !reflect.DeepEqual(sh.TypeList("shared"), full.TypeList("shared")) {
				t.Fatalf("n=%d shard %d: type lists differ", n, i)
			}
		}
		if nodeSum != full.NodeCount() {
			t.Fatalf("n=%d: shard node counts sum to %d, want %d", n, nodeSum, full.NodeCount())
		}
		for p := xmltree.PathID(0); int(p) < full.Paths.Len(); p++ {
			var sum int32
			for _, sh := range shards {
				sum += sh.NodesWithPath(p)
			}
			if sum != full.NodesWithPath(p) {
				t.Fatalf("n=%d path %s: shard norms sum to %d, want %d",
					n, full.Paths.String(p), sum, full.NodesWithPath(p))
			}
		}
	}
}

func TestShardEntitiesSingleShardEqualsFull(t *testing.T) {
	full := Build(buildEntityTree(5), tokenizer.Options{})
	sl, err := full.ShardEntities(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sl.NodeCount() != full.NodeCount() {
		t.Fatalf("nodes %d vs %d", sl.NodeCount(), full.NodeCount())
	}
	full.Tokens(func(tok string) {
		if !reflect.DeepEqual(sl.Postings(tok), full.Postings(tok)) {
			t.Fatalf("postings of %q differ", tok)
		}
	})
}

func TestShardEntitiesSaveLoadRoundTrip(t *testing.T) {
	full := Build(buildEntityTree(6), tokenizer.Options{})
	sl, err := full.ShardEntities(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.VocabList(), sl.VocabList()) {
		t.Fatal("vocabulary differs after round trip")
	}
	sl.Tokens(func(tok string) {
		got, want := loaded.Postings(tok), sl.Postings(tok)
		if len(got) == 0 && len(want) == 0 {
			return // nil vs empty: an off-shard token's retained entry
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("postings of %q differ after round trip", tok)
		}
	})
	if loaded.NodeCount() != sl.NodeCount() || loaded.TotalTokens() != sl.TotalTokens() {
		t.Fatal("scalar stats differ after round trip")
	}
	for p := xmltree.PathID(0); int(p) < sl.Paths.Len(); p++ {
		if loaded.NodesWithPath(p) != sl.NodesWithPath(p) {
			t.Fatalf("path %s: norm differs after round trip", sl.Paths.String(p))
		}
	}
}

func TestShardEntitiesCompactedSource(t *testing.T) {
	full := Build(buildEntityTree(6), tokenizer.Options{})
	comp := Build(buildEntityTree(6), tokenizer.Options{})
	comp.Compact()
	sl, err := full.ShardEntities(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	slc, err := comp.ShardEntities(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	full.Tokens(func(tok string) {
		if !reflect.DeepEqual(sl.Postings(tok), slc.Postings(tok)) {
			t.Fatalf("postings of %q differ between raw and compacted source", tok)
		}
	})
}

func TestShardEntitiesErrors(t *testing.T) {
	full := Build(buildEntityTree(3), tokenizer.Options{})
	if _, err := full.ShardEntities(0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := full.ShardEntities(-1, 2); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := full.ShardEntities(2, 2); err == nil {
		t.Fatal("shard == n accepted")
	}
}
