package invindex

import (
	"container/heap"
	"sort"

	"xclean/internal/postings"
	"xclean/internal/xmltree"
)

// Entry is one element surfaced by a MergedList: a posting together
// with the variant token it belongs to.
type Entry struct {
	Posting
	Token string
	// TokenIdx is the position of Token in the variant list the
	// MergedList was built from.
	TokenIdx int
}

// listCursor walks one member inverted list. Implementations exist for
// raw posting slices and for compressed lists (streaming decode with
// block skipping).
type listCursor interface {
	exhausted() bool
	// head returns the current posting; only valid while !exhausted().
	// The returned pointer (and its Dewey) is valid until the next
	// advance/skipTo call; MergedList copies before yielding.
	head() *Posting
	advance()
	// skipTo advances to the first posting ≥ d in document order.
	// linear selects the scanning ablation mode where supported.
	skipTo(d xmltree.Dewey, linear bool)
}

// sliceCursor walks a raw in-memory posting slice.
type sliceCursor struct {
	list []Posting
	pos  int
}

func (c *sliceCursor) exhausted() bool { return c.pos >= len(c.list) }

func (c *sliceCursor) head() *Posting { return &c.list[c.pos] }

func (c *sliceCursor) advance() { c.pos++ }

// skipTo advances the cursor to the first posting whose Dewey code is
// ≥ d. With linear=false it uses exponential (galloping) search
// followed by binary search, giving O(log gap); with linear=true it
// scans, which is the ablation baseline.
func (c *sliceCursor) skipTo(d xmltree.Dewey, linear bool) {
	if linear {
		for !c.exhausted() && c.head().Dewey.Compare(d) < 0 {
			c.pos++
		}
		return
	}
	if c.exhausted() || c.head().Dewey.Compare(d) >= 0 {
		return
	}
	// Exponential search for an upper bound.
	step := 1
	lo := c.pos
	hi := c.pos + step
	for hi < len(c.list) && c.list[hi].Dewey.Compare(d) < 0 {
		lo = hi
		step *= 2
		hi = c.pos + step
	}
	if hi > len(c.list) {
		hi = len(c.list)
	}
	// Binary search within (lo, hi].
	c.pos = lo + sort.Search(hi-lo, func(i int) bool {
		return c.list[lo+i].Dewey.Compare(d) >= 0
	})
}

// compCursor streams a compressed posting list. Skipping uses the
// codec's block skip table; the linear flag is ignored because blocks
// must be decoded sequentially regardless.
type compCursor struct {
	it  *postings.Iterator
	cur Posting
	ok  bool
}

func newCompCursor(l *postings.List) *compCursor {
	c := &compCursor{it: l.Iter()}
	c.refresh()
	return c
}

// refresh copies the iterator head, cloning the Dewey code out of the
// iterator's reused buffer so consumers may retain it.
func (c *compCursor) refresh() {
	p, ok := c.it.Head()
	if ok {
		p.Dewey = p.Dewey.Clone()
	}
	c.cur, c.ok = p, ok
}

func (c *compCursor) exhausted() bool { return !c.ok }

func (c *compCursor) head() *Posting { return &c.cur }

func (c *compCursor) advance() {
	c.it.Advance()
	c.refresh()
}

func (c *compCursor) skipTo(d xmltree.Dewey, linear bool) {
	if c.ok && c.cur.Dewey.Compare(d) < 0 {
		c.it.SkipTo(d)
		c.refresh()
	}
}

// member pairs a cursor with its variant identity inside a MergedList.
type member struct {
	listCursor
	token    string
	tokenIdx int
}

// MergedList presents the inverted lists of all variants of one query
// keyword as a single list sorted in document order (Section V-C). It
// is implemented as a min-heap over the member list heads.
type MergedList struct {
	h          cursorHeap
	linearSkip bool
}

// NewMergedList builds a merged list over the postings of the given
// variant tokens. lists[i] must be the inverted list of tokens[i], in
// document order.
func NewMergedList(tokens []string, lists [][]Posting) *MergedList {
	m := &MergedList{}
	for i, l := range lists {
		if len(l) == 0 {
			continue
		}
		m.h = append(m.h, &member{
			listCursor: &sliceCursor{list: l},
			token:      tokens[i],
			tokenIdx:   i,
		})
	}
	heap.Init(&m.h)
	return m
}

// MergedListFor builds the merged list for the given variant tokens
// directly from the index storage: raw slices normally, streaming
// compressed cursors on a compacted index (no per-query decode of whole
// lists).
func (ix *Index) MergedListFor(tokens []string) *MergedList {
	m := &MergedList{}
	for i, tok := range tokens {
		var c listCursor
		if ix.comp != nil {
			l, ok := ix.comp[tok]
			if !ok || l.Len() == 0 {
				continue
			}
			c = newCompCursor(l)
		} else {
			pl := ix.postings[tok]
			if len(pl) == 0 {
				continue
			}
			c = &sliceCursor{list: pl}
		}
		m.h = append(m.h, &member{listCursor: c, token: tok, tokenIdx: i})
	}
	heap.Init(&m.h)
	return m
}

// SetLinearSkip switches SkipTo to linear scanning (for the skipping
// ablation benchmark). It affects raw-slice cursors only.
func (m *MergedList) SetLinearSkip(v bool) { m.linearSkip = v }

// CurPos returns the head of the merged list without consuming it.
func (m *MergedList) CurPos() (Entry, bool) {
	if len(m.h) == 0 {
		return Entry{}, false
	}
	c := m.h[0]
	return Entry{Posting: *c.head(), Token: c.token, TokenIdx: c.tokenIdx}, true
}

// Next returns the head and removes it from the merged list.
func (m *MergedList) Next() (Entry, bool) {
	if len(m.h) == 0 {
		return Entry{}, false
	}
	c := m.h[0]
	e := Entry{Posting: *c.head(), Token: c.token, TokenIdx: c.tokenIdx}
	c.advance()
	if c.exhausted() {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return e, true
}

// SkipTo discards every entry whose Dewey code is smaller than d and
// returns the new head (the first entry ≥ d), if any.
func (m *MergedList) SkipTo(d xmltree.Dewey) (Entry, bool) {
	// Advance each member list independently, dropping exhausted ones,
	// then rebuild the heap, as described in Section V-C.
	kept := m.h[:0]
	for _, c := range m.h {
		c.skipTo(d, m.linearSkip)
		if !c.exhausted() {
			kept = append(kept, c)
		}
	}
	m.h = kept
	heap.Init(&m.h)
	return m.CurPos()
}

// CollectSubtree discards every entry before g, then consumes all
// entries inside the subtree rooted at g (g itself included), calling
// fn for each. Entries are delivered grouped by member list, in
// document order within each list.
//
// Only cursors whose heads lie before or inside the subtree are
// touched: the min-heap root is repeatedly skipped or drained in bulk,
// so member lists already positioned beyond the subtree cost nothing —
// the skipping behaviour Section V-C relies on.
func (m *MergedList) CollectSubtree(g xmltree.Dewey, fn func(Entry)) {
	for len(m.h) > 0 {
		c := m.h[0]
		head := c.head().Dewey
		switch {
		case head.Compare(g) < 0:
			c.skipTo(g, m.linearSkip)
		case g.AncestorOrSelf(head):
			for !c.exhausted() && g.AncestorOrSelf(c.head().Dewey) {
				fn(Entry{Posting: *c.head(), Token: c.token, TokenIdx: c.tokenIdx})
				c.advance()
			}
		default:
			// The earliest head is already past the subtree; so is
			// everything else.
			return
		}
		if c.exhausted() {
			heap.Pop(&m.h)
		} else {
			heap.Fix(&m.h, 0)
		}
	}
}

// Exhausted reports whether the merged list is empty.
func (m *MergedList) Exhausted() bool { return len(m.h) == 0 }

type cursorHeap []*member

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return h[i].head().Dewey.Compare(h[j].head().Dewey) < 0
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*member)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}
