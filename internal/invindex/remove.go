package invindex

import (
	"fmt"
	"sort"

	"xclean/internal/xmltree"
)

// RemoveDocument detaches the subtree rooted at the given direct child
// of the indexed root, reversing AddDocument: postings, type lists,
// subtree lengths, path statistics, vocabulary, bigram counts, and
// stored text all shrink as if the document had never been indexed.
// Sibling ordinals of the remaining documents are untouched, so all
// surviving Dewey codes stay valid.
//
// Removal requires an index built with BuildStored: the stored node
// text is what lets the removed document's tokens and bigrams be
// re-derived. Compacted indexes are immutable. Cost is proportional to
// the whole index (one scan to enumerate the subtree) plus the removed
// document's postings.
//
// Engines hold derived structures; rebuild or Refresh them afterwards.
// The variant index may retain words whose postings are now empty —
// such variants can never produce entities, so suggestions stay valid.
func (ix *Index) RemoveDocument(root xmltree.Dewey) error {
	if ix.comp != nil {
		return fmt.Errorf("invindex: RemoveDocument: compacted index is immutable")
	}
	if ix.storedText == nil {
		return fmt.Errorf("invindex: RemoveDocument: requires an index built with BuildStored")
	}
	if root.Depth() != 2 {
		return fmt.Errorf("invindex: RemoveDocument: %s is not a direct child of the root", root)
	}
	rootKey := root.Key()
	removedTotal, ok := ix.subtreeLen[rootKey]
	if !ok {
		return fmt.Errorf("invindex: RemoveDocument: no document at %s", root)
	}
	docRootPath, err := ix.rootPathID()
	if err != nil {
		return err
	}

	// Enumerate every node of the subtree, with its label path (via the
	// path-root lists) and subtree length.
	type removedNode struct {
		key  string
		path xmltree.PathID
		len  int32
	}
	var nodes []removedNode
	pathOf := make(map[string]xmltree.PathID)
	for path, keys := range ix.pathRoots {
		kept := keys[:0]
		for _, k := range keys {
			if isUnder(k, rootKey) {
				nodes = append(nodes, removedNode{key: k, path: path, len: ix.subtreeLen[k]})
				pathOf[k] = path
			} else {
				kept = append(kept, k)
			}
		}
		if len(kept) == 0 {
			delete(ix.pathRoots, path)
		} else {
			ix.pathRoots[path] = kept
		}
	}

	// Per-node structural bookkeeping.
	for _, n := range nodes {
		ix.nodeCount--
		if ix.pathNodes[n.path]--; ix.pathNodes[n.path] == 0 {
			delete(ix.pathNodes, n.path)
		}
		removeOneLen(ix.pathLens, n.path, n.len)
		delete(ix.subtreeLen, n.key)
	}

	// Token-level bookkeeping, re-derived from the stored text. The
	// removed postings per token are reconstructed in document order so
	// the type-list delta can be computed exactly as AddDocument did.
	lo := sort.SearchStrings(ix.storedKeys, rootKey)
	hi := lo
	removedPostings := make(map[string][]Posting)
	for hi < len(ix.storedKeys) && isUnder(ix.storedKeys[hi], rootKey) {
		key := ix.storedKeys[hi]
		text := ix.storedText[key]
		toks := ix.opts.Tokenize(text)
		if len(toks) > 0 {
			dewey := xmltree.DeweyFromKey(key)
			path := pathOf[key]
			tf := make(map[string]int32, len(toks))
			order := make([]string, 0, len(toks))
			for _, tok := range toks {
				if tf[tok] == 0 {
					order = append(order, tok)
				}
				tf[tok]++
			}
			for _, tok := range order {
				removedPostings[tok] = append(removedPostings[tok], Posting{
					Dewey: dewey, Path: path, TF: tf[tok],
				})
				ix.Vocab.Sub(tok, int64(tf[tok]))
			}
			for i := 1; i < len(toks); i++ {
				k := toks[i-1] + "\x00" + toks[i]
				if ix.bigrams[k]--; ix.bigrams[k] <= 0 {
					delete(ix.bigrams, k)
				}
			}
			ix.totalTok -= int64(len(toks))
		}
		delete(ix.storedText, key)
		hi++
	}
	ix.storedKeys = append(ix.storedKeys[:lo], ix.storedKeys[hi:]...)

	for tok, plist := range removedPostings {
		// Cut the removed range out of the posting list (contiguous:
		// lists are in document order and the subtree is one interval).
		full := ix.postings[tok]
		start := sort.Search(len(full), func(i int) bool {
			return full[i].Dewey.Compare(root) >= 0
		})
		end := start
		for end < len(full) && root.AncestorOrSelf(full[end].Dewey) {
			end++
		}
		if end-start != len(plist) {
			return fmt.Errorf("invindex: RemoveDocument: postings for %q diverge from stored text (%d vs %d); index corrupt",
				tok, end-start, len(plist))
		}
		if len(full) == end-start {
			delete(ix.postings, tok)
		} else {
			ix.postings[tok] = append(full[:start], full[end:]...)
		}

		// Reverse the type-list delta.
		counts := make(map[xmltree.PathID]int32)
		var prev xmltree.Dewey
		for _, p := range plist {
			div := divergeDepth(prev, p.Dewey)
			if div < 2 {
				div = 1
			}
			for k := div + 1; k <= p.Dewey.Depth(); k++ {
				counts[ix.Paths.Ancestor(p.Path, k)]++
			}
			prev = p.Dewey
		}
		if len(ix.postings[tok]) == 0 {
			counts[docRootPath]++ // the root no longer counts for tok
		}
		ix.subtractTypeCounts(tok, counts)
	}

	// The root's virtual document shrank.
	ix.subtreeLen[xmltree.Dewey{1}.Key()] -= removedTotal
	if lens := ix.pathLens[docRootPath]; len(lens) == 1 {
		lens[0] -= removedTotal
	}

	// maxDepth may have shrunk; recompute from the surviving nodes.
	ix.maxDepth = 0
	for key := range ix.subtreeLen {
		if d := len(key) / 4; d > ix.maxDepth {
			ix.maxDepth = d
		}
	}
	return nil
}

// isUnder reports whether a Dewey key lies in the subtree of the node
// with key rootKey (keys are fixed-width, so a 4-byte-aligned prefix
// test is the ancestor-or-self relation).
func isUnder(key, rootKey string) bool {
	return len(key) >= len(rootKey) && key[:len(rootKey)] == rootKey
}

// removeOneLen deletes one occurrence of val from m[path], dropping
// the slice when it empties.
func removeOneLen(m map[xmltree.PathID][]int32, path xmltree.PathID, val int32) {
	lens := m[path]
	for i, l := range lens {
		if l == val {
			lens[i] = lens[len(lens)-1]
			lens = lens[:len(lens)-1]
			if len(lens) == 0 {
				delete(m, path)
			} else {
				m[path] = lens
			}
			return
		}
	}
}

// subtractTypeCounts removes per-path deltas from tok's type list,
// dropping entries that reach zero and the list itself when empty.
func (ix *Index) subtractTypeCounts(tok string, counts map[xmltree.PathID]int32) {
	tl := ix.typeLists[tok]
	out := tl[:0]
	for _, tc := range tl {
		tc.F -= counts[tc.Path]
		if tc.F > 0 {
			out = append(out, tc)
		}
	}
	if len(out) == 0 {
		delete(ix.typeLists, tok)
	} else {
		ix.typeLists[tok] = out
	}
}
