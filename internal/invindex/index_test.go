package invindex

import (
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// buildSample constructs:
//
//	a (1)
//	├── c (1.1)
//	│   ├── x (1.1.1) "tree tree icde"
//	│   └── x (1.1.2) "tree"
//	└── d (1.2)
//	    └── x (1.2.1) "icde trie"
func buildSample() *xmltree.Tree {
	t := xmltree.NewTree("a")
	c := t.AddChild(t.Root, "c", "")
	t.AddChild(c, "x", "tree tree icde")
	t.AddChild(c, "x", "tree")
	d := t.AddChild(t.Root, "d", "")
	t.AddChild(d, "x", "icde trie")
	return t
}

func TestBuildPostings(t *testing.T) {
	tr := buildSample()
	ix := Build(tr, tokenizer.Options{})

	pl := ix.Postings("tree")
	if len(pl) != 2 {
		t.Fatalf("tree postings=%d want 2", len(pl))
	}
	if pl[0].Dewey.String() != "1.1.1" || pl[0].TF != 2 || pl[0].NodeLen != 3 {
		t.Errorf("posting 0 = %+v", pl[0])
	}
	if pl[1].Dewey.String() != "1.1.2" || pl[1].TF != 1 || pl[1].NodeLen != 1 {
		t.Errorf("posting 1 = %+v", pl[1])
	}

	// Document order must hold for every token.
	ix.Tokens(func(tok string) {
		pl := ix.Postings(tok)
		for i := 1; i < len(pl); i++ {
			if pl[i-1].Dewey.Compare(pl[i].Dewey) >= 0 {
				t.Errorf("postings of %q out of order", tok)
			}
		}
	})

	if ix.Postings("absent") != nil {
		t.Error("unknown token should have nil postings")
	}
}

func TestBuildStats(t *testing.T) {
	tr := buildSample()
	ix := Build(tr, tokenizer.Options{})

	if ix.NodeCount() != 6 {
		t.Errorf("NodeCount=%d want 6", ix.NodeCount())
	}
	if ix.MaxDepth() != 3 {
		t.Errorf("MaxDepth=%d", ix.MaxDepth())
	}
	if ix.TotalTokens() != 6 {
		t.Errorf("TotalTokens=%d want 6", ix.TotalTokens())
	}
	if ix.DocFreq("tree") != 2 || ix.DocFreq("icde") != 2 || ix.DocFreq("trie") != 1 {
		t.Error("DocFreq wrong")
	}
	if ix.Vocab.Count("tree") != 3 {
		t.Errorf("vocab count tree=%d want 3", ix.Vocab.Count("tree"))
	}
	got := ix.VocabList()
	want := []string{"icde", "tree", "trie"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("VocabList=%v", got)
	}
}

func TestSubtreeLen(t *testing.T) {
	tr := buildSample()
	ix := Build(tr, tokenizer.Options{})

	cases := map[string]int32{
		"1":     6,
		"1.1":   4,
		"1.1.1": 3,
		"1.1.2": 1,
		"1.2":   2,
		"1.2.1": 2,
	}
	for s, want := range cases {
		d, _ := xmltree.ParseDewey(s)
		if got := ix.SubtreeLen(d); got != want {
			t.Errorf("SubtreeLen(%s)=%d want %d", s, got, want)
		}
		if got := ix.SubtreeLenKey(d.Key()); got != want {
			t.Errorf("SubtreeLenKey(%s)=%d want %d", s, got, want)
		}
	}
	unknown, _ := xmltree.ParseDewey("1.9")
	if ix.SubtreeLen(unknown) != 0 {
		t.Error("unknown dewey should have len 0")
	}
}

func TestTypeLists(t *testing.T) {
	tr := buildSample()
	ix := Build(tr, tokenizer.Options{})
	paths := tr.Paths

	f := func(tok, path string) int32 {
		id := paths.Lookup(path)
		if id == xmltree.InvalidPath {
			t.Fatalf("path %s not interned", path)
		}
		for _, tc := range ix.TypeList(tok) {
			if tc.Path == id {
				return tc.F
			}
		}
		return 0
	}

	// tree occurs in two /a/c/x nodes, one /a/c node, one /a node.
	if got := f("tree", "/a/c/x"); got != 2 {
		t.Errorf("f_{/a/c/x}^tree=%d want 2", got)
	}
	if got := f("tree", "/a/c"); got != 1 {
		t.Errorf("f_{/a/c}^tree=%d want 1", got)
	}
	if got := f("tree", "/a"); got != 1 {
		t.Errorf("f_{/a}^tree=%d want 1", got)
	}
	if got := f("tree", "/a/d"); got != 0 {
		t.Errorf("f_{/a/d}^tree=%d want 0", got)
	}
	// icde occurs under both /a/c and /a/d.
	if got := f("icde", "/a"); got != 1 {
		t.Errorf("f_{/a}^icde=%d want 1", got)
	}
	if got := f("icde", "/a/c"); got != 1 {
		t.Errorf("f_{/a/c}^icde=%d want 1", got)
	}
	if got := f("icde", "/a/d"); got != 1 {
		t.Errorf("f_{/a/d}^icde=%d want 1", got)
	}
	if got := f("icde", "/a/c/x"); got != 1 {
		t.Errorf("f_{/a/c/x}^icde=%d want 1", got)
	}
	if got := f("icde", "/a/d/x"); got != 1 {
		t.Errorf("f_{/a/d/x}^icde=%d want 1", got)
	}

	// Type lists must be sorted by path ID.
	ix.Tokens(func(tok string) {
		tl := ix.TypeList(tok)
		for i := 1; i < len(tl); i++ {
			if tl[i-1].Path >= tl[i].Path {
				t.Errorf("type list of %q not sorted", tok)
			}
		}
	})
}

func TestNodesWithPathAndLens(t *testing.T) {
	tr := buildSample()
	ix := Build(tr, tokenizer.Options{})
	cx := tr.Paths.Lookup("/a/c/x")
	if got := ix.NodesWithPath(cx); got != 2 {
		t.Errorf("NodesWithPath(/a/c/x)=%d want 2", got)
	}
	lens := ix.SubtreeLensByPath(cx)
	if len(lens) != 2 || lens[0]+lens[1] != 4 {
		t.Errorf("SubtreeLensByPath=%v", lens)
	}
	d := tr.Paths.Lookup("/a/d")
	if got := ix.NodesWithPath(d); got != 1 {
		t.Errorf("NodesWithPath(/a/d)=%d want 1", got)
	}
}

func TestBuildEmptyTree(t *testing.T) {
	tr := xmltree.NewTree("a")
	ix := Build(tr, tokenizer.Options{})
	if ix.NodeCount() != 1 || ix.TotalTokens() != 0 {
		t.Errorf("count=%d tokens=%d", ix.NodeCount(), ix.TotalTokens())
	}
}
