// Package invindex builds the disk-shaped index structures of Section
// V of the XClean paper over an xmltree.Tree:
//
//   - an inverted index mapping each token to the list of tree nodes
//     that directly contain it, in document order; each entry carries
//     the node's Dewey code, its label path, the token frequency, and
//     the node's direct token count (tuple (dewey, lp, tf) of Sec. V-C,
//     extended with the length needed by the PY08 baseline);
//   - per-token type lists: for every token w and label path p, the
//     number f_p^w of nodes of type p whose subtree contains w (the
//     index of Sec. V-B used by FindResultType);
//   - subtree token counts |D(r)| for every node (the virtual-document
//     lengths of Eq. (9));
//   - node counts per label path (the N of Eq. (8));
//   - the corpus vocabulary / background language model.
package invindex

import (
	"sort"
	"strings"

	"xclean/internal/postings"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Posting is one inverted-list entry: token occurrence(s) in the direct
// text of one tree node. It is the postings codec's type, so lists move
// between raw and compressed representations without copying schemas.
type Posting = postings.Posting

// TypeCount is one entry of a token's type list: f_p^w for path Path.
type TypeCount struct {
	Path xmltree.PathID
	F    int32
}

// Index is the complete in-memory index over one XML tree. Posting
// lists live either raw (postings) or compressed (comp, after Compact);
// exactly one of the two maps is non-nil.
type Index struct {
	Paths *xmltree.PathTable
	Vocab *tokenizer.Vocabulary

	postings   map[string][]Posting
	comp       map[string]*postings.List // non-nil after Compact
	typeLists  map[string][]TypeCount
	subtreeLen map[string]int32 // Dewey.Key() -> tokens in subtree
	pathNodes  map[xmltree.PathID]int32
	pathLens   map[xmltree.PathID][]int32  // lazy: subtree lens per path
	pathRoots  map[xmltree.PathID][]string // Dewey keys of nodes per path
	bigrams    map[string]int64            // "w1\x00w2" -> adjacency count
	// storedText maps Dewey keys to node text when built with
	// BuildStored; storedKeys lists the same keys in document order.
	storedText map[string]string
	storedKeys []string
	// nextRootChild caches the next free sibling ordinal under the
	// root for AddDocument (0 = not yet derived).
	nextRootChild uint32
	nodeCount     int
	maxDepth      int
	totalTok      int64
	opts          tokenizer.Options
}

// Build indexes the tree with the given tokenizer options.
func Build(t *xmltree.Tree, opts tokenizer.Options) *Index {
	return build(t, opts, false)
}

// BuildStored is Build plus stored node text, enabling result previews
// (SubtreeText) at the cost of keeping one copy of the document text
// in memory.
func BuildStored(t *xmltree.Tree, opts tokenizer.Options) *Index {
	return build(t, opts, true)
}

func build(t *xmltree.Tree, opts tokenizer.Options, store bool) *Index {
	ix := &Index{
		Paths:      t.Paths,
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting),
		typeLists:  make(map[string][]TypeCount),
		subtreeLen: make(map[string]int32),
		pathNodes:  make(map[xmltree.PathID]int32),
		pathLens:   make(map[xmltree.PathID][]int32),
		pathRoots:  make(map[xmltree.PathID][]string),
		bigrams:    make(map[string]int64),
		opts:       opts,
	}
	if store {
		ix.storedText = make(map[string]string)
	}
	if t.Root != nil {
		ix.indexNode(t.Root)
	}
	ix.buildTypeLists()
	return ix
}

// indexNode walks the subtree rooted at n and returns its token count.
func (ix *Index) indexNode(n *xmltree.Node) int32 {
	ix.nodeCount++
	ix.pathNodes[n.Path]++
	if d := n.Dewey.Depth(); d > ix.maxDepth {
		ix.maxDepth = d
	}

	if ix.storedText != nil && n.Text != "" {
		// Recording happens before the children recurse: the walk is
		// pre-order = document order, so storedKeys stays sorted
		// without an explicit sort.
		k := n.Dewey.Key()
		ix.storedText[k] = n.Text
		ix.storedKeys = append(ix.storedKeys, k)
	}

	var direct int32
	if n.Text != "" {
		toks := ix.opts.Tokenize(n.Text)
		direct = int32(len(toks))
		if direct > 0 {
			tf := make(map[string]int32, len(toks))
			order := make([]string, 0, len(toks))
			for _, tok := range toks {
				if tf[tok] == 0 {
					order = append(order, tok)
				}
				tf[tok]++
			}
			for _, tok := range order {
				ix.postings[tok] = append(ix.postings[tok], Posting{
					Dewey:   n.Dewey,
					Path:    n.Path,
					TF:      tf[tok],
					NodeLen: direct,
				})
				ix.Vocab.Add(tok, int64(tf[tok]))
			}
			for i := 1; i < len(toks); i++ {
				ix.bigrams[toks[i-1]+"\x00"+toks[i]]++
			}
			ix.totalTok += int64(direct)
		}
	}

	total := direct
	for _, c := range n.Children {
		total += ix.indexNode(c)
	}
	key := n.Dewey.Key()
	ix.subtreeLen[key] = total
	ix.pathLens[n.Path] = append(ix.pathLens[n.Path], total)
	ix.pathRoots[n.Path] = append(ix.pathRoots[n.Path], key)
	return total
}

// buildTypeLists derives f_p^w for every token and every ancestor path,
// counting each (token, ancestor node) pair exactly once. Postings are
// in document order, so an ancestor at depth k is "new" exactly when
// the current posting's Dewey prefix of length k differs from the
// previous posting's.
func (ix *Index) buildTypeLists() {
	for tok, plist := range ix.postings {
		counts := make(map[xmltree.PathID]int32)
		var prev xmltree.Dewey
		for _, p := range plist {
			div := divergeDepth(prev, p.Dewey)
			for k := div + 1; k <= p.Dewey.Depth(); k++ {
				counts[ix.Paths.Ancestor(p.Path, k)]++
			}
			prev = p.Dewey
		}
		tl := make([]TypeCount, 0, len(counts))
		for path, f := range counts {
			tl = append(tl, TypeCount{Path: path, F: f})
		}
		sort.Slice(tl, func(i, j int) bool { return tl[i].Path < tl[j].Path })
		ix.typeLists[tok] = tl
	}
}

// divergeDepth returns the length of the longest common prefix of a
// and b.
func divergeDepth(a, b xmltree.Dewey) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Postings returns the inverted list of tok in document order (nil for
// unknown tokens). Callers must not mutate the returned slice. On a
// compacted index every call decodes the list afresh; hot paths should
// use MergedListFor, which streams compressed lists without
// materializing them.
func (ix *Index) Postings(tok string) []Posting {
	if ix.comp != nil {
		l, ok := ix.comp[tok]
		if !ok {
			return nil
		}
		return l.Decode()
	}
	return ix.postings[tok]
}

// Compact re-encodes every posting list with the block-compressed
// postings codec and releases the raw slices. Query results are
// unchanged; the resident set shrinks several-fold while MergedList
// reads pay a streaming decode (the AblationCompression benchmark
// quantifies the trade). Compact is not safe to call concurrently with
// queries.
func (ix *Index) Compact() {
	if ix.comp != nil {
		return
	}
	ix.comp = make(map[string]*postings.List, len(ix.postings))
	for tok, pl := range ix.postings {
		ix.comp[tok] = postings.Encode(pl)
	}
	ix.postings = nil
}

// Compacted reports whether posting lists are stored compressed.
func (ix *Index) Compacted() bool { return ix.comp != nil }

// PostingsBytes estimates the posting-list storage footprint in bytes:
// the compressed payload size when compacted, otherwise the raw slice
// size (4 bytes per Dewey component plus the fixed posting fields).
func (ix *Index) PostingsBytes() int64 {
	var total int64
	if ix.comp != nil {
		for _, l := range ix.comp {
			total += int64(l.SizeBytes())
		}
		return total
	}
	for _, pl := range ix.postings {
		for _, p := range pl {
			total += int64(4*len(p.Dewey)) + 12
		}
	}
	return total
}

// TypeList returns the (path, f_p^w) list of tok sorted by path ID.
func (ix *Index) TypeList(tok string) []TypeCount { return ix.typeLists[tok] }

// SubtreeLen is |D(r)|: the number of kept tokens in the subtree rooted
// at the node with the given Dewey code. Unknown codes yield 0.
func (ix *Index) SubtreeLen(d xmltree.Dewey) int32 { return ix.subtreeLen[d.Key()] }

// SubtreeLenKey is SubtreeLen keyed by a precomputed Dewey.Key().
func (ix *Index) SubtreeLenKey(key string) int32 { return ix.subtreeLen[key] }

// NodesWithPath is N_p: the number of nodes whose label path is p —
// the entity count N of Eq. (8) once a result type is fixed.
func (ix *Index) NodesWithPath(p xmltree.PathID) int32 { return ix.pathNodes[p] }

// SubtreeLensByPath returns the subtree token counts of every node of
// path p (in reverse document order). Used by the exact-scoring
// ablation, which needs the length distribution of all entities of a
// type. Order is unspecified. Callers must not mutate the returned
// slice.
func (ix *Index) SubtreeLensByPath(p xmltree.PathID) []int32 {
	return ix.pathLens[p]
}

// RootsByPath returns the Dewey keys of every node whose label path is
// p — the entity roots once a result type is fixed. Used by the
// non-uniform entity priors of Eq. (8). Callers must not mutate the
// returned slice.
func (ix *Index) RootsByPath(p xmltree.PathID) []string {
	return ix.pathRoots[p]
}

// HasStoredText reports whether the index was built with BuildStored.
func (ix *Index) HasStoredText() bool { return ix.storedText != nil }

// SubtreeText concatenates the stored text of the subtree rooted at
// root, in document order, truncated to at most maxLen runes (maxLen
// ≤ 0 means unlimited). It returns "" on indexes built without stored
// text — use BuildStored to enable previews.
func (ix *Index) SubtreeText(root xmltree.Dewey, maxLen int) string {
	if ix.storedText == nil {
		return ""
	}
	rk := root.Key()
	// First stored key ≥ rk; document order on keys is byte order.
	i := sort.SearchStrings(ix.storedKeys, rk)
	var b strings.Builder
	runes := 0
	for ; i < len(ix.storedKeys); i++ {
		k := ix.storedKeys[i]
		if len(k) < len(rk) || k[:len(rk)] != rk {
			break // left the subtree
		}
		text := ix.storedText[k]
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		for _, r := range text {
			if maxLen > 0 && runes >= maxLen {
				b.WriteString("…")
				return b.String()
			}
			b.WriteRune(r)
			runes++
		}
	}
	return b.String()
}

// BigramCount is the number of times w2 directly follows w1 within a
// node's text anywhere in the corpus — the adjacency statistics of the
// bigram language-model extension.
func (ix *Index) BigramCount(w1, w2 string) int64 {
	return ix.bigrams[w1+"\x00"+w2]
}

// BigramTableSize is the number of distinct adjacent token pairs.
func (ix *Index) BigramTableSize() int { return len(ix.bigrams) }

// NodeCount is the number of tree nodes (the PY08 baseline's N when
// every element is treated as a document).
func (ix *Index) NodeCount() int { return ix.nodeCount }

// MaxDepth is the depth of the deepest node.
func (ix *Index) MaxDepth() int { return ix.maxDepth }

// TotalTokens is the corpus length in kept tokens.
func (ix *Index) TotalTokens() int64 { return ix.totalTok }

// DocFreq is df(w): the number of nodes whose direct text contains w.
func (ix *Index) DocFreq(tok string) int {
	if ix.comp != nil {
		if l, ok := ix.comp[tok]; ok {
			return l.Len()
		}
		return 0
	}
	return len(ix.postings[tok])
}

// Tokens iterates over all indexed tokens in unspecified order.
func (ix *Index) Tokens(fn func(tok string)) {
	if ix.comp != nil {
		for tok := range ix.comp {
			fn(tok)
		}
		return
	}
	for tok := range ix.postings {
		fn(tok)
	}
}

// TokenizerOptions returns the options the index was built with;
// queries must be tokenized identically.
func (ix *Index) TokenizerOptions() tokenizer.Options { return ix.opts }

// VocabList returns all distinct indexed tokens, sorted.
func (ix *Index) VocabList() []string {
	out := make([]string, 0, len(ix.postings)+len(ix.comp))
	ix.Tokens(func(tok string) { out = append(out, tok) })
	sort.Strings(out)
	return out
}
