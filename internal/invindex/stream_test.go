package invindex

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

const streamDoc = `<?xml version="1.0"?>
<dblp year="2009">
  <article key="a1">
    <author>jonathan rose</author>
    <title>fpga architecture synthesis tools</title>
  </article>
  <article key="a2">
    mixed content here
    <author>mary smith</author>
    trailing text tokens
    <title>database indexing structures survey</title>
  </article>
  <note>architecture survey notes</note>
</dblp>`

// TestStreamMatchesTreeBuild: the streaming builder must produce an
// index identical to parsing the tree and building from it.
func TestStreamMatchesTreeBuild(t *testing.T) {
	for _, stored := range []bool{false, true} {
		tree, err := xmltree.Parse(strings.NewReader(streamDoc))
		if err != nil {
			t.Fatal(err)
		}
		var want, got *Index
		if stored {
			want = BuildStored(tree, tokenizer.Options{})
			got, err = BuildStoredFromReader(strings.NewReader(streamDoc), tokenizer.Options{})
		} else {
			want = Build(tree, tokenizer.Options{})
			got, err = BuildFromReader(strings.NewReader(streamDoc), tokenizer.Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		assertIndexEqual(t, want, got)
		if stored {
			if !reflect.DeepEqual(want.storedKeys, got.storedKeys) {
				t.Fatalf("stored keys diverge")
			}
			for _, k := range want.storedKeys {
				if want.storedText[k] != got.storedText[k] {
					t.Fatalf("stored text diverges at %s", xmltree.DeweyFromKey(k))
				}
			}
		}
	}
}

// TestStreamMatchesTreeBuildRandom: the equivalence must hold for
// random trees serialized and re-read, including deep nesting and
// text on internal nodes (the posting-repair path).
func TestStreamMatchesTreeBuildRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 25; trial++ {
		tr := randomTextTree(rng, 15+rng.Intn(50))
		var sb strings.Builder
		if _, err := tr.WriteXML(&sb); err != nil {
			t.Fatal(err)
		}
		doc := sb.String()

		tree, err := xmltree.Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := Build(tree, tokenizer.Options{})
		got, err := BuildFromReader(strings.NewReader(doc), tokenizer.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertIndexEqual(t, want, got)
	}
}

func TestStreamErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"truncated": "<a><b>",
		"two-roots": "<a></a><b></b>",
		"stray-end": "</a>",
	}
	for name, doc := range cases {
		if _, err := BuildFromReader(strings.NewReader(doc), tokenizer.Options{}); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
}

// TestStreamSuggestions: an engine over a streamed index answers like
// one over a tree-built index.
func TestStreamSuggestions(t *testing.T) {
	ix, err := BuildFromReader(strings.NewReader(streamDoc), tokenizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.DocFreq("architecture") != 2 {
		t.Errorf("DocFreq(architecture)=%d", ix.DocFreq("architecture"))
	}
	if ix.Vocab.Contains("xml") {
		t.Error("attribute namespace leaked into vocab")
	}
	// Attribute values are indexed... "a1"/"a2" are too short; "2009"
	// is a number (dropped); check "mixed" from mixed content instead.
	if ix.DocFreq("mixed") != 1 || ix.DocFreq("trailing") != 1 {
		t.Error("mixed content tokens missing")
	}
}
