package invindex

import (
	"math/rand"
	"sort"
	"testing"

	"xclean/internal/xmltree"
)

func mkList(t *testing.T, deweys ...string) []Posting {
	t.Helper()
	out := make([]Posting, len(deweys))
	for i, s := range deweys {
		d, err := xmltree.ParseDewey(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Posting{Dewey: d, TF: 1}
	}
	return out
}

func TestMergedListOrder(t *testing.T) {
	a := mkList(t, "1.1.1", "1.3.1")
	b := mkList(t, "1.2.1")
	c := mkList(t, "1.1.2", "1.4")
	m := NewMergedList([]string{"a", "b", "c"}, [][]Posting{a, b, c})

	var got []string
	var toks []string
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, e.Dewey.String())
		toks = append(toks, e.Token)
	}
	want := []string{"1.1.1", "1.1.2", "1.2.1", "1.3.1", "1.4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order got %v want %v", got, want)
		}
	}
	if toks[0] != "a" || toks[1] != "c" || toks[2] != "b" {
		t.Errorf("tokens=%v", toks)
	}
	if !m.Exhausted() {
		t.Error("should be exhausted")
	}
	if _, ok := m.Next(); ok {
		t.Error("Next on exhausted list should fail")
	}
	if _, ok := m.CurPos(); ok {
		t.Error("CurPos on exhausted list should fail")
	}
}

func TestMergedListCurPos(t *testing.T) {
	m := NewMergedList([]string{"a"}, [][]Posting{mkList(t, "1.1", "1.2")})
	e, ok := m.CurPos()
	if !ok || e.Dewey.String() != "1.1" {
		t.Fatalf("CurPos=%v %v", e, ok)
	}
	// CurPos must not consume.
	e2, _ := m.CurPos()
	if e2.Dewey.String() != "1.1" {
		t.Error("CurPos consumed the head")
	}
}

func TestMergedListSkipTo(t *testing.T) {
	a := mkList(t, "1.1.1", "1.2.2", "1.5.1")
	b := mkList(t, "1.1.2", "1.3.1")
	m := NewMergedList([]string{"a", "b"}, [][]Posting{a, b})

	target, _ := xmltree.ParseDewey("1.2")
	e, ok := m.SkipTo(target)
	if !ok || e.Dewey.String() != "1.2.2" {
		t.Fatalf("SkipTo(1.2)=%v ok=%v", e.Dewey, ok)
	}
	target, _ = xmltree.ParseDewey("1.4")
	e, ok = m.SkipTo(target)
	if !ok || e.Dewey.String() != "1.5.1" {
		t.Fatalf("SkipTo(1.4)=%v ok=%v", e.Dewey, ok)
	}
	target, _ = xmltree.ParseDewey("1.9")
	if _, ok := m.SkipTo(target); ok {
		t.Error("SkipTo past the end should exhaust")
	}
}

func TestMergedListEmptyLists(t *testing.T) {
	m := NewMergedList([]string{"a", "b"}, [][]Posting{nil, {}})
	if !m.Exhausted() {
		t.Error("merged list of empty lists should be exhausted")
	}
}

// Differential test: galloping SkipTo must behave exactly like linear
// SkipTo under a random sequence of operations.
func TestMergedListSkipToEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randDewey := func() xmltree.Dewey {
		n := 1 + rng.Intn(4)
		d := make(xmltree.Dewey, n)
		d[0] = 1
		for i := 1; i < n; i++ {
			d[i] = uint32(1 + rng.Intn(8))
		}
		return d
	}
	for trial := 0; trial < 200; trial++ {
		var lists [][]Posting
		var tokens []string
		nl := 1 + rng.Intn(4)
		for i := 0; i < nl; i++ {
			n := rng.Intn(30)
			set := map[string]xmltree.Dewey{}
			for j := 0; j < n; j++ {
				d := randDewey()
				set[d.Key()] = d
			}
			var pl []Posting
			for _, d := range set {
				pl = append(pl, Posting{Dewey: d})
			}
			sort.Slice(pl, func(a, b int) bool { return pl[a].Dewey.Compare(pl[b].Dewey) < 0 })
			lists = append(lists, pl)
			tokens = append(tokens, string(rune('a'+i)))
		}
		copyLists := func() [][]Posting {
			out := make([][]Posting, len(lists))
			for i := range lists {
				out[i] = append([]Posting(nil), lists[i]...)
			}
			return out
		}
		m1 := NewMergedList(tokens, copyLists())
		m2 := NewMergedList(tokens, copyLists())
		m2.SetLinearSkip(true)

		for step := 0; step < 40; step++ {
			if rng.Intn(2) == 0 {
				e1, ok1 := m1.Next()
				e2, ok2 := m2.Next()
				if ok1 != ok2 || (ok1 && (e1.Dewey.Compare(e2.Dewey) != 0 || e1.Token != e2.Token)) {
					t.Fatalf("Next mismatch: %v/%v vs %v/%v", e1, ok1, e2, ok2)
				}
			} else {
				d := randDewey()
				e1, ok1 := m1.SkipTo(d)
				e2, ok2 := m2.SkipTo(d)
				if ok1 != ok2 || (ok1 && e1.Dewey.Compare(e2.Dewey) != 0) {
					t.Fatalf("SkipTo(%v) mismatch: %v/%v vs %v/%v", d, e1.Dewey, ok1, e2.Dewey, ok2)
				}
			}
			if m1.Exhausted() {
				break
			}
		}
	}
}

func BenchmarkMergedListSkipTo(b *testing.B) {
	var pl []Posting
	for i := 1; i <= 100000; i++ {
		pl = append(pl, Posting{Dewey: xmltree.Dewey{1, uint32(i), 1}})
	}
	m := NewMergedList([]string{"w"}, [][]Posting{pl})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := xmltree.Dewey{1, uint32(i%100000 + 1)}
		m.SkipTo(target)
	}
}

// CollectSubtree must deliver exactly the postings inside the subtree
// (per variant, in document order) and position the list past it.
func TestCollectSubtreeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	randDewey := func() xmltree.Dewey {
		n := 1 + rng.Intn(4)
		d := make(xmltree.Dewey, n)
		d[0] = 1
		for i := 1; i < n; i++ {
			d[i] = uint32(1 + rng.Intn(6))
		}
		return d
	}
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(3)
		var lists [][]Posting
		var tokens []string
		for i := 0; i < nl; i++ {
			set := map[string]xmltree.Dewey{}
			for j := 0; j < rng.Intn(25); j++ {
				d := randDewey()
				set[d.Key()] = d
			}
			var pl []Posting
			for _, d := range set {
				pl = append(pl, Posting{Dewey: d})
			}
			sort.Slice(pl, func(a, b int) bool { return pl[a].Dewey.Compare(pl[b].Dewey) < 0 })
			lists = append(lists, pl)
			tokens = append(tokens, string(rune('a'+i)))
		}
		m := NewMergedList(tokens, lists)
		g := randDewey().Truncate(1 + rng.Intn(2))

		got := map[string][]string{}
		m.CollectSubtree(g, func(e Entry) {
			got[e.Token] = append(got[e.Token], e.Dewey.String())
		})
		// Reference: filter each list directly.
		for i, pl := range lists {
			var want []string
			for _, p := range pl {
				if g.AncestorOrSelf(p.Dewey) {
					want = append(want, p.Dewey.String())
				}
			}
			tok := tokens[i]
			if len(want) != len(got[tok]) {
				t.Fatalf("trial %d g=%v token %s: got %v want %v", trial, g, tok, got[tok], want)
			}
			for j := range want {
				if got[tok][j] != want[j] {
					t.Fatalf("trial %d order mismatch: got %v want %v", trial, got[tok], want)
				}
			}
		}
		// Remaining head must be past the subtree.
		if e, ok := m.CurPos(); ok {
			if g.AncestorOrSelf(e.Dewey) || e.Dewey.Compare(g) < 0 {
				t.Fatalf("head %v not past subtree %v", e.Dewey, g)
			}
		}
	}
}
