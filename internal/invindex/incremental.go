package invindex

import (
	"fmt"
	"sort"

	"xclean/internal/xmltree"
)

// AddDocument grafts doc's root as the next child of the indexed tree's
// root and updates every index structure incrementally — postings (the
// new subtree follows all existing nodes in document order, so lists
// grow by appending), type lists, subtree lengths, path statistics,
// vocabulary, bigrams, and stored text. The result is identical to
// rebuilding the index over the enlarged tree, at cost proportional to
// the added document.
//
// This mirrors how the paper's corpora actually grow — DBLP gains
// articles, Wikipedia gains pages — without the multi-minute rebuild
// the paper's offline indexing assumes.
//
// Engines hold derived structures (variant index, cached priors);
// rebuild them after adding documents. AddDocument is not safe to call
// concurrently with queries, and a compacted index is immutable.
func (ix *Index) AddDocument(doc *xmltree.Tree) error {
	if ix.comp != nil {
		return fmt.Errorf("invindex: AddDocument: compacted index is immutable")
	}
	if ix.nextRootChild == 0 {
		ix.nextRootChild = ix.maxRootChildOrdinal(xmltree.Dewey{1}) + 1
	}
	return ix.GraftDocument(doc, ix.nextRootChild)
}

// rootPathID finds the label path of the tree root (the unique
// depth-1 path).
func (ix *Index) rootPathID() (xmltree.PathID, error) {
	for id := xmltree.PathID(0); int(id) < ix.Paths.Len(); id++ {
		if ix.Paths.Parent(id) == xmltree.InvalidPath {
			return id, nil
		}
	}
	return xmltree.InvalidPath, fmt.Errorf("invindex: AddDocument: index has no root path")
}

// maxRootChildOrdinal scans the subtree-length table for the largest
// sibling ordinal directly under root.
func (ix *Index) maxRootChildOrdinal(root xmltree.Dewey) uint32 {
	rk := root.Key()
	var max uint32
	for key := range ix.subtreeLen {
		if len(key) != len(rk)+4 || key[:len(rk)] != rk {
			continue
		}
		d := xmltree.DeweyFromKey(key)
		if o := d[len(d)-1]; o > max {
			max = o
		}
	}
	return max
}

// indexGrafted indexes src (a node from a foreign tree) at the given
// position, re-interning paths, and returns the subtree's token count.
// New postings are also collected per token for the type-list merge.
func (ix *Index) indexGrafted(
	src *xmltree.Node,
	dewey xmltree.Dewey,
	parentPath xmltree.PathID,
	newPostings map[string][]Posting,
) int32 {
	path := ix.Paths.Intern(parentPath, src.Label)
	ix.nodeCount++
	ix.pathNodes[path]++
	if d := dewey.Depth(); d > ix.maxDepth {
		ix.maxDepth = d
	}

	key := dewey.Key()
	if ix.storedText != nil && src.Text != "" {
		ix.storedText[key] = src.Text
		ix.storedKeys = append(ix.storedKeys, key)
	}

	var direct int32
	if src.Text != "" {
		toks := ix.opts.Tokenize(src.Text)
		direct = int32(len(toks))
		if direct > 0 {
			tf := make(map[string]int32, len(toks))
			order := make([]string, 0, len(toks))
			for _, tok := range toks {
				if tf[tok] == 0 {
					order = append(order, tok)
				}
				tf[tok]++
			}
			for _, tok := range order {
				p := Posting{Dewey: dewey, Path: path, TF: tf[tok], NodeLen: direct}
				ix.postings[tok] = append(ix.postings[tok], p)
				newPostings[tok] = append(newPostings[tok], p)
				ix.Vocab.Add(tok, int64(tf[tok]))
			}
			for i := 1; i < len(toks); i++ {
				ix.bigrams[toks[i-1]+"\x00"+toks[i]]++
			}
			ix.totalTok += int64(direct)
		}
	}

	total := direct
	for i, c := range src.Children {
		total += ix.indexGrafted(c, dewey.Child(uint32(i+1)), path, newPostings)
	}
	ix.subtreeLen[key] = total
	ix.pathLens[path] = append(ix.pathLens[path], total)
	ix.pathRoots[path] = append(ix.pathRoots[path], key)
	return total
}

// mergeTypeCounts adds per-path deltas into tok's sorted type list.
func (ix *Index) mergeTypeCounts(tok string, counts map[xmltree.PathID]int32) {
	if len(counts) == 0 {
		return
	}
	tl := ix.typeLists[tok]
	for path, f := range counts {
		i := sort.Search(len(tl), func(j int) bool { return tl[j].Path >= path })
		if i < len(tl) && tl[i].Path == path {
			tl[i].F += f
			continue
		}
		tl = append(tl, TypeCount{})
		copy(tl[i+1:], tl[i:])
		tl[i] = TypeCount{Path: path, F: f}
	}
	ix.typeLists[tok] = tl
}
