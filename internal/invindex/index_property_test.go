package invindex

import (
	"math/rand"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// randomTextTree builds a random tree whose nodes carry random short
// texts from a small word pool (so tokens repeat across nodes).
func randomTextTree(rng *rand.Rand, nodes int) *xmltree.Tree {
	pool := []string{"query", "index", "search", "ranking", "xml", "tree",
		"cleaning", "model", "entity", "probabilistic"}
	labels := []string{"sec", "para", "item"}
	tr := xmltree.NewTree("doc")
	all := []*xmltree.Node{tr.Root}
	for i := 1; i < nodes; i++ {
		parent := all[rng.Intn(len(all))]
		if parent.Dewey.Depth() >= 6 {
			continue
		}
		text := ""
		for w := rng.Intn(4); w > 0; w-- {
			if text != "" {
				text += " "
			}
			text += pool[rng.Intn(len(pool))]
		}
		all = append(all, tr.AddChild(parent, labels[rng.Intn(len(labels))], text))
	}
	return tr
}

// TestIndexInvariantsOnRandomTrees verifies the index against
// brute-force recomputation from the tree, for every structure the
// scoring path reads: postings (frequency, order, node length), type
// lists f_p^w, subtree lengths, per-path node counts, and totals.
func TestIndexInvariantsOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	opts := tokenizer.Options{}
	for trial := 0; trial < 40; trial++ {
		tr := randomTextTree(rng, 10+rng.Intn(40))
		ix := Build(tr, opts)

		// Ground truth from a direct tree walk.
		type nodeInfo struct {
			n    *xmltree.Node
			toks []string
		}
		var infos []nodeInfo
		tr.Walk(func(n *xmltree.Node) bool {
			infos = append(infos, nodeInfo{n, opts.Tokenize(n.Text)})
			return true
		})

		// Subtree lengths.
		var totalTok int64
		for _, in := range infos {
			want := int32(0)
			for _, other := range infos {
				if in.n.Dewey.AncestorOrSelf(other.n.Dewey) {
					want += int32(len(other.toks))
				}
			}
			if got := ix.SubtreeLen(in.n.Dewey); got != want {
				t.Fatalf("trial %d: SubtreeLen(%s)=%d want %d", trial, in.n.Dewey, got, want)
			}
			totalTok += int64(len(in.toks))
		}
		if ix.TotalTokens() != totalTok {
			t.Fatalf("trial %d: TotalTokens=%d want %d", trial, ix.TotalTokens(), totalTok)
		}
		if ix.NodeCount() != len(infos) {
			t.Fatalf("trial %d: NodeCount=%d want %d", trial, ix.NodeCount(), len(infos))
		}

		// Postings: per (token, node) frequency and document order.
		ix.Tokens(func(tok string) {
			pl := ix.Postings(tok)
			for i := 1; i < len(pl); i++ {
				if pl[i-1].Dewey.Compare(pl[i].Dewey) >= 0 {
					t.Fatalf("trial %d: postings of %q out of order", trial, tok)
				}
			}
			for _, p := range pl {
				var node *nodeInfo
				for i := range infos {
					if infos[i].n.Dewey.Compare(p.Dewey) == 0 {
						node = &infos[i]
						break
					}
				}
				if node == nil {
					t.Fatalf("trial %d: posting at unknown node %s", trial, p.Dewey)
				}
				tf := int32(0)
				for _, w := range node.toks {
					if w == tok {
						tf++
					}
				}
				if p.TF != tf || p.NodeLen != int32(len(node.toks)) {
					t.Fatalf("trial %d: %q@%s tf=%d/%d len=%d/%d",
						trial, tok, p.Dewey, p.TF, tf, p.NodeLen, len(node.toks))
				}
			}

			// Type list: f_p^w = number of nodes of path p whose subtree
			// contains tok.
			wantF := map[xmltree.PathID]int32{}
			for _, in := range infos {
				contains := false
				for _, other := range infos {
					if !in.n.Dewey.AncestorOrSelf(other.n.Dewey) {
						continue
					}
					for _, w := range other.toks {
						if w == tok {
							contains = true
							break
						}
					}
					if contains {
						break
					}
				}
				if contains {
					wantF[in.n.Path]++
				}
			}
			tl := ix.TypeList(tok)
			if len(tl) != len(wantF) {
				t.Fatalf("trial %d: %q type list has %d paths want %d",
					trial, tok, len(tl), len(wantF))
			}
			for _, tc := range tl {
				if tc.F != wantF[tc.Path] {
					t.Fatalf("trial %d: %q f_%s=%d want %d",
						trial, tok, ix.Paths.String(tc.Path), tc.F, wantF[tc.Path])
				}
			}
		})

		// Per-path node counts.
		wantNodes := map[xmltree.PathID]int32{}
		for _, in := range infos {
			wantNodes[in.n.Path]++
		}
		for p, want := range wantNodes {
			if got := ix.NodesWithPath(p); got != want {
				t.Fatalf("trial %d: NodesWithPath(%s)=%d want %d",
					trial, ix.Paths.String(p), got, want)
			}
		}
	}
}
