package invindex

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// compactTree builds a moderately bushy tree with repeated tokens so
// posting lists span multiple compression blocks.
func compactTree(seed int64, articles int) *xmltree.Tree {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"query", "index", "search", "ranking", "xml", "keyword",
		"cleaning", "spelling", "probabilistic", "model"}
	tr := xmltree.NewTree("db")
	for i := 0; i < articles; i++ {
		art := tr.AddChild(tr.Root, "article", "")
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		tr.AddChild(art, "title", title)
		tr.AddChild(art, "abstract", words[rng.Intn(len(words))]+" "+
			words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))])
	}
	return tr
}

func TestCompactPreservesPostings(t *testing.T) {
	tr := compactTree(1, 400)
	raw := Build(tr, tokenizer.Options{})
	comp := Build(tr, tokenizer.Options{})
	comp.Compact()

	if !comp.Compacted() || raw.Compacted() {
		t.Fatal("Compacted() flags wrong")
	}
	for _, tok := range raw.VocabList() {
		want := raw.Postings(tok)
		got := comp.Postings(tok)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("token %q: postings diverge after Compact", tok)
		}
		if raw.DocFreq(tok) != comp.DocFreq(tok) {
			t.Fatalf("token %q: DocFreq diverges", tok)
		}
	}
	if !reflect.DeepEqual(raw.VocabList(), comp.VocabList()) {
		t.Fatal("VocabList diverges")
	}
}

func TestCompactShrinksFootprint(t *testing.T) {
	tr := compactTree(2, 800)
	ix := Build(tr, tokenizer.Options{})
	before := ix.PostingsBytes()
	ix.Compact()
	after := ix.PostingsBytes()
	if after >= before {
		t.Fatalf("Compact grew footprint: %d -> %d bytes", before, after)
	}
	t.Logf("postings footprint %d -> %d bytes (%.1fx)", before, after,
		float64(before)/float64(after))
}

func TestCompactIdempotent(t *testing.T) {
	tr := compactTree(3, 50)
	ix := Build(tr, tokenizer.Options{})
	ix.Compact()
	size := ix.PostingsBytes()
	ix.Compact() // second call must be a no-op
	if ix.PostingsBytes() != size {
		t.Fatal("second Compact changed the index")
	}
}

// TestMergedListForCompressedDifferential drains MergedListFor over a
// compacted index and over the raw index through mixed Next/SkipTo/
// CollectSubtree traffic; both must yield identical entry streams.
func TestMergedListForCompressedDifferential(t *testing.T) {
	tr := compactTree(4, 600)
	raw := Build(tr, tokenizer.Options{})
	comp := Build(tr, tokenizer.Options{})
	comp.Compact()

	tokens := []string{"query", "index", "nonexistent", "xml"}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		mr := raw.MergedListFor(tokens)
		mc := comp.MergedListFor(tokens)
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				er, okr := mr.Next()
				ec, okc := mc.Next()
				if okr != okc {
					t.Fatalf("trial %d step %d: Next ok %v vs %v", trial, step, okr, okc)
				}
				if okr && (er.Dewey.Compare(ec.Dewey) != 0 || er.Token != ec.Token || er.TF != ec.TF) {
					t.Fatalf("trial %d step %d: Next %v/%s vs %v/%s",
						trial, step, er.Dewey, er.Token, ec.Dewey, ec.Token)
				}
			case 1:
				cur, ok := mr.CurPos()
				if !ok {
					continue
				}
				target := cur.Dewey.Clone()
				target[len(target)-1] += uint32(rng.Intn(3))
				er, okr := mr.SkipTo(target)
				ec, okc := mc.SkipTo(target)
				if okr != okc || (okr && er.Dewey.Compare(ec.Dewey) != 0) {
					t.Fatalf("trial %d step %d: SkipTo diverges", trial, step)
				}
			default:
				cur, ok := mr.CurPos()
				if !ok {
					continue
				}
				g := cur.Dewey.Truncate(2).Clone()
				var gotR, gotC []string
				mr.CollectSubtree(g, func(e Entry) {
					gotR = append(gotR, e.Dewey.String()+"/"+e.Token)
				})
				mc.CollectSubtree(g, func(e Entry) {
					gotC = append(gotC, e.Dewey.String()+"/"+e.Token)
				})
				if !reflect.DeepEqual(gotR, gotC) {
					t.Fatalf("trial %d step %d: CollectSubtree diverges\nraw:  %v\ncomp: %v",
						trial, step, gotR, gotC)
				}
			}
			if mr.Exhausted() {
				break
			}
		}
	}
}

func TestSaveLoadCompacted(t *testing.T) {
	tr := compactTree(6, 200)
	ix := Build(tr, tokenizer.Options{})
	ix.Compact()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Build(tr, tokenizer.Options{})
	for _, tok := range want.VocabList() {
		if !reflect.DeepEqual(got.Postings(tok), want.Postings(tok)) {
			t.Fatalf("token %q: postings diverge after save/load of compacted index", tok)
		}
	}
}
