package invindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"xclean/internal/postings"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Index persistence: a magic string, a format version, and one gob
// blob. Indexing a multi-hundred-megabyte document takes far longer
// than loading its index, so tools save the index once and reopen it
// per session (cmd/xclean's -index flag).
//
// Since version 2, posting lists are stored with the block-compressed
// postings codec (delta-encoded Dewey codes, varint fields), which
// shrinks index files several-fold relative to the naive version-1
// encoding.

const (
	persistMagic   = "XCLEANIDX"
	persistVersion = 2
)

// persistedIndex is the exported on-disk shape of an Index.
type persistedIndex struct {
	PathParents []int32
	PathLabels  []string

	VocabWords  []string
	VocabCounts []int64

	Tokens []string
	// PostingBlobs[i] is Tokens[i]'s list in the postings wire format.
	PostingBlobs [][]byte
	TypeLists    [][]TypeCount

	SubtreeKeys []string
	SubtreeLens []int32

	// StoredKeys/StoredTexts carry BuildStored's preview text (both
	// empty on indexes built without stored text).
	StoredKeys  []string
	StoredTexts []string

	PathNodes map[xmltree.PathID]int32
	PathLens  map[xmltree.PathID][]int32
	PathRoots map[xmltree.PathID][]string
	Bigrams   map[string]int64

	NodeCount int
	MaxDepth  int
	TotalTok  int64
	Opts      tokenizer.Options
}

// Save writes the index to w. The format is versioned; Load rejects
// mismatches.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	if err := bw.WriteByte(persistVersion); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}

	p := persistedIndex{
		PathNodes: ix.pathNodes,
		PathLens:  ix.pathLens,
		PathRoots: ix.pathRoots,
		Bigrams:   ix.bigrams,
		NodeCount: ix.nodeCount,
		MaxDepth:  ix.maxDepth,
		TotalTok:  ix.totalTok,
		Opts:      ix.opts,
	}
	p.PathParents, p.PathLabels = ix.Paths.Export()

	p.Tokens = ix.VocabList()
	p.PostingBlobs = make([][]byte, len(p.Tokens))
	p.TypeLists = make([][]TypeCount, len(p.Tokens))
	p.VocabWords = p.Tokens
	p.VocabCounts = make([]int64, len(p.Tokens))
	for i, tok := range p.Tokens {
		if ix.comp != nil {
			p.PostingBlobs[i] = ix.comp[tok].AppendTo(nil)
		} else {
			p.PostingBlobs[i] = postings.Encode(ix.postings[tok]).AppendTo(nil)
		}
		p.TypeLists[i] = ix.typeLists[tok]
		p.VocabCounts[i] = ix.Vocab.Count(tok)
	}

	if ix.storedText != nil {
		p.StoredKeys = ix.storedKeys
		p.StoredTexts = make([]string, len(ix.storedKeys))
		for i, k := range ix.storedKeys {
			p.StoredTexts[i] = ix.storedText[k]
		}
	}

	p.SubtreeKeys = make([]string, 0, len(ix.subtreeLen))
	for k := range ix.subtreeLen {
		p.SubtreeKeys = append(p.SubtreeKeys, k)
	}
	sort.Strings(p.SubtreeKeys)
	p.SubtreeLens = make([]int32, len(p.SubtreeKeys))
	for i, k := range p.SubtreeKeys {
		p.SubtreeLens[i] = ix.subtreeLen[k]
	}

	if err := gob.NewEncoder(bw).Encode(&p); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("invindex: load: not an xclean index (bad magic %q)", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	if ver != persistVersion {
		return nil, fmt.Errorf("invindex: load: unsupported index version %d (want %d)", ver, persistVersion)
	}

	var p persistedIndex
	if err := gob.NewDecoder(br).Decode(&p); err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	if len(p.PostingBlobs) != len(p.Tokens) || len(p.TypeLists) != len(p.Tokens) ||
		len(p.VocabCounts) != len(p.Tokens) || len(p.SubtreeLens) != len(p.SubtreeKeys) {
		return nil, fmt.Errorf("invindex: load: inconsistent index tables")
	}

	paths, err := xmltree.ImportPathTable(p.PathParents, p.PathLabels)
	if err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	ix := &Index{
		Paths:      paths,
		Vocab:      tokenizer.NewVocabulary(),
		postings:   make(map[string][]Posting, len(p.Tokens)),
		typeLists:  make(map[string][]TypeCount, len(p.Tokens)),
		subtreeLen: make(map[string]int32, len(p.SubtreeKeys)),
		pathNodes:  p.PathNodes,
		pathLens:   p.PathLens,
		pathRoots:  p.PathRoots,
		bigrams:    p.Bigrams,
		nodeCount:  p.NodeCount,
		maxDepth:   p.MaxDepth,
		totalTok:   p.TotalTok,
		opts:       p.Opts,
	}
	if ix.pathNodes == nil {
		ix.pathNodes = make(map[xmltree.PathID]int32)
	}
	if ix.pathLens == nil {
		ix.pathLens = make(map[xmltree.PathID][]int32)
	}
	if ix.pathRoots == nil {
		ix.pathRoots = make(map[xmltree.PathID][]string)
	}
	if ix.bigrams == nil {
		ix.bigrams = make(map[string]int64)
	}
	for i, tok := range p.Tokens {
		l, used, err := postings.DecodeList(p.PostingBlobs[i])
		if err != nil {
			return nil, fmt.Errorf("invindex: load: token %q: %w", tok, err)
		}
		if used != len(p.PostingBlobs[i]) {
			return nil, fmt.Errorf("invindex: load: token %q: %d trailing bytes",
				tok, len(p.PostingBlobs[i])-used)
		}
		ix.postings[tok] = l.Decode()
		ix.typeLists[tok] = p.TypeLists[i]
		ix.Vocab.Add(tok, p.VocabCounts[i])
	}
	for i, k := range p.SubtreeKeys {
		ix.subtreeLen[k] = p.SubtreeLens[i]
	}
	if p.StoredKeys != nil {
		if len(p.StoredTexts) != len(p.StoredKeys) {
			return nil, fmt.Errorf("invindex: load: mismatched stored-text tables")
		}
		ix.storedKeys = p.StoredKeys
		ix.storedText = make(map[string]string, len(p.StoredKeys))
		for i, k := range p.StoredKeys {
			ix.storedText[k] = p.StoredTexts[i]
		}
	}
	return ix, nil
}
