package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := Traceparent(tid, sid, sampled)
		gt, gs, gsm, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) not ok", h)
		}
		if gt != tid || gs != sid || gsm != sampled {
			t.Errorf("round trip %q: got (%s,%s,%v), want (%s,%s,%v)",
				h, gt, gs, gsm, tid, sid, sampled)
		}
	}
}

func TestTraceparentFormat(t *testing.T) {
	var tid TraceID
	var sid SpanID
	tid[15], sid[7] = 0xab, 0xcd
	h := Traceparent(tid, sid, true)
	want := "00-000000000000000000000000000000ab-00000000000000cd-01"
	if h != want {
		t.Errorf("Traceparent = %q, want %q", h, want)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := Traceparent(NewTraceID(), NewSpanID(), true)
	bad := []string{
		"",
		"garbage",
		valid[:54],       // truncated
		"ff" + valid[2:], // version ff is invalid
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span id
		strings.ToUpper(valid),                            // uppercase hex
		valid + "-extra",                                  // v00 must be exactly 55 bytes
		valid[:53] + "zz",                                 // bad flags hex
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
	// A future version with trailing fields must still parse.
	future := "01" + valid[2:] + "-whatever"
	if _, _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("ParseTraceparent(%q) rejected a future version", future)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpanID().String()
		if seen[id] {
			t.Fatalf("duplicate span id %s after %d draws", id, i)
		}
		seen[id] = true
	}
	if NewTraceID().IsZero() {
		t.Error("NewTraceID returned zero")
	}
}

func TestSpanNodeCount(t *testing.T) {
	root := &SpanNode{SpanID: NewSpanID().String(), Name: "root"}
	c := root.AddChild(&SpanNode{SpanID: NewSpanID().String(), Name: "child"})
	c.AddChild(&SpanNode{SpanID: NewSpanID().String(), Name: "grandchild"})
	root.AddChild(&SpanNode{SpanID: NewSpanID().String(), Name: "child2"})
	if got := root.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4", got)
	}
}

func TestStageSpanNodes(t *testing.T) {
	parent := NewSpanID()
	spans := []Span{
		{Stage: "tokenize", Worker: -1, DurationNs: 100},
		{Stage: "scan", Worker: 2, DurationNs: 5000},
	}
	nodes := StageSpanNodes(parent, spans)
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.ParentSpanID != parent.String() {
			t.Errorf("node %s parent %q, want %q", n.Name, n.ParentSpanID, parent)
		}
		if n.SpanID == "" || n.SpanID == parent.String() {
			t.Errorf("node %s has bad span id %q", n.Name, n.SpanID)
		}
	}
	if nodes[0].Attrs != nil {
		t.Errorf("call-level stage got worker attr: %v", nodes[0].Attrs)
	}
	if nodes[1].Attrs["worker"] != "2" {
		t.Errorf("worker attr = %v", nodes[1].Attrs)
	}
}

func mkTrace(id int, d time.Duration, partial bool, errMsg string) *Trace {
	return &Trace{
		TraceID:    fmt.Sprintf("%032x", id),
		Query:      "q",
		DurationNs: d.Nanoseconds(),
		Partial:    partial,
		Error:      errMsg,
		Root:       &SpanNode{SpanID: NewSpanID().String(), Name: "suggest"},
	}
}

// The tail policy: error/partial/slow traces are always retained (and
// survive ambient churn); fast healthy traces follow KeepRate.
func TestTraceStoreTailSampling(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Size: 8, Threshold: 100 * time.Millisecond, KeepRate: -1})

	if !s.Offer(mkTrace(1, 200*time.Millisecond, false, "")) {
		t.Fatal("slow trace dropped")
	}
	if !s.Offer(mkTrace(2, time.Millisecond, true, "")) {
		t.Fatal("partial trace dropped")
	}
	if !s.Offer(mkTrace(3, time.Millisecond, false, "boom")) {
		t.Fatal("error trace dropped")
	}
	// KeepRate < 0 keeps no ambient traces.
	if s.Offer(mkTrace(4, time.Millisecond, false, "")) {
		t.Fatal("fast healthy trace retained at KeepRate<0")
	}

	for id, want := range map[int]string{1: "slow", 2: "partial", 3: "error"} {
		tr := s.Get(fmt.Sprintf("%032x", id))
		if tr == nil {
			t.Fatalf("trace %d not retained", id)
		}
		if tr.Retained != want {
			t.Errorf("trace %d retained=%q, want %q", id, tr.Retained, want)
		}
		if tr.Time == "" {
			t.Errorf("trace %d has no completion time", id)
		}
	}
	if got := s.Get("00000000000000000000000000000bad"); got != nil {
		t.Error("Get of unknown id returned a trace")
	}

	st := s.Stats()
	if st.Offered != 4 || st.Retained != 3 || st.Dropped != 1 || st.Resident != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// Interesting traces live in a protected ring: a flood of healthy
// sampled traffic must not evict a retained slow trace.
func TestTraceStoreProtectedRing(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Size: 8, Threshold: 100 * time.Millisecond, KeepRate: 1})
	slow := mkTrace(999, time.Second, false, "")
	s.Offer(slow)
	for i := 0; i < 100; i++ {
		s.Offer(mkTrace(i, time.Millisecond, false, ""))
	}
	if s.Get(slow.TraceID) == nil {
		t.Fatal("ambient churn evicted a slow trace from the protected ring")
	}
	// The ambient ring is bounded: resident ≤ capacity.
	if st := s.Stats(); st.Resident > st.Capacity {
		t.Errorf("resident %d exceeds capacity %d", st.Resident, st.Capacity)
	}
}

func TestTraceStoreList(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Size: 16, KeepRate: 1, Threshold: time.Hour})
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		tr := mkTrace(i, time.Millisecond, i%2 == 0, "")
		tr.Time = base.Add(time.Duration(i) * time.Second).Format(time.RFC3339Nano)
		s.Offer(tr)
	}
	all := s.List(0)
	if len(all) != 5 {
		t.Fatalf("List(0) = %d rows", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Time > all[i-1].Time {
			t.Errorf("List not newest-first at %d: %s > %s", i, all[i].Time, all[i-1].Time)
		}
	}
	if got := s.List(2); len(got) != 2 {
		t.Errorf("List(2) = %d rows", len(got))
	}
	if all[0].Spans != 1 {
		t.Errorf("summary span count = %d", all[0].Spans)
	}
}

// Concurrent Offer/Get/List under -race: the store's contract is that
// readers and writers never trip the detector.
func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Size: 32, Threshold: time.Millisecond, KeepRate: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Offer(mkTrace(g*1000+i, time.Duration(i)*time.Millisecond, false, ""))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.List(10)
				s.Get(fmt.Sprintf("%032x", i))
				s.Stats()
			}
		}()
	}
	wg.Wait()
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Error("zero sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("always sampler skipped")
		}
	}
	half := NewSampler(0.5)
	n := 0
	for i := 0; i < 10000; i++ {
		if half.Sample() {
			n++
		}
	}
	if n < 4000 || n > 6000 {
		t.Errorf("p=0.5 sampler hit %d/10000", n)
	}
	if r := half.Rate(); r < 0.49 || r > 0.51 {
		t.Errorf("Rate() = %v", r)
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := NewDurationHistogram()
	h.ObserveDurationExemplar(40*time.Microsecond, "deadbeef", "req-1")
	h.ObserveDuration(time.Millisecond) // no exemplar
	var sb strings.Builder
	WriteHistogramExemplars(&sb, "x_dur_seconds", "help", h)
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="deadbeef",request_id="req-1"} 4e-05`) {
		t.Errorf("exemplar missing from exposition:\n%s", out)
	}
	// Exactly one bucket carries the exemplar.
	if n := strings.Count(out, "trace_id="); n != 1 {
		t.Errorf("%d exemplars emitted, want 1:\n%s", n, out)
	}
	// The plain exposition never emits exemplars.
	sb.Reset()
	WriteHistogram(&sb, "x_dur_seconds", "help", h)
	if strings.Contains(sb.String(), "trace_id=") {
		t.Error("plain WriteHistogram leaked exemplars")
	}
}

func TestRuntimeTracker(t *testing.T) {
	rt := NewRuntimeTracker()
	snap := rt.Snapshot()
	if snap.Goroutines <= 0 || snap.GOMAXPROCS <= 0 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.HeapAllocBytes == 0 || snap.HeapSysBytes == 0 {
		t.Errorf("heap stats empty: %+v", snap)
	}
	var sb strings.Builder
	rt.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"xclean_go_goroutines", "xclean_go_gomaxprocs", "xclean_go_heap_alloc_bytes",
		"xclean_go_gc_cycles_total", "xclean_go_gc_pause_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %s", want)
		}
	}
}
