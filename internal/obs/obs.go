// Package obs is the zero-dependency observability layer of the
// XClean service: atomic counters, gauges, and fixed-bucket streaming
// histograms, plus the stage taxonomy of one suggestion request
// (tokenize → variant generation → merged-list scan → anchor/subtree
// enumeration → result-type inference → accumulate/prune → top-k
// rank).
//
// Everything here is always compiled into the engine; the engine
// guards every instrumentation site with a nil-sink check, so a build
// with no sink attached pays only an untaken branch (the ≤2% budget on
// BenchmarkSuggest is enforced by `make bench-smoke`). All types are
// safe for concurrent use: writers use atomics only, and readers
// (Snapshot, WritePrometheus) observe a possibly-torn but monotone
// view, the usual contract of a Prometheus scrape.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Stage enumerates the pipeline phases of one suggestion request, in
// execution order. The scan stages (StageScan..StageAccumulate) run
// once per worker shard; the rest are whole-call stages.
type Stage int

const (
	// StageTokenize covers query tokenization (and, under the space
	// search, shape expansion).
	StageTokenize Stage = iota
	// StageVariants covers ε-variant generation: FastSS search plus
	// phonetic and synonym merging, per keyword.
	StageVariants
	// StageScan covers merged-list advancement: anchor selection,
	// galloping skips, and subtree collection.
	StageScan
	// StageEnumerate covers candidate enumeration over the variants
	// present in each anchor subtree (excluding the inner inference and
	// accumulation work, reported separately).
	StageEnumerate
	// StageTypeInfer covers result-type inference, both cache lookups
	// and FindResultType computations.
	StageTypeInfer
	// StageAccumulate covers entity-group intersection, language-model
	// scoring, and accumulator insertion/eviction.
	StageAccumulate
	// StageRank covers finalization: normalization, bigram weighting,
	// sorting, and the top-k cut (and, under the space search, the
	// cross-shape merge).
	StageRank
	// NumStages is the number of pipeline stages.
	NumStages
)

var stageNames = [NumStages]string{
	"tokenize", "variants", "scan", "enumerate", "typeinfer", "accumulate", "rank",
}

// String returns the stable metric-label name of the stage.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages lists every stage in execution order (for iteration).
func Stages() [NumStages]Stage {
	var out [NumStages]Stage
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageDurations accumulates wall time per stage for one run (one
// worker shard, or one whole call). It is not safe for concurrent use;
// each goroutine fills its own and the owner merges them.
type StageDurations [NumStages]time.Duration

// Add folds another run's stage times into d.
func (d *StageDurations) Add(o *StageDurations) {
	for i := range d {
		d[i] += o[i]
	}
}

// Total returns the sum over all stages.
func (d *StageDurations) Total() time.Duration {
	var t time.Duration
	for _, v := range d {
		t += v
	}
	return t
}

// Span is one timed stage of one request, attributed to the worker
// shard that ran it. Worker -1 marks whole-call stages (tokenize,
// variants, rank); scan-phase spans carry the shard index so parallel
// skew is visible per request.
type Span struct {
	Stage      string `json:"stage"`
	Worker     int    `json:"worker"`
	DurationNs int64  `json:"durationNs"`
}

// SpansOf flattens call-level stage durations plus per-worker scan
// durations into the span list of one request. Zero-duration stages
// are kept (a stage that ran in under a clock tick is still part of
// the taxonomy) but stages that never ran on a worker (all-zero shard
// entries, e.g. the scan stages at call level) are skipped.
func SpansOf(call *StageDurations, workers []StageDurations) []Span {
	var out []Span
	add := func(st Stage, worker int, d time.Duration) {
		out = append(out, Span{Stage: st.String(), Worker: worker, DurationNs: int64(d)})
	}
	add(StageTokenize, -1, call[StageTokenize])
	add(StageVariants, -1, call[StageVariants])
	for wi := range workers {
		for st := StageScan; st <= StageAccumulate; st++ {
			add(st, wi, workers[wi][st])
		}
	}
	add(StageRank, -1, call[StageRank])
	return out
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 with atomic add (CAS loop), for histogram
// sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// DurationBuckets are the default histogram bounds for request and
// stage latencies, in seconds: 25µs to 10s, roughly 2–2.5× apart, so
// both the microsecond cache-hit regime and multi-second outliers
// resolve.
var DurationBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// RatioBuckets are histogram bounds for unitless ratios ≥ 1 (worker
// imbalance: max shard time over mean shard time).
var RatioBuckets = []float64{1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// Histogram is a fixed-bucket streaming histogram. Values are unit-
// agnostic float64s; latencies are recorded in seconds (Prometheus
// convention). Observation is one binary search plus three atomic
// adds — no locks, no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	// exemplars holds the most recent exemplar per bucket (nil until
	// one is attached); see ObserveExemplar.
	exemplars []atomic.Pointer[Exemplar]
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (a final +Inf bucket is implicit). The slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// NewDurationHistogram is NewHistogram over DurationBuckets.
func NewDurationHistogram() *Histogram { return NewHistogram(DurationBuckets) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records one duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Exemplar pins one concrete request to a histogram bucket: the trace
// and request IDs of a real observation that landed there, so a
// latency bucket in a dashboard links straight to /tracez?id= and the
// logs. Each bucket keeps only its most recent exemplar (an atomic
// pointer swap — last writer wins, which is the Prometheus exemplar
// convention).
type Exemplar struct {
	Value     float64
	TraceID   string
	RequestID string
	UnixNano  int64
}

// ObserveExemplar is Observe plus an exemplar attached to the bucket
// the value lands in. Empty IDs attach nothing (plain Observe).
func (h *Histogram) ObserveExemplar(v float64, traceID, requestID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID == "" && requestID == "" {
		return
	}
	h.exemplars[i].Store(&Exemplar{
		Value:     v,
		TraceID:   traceID,
		RequestID: requestID,
		UnixNano:  time.Now().UnixNano(),
	})
}

// ObserveDurationExemplar is ObserveExemplar over a duration in
// seconds.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID, requestID string) {
	h.ObserveExemplar(d.Seconds(), traceID, requestID)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Bucket is one cumulative histogram bucket: Count observations were
// ≤ Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders Le as a string ("0.05", "+Inf") because the last
// bucket's bound is infinite, which a JSON number cannot carry.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatFloat(b.Le), b.Count)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Le == "+Inf" {
		b.Le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.Le, 64)
		if err != nil {
			return err
		}
		b.Le = v
	}
	b.Count = raw.Count
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram, with
// cumulative bucket counts (Prometheus semantics). The final bucket's
// Le is +Inf and its Count equals Count.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: cum}
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the owning bucket, the standard Prometheus
// histogram_quantile estimate. Returns 0 on an empty histogram; the
// +Inf bucket clamps to its lower bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) >= rank {
			lo, loCount := 0.0, int64(0)
			if i > 0 {
				lo, loCount = s.Buckets[i-1].Le, s.Buckets[i-1].Count
			}
			if math.IsInf(b.Le, 1) {
				return lo
			}
			span := float64(b.Count - loCount)
			if span <= 0 {
				return b.Le
			}
			return lo + (b.Le-lo)*(rank-float64(loCount))/span
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Sink aggregates the engine-side metrics of every observed suggestion
// call. A nil *Sink disables instrumentation (the engine checks once
// per call); a single Sink may be shared by several engines (e.g.
// across Refresh generations) — all fields are concurrency-safe.
type Sink struct {
	// Queries counts observed suggestion calls.
	Queries Counter
	// QueryDur is the end-to-end engine latency distribution (seconds).
	QueryDur *Histogram
	// Stage holds one latency histogram per pipeline stage; parallel
	// shards' times are summed per call before observation, so stage
	// histograms measure CPU-time-like totals, not wall overlap.
	Stage [NumStages]*Histogram
	// PostingsRead etc. mirror core.Stats, summed over all calls.
	PostingsRead    Counter
	Subtrees        Counter
	CandidatesSeen  Counter
	TypeCacheHits   Counter
	TypeCacheMisses Counter
	Evictions       Counter
	// WorkerImbalance records max/mean scan-shard time per parallel
	// call — 1.0 is perfect balance.
	WorkerImbalance *Histogram
	// SlowQueries counts calls whose latency crossed the slow-query
	// threshold (maintained by the serving layer).
	SlowQueries Counter

	// SegmentCount, TailDocs, and Tombstones describe the segmented
	// index stack serving this sink's engine: sealed segments, documents
	// buffered in the mutable tail, and logically-removed documents not
	// yet purged by compaction. All zero on a monolithic engine.
	SegmentCount Gauge
	TailDocs     Gauge
	Tombstones   Gauge
	// DocsAdded and DocsRemoved count live write operations applied to
	// the segment stack.
	DocsAdded   Counter
	DocsRemoved Counter
	// CompactionRuns counts completed compaction operations (merges and
	// tombstone purges), CompactionBytes the postings bytes of the
	// segments they published, and CompactionDur the per-run latency
	// distribution.
	CompactionRuns  Counter
	CompactionBytes Counter
	CompactionDur   *Histogram
}

// NewSink builds a sink with the default bucket layout.
func NewSink() *Sink {
	s := &Sink{
		QueryDur:        NewDurationHistogram(),
		WorkerImbalance: NewHistogram(RatioBuckets),
		CompactionDur:   NewDurationHistogram(),
	}
	for i := range s.Stage {
		s.Stage[i] = NewDurationHistogram()
	}
	return s
}

// ObserveSuggest records one completed suggestion call: total latency
// plus the per-stage aggregate. Stages that did not run (zero) are
// skipped so their histograms count only calls that exercised them.
func (s *Sink) ObserveSuggest(total time.Duration, stages *StageDurations) {
	s.Queries.Inc()
	s.QueryDur.ObserveDuration(total)
	if stages == nil {
		return
	}
	for i, d := range stages {
		if d > 0 {
			s.Stage[i].ObserveDuration(d)
		}
	}
}

// SinkSnapshot is the JSON form of a Sink, served by /metricz.
type SinkSnapshot struct {
	Queries         int64                        `json:"queries"`
	QueryDuration   HistogramSnapshot            `json:"queryDuration"`
	Stages          map[string]HistogramSnapshot `json:"stages"`
	PostingsRead    int64                        `json:"postingsRead"`
	Subtrees        int64                        `json:"subtrees"`
	CandidatesSeen  int64                        `json:"candidatesSeen"`
	TypeCacheHits   int64                        `json:"typeCacheHits"`
	TypeCacheMisses int64                        `json:"typeCacheMisses"`
	Evictions       int64                        `json:"evictions"`
	WorkerImbalance HistogramSnapshot            `json:"workerImbalance"`
	SlowQueries     int64                        `json:"slowQueries"`
	Segments        int64                        `json:"segments"`
	TailDocs        int64                        `json:"tailDocs"`
	Tombstones      int64                        `json:"tombstones"`
	DocsAdded       int64                        `json:"docsAdded"`
	DocsRemoved     int64                        `json:"docsRemoved"`
	CompactionRuns  int64                        `json:"compactionRuns"`
	CompactionBytes int64                        `json:"compactionBytes"`
	CompactionDur   HistogramSnapshot            `json:"compactionDuration"`
}

// Snapshot copies the sink's current state.
func (s *Sink) Snapshot() SinkSnapshot {
	out := SinkSnapshot{
		Queries:         s.Queries.Value(),
		QueryDuration:   s.QueryDur.Snapshot(),
		Stages:          make(map[string]HistogramSnapshot, NumStages),
		PostingsRead:    s.PostingsRead.Value(),
		Subtrees:        s.Subtrees.Value(),
		CandidatesSeen:  s.CandidatesSeen.Value(),
		TypeCacheHits:   s.TypeCacheHits.Value(),
		TypeCacheMisses: s.TypeCacheMisses.Value(),
		Evictions:       s.Evictions.Value(),
		WorkerImbalance: s.WorkerImbalance.Snapshot(),
		SlowQueries:     s.SlowQueries.Value(),
		Segments:        s.SegmentCount.Value(),
		TailDocs:        s.TailDocs.Value(),
		Tombstones:      s.Tombstones.Value(),
		DocsAdded:       s.DocsAdded.Value(),
		DocsRemoved:     s.DocsRemoved.Value(),
		CompactionRuns:  s.CompactionRuns.Value(),
		CompactionBytes: s.CompactionBytes.Value(),
		CompactionDur:   s.CompactionDur.Snapshot(),
	}
	for i := range s.Stage {
		out.Stages[Stage(i).String()] = s.Stage[i].Snapshot()
	}
	return out
}

// ---- Prometheus text exposition (format 0.0.4) ----

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip form; +Inf spelled literally).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCounter emits one counter metric with HELP/TYPE headers.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge emits one gauge metric with HELP/TYPE headers.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
}

// writeHistogramSeries emits the bucket/sum/count series of one
// histogram under the given name, with extraLabels (e.g. `stage="scan"`,
// may be empty) applied to every sample. Headers are the caller's job
// so vectors share one HELP/TYPE block.
func writeHistogramSeries(w io.Writer, name, extraLabels string, h *Histogram) {
	writeHistogramSeriesEx(w, name, extraLabels, h, false)
}

// writeHistogramSeriesEx is writeHistogramSeries with optional
// OpenMetrics exemplar suffixes: a bucket that has an exemplar gains
// ` # {trace_id="…",request_id="…"} <value> <timestamp>` after its
// sample, linking the bucket to one concrete request. Exemplars are an
// OpenMetrics extension — emit them only on endpoints scraped by
// OpenMetrics-capable collectors (Prometheus ≥ 2.26 negotiates it).
func writeHistogramSeriesEx(w io.Writer, name, extraLabels string, h *Histogram, withExemplars bool) {
	snap := h.Snapshot()
	sep, sumLabels := "", ""
	if extraLabels != "" {
		sep = ","
		sumLabels = "{" + extraLabels + "}"
	}
	for i, b := range snap.Buckets {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d", name, extraLabels, sep, formatFloat(b.Le), b.Count)
		if withExemplars && i < len(h.exemplars) {
			if ex := h.exemplars[i].Load(); ex != nil {
				fmt.Fprintf(w, " # {trace_id=%q,request_id=%q} %s %.3f",
					ex.TraceID, ex.RequestID, formatFloat(ex.Value),
					float64(ex.UnixNano)/1e9)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sumLabels, formatFloat(snap.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sumLabels, snap.Count)
}

// WriteHistogramExemplars emits one histogram metric with HELP/TYPE
// headers and per-bucket OpenMetrics exemplars.
func WriteHistogramExemplars(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeriesEx(w, name, "", h, true)
}

// WriteHistogram emits one histogram metric with HELP/TYPE headers.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(w, name, "", h)
}

// WritePrometheus emits every sink metric in Prometheus text
// exposition format under the given namespace (e.g. "xclean_engine").
func (s *Sink) WritePrometheus(w io.Writer, ns string) {
	WritePrometheusLabeled(w, ns, "", []NamedSink{{Sink: s}})
}

// NamedSink pairs a label value with a Sink, for the per-corpus
// exposition of WritePrometheusLabeled.
type NamedSink struct {
	Label string
	Sink  *Sink
}

// WriteHeader emits the HELP/TYPE preamble of one metric family; the
// caller follows with one or more samples (WriteLabeledCounterSample,
// WriteLabeledGaugeSample, WriteHistogramSeries) so a labeled family
// shares a single preamble.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteLabeledCounterSample emits one headerless counter sample with
// the given label set (e.g. `corpus="dblp"`; empty = no labels).
func WriteLabeledCounterSample(w io.Writer, name, labels string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// WriteLabeledGaugeSample is WriteLabeledCounterSample for float-valued
// gauges.
func WriteLabeledGaugeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// WriteHistogramSeries emits the headerless bucket/sum/count samples of
// one histogram, with extraLabels applied to every sample.
func WriteHistogramSeries(w io.Writer, name, extraLabels string, h *Histogram) {
	writeHistogramSeries(w, name, extraLabels, h)
}

// WritePrometheusLabeled emits every sink metric for a set of sinks
// under one namespace, with each sample labeled labelName="<Label>"
// (one HELP/TYPE block per metric family, one sample per sink — the
// exposition-format contract for labeled families). An empty labelName
// emits unlabeled samples, which is only sensible for a single sink.
func WritePrometheusLabeled(w io.Writer, ns, labelName string, sinks []NamedSink) {
	if ns == "" {
		ns = "xclean_engine"
	}
	label := func(s NamedSink) string {
		if labelName == "" {
			return ""
		}
		return fmt.Sprintf("%s=%q", labelName, s.Label)
	}
	counter := func(name, help string, v func(*Sink) int64) {
		WriteHeader(w, ns+name, help, "counter")
		for _, s := range sinks {
			WriteLabeledCounterSample(w, ns+name, label(s), v(s.Sink))
		}
	}
	gauge := func(name, help string, v func(*Sink) int64) {
		WriteHeader(w, ns+name, help, "gauge")
		for _, s := range sinks {
			WriteLabeledGaugeSample(w, ns+name, label(s), float64(v(s.Sink)))
		}
	}
	histogram := func(name, help string, h func(*Sink) *Histogram) {
		WriteHeader(w, ns+name, help, "histogram")
		for _, s := range sinks {
			writeHistogramSeries(w, ns+name, label(s), h(s.Sink))
		}
	}
	counter("_suggest_requests_total", "Suggestion calls observed by the engine.",
		func(s *Sink) int64 { return s.Queries.Value() })
	histogram("_suggest_duration_seconds", "End-to-end engine latency per suggestion call.",
		func(s *Sink) *Histogram { return s.QueryDur })
	name := ns + "_stage_duration_seconds"
	WriteHeader(w, name, "Per-stage time per suggestion call (parallel shards summed).", "histogram")
	for _, s := range sinks {
		for i := range s.Sink.Stage {
			stageLabel := fmt.Sprintf("stage=%q", Stage(i).String())
			if l := label(s); l != "" {
				stageLabel = l + "," + stageLabel
			}
			writeHistogramSeries(w, name, stageLabel, s.Sink.Stage[i])
		}
	}
	counter("_postings_read_total", "Merged-list entries consumed.",
		func(s *Sink) int64 { return s.PostingsRead.Value() })
	counter("_subtrees_scanned_total", "Anchor subtrees processed.",
		func(s *Sink) int64 { return s.Subtrees.Value() })
	counter("_candidates_seen_total", "Candidate-query observations scored.",
		func(s *Sink) int64 { return s.CandidatesSeen.Value() })
	counter("_type_cache_hits_total", "Result-type cache hits.",
		func(s *Sink) int64 { return s.TypeCacheHits.Value() })
	counter("_type_cache_misses_total", "Result-type cache misses (FindResultType runs).",
		func(s *Sink) int64 { return s.TypeCacheMisses.Value() })
	counter("_accumulator_evictions_total", "Score accumulators evicted under the γ bound.",
		func(s *Sink) int64 { return s.Evictions.Value() })
	histogram("_worker_imbalance_ratio", "Max over mean scan-shard time per parallel call.",
		func(s *Sink) *Histogram { return s.WorkerImbalance })
	counter("_slow_queries_total", "Requests that crossed the slow-query threshold.",
		func(s *Sink) int64 { return s.SlowQueries.Value() })
	gauge("_segments", "Sealed index segments in the stack (0 = monolithic).",
		func(s *Sink) int64 { return s.SegmentCount.Value() })
	gauge("_tail_docs", "Documents buffered in the mutable tail segment.",
		func(s *Sink) int64 { return s.TailDocs.Value() })
	gauge("_tombstones", "Logically removed documents awaiting compaction.",
		func(s *Sink) int64 { return s.Tombstones.Value() })
	counter("_docs_added_total", "Documents added through the live write path.",
		func(s *Sink) int64 { return s.DocsAdded.Value() })
	counter("_docs_removed_total", "Documents removed through the live write path.",
		func(s *Sink) int64 { return s.DocsRemoved.Value() })
	counter("_compactions_total", "Completed segment compaction operations.",
		func(s *Sink) int64 { return s.CompactionRuns.Value() })
	counter("_compaction_bytes_total", "Postings bytes of segments published by compaction.",
		func(s *Sink) int64 { return s.CompactionBytes.Value() })
	histogram("_compaction_duration_seconds", "Latency per compaction operation.",
		func(s *Sink) *Histogram { return s.CompactionDur })
}
