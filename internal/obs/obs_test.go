package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"tokenize", "variants", "scan", "enumerate", "typeinfer", "accumulate", "rank"}
	got := Stages()
	if len(got) != int(NumStages) {
		t.Fatalf("Stages() has %d entries, want %d", len(got), NumStages)
	}
	for i, name := range want {
		if got[i].String() != name {
			t.Errorf("stage %d = %q, want %q", i, got[i], name)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3)
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.9, 3, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if want := 0.5 + 1.5 + 1.9 + 3 + 100; snap.Sum != want {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
	// Cumulative bucket counts: ≤1: 1, ≤2: 3, ≤4: 4, ≤+Inf: 5.
	wantCounts := []int64{1, 3, 4, 5}
	if len(snap.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count %d, want %d", len(snap.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, snap.Buckets[i].Le, snap.Buckets[i].Count, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 30))
	}
	snap := h.Snapshot()
	p50 := snap.Quantile(0.5)
	if p50 < 10 || p50 > 20 {
		t.Errorf("p50 = %v, want within (10, 20]", p50)
	}
	if q := snap.Quantile(0.99); q > 30 {
		t.Errorf("p99 = %v escaped the top finite bucket", q)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewDurationHistogram()
	h.ObserveDuration(50 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Sum < 0.049 || snap.Sum > 0.051 {
		t.Errorf("sum = %v seconds, want 0.05", snap.Sum)
	}
}

// TestPrometheusExposition validates every emitted line against the
// text-format grammar: comments start with "# HELP"/"# TYPE", samples
// are `name[{labels}] value`, histogram buckets are cumulative and end
// with +Inf, and _count equals the +Inf bucket.
func TestPrometheusExposition(t *testing.T) {
	s := NewSink()
	var stages StageDurations
	stages[StageScan] = 2 * time.Millisecond
	stages[StageRank] = time.Millisecond
	s.ObserveSuggest(5*time.Millisecond, &stages)
	s.PostingsRead.Add(42)
	s.TypeCacheHits.Add(7)
	s.WorkerImbalance.Observe(1.3)

	var buf bytes.Buffer
	s.WritePrometheus(&buf, "")

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 20 {
		t.Fatalf("suspiciously short exposition: %d lines", len(lines))
	}
	seen := map[string]bool{}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			f := strings.Fields(ln)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Errorf("malformed comment line %q", ln)
			}
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", ln)
		}
		name, val := ln[:sp], ln[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("line %q: value %q is not a float", ln, val)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("line %q: unterminated label set", ln)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "xclean_engine_") {
			t.Errorf("line %q: metric %q outside the namespace", ln, name)
		}
		seen[name] = true
	}
	for _, want := range []string{
		"xclean_engine_suggest_requests_total",
		"xclean_engine_suggest_duration_seconds_bucket",
		"xclean_engine_suggest_duration_seconds_sum",
		"xclean_engine_suggest_duration_seconds_count",
		"xclean_engine_stage_duration_seconds_bucket",
		"xclean_engine_postings_read_total",
		"xclean_engine_type_cache_hits_total",
		"xclean_engine_type_cache_misses_total",
		"xclean_engine_accumulator_evictions_total",
		"xclean_engine_worker_imbalance_ratio_bucket",
		"xclean_engine_slow_queries_total",
	} {
		if !seen[want] {
			t.Errorf("metric %s missing from exposition", want)
		}
	}

	// Cumulative buckets must be monotone and end at +Inf == _count.
	var last int64 = -1
	var infCount, count int64 = -1, -1
	for _, ln := range lines {
		if strings.HasPrefix(ln, "xclean_engine_suggest_duration_seconds_bucket") {
			v, _ := strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
			if v < last {
				t.Errorf("bucket counts not cumulative at %q", ln)
			}
			last = v
			if strings.Contains(ln, `le="+Inf"`) {
				infCount = v
			}
		}
		if strings.HasPrefix(ln, "xclean_engine_suggest_duration_seconds_count") {
			count, _ = strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		}
	}
	if infCount < 0 || infCount != count {
		t.Errorf("+Inf bucket %d != _count %d", infCount, count)
	}
}

func TestPrometheusLabeledExposition(t *testing.T) {
	a, b := NewSink(), NewSink()
	a.Queries.Add(3)
	b.Queries.Add(5)
	a.ObserveSuggest(2*time.Millisecond, nil) // bumps a.Queries to 4

	var buf bytes.Buffer
	WritePrometheusLabeled(&buf, "xc", "corpus", []NamedSink{
		{Label: "dblp", Sink: a}, {Label: "wiki", Sink: b},
	})
	out := buf.String()

	// One HELP/TYPE block per family, not per sink.
	if n := strings.Count(out, "# TYPE xc_suggest_requests_total counter"); n != 1 {
		t.Errorf("want 1 TYPE line for the counter family, got %d", n)
	}
	for _, want := range []string{
		`xc_suggest_requests_total{corpus="dblp"} 4`,
		`xc_suggest_requests_total{corpus="wiki"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing sample %q", want)
		}
	}
	// Stage histograms compose the corpus and stage labels.
	if !strings.Contains(out, `xc_stage_duration_seconds_bucket{corpus="dblp",stage="tokenize"`) {
		t.Error("stage series missing composed corpus+stage labels")
	}
	// Every non-comment sample must carry a corpus label.
	for _, ln := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.Contains(ln, `corpus="`) {
			t.Errorf("unlabeled sample %q", ln)
		}
	}
}

func TestSpansOf(t *testing.T) {
	var call StageDurations
	call[StageTokenize] = time.Microsecond
	call[StageVariants] = 2 * time.Microsecond
	call[StageRank] = 3 * time.Microsecond
	workers := []StageDurations{{}, {}}
	workers[0][StageScan] = 5 * time.Microsecond
	workers[1][StageScan] = 6 * time.Microsecond
	spans := SpansOf(&call, workers)

	// 3 call-level + 2 workers × 4 scan-phase stages.
	if len(spans) != 3+2*4 {
		t.Fatalf("span count %d", len(spans))
	}
	if spans[0].Stage != "tokenize" || spans[0].Worker != -1 {
		t.Errorf("first span %+v", spans[0])
	}
	var w0scan, w1scan int64
	for _, sp := range spans {
		if sp.Stage == "scan" && sp.Worker == 0 {
			w0scan = sp.DurationNs
		}
		if sp.Stage == "scan" && sp.Worker == 1 {
			w1scan = sp.DurationNs
		}
	}
	if w0scan != 5000 || w1scan != 6000 {
		t.Errorf("worker scan spans %d, %d", w0scan, w1scan)
	}
}

// TestConcurrentSink hammers every sink primitive from many
// goroutines; run under -race this is the counter/histogram race test.
func TestConcurrentSink(t *testing.T) {
	s := NewSink()
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stages StageDurations
			stages[StageScan] = time.Duration(w+1) * time.Microsecond
			for i := 0; i < rounds; i++ {
				s.ObserveSuggest(time.Duration(i)*time.Microsecond, &stages)
				s.PostingsRead.Add(3)
				s.TypeCacheHits.Inc()
				s.WorkerImbalance.Observe(1.0 + float64(i%10)/10)
				if i%100 == 0 {
					_ = s.Snapshot()
					var buf bytes.Buffer
					s.WritePrometheus(&buf, "")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := s.Queries.Value(); got != workers*rounds {
		t.Errorf("queries = %d, want %d", got, workers*rounds)
	}
	if got := s.QueryDur.Count(); got != workers*rounds {
		t.Errorf("histogram count = %d, want %d", got, workers*rounds)
	}
	if got := s.PostingsRead.Value(); got != workers*rounds*3 {
		t.Errorf("postings = %d, want %d", got, workers*rounds*3)
	}
}
