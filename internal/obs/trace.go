// Distributed tracing: the request-tree half of the observability
// layer. Where obs.Span is a flat stage timing (one engine call, one
// process), SpanNode/Trace model one request as a tree that crosses
// process boundaries: a coordinator's /suggest span parents one child
// span per shard attempt, and each shard's server span parents its own
// engine stage spans. Identity propagates over HTTP in the W3C Trace
// Context `traceparent` header (version 00), so any W3C-speaking
// client or proxy composes with the cluster's own propagation.
//
// Completed traces land in a TraceStore, an in-process ring buffer
// with tail sampling: traces that ended in an error, a partial
// (degraded) answer, or over a latency threshold are always retained
// in a protected ring; unremarkable traces are retained
// probabilistically in a second ring. The store backs GET /tracez.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-id: 16 bytes, rendered as 32 lowercase hex
// digits. The all-zero value is invalid (the W3C contract) and doubles
// as "no trace" internally.
type TraceID [16]byte

// SpanID is a W3C parent-id/span-id: 8 bytes, 16 hex digits. All-zero
// is invalid.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState is the process-wide ID generator: a crypto-seeded splitmix64
// stream. Sequential splitmix64 outputs are statistically independent,
// collisions across processes are avoided by the random seed, and
// generation is one atomic add + a few shifts — cheap enough for the
// sampled path and never on the unsampled one.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextRand64() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], nextRand64())
		binary.BigEndian.PutUint64(t[8:], nextRand64())
	}
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], nextRand64())
	}
	return s
}

// FlagSampled is the sampled bit of the traceparent trace-flags octet.
const FlagSampled = 0x01

// Traceparent renders a W3C Trace Context header value, version 00:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex trace-flags>
func Traceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any non-ff version (per spec, future versions must stay
// prefix-compatible) and rejects malformed or all-zero IDs. ok is
// false when the header should be ignored and a fresh trace started.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, sampled bool, ok bool) {
	// version "-" trace-id "-" parent-id "-" flags [ "-" ... future ]
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false, false
	}
	if len(h) > 55 && h[55] != '-' {
		return tid, sid, false, false
	}
	if !isHex(h[:2]) || h[:2] == "ff" {
		return tid, sid, false, false
	}
	if h[:2] == "00" && len(h) != 55 {
		return tid, sid, false, false
	}
	// W3C mandates lowercase hex; encoding/hex would accept uppercase.
	if !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return tid, sid, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, sid, false, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, sid, flags[0]&FlagSampled != 0, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceContext is the propagated identity of one sampled request: the
// trace ID plus the span the next child spans must parent under. A
// nil *TraceContext means "not sampled" throughout the serving layer —
// the allocation-free fast path.
type TraceContext struct {
	TraceID TraceID
	// Parent is the current span: children created on behalf of this
	// context set it as their ParentSpanID, and outgoing traceparent
	// headers carry it as the parent-id.
	Parent SpanID
}

// SpanNode is one span of a trace, holding its children inline so a
// whole subtree serializes as one JSON object — the unit a shard
// returns to the coordinator and /tracez?id= renders.
type SpanNode struct {
	// SpanID and ParentSpanID are 16-hex-digit W3C span IDs.
	// ParentSpanID is empty on a trace's root (or on a subtree whose
	// parent lives in another process before stitching).
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// Name identifies the operation ("suggest", "shard.attempt",
	// "shard.suggest", or a stage name like "scan").
	Name string `json:"name"`
	// Kind is "server" (handled an incoming request), "client" (called
	// out), or "internal" (an in-process stage).
	Kind string `json:"kind,omitempty"`
	// StartUnixNano is the span's start on the local clock (0 when only
	// a duration was measured, e.g. engine stage spans).
	StartUnixNano int64 `json:"startUnixNano,omitempty"`
	DurationNs    int64 `json:"durationNs"`
	// Status is "" (ok), "error", "timeout", "canceled" (the caller
	// hung up mid-span), or "abandoned" (a fan-out race loser whose
	// work was discarded — not a failure); Error carries the message
	// when the span actually failed.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Attrs are free-form key→value annotations (shard name, attempt
	// ordinal, worker index, cache outcome, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are the spans this one parents, in start order.
	Children []*SpanNode `json:"children,omitempty"`
}

// AddChild appends a child span and returns it (for chaining).
func (n *SpanNode) AddChild(c *SpanNode) *SpanNode {
	n.Children = append(n.Children, c)
	return c
}

// SpanCount returns the number of spans in the subtree rooted at n.
func (n *SpanNode) SpanCount() int {
	if n == nil {
		return 0
	}
	c := 1
	for _, ch := range n.Children {
		c += ch.SpanCount()
	}
	return c
}

// StageSpanNodes converts the flat engine stage spans of one call
// (Explain.Spans / SpansOf) into child SpanNodes under the given
// parent span ID. Call-level stages (worker -1) become plain stage
// spans; per-worker scan stages carry a "worker" attribute.
func StageSpanNodes(parent SpanID, spans []Span) []*SpanNode {
	out := make([]*SpanNode, 0, len(spans))
	p := parent.String()
	for _, sp := range spans {
		n := &SpanNode{
			SpanID:       NewSpanID().String(),
			ParentSpanID: p,
			Name:         sp.Stage,
			Kind:         "internal",
			DurationNs:   sp.DurationNs,
		}
		if sp.Worker >= 0 {
			n.Attrs = map[string]string{"worker": fmt.Sprintf("%d", sp.Worker)}
		}
		out = append(out, n)
	}
	return out
}

// Trace is one completed request tree, the unit the TraceStore retains
// and /tracez serves.
type Trace struct {
	TraceID string `json:"traceId"`
	// RequestID is the serving layer's X-Request-Id, tying the trace to
	// the access and slow-query logs.
	RequestID string `json:"requestId,omitempty"`
	Query     string `json:"query,omitempty"`
	Corpus    string `json:"corpus,omitempty"`
	// Time is the completion time, RFC 3339 with nanoseconds.
	Time       string `json:"time"`
	DurationNs int64  `json:"durationNs"`
	// Partial marks a degraded cluster answer; Error a failed request.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
	// Retained says why the tail sampler kept the trace: "error",
	// "partial", "slow", or "sampled" (set by TraceStore.Offer).
	Retained string `json:"retained,omitempty"`
	// Root is the local root span; remote subtrees are stitched under
	// it.
	Root *SpanNode `json:"root"`
}

// TraceSummary is one /tracez list row.
type TraceSummary struct {
	TraceID    string  `json:"traceId"`
	RequestID  string  `json:"requestId,omitempty"`
	Query      string  `json:"query,omitempty"`
	Corpus     string  `json:"corpus,omitempty"`
	Time       string  `json:"time"`
	TookMillis float64 `json:"tookMillis"`
	Spans      int     `json:"spans"`
	Partial    bool    `json:"partial,omitempty"`
	Error      string  `json:"error,omitempty"`
	Retained   string  `json:"retained,omitempty"`
}

func (t *Trace) summary() TraceSummary {
	return TraceSummary{
		TraceID:    t.TraceID,
		RequestID:  t.RequestID,
		Query:      t.Query,
		Corpus:     t.Corpus,
		Time:       t.Time,
		TookMillis: float64(t.DurationNs) / 1e6,
		Spans:      t.Root.SpanCount(),
		Partial:    t.Partial,
		Error:      t.Error,
		Retained:   t.Retained,
	}
}

// TraceStoreConfig tunes a TraceStore.
type TraceStoreConfig struct {
	// Size is the total retained-trace capacity, split evenly between
	// the protected (error/partial/slow) ring and the ambient ring
	// (0 = 256).
	Size int
	// Threshold is the latency at or above which a trace is always
	// retained (0 = 250ms, matching the slow-query default).
	Threshold time.Duration
	// KeepRate is the probability an unremarkable trace is retained in
	// the ambient ring (tail sampling of the healthy population;
	// 0 = 0.25, negative = keep none, ≥1 = keep all).
	KeepRate float64
}

func (c TraceStoreConfig) size() int {
	if c.Size <= 0 {
		return 256
	}
	if c.Size < 2 {
		return 2
	}
	return c.Size
}

func (c TraceStoreConfig) threshold() time.Duration {
	if c.Threshold == 0 {
		return 250 * time.Millisecond
	}
	return c.Threshold
}

func (c TraceStoreConfig) keepRate() float64 {
	switch {
	case c.KeepRate == 0:
		return 0.25
	case c.KeepRate < 0:
		return 0
	case c.KeepRate > 1:
		return 1
	default:
		return c.KeepRate
	}
}

// traceRing is a fixed-size overwrite-oldest buffer of traces.
type traceRing struct {
	buf  []*Trace
	next int // insertion cursor
}

func (r *traceRing) add(t *Trace) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
}

// each visits retained traces newest-first.
func (r *traceRing) each(fn func(*Trace) bool) {
	n := len(r.buf)
	for i := 1; i <= n; i++ {
		t := r.buf[(r.next-i+n)%n]
		if t == nil {
			return // buffer not yet full; older slots are all nil too
		}
		if !fn(t) {
			return
		}
	}
}

// TraceStore is the tail-sampling ring-buffer store behind /tracez.
// Interesting traces (error, partial, or ≥ Threshold) always land in
// a protected ring that ambient traffic can never evict; the rest are
// admitted to a second ring with probability KeepRate. Both rings
// overwrite their own oldest entry when full, so memory is bounded by
// Size regardless of traffic. Safe for concurrent use.
type TraceStore struct {
	cfg       TraceStoreConfig
	threshold time.Duration
	keepRate  float64

	mu      sync.Mutex
	hot     traceRing // error / partial / slow — always retained
	ambient traceRing // healthy traces, probabilistically retained

	offered  atomic.Int64
	retained atomic.Int64
	dropped  atomic.Int64
}

// NewTraceStore builds a store with the given bounds.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	size := cfg.size()
	hot := size / 2
	return &TraceStore{
		cfg:       cfg,
		threshold: cfg.threshold(),
		keepRate:  cfg.keepRate(),
		hot:       traceRing{buf: make([]*Trace, hot)},
		ambient:   traceRing{buf: make([]*Trace, size-hot)},
	}
}

// Threshold returns the always-retain latency cutoff.
func (s *TraceStore) Threshold() time.Duration { return s.threshold }

// Offer applies the tail-sampling policy to a completed trace,
// reporting whether it was retained. It stamps Trace.Retained with the
// retention reason and Trace.Time when unset. The caller must not
// mutate the trace afterwards.
func (s *TraceStore) Offer(t *Trace) bool {
	if s == nil || t == nil || t.Root == nil {
		return false
	}
	s.offered.Add(1)
	if t.Time == "" {
		t.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	switch {
	case t.Error != "":
		t.Retained = "error"
	case t.Partial:
		t.Retained = "partial"
	case time.Duration(t.DurationNs) >= s.threshold:
		t.Retained = "slow"
	default:
		if !s.keepAmbient() {
			s.dropped.Add(1)
			return false
		}
		t.Retained = "sampled"
	}
	s.mu.Lock()
	if t.Retained == "sampled" {
		s.ambient.add(t)
	} else {
		s.hot.add(t)
	}
	s.mu.Unlock()
	s.retained.Add(1)
	return true
}

// keepAmbient is one Bernoulli draw at KeepRate, off the shared
// splitmix64 stream (53-bit uniform in [0,1)).
func (s *TraceStore) keepAmbient() bool {
	if s.keepRate >= 1 {
		return true
	}
	if s.keepRate <= 0 {
		return false
	}
	u := float64(nextRand64()>>11) / float64(1<<53)
	return u < s.keepRate
}

// Get returns the retained trace with the given ID, or nil. Lookup
// scans both rings (bounded by Size).
func (s *TraceStore) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	var found *Trace
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range []*traceRing{&s.hot, &s.ambient} {
		r.each(func(t *Trace) bool {
			if t.TraceID == id {
				found = t
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// List returns up to n trace summaries, newest first, protected-ring
// traces and ambient traces interleaved by recency (n ≤ 0 = all
// retained).
func (s *TraceStore) List(n int) []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	all := make([]*Trace, 0, len(s.hot.buf)+len(s.ambient.buf))
	s.hot.each(func(t *Trace) bool { all = append(all, t); return true })
	s.ambient.each(func(t *Trace) bool { all = append(all, t); return true })
	s.mu.Unlock()
	// Merge by completion time, newest first. Both rings are already
	// newest-first, so one stable merge pass suffices; Time strings are
	// RFC 3339 UTC and compare lexicographically.
	sortTracesByTimeDesc(all)
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	out := make([]TraceSummary, len(all))
	for i, t := range all {
		out[i] = t.summary()
	}
	return out
}

// sortTracesByTimeDesc sorts newest-first by the RFC 3339 Time stamp
// (lexicographic compare is chronological for same-length UTC stamps;
// insertion-sort because the two-ring concatenation is nearly sorted).
func sortTracesByTimeDesc(ts []*Trace) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Time > ts[j-1].Time; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// TraceStoreStats is the /metricz view of the store.
type TraceStoreStats struct {
	// Offered / Retained / Dropped count tail-sampling decisions since
	// start; Resident is the number of traces currently retained.
	Offered  int64 `json:"offered"`
	Retained int64 `json:"retained"`
	Dropped  int64 `json:"dropped"`
	Resident int   `json:"resident"`
	// Capacity echoes the configured ring size.
	Capacity int `json:"capacity"`
}

// Stats snapshots the store's counters.
func (s *TraceStore) Stats() TraceStoreStats {
	if s == nil {
		return TraceStoreStats{}
	}
	st := TraceStoreStats{
		Offered:  s.offered.Load(),
		Retained: s.retained.Load(),
		Dropped:  s.dropped.Load(),
		Capacity: s.cfg.size(),
	}
	s.mu.Lock()
	s.hot.each(func(*Trace) bool { st.Resident++; return true })
	s.ambient.each(func(*Trace) bool { st.Resident++; return true })
	s.mu.Unlock()
	return st
}

// Sampler is a head-sampling decision at a fixed probability, used by
// the serving layer to pick which requests collect spans at all (the
// W3C sampled flag of an incoming traceparent overrides it). The
// zero-probability sampler never allocates and never samples.
type Sampler struct {
	// thresh compares against a 64-bit uniform draw; 0 = never,
	// ^uint64(0) = always.
	thresh uint64
}

// NewSampler builds a sampler that samples with probability p
// (clamped to [0,1]).
func NewSampler(p float64) Sampler {
	switch {
	case p <= 0:
		return Sampler{}
	case p >= 1:
		return Sampler{thresh: ^uint64(0)}
	default:
		return Sampler{thresh: uint64(p * float64(1<<63) * 2)}
	}
}

// Sample draws once.
func (s Sampler) Sample() bool {
	if s.thresh == 0 {
		return false
	}
	if s.thresh == ^uint64(0) {
		return true
	}
	return nextRand64() < s.thresh
}

// Rate reports the sampler's probability (approximately, for display).
func (s Sampler) Rate() float64 {
	if s.thresh == ^uint64(0) {
		return 1
	}
	return float64(s.thresh) / (float64(1<<63) * 2)
}
