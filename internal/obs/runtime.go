package obs

import (
	"io"
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets are histogram bounds for GC stop-the-world pauses, in
// seconds: 10µs to 100ms (Go pauses are sub-millisecond in healthy
// processes; the upper buckets catch pathology).
var GCPauseBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

// RuntimeTracker publishes the Go runtime's health under /metricz:
// goroutine count, heap occupancy, GOMAXPROCS, and a streaming GC
// pause histogram. Pause samples are folded in lazily on each
// Snapshot/WritePrometheus call from runtime.MemStats' 256-entry pause
// ring, so no background goroutine is needed; at typical scrape
// intervals the ring cannot wrap between observations unless GC runs
// >256 times per interval (in which case the oldest pauses are lost —
// acceptable for a scrape-oriented histogram).
type RuntimeTracker struct {
	mu       sync.Mutex
	gcPause  *Histogram
	lastNumG uint32 // MemStats.NumGC at the last fold
}

// NewRuntimeTracker builds a tracker with the default pause buckets.
func NewRuntimeTracker() *RuntimeTracker {
	return &RuntimeTracker{gcPause: NewHistogram(GCPauseBuckets)}
}

// RuntimeSnapshot is the JSON form of the runtime block.
type RuntimeSnapshot struct {
	Goroutines int `json:"goroutines"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// HeapAllocBytes is live heap (Alloc); HeapInuseBytes is heap spans
	// in use; HeapSysBytes is heap memory obtained from the OS.
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	HeapInuseBytes uint64 `json:"heapInuseBytes"`
	HeapSysBytes   uint64 `json:"heapSysBytes"`
	// NumGC is the completed GC cycle count; NextGCBytes the heap goal.
	NumGC       uint32 `json:"numGC"`
	NextGCBytes uint64 `json:"nextGCBytes"`
	// GCPause is the stop-the-world pause distribution (seconds).
	GCPause HistogramSnapshot `json:"gcPause"`
}

// fold observes GC pauses that completed since the last call. Caller
// holds mu.
func (r *RuntimeTracker) fold(ms *runtime.MemStats) {
	n := ms.NumGC - r.lastNumG
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		// PauseNs is a circular buffer indexed by (NumGC+255)%256 for the
		// most recent pause.
		idx := (ms.NumGC - i + 255) % uint32(len(ms.PauseNs))
		r.gcPause.ObserveDuration(time.Duration(ms.PauseNs[idx]))
	}
	r.lastNumG = ms.NumGC
}

// Snapshot reads the runtime and returns the current block.
func (r *RuntimeTracker) Snapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mu.Lock()
	r.fold(&ms)
	pause := r.gcPause.Snapshot()
	r.mu.Unlock()
	return RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		HeapAllocBytes: ms.HeapAlloc,
		HeapInuseBytes: ms.HeapInuse,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		NextGCBytes:    ms.NextGC,
		GCPause:        pause,
	}
}

// WritePrometheus emits the runtime block as xclean_go_* series.
func (r *RuntimeTracker) WritePrometheus(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mu.Lock()
	r.fold(&ms)
	r.mu.Unlock()
	WriteGauge(w, "xclean_go_goroutines", "Current goroutine count.",
		float64(runtime.NumGoroutine()))
	WriteGauge(w, "xclean_go_gomaxprocs", "GOMAXPROCS at scrape time.",
		float64(runtime.GOMAXPROCS(0)))
	WriteGauge(w, "xclean_go_heap_alloc_bytes", "Live heap bytes (MemStats.HeapAlloc).",
		float64(ms.HeapAlloc))
	WriteGauge(w, "xclean_go_heap_inuse_bytes", "Heap spans in use (MemStats.HeapInuse).",
		float64(ms.HeapInuse))
	WriteGauge(w, "xclean_go_heap_sys_bytes", "Heap memory obtained from the OS (MemStats.HeapSys).",
		float64(ms.HeapSys))
	WriteGauge(w, "xclean_go_next_gc_bytes", "Heap size goal of the next GC cycle.",
		float64(ms.NextGC))
	WriteCounter(w, "xclean_go_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
	r.mu.Lock()
	WriteHistogram(w, "xclean_go_gc_pause_seconds", "GC stop-the-world pause durations.",
		r.gcPause)
	r.mu.Unlock()
}
