package load

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"xclean"
	"xclean/internal/server"
)

func loadTarget(t *testing.T) (*httptest.Server, *int64) {
	t.Helper()
	doc := `<dblp>
	  <article><author>rose</author><title>fpga architecture synthesis</title></article>
	  <article><author>smith</author><title>database indexing methods</title></article>
	</dblp>`
	eng, err := xclean.Open(strings.NewReader(doc), xclean.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var served int64
	inner := server.New(eng, server.Config{CacheSize: 16}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&served, 1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

func TestRunBasic(t *testing.T) {
	ts, served := loadTarget(t)
	res, err := Run(Config{
		BaseURL:  ts.URL,
		Queries:  []string{"rose fpga", "databse indexing", "smith methods"},
		Requests: 60,
		Workers:  4,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 60 || res.Errors != 0 || res.Non200 != 0 {
		t.Fatalf("%+v", res)
	}
	if atomic.LoadInt64(served) != 60 {
		t.Errorf("server saw %d requests", *served)
	}
	if res.Latency.Count != 60 || res.Throughput <= 0 {
		t.Errorf("latency/throughput: %+v", res)
	}
	if !strings.Contains(res.String(), "60 requests") {
		t.Errorf("String()=%q", res.String())
	}
}

func TestRunZipfSkew(t *testing.T) {
	// With heavy skew, the most popular query must dominate the draw.
	p := newPicker(42, 100, 1.5)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[p.pick()]++
	}
	if counts[0] < counts[50]*5 {
		t.Errorf("zipf head %d not dominant over tail %d", counts[0], counts[50])
	}
	// Uniform mode spreads out.
	u := newPicker(42, 100, 0)
	counts = make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[u.pick()]++
	}
	if counts[0] > 300 {
		t.Errorf("uniform head too heavy: %d", counts[0])
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x"}); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := Run(Config{Queries: []string{"a"}}); err == nil {
		t.Error("no URL accepted")
	}
	// Unreachable server: transport errors counted, not fatal.
	res, err := Run(Config{
		BaseURL:  "http://127.0.0.1:1",
		Queries:  []string{"a"},
		Requests: 5,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 5 {
		t.Errorf("errors=%d want 5", res.Errors)
	}
}

func TestRunConcurrencyExactCount(t *testing.T) {
	ts, served := loadTarget(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := Run(Config{
			BaseURL:  ts.URL,
			Queries:  []string{"rose fpga"},
			Requests: 97, // not divisible by workers
			Workers:  8,
			ZipfS:    1.2,
			Seed:     3,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if res.Latency.Count != 97 {
			t.Errorf("latency samples=%d want 97", res.Latency.Count)
		}
	}()
	wg.Wait()
	if got := atomic.LoadInt64(served); got != 97 {
		t.Errorf("server saw %d requests want 97", got)
	}
}

func TestRunCorpusParam(t *testing.T) {
	var sawCorpus atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("corpus") == "dblp" {
			sawCorpus.Add(1)
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	res, err := Run(Config{
		BaseURL:  ts.URL,
		Queries:  []string{"q"},
		Requests: 10,
		Workers:  2,
		Corpus:   "dblp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Non200 != 0 || sawCorpus.Load() != 10 {
		t.Errorf("corpus param reached server on %d/10 requests (%+v)", sawCorpus.Load(), res)
	}
}
