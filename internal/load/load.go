// Package load implements a concurrent HTTP load generator for the
// suggestion service: Zipf-distributed queries (the shape of real
// "Did you mean" traffic, which is what makes the server's LRU cache
// effective), bounded worker concurrency, and a latency/throughput
// report. cmd/xload is the CLI wrapper.
package load

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"xclean/internal/eval"
)

// Config tunes a load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// Queries is the query pool drawn from on every request.
	Queries []string
	// Requests is the total number of requests (0 = 1000).
	Requests int
	// Workers is the concurrency (0 = 8).
	Workers int
	// ZipfS skews query popularity; values ≤ 1 mean uniform. Typical
	// web query logs fit s ≈ 1.1–1.3.
	ZipfS float64
	// Seed makes the traffic reproducible.
	Seed int64
	// Corpus, when non-empty, targets one catalog corpus (&corpus= on
	// every request) — required against a multi-corpus xserve.
	Corpus string
	// Client overrides the HTTP client (tests); nil = default with a
	// 10s timeout.
	Client *http.Client
}

func (c Config) requests() int {
	if c.Requests <= 0 {
		return 1000
	}
	return c.Requests
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 8
	}
	return c.Workers
}

func (c Config) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Result summarizes one load run.
type Result struct {
	Requests   int
	Errors     int           // transport failures
	Non200     int           // HTTP status ≠ 200
	Elapsed    time.Duration // wall clock of the whole run
	Throughput float64       // successful requests per second
	Latency    eval.LatencyStats
}

// String renders the result in one paragraph.
func (r Result) String() string {
	return fmt.Sprintf(
		"%d requests in %v (%.0f req/s), %d errors, %d non-200\nlatency: %s",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.Errors, r.Non200, r.Latency)
}

// picker draws query indices, optionally Zipf-skewed. Each worker owns
// one (rand sources are not concurrency-safe).
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newPicker(seed int64, n int, s float64) *picker {
	p := &picker{rng: rand.New(rand.NewSource(seed)), n: n}
	if s > 1 && n > 1 {
		p.zipf = rand.NewZipf(p.rng, s, 1, uint64(n-1))
	}
	return p
}

func (p *picker) pick() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// Run fires the configured traffic and reports aggregate results.
func Run(cfg Config) (Result, error) {
	if len(cfg.Queries) == 0 {
		return Result{}, fmt.Errorf("load: no queries")
	}
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("load: no base URL")
	}
	total := cfg.requests()
	workers := cfg.workers()
	client := cfg.client()
	corpusParam := ""
	if cfg.Corpus != "" {
		corpusParam = "&corpus=" + url.QueryEscape(cfg.Corpus)
	}

	var (
		rec    eval.LatencyRecorder
		errs   int64
		non200 int64
		next   int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := newPicker(cfg.Seed+int64(w)*7919, len(cfg.Queries), cfg.ZipfS)
			for {
				i := atomic.AddInt64(&next, 1)
				if i > int64(total) {
					return
				}
				q := cfg.Queries[p.pick()]
				t0 := time.Now()
				resp, err := client.Get(cfg.BaseURL + "/suggest?q=" + url.QueryEscape(q) + corpusParam)
				if err != nil {
					atomic.AddInt64(&errs, 1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rec.Record(time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					atomic.AddInt64(&non200, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	res := Result{
		Requests: total,
		Errors:   int(errs),
		Non200:   int(non200),
		Elapsed:  time.Since(start),
		Latency:  rec.Stats(),
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(total-res.Errors) / secs
	}
	return res, nil
}
