// Package lm implements the unigram language model with Dirichlet
// smoothing used as the query generation model of the XClean framework
// (Eq. (9) of the paper):
//
//	p(w|D) = (count(w,D) + μ·p(w|B)) / (|D| + μ)
//
// where B is the background model over the whole collection and μ is
// the smoothing parameter. The model is evaluated over "virtual
// documents": the concatenated text of an entity subtree.
package lm

import (
	"math"
)

// DefaultMu is the Dirichlet smoothing parameter used when Model.Mu is
// zero. μ≈2000 is the standard recommendation from the language
// modeling literature the paper cites.
const DefaultMu = 2000

// Background supplies the collection model p(w|B). The canonical
// implementation is tokenizer.Vocabulary; the segmented engine
// substitutes a tombstone-adjusted view so a stack of index segments
// smooths against the same live collection statistics a monolithic
// index would.
type Background interface {
	Prob(w string) float64
}

// Model scores tokens against virtual documents with Dirichlet
// smoothing over a background vocabulary.
type Model struct {
	// Background supplies p(w|B).
	Background Background
	// Mu is the Dirichlet smoothing parameter; 0 means DefaultMu.
	Mu float64
}

// New returns a model over the given background with the given μ
// (0 = DefaultMu).
func New(bg Background, mu float64) *Model {
	return &Model{Background: bg, Mu: mu}
}

func (m *Model) mu() float64 {
	if m.Mu <= 0 {
		return DefaultMu
	}
	return m.Mu
}

// Prob is p(w|D) for a document with the given token count of w and
// total length.
func (m *Model) Prob(w string, count int32, docLen int32) float64 {
	mu := m.mu()
	return (float64(count) + mu*m.Background.Prob(w)) / (float64(docLen) + mu)
}

// LogProb is log p(w|D).
func (m *Model) LogProb(w string, count, docLen int32) float64 {
	return math.Log(m.Prob(w, count, docLen))
}

// QueryProb is p(Q|D) = Π_w p(w|D) for a bag of words with counts
// against one document (Eq. (9)). counts[i] is the count of words[i]
// in the document.
func (m *Model) QueryProb(words []string, counts []int32, docLen int32) float64 {
	p := 1.0
	for i, w := range words {
		p *= m.Prob(w, counts[i], docLen)
	}
	return p
}

// BackgroundOnlyProb is Π_w p(w|D) for a document of the given length
// containing none of the words — the contribution of an unmatched
// entity in the exact-scoring mode.
func (m *Model) BackgroundOnlyProb(words []string, docLen int32) float64 {
	p := 1.0
	for _, w := range words {
		p *= m.Prob(w, 0, docLen)
	}
	return p
}
