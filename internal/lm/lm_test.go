package lm

import (
	"math"
	"testing"

	"xclean/internal/tokenizer"
)

func bg() *tokenizer.Vocabulary {
	v := tokenizer.NewVocabulary()
	v.Add("tree", 50)
	v.Add("icde", 10)
	v.Add("rare", 1)
	return v
}

func TestProbSmoothing(t *testing.T) {
	m := New(bg(), 100)

	// A token absent from the document still has positive probability.
	if p := m.Prob("icde", 0, 20); p <= 0 {
		t.Errorf("smoothed prob should be positive, got %g", p)
	}
	// More occurrences => higher probability.
	p1 := m.Prob("tree", 1, 20)
	p2 := m.Prob("tree", 5, 20)
	if p2 <= p1 {
		t.Errorf("prob should grow with count: %g vs %g", p1, p2)
	}
	// Longer document with same count => lower probability.
	pShort := m.Prob("tree", 2, 10)
	pLong := m.Prob("tree", 2, 1000)
	if pLong >= pShort {
		t.Errorf("prob should shrink with doc length: %g vs %g", pShort, pLong)
	}
	// Exact Dirichlet formula.
	want := (2.0 + 100*bg().Prob("tree")) / (10.0 + 100)
	if got := m.Prob("tree", 2, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob=%g want %g", got, want)
	}
}

func TestDefaultMu(t *testing.T) {
	m := New(bg(), 0)
	want := (1.0 + DefaultMu*bg().Prob("tree")) / (5.0 + DefaultMu)
	if got := m.Prob("tree", 1, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("default mu not applied: %g want %g", got, want)
	}
}

func TestLogProb(t *testing.T) {
	m := New(bg(), 100)
	p := m.Prob("tree", 3, 30)
	if got := m.LogProb("tree", 3, 30); math.Abs(got-math.Log(p)) > 1e-12 {
		t.Errorf("LogProb mismatch")
	}
}

func TestQueryProb(t *testing.T) {
	m := New(bg(), 100)
	words := []string{"tree", "icde"}
	counts := []int32{2, 1}
	want := m.Prob("tree", 2, 30) * m.Prob("icde", 1, 30)
	if got := m.QueryProb(words, counts, 30); math.Abs(got-want) > 1e-15 {
		t.Errorf("QueryProb=%g want %g", got, want)
	}
	if got := m.QueryProb(nil, nil, 30); got != 1 {
		t.Errorf("empty query prob=%g want 1", got)
	}
}

func TestBackgroundOnlyProb(t *testing.T) {
	m := New(bg(), 100)
	words := []string{"tree", "icde"}
	want := m.Prob("tree", 0, 30) * m.Prob("icde", 0, 30)
	if got := m.BackgroundOnlyProb(words, 30); math.Abs(got-want) > 1e-15 {
		t.Errorf("BackgroundOnlyProb=%g want %g", got, want)
	}
	// Matched prob always dominates background-only prob.
	if m.QueryProb(words, []int32{1, 1}, 30) <= m.BackgroundOnlyProb(words, 30) {
		t.Error("matched prob should exceed background-only prob")
	}
}

// Probabilities are bounded in (0, 1] for sane inputs.
func TestProbBounds(t *testing.T) {
	m := New(bg(), 50)
	for _, count := range []int32{0, 1, 10, 100} {
		for _, dl := range []int32{int32(count), 100, 10000} {
			if dl < count {
				continue
			}
			p := m.Prob("tree", count, dl)
			if p <= 0 || p > 1 {
				t.Errorf("Prob(count=%d,len=%d)=%g out of bounds", count, dl, p)
			}
		}
	}
}
