package lm

import (
	"math"
	"testing"

	"xclean/internal/tokenizer"
)

// mapBigrams is a test BigramSource.
type mapBigrams map[string]int64

func (m mapBigrams) BigramCount(w1, w2 string) int64 { return m[w1+" "+w2] }

func testVocab(counts map[string]int64) *tokenizer.Vocabulary {
	v := tokenizer.NewVocabulary()
	for w, c := range counts {
		v.Add(w, c)
	}
	return v
}

func TestCondProb(t *testing.T) {
	vocab := testVocab(map[string]int64{
		"health": 10, "insurance": 8, "instance": 2,
	})
	bi := mapBigrams{"health insurance": 6}
	m := NewBigram(bi, vocab, 0.5)

	// P(insurance|health) = 0.5·6/10 + 0.5·P(insurance|B)
	want := 0.5*0.6 + 0.5*vocab.Prob("insurance")
	if got := m.CondProb("insurance", "health"); math.Abs(got-want) > 1e-12 {
		t.Errorf("CondProb(insurance|health)=%g want %g", got, want)
	}
	// Unattested pair: only the background term survives.
	want = 0.5 * vocab.Prob("instance")
	if got := m.CondProb("instance", "health"); math.Abs(got-want) > 1e-12 {
		t.Errorf("CondProb(instance|health)=%g want %g", got, want)
	}
}

func TestCondProbUnknownHistory(t *testing.T) {
	vocab := testVocab(map[string]int64{"a": 5})
	m := NewBigram(mapBigrams{}, vocab, 0.7)
	// Unknown w1: ML term is 0 (no division by zero), background only.
	want := 0.3 * 1.0 // P(a|B)=5/5=1
	if got := m.CondProb("a", "neverseen"); math.Abs(got-want) > 1e-12 {
		t.Errorf("CondProb=%g want %g", got, want)
	}
}

func TestSequenceProb(t *testing.T) {
	vocab := testVocab(map[string]int64{"a": 4, "b": 4, "c": 2})
	bi := mapBigrams{"a b": 4, "b c": 2}
	m := NewBigram(bi, vocab, 1) // λ=1: pure ML (valid upper bound of range)

	if got := m.SequenceProb([]string{"a"}); got != 1 {
		t.Errorf("single word: %g want 1", got)
	}
	if got := m.SequenceProb(nil); got != 1 {
		t.Errorf("empty: %g want 1", got)
	}
	// P(b|a)·P(c|b) = (4/4)·(2/4) = 0.5
	if got := m.SequenceProb([]string{"a", "b", "c"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sequence: %g want 0.5", got)
	}
}

func TestSequenceOrderSensitivity(t *testing.T) {
	vocab := testVocab(map[string]int64{"health": 10, "insurance": 10})
	bi := mapBigrams{"health insurance": 9}
	m := NewBigram(bi, vocab, 0.9)
	fwd := m.SequenceProb([]string{"health", "insurance"})
	rev := m.SequenceProb([]string{"insurance", "health"})
	if fwd <= rev {
		t.Errorf("attested order %g should outscore reverse %g", fwd, rev)
	}
}

func TestLambdaDefaults(t *testing.T) {
	m := &BigramModel{}
	for _, bad := range []float64{0, -1, 1.5} {
		m.Lambda = bad
		if got := m.lambda(); got != DefaultLambda {
			t.Errorf("Lambda=%g: lambda()=%g want default %g", bad, got, DefaultLambda)
		}
	}
	m.Lambda = 1
	if m.lambda() != 1 {
		t.Error("λ=1 should be accepted")
	}
}
