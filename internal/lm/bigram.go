package lm

// The bigram extension. The paper's generation model is a unigram
// model over entity virtual documents (Eq. (9)), which treats a query
// as a bag of words: "health insurance" and "insurance health" score
// identically, and a candidate combining individually-frequent words
// is indistinguishable from an attested phrase. The framework text
// ("based on the state-of-the-art language model") invites stronger
// models; this file adds the standard next step, an interpolated
// bigram (Jelinek–Mercer smoothing against the unigram background):
//
//	P(w_i|w_{i-1}) = λ·count(w_{i-1} w_i)/count(w_{i-1}) + (1−λ)·P(w_i|B)
//
// used by the engine as a multiplicative phrase-coherence factor over
// a candidate's keyword sequence. It is an extension beyond the paper,
// off by default, and ablated by BenchmarkAblationBigram.

// DefaultLambda is the bigram interpolation weight when
// BigramModel.Lambda is zero.
const DefaultLambda = 0.7

// BigramSource supplies corpus adjacency counts; invindex.Index
// implements it.
type BigramSource interface {
	// BigramCount is the number of times w2 directly follows w1.
	BigramCount(w1, w2 string) int64
}

// UnigramSource supplies the background unigram distribution;
// tokenizer.Vocabulary implements it.
type UnigramSource interface {
	// Count is the corpus frequency of w.
	Count(w string) int64
	// Prob is P(w|B).
	Prob(w string) float64
}

// BigramModel scores the coherence of a keyword sequence.
type BigramModel struct {
	Bigrams  BigramSource
	Unigrams UnigramSource
	// Lambda is the interpolation weight of the maximum-likelihood
	// bigram term (0 = DefaultLambda).
	Lambda float64
}

// NewBigram builds a model over the given sources with the given λ
// (0 = DefaultLambda).
func NewBigram(bi BigramSource, uni UnigramSource, lambda float64) *BigramModel {
	return &BigramModel{Bigrams: bi, Unigrams: uni, Lambda: lambda}
}

func (m *BigramModel) lambda() float64 {
	if m.Lambda <= 0 || m.Lambda > 1 {
		return DefaultLambda
	}
	return m.Lambda
}

// CondProb is the smoothed P(w2|w1).
func (m *BigramModel) CondProb(w2, w1 string) float64 {
	lambda := m.lambda()
	var ml float64
	if c1 := m.Unigrams.Count(w1); c1 > 0 {
		ml = float64(m.Bigrams.BigramCount(w1, w2)) / float64(c1)
	}
	return lambda*ml + (1-lambda)*m.Unigrams.Prob(w2)
}

// SequenceProb is Π_{i≥2} P(w_i|w_{i-1}); 1 for sequences shorter than
// two words (no adjacency evidence either way).
func (m *BigramModel) SequenceProb(words []string) float64 {
	p := 1.0
	for i := 1; i < len(words); i++ {
		p *= m.CondProb(words[i], words[i-1])
	}
	return p
}
