package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xclean/internal/catalog"
	"xclean/internal/cluster"
	"xclean/internal/obs"
	"xclean/internal/qlog"
)

// doGet issues one GET with optional headers and returns the response
// plus its body.
func doGet(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

// checkSpanTree walks a stitched tree asserting every child's
// parentSpanId equals its parent's spanId and every span ID is unique,
// returning all spans by name.
func checkSpanTree(t *testing.T, root *obs.SpanNode) map[string][]*obs.SpanNode {
	t.Helper()
	byName := map[string][]*obs.SpanNode{}
	seen := map[string]bool{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		if n.SpanID == "" {
			t.Errorf("span %q has no spanId", n.Name)
		}
		if seen[n.SpanID] {
			t.Errorf("duplicate span id %s (%s)", n.SpanID, n.Name)
		}
		seen[n.SpanID] = true
		byName[n.Name] = append(byName[n.Name], n)
		for _, c := range n.Children {
			if c.ParentSpanID != n.SpanID {
				t.Errorf("span %s (%s) has parent %q, want %q (%s)",
					c.SpanID, c.Name, c.ParentSpanID, n.SpanID, n.Name)
			}
			walk(c)
		}
	}
	walk(root)
	return byName
}

// A client-supplied traceparent is adopted, forwarded to every shard
// attempt (the hedged retry included), echoed in the response, and the
// stitched tree's parent/child IDs are consistent end to end: the
// coordinator root hangs under the client's span, each forwarded
// header's span ID is a shard.attempt span, and the winning attempts
// parent the shards' server spans.
func TestTraceparentForwardedAndStitched(t *testing.T) {
	var mu sync.Mutex
	var forwarded []string
	record := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			forwarded = append(forwarded, r.Header.Get("Traceparent"))
			mu.Unlock()
			h.ServeHTTP(w, r)
		})
	}
	shard0 := httptest.NewServer(record(New(testEngine(t), Config{}).Handler()))
	t.Cleanup(shard0.Close)
	// shard 1 fails its first attempt so the fan-out hedges: the retry
	// must carry its own traceparent too.
	var failOnce atomic.Bool
	failOnce.Store(true)
	inner := New(testEngine(t), Config{}).Handler()
	shard1 := httptest.NewServer(record(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failOnce.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})))
	t.Cleanup(shard1.Close)

	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(shard0.URL, shard1.URL),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := obs.NewTraceStore(obs.TraceStoreConfig{Size: 16, KeepRate: 1, Threshold: time.Hour})
	ts := httptest.NewServer(New(nil, Config{Cluster: coord, Trace: store}).Handler())
	t.Cleanup(ts.Close)

	tid, clientSpan := obs.NewTraceID(), obs.NewSpanID()
	resp, body := doGet(t, ts.URL+"/suggest?q=rose+fpga", map[string]string{
		"Traceparent": obs.Traceparent(tid, clientSpan, true),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// Echo: same trace ID, the server's own span ID, still sampled.
	et, es, sampled, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q invalid", resp.Header.Get("Traceparent"))
	}
	if et != tid || !sampled {
		t.Errorf("echo = (%s, sampled=%v), want trace %s sampled", et, sampled, tid)
	}
	if es == clientSpan {
		t.Error("server echoed the client's span id instead of its own")
	}

	// Per-attempt hedge outcomes surface in the envelope.
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	var flaky *cluster.ShardStatus
	for i := range sr.Shards {
		if len(sr.Shards[i].Attempts) == 2 {
			flaky = &sr.Shards[i]
		}
	}
	if flaky == nil {
		t.Fatalf("no shard reported 2 attempts: %s", body)
	}
	if a := flaky.Attempts; a[0].Hedge || a[0].State != "error" || !a[1].Hedge || a[1].State != "ok" {
		t.Errorf("hedge outcomes = %+v, want attempt0 error, attempt1 hedged ok", a)
	}

	// Every attempt (3 = shard0 + shard1's failure + its hedge) carried
	// a traceparent on the same trace.
	mu.Lock()
	got := append([]string(nil), forwarded...)
	mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("%d forwarded traceparents, want 3: %v", len(got), got)
	}
	attemptSpans := map[string]bool{}
	for _, h := range got {
		ft, fs, fsampled, fok := obs.ParseTraceparent(h)
		if !fok || ft != tid || !fsampled {
			t.Fatalf("forwarded traceparent %q not on trace %s", h, tid)
		}
		attemptSpans[fs.String()] = true
	}

	// The stitched tree: root under the client's span, one
	// shard.attempt per forwarded header, server spans under the
	// winners, stage spans below those.
	tr := store.Get(tid.String())
	if tr == nil {
		t.Fatal("trace not retained")
	}
	if tr.Root.ParentSpanID != clientSpan.String() {
		t.Errorf("root parent %q, want client span %s", tr.Root.ParentSpanID, clientSpan)
	}
	if tr.Root.SpanID != es.String() {
		t.Errorf("root span %s, echoed span %s", tr.Root.SpanID, es)
	}
	byName := checkSpanTree(t, tr.Root)
	if n := len(byName["shard.attempt"]); n != 3 {
		t.Fatalf("%d shard.attempt spans, want 3", n)
	}
	for _, a := range byName["shard.attempt"] {
		if !attemptSpans[a.SpanID] {
			t.Errorf("attempt span %s was never forwarded to a shard", a.SpanID)
		}
	}
	if n := len(byName["shard.suggest"]); n != 2 {
		t.Fatalf("%d shard.suggest spans, want 2 (one per winning attempt)", n)
	}
	if len(byName["scan"]) == 0 {
		t.Error("no shard stage spans in the stitched tree")
	}
}

// Without sampling there is no trace: no echoed header, nothing
// offered to the store — and an explicitly unsampled client
// traceparent is honored the same way.
func TestTraceNotSampled(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{Size: 16, KeepRate: 1})
	ts := httptest.NewServer(New(testEngine(t), Config{Trace: store, TraceSample: 0}).Handler())
	t.Cleanup(ts.Close)

	resp, body := doGet(t, ts.URL+"/suggest?q=rose+fpga", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("Traceparent"); h != "" {
		t.Errorf("unsampled request echoed traceparent %q", h)
	}
	unsampled := obs.Traceparent(obs.NewTraceID(), obs.NewSpanID(), false)
	resp, _ = doGet(t, ts.URL+"/suggest?q=rose+fpga", map[string]string{"Traceparent": unsampled})
	if h := resp.Header.Get("Traceparent"); h != "" {
		t.Errorf("sampled=00 request echoed traceparent %q", h)
	}
	if st := store.Stats(); st.Offered != 0 {
		t.Errorf("unsampled requests offered %d traces", st.Offered)
	}
}

// /tracez: list + single-tree fetch on a tracing server, 404 for
// unknown IDs, 501 when tracing is disabled.
func TestTracezEndpoints(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{Size: 16, KeepRate: 1, Threshold: time.Hour})
	ts := httptest.NewServer(New(testEngine(t), Config{Trace: store, TraceSample: 1}).Handler())
	t.Cleanup(ts.Close)

	resp, _ := doGet(t, ts.URL+"/suggest?q=rose+fpga", nil)
	tid, _, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("no traceparent echoed at sample=1: %q", resp.Header.Get("Traceparent"))
	}

	resp, body := doGet(t, ts.URL+"/tracez", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez status %d: %s", resp.StatusCode, body)
	}
	var list TracezResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Stats.Retained != 1 || len(list.Traces) != 1 || list.Traces[0].TraceID != tid.String() {
		t.Fatalf("list = %+v", list)
	}

	resp, body = doGet(t, ts.URL+"/tracez?id="+tid.String(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?id status %d: %s", resp.StatusCode, body)
	}
	var tr obs.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Root == nil || tr.Root.Name != "suggest" {
		t.Fatalf("tree = %s", body)
	}
	checkSpanTree(t, tr.Root)

	if resp, _ = doGet(t, ts.URL+"/tracez?id="+obs.NewTraceID().String(), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d, want 404", resp.StatusCode)
	}

	off := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(off.Close)
	if resp, _ = doGet(t, off.URL+"/tracez", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("tracing-disabled /tracez status %d, want 501", resp.StatusCode)
	}
}

// Concurrent traced requests (ring-buffer writes) racing /tracez list
// and tree reads over HTTP — the contract -race enforces.
func TestTracezConcurrent(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{Size: 8, KeepRate: 1, Threshold: time.Millisecond})
	ts := httptest.NewServer(New(testEngine(t), Config{Trace: store, TraceSample: 1}).Handler())
	t.Cleanup(ts.Close)

	queries := []string{"rose+fpga", "databse+indexing", "xml+keyword", "smith+metods"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/suggest?q=" + queries[(g+i)%len(queries)])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/tracez")
				if err != nil {
					t.Error(err)
					return
				}
				var list TracezResponse
				err = json.NewDecoder(resp.Body).Decode(&list)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, s := range list.Traces {
					r2, err := http.Get(ts.URL + "/tracez?id=" + s.TraceID)
					if err != nil {
						t.Error(err)
						return
					}
					r2.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
}

// /readyz standalone: a serving engine is ready; a saturated admission
// gate (next scan would shed) is not.
func TestReadyzStandalone(t *testing.T) {
	srv := New(testEngine(t), Config{MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := doGet(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Ready {
		t.Fatalf("idle server not ready: %s", body)
	}

	// Hold the only in-flight slot (no queue configured): the next scan
	// would shed, so readiness must flip.
	release, admit := srv.adm.acquire(context.Background())
	if admit != admitOK {
		t.Fatal("could not acquire the admission slot")
	}
	resp, body = doGet(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz status %d, want 503: %s", resp.StatusCode, body)
	}
	release()
	if resp, _ = doGet(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("released /readyz status %d, want 200", resp.StatusCode)
	}
}

// /readyz catalog: ready only when the default corpus serves (or can
// warm-start); an empty catalog is unready.
func TestReadyzCatalog(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "default.xml")
	if err := os.WriteFile(doc, []byte("<dblp><article><title>fpga</title></article></dblp>"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(catalog.Config{})
	ts := httptest.NewServer(New(nil, Config{Catalog: cat}).Handler())
	t.Cleanup(ts.Close)

	resp, body := doGet(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty catalog /readyz status %d, want 503: %s", resp.StatusCode, body)
	}
	if err := cat.Add("default", doc); err != nil {
		t.Fatal(err)
	}
	resp, body = doGet(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serving catalog /readyz status %d: %s", resp.StatusCode, body)
	}
}

// /readyz coordinator: ready on shard quorum, unready (503) when the
// majority is down.
func TestReadyzCoordinator(t *testing.T) {
	shard := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(shard.Close)
	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(shard.URL),
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(nil, Config{Cluster: coord}).Handler())
	t.Cleanup(ts.Close)

	resp, body := doGet(t, ts.URL+"/readyz", nil)
	var rr ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rr.Ready || rr.ShardsUp != 1 || rr.ShardsTotal != 1 {
		t.Fatalf("healthy coordinator /readyz = %d %s", resp.StatusCode, body)
	}

	shard.Close()
	resp, body = doGet(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quorum-lost /readyz status %d, want 503: %s", resp.StatusCode, body)
	}
	var down ReadyResponse
	if err := json.Unmarshal(body, &down); err != nil {
		t.Fatal(err)
	}
	if down.Ready || down.ShardsUp != 0 || down.Reason == "" {
		t.Fatalf("quorum-lost body = %s", body)
	}
}

// A traced slow request embeds its stitched tree in the slow-query
// record, and sampled requests put exemplars on the Prometheus
// histogram buckets.
func TestTraceSlowLogAndExemplars(t *testing.T) {
	var sb bytes.Buffer
	slow := qlog.NewSlowLog(&sb, time.Nanosecond) // everything is slow
	store := obs.NewTraceStore(obs.TraceStoreConfig{Size: 16, KeepRate: 1, Threshold: time.Hour})
	ts := httptest.NewServer(New(testEngine(t), Config{
		Trace: store, TraceSample: 1, SlowLog: slow,
	}).Handler())
	t.Cleanup(ts.Close)

	resp, _ := doGet(t, ts.URL+"/suggest?q=rose+fpga", nil)
	tid, _, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatal("no traceparent echoed")
	}
	line := sb.String()
	if !strings.Contains(line, `"trace":{"traceId":"`+tid.String()+`"`) {
		t.Errorf("slow record carries no stitched tree:\n%s", line)
	}

	_, body := doGet(t, ts.URL+"/metricz?format=prometheus", nil)
	if !strings.Contains(string(body), fmt.Sprintf(`# {trace_id=%q`, tid.String())) {
		t.Errorf("no exemplar for trace %s in exposition", tid)
	}
	if !strings.Contains(string(body), "xclean_go_goroutines") {
		t.Error("runtime block missing from exposition")
	}
	if !strings.Contains(string(body), "xclean_trace_retained_total") {
		t.Error("trace store counters missing from exposition")
	}
}
