package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"xclean"
	"xclean/internal/cluster"
	"xclean/internal/obs"
	"xclean/internal/qlog"
)

// Cluster-mode handlers: the shard side (/shard/suggest, served by any
// node whose engine supports partial scans) and the coordinator side
// (/suggest fan-out + merge, /healthz shard probing).

// partialSuggester is the optional engine capability behind
// /shard/suggest. It is a type assertion rather than an Engine method
// so existing Engine implementations (and test fakes) keep compiling.
// The context is the coordinator's forwarded deadline: the shard scan
// polls it and abandons work the coordinator will no longer merge.
type partialSuggester interface {
	SuggestPartialsContext(ctx context.Context, query string) (xclean.PartialSet, error)
}

// partialExplainedSuggester is the traced variant: the same partial
// scan plus its per-stage durations, so a sampled fan-out can return
// shard stage spans in the wire envelope. Engines without it still
// serve traced requests — their subtree just has no stage children.
type partialExplainedSuggester interface {
	SuggestPartialsExplainedContext(ctx context.Context, query string) (xclean.PartialSet, []obs.Span, error)
}

// handleShardSuggest serves GET /shard/suggest: the shard half of the
// scatter-gather protocol. It runs the scan half of Algorithm 1 and
// returns the γ-bounded partial accumulator table in the versioned
// wire envelope, leaving error-model weighting, normalization, and
// ranking to the coordinator.
func (s *Server) handleShardSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleShardSuggestBatch(w, r)
		return
	}
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET (single query) or POST (batch)")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	if len(q) > s.cfg.maxQueryLen() {
		s.writeError(w, http.StatusBadRequest, "query too long")
		return
	}
	eng, corpus, err := s.resolveEngine(r)
	if err != nil {
		s.writeError(w, catalogStatus(err), err.Error())
		return
	}
	ps, ok := eng.(partialSuggester)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "engine does not serve shard partials")
		return
	}
	rid := requestIDFrom(r.Context())
	// A sampled incoming traceparent (the coordinator's per-attempt
	// span) switches the scan to its explained variant so the response
	// envelope can carry this shard's span subtree; the coordinator
	// made the sampling decision, so no local sampler runs here.
	_, parentSpan, sampled, hasTrace := obs.ParseTraceparent(r.Header.Get("Traceparent"))
	pse, canExplain := eng.(partialExplainedSuggester)
	traced := sampled && hasTrace
	// The scan honors the coordinator's forwarded deadline (the HTTP
	// request context dies when the coordinator's budget expires or it
	// hangs up), capped by this shard's own RequestTimeout; shard scans
	// pass the same admission gate as standalone ones.
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, admit := s.adm.acquire(ctx)
	switch admit {
	case admitShed:
		s.writeShed(w)
		return
	case admitTimeout:
		s.writeOverdeadline(w, ctx.Err())
		return
	}
	start := time.Now()
	if s.cfg.InjectDelay > 0 {
		// Counted inside the scan's took so the slow shard is slow in
		// its own span and slow log, not just the coordinator's view.
		time.Sleep(s.cfg.InjectDelay)
	}
	var set xclean.PartialSet
	var stageSpans []obs.Span
	if traced && canExplain {
		set, stageSpans, err = pse.SuggestPartialsExplainedContext(ctx, q)
	} else {
		set, err = ps.SuggestPartialsContext(ctx, q)
	}
	release()
	if err != nil {
		if isCtxErr(err) {
			s.adm.cancels.Add(1)
			s.writeOverdeadline(w, err)
			return
		}
		s.writeError(w, http.StatusNotImplemented, err.Error())
		return
	}
	took := time.Since(start)
	// Shard scans enter the slow log too (without a trace), marked
	// Shard and carrying the coordinator's forwarded request ID, so a
	// slow coordinated query is attributable to the shard that lagged.
	if s.cfg.SlowLog.Record(qlog.SlowRecord{
		RequestID:   rid,
		Corpus:      corpus,
		Query:       q,
		Shard:       true,
		DurationNs:  took.Nanoseconds(),
		Suggestions: len(set.Candidates),
	}) {
		if s.cfg.Obs != nil {
			s.cfg.Obs.SlowQueries.Inc()
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("slow shard scan", "requestId", rid, "corpus", corpus,
				"query", q, "tookMillis", float64(took.Microseconds())/1000)
		}
	}
	resp := cluster.ShardResponse{
		Version:    cluster.WireVersion,
		Corpus:     corpus,
		Query:      q,
		RequestID:  rid,
		TookMillis: float64(took.Microseconds()) / 1000,
		PartialSet: set,
	}
	if traced {
		// The shard's server span adopts the coordinator's attempt span
		// as parent, so the returned subtree stitches into the
		// coordinator's tree with no ID rewriting.
		self := obs.NewSpanID()
		span := &obs.SpanNode{
			SpanID:        self.String(),
			ParentSpanID:  parentSpan.String(),
			Name:          "shard.suggest",
			Kind:          "server",
			StartUnixNano: start.UnixNano(),
			DurationNs:    took.Nanoseconds(),
		}
		for _, n := range obs.StageSpanNodes(self, stageSpans) {
			span.AddChild(n)
		}
		resp.TraceSpan = span
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleClusterSuggest serves /suggest in coordinator mode: fan out to
// every shard (propagating the request context and ID), merge the
// surviving partials, and answer — marked partial when any shard
// failed, with per-shard statuses either way.
func (s *Server) handleClusterSuggest(w http.ResponseWriter, r *http.Request, q string, k int) {
	if r.URL.Query().Get("spaces") == "1" {
		s.writeError(w, http.StatusNotImplemented,
			"space-error search is not available in coordinator mode")
		return
	}
	if s.cfg.QueryLog != nil {
		s.cfg.QueryLog.RecordQuery(q)
	}
	debug := r.URL.Query().Get("debug") == "1"
	rid := requestIDFrom(r.Context())
	tc, traceParent := s.startTrace(w, r)
	corpus := r.URL.Query().Get("corpus")
	start := time.Now()
	cacheKey := ""
	if s.cache != nil {
		// The mode byte keeps coordinator entries disjoint from any
		// local-engine entries while sharing the per-corpus prefix, so
		// invalidateCorpus reaches these too.
		cacheKey = suggestCacheKey(cacheModeCluster, corpus, q)
		// debug=1 bypasses the cache so the per-shard statuses reflect a
		// real fan-out.
		if !debug {
			if sugs, ok := s.cache.Get(cacheKey); ok {
				took := time.Since(start)
				s.latency.Record(took)
				s.observeHTTP(took, tc, rid)
				s.hitLatency.Record(took)
				s.finishTrace(tc, traceParent, "suggest", rid, q, s.cfg.Cluster.Corpus(),
					start, took, false, nil, map[string]string{"cache": "hit"})
				s.writeClusterResponse(w, q, s.cfg.Cluster.Corpus(), rid, sugs, nil, false, took, k)
				return
			}
		}
	}

	// A fan-out is real work for the whole cluster, so coordinator
	// misses pass the same admission gate as standalone scans. The
	// coordinator keeps its own per-request budget (cluster
	// Config.Timeout); RequestTimeout is not stacked on top.
	release, admit := s.adm.acquire(r.Context())
	switch admit {
	case admitShed:
		s.writeShed(w)
		return
	case admitTimeout:
		s.writeOverdeadline(w, r.Context().Err())
		return
	}
	res, err := s.cfg.Cluster.Suggest(r.Context(), q, corpus, rid, tc)
	release()
	if err != nil {
		if isCtxErr(err) {
			s.adm.cancels.Add(1)
			s.writeOverdeadline(w, err)
			return
		}
		s.writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	took := time.Since(start)
	s.latency.Record(took)
	s.observeHTTP(took, tc, rid)
	s.missLatency.Record(took)
	// The fan-out's attempt spans (each carrying the winning shard's
	// returned subtree) stitch under the coordinator's server span.
	tr := s.finishTrace(tc, traceParent, "suggest", rid, q, res.Corpus,
		start, took, res.Partial, res.Spans, nil)

	sugs := make([]xclean.Suggestion, len(res.Suggestions))
	for i, ms := range res.Suggestions {
		sugs[i] = xclean.Suggestion{
			Query:        ms.Query(),
			Words:        ms.Words,
			Score:        ms.Score,
			ResultType:   ms.ResultType,
			Entities:     ms.Entities,
			EditDistance: ms.EditDistance,
			Witness:      ms.Witness,
		}
	}
	// Only complete answers are cacheable: a degraded answer must not
	// outlive the outage that produced it. debug=1 runs bypass the
	// write too, mirroring the standalone handler.
	if s.cache != nil && !res.Partial && !debug {
		s.cache.Put(cacheKey, sugs)
	}
	rec := qlog.SlowRecord{
		RequestID:   rid,
		Corpus:      res.Corpus,
		Query:       q,
		DurationNs:  took.Nanoseconds(),
		Suggestions: len(sugs),
	}
	if tr != nil {
		rec.Trace = tr
	}
	if s.cfg.SlowLog.Record(rec) {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("slow coordinated query", "requestId", rid,
				"query", q, "tookMillis", float64(took.Microseconds())/1000)
		}
	}
	resCorpus := res.Corpus
	if resCorpus == "" {
		resCorpus = s.cfg.Cluster.Corpus()
	}
	s.writeClusterResponse(w, q, resCorpus, rid, sugs, res.Shards, res.Partial, took, k)
}

func (s *Server) writeClusterResponse(w http.ResponseWriter, q, corpus, rid string,
	sugs []xclean.Suggestion, shards []cluster.ShardStatus, partial bool, took time.Duration, k int) {
	if k > 0 && len(sugs) > k {
		sugs = sugs[:k]
	}
	resp := SuggestResponse{
		Query:       q,
		Corpus:      corpus,
		Suggestions: make([]SuggestionJSON, len(sugs)),
		TookMillis:  float64(took.Microseconds()) / 1000,
		RequestID:   rid,
		Partial:     partial,
		Shards:      shards,
	}
	for i, sg := range sugs {
		resp.Suggestions[i] = SuggestionJSON{
			Query:        sg.Query,
			Words:        sg.Words,
			Score:        sg.Score,
			ResultType:   sg.ResultType,
			Entities:     sg.Entities,
			EditDistance: sg.EditDistance,
			Witness:      sg.Witness,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleShardSuggestBatch serves POST /shard/suggest: the batched
// shard half of the scatter-gather protocol. The whole batch is one
// admission unit and one scan loop under the forwarded deadline; a
// mid-batch context death marks the remaining queries failed in their
// entries (the coordinator degrades just those queries) instead of
// failing the round-trip. Batched scans are untraced and skip the
// slow log (there is no single query to attribute the latency to).
func (s *Server) handleShardSuggestBatch(w http.ResponseWriter, r *http.Request) {
	var br cluster.BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&br); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if br.Version != cluster.WireVersion {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("wire version %d (this shard speaks %d)", br.Version, cluster.WireVersion))
		return
	}
	if len(br.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(br.Queries) > cluster.MaxBatchQueries {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the %d limit", len(br.Queries), cluster.MaxBatchQueries))
		return
	}
	for _, q := range br.Queries {
		if q == "" || len(q) > s.cfg.maxQueryLen() {
			s.writeError(w, http.StatusBadRequest, "batch query empty or too long")
			return
		}
	}
	eng, corpus, err := s.resolveEngineByName(br.Corpus)
	if err != nil {
		s.writeError(w, catalogStatus(err), err.Error())
		return
	}
	ps, ok := eng.(partialSuggester)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "engine does not serve shard partials")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, admit := s.adm.acquire(ctx)
	switch admit {
	case admitShed:
		s.writeShed(w)
		return
	case admitTimeout:
		s.writeOverdeadline(w, ctx.Err())
		return
	}
	start := time.Now()
	if s.cfg.InjectDelay > 0 {
		time.Sleep(s.cfg.InjectDelay)
	}
	results := make([]cluster.BatchEntry, len(br.Queries))
	for i, q := range br.Queries {
		results[i].Query = q
		set, err := ps.SuggestPartialsContext(ctx, q)
		if err != nil {
			results[i].Error = err.Error()
			if isCtxErr(err) {
				// The deadline died mid-batch: the remaining scans would
				// fail identically, so mark them without running them.
				s.adm.cancels.Add(1)
				for j := i + 1; j < len(br.Queries); j++ {
					results[j].Query = br.Queries[j]
					results[j].Error = err.Error()
				}
				break
			}
			continue
		}
		results[i].PartialSet = set
	}
	release()
	s.writeJSON(w, http.StatusOK, cluster.BatchResponse{
		Version:    cluster.WireVersion,
		Corpus:     corpus,
		TookMillis: float64(time.Since(start).Microseconds()) / 1000,
		Results:    results,
	})
}

// BatchSuggestBody is the body of POST /suggest in coordinator mode.
type BatchSuggestBody struct {
	Queries []string `json:"queries"`
	Corpus  string   `json:"corpus,omitempty"`
	// K caps the suggestions returned per query (0 = server default).
	K int `json:"k,omitempty"`
}

// BatchSuggestResponse is the response of POST /suggest: one
// SuggestResponse per query in request order (each carrying its own
// partial flag), plus the batched fan-out's per-shard statuses when a
// fan-out happened (absent when every query was a cache hit).
type BatchSuggestResponse struct {
	Corpus     string  `json:"corpus,omitempty"`
	RequestID  string  `json:"requestId,omitempty"`
	TookMillis float64 `json:"tookMillis"`
	// Partial is true when any query's answer is partial.
	Partial bool                  `json:"partial,omitempty"`
	Shards  []cluster.ShardStatus `json:"shards,omitempty"`
	Results []SuggestResponse     `json:"results"`
}

// handleClusterSuggestBatch serves POST /suggest in coordinator mode:
// resolve per-query cache hits, fan the misses out in one batched
// round-trip per shard, merge per query, and cache the complete
// answers. The whole batch passes admission once (it is one unit of
// cluster work).
func (s *Server) handleClusterSuggestBatch(w http.ResponseWriter, r *http.Request) {
	var body BatchSuggestBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(body.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch (want {\"queries\": [...]})")
		return
	}
	if len(body.Queries) > cluster.MaxBatchQueries {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the %d limit", len(body.Queries), cluster.MaxBatchQueries))
		return
	}
	for _, q := range body.Queries {
		if q == "" || len(q) > s.cfg.maxQueryLen() {
			s.writeError(w, http.StatusBadRequest, "batch query empty or too long")
			return
		}
	}
	rid := requestIDFrom(r.Context())
	start := time.Now()
	if s.cfg.QueryLog != nil {
		for _, q := range body.Queries {
			s.cfg.QueryLog.RecordQuery(q)
		}
	}

	results := make([]SuggestResponse, len(body.Queries))
	var misses []string
	missAt := make([]int, 0, len(body.Queries))
	for i, q := range body.Queries {
		results[i].Query = q
		if s.cache != nil {
			// Batch and GET answers share cacheModeCluster keys, so a
			// batch warms the cache for interactive traffic and vice
			// versa.
			if sugs, ok := s.cache.Get(suggestCacheKey(cacheModeCluster, body.Corpus, q)); ok {
				results[i].Suggestions = suggestionJSON(sugs, body.K)
				continue
			}
		}
		misses = append(misses, q)
		missAt = append(missAt, i)
	}

	var shards []cluster.ShardStatus
	partial := false
	if len(misses) > 0 {
		release, admit := s.adm.acquire(r.Context())
		switch admit {
		case admitShed:
			s.writeShed(w)
			return
		case admitTimeout:
			s.writeOverdeadline(w, r.Context().Err())
			return
		}
		ans, err := s.cfg.Cluster.SuggestBatch(r.Context(), misses, body.Corpus, rid)
		release()
		if err != nil {
			if isCtxErr(err) {
				s.adm.cancels.Add(1)
				s.writeOverdeadline(w, err)
				return
			}
			s.writeError(w, http.StatusBadGateway, err.Error())
			return
		}
		shards = ans.Shards
		partial = ans.Partial
		for mi, qa := range ans.Queries {
			i := missAt[mi]
			sugs := make([]xclean.Suggestion, len(qa.Suggestions))
			for j, ms := range qa.Suggestions {
				sugs[j] = xclean.Suggestion{
					Query:        ms.Query(),
					Words:        ms.Words,
					Score:        ms.Score,
					ResultType:   ms.ResultType,
					Entities:     ms.Entities,
					EditDistance: ms.EditDistance,
					Witness:      ms.Witness,
				}
			}
			results[i].Suggestions = suggestionJSON(sugs, body.K)
			results[i].Partial = qa.Partial
			// Only complete answers are cacheable, mirroring the GET path.
			if s.cache != nil && !qa.Partial {
				s.cache.Put(suggestCacheKey(cacheModeCluster, body.Corpus, qa.Query), sugs)
			}
		}
	}
	took := time.Since(start)
	s.latency.Record(took)
	corpus := s.cfg.Cluster.Corpus()
	s.writeJSON(w, http.StatusOK, BatchSuggestResponse{
		Corpus:     corpus,
		RequestID:  rid,
		TookMillis: float64(took.Microseconds()) / 1000,
		Partial:    partial,
		Shards:     shards,
		Results:    results,
	})
}

// suggestionJSON renders a suggestion list to wire form, capped at k
// (0 = uncapped).
func suggestionJSON(sugs []xclean.Suggestion, k int) []SuggestionJSON {
	if k > 0 && len(sugs) > k {
		sugs = sugs[:k]
	}
	out := make([]SuggestionJSON, len(sugs))
	for i, sg := range sugs {
		out[i] = SuggestionJSON{
			Query:        sg.Query,
			Words:        sg.Words,
			Score:        sg.Score,
			ResultType:   sg.ResultType,
			Entities:     sg.Entities,
			EditDistance: sg.EditDistance,
			Witness:      sg.Witness,
		}
	}
	return out
}

// ClusterHealth is the body of GET /healthz in coordinator mode.
type ClusterHealth struct {
	// Status is "ok" (every replica healthy), "degraded" (some
	// replicas down — answers may be partial where a whole shard is
	// uncovered), or "down" (no shard has a live replica — served with
	// HTTP 503 so load balancers drop the coordinator even though its
	// process is up).
	Status string `json:"status"`
	// Corpus is the corpus name negotiated from shard responses (or
	// the configured name before any traffic).
	Corpus string `json:"corpus,omitempty"`
	// ShardsCovered counts shards with at least one healthy replica;
	// answers are complete iff ShardsCovered == ShardsTotal.
	ShardsCovered int `json:"shardsCovered"`
	ShardsTotal   int `json:"shardsTotal"`
	// Shards holds per-replica probe outcomes in shard then replica
	// order.
	Shards []cluster.ShardHealth `json:"shards"`
}

// shardCoverage folds per-replica probes into (covered, total) shard
// counts: a shard is covered when at least one of its replicas is
// healthy.
func shardCoverage(probes []cluster.ShardHealth) (covered, total int) {
	healthyBy := map[string]bool{}
	order := []string{}
	for _, h := range probes {
		if _, seen := healthyBy[h.Shard]; !seen {
			order = append(order, h.Shard)
		}
		healthyBy[h.Shard] = healthyBy[h.Shard] || h.Healthy
	}
	for _, name := range order {
		if healthyBy[name] {
			covered++
		}
	}
	return covered, len(order)
}

func (s *Server) handleClusterHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	probes := s.cfg.Cluster.Health(ctx)
	up := 0
	for _, h := range probes {
		if h.Healthy {
			up++
		}
	}
	covered, total := shardCoverage(probes)
	status, code := "ok", http.StatusOK
	switch {
	case covered == 0:
		status, code = "down", http.StatusServiceUnavailable
	case up < len(probes):
		status = "degraded"
	}
	s.writeJSON(w, code, ClusterHealth{
		Status:        status,
		Corpus:        s.cfg.Cluster.Corpus(),
		ShardsCovered: covered,
		ShardsTotal:   total,
		Shards:        probes,
	})
}
