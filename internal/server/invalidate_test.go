package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// suggestionQueries parses a /suggest body and returns the suggested
// query strings (the echoed input is ignored).
func suggestionQueries(t *testing.T, body []byte) []string {
	t.Helper()
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad suggest body %s: %v", body, err)
	}
	out := make([]string, len(sr.Suggestions))
	for i, s := range sr.Suggestions {
		out[i] = s.Query
	}
	return out
}

func anyContains(ss []string, sub string) bool {
	for _, s := range ss {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// The stale-cache regression: before the catalog→cache wiring, a
// corpus reload swapped the engine but left the suggestion cache
// holding answers computed against the old index, so a hot query kept
// serving pre-reload suggestions forever.
func TestReloadInvalidatesSuggestionCache(t *testing.T) {
	ts, _, dir := catalogServer(t, Config{CacheSize: 32})

	// Warm the cache against corpus a's original content (catCorpusA:
	// rose / fpga), and against corpus b (which must survive a's reload).
	_, body := get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if !anyContains(suggestionQueries(t, body), "fpga") {
		t.Fatalf("probe query found nothing pre-reload: %s", body)
	}
	get(t, ts.URL+"/suggest?q=turing+machinery&corpus=b")

	// Replace a's source wholesale and hot-swap it in.
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(catCorpusB), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/corpora?name=a&action=reload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}

	// The same hot query must now be answered by the new engine: the
	// old index's suggestions would still contain "fpga".
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if anyContains(suggestionQueries(t, body), "fpga") {
		t.Errorf("reloaded corpus served pre-reload suggestions from the cache: %s", body)
	}
	// And the new content is reachable through the cache path too.
	_, body = get(t, ts.URL+"/suggest?q=turing+machinery&corpus=a")
	if !anyContains(suggestionQueries(t, body), "turing") {
		t.Errorf("reloaded corpus does not serve its new content: %s", body)
	}

	// Invalidation is per corpus: b's entry survived a's reload and
	// still serves as a hit.
	get(t, ts.URL+"/suggest?q=turing+machinery&corpus=b")
	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Errorf("corpus b's cache entry did not survive corpus a's reload (hits=%d, want 1)", m.CacheHits)
	}
}

// Removing a corpus drops its cache entries, so re-adding the same
// name with different content starts clean.
func TestRemoveInvalidatesSuggestionCache(t *testing.T) {
	ts, _, dir := catalogServer(t, Config{CacheSize: 32})

	_, body := get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if !anyContains(suggestionQueries(t, body), "fpga") {
		t.Fatalf("probe query found nothing: %s", body)
	}
	resp, _ := del(t, ts.URL+"/corpora?name=a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	// Re-register "a" with corpus B's content: the old cached ranking
	// must not resurface.
	path := filepath.Join(dir, "a2.xml")
	if err := os.WriteFile(path, []byte(catCorpusB), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/corpora?name=a&doc="+path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-add status %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if anyContains(suggestionQueries(t, body), "fpga") {
		t.Errorf("re-added corpus served the removed corpus's cached suggestions: %s", body)
	}
}

// debug=1 must bypass the cache on both sides: no read (the trace has
// to reflect a real engine execution) and no write (a debug run must
// not overwrite entries regular traffic serves).
func TestDebugBypassesCacheReadAndWrite(t *testing.T) {
	ts := testServerCached(t)

	// A debug run against a cold cache must not populate it.
	get(t, ts.URL+"/suggest?q=rose+fpga&debug=1")
	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheEntries != 0 {
		t.Fatalf("debug=1 wrote the cache: %d entries", m.CacheEntries)
	}
	if m.CacheMisses != 0 {
		t.Fatalf("debug=1 read the cache: %d misses recorded", m.CacheMisses)
	}

	// Warm the cache with regular traffic, then run debug again: the
	// hit counter must not move (the read was bypassed, the engine ran).
	get(t, ts.URL+"/suggest?q=rose+fpga")
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&debug=1")
	if !strings.Contains(string(body), `"explain"`) {
		t.Errorf("debug response carries no explain trace: %s", body)
	}
	_, body = get(t, ts.URL+"/metricz")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 0 {
		t.Errorf("debug=1 served from the cache: hits=%d", m.CacheHits)
	}
	if m.CacheEntries != 1 || m.CacheMisses != 1 {
		t.Errorf("regular traffic disturbed: entries=%d misses=%d", m.CacheEntries, m.CacheMisses)
	}
}
