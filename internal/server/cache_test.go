package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

func testServerCached(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testEngine(t), Config{CacheSize: 8}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestCachedSuggestIdenticalResponses(t *testing.T) {
	ts := testServerCached(t)
	url := ts.URL + "/suggest?q=rose+fpga+architecure"
	var first, second SuggestResponse
	_, body := get(t, url)
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, url)
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Suggestions, second.Suggestions) {
		t.Errorf("cached response diverges:\n%v\n%v", first.Suggestions, second.Suggestions)
	}
}

func TestCachedSuggestRespectsK(t *testing.T) {
	ts := testServerCached(t)
	// Warm the cache with the full list, then request k=1: truncation
	// happens after the cache, so k must still apply.
	_, _ = get(t, ts.URL+"/suggest?q=fpga+desing")
	_, body := get(t, ts.URL+"/suggest?q=fpga+desing&k=1")
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Suggestions) > 1 {
		t.Errorf("k=1 ignored on cache hit: %d suggestions", len(sr.Suggestions))
	}
}

func TestCacheSeparatesSpacesMode(t *testing.T) {
	ts := testServerCached(t)
	var plain, spaced SuggestResponse
	_, body := get(t, ts.URL+"/suggest?q=power+point")
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/suggest?q=power+point&spaces=1")
	if err := json.Unmarshal(body, &spaced); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range spaced.Suggestions {
		if s.Query == "powerpoint" {
			found = true
		}
	}
	if !found {
		t.Error("spaces=1 served the plain cached result")
	}
}

func TestMetricz(t *testing.T) {
	ts := testServerCached(t)
	for i := 0; i < 3; i++ {
		resp, _ := http.Get(ts.URL + "/suggest?q=rose+fpga")
		resp.Body.Close()
	}
	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.SuggestRequests != 3 {
		t.Errorf("requests=%d want 3", m.SuggestRequests)
	}
	if m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d want 2/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheEntries != 1 {
		t.Errorf("entries=%d", m.CacheEntries)
	}
	if m.Latency.P95 <= 0 {
		t.Errorf("latency=%+v", m.Latency)
	}
}

func TestMetriczSplitsHitAndMissLatency(t *testing.T) {
	ts := testServerCached(t)
	// One miss, then two hits of the same query.
	for i := 0; i < 3; i++ {
		resp, _ := http.Get(ts.URL + "/suggest?q=rose+fpga")
		resp.Body.Close()
	}
	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.LatencyMisses.Count != 1 {
		t.Errorf("miss latency count=%d want 1", m.LatencyMisses.Count)
	}
	if m.LatencyHits.Count != 2 {
		t.Errorf("hit latency count=%d want 2", m.LatencyHits.Count)
	}
	if m.Latency.Count != 3 {
		t.Errorf("overall latency count=%d want 3", m.Latency.Count)
	}
	if m.LatencyMisses.P95 <= 0 {
		t.Errorf("miss latency=%+v", m.LatencyMisses)
	}
}

func TestMetriczWithoutCache(t *testing.T) {
	ts := testServer(t)
	resp, _ := http.Get(ts.URL + "/suggest?q=rose")
	resp.Body.Close()
	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.SuggestRequests != 1 || m.CacheHits != 0 || m.CacheEntries != 0 {
		t.Errorf("%+v", m)
	}
}
