package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xclean"
	"xclean/internal/obs"
)

// benchEngine is testEngine without the *testing.T (benchmarks build
// one per sub-benchmark so modes never share a warm engine).
func benchEngine() (*xclean.Engine, error) {
	doc := `<dblp>
	  <article><author>rose</author><title>fpga architecture synthesis</title></article>
	  <article><author>rose</author><title>reconfigurable fpga design</title></article>
	  <article><author>smith</author><title>database indexing methods</title></article>
	  <article><author>jones</author><title>xml keyword search powerpoint</title></article>
	</dblp>`
	return xclean.Open(strings.NewReader(doc), xclean.Options{StoreText: true})
}

func readAllBench(resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	return io.Copy(io.Discard, resp.Body)
}

// BenchmarkSuggestTraced is the tracing overhead A/B: the full
// /suggest handler path with tracing disabled versus enabled but not
// sampling this request (store configured, sample rate 0 — the
// production posture for untraced traffic). The acceptance bar is
// ≤2% mean overhead for on-unsampled vs off: the not-sampled path
// must stay allocation-free (one header peek + one sampler draw).
//
//	go test ./internal/server -bench SuggestTraced -benchmem
func BenchmarkSuggestTraced(b *testing.B) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"off", Config{}},
		{"on-unsampled", Config{
			Trace:       obs.NewTraceStore(obs.TraceStoreConfig{Size: 64}),
			TraceSample: 0,
		}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			eng, err := benchEngine()
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(New(eng, m.cfg).Handler())
			defer ts.Close()
			url := ts.URL + "/suggest?q=rose+fpga+architecure"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := readAllBench(resp); err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		})
	}
}
