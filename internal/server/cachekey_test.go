package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xclean/internal/catalog"
	"xclean/internal/cluster"
)

// The key-collision regression: the old scheme joined corpus and query
// with a "\x01" delimiter, and the default corpus contributed no
// prefix at all — so a default-corpus query whose text contained
// "\x01" produced byte-for-byte the same key as a named-corpus query.
// The length-prefixed encoding keeps the keyspaces disjoint no matter
// what bytes the query carries.
func TestSuggestCacheKeyCollisions(t *testing.T) {
	cases := []struct {
		name        string
		modeA       byte
		corpusA, qA string
		modeB       byte
		corpusB, qB string
	}{
		// The historical collision: default-corpus query forging a
		// named-corpus key (old keys: "a\x01x" == "a\x01x").
		{"default vs named", cacheModeQuery, "", "a\x01x", cacheModeQuery, "a", "x"},
		// And the reverse shape: corpus name absorbing query bytes.
		{"corpus boundary shift", cacheModeQuery, "ab", "x", cacheModeQuery, "a", "b\x01x"},
		// Same (corpus, query), different answer shapes.
		{"mode separation", cacheModeQuery, "a", "x", cacheModeCluster, "a", "x"},
		{"spaces separation", cacheModeQuery, "a", "x", cacheModeSpaces, "a", "x"},
	}
	for _, c := range cases {
		kA := suggestCacheKey(c.modeA, c.corpusA, c.qA)
		kB := suggestCacheKey(c.modeB, c.corpusB, c.qB)
		if kA == kB {
			t.Errorf("%s: keys collide: %q", c.name, kA)
		}
	}
}

// corpusCachePrefix must match exactly the keys of its own corpus:
// every mode of that corpus, and nothing of any other corpus — in
// particular not a corpus whose name extends it, and not the default
// corpus even when a query starts with the corpus name.
func TestCorpusCachePrefixDisjoint(t *testing.T) {
	modes := []byte{cacheModeQuery, cacheModeSpaces, cacheModeCluster}
	for _, m := range modes {
		if !strings.HasPrefix(suggestCacheKey(m, "a", "x"), corpusCachePrefix("a")) {
			t.Errorf("mode %q key of corpus a escapes its own prefix", m)
		}
	}
	foreign := []struct {
		name      string
		mode      byte
		corpus, q string
	}{
		{"extending corpus name", cacheModeQuery, "ab", "x"},
		{"default corpus, query opens with name", cacheModeQuery, "", "a\x01x"},
		{"default corpus, query equals name", cacheModeQuery, "", "a"},
	}
	pfx := corpusCachePrefix("a")
	for _, f := range foreign {
		if strings.HasPrefix(suggestCacheKey(f.mode, f.corpus, f.q), pfx) {
			t.Errorf("%s: key falls under corpus a's invalidation prefix", f.name)
		}
	}
}

// coordCatalogServer stands up a shard serving corpus "a" from its own
// catalog, and a coordinator in front of it that also carries a
// catalog for the same corpus plus a suggestion cache. Returns the
// coordinator's test server and the path of the coordinator's copy of
// a.xml (rewriting it + reload triggers the catalog swap hook).
func coordCatalogServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	newCat := func(dir string) (*catalog.Catalog, string) {
		cat := catalog.New(catalog.Config{SnapshotDir: filepath.Join(dir, "snapshots")})
		path := filepath.Join(dir, "a.xml")
		if err := os.WriteFile(path, []byte(catCorpusA), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := cat.Add("a", path); err != nil {
			t.Fatal(err)
		}
		return cat, path
	}
	shardCat, _ := newCat(t.TempDir())
	shard := httptest.NewServer(New(nil, Config{Catalog: shardCat}).Handler())
	t.Cleanup(shard.Close)
	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(shard.URL),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordCat, path := newCat(t.TempDir())
	ts := httptest.NewServer(New(nil, Config{
		Cluster:   coord,
		Catalog:   coordCat,
		CacheSize: 8,
	}).Handler())
	t.Cleanup(ts.Close)
	return ts, path
}

// The coordinator stale-cache regression: coordinator cache entries
// were keyed under a private "\x02"-prefixed scheme that the per-corpus
// invalidation prefix (corpus + "\x01") could never match, so a corpus
// reload on a coordinator left its scatter-gather answers resident —
// the hot query kept serving pre-reload suggestions forever. With the
// shared encoder, the swap hook's prefix sweep reaches coordinator
// entries too.
func TestCatalogSwapInvalidatesCoordinatorCache(t *testing.T) {
	ts, path := coordCatalogServer(t)

	shardCount := func(body []byte) int {
		var sr SuggestResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("bad suggest body %s: %v", body, err)
		}
		return len(sr.Shards)
	}

	// Cold request fans out; the repeat is a cache hit (no statuses).
	_, body := get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if shardCount(body) == 0 {
		t.Fatalf("cold coordinator request reported no shard statuses: %s", body)
	}
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if shardCount(body) != 0 {
		t.Fatalf("repeat request was not served from the coordinator cache: %s", body)
	}

	// Hot-swap corpus a in the coordinator's catalog. The swap hook
	// must drop the coordinator's cached answer for corpus a.
	if err := os.WriteFile(path, []byte(catCorpusB), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/corpora?name=a&action=reload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}

	// The hot query must fan out again: a cache hit here means the
	// reload left the stale scatter-gather answer resident.
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if shardCount(body) == 0 {
		t.Errorf("corpus reload did not invalidate the coordinator cache: %s", body)
	}
}
