package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"xclean/internal/cluster"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// POST /shard/suggest answers a whole batch in one round-trip, entry
// for entry identical to the single-query GET responses.
func TestShardSuggestBatch(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(ts.Close)
	queries := []string{"rose fpga", "power point", "wirless"}

	resp, body := postJSON(t, ts.URL+"/shard/suggest", cluster.BatchRequest{
		Version: cluster.WireVersion,
		Queries: queries,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br cluster.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Version != cluster.WireVersion || len(br.Results) != len(queries) {
		t.Fatalf("batch envelope = version %d, %d results; want %d results at version %d",
			br.Version, len(br.Results), len(queries), cluster.WireVersion)
	}
	for i, q := range queries {
		e := br.Results[i]
		if e.Query != q || e.Error != "" {
			t.Fatalf("entry %d = %+v, want clean entry for %q", i, e, q)
		}
		_, single := get(t, ts.URL+"/shard/suggest?q="+url.QueryEscape(q))
		var sr cluster.ShardResponse
		if err := json.Unmarshal(single, &sr); err != nil {
			t.Fatal(err)
		}
		if len(e.Candidates) != len(sr.Candidates) {
			t.Fatalf("%q: batch %d candidates vs single %d",
				q, len(e.Candidates), len(sr.Candidates))
		}
	}

	// Version and size validation reject bad batches up front.
	resp, body = postJSON(t, ts.URL+"/shard/suggest", cluster.BatchRequest{
		Version: cluster.WireVersion + 1,
		Queries: queries,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-version batch: status %d: %s", resp.StatusCode, body)
	}
	big := make([]string, cluster.MaxBatchQueries+1)
	for i := range big {
		big[i] = "q"
	}
	resp, body = postJSON(t, ts.URL+"/shard/suggest", cluster.BatchRequest{
		Version: cluster.WireVersion,
		Queries: big,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/shard/suggest", cluster.BatchRequest{
		Version: cluster.WireVersion,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}
}

// POST /suggest on a coordinator fans the whole batch out, agrees with
// the GET path query for query, and shares the GET path's cache (a
// batch warms it; a warm entry short-circuits the batch).
func TestCoordinatorSuggestBatch(t *testing.T) {
	ts := coordServer(t, Config{CacheSize: 16})
	queries := []string{"rose fpga", "power point"}

	resp, body := postJSON(t, ts.URL+"/suggest", BatchSuggestBody{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var bs BatchSuggestResponse
	if err := json.Unmarshal(body, &bs); err != nil {
		t.Fatal(err)
	}
	if bs.Partial || len(bs.Results) != len(queries) {
		t.Fatalf("batch = partial:%v %d results: %s", bs.Partial, len(bs.Results), body)
	}
	if len(bs.Shards) == 0 {
		t.Fatalf("cold batch reported no shard statuses: %s", body)
	}
	for i, q := range queries {
		_, single := get(t, ts.URL+"/suggest?q="+url.QueryEscape(q)+"&debug=1")
		var sr SuggestResponse
		if err := json.Unmarshal(single, &sr); err != nil {
			t.Fatal(err)
		}
		b := bs.Results[i]
		if b.Query != q || len(b.Suggestions) != len(sr.Suggestions) {
			t.Fatalf("%q: batch %d suggestions vs GET %d: %s",
				q, len(b.Suggestions), len(sr.Suggestions), body)
		}
		for j := range sr.Suggestions {
			bj, gj := b.Suggestions[j], sr.Suggestions[j]
			if bj.Query != gj.Query || bj.Score != gj.Score ||
				bj.ResultType != gj.ResultType || bj.Entities != gj.Entities {
				t.Fatalf("%q rank %d: batch %+v vs GET %+v", q, j, bj, gj)
			}
		}
	}

	// The batch populated the shared cache: a repeat batch is all hits
	// (no fan-out, so no shard statuses).
	resp, body = postJSON(t, ts.URL+"/suggest", BatchSuggestBody{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	var warm BatchSuggestResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if len(warm.Shards) != 0 {
		t.Fatalf("warm batch still fanned out: %s", body)
	}
	if len(warm.Results) != len(queries) || len(warm.Results[0].Suggestions) == 0 {
		t.Fatalf("warm batch results: %s", body)
	}

	// Malformed batches are rejected.
	resp, body = postJSON(t, ts.URL+"/suggest", BatchSuggestBody{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}
}

// POST /suggest on a standalone server stays 405: batching is a
// coordinator feature.
func TestSuggestBatchStandalone405(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(ts.Close)
	resp, _ := postJSON(t, ts.URL+"/suggest", BatchSuggestBody{Queries: []string{"q"}})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("standalone POST /suggest: status %d, want 405", resp.StatusCode)
	}
}

// /readyz with replica sets: a shard keeps its coverage while any
// replica lives; it is the loss of the last replica of any shard that
// flips the coordinator unready.
func TestReadyzReplicaCoverage(t *testing.T) {
	shard := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(shard.Close)
	spare := httptest.NewServer(shard.Config.Handler)
	t.Cleanup(spare.Close)
	coord, err := cluster.New(cluster.Config{
		Shards:  [][]cluster.Endpoint{{cluster.Endpoint(shard.URL), cluster.Endpoint(spare.URL)}},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(nil, Config{Cluster: coord}).Handler())
	t.Cleanup(ts.Close)

	expect := func(wantCode, wantUp int) ReadyResponse {
		t.Helper()
		resp, body := get(t, ts.URL+"/readyz")
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantCode, body)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.ShardsUp != wantUp || rr.ShardsTotal != 1 {
			t.Fatalf("coverage %d/%d, want %d/1: %s", rr.ShardsUp, rr.ShardsTotal, wantUp, body)
		}
		return rr
	}
	expect(http.StatusOK, 1)
	shard.Close()
	expect(http.StatusOK, 1) // the spare still covers the shard
	spare.Close()
	if rr := expect(http.StatusServiceUnavailable, 0); rr.Reason == "" {
		t.Fatal("unready with no reason")
	}
}
