// Package server exposes an xclean.Engine over HTTP with a small JSON
// API, turning the library into the "Did you mean" service the paper's
// introduction motivates:
//
//	GET  /suggest?q=<query>[&corpus=name][&k=N][&spaces=1][&preview=1][&debug=1]  → ranked suggestions
//	GET  /stats[?corpus=name]                  → indexed-document statistics
//	GET  /metricz[?format=prometheus]          → service + engine + Go runtime metrics
//	GET  /healthz                              → liveness probe
//	GET  /readyz                               → readiness probe (engine serving, admission not saturated)
//	GET  /tracez[?id=traceId]                  → tail-sampled distributed traces (list / one span tree)
//	POST /click?entity=<dewey>                 → record entity feedback (query log)
//	GET  /topqueries?n=N                       → most frequent logged queries
//
// With Config.Catalog set, the server fronts a whole corpus catalog
// instead of one engine: /suggest and /stats take ?corpus=<name>
// (optional while a single corpus is served), and the admin surface
// manages the corpus set at runtime:
//
//	GET    /corpora                            → status of every corpus
//	POST   /corpora?name=N&doc=path            → add a corpus from XML (file or directory)
//	POST   /corpora?name=N&snapshot=path       → add a corpus from a saved index
//	POST   /corpora?name=N&action=reload       → rebuild and hot-swap (old engine serves on failure)
//	DELETE /corpora?name=N                     → remove a corpus
//
// The admin endpoints accept server-side file paths; deploy them
// behind the same trust boundary as the process itself.
//
// With Config.Cluster set, the server is a scatter-gather coordinator:
// /suggest fans out to entity-partitioned shard servers over
//
//	GET /shard/suggest?q=<query>[&corpus=name]  → per-candidate partial sums (versioned JSON)
//
// (served by any node whose engine supports partial scans) and merges
// the partial scores into the global top-k. Degraded answers carry
// "partial": true plus per-shard statuses, /healthz reports per-shard
// health (503 when every shard is down), and /metricz adds
// shard-labeled fan-out series.
//
// With a query log configured, every /suggest query and /click is
// recorded; the accumulated log yields the entity priors and query
// popularity the paper's Eq. (8) generalization consumes.
//
// Every request is assigned an ID (or adopts an incoming X-Request-Id
// header), echoed in the X-Request-Id response header, the /suggest
// body, the structured access log, and the slow-query log, so one
// outlier request can be traced across all four.
//
// The handler is safe for concurrent use (the engine's index structures
// are read-only after construction) and supports graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"xclean"
	"xclean/internal/cache"
	"xclean/internal/catalog"
	"xclean/internal/cluster"
	"xclean/internal/eval"
	"xclean/internal/obs"
	"xclean/internal/qlog"
	"xclean/internal/xmltree"
)

// Engine is the part of xclean.Engine the server needs; the indirection
// lets tests plug in fakes. Every suggestion method takes the request
// context: the engine's scan polls it cooperatively, so an expired
// per-request deadline or a disconnected client stops the scan instead
// of holding a worker until it finishes. A cancelled call returns the
// context's error.
type Engine interface {
	SuggestContext(ctx context.Context, query string) ([]xclean.Suggestion, error)
	SuggestWithSpacesContext(ctx context.Context, query string) ([]xclean.Suggestion, error)
	// SuggestExplainedContext and SuggestWithSpacesExplainedContext
	// return the same suggestions plus the per-query trace served under
	// /suggest?debug=1 and recorded by the slow-query log.
	SuggestExplainedContext(ctx context.Context, query string) ([]xclean.Suggestion, *xclean.Explain, error)
	SuggestWithSpacesExplainedContext(ctx context.Context, query string) ([]xclean.Suggestion, *xclean.Explain, error)
	Stats() xclean.IndexStats
	// Preview renders the witness entity of a suggestion (empty unless
	// the engine stores text).
	Preview(s xclean.Suggestion, maxLen int) string
}

// Config tunes a Server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Logger receives one structured line per request; nil disables
	// access logging.
	Logger *slog.Logger
	// MaxQueryLen rejects oversized queries (0 = 1024 bytes).
	MaxQueryLen int
	// ReadTimeout and WriteTimeout bound request handling
	// (0 = 5s / 30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// QueryLog, when non-nil, records every suggested query and every
	// /click, enabling the log-driven entity priors of Eq. (8).
	QueryLog *qlog.Log
	// CacheSize enables an LRU over suggestion lists keyed by query
	// text (0 = disabled). Useful because "Did you mean" traffic is
	// Zipfian. The server does not mutate the engine; callers that do
	// must restart it.
	CacheSize int
	// Obs is the engine's metrics sink. The server does not attach it —
	// callers do, via xclean.Engine.SetObserver — but when set here,
	// /metricz includes its snapshot and the Prometheus exposition
	// covers the engine's stage histograms and counters.
	Obs *obs.Sink
	// SlowLog, when non-nil, receives the full trace of every /suggest
	// engine call slower than its threshold. Configuring it makes every
	// cache-miss request run in explain mode (the trace must exist
	// before the request is known to be slow); the tracing overhead is
	// a few extra clock reads per request.
	SlowLog *qlog.SlowLog
	// Catalog, when non-nil, turns the server into a multi-corpus
	// frontend: requests resolve their engine per call (?corpus=), the
	// /corpora admin endpoints are mounted, and /metricz exposes
	// per-corpus labeled series. The Engine passed to New may then be
	// nil.
	Catalog *catalog.Catalog
	// Cluster, when non-nil, turns the server into a scatter-gather
	// coordinator: /suggest fans out to the configured shard servers
	// and merges their partials (see internal/cluster), /healthz
	// reports per-shard health, and /metricz exposes shard-labeled
	// fan-out series. The Engine and Catalog may then both be nil (a
	// pure coordinator serves no local index).
	Cluster *cluster.Coordinator
	// RequestTimeout bounds the engine work of one /suggest or
	// /shard/suggest request in standalone (non-coordinator) mode: the
	// scan is cancelled cooperatively when it expires and the request
	// answers 503 with a Retry-After hint (0 = no timeout). The
	// coordinator path keeps its own fan-out budget
	// (cluster.Config.Timeout) instead.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently executing engine scans; requests
	// beyond it wait in a queue of at most MaxQueue, and requests beyond
	// that are shed with 429 Too Many Requests + Retry-After
	// (0 = unlimited). Cache hits bypass admission entirely.
	MaxInflight int
	// MaxQueue is the wait-queue bound behind MaxInflight (0 = no
	// queue: everything beyond MaxInflight sheds immediately).
	MaxQueue int
	// Trace, when non-nil, enables distributed tracing: sampled
	// requests produce a stitched span tree — coordinator fan-out,
	// per-shard attempts, shard stage spans — retained by this
	// tail-sampling store and served at GET /tracez. Traced cache
	// misses run in explain mode (the stage spans must exist before the
	// request completes); requests that are not sampled allocate
	// nothing trace-related.
	Trace *obs.TraceStore
	// TraceSample is the head-sampling probability in [0,1] for
	// requests arriving without a traceparent header; requests carrying
	// a sampled W3C traceparent are always traced regardless. 0
	// disables locally initiated traces (propagated ones still trace).
	TraceSample float64
	// InjectDelay sleeps this long before every engine scan — a fault
	// injection hook for exercising tracing, hedging, and tail
	// sampling against an artificially slow node (see make
	// trace-smoke). Leave 0 in production.
	InjectDelay time.Duration
}

func (c Config) addr() string {
	if c.Addr == "" {
		return ":8080"
	}
	return c.Addr
}

func (c Config) maxQueryLen() int {
	if c.MaxQueryLen <= 0 {
		return 1024
	}
	return c.MaxQueryLen
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return 5 * time.Second
	}
	return c.ReadTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 30 * time.Second
	}
	return c.WriteTimeout
}

// Server serves suggestion requests for one engine.
type Server struct {
	eng   Engine
	cfg   Config
	mux   *http.ServeMux
	http  *http.Server
	cache *cache.LRU[[]xclean.Suggestion] // nil when disabled
	// latency records every /suggest request; hitLatency and
	// missLatency split the samples by cache outcome so a warm cache
	// cannot mask the engine's true p50/p99 (hits answer in
	// microseconds, real engine runs in milliseconds — mixing them
	// made the combined percentiles meaningless).
	latency     eval.LatencyRecorder
	hitLatency  eval.LatencyRecorder
	missLatency eval.LatencyRecorder
	// httpDur is the /suggest handler latency histogram backing the
	// Prometheus exposition (the recorders above keep the JSON
	// percentile view).
	httpDur *obs.Histogram
	// adm is the load-shedding layer in front of every engine scan.
	adm *admission
	// sampler makes the head-sampling decision for requests without an
	// incoming traceparent (meaningful only when cfg.Trace is set).
	sampler obs.Sampler
	// runtime lazily folds Go runtime stats (goroutines, heap, GC
	// pauses) into the /metricz views.
	runtime *obs.RuntimeTracker
}

// New builds a server around an engine.
func New(eng Engine, cfg Config) *Server {
	s := &Server{eng: eng, cfg: cfg, mux: http.NewServeMux(),
		httpDur: obs.NewDurationHistogram(),
		adm:     newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		sampler: obs.NewSampler(cfg.TraceSample),
		runtime: obs.NewRuntimeTracker()}
	if cfg.CacheSize > 0 {
		s.cache = cache.New[[]xclean.Suggestion](cfg.CacheSize)
	}
	if cfg.Catalog != nil && cfg.CacheSize > 0 {
		// Corpus hot-swaps must drop that corpus's cached suggestions, or
		// a reloaded corpus keeps serving pre-reload answers for as long
		// as they stay resident (the cache has no TTL).
		cfg.Catalog.OnSwap(s.invalidateCorpus)
	}
	s.mux.HandleFunc("/suggest", s.handleSuggest)
	s.mux.HandleFunc("/shard/suggest", s.handleShardSuggest)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/tracez", s.handleTracez)
	s.mux.HandleFunc("/click", s.handleClick)
	s.mux.HandleFunc("/topqueries", s.handleTopQueries)
	if cfg.Catalog != nil {
		s.mux.HandleFunc("/corpora", s.handleCorpora)
	}
	s.http = &http.Server{
		Addr:         cfg.addr(),
		Handler:      s.Handler(),
		ReadTimeout:  cfg.readTimeout(),
		WriteTimeout: cfg.writeTimeout(),
	}
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.logWrap(s.mux) }

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully (draining in-flight requests for up to 5 seconds).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.addr())
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.http.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		<-errc // http.ErrServerClosed
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return fmt.Errorf("server: %w", err)
	}
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.addr() }

// invalidateCorpus drops every cached suggestion list of one corpus.
// It is registered as the catalog's swap hook, so a hot-swap, reload,
// document mutation, eviction, or removal immediately stops serving
// the old engine's answers. All cache keys of a corpus — standalone,
// space search, and coordinator alike — share corpusCachePrefix, so
// one prefix sweep reaches every mode and never another corpus.
func (s *Server) invalidateCorpus(name string) {
	if s.cache == nil {
		return
	}
	s.cache.ClearPrefix(corpusCachePrefix(name))
}

// resolveEngine picks the engine serving this request: the catalog
// corpus named by ?corpus= (with default resolution when absent), or
// the fixed engine in single-engine mode. The resolved corpus name
// comes back for cache keys, logs, and the response ("" in
// single-engine mode).
func (s *Server) resolveEngine(r *http.Request) (Engine, string, error) {
	if s.cfg.Catalog == nil {
		return s.eng, "", nil
	}
	eng, name, err := s.cfg.Catalog.Resolve(r.URL.Query().Get("corpus"))
	if err != nil {
		return nil, name, err
	}
	return eng, name, nil
}

// resolveEngineByName is resolveEngine for callers that carry the
// corpus name in a request body (the batched shard protocol) instead
// of a ?corpus= parameter.
func (s *Server) resolveEngineByName(name string) (Engine, string, error) {
	if s.cfg.Catalog == nil {
		return s.eng, "", nil
	}
	eng, resolved, err := s.cfg.Catalog.Resolve(name)
	if err != nil {
		return nil, resolved, err
	}
	return eng, resolved, nil
}

// catalogStatus maps a catalog error to its HTTP status.
func catalogStatus(err error) int {
	switch {
	case errors.Is(err, catalog.ErrUnknownCorpus):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrCorpusRequired):
		return http.StatusBadRequest
	case errors.Is(err, catalog.ErrNotServing):
		return http.StatusServiceUnavailable
	case errors.Is(err, catalog.ErrDuplicateCorpus):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// SuggestionJSON is the wire form of one suggestion.
type SuggestionJSON struct {
	Query        string   `json:"query"`
	Words        []string `json:"words"`
	Score        float64  `json:"score"`
	ResultType   string   `json:"resultType,omitempty"`
	Entities     int      `json:"entities"`
	EditDistance int      `json:"editDistance"`
	Witness      string   `json:"witness,omitempty"`
	Preview      string   `json:"preview,omitempty"`
}

// previewLen caps the preview text returned per suggestion.
const previewLen = 240

// SuggestResponse is the body of GET /suggest.
type SuggestResponse struct {
	Query string `json:"query"`
	// Corpus is the resolved catalog corpus the suggestions came from
	// (omitted in single-engine deployments).
	Corpus      string           `json:"corpus,omitempty"`
	Suggestions []SuggestionJSON `json:"suggestions"`
	TookMillis  float64          `json:"tookMillis"`
	// RequestID echoes the request's ID (also in the X-Request-Id
	// header) for correlation with the access and slow-query logs.
	RequestID string `json:"requestId,omitempty"`
	// Explain carries the per-query trace when debug=1 was passed.
	Explain *xclean.Explain `json:"explain,omitempty"`
	// Partial is true when the answer came from a degraded cluster
	// fan-out (at least one shard missing); the suggestions are the
	// surviving shards' best answer.
	Partial bool `json:"partial,omitempty"`
	// Shards carries per-shard fan-out statuses in coordinator mode
	// (state, latency, candidate counts, hedging).
	Shards []cluster.ShardStatus `json:"shards,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && s.cfg.Cluster != nil {
		s.handleClusterSuggestBatch(w, r)
		return
	}
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	if len(q) > s.cfg.maxQueryLen() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("query longer than %d bytes", s.cfg.maxQueryLen()))
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = v
	}

	if s.cfg.Cluster != nil {
		s.handleClusterSuggest(w, r, q, k)
		return
	}

	eng, corpus, err := s.resolveEngine(r)
	if err != nil {
		s.writeError(w, catalogStatus(err), err.Error())
		return
	}

	if s.cfg.QueryLog != nil {
		s.cfg.QueryLog.RecordQuery(q)
	}

	spaces := r.URL.Query().Get("spaces") == "1"
	debug := r.URL.Query().Get("debug") == "1"
	rid := requestIDFrom(r.Context())
	tc, traceParent := s.startTrace(w, r)
	start := time.Now()
	var sugs []xclean.Suggestion
	var ex *xclean.Explain
	cacheKey := ""
	cached := false
	if s.cache != nil {
		// The cache is shared across corpora; the key carries the corpus
		// (length-prefixed, see suggestCacheKey) so identical query text
		// never crosses corpus boundaries.
		mode := cacheModeQuery
		if spaces {
			mode = cacheModeSpaces
		}
		cacheKey = suggestCacheKey(mode, corpus, q)
		// debug=1 bypasses the cache entirely (read below, write after
		// the call): a trace must reflect a real engine execution, not a
		// map lookup, and a debug run must not overwrite entries regular
		// traffic will serve.
		if !debug {
			sugs, cached = s.cache.Get(cacheKey)
		}
	}
	if !cached {
		// Only real engine work passes admission: a full server sheds
		// before scanning, and the per-request deadline (plus the
		// client's own disconnect) cancels the scan cooperatively.
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		release, admit := s.adm.acquire(ctx)
		switch admit {
		case admitShed:
			s.writeShed(w)
			return
		case admitTimeout:
			s.writeOverdeadline(w, ctx.Err())
			return
		}
		if s.cfg.InjectDelay > 0 {
			time.Sleep(s.cfg.InjectDelay)
		}
		// The slow-query log needs the trace before the request is known
		// to be slow, so a configured SlowLog forces explain mode too,
		// as does a sampled trace (its stage spans come from the same
		// explain run).
		trace := debug || s.cfg.SlowLog != nil || tc != nil
		var err error
		switch {
		case trace && spaces:
			sugs, ex, err = eng.SuggestWithSpacesExplainedContext(ctx, q)
		case trace:
			sugs, ex, err = eng.SuggestExplainedContext(ctx, q)
		case spaces:
			sugs, err = eng.SuggestWithSpacesContext(ctx, q)
		default:
			sugs, err = eng.SuggestContext(ctx, q)
		}
		release()
		if err != nil {
			if isCtxErr(err) {
				s.adm.cancels.Add(1)
				s.writeOverdeadline(w, err)
				return
			}
			s.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if s.cache != nil && !debug {
			s.cache.Put(cacheKey, sugs)
		}
	}
	took := time.Since(start)
	s.latency.Record(took)
	s.observeHTTP(took, tc, rid)
	if cached {
		s.hitLatency.Record(took)
	} else {
		s.missLatency.Record(took)
	}
	var tr *obs.Trace
	if tc != nil {
		var children []*obs.SpanNode
		var attrs map[string]string
		if cached {
			attrs = map[string]string{"cache": "hit"}
		} else if ex != nil {
			children = obs.StageSpanNodes(tc.Parent, ex.Spans)
		}
		tr = s.finishTrace(tc, traceParent, "suggest", rid, q, corpus,
			start, took, false, children, attrs)
	}
	rec := qlog.SlowRecord{
		RequestID:   rid,
		Corpus:      corpus,
		Query:       q,
		Spaces:      spaces,
		DurationNs:  took.Nanoseconds(),
		Suggestions: len(sugs),
		Explain:     ex,
	}
	if tr != nil {
		rec.Trace = tr
	}
	if !cached && s.cfg.SlowLog.Record(rec) {
		if s.cfg.Obs != nil {
			s.cfg.Obs.SlowQueries.Inc()
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("slow query", "requestId", rid, "corpus", corpus,
				"query", q, "spaces", spaces, "tookMillis", float64(took.Microseconds())/1000)
		}
	}
	if k > 0 && len(sugs) > k {
		sugs = sugs[:k]
	}

	resp := SuggestResponse{
		Query:       q,
		Corpus:      corpus,
		Suggestions: make([]SuggestionJSON, len(sugs)),
		TookMillis:  float64(time.Since(start).Microseconds()) / 1000,
		RequestID:   rid,
	}
	if debug {
		resp.Explain = ex
	}
	withPreview := r.URL.Query().Get("preview") == "1"
	for i, sg := range sugs {
		resp.Suggestions[i] = SuggestionJSON{
			Query:        sg.Query,
			Words:        sg.Words,
			Score:        sg.Score,
			ResultType:   sg.ResultType,
			Entities:     sg.Entities,
			EditDistance: sg.EditDistance,
			Witness:      sg.Witness,
		}
		if withPreview {
			resp.Suggestions[i].Preview = eng.Preview(sg, previewLen)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	eng, _, err := s.resolveEngine(r)
	if err != nil {
		s.writeError(w, catalogStatus(err), err.Error())
		return
	}
	if eng == nil {
		s.writeError(w, http.StatusNotImplemented,
			"no local index in coordinator mode; query the shards' /stats directly")
		return
	}
	s.writeJSON(w, http.StatusOK, eng.Stats())
}

// handleCorpora is the catalog admin surface: list (GET), add or
// reload (POST), remove (DELETE), plus the live-write actions of the
// segmented engine — adddoc (XML request body), removedoc (&doc=
// top-level Dewey code), compact (one compaction step), and flush
// (flatten the segment stack).
func (s *Server) handleCorpora(w http.ResponseWriter, r *http.Request) {
	cat := s.cfg.Catalog
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, cat.List())
	case http.MethodPost:
		name := r.URL.Query().Get("name")
		if name == "" {
			s.writeError(w, http.StatusBadRequest, "missing parameter name")
			return
		}
		doc := r.URL.Query().Get("doc")
		snapshot := r.URL.Query().Get("snapshot")
		action := r.URL.Query().Get("action")
		var err error
		// Document-write failures with a registered corpus are caller
		// mistakes (malformed XML, bad Dewey code), not server faults.
		badRequest := false
		switch {
		case action == "reload":
			err = cat.Reload(name)
		case action == "adddoc":
			err = cat.AddDocumentTo(name, r.Body)
			badRequest = true
		case action == "removedoc":
			if doc == "" {
				s.writeError(w, http.StatusBadRequest, "removedoc requires the doc parameter (a top-level Dewey code such as 1.17)")
				return
			}
			err = cat.RemoveDocumentFrom(name, doc)
			badRequest = true
		case action == "compact":
			_, err = cat.CompactCorpus(r.Context(), name)
		case action == "flush":
			err = cat.FlushCorpus(r.Context(), name)
		case action != "":
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown action %q", action))
			return
		case doc != "" && snapshot == "":
			err = cat.Add(name, doc)
		case snapshot != "" && doc == "":
			err = cat.AddSnapshot(name, snapshot)
		default:
			s.writeError(w, http.StatusBadRequest, "exactly one of doc or snapshot is required")
			return
		}
		if err != nil {
			code := catalogStatus(err)
			if badRequest && code == http.StatusInternalServerError {
				code = http.StatusBadRequest
			}
			// A failed reload keeps the corpus registered (old engine
			// serving); include its status so callers see both.
			if st, stErr := cat.Status(name); stErr == nil {
				s.writeJSON(w, code, struct {
					Error  string         `json:"error"`
					Corpus catalog.Status `json:"corpus"`
				}{err.Error(), st})
				return
			}
			s.writeError(w, code, err.Error())
			return
		}
		st, stErr := cat.Status(name)
		if stErr != nil {
			s.writeError(w, http.StatusInternalServerError, stErr.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, st)
	case http.MethodDelete:
		name := r.URL.Query().Get("name")
		if name == "" {
			s.writeError(w, http.StatusBadRequest, "missing parameter name")
			return
		}
		if err := cat.Remove(name); err != nil {
			s.writeError(w, catalogStatus(err), err.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "removed", "name": name})
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "GET, POST, or DELETE")
	}
}

// Metrics is the body of GET /metricz. Latency covers every /suggest
// request; LatencyHits and LatencyMisses split the distribution by
// cache outcome, so LatencyMisses is the engine's true per-query
// latency even when most traffic is answered from a warm cache.
type Metrics struct {
	SuggestRequests int               `json:"suggestRequests"`
	CacheHits       int64             `json:"cacheHits"`
	CacheMisses     int64             `json:"cacheMisses"`
	CacheEntries    int               `json:"cacheEntries"`
	Latency         eval.LatencyStats `json:"latency"`
	LatencyHits     eval.LatencyStats `json:"latencyHits"`
	LatencyMisses   eval.LatencyStats `json:"latencyMisses"`
	// SlowQueries counts requests the slow-query log recorded (0 when
	// no slow log is configured).
	SlowQueries int64 `json:"slowQueries"`
	// Engine is the engine-side sink snapshot (per-stage latency
	// histograms, cache and scan counters) when Config.Obs is set.
	Engine *obs.SinkSnapshot `json:"engine,omitempty"`
	// Corpora carries the catalog's per-corpus lifecycle statuses, and
	// CorpusEngines the per-corpus engine sink snapshots, when
	// Config.Catalog is set.
	Corpora       []catalog.Status            `json:"corpora,omitempty"`
	CorpusEngines map[string]obs.SinkSnapshot `json:"corpusEngines,omitempty"`
	// Cluster carries per-shard fan-out counters (requests, failures,
	// timeouts, hedges, latency) in coordinator mode.
	Cluster []cluster.ShardMetrics `json:"cluster,omitempty"`
	// Admission reports the load-shedding layer: in-flight scans, queue
	// depth, sheds, and cancelled scans.
	Admission AdmissionMetrics `json:"admission"`
	// Runtime is the Go runtime block: goroutine count, heap in-use and
	// allocated bytes, GC pause distribution, GOMAXPROCS.
	Runtime obs.RuntimeSnapshot `json:"runtime"`
	// Traces reports the trace store's tail-sampling counters when
	// tracing is enabled.
	Traces *obs.TraceStoreStats `json:"traces,omitempty"`
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		s.writePrometheus(w)
		return
	}
	st := s.latency.Stats()
	m := Metrics{
		SuggestRequests: st.Count,
		Latency:         st,
		LatencyHits:     s.hitLatency.Stats(),
		LatencyMisses:   s.missLatency.Stats(),
		SlowQueries:     s.cfg.SlowLog.Count(),
	}
	if s.cache != nil {
		m.CacheHits, m.CacheMisses = s.cache.Stats()
		m.CacheEntries = s.cache.Len()
	}
	if s.cfg.Obs != nil {
		snap := s.cfg.Obs.Snapshot()
		m.Engine = &snap
	}
	if s.cfg.Catalog != nil {
		m.Corpora = s.cfg.Catalog.List()
		m.CorpusEngines = make(map[string]obs.SinkSnapshot)
		for name, sink := range s.cfg.Catalog.Sinks() {
			m.CorpusEngines[name] = sink.Snapshot()
		}
	}
	if s.cfg.Cluster != nil {
		m.Cluster = s.cfg.Cluster.MetricsSnapshot()
	}
	m.Admission = s.admissionMetrics()
	m.Runtime = s.runtime.Snapshot()
	if s.cfg.Trace != nil {
		ts := s.cfg.Trace.Stats()
		m.Traces = &ts
	}
	s.writeJSON(w, http.StatusOK, m)
}

// writePrometheus renders GET /metricz?format=prometheus: the server's
// HTTP-side series under xclean_http_*, then — when Config.Obs is set —
// the engine sink under xclean_engine_* (stage histograms, cache and
// scan counters).
func (s *Server) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	obs.WriteCounter(w, "xclean_http_suggest_requests_total",
		"Completed /suggest requests.", int64(s.latency.Stats().Count))
	if s.cfg.Trace != nil {
		// With tracing on, bucket samples carry trace/request-ID
		// exemplars (OpenMetrics syntax) linking an outlier bucket to a
		// concrete /tracez?id= tree.
		obs.WriteHistogramExemplars(w, "xclean_http_suggest_duration_seconds",
			"/suggest handler latency (cache hits included).", s.httpDur)
	} else {
		obs.WriteHistogram(w, "xclean_http_suggest_duration_seconds",
			"/suggest handler latency (cache hits included).", s.httpDur)
	}
	if s.cache != nil {
		hits, misses := s.cache.Stats()
		obs.WriteCounter(w, "xclean_http_cache_hits_total", "Suggestion cache hits.", hits)
		obs.WriteCounter(w, "xclean_http_cache_misses_total", "Suggestion cache misses.", misses)
		obs.WriteGauge(w, "xclean_http_cache_entries", "Suggestion cache resident entries.", float64(s.cache.Len()))
	}
	if s.cfg.SlowLog != nil {
		obs.WriteCounter(w, "xclean_http_slow_queries_total",
			"Requests recorded by the slow-query log.", s.cfg.SlowLog.Count())
	}
	adm := s.admissionMetrics()
	obs.WriteGauge(w, "xclean_http_inflight_requests",
		"Engine scans executing right now.", float64(adm.Inflight))
	obs.WriteGauge(w, "xclean_http_admission_queue_depth",
		"Requests waiting for an in-flight slot.", float64(adm.QueueDepth))
	obs.WriteCounter(w, "xclean_http_sheds_total",
		"Requests shed with 429 (in-flight and queue bounds full).", adm.Sheds)
	obs.WriteCounter(w, "xclean_http_cancelled_scans_total",
		"Engine scans abandoned via context cancellation.", adm.CancelledScans)
	s.runtime.WritePrometheus(w)
	if s.cfg.Trace != nil {
		ts := s.cfg.Trace.Stats()
		obs.WriteCounter(w, "xclean_trace_offered_total",
			"Completed traces offered to the tail-sampling store.", ts.Offered)
		obs.WriteCounter(w, "xclean_trace_retained_total",
			"Traces the tail sampler retained.", ts.Retained)
		obs.WriteCounter(w, "xclean_trace_dropped_total",
			"Traces the tail sampler dropped.", ts.Dropped)
		obs.WriteGauge(w, "xclean_trace_resident",
			"Traces resident in the ring buffers.", float64(ts.Resident))
	}
	if s.cfg.Obs != nil {
		s.cfg.Obs.WritePrometheus(w, "xclean_engine")
	}
	if s.cfg.Catalog != nil {
		// Per-corpus engine series (corpus="<name>" labels) plus the
		// catalog lifecycle series.
		s.cfg.Catalog.WritePrometheus(w, "xclean_engine")
	}
	if s.cfg.Cluster != nil {
		// Shard-labeled fan-out series (xclean_cluster_*).
		s.cfg.Cluster.WritePrometheus(w)
	}
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.QueryLog == nil {
		s.writeError(w, http.StatusNotImplemented, "no query log configured")
		return
	}
	d, err := xmltree.ParseDewey(r.URL.Query().Get("entity"))
	if err != nil || len(d) == 0 {
		s.writeError(w, http.StatusBadRequest, "entity must be a dot-form dewey code")
		return
	}
	s.cfg.QueryLog.RecordClick(d)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) handleTopQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.QueryLog == nil {
		s.writeError(w, http.StatusNotImplemented, "no query log configured")
		return
	}
	n := 10
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, s.cfg.QueryLog.TopQueries(n))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cluster != nil {
		s.handleClusterHealthz(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Error("encode response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}

// ctxKey keys server values in a request context.
type ctxKey int

const requestIDKey ctxKey = iota

// reqSeq numbers requests within this process; combined with the
// process start time it yields IDs unique across restarts.
var reqSeq atomic.Uint64

var procEpoch = time.Now().UnixNano()

func newRequestID() string {
	return fmt.Sprintf("%x-%06d", uint64(procEpoch)&0xffffffff, reqSeq.Add(1))
}

// requestIDFrom returns the request ID the middleware stored, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// maxRequestIDLen bounds adopted client-supplied X-Request-Id values.
const maxRequestIDLen = 64

// logWrap assigns every request an ID (adopting a sane incoming
// X-Request-Id), echoes it in the response header, and — when a logger
// is configured — emits one structured access-log line per request.
func (s *Server) logWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
		if s.cfg.Logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Info("request",
			"requestId", rid,
			"method", r.Method,
			"uri", r.URL.RequestURI(),
			"status", sw.status,
			"took", time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
