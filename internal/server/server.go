// Package server exposes an xclean.Engine over HTTP with a small JSON
// API, turning the library into the "Did you mean" service the paper's
// introduction motivates:
//
//	GET  /suggest?q=<query>[&k=N][&spaces=1][&preview=1]  → ranked suggestions
//	GET  /stats                                → indexed-document statistics
//	GET  /metricz                              → service metrics (requests, cache, latency)
//	GET  /healthz                              → liveness probe
//	POST /click?entity=<dewey>                 → record entity feedback (query log)
//	GET  /topqueries?n=N                       → most frequent logged queries
//
// With a query log configured, every /suggest query and /click is
// recorded; the accumulated log yields the entity priors and query
// popularity the paper's Eq. (8) generalization consumes.
//
// The handler is safe for concurrent use (the engine's index structures
// are read-only after construction) and supports graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"xclean"
	"xclean/internal/cache"
	"xclean/internal/eval"
	"xclean/internal/qlog"
	"xclean/internal/xmltree"
)

// Engine is the part of xclean.Engine the server needs; the indirection
// lets tests plug in fakes.
type Engine interface {
	Suggest(query string) []xclean.Suggestion
	SuggestWithSpaces(query string) []xclean.Suggestion
	Stats() xclean.IndexStats
	// Preview renders the witness entity of a suggestion (empty unless
	// the engine stores text).
	Preview(s xclean.Suggestion, maxLen int) string
}

// Config tunes a Server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Logger receives one line per request; nil disables logging.
	Logger *log.Logger
	// MaxQueryLen rejects oversized queries (0 = 1024 bytes).
	MaxQueryLen int
	// ReadTimeout and WriteTimeout bound request handling
	// (0 = 5s / 30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// QueryLog, when non-nil, records every suggested query and every
	// /click, enabling the log-driven entity priors of Eq. (8).
	QueryLog *qlog.Log
	// CacheSize enables an LRU over suggestion lists keyed by query
	// text (0 = disabled). Useful because "Did you mean" traffic is
	// Zipfian. The server does not mutate the engine; callers that do
	// must restart it.
	CacheSize int
}

func (c Config) addr() string {
	if c.Addr == "" {
		return ":8080"
	}
	return c.Addr
}

func (c Config) maxQueryLen() int {
	if c.MaxQueryLen <= 0 {
		return 1024
	}
	return c.MaxQueryLen
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return 5 * time.Second
	}
	return c.ReadTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 30 * time.Second
	}
	return c.WriteTimeout
}

// Server serves suggestion requests for one engine.
type Server struct {
	eng     Engine
	cfg     Config
	mux     *http.ServeMux
	http    *http.Server
	cache *cache.LRU[[]xclean.Suggestion] // nil when disabled
	// latency records every /suggest request; hitLatency and
	// missLatency split the samples by cache outcome so a warm cache
	// cannot mask the engine's true p50/p99 (hits answer in
	// microseconds, real engine runs in milliseconds — mixing them
	// made the combined percentiles meaningless).
	latency     eval.LatencyRecorder
	hitLatency  eval.LatencyRecorder
	missLatency eval.LatencyRecorder
}

// New builds a server around an engine.
func New(eng Engine, cfg Config) *Server {
	s := &Server{eng: eng, cfg: cfg, mux: http.NewServeMux()}
	if cfg.CacheSize > 0 {
		s.cache = cache.New[[]xclean.Suggestion](cfg.CacheSize)
	}
	s.mux.HandleFunc("/suggest", s.handleSuggest)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/click", s.handleClick)
	s.mux.HandleFunc("/topqueries", s.handleTopQueries)
	s.http = &http.Server{
		Addr:         cfg.addr(),
		Handler:      s.Handler(),
		ReadTimeout:  cfg.readTimeout(),
		WriteTimeout: cfg.writeTimeout(),
	}
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.logWrap(s.mux) }

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully (draining in-flight requests for up to 5 seconds).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.addr())
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.http.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		<-errc // http.ErrServerClosed
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return fmt.Errorf("server: %w", err)
	}
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.addr() }

// SuggestionJSON is the wire form of one suggestion.
type SuggestionJSON struct {
	Query        string   `json:"query"`
	Words        []string `json:"words"`
	Score        float64  `json:"score"`
	ResultType   string   `json:"resultType,omitempty"`
	Entities     int      `json:"entities"`
	EditDistance int      `json:"editDistance"`
	Witness      string   `json:"witness,omitempty"`
	Preview      string   `json:"preview,omitempty"`
}

// previewLen caps the preview text returned per suggestion.
const previewLen = 240

// SuggestResponse is the body of GET /suggest.
type SuggestResponse struct {
	Query       string           `json:"query"`
	Suggestions []SuggestionJSON `json:"suggestions"`
	TookMillis  float64          `json:"tookMillis"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	if len(q) > s.cfg.maxQueryLen() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("query longer than %d bytes", s.cfg.maxQueryLen()))
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = v
	}

	if s.cfg.QueryLog != nil {
		s.cfg.QueryLog.RecordQuery(q)
	}

	spaces := r.URL.Query().Get("spaces") == "1"
	start := time.Now()
	var sugs []xclean.Suggestion
	cacheKey := ""
	cached := false
	if s.cache != nil {
		cacheKey = q
		if spaces {
			cacheKey = "s\x00" + q
		}
		sugs, cached = s.cache.Get(cacheKey)
	}
	if !cached {
		if spaces {
			sugs = s.eng.SuggestWithSpaces(q)
		} else {
			sugs = s.eng.Suggest(q)
		}
		if s.cache != nil {
			s.cache.Put(cacheKey, sugs)
		}
	}
	took := time.Since(start)
	s.latency.Record(took)
	if cached {
		s.hitLatency.Record(took)
	} else {
		s.missLatency.Record(took)
	}
	if k > 0 && len(sugs) > k {
		sugs = sugs[:k]
	}

	resp := SuggestResponse{
		Query:       q,
		Suggestions: make([]SuggestionJSON, len(sugs)),
		TookMillis:  float64(time.Since(start).Microseconds()) / 1000,
	}
	withPreview := r.URL.Query().Get("preview") == "1"
	for i, sg := range sugs {
		resp.Suggestions[i] = SuggestionJSON{
			Query:        sg.Query,
			Words:        sg.Words,
			Score:        sg.Score,
			ResultType:   sg.ResultType,
			Entities:     sg.Entities,
			EditDistance: sg.EditDistance,
			Witness:      sg.Witness,
		}
		if withPreview {
			resp.Suggestions[i].Preview = s.eng.Preview(sg, previewLen)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, s.eng.Stats())
}

// Metrics is the body of GET /metricz. Latency covers every /suggest
// request; LatencyHits and LatencyMisses split the distribution by
// cache outcome, so LatencyMisses is the engine's true per-query
// latency even when most traffic is answered from a warm cache.
type Metrics struct {
	SuggestRequests int               `json:"suggestRequests"`
	CacheHits       int64             `json:"cacheHits"`
	CacheMisses     int64             `json:"cacheMisses"`
	CacheEntries    int               `json:"cacheEntries"`
	Latency         eval.LatencyStats `json:"latency"`
	LatencyHits     eval.LatencyStats `json:"latencyHits"`
	LatencyMisses   eval.LatencyStats `json:"latencyMisses"`
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.latency.Stats()
	m := Metrics{
		SuggestRequests: st.Count,
		Latency:         st,
		LatencyHits:     s.hitLatency.Stats(),
		LatencyMisses:   s.missLatency.Stats(),
	}
	if s.cache != nil {
		m.CacheHits, m.CacheMisses = s.cache.Stats()
		m.CacheEntries = s.cache.Len()
	}
	s.writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.QueryLog == nil {
		s.writeError(w, http.StatusNotImplemented, "no query log configured")
		return
	}
	d, err := xmltree.ParseDewey(r.URL.Query().Get("entity"))
	if err != nil || len(d) == 0 {
		s.writeError(w, http.StatusBadRequest, "entity must be a dot-form dewey code")
		return
	}
	s.cfg.QueryLog.RecordClick(d)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) handleTopQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.QueryLog == nil {
		s.writeError(w, http.StatusNotImplemented, "no query log configured")
		return
	}
	n := 10
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, s.cfg.QueryLog.TopQueries(n))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Printf("encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}

// logWrap logs one line per request when a logger is configured.
func (s *Server) logWrap(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(),
			sw.status, time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
