package server

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// GET /readyz is the readiness probe, distinct from /healthz liveness:
// a live process can still be unready (corpus not yet built, admission
// gate saturated, shard quorum lost), and a load balancer should stop
// routing to it without restarting it.

// ReadyResponse is the body of GET /readyz (HTTP 200 when Ready, 503
// otherwise).
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason says why the server is not ready ("" when it is).
	Reason string `json:"reason,omitempty"`
	// ShardsUp / ShardsTotal report coordinator coverage: shards with
	// at least one live replica over total shards.
	ShardsUp    int `json:"shardsUp,omitempty"`
	ShardsTotal int `json:"shardsTotal,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := s.readiness(r.Context())
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

// readiness evaluates the mode-specific readiness condition:
//
//   - coordinator: every shard has at least one replica answering its
//     health probe — with full coverage answers are complete even while
//     individual replicas are down, so the coordinator is routable; a
//     shard with zero live replicas means every answer would be
//     partial, and the load balancer should prefer another coordinator;
//   - catalog: the default corpus answers queries — serving now, or
//     evicted with a snapshot (the next request warm-starts it);
//   - standalone: the fixed engine exists;
//
// and, in every mode with local scans, that the admission gate is not
// saturated (a request arriving now would be shed with 429 — the load
// balancer should prefer a less-loaded replica).
func (s *Server) readiness(ctx context.Context) ReadyResponse {
	if s.cfg.Cluster != nil {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		covered, total := shardCoverage(s.cfg.Cluster.Health(hctx))
		resp := ReadyResponse{ShardsUp: covered, ShardsTotal: total}
		if covered < total {
			resp.Reason = "shard coverage lost (a shard has no live replica)"
			return resp
		}
		resp.Ready = true
		return resp
	}
	if s.adm.saturated() {
		return ReadyResponse{Reason: "admission gate saturated (next scan would shed)"}
	}
	if s.cfg.Catalog != nil {
		st, err := s.defaultCorpusStatus()
		if err != nil {
			return ReadyResponse{Reason: err.Error()}
		}
		if !st.Serving && st.Snapshot == "" {
			return ReadyResponse{Reason: "default corpus not serving: " + st.Name}
		}
		return ReadyResponse{Ready: true}
	}
	if s.eng == nil {
		return ReadyResponse{Reason: "no engine configured"}
	}
	return ReadyResponse{Ready: true}
}

// defaultCorpusStatus finds the corpus an unqualified /suggest would
// resolve to — the only corpus, or the one named "default" — without
// the side effects of catalog.Resolve (no access stamp, no revive).
func (s *Server) defaultCorpusStatus() (status struct {
	Name     string
	Serving  bool
	Snapshot string
}, err error) {
	list := s.cfg.Catalog.List()
	for _, st := range list {
		if len(list) == 1 || st.Name == "default" {
			status.Name, status.Serving, status.Snapshot = st.Name, st.Serving, st.Snapshot
			return status, nil
		}
	}
	return status, errors.New(`no default corpus (several corpora served, none named "default")`)
}
