package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"xclean"
	"xclean/internal/qlog"
)

// obsServer builds a server whose engine feeds a sink, as xserve wires
// it in production.
func obsServer(t *testing.T, cfg Config) (*httptest.Server, *xclean.Observer) {
	t.Helper()
	eng := testEngine(t)
	sink := xclean.NewObserver()
	eng.SetObserver(sink)
	cfg.Obs = sink
	ts := httptest.NewServer(New(eng, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, sink
}

func TestSuggestDebugSpans(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	resp, body := get(t, ts.URL+"/suggest?q=rose+fpga+architecure&debug=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Explain == nil {
		t.Fatal("debug=1 returned no explain")
	}
	ex := sr.Explain
	if ex.Query != "rose fpga architecure" {
		t.Errorf("explain query %q", ex.Query)
	}
	if len(ex.Spans) == 0 {
		t.Fatal("no spans")
	}
	stages := map[string]bool{}
	var sum int64
	for _, sp := range ex.Spans {
		if sp.DurationNs < 0 {
			t.Errorf("negative span %+v", sp)
		}
		stages[sp.Stage] = true
		sum += sp.DurationNs
	}
	for _, want := range []string{"tokenize", "variants", "scan", "rank"} {
		if !stages[want] {
			t.Errorf("stage %q missing from spans (have %v)", want, stages)
		}
	}
	if sum == 0 || sum > 2*ex.TookNs+int64(time.Millisecond) {
		t.Errorf("span sum %dns vs total %dns", sum, ex.TookNs)
	}
	if len(ex.Keywords) != 3 {
		t.Errorf("keyword table %+v", ex.Keywords)
	}
	if sr.RequestID == "" || resp.Header.Get("X-Request-Id") != sr.RequestID {
		t.Errorf("request id body %q header %q", sr.RequestID, resp.Header.Get("X-Request-Id"))
	}

	// Without debug=1 the trace must not leak.
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga+architecure")
	if strings.Contains(string(body), `"explain"`) {
		t.Errorf("explain leaked: %s", body)
	}
}

func TestDebugBypassesCache(t *testing.T) {
	ts, _ := obsServer(t, Config{CacheSize: 8})
	get(t, ts.URL+"/suggest?q=rose+fpga") // warm the cache
	_, body := get(t, ts.URL+"/suggest?q=rose+fpga&debug=1")
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Explain == nil {
		t.Error("debug request served from cache: no trace")
	}
}

func TestRequestIDAdopted(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/suggest?q=rose", nil)
	req.Header.Set("X-Request-Id", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-42" {
		t.Errorf("request id %q, want the client's", got)
	}
}

// TestPrometheusEndpoint scrapes twice and checks the exposition is
// well-formed with counters that only move up.
func TestPrometheusEndpoint(t *testing.T) {
	ts, _ := obsServer(t, Config{CacheSize: 8})

	counters := func() map[string]float64 {
		resp, body := get(t, ts.URL+"/metricz?format=prometheus")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		out := map[string]float64{}
		for _, ln := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
			if strings.HasPrefix(ln, "#") {
				continue
			}
			sp := strings.LastIndexByte(ln, ' ')
			if sp < 0 {
				t.Fatalf("malformed sample %q", ln)
			}
			v, err := strconv.ParseFloat(ln[sp+1:], 64)
			if err != nil {
				t.Fatalf("sample %q: %v", ln, err)
			}
			out[ln[:sp]] = v
		}
		return out
	}

	get(t, ts.URL+"/suggest?q=rose+fpga")
	first := counters()
	for _, want := range []string{
		"xclean_http_suggest_requests_total",
		"xclean_http_cache_misses_total",
		"xclean_engine_suggest_requests_total",
		"xclean_engine_postings_read_total",
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("metric %s missing", want)
		}
	}
	if first["xclean_engine_suggest_requests_total"] != 1 {
		t.Errorf("engine requests = %v after one miss", first["xclean_engine_suggest_requests_total"])
	}

	get(t, ts.URL+"/suggest?q=smith+databse")
	second := counters()
	for name, v := range first {
		if strings.Contains(name, "_total") || strings.Contains(name, "_count") ||
			strings.Contains(name, "_bucket") {
			if second[name] < v {
				t.Errorf("counter %s went backwards: %v -> %v", name, v, second[name])
			}
		}
	}
	if second["xclean_engine_suggest_requests_total"] != 2 {
		t.Errorf("engine requests = %v after two misses", second["xclean_engine_suggest_requests_total"])
	}
}

func TestMetriczJSONIncludesEngine(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	get(t, ts.URL+"/suggest?q=rose+fpga")
	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Engine == nil {
		t.Fatal("no engine snapshot")
	}
	if m.Engine.Queries != 1 || m.Engine.PostingsRead == 0 {
		t.Errorf("engine snapshot %+v", m.Engine)
	}
	if len(m.Engine.Stages) == 0 {
		t.Error("no stage histograms")
	}
}

func TestSlowLogRecords(t *testing.T) {
	var buf bytes.Buffer
	slow := qlog.NewSlowLog(&buf, time.Nanosecond) // everything is slow
	ts, sink := obsServer(t, Config{SlowLog: slow})

	_, body := get(t, ts.URL+"/suggest?q=rose+fpga")
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if slow.Count() != 1 {
		t.Fatalf("slow log count %d", slow.Count())
	}
	var rec qlog.SlowRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow log line not JSON: %v (%s)", err, buf.String())
	}
	if rec.Query != "rose fpga" || rec.RequestID != sr.RequestID {
		t.Errorf("record %+v vs response id %q", rec, sr.RequestID)
	}
	if rec.Explain == nil {
		t.Error("slow record carries no trace")
	}
	if got := sink.SlowQueries.Value(); got != 1 {
		t.Errorf("sink slow queries = %d", got)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	slow := qlog.NewSlowLog(&buf, time.Hour) // nothing is slow
	ts, _ := obsServer(t, Config{SlowLog: slow})
	get(t, ts.URL+"/suggest?q=rose+fpga")
	if slow.Count() != 0 {
		t.Errorf("slow log recorded a fast request: %s", buf.String())
	}
}
