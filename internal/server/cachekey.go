package server

import "encoding/binary"

// Suggestion-cache key modes. The mode byte separates the keyspaces of
// the three answer shapes a server can cache for the same (corpus,
// query) pair — they are computed differently and must never shadow
// one another.
const (
	// cacheModeQuery is a standalone suggest answer.
	cacheModeQuery byte = 'q'
	// cacheModeSpaces is a standalone answer with space-error search.
	cacheModeSpaces byte = 's'
	// cacheModeCluster is a coordinator scatter-gather answer.
	cacheModeCluster byte = 'c'
)

// suggestCacheKey encodes one suggestion-cache key as
//
//	uvarint(len(corpus)) || corpus || mode || query
//
// Every cache path (standalone, space search, coordinator) encodes
// through here, so per-corpus invalidation — ClearPrefix with
// corpusCachePrefix — reaches all of them by construction. The corpus
// component is length-prefixed rather than delimited: query text is
// user-controlled and may contain any byte (URL-encoded), so with a
// delimiter a default-corpus query could forge another corpus's
// prefix and be served, or dropped, across corpus boundaries.
func suggestCacheKey(mode byte, corpus, query string) string {
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(corpus)))
	b := make([]byte, 0, n+len(corpus)+1+len(query))
	b = append(b, pfx[:n]...)
	b = append(b, corpus...)
	b = append(b, mode)
	b = append(b, query...)
	return string(b)
}

// corpusCachePrefix is the shared prefix of every cache key of one
// corpus, across all modes. The uvarint length makes the prefix
// unambiguous: one varint encoding is never a proper prefix of
// another (the final byte of a varint has its continuation bit clear,
// so the encodings of two different lengths diverge within the
// varint), and equal lengths force byte-equal corpus names. Hence
// ClearPrefix(corpusCachePrefix(a)) can only ever drop corpus a's
// entries.
func corpusCachePrefix(corpus string) string {
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(corpus)))
	return string(pfx[:n]) + corpus
}
