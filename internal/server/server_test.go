package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xclean"
)

func testEngine(t *testing.T) *xclean.Engine {
	t.Helper()
	doc := `<dblp>
	  <article><author>rose</author><title>fpga architecture synthesis</title></article>
	  <article><author>rose</author><title>reconfigurable fpga design</title></article>
	  <article><author>smith</author><title>database indexing methods</title></article>
	  <article><author>jones</author><title>xml keyword search powerpoint</title></article>
	</dblp>`
	eng, err := xclean.Open(strings.NewReader(doc), xclean.Options{StoreText: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSuggestPreview(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/suggest?q=rose+fpga+architecure&preview=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	top := sr.Suggestions[0]
	if top.Witness == "" {
		t.Error("missing witness")
	}
	if !strings.Contains(top.Preview, "fpga") {
		t.Errorf("preview %q", top.Preview)
	}

	// Without preview=1 the field is omitted.
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga+architecure")
	if strings.Contains(string(body), `"preview"`) {
		t.Errorf("preview leaked: %s", body)
	}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		sb.Write(b[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestSuggestEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/suggest?q=rose+fpga+architecure")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad JSON: %v in %s", err, body)
	}
	if len(sr.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	top := sr.Suggestions[0]
	if top.Query != "rose fpga architecture" {
		t.Errorf("top=%q", top.Query)
	}
	if top.Entities < 1 {
		t.Error("entities < 1")
	}
	if top.ResultType == "" {
		t.Error("missing result type")
	}
	if sr.TookMillis < 0 {
		t.Error("negative timing")
	}
}

func TestSuggestK(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/suggest?q=fpga+desing&k=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Suggestions) > 1 {
		t.Errorf("k=1 violated: %d suggestions", len(sr.Suggestions))
	}
}

func TestSuggestSpaces(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/suggest?q=power+point&spaces=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sr.Suggestions {
		if s.Query == "powerpoint" {
			found = true
		}
	}
	if !found {
		t.Errorf("space-merge suggestion missing: %+v", sr.Suggestions)
	}
}

func TestSuggestErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/suggest", http.StatusBadRequest},                                // missing q
		{"/suggest?q=a&k=0", http.StatusBadRequest},                        // bad k
		{"/suggest?q=a&k=x", http.StatusBadRequest},                        // non-numeric k
		{"/suggest?q=" + strings.Repeat("a", 2000), http.StatusBadRequest}, // oversized
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+c.path)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d want %d", c.path, resp.StatusCode, c.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", c.path, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/suggest?q=a", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /suggest: status %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st xclean.IndexStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || st.DistinctTerms == 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestNotFound(t *testing.T) {
	ts := testServer(t)
	resp, _ := get(t, ts.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d want 404", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	queries := []string{"rose fpga", "databse indexing", "xml keyward", "fpga desing"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		q := queries[i%len(queries)]
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/suggest?q=" + strings.ReplaceAll(q, " ", "+"))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d for %q", resp.StatusCode, q)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(testEngine(t), Config{Addr: ln.Addr().String()})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	// The server must answer while running...
	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...and stop cleanly on cancel.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown timed out")
	}
}
