package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xclean/internal/cluster"
)

// coordServer stands up one real shard (testEngine over HTTP) and a
// coordinator server fanning out to it.
func coordServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	shard := httptest.NewServer(New(testEngine(t), Config{}).Handler())
	t.Cleanup(shard.Close)
	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(shard.URL),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cluster = coord
	ts := httptest.NewServer(New(nil, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The coordinator cannot run the space-error search (shapes change the
// keyword partition, which the scatter-gather wire format does not
// carry): /suggest?spaces=1 answers 501 with the standard JSON error
// envelope, not a plain-text error.
func TestCoordinatorSpacesNotImplementedJSON(t *testing.T) {
	ts := coordServer(t, Config{})
	resp, body := get(t, ts.URL+"/suggest?q=power+point&spaces=1")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("501 body is not JSON: %s (%v)", body, err)
	}
	if env.Error == "" {
		t.Errorf("501 envelope has no error field: %s", body)
	}
}

// debug=1 bypasses the coordinator cache symmetrically with the
// standalone handler: the read (per-shard statuses must reflect a real
// fan-out) and the write (a debug run must not populate entries).
func TestCoordinatorDebugBypassesCache(t *testing.T) {
	ts := coordServer(t, Config{CacheSize: 8})

	// A cold debug run fans out (shards present) and must not write.
	_, body := get(t, ts.URL+"/suggest?q=rose+fpga&debug=1")
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Shards) == 0 {
		t.Fatalf("debug fan-out reported no shard statuses: %s", body)
	}
	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheEntries != 0 {
		t.Fatalf("coordinator debug=1 wrote the cache: %d entries", m.CacheEntries)
	}

	// Warm the cache with a regular request, confirm the next regular
	// request is a hit (no shard statuses), then confirm debug still
	// fans out for real.
	get(t, ts.URL+"/suggest?q=rose+fpga")
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga")
	var hit SuggestResponse
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if len(hit.Shards) != 0 {
		t.Fatalf("second regular request was not served from the cache: %s", body)
	}
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&debug=1")
	var dbg SuggestResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Shards) == 0 {
		t.Errorf("debug=1 was served from the coordinator cache: %s", body)
	}
}

// A shard whose forwarded deadline is already dead answers 503 (the
// scan never starts) — the shard handler honors the coordinator's
// deadline inside the scan.
func TestShardSuggestHonorsDeadline(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{RequestTimeout: time.Nanosecond}).Handler())
	t.Cleanup(ts.Close)
	resp, body := get(t, ts.URL+"/shard/suggest?q=rose+fpga")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.CancelledScans == 0 {
		t.Error("cancelled shard scan not counted")
	}
}
