package server

import (
	"net/http"
	"strconv"
	"time"

	"xclean/internal/obs"
)

// Distributed-tracing plumbing: the per-request sampling decision, the
// span-tree assembly shared by the standalone and coordinator /suggest
// paths, and the /tracez inspection surface over the tail-sampling
// store.

// startTrace makes this request's sampling decision. With tracing
// enabled (Config.Trace set) it adopts a valid incoming W3C
// traceparent — same trace ID, upstream sampled flag honored in both
// directions — or, absent one, head-samples at Config.TraceSample. On
// a sampled request it allocates the server's root span ID, echoes the
// decision in the response `Traceparent` header so clients can
// correlate, and returns the trace context; otherwise it returns nil
// and the request allocates nothing trace-related. The second return
// is the client's span ID ("" when the trace starts here) — the parent
// of the server root span.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) (*obs.TraceContext, string) {
	if s.cfg.Trace == nil {
		return nil, ""
	}
	clientParent := ""
	var tid obs.TraceID
	if t, sid, sampled, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		if !sampled {
			return nil, ""
		}
		tid, clientParent = t, sid.String()
	} else if s.sampler.Sample() {
		tid = obs.NewTraceID()
	} else {
		return nil, ""
	}
	tc := &obs.TraceContext{TraceID: tid, Parent: obs.NewSpanID()}
	w.Header().Set("Traceparent", obs.Traceparent(tid, tc.Parent, true))
	return tc, clientParent
}

// finishTrace assembles a sampled request's completed span tree —
// root span tc.Parent under the client's span (if any), the given
// children beneath it — offers it to the tail-sampling store, and
// returns it for embedding in the slow-query record. A nil tc (not
// sampled) returns nil and does nothing.
func (s *Server) finishTrace(tc *obs.TraceContext, clientParent, name, rid, q, corpus string,
	start time.Time, took time.Duration, partial bool,
	children []*obs.SpanNode, attrs map[string]string) *obs.Trace {
	if tc == nil {
		return nil
	}
	root := &obs.SpanNode{
		SpanID:        tc.Parent.String(),
		ParentSpanID:  clientParent,
		Name:          name,
		Kind:          "server",
		StartUnixNano: start.UnixNano(),
		DurationNs:    took.Nanoseconds(),
		Attrs:         attrs,
	}
	for _, c := range children {
		root.AddChild(c)
	}
	t := &obs.Trace{
		TraceID:    tc.TraceID.String(),
		RequestID:  rid,
		Query:      q,
		Corpus:     corpus,
		DurationNs: took.Nanoseconds(),
		Partial:    partial,
		Root:       root,
	}
	s.cfg.Trace.Offer(t)
	return t
}

// observeHTTP records one /suggest request in the handler latency
// histogram, attaching a trace-ID exemplar to its bucket when the
// request was sampled.
func (s *Server) observeHTTP(took time.Duration, tc *obs.TraceContext, rid string) {
	if tc != nil {
		s.httpDur.ObserveDurationExemplar(took, tc.TraceID.String(), rid)
		return
	}
	s.httpDur.ObserveDuration(took)
}

// TracezResponse is the body of GET /tracez (without ?id=): the
// store's counters plus the newest retained trace summaries.
type TracezResponse struct {
	Stats  obs.TraceStoreStats `json:"stats"`
	Traces []obs.TraceSummary  `json:"traces"`
}

// handleTracez serves the trace store: GET /tracez lists retained
// traces newest-first (?n= caps the rows), GET /tracez?id=<traceId>
// returns one full stitched span tree.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Trace == nil {
		s.writeError(w, http.StatusNotImplemented, "tracing disabled (no trace store configured)")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		t := s.cfg.Trace.Get(id)
		if t == nil {
			s.writeError(w, http.StatusNotFound, "trace not retained (evicted, never sampled, or unknown id)")
			return
		}
		s.writeJSON(w, http.StatusOK, t)
		return
	}
	n := 0
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, TracezResponse{
		Stats:  s.cfg.Trace.Stats(),
		Traces: s.cfg.Trace.List(n),
	})
}
