package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xclean"
	"xclean/internal/catalog"
)

// liveWriteServer is a single-corpus catalog server built with stored
// text, so document removals work.
func liveWriteServer(t *testing.T) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	dir := t.TempDir()
	cat := catalog.New(catalog.Config{Options: xclean.Options{StoreText: true}})
	path := filepath.Join(dir, "a.xml")
	if err := os.WriteFile(path, []byte(catCorpusA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("a", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(nil, Config{Catalog: cat, CacheSize: 64}).Handler())
	t.Cleanup(ts.Close)
	return ts, cat
}

func postXML(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

func corpusStatus(t *testing.T, body []byte) catalog.Status {
	t.Helper()
	var st catalog.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	return st
}

func TestCorporaLiveWriteActions(t *testing.T) {
	ts, _ := liveWriteServer(t)

	// Prime the suggestion cache with a query the corpus cannot answer
	// yet, so the post-write re-query also proves cache invalidation.
	resp, body := get(t, ts.URL+"/suggest?q=quantum+processing&corpus=a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-write suggest: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"suggestions":[]`) {
		t.Fatalf("premature content: %s", body)
	}

	// adddoc: the XML body becomes document 1.3, searchable immediately.
	resp, body = postXML(t, ts.URL+"/corpora?name=a&action=adddoc",
		`<article><author>wei zhang</author><title>quantum query processing</title></article>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adddoc: %d %s", resp.StatusCode, body)
	}
	st := corpusStatus(t, body)
	if st.Docs != 2 || st.Seg.TailDocs != 1 || st.Seg.Segments != 1 {
		t.Fatalf("status after add: docs=%d seg=%+v", st.Docs, st.Seg)
	}
	resp, body = get(t, ts.URL+"/suggest?q=quantum+processing&corpus=a")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"witness":"1.3"`) {
		t.Fatalf("added content not served (cache stale?): %d %s", resp.StatusCode, body)
	}

	// removedoc of a sealed original leaves a tombstone.
	resp, body = post(t, ts.URL+"/corpora?name=a&action=removedoc&doc=1.1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("removedoc: %d %s", resp.StatusCode, body)
	}
	st = corpusStatus(t, body)
	if st.Seg.Tombstones != 1 {
		t.Fatalf("status after remove: %+v", st.Seg)
	}
	resp, body = get(t, ts.URL+"/suggest?q=architecture+synthesis&corpus=a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-remove suggest: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"suggestions":[]`) {
		t.Fatalf("removed content still served: %s", body)
	}

	// compact and flush both answer with the fresh status.
	resp, body = post(t, ts.URL+"/corpora?name=a&action=compact")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/corpora?name=a&action=flush")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d %s", resp.StatusCode, body)
	}
	st = corpusStatus(t, body)
	if st.Seg.Segments != 1 || st.Seg.TailDocs != 0 || st.Seg.Tombstones != 0 {
		t.Fatalf("status after flush: %+v", st.Seg)
	}
	// Flushed corpus still answers from the flattened index.
	resp, body = get(t, ts.URL+"/suggest?q=quantum+processing&corpus=a")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"entities":1`) {
		t.Fatalf("post-flush suggest: %d %s", resp.StatusCode, body)
	}
}

func TestCorporaLiveWriteErrors(t *testing.T) {
	ts, _ := liveWriteServer(t)

	// Malformed XML body.
	if resp, _ := postXML(t, ts.URL+"/corpora?name=a&action=adddoc", "<broken>"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed adddoc: %d", resp.StatusCode)
	}
	// removedoc without and with a bad code.
	if resp, _ := post(t, ts.URL+"/corpora?name=a&action=removedoc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("removedoc without doc: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/corpora?name=a&action=removedoc&doc=1.99"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("removedoc absent doc: %d", resp.StatusCode)
	}
	// Unknown corpus maps to 404 for every action.
	for _, u := range []string{
		"/corpora?name=nope&action=adddoc",
		"/corpora?name=nope&action=removedoc&doc=1.1",
		"/corpora?name=nope&action=compact",
		"/corpora?name=nope&action=flush",
	} {
		if resp, _ := post(t, ts.URL+u); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d", u, resp.StatusCode)
		}
	}
}
