package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xclean/internal/catalog"
	"xclean/internal/qlog"
)

const catCorpusA = `<dblp>
  <article><author>jonathan rose</author><title>fpga architecture synthesis</title></article>
  <article><author>jonathan rose</author><title>reconfigurable fpga routing</title></article>
</dblp>`

const catCorpusB = `<bib>
  <paper><author>alan turing</author><title>computing machinery intelligence</title></paper>
  <paper><author>claude shannon</author><title>mathematical theory communication</title></paper>
</bib>`

// catalogServer builds a two-corpus catalog ("a" from catCorpusA, "b"
// from catCorpusB) fronted by an httptest server, returning both plus
// the directory holding the corpus source files.
func catalogServer(t *testing.T, cfg Config) (*httptest.Server, *catalog.Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	cat := catalog.New(catalog.Config{SnapshotDir: filepath.Join(dir, "snapshots")})
	for name, content := range map[string]string{"a": catCorpusA, "b": catCorpusB} {
		path := filepath.Join(dir, name+".xml")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(name, path); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Catalog = cat
	ts := httptest.NewServer(New(nil, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, cat, dir
}

func TestCatalogSuggestRouting(t *testing.T) {
	ts, _, _ := catalogServer(t, Config{})

	// ?corpus= routes to the named corpus and the response names it.
	resp, body := get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus=a status %d: %s", resp.StatusCode, body)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Corpus != "a" {
		t.Errorf("corpus %q", sr.Corpus)
	}
	if len(sr.Suggestions) == 0 {
		t.Fatal("no suggestions from corpus a")
	}

	// The same query against corpus b must not see corpus a's content.
	_, body = get(t, ts.URL+"/suggest?q=rose+fpga&corpus=b")
	if strings.Contains(string(body), "fpga architecture") {
		t.Errorf("corpus b answered with corpus a content: %s", body)
	}

	// With two corpora registered, omitting ?corpus= is ambiguous.
	resp, _ = get(t, ts.URL+"/suggest?q=rose")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous corpus: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/suggest?q=rose&corpus=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown corpus: status %d", resp.StatusCode)
	}

	// /stats resolves per corpus too.
	resp, body = get(t, ts.URL+"/stats?corpus=b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st struct{ Nodes, DistinctTerms int }
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || st.DistinctTerms == 0 {
		t.Errorf("corpus b stats empty: %+v", st)
	}
	resp, _ = get(t, ts.URL+"/stats?corpus=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stats unknown corpus: status %d", resp.StatusCode)
	}
}

func TestCatalogSingleCorpusDefault(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.New(catalog.Config{SnapshotDir: filepath.Join(dir, "snapshots")})
	path := filepath.Join(dir, "only.xml")
	if err := os.WriteFile(path, []byte(catCorpusA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("only", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(nil, Config{Catalog: cat}).Handler())
	defer ts.Close()

	// A lone corpus serves requests that name no corpus.
	resp, body := get(t, ts.URL+"/suggest?q=rose+fpga")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SuggestResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Corpus != "only" {
		t.Errorf("corpus %q", sr.Corpus)
	}
}

func TestCatalogCacheIsolation(t *testing.T) {
	ts, _, _ := catalogServer(t, Config{CacheSize: 32})

	// Warm the cache with corpus a, then issue the identical query text
	// against corpus b: a shared cache key would leak a's suggestions.
	_, bodyA := get(t, ts.URL+"/suggest?q=turing+machinery&corpus=a")
	_, bodyB := get(t, ts.URL+"/suggest?q=turing+machinery&corpus=b")
	var sa, sb SuggestResponse
	if err := json.Unmarshal(bodyA, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.Suggestions) == 0 {
		t.Fatal("corpus b found nothing for its own content")
	}
	if len(sa.Suggestions) == len(sb.Suggestions) {
		t.Errorf("corpus a and b returned identical suggestion counts %d — cache crossed corpora?",
			len(sa.Suggestions))
	}
}

func TestCorporaAdminEndpoints(t *testing.T) {
	ts, _, dir := catalogServer(t, Config{})

	// GET lists both corpora with their state.
	resp, body := get(t, ts.URL+"/corpora")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list []catalog.Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listed %d corpora", len(list))
	}
	for _, st := range list {
		if st.State != "ready" || !st.Serving {
			t.Errorf("corpus %s: state %s serving %v", st.Name, st.State, st.Serving)
		}
	}

	// POST with doc= registers a third corpus.
	path := filepath.Join(dir, "c.xml")
	if err := os.WriteFile(path, []byte(catCorpusB), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/corpora?name=c&doc="+path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d: %s", resp.StatusCode, body)
	}
	var st catalog.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "c" || st.Docs != 1 {
		t.Errorf("added corpus %+v", st)
	}
	resp, _ = get(t, ts.URL+"/suggest?q=turing&corpus=c")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("new corpus not serving: status %d", resp.StatusCode)
	}

	// Duplicate name conflicts.
	resp, _ = post(t, ts.URL+"/corpora?name=c&doc="+path)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate add: status %d", resp.StatusCode)
	}

	// Reload succeeds and reports status.
	resp, body = post(t, ts.URL+"/corpora?name=a&action=reload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Builds < 2 {
		t.Errorf("builds %d after reload", st.Builds)
	}

	// DELETE removes; the corpus stops serving.
	resp, _ = del(t, ts.URL+"/corpora?name=c")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/suggest?q=turing&corpus=c")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("removed corpus still serving: status %d", resp.StatusCode)
	}

	// Parameter validation.
	for url, want := range map[string]int{
		"/corpora?name=":                   http.StatusBadRequest,
		"/corpora?name=x":                  http.StatusBadRequest,
		"/corpora?name=x&action=zap":       http.StatusBadRequest,
		"/corpora?name=nope&action=reload": http.StatusNotFound,
	} {
		resp, _ = post(t, ts.URL+url)
		if resp.StatusCode != want {
			t.Errorf("POST %s: status %d, want %d", url, resp.StatusCode, want)
		}
	}
	resp, _ = get(t, ts.URL+"/suggest?q=rose&corpus=a")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("corpus a broken after admin churn: status %d", resp.StatusCode)
	}
}

// TestFailedReloadZeroFailedRequests is the acceptance criterion: a
// rebuild that fails to parse leaves the previously-served corpus
// answering /suggest with zero failed requests, while the admin call
// itself reports the failure.
func TestFailedReloadZeroFailedRequests(t *testing.T) {
	ts, _, dir := catalogServer(t, Config{})

	var stop atomic.Bool
	var failures atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(ts.URL + "/suggest?q=rose+fpga&corpus=a")
				if err != nil {
					failures.Add(1)
					continue
				}
				body := readAll(t, resp)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("suggest during failed reload: status %d: %s", resp.StatusCode, body)
				} else {
					served.Add(1)
				}
			}
		}()
	}

	// Corrupt corpus a's source, then reload it repeatedly under load.
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<dblp><broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, body := post(t, ts.URL+"/corpora?name=a&action=reload")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("corrupt reload status %d: %s", resp.StatusCode, body)
		}
		var fail struct {
			Error  string         `json:"error"`
			Corpus catalog.Status `json:"corpus"`
		}
		if err := json.Unmarshal(body, &fail); err != nil {
			t.Fatal(err)
		}
		if fail.Error == "" || fail.Corpus.State != "failed" || !fail.Corpus.Serving {
			t.Errorf("failure body %+v", fail)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Errorf("%d failed requests during failed reloads", n)
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served during the test")
	}

	// Repairing the source recovers the corpus via the same endpoint.
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(catCorpusB), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/corpora?name=a&action=reload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery reload status %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/suggest?q=turing+machinery&corpus=a")
	if !strings.Contains(string(body), "turing") {
		t.Errorf("recovered corpus serves stale content: %s", body)
	}
}

func TestCatalogMetricz(t *testing.T) {
	ts, _, _ := catalogServer(t, Config{})
	get(t, ts.URL+"/suggest?q=rose&corpus=a")

	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Corpora) != 2 {
		t.Fatalf("metricz lists %d corpora", len(m.Corpora))
	}
	if _, ok := m.CorpusEngines["a"]; !ok {
		t.Errorf("no engine snapshot for corpus a: %v", m.CorpusEngines)
	}

	_, body = get(t, ts.URL+"/metricz?format=prometheus")
	text := string(body)
	for _, want := range []string{
		`xclean_engine_suggest_requests_total{corpus="a"} 1`,
		`xclean_engine_catalog_serving{corpus="a"} 1`,
		`xclean_engine_catalog_builds_total{corpus="b"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestCatalogSlowLogCarriesCorpus(t *testing.T) {
	var slow bytes.Buffer
	var logBuf bytes.Buffer
	ts, _, _ := catalogServer(t, Config{
		SlowLog: qlog.NewSlowLog(&slow, time.Nanosecond),
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	resp, _ := get(t, ts.URL+"/suggest?q=rose+fpga&corpus=a")
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("no request ID")
	}
	line := slow.String()
	for _, want := range []string{`"corpus":"a"`, fmt.Sprintf(`"requestId":%q`, rid)} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log %q missing %s", line, want)
		}
	}
	if !strings.Contains(logBuf.String(), "corpus=a") {
		t.Errorf("slow-query warn line missing corpus: %s", logBuf.String())
	}
}

func post(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

func del(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}
