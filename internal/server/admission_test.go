package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xclean"
)

// blockEngine is an Engine whose scans park until release is closed
// (or their context dies), so tests can hold a request in flight
// deterministically.
type blockEngine struct {
	entered chan struct{} // one send per scan that has started
	release chan struct{} // close to let parked scans finish
	// ignoreCtx parks scans on release alone, holding the admission
	// slot past any request deadline.
	ignoreCtx bool
}

func newBlockEngine() *blockEngine {
	return &blockEngine{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (e *blockEngine) SuggestContext(ctx context.Context, q string) ([]xclean.Suggestion, error) {
	e.entered <- struct{}{}
	if e.ignoreCtx {
		<-e.release
		return []xclean.Suggestion{{Query: q}}, nil
	}
	select {
	case <-e.release:
		return []xclean.Suggestion{{Query: q}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *blockEngine) SuggestWithSpacesContext(ctx context.Context, q string) ([]xclean.Suggestion, error) {
	return e.SuggestContext(ctx, q)
}

func (e *blockEngine) SuggestExplainedContext(ctx context.Context, q string) ([]xclean.Suggestion, *xclean.Explain, error) {
	s, err := e.SuggestContext(ctx, q)
	return s, nil, err
}

func (e *blockEngine) SuggestWithSpacesExplainedContext(ctx context.Context, q string) ([]xclean.Suggestion, *xclean.Explain, error) {
	return e.SuggestExplainedContext(ctx, q)
}

func (e *blockEngine) Stats() xclean.IndexStats { return xclean.IndexStats{} }

func (e *blockEngine) Preview(s xclean.Suggestion, maxLen int) string { return "" }

func admissionServer(t *testing.T, eng Engine, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(eng, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// With one in-flight slot and no queue, a second concurrent request is
// shed: 429, Retry-After, the JSON error envelope, and a bumped sheds
// counter — while the admitted request completes normally.
func TestAdmissionShed429(t *testing.T) {
	eng := newBlockEngine()
	ts := admissionServer(t, eng, Config{MaxInflight: 1})

	firstStatus := make(chan int)
	go func() {
		resp, err := http.Get(ts.URL + "/suggest?q=one")
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	<-eng.entered // the first scan is parked in flight

	resp, body := get(t, ts.URL+"/suggest?q=two")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\"", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
		t.Errorf("shed body is not the JSON error envelope: %s (err=%v)", body, err)
	}

	close(eng.release)
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("admitted request finished with status %d", st)
	}

	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.Sheds != 1 {
		t.Errorf("sheds=%d, want 1", m.Admission.Sheds)
	}
	if m.Admission.MaxInflight != 1 || m.Admission.MaxQueue != 0 {
		t.Errorf("bounds %d/%d echoed wrong", m.Admission.MaxInflight, m.Admission.MaxQueue)
	}
	if m.Admission.Inflight != 0 || m.Admission.QueueDepth != 0 {
		t.Errorf("gauges not drained: %+v", m.Admission)
	}
}

// A request beyond MaxInflight but within MaxQueue waits for the slot
// and is then served, not shed.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	eng := newBlockEngine()
	ts := admissionServer(t, eng, Config{MaxInflight: 1, MaxQueue: 1})

	status := make(chan int, 2)
	for _, q := range []string{"one", "two"} {
		go func(q string) {
			resp, err := http.Get(ts.URL + "/suggest?q=" + q)
			if err != nil {
				status <- -1
				return
			}
			resp.Body.Close()
			status <- resp.StatusCode
		}(q)
	}
	<-eng.entered // one request scanning; the other is queued (or about to be)

	// Wait until the second request is visibly parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, ts.URL+"/metricz")
		var m Metrics
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		if m.Admission.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second request never queued: %+v", m.Admission)
		}
		time.Sleep(time.Millisecond)
	}

	close(eng.release)
	for i := 0; i < 2; i++ {
		if st := <-status; st != http.StatusOK {
			t.Fatalf("request %d finished with status %d", i, st)
		}
	}

	_, body := get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.Sheds != 0 {
		t.Errorf("queued request was shed: %+v", m.Admission)
	}
}

// RequestTimeout cancels a scan mid-flight: the engine sees its
// context die, the server answers 503 with Retry-After, and the
// cancelled-scan counter moves.
func TestRequestTimeoutCancelsScan(t *testing.T) {
	eng := newBlockEngine() // release is never closed: only the deadline can end the scan
	ts := admissionServer(t, eng, Config{RequestTimeout: 30 * time.Millisecond})

	resp, body := get(t, ts.URL+"/suggest?q=slow")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\"", ra)
	}

	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.CancelledScans != 1 {
		t.Errorf("cancelledScans=%d, want 1", m.Admission.CancelledScans)
	}
	if m.Admission.RequestTimeoutMillis != 30 {
		t.Errorf("requestTimeoutMillis=%d, want 30", m.Admission.RequestTimeoutMillis)
	}
}

// A request that times out while waiting in the admission queue gets
// 503 without ever reaching the engine, and is not counted as a shed.
func TestAdmissionQueueWaitTimeout(t *testing.T) {
	eng := newBlockEngine()
	// The first scan must hold its slot past the second request's
	// deadline, or freeing the slot could race the queue timeout.
	eng.ignoreCtx = true
	ts := admissionServer(t, eng, Config{
		MaxInflight:    1,
		MaxQueue:       1,
		RequestTimeout: 40 * time.Millisecond,
	})

	first := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL + "/suggest?q=one")
		if err == nil {
			resp.Body.Close()
		}
		close(first)
	}()
	<-eng.entered

	resp, body := get(t, ts.URL+"/suggest?q=two")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}

	_, body = get(t, ts.URL+"/metricz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.Sheds != 0 {
		t.Errorf("queue-wait timeout counted as shed: %+v", m.Admission)
	}
	if len(eng.entered) != 0 {
		t.Error("timed-out request reached the engine")
	}

	close(eng.release) // let the parked first scan finish
	<-first
}

// Cache hits bypass admission entirely: a full server still answers
// cached queries.
func TestCacheHitsBypassAdmission(t *testing.T) {
	eng := newBlockEngine()
	ts := admissionServer(t, eng, Config{MaxInflight: 1, CacheSize: 8})

	// Warm the cache while the server is idle.
	done := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL + "/suggest?q=warm")
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-eng.entered
	close(eng.release)
	<-done

	// Park a new scan so the only in-flight slot is taken...
	eng.release = make(chan struct{})
	blocked := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL + "/suggest?q=other")
		if err == nil {
			resp.Body.Close()
		}
		close(blocked)
	}()
	<-eng.entered
	defer func() { close(eng.release); <-blocked }()

	// ...and the cached query must still be served, not shed.
	resp, body := get(t, ts.URL+"/suggest?q=warm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached query under full admission: status %d: %s", resp.StatusCode, body)
	}
}
