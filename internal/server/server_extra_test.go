package server

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestListenAndServeBadAddr(t *testing.T) {
	s := New(testEngine(t), Config{Addr: "256.256.256.256:99999"})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.ListenAndServe(ctx); err == nil {
		t.Error("bad address accepted")
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(New(testEngine(t), Config{Logger: logger}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/suggest?q=rose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{"method=GET", `uri="/suggest?q=rose"`, "status=200", "requestId="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}

	// Error statuses are logged with their code.
	buf.Reset()
	resp, err = http.Get(ts.URL + "/suggest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "status=400") {
		t.Errorf("log line %q", buf.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.addr() != ":8080" || c.maxQueryLen() != 1024 {
		t.Errorf("defaults: %q %d", c.addr(), c.maxQueryLen())
	}
	if c.readTimeout() != 5*time.Second || c.writeTimeout() != 30*time.Second {
		t.Errorf("timeout defaults: %v %v", c.readTimeout(), c.writeTimeout())
	}
	if s := New(testEngine(t), Config{Addr: ":9999"}); s.Addr() != ":9999" {
		t.Errorf("Addr()=%q", s.Addr())
	}
}
