package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xclean/internal/qlog"
	"xclean/internal/tokenizer"
)

func testServerWithLog(t *testing.T) (*httptest.Server, *qlog.Log) {
	t.Helper()
	l := qlog.New(tokenizer.Options{})
	ts := httptest.NewServer(New(testEngine(t), Config{QueryLog: l}).Handler())
	t.Cleanup(ts.Close)
	return ts, l
}

func TestSuggestRecordsQuery(t *testing.T) {
	ts, l := testServerWithLog(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/suggest?q=rose+fpga")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := l.QueryCount("rose fpga"); got != 3 {
		t.Errorf("logged count=%d want 3", got)
	}
}

func TestClickEndpoint(t *testing.T) {
	ts, l := testServerWithLog(t)
	resp, err := http.Post(ts.URL+"/click?entity=1.2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	priors := l.EntityPriors()
	if len(priors) != 1 {
		t.Errorf("priors=%v", priors)
	}

	// Errors: GET, malformed dewey, missing entity.
	resp, _ = http.Get(ts.URL + "/click?entity=1.2")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /click: status %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/click?entity=bogus", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad dewey: status %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/click", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing entity: status %d", resp.StatusCode)
	}
}

func TestTopQueriesEndpoint(t *testing.T) {
	ts, _ := testServerWithLog(t)
	for i := 0; i < 2; i++ {
		resp, _ := http.Get(ts.URL + "/suggest?q=fpga+design")
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/topqueries?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []qlog.QueryFreq
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Query != "fpga design" || rows[0].Count != 2 {
		t.Errorf("rows=%v", rows)
	}
}

func TestQlogEndpointsWithoutLog(t *testing.T) {
	ts := testServer(t) // no QueryLog
	resp, _ := http.Post(ts.URL+"/click?entity=1.2", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("/click without log: %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/topqueries")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("/topqueries without log: %d", resp.StatusCode)
	}
}

func TestTopQueriesBadN(t *testing.T) {
	ts, _ := testServerWithLog(t)
	for _, bad := range []string{"0", "-1", "x"} {
		resp, _ := http.Get(ts.URL + "/topqueries?n=" + bad)
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "positive") {
			t.Errorf("n=%s: status %d body %q", bad, resp.StatusCode, body)
		}
	}
}
