package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
)

// admission is the server's load-shedding layer: a bounded in-flight
// semaphore plus a bounded wait queue in front of every engine scan.
// Requests beyond MaxInflight wait in the queue (still holding their
// deadline); requests beyond MaxInflight+MaxQueue are shed immediately
// with 429 Too Many Requests, so overload turns into fast, explicit
// rejections instead of an unbounded goroutine pileup. Cache hits
// never consume a slot — only real engine work is admitted.
type admission struct {
	// sem has one token per permitted in-flight scan; nil disables the
	// concurrency bound (the gauges and counters still work).
	sem      chan struct{}
	maxQueue int

	inflight atomic.Int64
	queued   atomic.Int64
	sheds    atomic.Int64
	// cancels counts engine scans abandoned via context cancellation
	// (client gone or deadline expired mid-scan).
	cancels atomic.Int64
}

func newAdmission(maxInflight, maxQueue int) *admission {
	a := &admission{maxQueue: maxQueue}
	if maxInflight > 0 {
		a.sem = make(chan struct{}, maxInflight)
	}
	return a
}

// admitResult says how an acquire attempt ended.
type admitResult int

const (
	// admitOK: a slot was acquired; the caller must call release().
	admitOK admitResult = iota
	// admitShed: in-flight and queue are both full — shed with 429.
	admitShed
	// admitTimeout: the request's context died while waiting in the
	// queue — answer 503, the work was never started.
	admitTimeout
)

// acquire claims an in-flight slot, waiting in the bounded queue when
// the semaphore is full. On admitOK the returned release function must
// be called exactly once.
func (a *admission) acquire(ctx context.Context) (func(), admitResult) {
	if a.sem == nil {
		a.inflight.Add(1)
		return func() { a.inflight.Add(-1) }, admitOK
	}
	release := func() {
		<-a.sem
		a.inflight.Add(-1)
	}
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return release, admitOK
	default:
	}
	// Full: join the wait queue if it has room. The transient overshoot
	// of Add-then-check is bounded by the number of concurrently
	// arriving requests, each of which sheds itself.
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.sheds.Add(1)
		return nil, admitShed
	}
	select {
	case a.sem <- struct{}{}:
		a.queued.Add(-1)
		a.inflight.Add(1)
		return release, admitOK
	case <-ctx.Done():
		a.queued.Add(-1)
		return nil, admitTimeout
	}
}

// retryAfterSeconds is the Retry-After hint on 429/503 answers. Shed
// load should retry after roughly one request's worth of backoff; the
// exact value matters less than its presence (well-behaved clients and
// load balancers honor it).
const retryAfterSeconds = 1

// writeShed answers a shed request: 429 Too Many Requests with a
// Retry-After hint and the standard JSON error envelope.
func (s *Server) writeShed(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.writeError(w, http.StatusTooManyRequests, "server overloaded; retry later")
}

// writeOverdeadline answers a request whose context died before or
// during the engine scan: 503 with a Retry-After hint. The distinction
// from 429 matters to load balancers — 429 means "back off", 503 means
// "this instance is slow or the client gave up".
func (s *Server) writeOverdeadline(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.writeError(w, http.StatusServiceUnavailable, "request cancelled or deadline exceeded: "+err.Error())
}

// AdmissionMetrics is the admission-control section of GET /metricz.
type AdmissionMetrics struct {
	// Inflight is the number of engine scans executing right now.
	Inflight int64 `json:"inflight"`
	// QueueDepth is the number of requests waiting for a slot.
	QueueDepth int64 `json:"queueDepth"`
	// MaxInflight and MaxQueue echo the configured bounds (0 =
	// unlimited / no queue).
	MaxInflight int `json:"maxInflight"`
	MaxQueue    int `json:"maxQueue"`
	// Sheds counts requests rejected with 429.
	Sheds int64 `json:"sheds"`
	// CancelledScans counts engine scans abandoned mid-flight because
	// the request's deadline expired or its client disconnected.
	CancelledScans int64 `json:"cancelledScans"`
	// RequestTimeoutMillis echoes the standalone per-request timeout
	// (0 = none).
	RequestTimeoutMillis int64 `json:"requestTimeoutMillis,omitempty"`
}

func (s *Server) admissionMetrics() AdmissionMetrics {
	return AdmissionMetrics{
		Inflight:             s.adm.inflight.Load(),
		QueueDepth:           s.adm.queued.Load(),
		MaxInflight:          s.cfg.MaxInflight,
		MaxQueue:             s.cfg.MaxQueue,
		Sheds:                s.adm.sheds.Load(),
		CancelledScans:       s.adm.cancels.Load(),
		RequestTimeoutMillis: s.cfg.RequestTimeout.Milliseconds(),
	}
}

// requestCtx derives the engine-call context of one standalone
// request: the request's own context (which dies when the client
// disconnects), capped by Config.RequestTimeout when set. The
// coordinator path keeps its own budget (cluster.Config.Timeout) and
// does not stack this one on top.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// isCtxErr reports whether err is a context cancellation/expiry.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// saturated reports whether a newly arriving engine scan would be
// shed right now: every in-flight slot and every queue slot is taken.
// It is the readiness probe's view of the admission gate — advisory
// only (the gauges race with admissions), never used to admit.
func (a *admission) saturated() bool {
	if a.sem == nil {
		return false
	}
	return len(a.sem) == cap(a.sem) && a.queued.Load() >= int64(a.maxQueue)
}
