package phonetic

import (
	"testing"
	"testing/quick"
)

// Canonical Soundex examples (US National Archives rules).
func TestSoundexCanonical(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261", // h is transparent: s and c merge
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"Jackson":  "J250",
		"a":        "A000",
		"hw":       "H000",
	}
	for word, want := range cases {
		if got := Soundex(word); got != want {
			t.Errorf("Soundex(%q)=%q want %q", word, got, want)
		}
	}
}

func TestSoundexEquivalents(t *testing.T) {
	pairs := [][2]string{
		{"smith", "smyth"},
		{"catherine", "kathryn"}, // different first letter: NOT equal
	}
	if Soundex(pairs[0][0]) != Soundex(pairs[0][1]) {
		t.Errorf("smith/smyth should share a code")
	}
	if Soundex(pairs[1][0]) == Soundex(pairs[1][1]) {
		t.Errorf("catherine/kathryn must differ (first letter)")
	}
}

func TestSoundexEdgeCases(t *testing.T) {
	if Soundex("") != "" {
		t.Error("empty word should have empty code")
	}
	if Soundex("123") != "" {
		t.Error("non-letter word should have empty code")
	}
	if got := Soundex("  42x"); got != "X000" {
		t.Errorf("leading junk: %q", got)
	}
	if got := Soundex("schütze"); len(got) != 4 {
		t.Errorf("unicode interior: %q", got)
	}
}

// Properties: codes are 4 chars, uppercase letter + 3 digits; case
// insensitive.
func TestSoundexProperties(t *testing.T) {
	f := func(s string) bool {
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 || code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIndexSearch(t *testing.T) {
	ix := Build([]string{"smith", "smyth", "schmidt", "jones", "smith"})
	got := ix.Search("smith")
	// smith, smyth, and schmidt all code to S530.
	if len(got) != 2 || got[0] != "smyth" || got[1] != "schmidt" {
		t.Errorf("Search(smith)=%v", got)
	}
	// The query itself is excluded even if absent from the vocabulary.
	got = ix.Search("smithe")
	found := map[string]bool{}
	for _, w := range got {
		found[w] = true
	}
	if !found["smith"] || !found["smyth"] {
		t.Errorf("Search(smithe)=%v", got)
	}
	if ix.Search("") != nil {
		t.Error("empty query should match nothing")
	}
	if ix.Size() == 0 {
		t.Error("index has no buckets")
	}
}
