// Package phonetic implements American Soundex and a code-bucketed
// vocabulary index. Section VI-A of the XClean paper notes the
// framework "can be easily extended to include cognitive errors by
// properly defining the variant set var(q) and the probability P(q|w)
// (e.g., soundex, ...)"; this package supplies that variant source:
// words sounding like a query keyword join its candidate set with a
// fixed phonetic edit penalty.
package phonetic

import "strings"

// Soundex returns the 4-character American Soundex code of word, or ""
// for words without a leading letter. Standard rules: keep the first
// letter; map consonants to digit classes; collapse adjacent equal
// codes; vowels (a e i o u y) break runs; h and w are transparent.
func Soundex(word string) string {
	word = strings.ToLower(word)
	// Find the first ASCII letter.
	start := -1
	for i := 0; i < len(word); i++ {
		if word[i] >= 'a' && word[i] <= 'z' {
			start = i
			break
		}
	}
	if start < 0 {
		return ""
	}

	first := word[start]
	code := [4]byte{first - 'a' + 'A', '0', '0', '0'}
	n := 1
	prev := soundexClass(first)
	for i := start + 1; i < len(word) && n < 4; i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			prev = 0
			continue
		}
		cls := soundexClass(c)
		switch {
		case cls == 0: // vowel or y: breaks runs
			prev = 0
		case cls == transparent: // h, w: invisible, run continues
		case cls != prev:
			code[n] = '0' + cls
			n++
			prev = cls
		}
	}
	return string(code[:])
}

const transparent = 9

// soundexClass maps a lowercase letter to its Soundex digit class,
// 0 for vowels and y, transparent for h and w.
func soundexClass(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	case 'h', 'w':
		return transparent
	default:
		return 0
	}
}

// Index buckets a vocabulary by Soundex code.
type Index struct {
	buckets map[string][]string
}

// Build indexes the vocabulary (duplicates are stored once; words that
// produce no code are skipped).
func Build(words []string) *Index {
	ix := &Index{buckets: make(map[string][]string)}
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		if seen[w] {
			continue
		}
		seen[w] = true
		code := Soundex(w)
		if code == "" {
			continue
		}
		ix.buckets[code] = append(ix.buckets[code], w)
	}
	return ix
}

// Search returns the vocabulary words sharing q's Soundex code,
// excluding q itself. Callers must not mutate the result.
func (ix *Index) Search(q string) []string {
	code := Soundex(q)
	if code == "" {
		return nil
	}
	bucket := ix.buckets[code]
	out := make([]string, 0, len(bucket))
	for _, w := range bucket {
		if w != q {
			out = append(out, w)
		}
	}
	return out
}

// Size is the number of distinct codes.
func (ix *Index) Size() int { return len(ix.buckets) }
