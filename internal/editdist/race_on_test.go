//go:build race

package editdist

// Under the race detector sync.Pool deliberately drops a fraction of
// Puts, so the pooled fallback cannot be allocation-free there.
const raceEnabled = true
