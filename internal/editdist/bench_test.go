package editdist

import "testing"

// Representative verification pairs: FastSS candidate checks are
// short vocabulary words within a couple of edits of the query.
var benchPairs = [][2]string{
	{"architecure", "architecture"},
	{"probabilistc", "probabilistic"},
	{"databse", "database"},
	{"kitten", "sitting"},
	{"suggestion", "suggestions"},
}

var benchUnicodePairs = [][2]string{
	{"naïveté", "naivete"},
	{"日本語の検索", "日本誤の検索"},
	{"größenordnung", "grossenordnung"},
}

func BenchmarkEditDistMyers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		WithinK(p[0], p[1], 2)
	}
}

func BenchmarkEditDistMyersDistance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		Distance(p[0], p[1])
	}
}

func BenchmarkEditDistBandedGeneric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		withinKGeneric(p[0], p[1], 2)
	}
}

func BenchmarkEditDistUnicode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchUnicodePairs[i%len(benchUnicodePairs)]
		WithinK(p[0], p[1], 2)
	}
}

// TestWithinKZeroAllocs pins the allocation-free contract of the hot
// verification path, for both the Myers and the pooled-DP fallback.
func TestWithinKZeroAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(200, func() {
		WithinK("architecure", "architecture", 2)
	}); n != 0 {
		t.Errorf("ASCII WithinK allocates %.1f per call, want 0", n)
	}
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts; pooled fallback can't be alloc-free")
	}
	if n := testing.AllocsPerRun(200, func() {
		WithinK("naïveté", "naivete", 2)
	}); n != 0 {
		t.Errorf("Unicode WithinK allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		Distance("naïveté", "naivete")
	}); n != 0 {
		t.Errorf("Unicode Distance allocates %.1f per call, want 0", n)
	}
}
