//go:build !race

package editdist

const raceEnabled = false
