package editdist

import (
	"testing"
	"unicode/utf8"
)

// naiveDistance is the textbook full-matrix Levenshtein, the oracle
// for the differential fuzz test. It shares no code with the package
// implementations.
func naiveDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	rows := make([][]int, len(ra)+1)
	for i := range rows {
		rows[i] = make([]int, len(rb)+1)
		rows[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		rows[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			rows[i][j] = minInt(rows[i-1][j]+1, rows[i][j-1]+1, rows[i-1][j-1]+cost)
		}
	}
	return rows[len(ra)][len(rb)]
}

// FuzzEditDist asserts that every implementation — the dispatching
// Distance, the generic DP, the banded WithinK (both dispatched and
// generic), and the Myers bit-parallel kernel where it applies —
// agrees with the naive oracle on arbitrary inputs and thresholds
// k ∈ [0,4], in both argument orders.
func FuzzEditDist(f *testing.F) {
	seeds := []struct {
		a, b string
		k    int
	}{
		{"", "", 0},
		{"", "abc", 2},
		{"kitten", "sitting", 3},
		{"architecure", "architecture", 1},
		{"naïve", "naive", 2},
		{"日本語", "日本誤", 1},
		{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "a", 4},
		{"ab\x01cd", "abcd", 1},
	}
	for _, s := range seeds {
		f.Add(s.a, s.b, s.k)
	}
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if !utf8.ValidString(a) || !utf8.ValidString(b) {
			t.Skip("invalid UTF-8")
		}
		if len(a) > 256 || len(b) > 256 {
			t.Skip("oversized")
		}
		k = ((k % 5) + 5) % 5 // clamp to [0,4]

		want := naiveDistance(a, b)
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			x, y := pair[0], pair[1]
			if got := Distance(x, y); got != want {
				t.Fatalf("Distance(%q,%q) = %d, want %d", x, y, got, want)
			}
			if got := distanceGeneric(x, y); got != want {
				t.Fatalf("distanceGeneric(%q,%q) = %d, want %d", x, y, got, want)
			}

			d, ok := WithinK(x, y, k)
			if want <= k && (!ok || d != want) {
				t.Fatalf("WithinK(%q,%q,%d) = (%d,%v), want (%d,true)", x, y, k, d, ok, want)
			}
			if want > k && ok {
				t.Fatalf("WithinK(%q,%q,%d) accepted distance %d", x, y, k, want)
			}

			// The generic banded path must agree even on inputs the
			// dispatcher would hand to Myers.
			lx, ly := x, y
			if len(lx) < len(ly) {
				lx, ly = ly, lx
			}
			d, ok = withinKGeneric(lx, ly, k)
			if want <= k && (!ok || d != want) {
				t.Fatalf("withinKGeneric(%q,%q,%d) = (%d,%v), want (%d,true)", lx, ly, k, d, ok, want)
			}
			if want > k && ok {
				t.Fatalf("withinKGeneric(%q,%q,%d) accepted distance %d", lx, ly, k, want)
			}

			// Myers kernel, where applicable: exact without cutoff, and
			// gate-consistent with the cutoff.
			if isASCII(x) && isASCII(y) {
				pat, txt := x, y
				if len(pat) > len(txt) {
					pat, txt = txt, pat
				}
				if len(pat) <= myersMaxLen {
					if got := myers64(pat, txt, -1); got != want {
						t.Fatalf("myers64(%q,%q,-1) = %d, want %d", pat, txt, got, want)
					}
					got := myers64(pat, txt, k)
					if want <= k && got != want {
						t.Fatalf("myers64(%q,%q,%d) = %d, want %d", pat, txt, k, got, want)
					}
					if want > k && got <= k {
						t.Fatalf("myers64(%q,%q,%d) = %d, want > %d", pat, txt, k, got, k)
					}
				}
			}
		}
	})
}
