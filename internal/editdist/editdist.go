// Package editdist implements Levenshtein edit distance over Unicode
// code points, including a threshold-banded variant used to verify
// FastSS candidates in O(ε·l) time (Section V-A of the paper).
//
// The edit operations are insertion, deletion, and substitution of a
// single character, as in Section III.
//
// Two implementations back the exported API. ASCII inputs whose
// shorter side fits in a 64-bit word run the bit-parallel algorithm of
// Myers (JACM 1999, in Hyyrö's formulation): one word of bitwise
// operations per text character, no DP rows at all. Everything else —
// non-ASCII input or words longer than 64 runes — falls back to the
// classic (banded) dynamic program over pooled scratch rows. Both
// paths are allocation-free in steady state: candidate verification is
// the hot loop of suggestion serving, and per-call []rune and row
// allocations were a measurable share of its cost.
package editdist

import "sync"

// myersMaxLen is the longest pattern the bit-parallel kernel handles:
// one bit per pattern rune in a single 64-bit word.
const myersMaxLen = 64

// Distance returns the Levenshtein distance between a and b.
func Distance(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter string; it is the Myers pattern (one bit per
	// rune). For ASCII, rune count == byte count, so the length checks
	// are exact.
	if len(b) <= myersMaxLen && isASCII(a) && isASCII(b) {
		return myers64(b, a, -1)
	}
	return distanceGeneric(a, b)
}

// WithinK reports whether ed(a,b) ≤ k, and if so returns the exact
// distance. ASCII inputs run the bit-parallel kernel with a cutoff;
// the fallback evaluates only a diagonal band of width 2k+1, so it
// runs in O(k·min(|a|,|b|)) time, and exits early when every cell of a
// row exceeds k.
func WithinK(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) <= myersMaxLen && isASCII(a) && isASCII(b) {
		if len(a)-len(b) > k {
			return 0, false
		}
		d := myers64(b, a, k)
		if d > k {
			return 0, false
		}
		return d, true
	}
	return withinKGeneric(a, b, k)
}

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// myers64 computes ed(pattern, text) for ASCII strings with
// len(pattern) ≤ 64, in O(|text|) word operations (Myers 1999 /
// Hyyrö 2001). The vertical delta of the last DP row is kept in two
// bit vectors (pv: +1 positions, mv: −1 positions); each text
// character updates them with a handful of bitwise operations and
// adjusts the running score of the bottom-right cell.
//
// k ≥ 0 enables a cutoff: the score changes by at most 1 per column,
// so once score − (columns remaining) exceeds k the final distance
// must too, and the scan stops, returning k+1 (any value > k; callers
// gate on > k). k < 0 disables the cutoff and the result is exact.
func myers64(pattern, text string, k int) int {
	m := len(pattern)
	if m == 0 {
		if k >= 0 && len(text) > k {
			return k + 1
		}
		return len(text)
	}
	// peq[c] has bit i set iff pattern[i] == c. The array lives on the
	// stack; zeroing 1 KiB is far cheaper than a heap-allocated map or
	// DP row.
	var peq [128]uint64
	for i := 0; i < m; i++ {
		peq[pattern[i]] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	last := uint64(1) << uint(m-1)
	n := len(text)
	for j := 0; j < n; j++ {
		eq := peq[text[j]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if k >= 0 && score-(n-1-j) > k {
			return k + 1
		}
	}
	return score
}

// dpScratch holds the rune and DP-row buffers of one fallback
// computation, pooled so steady-state calls allocate nothing.
type dpScratch struct {
	ra, rb    []rune
	prev, cur []int
}

var dpPool = sync.Pool{New: func() interface{} { return new(dpScratch) }}

// appendRunes decodes s into dst (reusing its capacity).
func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// rows returns zero-length prev/cur row buffers with capacity ≥ n.
func (s *dpScratch) rows(n int) ([]int, []int) {
	if cap(s.prev) < n {
		s.prev = make([]int, n)
		s.cur = make([]int, n)
	}
	return s.prev[:n], s.cur[:n]
}

// distanceGeneric is the classic two-row dynamic program over code
// points, used when the bit-parallel kernel does not apply.
func distanceGeneric(a, b string) int {
	s := dpPool.Get().(*dpScratch)
	ra := appendRunes(s.ra[:0], a)
	rb := appendRunes(s.rb[:0], b)
	s.ra, s.rb = ra, rb
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		d := len(ra)
		dpPool.Put(s)
		return d
	}
	prev, cur := s.rows(len(rb) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	d := prev[len(rb)]
	dpPool.Put(s)
	return d
}

// withinKGeneric is the banded dynamic program, used when the
// bit-parallel kernel does not apply.
func withinKGeneric(a, b string, k int) (int, bool) {
	s := dpPool.Get().(*dpScratch)
	ra := appendRunes(s.ra[:0], a)
	rb := appendRunes(s.rb[:0], b)
	s.ra, s.rb = ra, rb
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > k {
		dpPool.Put(s)
		return 0, false
	}
	if len(rb) == 0 {
		d := len(ra)
		dpPool.Put(s)
		return d, d <= k
	}

	const inf = int(^uint(0) >> 2)
	prev, cur := s.rows(len(rb) + 1)
	for j := range prev {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > len(rb) {
			hi = len(rb)
		}
		if lo > hi {
			dpPool.Put(s)
			return 0, false
		}
		if lo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		if hi < len(rb) {
			cur[hi+1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if d := prev[j] + 1; d < v {
				v = d
			}
			if d := cur[j-1] + 1; d < v {
				v = d
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > k {
			dpPool.Put(s)
			return 0, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(rb)]
	dpPool.Put(s)
	if d > k {
		return 0, false
	}
	return d, true
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
