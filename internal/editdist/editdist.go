// Package editdist implements Levenshtein edit distance over Unicode
// code points, including a threshold-banded variant used to verify
// FastSS candidates in O(ε·l) time (Section V-A of the paper).
//
// The edit operations are insertion, deletion, and substitution of a
// single character, as in Section III.
package editdist

// Distance returns the Levenshtein distance between a and b.
func Distance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// WithinK reports whether ed(a,b) ≤ k, and if so returns the exact
// distance. It evaluates only a diagonal band of width 2k+1, so it runs
// in O(k·min(|a|,|b|)) time, and exits early when every cell of a row
// exceeds k.
func WithinK(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > k {
		return 0, false
	}
	if len(rb) == 0 {
		return len(ra), len(ra) <= k
	}

	const inf = int(^uint(0) >> 2)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > len(rb) {
			hi = len(rb)
		}
		if lo > hi {
			return 0, false
		}
		if lo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		if hi < len(rb) {
			cur[hi+1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if d := prev[j] + 1; d < v {
				v = d
			}
			if d := cur[j-1] + 1; d < v {
				v = d
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > k {
			return 0, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(rb)]
	if d > k {
		return 0, false
	}
	return d, true
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
