package editdist

import (
	"math/rand"
	"testing"
)

func TestDistanceBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"tree", "tree", 0},
		{"tree", "trees", 1},
		{"tree", "trie", 1},
		{"icdt", "icde", 1},
		{"kitten", "sitting", 3},
		{"insurance", "instance", 2},
		{"schütze", "schuetze", 2},
		{"power", "pover", 1},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance(%q,%q)=%d want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestWithinKMatchesDistance(t *testing.T) {
	words := []string{"", "a", "ab", "tree", "trees", "trie", "icde", "icdt",
		"insurance", "instance", "health", "architecture", "archetecture",
		"barrier", "reef", "gerat", "great", "schütze", "schuetze"}
	for _, a := range words {
		for _, b := range words {
			d := Distance(a, b)
			for k := 0; k <= 4; k++ {
				got, ok := WithinK(a, b, k)
				if (d <= k) != ok {
					t.Fatalf("WithinK(%q,%q,%d): ok=%v but d=%d", a, b, k, ok, d)
				}
				if ok && got != d {
					t.Fatalf("WithinK(%q,%q,%d)=%d want %d", a, b, k, got, d)
				}
			}
		}
	}
}

func TestWithinKNegative(t *testing.T) {
	if _, ok := WithinK("a", "a", -1); ok {
		t.Error("negative k should never match")
	}
}

// Randomized differential test of the banded verifier vs. the full DP.
func TestWithinKRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abcdeü")
	randWord := func(n int) string {
		r := make([]rune, n)
		for i := range r {
			r[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(r)
	}
	for i := 0; i < 5000; i++ {
		a := randWord(rng.Intn(10))
		b := randWord(rng.Intn(10))
		k := rng.Intn(4)
		d := Distance(a, b)
		got, ok := WithinK(a, b, k)
		if (d <= k) != ok || (ok && got != d) {
			t.Fatalf("mismatch a=%q b=%q k=%d d=%d got=%d ok=%v", a, b, k, d, got, ok)
		}
	}
}

// Property: triangle inequality on a random sample.
func TestDistanceTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []rune("abc")
	randWord := func() string {
		n := rng.Intn(7)
		r := make([]rune, n)
		for i := range r {
			r[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(r)
	}
	for i := 0; i < 2000; i++ {
		a, b, c := randWord(), randWord(), randWord()
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatalf("triangle violated: %q %q %q", a, b, c)
		}
	}
}

func BenchmarkWithinK1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WithinK("architecture", "archetecture", 2)
	}
}

func BenchmarkDistanceFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Distance("architecture", "archetecture")
	}
}
