package queryset

import (
	"strings"
	"testing"

	"xclean/internal/editdist"
	"xclean/internal/tokenizer"
)

func testVocab() *tokenizer.Vocabulary {
	v := tokenizer.NewVocabulary()
	for _, w := range []string{"great", "barrier", "reef", "architecture",
		"database", "rose", "fpga", "government", "separate"} {
		v.Add(w, 10)
	}
	return v
}

func TestRulesWellFormed(t *testing.T) {
	rules := Rules()
	if len(rules) < 140 {
		t.Errorf("rule list too small: %d", len(rules))
	}
	for miss, corr := range rules {
		if miss == corr {
			t.Errorf("identity rule %q", miss)
		}
		if d := editdist.Distance(miss, corr); d == 0 || d > 4 {
			t.Errorf("rule %q->%q has distance %d", miss, corr, d)
		}
		if strings.ToLower(miss) != miss || strings.ToLower(corr) != corr {
			t.Errorf("rule %q->%q not lowercase", miss, corr)
		}
	}
}

func TestRuleDistancesExceedOne(t *testing.T) {
	// Section VII-D: common misspellings tend to have larger edit
	// distances than single random edits; a good share must be >= 2.
	rules := Rules()
	multi := 0
	for miss, corr := range rules {
		if editdist.Distance(miss, corr) >= 2 {
			multi++
		}
	}
	if multi < 30 {
		t.Errorf("only %d/%d rules have distance >=2", multi, len(rules))
	}
}

func TestReverseRules(t *testing.T) {
	rev := ReverseRules()
	found := false
	for _, m := range rev["believe"] {
		if m == "beleive" || m == "belive" {
			found = true
		}
	}
	if !found {
		t.Error("reverse rules missing believe misspellings")
	}
	if len(rev["believe"]) < 2 {
		t.Errorf("believe should have >=2 misspellings: %v", rev["believe"])
	}
	targets := RuleTargets()
	if len(targets) < 100 {
		t.Errorf("targets=%d", len(targets))
	}
}

func TestPerturberRand(t *testing.T) {
	p := NewPerturber(42, testVocab())
	dirty, ok := p.Rand("great barrier architecture")
	if !ok {
		t.Fatal("no perturbation")
	}
	dt := strings.Fields(dirty)
	ct := []string{"great", "barrier", "architecture"}
	if len(dt) != 3 {
		t.Fatalf("token count changed: %q", dirty)
	}
	v := testVocab()
	for i, d := range dt {
		c := ct[i]
		if len(c) <= 4 {
			if d != c {
				t.Errorf("short token %q perturbed to %q", c, d)
			}
			continue
		}
		if dist := editdist.Distance(d, c); dist != 1 {
			t.Errorf("token %q->%q distance %d want 1", c, d, dist)
		}
		if v.Contains(d) {
			t.Errorf("perturbed token %q is still in vocabulary", d)
		}
	}
}

func TestPerturberRandShortOnly(t *testing.T) {
	p := NewPerturber(42, testVocab())
	if _, ok := p.Rand("rose fpga"); ok {
		t.Error("all-short query should not be perturbable")
	}
}

func TestPerturberRule(t *testing.T) {
	p := NewPerturber(42, testVocab())
	dirty, ok := p.Rule("great government database")
	if !ok {
		t.Fatal("rule perturbation failed")
	}
	dt := strings.Fields(dirty)
	rules := Rules()
	changedCount := 0
	for i, d := range dt {
		c := []string{"great", "government", "database"}[i]
		if d != c {
			changedCount++
			if rules[d] != c {
				t.Errorf("%q is not a known misspelling of %q", d, c)
			}
		}
	}
	if changedCount == 0 {
		t.Error("no token changed")
	}

	if _, ok := p.Rule("barrier reef"); ok {
		t.Error("query without rule targets should be rejected")
	}
}

func TestMakeSets(t *testing.T) {
	p := NewPerturber(7, testVocab())
	clean := []string{"great barrier reef", "separate database architecture", "rose fpga"}

	cs := MakeClean(clean)
	if len(cs) != 3 || cs[0].Dirty != cs[0].Truth {
		t.Errorf("clean set wrong: %v", cs)
	}

	rs := p.MakeRand(clean)
	for _, q := range rs {
		if q.Dirty == q.Truth {
			t.Errorf("RAND query unchanged: %v", q)
		}
	}
	if len(rs) == 0 {
		t.Error("RAND set empty")
	}

	us := p.MakeRule(clean)
	if len(us) == 0 {
		t.Error("RULE set empty")
	}
	for _, q := range us {
		if q.Dirty == q.Truth {
			t.Errorf("RULE query unchanged: %v", q)
		}
	}
}

func TestPerturberDeterministic(t *testing.T) {
	clean := []string{"great barrier reef", "separate database architecture"}
	a := NewPerturber(9, testVocab()).MakeRand(clean)
	b := NewPerturber(9, testVocab()).MakeRand(clean)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("perturbation not deterministic")
		}
	}
}
