package queryset

import (
	"math/rand"
	"strings"

	"xclean/internal/tokenizer"
)

// Query pairs a dirty query with its ground-truth clean form. For
// CLEAN sets Dirty == Truth.
type Query struct {
	Dirty string
	Truth string
}

// Perturber injects spelling errors into clean queries following the
// two protocols of Section VII-A.
type Perturber struct {
	rng *rand.Rand
	// vocab decides whether a perturbed token is still a real word
	// (RAND must produce out-of-vocabulary tokens).
	vocab interface{ Contains(string) bool }
	rev   map[string][]string
}

// NewPerturber builds a perturber over the corpus vocabulary.
func NewPerturber(seed int64, vocab *tokenizer.Vocabulary) *Perturber {
	return &Perturber{
		rng:   rand.New(rand.NewSource(seed)),
		vocab: vocab,
		rev:   ReverseRules(),
	}
}

const alphabet = "abcdefghijklmnopqrstuvwxyz"

// Rand applies one random edit operation (insertion, deletion, or
// substitution) to each keyword of the query, subject to the two rules
// of Section VII-A: (1) the perturbed token must not fall back into
// the vocabulary, and (2) tokens of length ≤ 4 are left intact so
// enough signal remains. It returns ok=false when no token could be
// perturbed.
func (p *Perturber) Rand(clean string) (string, bool) {
	toks := strings.Fields(clean)
	changed := false
	out := make([]string, len(toks))
	for i, t := range toks {
		if len(t) <= 4 {
			out[i] = t
			continue
		}
		if d, ok := p.randEdit(t); ok {
			out[i] = d
			changed = true
		} else {
			out[i] = t
		}
	}
	return strings.Join(out, " "), changed
}

// randEdit tries up to 30 random single edits until one leaves the
// vocabulary.
func (p *Perturber) randEdit(t string) (string, bool) {
	r := []rune(t)
	for attempt := 0; attempt < 30; attempt++ {
		var cand []rune
		switch p.rng.Intn(3) {
		case 0: // substitution
			i := p.rng.Intn(len(r))
			c := rune(alphabet[p.rng.Intn(26)])
			if c == r[i] {
				continue
			}
			cand = append([]rune{}, r...)
			cand[i] = c
		case 1: // deletion
			i := p.rng.Intn(len(r))
			cand = append(append([]rune{}, r[:i]...), r[i+1:]...)
		default: // insertion
			i := p.rng.Intn(len(r) + 1)
			c := rune(alphabet[p.rng.Intn(26)])
			cand = append(append(append([]rune{}, r[:i]...), c), r[i:]...)
		}
		s := string(cand)
		if s != t && !p.vocab.Contains(s) {
			return s, true
		}
	}
	return "", false
}

// Rule replaces every token that appears in the common-misspelling
// rule list with one of its misspelt forms. ok=false when no token is
// covered by a rule (such queries are excluded from the RULE sets, as
// the paper's lookup procedure implies).
func (p *Perturber) Rule(clean string) (string, bool) {
	toks := strings.Fields(clean)
	changed := false
	out := make([]string, len(toks))
	for i, t := range toks {
		if forms := p.rev[t]; len(forms) > 0 {
			out[i] = forms[p.rng.Intn(len(forms))]
			changed = true
		} else {
			out[i] = t
		}
	}
	return strings.Join(out, " "), changed
}

// MakeClean wraps clean queries as a CLEAN query set.
func MakeClean(clean []string) []Query {
	out := make([]Query, len(clean))
	for i, q := range clean {
		out[i] = Query{Dirty: q, Truth: q}
	}
	return out
}

// MakeRand builds a RAND query set, dropping queries that could not be
// perturbed.
func (p *Perturber) MakeRand(clean []string) []Query {
	var out []Query
	for _, q := range clean {
		if d, ok := p.Rand(q); ok {
			out = append(out, Query{Dirty: d, Truth: q})
		}
	}
	return out
}

// MakeRule builds a RULE query set from the queries covered by at
// least one misspelling rule.
func (p *Perturber) MakeRule(clean []string) []Query {
	var out []Query
	for _, q := range clean {
		if d, ok := p.Rule(q); ok {
			out = append(out, Query{Dirty: d, Truth: q})
		}
	}
	return out
}
