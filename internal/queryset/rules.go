// Package queryset builds the six experimental query sets of Section
// VII-A: {DBLP,INEX} × {CLEAN,RAND,RULE}. CLEAN queries are sampled
// from the corpus so they are answerable; RAND queries inject random
// edit errors; RULE queries substitute real common human misspellings,
// standing in for the Wikipedia/Aspell list the paper uses.
package queryset

// rulePairs lists real common English misspellings as
// (misspelling, correct) pairs, drawn from the well-known Wikipedia
// "list of common misspellings" that Aspell also uses. Note several
// entries are 2–3 edits from their corrections — the property that
// makes the RULE sets harder and slower than the RAND sets (Section
// VII-D).
var rulePairs = [][2]string{
	{"abscence", "absence"}, {"accomodate", "accommodate"},
	{"acheive", "achieve"}, {"accross", "across"},
	{"agressive", "aggressive"}, {"apparant", "apparent"},
	{"appearence", "appearance"}, {"arguement", "argument"},
	{"assasination", "assassination"}, {"basicly", "basically"},
	{"becuase", "because"}, {"begining", "beginning"},
	{"beleive", "believe"}, {"belive", "believe"},
	{"benifit", "benefit"}, {"buisness", "business"},
	{"calender", "calendar"}, {"catagory", "category"},
	{"cemetary", "cemetery"}, {"charachter", "character"},
	{"collegue", "colleague"}, {"comming", "coming"},
	{"commitee", "committee"}, {"completly", "completely"},
	{"concious", "conscious"}, {"condidtion", "condition"},
	{"conferance", "conference"}, {"critisism", "criticism"},
	{"definately", "definitely"}, {"diffrence", "difference"},
	{"dissapear", "disappear"}, {"dissapoint", "disappoint"},
	{"ecstacy", "ecstasy"}, {"embarras", "embarrass"},
	{"enviroment", "environment"}, {"existance", "existence"},
	{"experiance", "experience"}, {"familar", "familiar"},
	{"finaly", "finally"}, {"foriegn", "foreign"},
	{"fourty", "forty"}, {"foward", "forward"},
	{"freind", "friend"}, {"futher", "further"},
	{"gaurd", "guard"}, {"goverment", "government"},
	{"grammer", "grammar"}, {"gerat", "great"},
	{"happend", "happened"}, {"harrass", "harass"},
	{"heigth", "height"}, {"heirarchy", "hierarchy"},
	{"humerous", "humorous"}, {"hygene", "hygiene"},
	{"idenity", "identity"}, {"immediatly", "immediately"},
	{"independant", "independent"}, {"inteligence", "intelligence"},
	{"intresting", "interesting"}, {"knowlege", "knowledge"},
	{"labratory", "laboratory"}, {"liason", "liaison"},
	{"libary", "library"}, {"lisence", "license"},
	{"litrature", "literature"}, {"maintainance", "maintenance"},
	{"managment", "management"}, {"medcine", "medicine"},
	{"millenium", "millennium"}, {"miniture", "miniature"},
	{"mischevous", "mischievous"}, {"mispell", "misspell"},
	{"neccessary", "necessary"}, {"nessecary", "necessary"},
	{"nieghbor", "neighbor"}, {"noticable", "noticeable"},
	{"occassion", "occasion"}, {"occured", "occurred"},
	{"occurence", "occurrence"}, {"offical", "official"},
	{"oppurtunity", "opportunity"}, {"orignal", "original"},
	{"paralel", "parallel"}, {"parliment", "parliament"},
	{"particurly", "particularly"}, {"peice", "piece"},
	{"perfomance", "performance"}, {"persistant", "persistent"},
	{"personel", "personnel"}, {"persue", "pursue"},
	{"posession", "possession"}, {"potatoe", "potato"},
	{"practicle", "practical"}, {"preceed", "precede"},
	{"prefered", "preferred"}, {"presance", "presence"},
	{"privelege", "privilege"}, {"probaly", "probably"},
	{"proccess", "process"}, {"profesional", "professional"},
	{"promiss", "promise"}, {"pronounciation", "pronunciation"},
	{"prufe", "proof"}, {"psuedo", "pseudo"},
	{"publically", "publicly"}, {"quizes", "quizzes"},
	{"reccomend", "recommend"}, {"recieve", "receive"},
	{"refered", "referred"}, {"religous", "religious"},
	{"repitition", "repetition"}, {"resistence", "resistance"},
	{"responce", "response"}, {"restarant", "restaurant"},
	{"rythm", "rhythm"}, {"saftey", "safety"},
	{"secratary", "secretary"}, {"sieze", "seize"},
	{"seperate", "separate"}, {"shedule", "schedule"},
	{"similer", "similar"}, {"sincerly", "sincerely"},
	{"speach", "speech"}, {"stategy", "strategy"},
	{"stlye", "style"}, {"succesful", "successful"},
	{"supercede", "supersede"}, {"suprise", "surprise"},
	{"temperture", "temperature"}, {"tommorow", "tomorrow"},
	{"tounge", "tongue"}, {"truely", "truly"},
	{"twelth", "twelfth"}, {"tyrany", "tyranny"},
	{"underate", "underrate"}, {"untill", "until"},
	{"unuseual", "unusual"}, {"vaccuum", "vacuum"},
	{"vegatarian", "vegetarian"}, {"vehical", "vehicle"},
	{"visable", "visible"}, {"wether", "whether"},
	{"wierd", "weird"}, {"wich", "which"},
	{"withold", "withhold"}, {"writting", "writing"},
	// Domain-flavoured entries mirroring the paper's own examples
	// (vverification, archetecture, geo-taging).
	{"vverification", "verification"}, {"archetecture", "architecture"},
	{"databse", "database"}, {"datbase", "database"},
	{"alogrithm", "algorithm"}, {"algoritm", "algorithm"},
	{"anaylsis", "analysis"}, {"optmization", "optimization"},
	{"paralell", "parallel"}, {"retreival", "retrieval"},
	{"similiarity", "similarity"}, {"transacton", "transaction"},
	{"schemma", "schema"}, {"qurey", "query"},
	{"indexng", "indexing"}, {"clasification", "classification"},
	{"clustring", "clustering"}, {"streeming", "streaming"},
	{"sematic", "semantic"}, {"performence", "performance"},
}

// Rules returns the misspelling → correction map (for log-based
// correctors and spell checkers).
func Rules() map[string]string {
	m := make(map[string]string, len(rulePairs))
	for _, p := range rulePairs {
		m[p[0]] = p[1]
	}
	return m
}

// ReverseRules returns correction → misspellings (for RULE
// perturbation).
func ReverseRules() map[string][]string {
	m := make(map[string][]string)
	for _, p := range rulePairs {
		m[p[1]] = append(m[p[1]], p[0])
	}
	return m
}

// RuleTargets returns the set of correct words covered by at least one
// misspelling rule, sorted order not guaranteed.
func RuleTargets() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range rulePairs {
		if !seen[p[1]] {
			seen[p[1]] = true
			out = append(out, p[1])
		}
	}
	return out
}
