package eval

import (
	"testing"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

// fixedSuggester returns the truth at a fixed rank per query index.
func fixedSuggester(rank map[string]int) Suggester {
	return SuggesterFunc(func(q string) []core.Suggestion {
		r, ok := rank[q]
		if !ok || r < 1 {
			return nil
		}
		out := make([]core.Suggestion, r)
		for i := 0; i < r-1; i++ {
			out[i] = core.Suggestion{Words: []string{"filler", string(rune('a' + i))}}
		}
		out[r-1] = core.Suggestion{Words: []string{q}}
		return out
	})
}

func comparePairs(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		q := "query" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		out[i] = Pair{Dirty: q, Truth: q}
	}
	return out
}

func TestCompareIdenticalSystems(t *testing.T) {
	qs := comparePairs(30)
	ranks := map[string]int{}
	for i, q := range qs {
		ranks[q.Dirty] = 1 + i%3
	}
	s := fixedSuggester(ranks)
	c := Compare(s, s, qs, 500, 1, tokenizer.Options{})
	if c.Delta != 0 || c.CILow != 0 || c.CIHigh != 0 {
		t.Errorf("identical systems: %+v", c)
	}
	if c.Significant() {
		t.Error("identical systems reported significant")
	}
	if c.Wins != 0 || c.Losses != 0 || c.Ties != len(qs) {
		t.Errorf("w/l/t = %d/%d/%d", c.Wins, c.Losses, c.Ties)
	}
}

func TestCompareDominantSystem(t *testing.T) {
	qs := comparePairs(40)
	always1, always3 := map[string]int{}, map[string]int{}
	for _, q := range qs {
		always1[q.Dirty] = 1
		always3[q.Dirty] = 3
	}
	c := Compare(fixedSuggester(always3), fixedSuggester(always1), qs, 1000, 2, tokenizer.Options{})
	wantDelta := 1.0 - 1.0/3.0
	if diff := c.Delta - wantDelta; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("delta=%g want %g", c.Delta, wantDelta)
	}
	if !c.Significant() || c.CILow <= 0 {
		t.Errorf("dominant improvement not significant: %+v", c)
	}
	if c.PValue > 0.05 {
		t.Errorf("p=%g", c.PValue)
	}
	if c.Wins != len(qs) {
		t.Errorf("wins=%d", c.Wins)
	}
}

func TestCompareNoisyTie(t *testing.T) {
	// A beats B on half the queries and loses on the other half by the
	// same margin: the interval must straddle zero.
	qs := comparePairs(40)
	ra, rb := map[string]int{}, map[string]int{}
	for i, q := range qs {
		if i%2 == 0 {
			ra[q.Dirty], rb[q.Dirty] = 1, 2
		} else {
			ra[q.Dirty], rb[q.Dirty] = 2, 1
		}
	}
	c := Compare(fixedSuggester(ra), fixedSuggester(rb), qs, 1000, 3, tokenizer.Options{})
	if c.Significant() {
		t.Errorf("balanced systems reported significant: %+v", c)
	}
	if c.Delta != 0 {
		t.Errorf("delta=%g", c.Delta)
	}
}

func TestCompareEmpty(t *testing.T) {
	c := Compare(fixedSuggester(nil), fixedSuggester(nil), nil, 10, 4, tokenizer.Options{})
	if c.Queries != 0 || c.Significant() {
		t.Errorf("%+v", c)
	}
}

// TestCompareRealSystems: XClean vs PY08 on the workbench — the paper's
// headline claim should be statistically solid even at small n.
func TestCompareRealSystems(t *testing.T) {
	w := smallBench(t)
	set := SetDBLPRand
	c := Compare(w.PY08(set, nil), w.XClean(set, nil), w.Sets[set], 1000, 5, tokenizer.Options{})
	if c.Delta <= 0 {
		t.Fatalf("XClean does not beat PY08: %+v", c)
	}
	if !c.Significant() {
		t.Errorf("headline improvement not significant at n=%d: %+v", c.Queries, c)
	}
}
