package eval

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyStats summarizes a per-query latency distribution. The
// paper's Table VI reports only means; tail percentiles matter for the
// online "Did you mean" deployment the introduction motivates, so the
// harness records them too.
// Durations marshal to JSON as integer nanoseconds.
type LatencyStats struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"meanNs"`
	Min   time.Duration `json:"minNs"`
	Max   time.Duration `json:"maxNs"`
	P50   time.Duration `json:"p50Ns"`
	P95   time.Duration `json:"p95Ns"`
	P99   time.Duration `json:"p99Ns"`
}

// String renders the stats in one line for the xbench tables.
func (s LatencyStats) String() string {
	return fmt.Sprintf("mean=%v p50=%v p95=%v p99=%v max=%v (n=%d)",
		s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), s.Count)
}

// LatencyRecorder accumulates samples; safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Stats computes the distribution summary of the samples so far.
func (r *LatencyRecorder) Stats() LatencyStats {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return computeLatency(samples)
}

func computeLatency(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, d := range samples {
		total += d
	}
	return LatencyStats{
		Count: len(samples),
		Mean:  total / time.Duration(len(samples)),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		P50:   percentile(samples, 50),
		P95:   percentile(samples, 95),
		P99:   percentile(samples, 99),
	}
}

// percentile is the nearest-rank percentile of a sorted sample set.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p·n/100), 1-based
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
