package eval

import (
	"fmt"
	"testing"
)

func TestDebugStats(t *testing.T) {
	w := NewWorkbench(WorkbenchConfig{Seed: 42, DBLPArticles: 20000, WikiArticles: 2000, QueriesPerSet: 30})
	for _, set := range []string{SetDBLPRand, SetINEXRule} {
		e := w.XClean(set, nil)
		var tot Stats2
		for _, q := range w.Sets[set] {
			e.Suggest(q.Dirty)
			s := e.Stats()
			tot.post += s.PostingsRead
			tot.sub += s.Subtrees
			tot.cand += s.CandidatesSeen
			tot.typ += s.TypeComputations
		}
		n := len(w.Sets[set])
		fmt.Printf("%s: queries=%d avg postings=%d subtrees=%d candidates=%d typecomps=%d\n",
			set, n, tot.post/n, tot.sub/n, tot.cand/n, tot.typ/n)
	}
}

type Stats2 struct{ post, sub, cand, typ int }
