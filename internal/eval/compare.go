package eval

import (
	"math/rand"
	"sort"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

// Comparison reports a paired-bootstrap comparison of two systems'
// MRR over the same query set. The paper reports point estimates only;
// at our query-set sizes (tens of queries, like the paper's 49–285) a
// confidence interval distinguishes real effects from sampling noise.
type Comparison struct {
	// MRRA and MRRB are the point estimates of the two systems.
	MRRA, MRRB float64
	// Delta is MRRB − MRRA on the full set.
	Delta float64
	// CILow/CIHigh bound the central 95% of bootstrap deltas.
	CILow, CIHigh float64
	// PValue is the two-sided bootstrap probability of a delta at
	// least as extreme as 0 (small = the difference is unlikely to be
	// sampling noise).
	PValue float64
	// Wins/Losses/Ties count queries where B's reciprocal rank beats /
	// trails / equals A's.
	Wins, Losses, Ties int
	// Queries is the paired-sample size.
	Queries int
}

// Significant reports whether the 95% interval excludes zero.
func (c Comparison) Significant() bool {
	return c.CILow > 0 || c.CIHigh < 0
}

// Compare runs both systems over the query set and estimates the MRR
// difference B−A with a seeded paired bootstrap (resampling queries
// with replacement `samples` times; 0 = 2000).
func Compare(a, b Suggester, queries []Pair, samples int, seed int64, opts tokenizer.Options) Comparison {
	if samples <= 0 {
		samples = 2000
	}
	n := len(queries)
	c := Comparison{Queries: n}
	if n == 0 {
		return c
	}

	ra := make([]float64, n)
	rb := make([]float64, n)
	for i, q := range queries {
		ra[i] = reciprocalRank(a.Suggest(q.Dirty), q.Truth, opts)
		rb[i] = reciprocalRank(b.Suggest(q.Dirty), q.Truth, opts)
		switch {
		case rb[i] > ra[i]:
			c.Wins++
		case rb[i] < ra[i]:
			c.Losses++
		default:
			c.Ties++
		}
		c.MRRA += ra[i]
		c.MRRB += rb[i]
	}
	c.MRRA /= float64(n)
	c.MRRB /= float64(n)
	c.Delta = c.MRRB - c.MRRA

	rng := rand.New(rand.NewSource(seed))
	deltas := make([]float64, samples)
	negOrZero, posOrZero := 0, 0
	for s := range deltas {
		var sum float64
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			sum += rb[j] - ra[j]
		}
		d := sum / float64(n)
		deltas[s] = d
		if d <= 0 {
			negOrZero++
		}
		if d >= 0 {
			posOrZero++
		}
	}
	sort.Float64s(deltas)
	c.CILow = deltas[int(0.025*float64(samples))]
	c.CIHigh = deltas[min(samples-1, int(0.975*float64(samples)))]
	p := float64(negOrZero) / float64(samples)
	if q := float64(posOrZero) / float64(samples); q < p {
		p = q
	}
	c.PValue = 2 * p
	if c.PValue > 1 {
		c.PValue = 1
	}
	return c
}

func reciprocalRank(sugs []core.Suggestion, truth string, opts tokenizer.Options) float64 {
	if rank := Rank(sugs, truth, opts); rank > 0 {
		return 1 / float64(rank)
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
