// Package eval implements the measurements of Section VII-B — Mean
// Reciprocal Rank, Precision@N, and per-query running time — and the
// experiment workbench that wires corpora, query sets, and systems
// together for every table and figure of the paper.
package eval

import (
	"strings"
	"sync"
	"time"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

// Suggester is any system under evaluation: XClean, the SLCA variant,
// PY08, or a log-based corrector.
type Suggester interface {
	Suggest(query string) []core.Suggestion
}

// SuggesterFunc adapts a function to the Suggester interface.
type SuggesterFunc func(string) []core.Suggestion

// Suggest calls f.
func (f SuggesterFunc) Suggest(q string) []core.Suggestion { return f(q) }

// Result aggregates one system's measurements over one query set.
type Result struct {
	// MRR is the mean reciprocal rank of the ground truth.
	MRR float64
	// PrecisionAt[n-1] is Precision@n: the fraction of queries whose
	// top-n suggestions contain the truth.
	PrecisionAt []float64
	// AvgTime is the mean wall time per query.
	AvgTime time.Duration
	// Latency is the full per-query latency distribution.
	Latency LatencyStats
	// Queries is the number of evaluated queries.
	Queries int
}

// Pair is one (dirty, truth) evaluation query, mirroring
// queryset.Query without importing it (keeps eval usable with
// hand-written sets too).
type Pair struct {
	Dirty string
	Truth string
}

// normalize maps a query to its comparable form: the index tokens
// joined by single spaces (so stop words, case, and punctuation do not
// affect matching).
func normalize(q string, opts tokenizer.Options) string {
	return strings.Join(opts.Tokenize(q), " ")
}

// Rank returns the 1-based rank of truth within suggestions, or 0 if
// absent.
func Rank(sugs []core.Suggestion, truth string, opts tokenizer.Options) int {
	want := normalize(truth, opts)
	for i, s := range sugs {
		if normalize(s.Query(), opts) == want {
			return i + 1
		}
	}
	return 0
}

// Run evaluates a system over a query set, measuring MRR,
// Precision@1..maxN, and the per-query latency distribution.
func Run(s Suggester, queries []Pair, maxN int, opts tokenizer.Options) Result {
	return RunParallel(s, queries, maxN, 1, opts)
}

// RunParallel is Run with queries dispatched to the given number of
// worker goroutines. All shipped Suggesters are safe for concurrent
// use (their index structures are read-only after construction), so
// parallel evaluation measures the same quality while exercising the
// engines under concurrency; latency percentiles then reflect
// contended behaviour.
func RunParallel(s Suggester, queries []Pair, maxN, workers int, opts tokenizer.Options) Result {
	if maxN < 1 {
		maxN = 10
	}
	if workers < 1 {
		workers = 1
	}
	res := Result{PrecisionAt: make([]float64, maxN), Queries: len(queries)}
	if len(queries) == 0 {
		return res
	}

	type partial struct {
		mrr       float64
		precision []float64
		samples   []time.Duration
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			p.precision = make([]float64, maxN)
			for i := w; i < len(queries); i += workers {
				q := queries[i]
				start := time.Now()
				sugs := s.Suggest(q.Dirty)
				p.samples = append(p.samples, time.Since(start))
				rank := Rank(sugs, q.Truth, opts)
				if rank > 0 {
					p.mrr += 1 / float64(rank)
					for n := rank; n <= maxN; n++ {
						p.precision[n-1]++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var samples []time.Duration
	for _, p := range parts {
		res.MRR += p.mrr
		for i, v := range p.precision {
			res.PrecisionAt[i] += v
		}
		samples = append(samples, p.samples...)
	}
	res.MRR /= float64(len(queries))
	for i := range res.PrecisionAt {
		res.PrecisionAt[i] /= float64(len(queries))
	}
	res.Latency = computeLatency(samples)
	res.AvgTime = res.Latency.Mean
	return res
}
