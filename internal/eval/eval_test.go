package eval

import (
	"math"
	"sync"
	"testing"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

func sugs(queries ...string) []core.Suggestion {
	out := make([]core.Suggestion, len(queries))
	for i, q := range queries {
		out[i] = core.Suggestion{Words: tokenizer.TokenizeRaw(q)}
	}
	return out
}

func TestRank(t *testing.T) {
	opts := tokenizer.Options{}
	s := sugs("alpha beta", "gamma delta", "epsilon zeta")
	if got := Rank(s, "gamma delta", opts); got != 2 {
		t.Errorf("rank=%d want 2", got)
	}
	if got := Rank(s, "missing words", opts); got != 0 {
		t.Errorf("rank=%d want 0", got)
	}
	// Normalization: stop words and case do not matter.
	if got := Rank(s, "The Alpha and the Beta", opts); got != 1 {
		t.Errorf("normalized rank=%d want 1", got)
	}
}

func TestRunMetrics(t *testing.T) {
	opts := tokenizer.Options{}
	// A fake suggester: echoes fixed suggestions.
	fixed := SuggesterFunc(func(q string) []core.Suggestion {
		return sugs("right answer", "wrong answer")
	})
	queries := []Pair{
		{Dirty: "rigt answer", Truth: "right answer"},  // rank 1
		{Dirty: "wrng answer", Truth: "wrong answer"},  // rank 2
		{Dirty: "misng answer", Truth: "never appear"}, // rank 0
	}
	res := Run(fixed, queries, 3, opts)
	wantMRR := (1.0 + 0.5 + 0) / 3
	if math.Abs(res.MRR-wantMRR) > 1e-12 {
		t.Errorf("MRR=%g want %g", res.MRR, wantMRR)
	}
	wantP := []float64{1.0 / 3, 2.0 / 3, 2.0 / 3}
	for i, p := range res.PrecisionAt {
		if math.Abs(p-wantP[i]) > 1e-12 {
			t.Errorf("P@%d=%g want %g", i+1, p, wantP[i])
		}
	}
	if res.Queries != 3 {
		t.Errorf("queries=%d", res.Queries)
	}
}

func TestRunEmpty(t *testing.T) {
	res := Run(SuggesterFunc(func(string) []core.Suggestion { return nil }), nil, 5, tokenizer.Options{})
	if res.MRR != 0 || res.Queries != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

// Precision@N must be monotone non-decreasing in N.
func TestPrecisionMonotone(t *testing.T) {
	w := smallBench(t)
	e := w.XClean(SetDBLPRand, nil)
	res := Run(e, w.Sets[SetDBLPRand], 10, tokenizer.Options{})
	for i := 1; i < len(res.PrecisionAt); i++ {
		if res.PrecisionAt[i] < res.PrecisionAt[i-1] {
			t.Fatalf("P@%d=%g < P@%d=%g", i+1, res.PrecisionAt[i], i, res.PrecisionAt[i-1])
		}
	}
	if res.MRR > res.PrecisionAt[len(res.PrecisionAt)-1] {
		t.Errorf("MRR %g exceeds P@max %g", res.MRR, res.PrecisionAt[len(res.PrecisionAt)-1])
	}
}

var (
	benchOnce sync.Once
	benchW    *Workbench
)

// smallBench builds a small shared workbench for eval tests.
func smallBench(t *testing.T) *Workbench {
	t.Helper()
	benchOnce.Do(func() {
		benchW = NewWorkbench(WorkbenchConfig{
			Seed:          42,
			DBLPArticles:  1500,
			WikiArticles:  150,
			QueriesPerSet: 15,
		})
	})
	return benchW
}

func TestWorkbenchSets(t *testing.T) {
	w := smallBench(t)
	for _, name := range SetNames {
		qs := w.Sets[name]
		if len(qs) == 0 {
			t.Errorf("set %s empty", name)
			continue
		}
		for _, q := range qs {
			if q.Truth == "" || q.Dirty == "" {
				t.Errorf("set %s has empty query", name)
			}
			clean := name == SetDBLPClean || name == SetINEXClean
			if clean && q.Dirty != q.Truth {
				t.Errorf("clean set %s has dirty query %q", name, q.Dirty)
			}
			if !clean && q.Dirty == q.Truth {
				t.Errorf("dirty set %s has clean query %q", name, q.Dirty)
			}
		}
	}
	if got := w.SortedSetNames(); len(got) != 6 {
		t.Errorf("SortedSetNames=%v", got)
	}
}

func TestWorkbenchHelpers(t *testing.T) {
	w := smallBench(t)
	if !IsDBLP(SetDBLPRule) || IsDBLP(SetINEXClean) {
		t.Error("IsDBLP wrong")
	}
	if !IsRule(SetINEXRule) || IsRule(SetDBLPRand) {
		t.Error("IsRule wrong")
	}
	if w.IndexFor(SetDBLPClean) != w.DBLPIndex || w.IndexFor(SetINEXClean) != w.WikiIndex {
		t.Error("IndexFor wrong")
	}
	if w.EpsilonFor(SetDBLPRand) != 2 || w.EpsilonFor(SetDBLPRule) != 3 {
		t.Error("EpsilonFor wrong")
	}
	// Shared FastSS per (corpus, eps).
	if w.FastSS(SetDBLPRand) != w.FastSS(SetDBLPClean) {
		t.Error("FastSS not shared across same-epsilon sets")
	}
	if w.FastSS(SetDBLPRand) == w.FastSS(SetDBLPRule) {
		t.Error("FastSS wrongly shared across epsilons")
	}
}

// The headline sanity check of Figure 3, at miniature scale: XClean
// beats PY08 on every dirty set.
func TestXCleanBeatsPY08(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallBench(t)
	opts := tokenizer.Options{}
	for _, set := range []string{SetDBLPRand, SetINEXRand} {
		xc := Run(w.XClean(set, nil), w.Sets[set], 10, opts)
		py := Run(w.PY08(set, nil), w.Sets[set], 10, opts)
		if xc.MRR <= py.MRR {
			t.Errorf("%s: XClean MRR %.3f not above PY08 %.3f", set, xc.MRR, py.MRR)
		}
		if xc.MRR < 0.5 {
			t.Errorf("%s: XClean MRR %.3f unexpectedly low", set, xc.MRR)
		}
	}
}

func TestSEStandInsOnCleanSets(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallBench(t)
	opts := tokenizer.Options{}
	se1 := w.SE1()
	for _, set := range []string{SetDBLPClean, SetINEXClean} {
		res := Run(se1, w.Sets[set], 10, opts)
		if res.MRR < 0.95 {
			t.Errorf("%s: SE1 MRR on clean queries = %.3f, want ~1", set, res.MRR)
		}
	}
	// SE1 (with rules) must beat SE2 (without) on RULE sets.
	se2 := w.SE2()
	r1 := Run(se1, w.Sets[SetDBLPRule], 10, opts)
	r2 := Run(se2, w.Sets[SetDBLPRule], 10, opts)
	if r1.MRR < r2.MRR {
		t.Errorf("SE1 (%.3f) should be at least SE2 (%.3f) on RULE", r1.MRR, r2.MRR)
	}
}
