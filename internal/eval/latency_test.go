package eval

import (
	"sync"
	"testing"
	"time"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

func TestComputeLatency(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	samples := []time.Duration{ms(5), ms(1), ms(3), ms(2), ms(4)}
	st := computeLatency(samples)
	if st.Count != 5 {
		t.Errorf("Count=%d", st.Count)
	}
	if st.Min != ms(1) || st.Max != ms(5) {
		t.Errorf("min/max %v/%v", st.Min, st.Max)
	}
	if st.Mean != ms(3) {
		t.Errorf("Mean=%v", st.Mean)
	}
	if st.P50 != ms(3) {
		t.Errorf("P50=%v", st.P50)
	}
	if st.P99 != ms(5) {
		t.Errorf("P99=%v", st.P99)
	}
}

func TestComputeLatencyEmpty(t *testing.T) {
	st := computeLatency(nil)
	if st.Count != 0 || st.Mean != 0 || st.P99 != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Microsecond
	}
	cases := []struct {
		p    int
		want time.Duration
	}{
		{50, 50 * time.Microsecond},
		{95, 95 * time.Microsecond},
		{99, 99 * time.Microsecond},
		{100, 100 * time.Microsecond},
		{1, 1 * time.Microsecond},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%d=%v want %v", c.p, got, c.want)
		}
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Count != 800 {
		t.Errorf("Count=%d want 800", st.Count)
	}
}

// TestRunParallelMatchesSerial: quality metrics must be identical
// whatever the worker count.
func TestRunParallelMatchesSerial(t *testing.T) {
	fixed := SuggesterFunc(func(q string) []core.Suggestion {
		if q == "miss" {
			return nil
		}
		return []core.Suggestion{
			{Words: []string{"other"}},
			{Words: []string{q}},
		}
	})
	queries := []Pair{
		{Dirty: "a", Truth: "a"},
		{Dirty: "b", Truth: "b"},
		{Dirty: "miss", Truth: "x"},
		{Dirty: "c", Truth: "nope"},
		{Dirty: "d", Truth: "d"},
	}
	serial := Run(fixed, queries, 5, tokenizer.Options{})
	for _, workers := range []int{2, 4, 16} {
		par := RunParallel(fixed, queries, 5, workers, tokenizer.Options{})
		if par.MRR != serial.MRR {
			t.Errorf("workers=%d: MRR %g vs %g", workers, par.MRR, serial.MRR)
		}
		for i := range serial.PrecisionAt {
			if par.PrecisionAt[i] != serial.PrecisionAt[i] {
				t.Errorf("workers=%d: P@%d %g vs %g",
					workers, i+1, par.PrecisionAt[i], serial.PrecisionAt[i])
			}
		}
		if par.Latency.Count != len(queries) {
			t.Errorf("workers=%d: %d samples", workers, par.Latency.Count)
		}
	}
}

// TestRunParallelRealEngine exercises the XClean engine itself under
// concurrent evaluation.
func TestRunParallelRealEngine(t *testing.T) {
	w := NewWorkbench(WorkbenchConfig{Seed: 7, DBLPArticles: 500, WikiArticles: 50, QueriesPerSet: 10})
	e := w.XClean(SetDBLPRand, nil)
	serial := Run(e, w.Sets[SetDBLPRand], 10, tokenizer.Options{})
	par := RunParallel(e, w.Sets[SetDBLPRand], 10, 8, tokenizer.Options{})
	if par.MRR != serial.MRR {
		t.Errorf("MRR diverges under concurrency: %g vs %g", par.MRR, serial.MRR)
	}
}
