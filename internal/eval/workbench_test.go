package eval

import (
	"strings"
	"testing"

	"xclean/internal/core"
	"xclean/internal/tokenizer"
)

// bench reuses eval_test.go's shared workbench.
func bench(t *testing.T) *Workbench { return smallBench(t) }

func TestWorkbenchSetsComplete(t *testing.T) {
	w := bench(t)
	for _, set := range SetNames {
		if len(w.Sets[set]) == 0 {
			t.Errorf("set %s empty", set)
		}
	}
	if got := w.SortedSetNames(); len(got) != len(SetNames) {
		t.Errorf("SortedSetNames=%v", got)
	}
}

func TestWorkbenchEngines(t *testing.T) {
	w := bench(t)
	q := w.Sets[SetDBLPRand][0]
	type sys struct {
		name string
		s    Suggester
	}
	systems := []sys{
		{"xclean", w.XClean(SetDBLPRand, nil)},
		{"xclean-compact", w.XCleanCompact(SetDBLPRand, nil)},
		{"slca", w.SLCA(SetDBLPRand, nil)},
		{"elca", w.ELCA(SetDBLPRand, nil)},
		{"py08", w.PY08(SetDBLPRand, nil)},
		{"hmm", w.HMM(SetDBLPRand, nil)},
		{"se1", w.SE1()},
		{"se2", w.SE2()},
	}
	for _, sy := range systems {
		// Every system must produce *something* for a perturbed query
		// whose truth exists in the corpus (quality differs; liveness
		// must not).
		if got := sy.s.Suggest(q.Dirty); len(got) == 0 {
			t.Errorf("%s: no suggestions for %q (truth %q)", sy.name, q.Dirty, q.Truth)
		}
	}
}

func TestWorkbenchCompactSameAnswers(t *testing.T) {
	w := bench(t)
	plain := w.XClean(SetDBLPRand, nil)
	comp := w.XCleanCompact(SetDBLPRand, nil)
	for _, q := range w.Sets[SetDBLPRand] {
		a := plain.Suggest(q.Dirty)
		b := comp.Suggest(q.Dirty)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d suggestions", q.Dirty, len(a), len(b))
		}
		for i := range a {
			if a[i].Query() != b[i].Query() {
				t.Fatalf("query %q rank %d: %q vs %q", q.Dirty, i, a[i].Query(), b[i].Query())
			}
		}
	}
	// The cache must hand back the same index on the second call.
	if w.CompactIndexFor(SetDBLPRand) != w.CompactIndexFor(SetDBLPRand) {
		t.Error("CompactIndexFor not cached")
	}
}

func TestWorkbenchConfigDefaults(t *testing.T) {
	var c WorkbenchConfig
	if c.queries() != 50 || c.epsClean() != 2 || c.epsRule() != 3 {
		t.Errorf("defaults: %d %d %d", c.queries(), c.epsClean(), c.epsRule())
	}
	c = WorkbenchConfig{QueriesPerSet: 5, EpsilonClean: 1, EpsilonRule: 2}
	if c.queries() != 5 || c.epsClean() != 1 || c.epsRule() != 2 {
		t.Error("explicit values ignored")
	}
}

func TestEpsilonFor(t *testing.T) {
	w := bench(t)
	if w.EpsilonFor(SetDBLPRule) <= w.EpsilonFor(SetDBLPRand) {
		t.Error("RULE sets need a larger variant threshold")
	}
}

func TestWorkbenchModHook(t *testing.T) {
	w := bench(t)
	e := w.XClean(SetDBLPRand, func(c *core.Config) { c.K = 1 })
	q := w.Sets[SetDBLPRand][0]
	if got := e.Suggest(q.Dirty); len(got) > 1 {
		t.Errorf("mod hook ignored: %d suggestions", len(got))
	}
}

func TestLatencyStatsString(t *testing.T) {
	var r LatencyRecorder
	r.Record(1000)
	r.Record(2000)
	s := r.Stats().String()
	for _, want := range []string{"mean=", "p95=", "n=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String()=%q missing %q", s, want)
		}
	}
}

func TestRankNormalization(t *testing.T) {
	opts := tokenizer.Options{}
	sugs := []core.Suggestion{
		{Words: []string{"great", "barrier", "reef"}},
	}
	// Case and punctuation differences must not break matching.
	if got := Rank(sugs, "Great Barrier, Reef", opts); got != 1 {
		t.Errorf("rank=%d want 1", got)
	}
	if got := Rank(sugs, "something else entirely", opts); got != 0 {
		t.Errorf("rank=%d want 0", got)
	}
	if got := Rank(nil, "x", opts); got != 0 {
		t.Errorf("rank=%d want 0 for empty suggestions", got)
	}
}
