package eval

import (
	"xclean/internal/baseline"
	"xclean/internal/core"
	"xclean/internal/dataset"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/queryset"
	"xclean/internal/slca"
	"xclean/internal/tokenizer"
)

// Set names follow the paper's Table II. The document-centric corpus
// keeps the paper's INEX label even though it is synthetic (see
// DESIGN.md §3).
const (
	SetDBLPClean = "DBLP-CLEAN"
	SetDBLPRand  = "DBLP-RAND"
	SetDBLPRule  = "DBLP-RULE"
	SetINEXClean = "INEX-CLEAN"
	SetINEXRand  = "INEX-RAND"
	SetINEXRule  = "INEX-RULE"
)

// SetNames lists all six query sets in the paper's reporting order.
var SetNames = []string{
	SetDBLPRand, SetDBLPRule, SetDBLPClean,
	SetINEXRand, SetINEXRule, SetINEXClean,
}

// WorkbenchConfig sizes the experiment environment.
type WorkbenchConfig struct {
	Seed          int64
	DBLPArticles  int // 0 = 20000
	WikiArticles  int // 0 = 2000
	QueriesPerSet int // 0 = 50
	// EpsilonClean is the variant threshold for CLEAN and RAND sets
	// (0 = 2); EpsilonRule for RULE sets (0 = 3), which need a larger
	// space because human misspellings are more distant (Sec. VII-D).
	EpsilonClean int
	EpsilonRule  int
}

func (c WorkbenchConfig) queries() int {
	if c.QueriesPerSet <= 0 {
		return 50
	}
	return c.QueriesPerSet
}

func (c WorkbenchConfig) epsClean() int {
	if c.EpsilonClean <= 0 {
		return 2
	}
	return c.EpsilonClean
}

func (c WorkbenchConfig) epsRule() int {
	if c.EpsilonRule <= 0 {
		return 3
	}
	return c.EpsilonRule
}

// Workbench owns the two corpora, their indexes, the six query sets,
// shared FastSS variant indexes, and the query log of the
// search-engine stand-ins. Building one is expensive; share it across
// experiments.
type Workbench struct {
	Cfg  WorkbenchConfig
	DBLP *dataset.DBLPCorpus
	Wiki *dataset.WikiCorpus

	DBLPIndex *invindex.Index
	WikiIndex *invindex.Index

	// Sets maps a set name to its evaluation pairs.
	Sets map[string][]Pair

	// fss caches variant indexes per (corpus, epsilon).
	fss map[fssKey]*fastss.Index
	// compIdx caches compacted copies of the corpus indexes, keyed by
	// IsDBLP.
	compIdx map[bool]*invindex.Index

	logFreq map[string]int64
	rules   map[string]string
}

type fssKey struct {
	dblp bool
	eps  int
}

// NewWorkbench generates corpora, builds indexes, and samples all six
// query sets, exactly as Section VII-A prescribes.
func NewWorkbench(cfg WorkbenchConfig) *Workbench {
	w := &Workbench{
		Cfg:     cfg,
		Sets:    make(map[string][]Pair),
		fss:     make(map[fssKey]*fastss.Index),
		compIdx: make(map[bool]*invindex.Index),
		rules:   queryset.Rules(),
	}
	w.DBLP = dataset.GenerateDBLP(dataset.DBLPConfig{Seed: cfg.Seed, Articles: cfg.DBLPArticles})
	w.Wiki = dataset.GenerateWiki(dataset.WikiConfig{Seed: cfg.Seed + 1, Articles: cfg.WikiArticles})
	w.DBLPIndex = invindex.Build(w.DBLP.Tree, tokenizer.Options{})
	w.WikiIndex = invindex.Build(w.Wiki.Tree, tokenizer.Options{})

	n := cfg.queries()
	dblpClean := w.DBLP.SampleQueries(cfg.Seed+2, n)
	wikiClean := w.Wiki.SampleQueries(cfg.Seed+3, n)
	// RULE sets need clean queries containing rule-covered words;
	// sample a larger pool and let MakeRule filter.
	dblpPool := w.DBLP.SampleQueries(cfg.Seed+4, n*20)
	wikiPool := w.Wiki.SampleQueries(cfg.Seed+5, n*20)

	dp := queryset.NewPerturber(cfg.Seed+6, w.DBLPIndex.Vocab)
	wp := queryset.NewPerturber(cfg.Seed+7, w.WikiIndex.Vocab)

	w.Sets[SetDBLPClean] = pairs(queryset.MakeClean(dblpClean))
	w.Sets[SetDBLPRand] = pairs(dp.MakeRand(dblpClean))
	w.Sets[SetDBLPRule] = capPairs(pairs(dp.MakeRule(dblpPool)), n)
	w.Sets[SetINEXClean] = pairs(queryset.MakeClean(wikiClean))
	w.Sets[SetINEXRand] = pairs(wp.MakeRand(wikiClean))
	w.Sets[SetINEXRule] = capPairs(pairs(wp.MakeRule(wikiPool)), n)

	// The SE stand-ins' query log: a *popular subset* of clean queries
	// plus unrelated popular background queries. Real engine logs
	// cover frequent queries well but miss the tail, which is what
	// limits them on randomly-perturbed rare terms.
	w.logFreq = make(map[string]int64)
	evalQueries := append(append([]string{}, dblpClean...), wikiClean...)
	for i, q := range evalQueries {
		if i%2 == 0 { // only half of the evaluated intents are "popular"
			w.logFreq[q] = int64(1 + 1000/(i+1))
		}
	}
	for i, q := range append(w.DBLP.SampleQueries(cfg.Seed+8, n*4),
		w.Wiki.SampleQueries(cfg.Seed+9, n*4)...) {
		w.logFreq[q] += int64(1 + 2000/(i+1))
	}
	return w
}

func pairs(qs []queryset.Query) []Pair {
	out := make([]Pair, len(qs))
	for i, q := range qs {
		out[i] = Pair{Dirty: q.Dirty, Truth: q.Truth}
	}
	return out
}

func capPairs(ps []Pair, n int) []Pair {
	if len(ps) > n {
		return ps[:n]
	}
	return ps
}

// IsDBLP reports whether a set name belongs to the data-centric
// corpus.
func IsDBLP(set string) bool { return set[0] == 'D' }

// IsRule reports whether a set uses rule-based perturbation.
func IsRule(set string) bool { return set[len(set)-4:] == "RULE" }

// IndexFor returns the index a set runs against.
func (w *Workbench) IndexFor(set string) *invindex.Index {
	if IsDBLP(set) {
		return w.DBLPIndex
	}
	return w.WikiIndex
}

// EpsilonFor returns the variant threshold used for a set.
func (w *Workbench) EpsilonFor(set string) int {
	if IsRule(set) {
		return w.Cfg.epsRule()
	}
	return w.Cfg.epsClean()
}

// FastSS returns (building on first use) the shared variant index for
// a set.
func (w *Workbench) FastSS(set string) *fastss.Index {
	key := fssKey{dblp: IsDBLP(set), eps: w.EpsilonFor(set)}
	if ix, ok := w.fss[key]; ok {
		return ix
	}
	ix := fastss.Build(w.IndexFor(set).VocabList(), fastss.Config{
		MaxErrors:    key.eps,
		PartitionLen: 12,
	})
	w.fss[key] = ix
	return ix
}

// CompactIndexFor returns (building on first use) a block-compressed
// copy of a set's index, for the compression ablation.
func (w *Workbench) CompactIndexFor(set string) *invindex.Index {
	key := IsDBLP(set)
	if ix, ok := w.compIdx[key]; ok {
		return ix
	}
	var ix *invindex.Index
	if key {
		ix = invindex.Build(w.DBLP.Tree, tokenizer.Options{})
	} else {
		ix = invindex.Build(w.Wiki.Tree, tokenizer.Options{})
	}
	ix.Compact()
	w.compIdx[key] = ix
	return ix
}

// XCleanCompact is XClean over the compacted copy of the set's index.
func (w *Workbench) XCleanCompact(set string, mod func(*core.Config)) *core.Engine {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return core.NewEngineWithFastSS(w.CompactIndexFor(set), w.FastSS(set), cfg)
}

// XClean builds the XClean engine for a set. mod, if non-nil, tweaks
// the configuration (used by the β and γ sweeps and the ablations).
func (w *Workbench) XClean(set string, mod func(*core.Config)) *core.Engine {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return core.NewEngineWithFastSS(w.IndexFor(set), w.FastSS(set), cfg)
}

// SLCA builds the SLCA-semantics engine for a set.
func (w *Workbench) SLCA(set string, mod func(*core.Config)) *slca.Engine {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return slca.NewEngineWithFastSS(w.IndexFor(set), w.FastSS(set), cfg)
}

// ELCA builds the ELCA-semantics engine for a set.
func (w *Workbench) ELCA(set string, mod func(*core.Config)) *slca.Engine {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return slca.NewELCAEngineWithFastSS(w.IndexFor(set), w.FastSS(set), cfg)
}

// HMM builds the Hidden-Markov-Model baseline (Pu [7]) for a set.
func (w *Workbench) HMM(set string, mod func(*core.Config)) *baseline.HMM {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return baseline.NewHMMWithFastSS(w.IndexFor(set), w.FastSS(set), cfg)
}

// PY08 builds the baseline for a set.
func (w *Workbench) PY08(set string, mod func(*core.Config)) *baseline.PY08 {
	cfg := core.Config{Epsilon: w.EpsilonFor(set)}
	if mod != nil {
		mod(&cfg)
	}
	return baseline.NewPY08WithFastSS(w.IndexFor(set), w.FastSS(set), cfg)
}

// combinedVocab trusts tokens indexed in either corpus (the site: the
// engine searches).
type combinedVocab struct{ w *Workbench }

func (v combinedVocab) Contains(t string) bool {
	return v.w.DBLPIndex.Vocab.Contains(t) || v.w.WikiIndex.Vocab.Contains(t)
}

// SE1 is the stronger search-engine stand-in: query log, site
// vocabulary, plus the human-misspelling rules (mirroring engines that
// learn corrections from logs).
func (w *Workbench) SE1() *baseline.LogCorrector {
	return baseline.NewLogCorrector(w.logFreq, w.rules,
		baseline.LogConfig{KnownWords: combinedVocab{w}})
}

// SE2 is the weaker stand-in: query log and site vocabulary only, no
// misspelling rules.
func (w *Workbench) SE2() *baseline.LogCorrector {
	return baseline.NewLogCorrector(w.logFreq, nil,
		baseline.LogConfig{KnownWords: combinedVocab{w}})
}

// SortedSetNames returns the configured sets present on this
// workbench, in reporting order.
func (w *Workbench) SortedSetNames() []string {
	out := make([]string, 0, len(w.Sets))
	for _, name := range SetNames {
		if _, ok := w.Sets[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
