package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads a single XML document from r and builds its tree.
// Attributes become child nodes labeled with the attribute name;
// character data is accumulated into the Text of the containing
// element. Comments, processing instructions, and directives are
// ignored, per Section III.
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)

	var tree *Tree
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if tree == nil {
				tree = NewTree(el.Name.Local)
				stack = append(stack, tree.Root)
				addAttrs(tree, tree.Root, el.Attr)
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: multiple root elements; use ParseCollection")
			}
			n := tree.AddChild(stack[len(stack)-1], el.Name.Local, "")
			addAttrs(tree, n, el.Attr)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(el))
				if text != "" {
					top := stack[len(stack)-1]
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += text
				}
			}
		}
	}
	if tree == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unexpected EOF inside element %q", stack[len(stack)-1].Label)
	}
	return tree, nil
}

func addAttrs(t *Tree, n *Node, attrs []xml.Attr) {
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		t.AddChild(n, a.Name.Local, a.Value)
	}
}

// ParseCollection parses several XML documents and joins them under a
// virtual root with the given label, as the paper does for the INEX
// collection ("we form a single XML document by adding a virtual
// root").
func ParseCollection(rootLabel string, readers ...io.Reader) (*Tree, error) {
	coll := NewTree(rootLabel)
	for i, r := range readers {
		doc, err := Parse(r)
		if err != nil {
			return nil, fmt.Errorf("xmltree: document %d: %w", i, err)
		}
		graft(coll, coll.Root, doc.Root)
	}
	return coll, nil
}

// graft copies src (from another tree) as a new child of parent in dst,
// re-interning paths and re-assigning Dewey codes.
func graft(dst *Tree, parent, src *Node) {
	n := dst.AddChild(parent, src.Label, src.Text)
	for _, c := range src.Children {
		graft(dst, n, c)
	}
}
