package xmltree

import (
	"fmt"
	"strings"
)

// PathID identifies an interned label path (a "node type" in the
// paper's terminology). The zero value InvalidPath is never a real
// path.
type PathID int32

// InvalidPath is the PathID of no path.
const InvalidPath PathID = -1

type pathEntry struct {
	parent PathID
	label  string
	depth  int32
}

// PathTable interns label paths as a trie so that (a) equal paths share
// one ID, (b) the ancestor path at any depth is an O(depth) walk, and
// (c) the full "/a/b/c" string is materialized only on demand.
//
// The zero value is ready to use.
type PathTable struct {
	entries  []pathEntry
	children map[pathChildKey]PathID
}

type pathChildKey struct {
	parent PathID
	label  string
}

// NewPathTable returns an empty table.
func NewPathTable() *PathTable {
	return &PathTable{children: make(map[pathChildKey]PathID)}
}

// Intern returns the ID for the child path of parent extended with
// label, creating it if necessary. Pass InvalidPath as parent to intern
// a root-level path ("/label").
func (t *PathTable) Intern(parent PathID, label string) PathID {
	if t.children == nil {
		t.children = make(map[pathChildKey]PathID)
	}
	key := pathChildKey{parent, label}
	if id, ok := t.children[key]; ok {
		return id
	}
	depth := int32(1)
	if parent != InvalidPath {
		depth = t.entries[parent].depth + 1
	}
	id := PathID(len(t.entries))
	t.entries = append(t.entries, pathEntry{parent: parent, label: label, depth: depth})
	t.children[key] = id
	return id
}

// Lookup resolves a "/a/b/c" path string to its ID, or InvalidPath if
// it was never interned.
func (t *PathTable) Lookup(path string) PathID {
	labels := splitPath(path)
	id := InvalidPath
	for _, l := range labels {
		next, ok := t.children[pathChildKey{id, l}]
		if !ok {
			return InvalidPath
		}
		id = next
	}
	return id
}

// InternPath interns a full "/a/b/c" path string and returns its ID.
func (t *PathTable) InternPath(path string) PathID {
	id := InvalidPath
	for _, l := range splitPath(path) {
		id = t.Intern(id, l)
	}
	return id
}

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// Depth is the number of labels on path id; root-level paths have
// depth 1, matching the paper's convention that the root node has
// depth 1.
func (t *PathTable) Depth(id PathID) int {
	if id == InvalidPath {
		return 0
	}
	return int(t.entries[id].depth)
}

// Label is the last label of path id.
func (t *PathTable) Label(id PathID) string { return t.entries[id].label }

// Parent is the path one label shorter, or InvalidPath for root-level
// paths.
func (t *PathTable) Parent(id PathID) PathID { return t.entries[id].parent }

// Ancestor returns the prefix of path id at the given depth. It returns
// id itself when depth ≥ Depth(id) and InvalidPath when depth ≤ 0.
func (t *PathTable) Ancestor(id PathID, depth int) PathID {
	if depth <= 0 {
		return InvalidPath
	}
	for id != InvalidPath && int(t.entries[id].depth) > depth {
		id = t.entries[id].parent
	}
	return id
}

// String renders path id as "/a/b/c".
func (t *PathTable) String(id PathID) string {
	if id == InvalidPath {
		return "/"
	}
	var labels []string
	for cur := id; cur != InvalidPath; cur = t.entries[cur].parent {
		labels = append(labels, t.entries[cur].label)
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// Len is the number of interned paths.
func (t *PathTable) Len() int { return len(t.entries) }

// Clone returns an independent copy of the table. Interning into the
// clone never touches the receiver, and because the table is
// append-only the clone assigns every already-interned path the same
// ID, so indexes built against the original keep resolving against the
// clone. This is what lets an immutable published table serve readers
// while a writer extends a private copy.
func (t *PathTable) Clone() *PathTable {
	c := &PathTable{
		entries:  make([]pathEntry, len(t.entries)),
		children: make(map[pathChildKey]PathID, len(t.children)),
	}
	copy(c.entries, t.entries)
	for k, v := range t.children {
		c.children[k] = v
	}
	return c
}

// Export serializes the table as parallel parent/label slices indexed
// by PathID, for persistence. The inverse is ImportPathTable.
func (t *PathTable) Export() (parents []int32, labels []string) {
	parents = make([]int32, len(t.entries))
	labels = make([]string, len(t.entries))
	for i, e := range t.entries {
		parents[i] = int32(e.parent)
		labels[i] = e.label
	}
	return parents, labels
}

// ImportPathTable rebuilds a table from Export's output. Entries must
// be topologically ordered (parents before children), which Export
// guarantees.
func ImportPathTable(parents []int32, labels []string) (*PathTable, error) {
	if len(parents) != len(labels) {
		return nil, fmt.Errorf("xmltree: mismatched path table slices (%d vs %d)", len(parents), len(labels))
	}
	t := NewPathTable()
	for i := range parents {
		p := PathID(parents[i])
		if p >= PathID(i) && p != InvalidPath {
			return nil, fmt.Errorf("xmltree: path entry %d references later parent %d", i, p)
		}
		if id := t.Intern(p, labels[i]); id != PathID(i) {
			return nil, fmt.Errorf("xmltree: duplicate path entry %d", i)
		}
	}
	return t, nil
}
