package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteXMLRoundTrip(t *testing.T) {
	src := `<a><c><x>tree escape &amp; more</x></c><d><x>icde</x></d></a>`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v (xml=%s)", err, buf.String())
	}
	a, b := tr.ComputeStats(), back.ComputeStats()
	if a != b {
		t.Errorf("round trip stats differ: %+v vs %+v", a, b)
	}
	if back.Root.Children[0].Children[0].Text != "tree escape & more" {
		t.Errorf("text lost: %q", back.Root.Children[0].Children[0].Text)
	}
}

func TestSerializedSize(t *testing.T) {
	tr := NewTree("a")
	tr.AddChild(tr.Root, "b", "hello")
	var buf bytes.Buffer
	tr.WriteXML(&buf)
	if got := tr.SerializedSize(); got != int64(buf.Len()) {
		t.Errorf("SerializedSize=%d buffer=%d", got, buf.Len())
	}
}
