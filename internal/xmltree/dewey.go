// Package xmltree models an XML document as a rooted, node-labeled,
// ordered tree with Dewey encoding and interned label paths, following
// Section III of the XClean paper (Lu et al., ICDE 2011).
//
// Every XML element, attribute, and text block becomes a node. A node's
// Dewey code is the concatenation of sibling ordinals on the path from
// the root; the root has code "1" and depth 1. Dewey codes decide both
// document order (component-wise numeric comparison) and the
// ancestor-descendant relation (prefix test), each in O(depth).
package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// Dewey is the Dewey code of a tree node: the sibling ordinals on the
// path from the root to the node. The root is Dewey{1}. A nil or empty
// Dewey is the code of the (virtual) super-root and is an ancestor of
// every node.
type Dewey []uint32

// ParseDewey parses a dot-separated Dewey code such as "1.2.3".
func ParseDewey(s string) (Dewey, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	d := make(Dewey, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("xmltree: invalid dewey %q: %v", s, err)
		}
		d[i] = uint32(v)
	}
	return d, nil
}

// String renders the code in the conventional dot-separated form.
func (d Dewey) String() string {
	if len(d) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range d {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// Depth is the depth of the node identified by d; the root has depth 1.
func (d Dewey) Depth() int { return len(d) }

// Compare orders two codes in document order: -1 if d precedes e, +1 if
// e precedes d, and 0 if they identify the same node. An ancestor
// precedes all of its descendants.
func (d Dewey) Compare(e Dewey) int {
	n := len(d)
	if len(e) < n {
		n = len(e)
	}
	for i := 0; i < n; i++ {
		switch {
		case d[i] < e[i]:
			return -1
		case d[i] > e[i]:
			return 1
		}
	}
	switch {
	case len(d) < len(e):
		return -1
	case len(d) > len(e):
		return 1
	}
	return 0
}

// AncestorOf reports whether d is a proper ancestor of e (d ≺_AD e),
// i.e. d is a strict prefix of e.
func (d Dewey) AncestorOf(e Dewey) bool {
	if len(d) >= len(e) {
		return false
	}
	for i, c := range d {
		if e[i] != c {
			return false
		}
	}
	return true
}

// AncestorOrSelf reports whether d is an ancestor of e or equals e.
func (d Dewey) AncestorOrSelf(e Dewey) bool {
	if len(d) > len(e) {
		return false
	}
	for i, c := range d {
		if e[i] != c {
			return false
		}
	}
	return true
}

// Truncate returns the prefix of d at the given depth (the ancestor of d
// at that depth). If depth ≥ len(d) the code itself is returned. The
// returned slice aliases d; callers must not mutate it.
func (d Dewey) Truncate(depth int) Dewey {
	if depth >= len(d) {
		return d
	}
	if depth < 0 {
		depth = 0
	}
	return d[:depth]
}

// Clone returns an independent copy of d.
func (d Dewey) Clone() Dewey {
	if d == nil {
		return nil
	}
	c := make(Dewey, len(d))
	copy(c, d)
	return c
}

// Child returns a fresh code for the ordinal-th child of d.
func (d Dewey) Child(ordinal uint32) Dewey {
	c := make(Dewey, len(d)+1)
	copy(c, d)
	c[len(d)] = ordinal
	return c
}

// Key encodes d as a string of fixed-width big-endian components.
// Lexicographic byte order on keys coincides with document order, and a
// key-prefix test (at 4-byte granularity) coincides with the
// ancestor-or-self relation, which makes keys suitable for map indexing
// and sorted storage.
func (d Dewey) Key() string {
	b := make([]byte, 4*len(d))
	for i, c := range d {
		b[4*i] = byte(c >> 24)
		b[4*i+1] = byte(c >> 16)
		b[4*i+2] = byte(c >> 8)
		b[4*i+3] = byte(c)
	}
	return string(b)
}

// DeweyFromKey decodes a key produced by Key.
func DeweyFromKey(k string) Dewey {
	if len(k)%4 != 0 {
		panic("xmltree: malformed dewey key")
	}
	d := make(Dewey, len(k)/4)
	for i := range d {
		d[i] = uint32(k[4*i])<<24 | uint32(k[4*i+1])<<16 | uint32(k[4*i+2])<<8 | uint32(k[4*i+3])
	}
	return d
}
