package xmltree

import (
	"strings"
	"testing"
)

// TestParseMalformedInputs: every malformed document must produce an
// error, never a panic or a silently-wrong tree.
func TestParseMalformedInputs(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"whitespace":         "   \n\t  ",
		"truncated-open":     "<a><b>",
		"truncated-text":     "<a>hello",
		"mismatched":         "<a><b></a></b>",
		"stray-close":        "</a>",
		"double-root":        "<a></a><b></b>",
		"bare-text":          "just text, no markup",
		"bad-entity":         "<a>&unknown;</a>",
		"unclosed-attr":      `<a attr="oops></a>`,
		"nul-in-tag":         "<a\x00b></a\x00b>",
		"angle-soup":         "<<a>>",
		"comment-only":       "<!-- nothing here -->",
		"directive-only":     "<!DOCTYPE html>",
		"pi-only":            `<?xml version="1.0"?>`,
		"cdata-unterminated": "<a><![CDATA[oops</a>",
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: malformed document %q accepted", name, doc)
		}
	}
}

// TestParseToleratedOddities: valid-but-odd XML must parse without
// error and with the expected structure.
func TestParseToleratedOddities(t *testing.T) {
	// Comments, PIs, and directives are ignored.
	tr, err := Parse(strings.NewReader(
		`<?xml version="1.0"?><!-- c --><a><!-- inner --><b>x</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Text != "x" {
		t.Errorf("tree: %+v", tr.Root)
	}

	// CDATA becomes text.
	tr, err = Parse(strings.NewReader("<a><![CDATA[1 < 2 & 3]]></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Text != "1 < 2 & 3" {
		t.Errorf("cdata text %q", tr.Root.Text)
	}

	// Mixed content is accumulated with single-space joins.
	tr, err = Parse(strings.NewReader("<a>one<b/>two</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Text != "one two" {
		t.Errorf("mixed text %q", tr.Root.Text)
	}

	// Namespaces: local names are kept, xmlns declarations dropped.
	tr, err = Parse(strings.NewReader(
		`<a xmlns="urn:x" xmlns:y="urn:y"><y:b attr="v">t</y:b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 1 {
		t.Fatalf("children: %d", len(tr.Root.Children))
	}
	b := tr.Root.Children[0]
	if b.Label != "b" || len(b.Children) != 1 || b.Children[0].Label != "attr" {
		t.Errorf("namespace handling: %+v", b)
	}

	// Deep nesting must not blow up.
	var sb strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	tr, err = Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if st := tr.ComputeStats(); st.MaxDepth != depth {
		t.Errorf("depth=%d want %d", st.MaxDepth, depth)
	}
}

func TestParseCollectionErrors(t *testing.T) {
	_, err := ParseCollection("root",
		strings.NewReader("<a>ok</a>"),
		strings.NewReader("<broken>"))
	if err == nil {
		t.Error("collection with broken member accepted")
	}
	if !strings.Contains(err.Error(), "document 1") {
		t.Errorf("error %q should name the failing document", err)
	}
	// Empty collections are a valid (if useless) tree.
	tr, err := ParseCollection("root")
	if err != nil || len(tr.Root.Children) != 0 {
		t.Errorf("empty collection: %v %v", tr, err)
	}
}

// TestParseUnicode: multi-byte runes survive parsing, tokenization
// boundaries aside.
func TestParseUnicode(t *testing.T) {
	tr, err := Parse(strings.NewReader("<a><author>hinrich schütze</author><t>日本語 text</t></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Children[0].Text != "hinrich schütze" {
		t.Errorf("text %q", tr.Root.Children[0].Text)
	}
	if tr.Root.Children[1].Text != "日本語 text" {
		t.Errorf("text %q", tr.Root.Children[1].Text)
	}
}
