package xmltree

import (
	"bufio"
	"encoding/xml"
	"io"
)

// WriteXML serializes the tree as an XML document. Attribute nodes
// were folded into elements at parse time, so every node is written as
// an element; text precedes child elements. It returns the number of
// bytes written.
func (t *Tree) WriteXML(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if t.Root != nil {
		if err := writeNode(cw, t.Root); err != nil {
			return cw.n, err
		}
	}
	if err := cw.w.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// SerializedSize returns the size in bytes of the XML serialization
// (Table I's dataset-size column) without materializing it.
func (t *Tree) SerializedSize() int64 {
	n, _ := t.WriteXML(io.Discard)
	return n
}

func writeNode(cw *countingWriter, n *Node) error {
	if err := cw.writeString("<" + n.Label + ">"); err != nil {
		return err
	}
	if n.Text != "" {
		if err := xml.EscapeText(cw, []byte(n.Text)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeNode(cw, c); err != nil {
			return err
		}
	}
	return cw.writeString("</" + n.Label + ">")
}

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countingWriter) writeString(s string) error {
	n, err := c.w.WriteString(s)
	c.n += int64(n)
	return err
}
