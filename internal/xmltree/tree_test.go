package xmltree

import (
	"strings"
	"testing"
)

func TestPathTableIntern(t *testing.T) {
	pt := NewPathTable()
	a := pt.InternPath("/a")
	ab := pt.InternPath("/a/b")
	ab2 := pt.InternPath("/a/b")
	ac := pt.InternPath("/a/c")
	abc := pt.InternPath("/a/b/c")

	if ab != ab2 {
		t.Error("identical paths should share an ID")
	}
	if ab == ac {
		t.Error("distinct paths should have distinct IDs")
	}
	if pt.Depth(a) != 1 || pt.Depth(ab) != 2 || pt.Depth(abc) != 3 {
		t.Errorf("depths: %d %d %d", pt.Depth(a), pt.Depth(ab), pt.Depth(abc))
	}
	if pt.String(abc) != "/a/b/c" {
		t.Errorf("String=%s", pt.String(abc))
	}
	if pt.Parent(abc) != ab || pt.Parent(a) != InvalidPath {
		t.Error("parent links wrong")
	}
	if pt.Lookup("/a/b/c") != abc {
		t.Error("Lookup failed")
	}
	if pt.Lookup("/a/x") != InvalidPath {
		t.Error("Lookup of unknown path should be InvalidPath")
	}
	if pt.Ancestor(abc, 2) != ab || pt.Ancestor(abc, 1) != a {
		t.Error("Ancestor walk wrong")
	}
	if pt.Ancestor(abc, 3) != abc {
		t.Error("Ancestor at own depth should be identity")
	}
	if pt.Ancestor(abc, 0) != InvalidPath {
		t.Error("Ancestor at depth 0 should be InvalidPath")
	}
	if pt.Len() != 4 {
		t.Errorf("Len=%d want 4", pt.Len())
	}
	if pt.Label(abc) != "c" {
		t.Errorf("Label=%s", pt.Label(abc))
	}
}

func TestTreeBuildAndFind(t *testing.T) {
	tr := NewTree("a")
	c := tr.AddChild(tr.Root, "c", "")
	x1 := tr.AddChild(c, "x", "tree")
	d := tr.AddChild(tr.Root, "d", "")
	x2 := tr.AddChild(d, "x", "icde")

	if c.Dewey.String() != "1.1" || x1.Dewey.String() != "1.1.1" {
		t.Errorf("dewey codes: %s %s", c.Dewey, x1.Dewey)
	}
	if d.Dewey.String() != "1.2" || x2.Dewey.String() != "1.2.1" {
		t.Errorf("dewey codes: %s %s", d.Dewey, x2.Dewey)
	}
	if x1.Path != x2.Path {
		// /a/c/x vs /a/d/x must differ
	} else {
		t.Error("paths under different parents must differ")
	}
	if got := tr.Find(x2.Dewey); got != x2 {
		t.Errorf("Find(%s)=%v", x2.Dewey, got)
	}
	if tr.Find(Dewey{1, 9}) != nil {
		t.Error("Find of absent node should be nil")
	}
	if tr.Find(Dewey{2}) != nil {
		t.Error("Find with wrong root should be nil")
	}
}

func TestTreeWalkOrder(t *testing.T) {
	tr := NewTree("a")
	b := tr.AddChild(tr.Root, "b", "")
	tr.AddChild(b, "c", "")
	tr.AddChild(tr.Root, "d", "")

	var order []string
	tr.Walk(func(n *Node) bool {
		order = append(order, n.Dewey.String())
		return true
	})
	want := []string{"1", "1.1", "1.1.1", "1.2"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("walk order %v want %v", order, want)
	}

	// Pruned walk: skip b's subtree.
	order = nil
	tr.Walk(func(n *Node) bool {
		order = append(order, n.Dewey.String())
		return n.Label != "b"
	})
	want = []string{"1", "1.1", "1.2"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("pruned walk %v want %v", order, want)
	}
}

func TestParseSimple(t *testing.T) {
	src := `<a><c><x>tree</x></c><d year="2011"><x>icde</x></d></a>`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	// a, c, x, d, year(attr), x = 6 nodes
	if st.Nodes != 6 {
		t.Errorf("nodes=%d want 6", st.Nodes)
	}
	if st.MaxDepth != 3 {
		t.Errorf("maxDepth=%d want 3", st.MaxDepth)
	}
	d := tr.Root.Children[1]
	if d.Label != "d" || len(d.Children) != 2 {
		t.Fatalf("bad d node: %+v", d)
	}
	if d.Children[0].Label != "year" || d.Children[0].Text != "2011" {
		t.Errorf("attribute node wrong: %+v", d.Children[0])
	}
	if tr.Paths.Lookup("/a/d/x") == InvalidPath {
		t.Error("path /a/d/x not interned")
	}
}

func TestParseMixedContent(t *testing.T) {
	src := `<p>hello <b>bold</b> world</p>`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Text != "hello world" {
		t.Errorf("mixed text=%q", tr.Root.Text)
	}
	if tr.Root.Children[0].Text != "bold" {
		t.Errorf("inner text=%q", tr.Root.Children[0].Text)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "<a><b></a>", "<a></a><b></b>"} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestParseCollection(t *testing.T) {
	tr, err := ParseCollection("root",
		strings.NewReader(`<doc><t>alpha</t></doc>`),
		strings.NewReader(`<doc><t>beta</t></doc>`),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 2 {
		t.Fatalf("children=%d", len(tr.Root.Children))
	}
	d2 := tr.Root.Children[1]
	if d2.Dewey.String() != "1.2" {
		t.Errorf("second doc dewey=%s", d2.Dewey)
	}
	if d2.Children[0].Text != "beta" {
		t.Errorf("second doc text=%q", d2.Children[0].Text)
	}
	if tr.Paths.Lookup("/root/doc/t") == InvalidPath {
		t.Error("grafted path not interned")
	}
}

func TestComputeStats(t *testing.T) {
	tr := NewTree("a")
	b := tr.AddChild(tr.Root, "b", "xx")
	tr.AddChild(b, "c", "yyy")
	st := tr.ComputeStats()
	if st.Nodes != 3 || st.MaxDepth != 3 || st.TextBytes != 5 {
		t.Errorf("stats=%+v", st)
	}
	if got := st.AvgDepth(); got != 2.0 {
		t.Errorf("avgDepth=%f", got)
	}
	if (Stats{}).AvgDepth() != 0 {
		t.Error("empty AvgDepth should be 0")
	}
}
