package xmltree

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDeweyRoundTrip(t *testing.T) {
	cases := []string{"1", "1.2", "1.2.3", "1.10.2", "7", ""}
	for _, s := range cases {
		d, err := ParseDewey(s)
		if err != nil {
			t.Fatalf("ParseDewey(%q): %v", s, err)
		}
		if got := d.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseDeweyErrors(t *testing.T) {
	for _, s := range []string{"a", "1..2", "1.x", "-1", "1.-2"} {
		if _, err := ParseDewey(s); err == nil {
			t.Errorf("ParseDewey(%q): want error", s)
		}
	}
}

func mustDewey(t *testing.T, s string) Dewey {
	t.Helper()
	d, err := ParseDewey(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeweyCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "1", 0},
		{"1", "1.1", -1},
		{"1.1", "1", 1},
		{"1.2", "1.10", -1}, // numeric, not lexicographic
		{"1.2.3", "1.3", -1},
		{"2", "1.9.9", 1},
	}
	for _, c := range cases {
		a, b := mustDewey(t, c.a), mustDewey(t, c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%s,%s)=%d want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%s,%s)=%d want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestDeweyAncestor(t *testing.T) {
	cases := []struct {
		a, b                string
		ancestor, ancOrSelf bool
	}{
		{"1", "1.2", true, true},
		{"1", "1", false, true},
		{"1.2", "1.2.3.4", true, true},
		{"1.2", "1.3", false, false},
		{"1.2.3", "1.2", false, false},
		{"", "1.2", true, true},
	}
	for _, c := range cases {
		a, b := mustDewey(t, c.a), mustDewey(t, c.b)
		if got := a.AncestorOf(b); got != c.ancestor {
			t.Errorf("AncestorOf(%q,%q)=%v want %v", c.a, c.b, got, c.ancestor)
		}
		if got := a.AncestorOrSelf(b); got != c.ancOrSelf {
			t.Errorf("AncestorOrSelf(%q,%q)=%v want %v", c.a, c.b, got, c.ancOrSelf)
		}
	}
}

func TestDeweyTruncateAndChild(t *testing.T) {
	d := mustDewey(t, "1.2.3.4")
	if got := d.Truncate(2).String(); got != "1.2" {
		t.Errorf("Truncate(2)=%s", got)
	}
	if got := d.Truncate(9).String(); got != "1.2.3.4" {
		t.Errorf("Truncate(9)=%s", got)
	}
	if got := d.Truncate(0).String(); got != "" {
		t.Errorf("Truncate(0)=%q", got)
	}
	if got := d.Child(7).String(); got != "1.2.3.4.7" {
		t.Errorf("Child(7)=%s", got)
	}
	if d.Depth() != 4 {
		t.Errorf("Depth=%d", d.Depth())
	}
}

func TestDeweyKeyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		d := Dewey(raw)
		back := DeweyFromKey(d.Key())
		if len(raw) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lexicographic order on Key() equals document order from
// Compare().
func TestDeweyKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randDewey := func() Dewey {
		n := 1 + rng.Intn(6)
		d := make(Dewey, n)
		for i := range d {
			d[i] = uint32(rng.Intn(300))
		}
		return d
	}
	for i := 0; i < 2000; i++ {
		a, b := randDewey(), randDewey()
		cmp := a.Compare(b)
		keyCmp := strings.Compare(a.Key(), b.Key())
		if (cmp < 0) != (keyCmp < 0) || (cmp == 0) != (keyCmp == 0) {
			t.Fatalf("order mismatch %v vs %v: Compare=%d keyCmp=%d", a, b, cmp, keyCmp)
		}
	}
}

// Property: sorting Dewey codes by Compare yields ancestors before
// descendants.
func TestDeweySortAncestorsFirst(t *testing.T) {
	ds := []Dewey{
		mustDewey(t, "1.2.3"), mustDewey(t, "1"), mustDewey(t, "1.2"),
		mustDewey(t, "1.10"), mustDewey(t, "1.2.3.1"),
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Compare(ds[j]) < 0 })
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].AncestorOf(ds[i]) {
				t.Fatalf("descendant %v sorted before ancestor %v", ds[i], ds[j])
			}
		}
	}
}

func TestDeweyClone(t *testing.T) {
	d := mustDewey(t, "1.2.3")
	c := d.Clone()
	c[0] = 9
	if d[0] != 1 {
		t.Error("Clone aliases original")
	}
	if Dewey(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}
