package xmltree

import (
	"reflect"
	"strings"
	"testing"
)

func TestPathTableExportImportRoundtrip(t *testing.T) {
	pt := NewPathTable()
	a := pt.InternPath("/dblp/article")
	b := pt.InternPath("/dblp/article/title")
	c := pt.InternPath("/dblp/inproceedings")

	parents, labels := pt.Export()
	got, err := ImportPathTable(parents, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pt.Len() {
		t.Fatalf("len %d want %d", got.Len(), pt.Len())
	}
	for _, id := range []PathID{a, b, c} {
		if got.String(id) != pt.String(id) {
			t.Errorf("path %d: %q vs %q", id, got.String(id), pt.String(id))
		}
		if got.Depth(id) != pt.Depth(id) {
			t.Errorf("path %d depth", id)
		}
	}
	// IDs must be stable: looking up by string returns the same ID.
	if got.Lookup("/dblp/article/title") != b {
		t.Error("IDs shifted across export/import")
	}
}

func TestImportPathTableErrors(t *testing.T) {
	if _, err := ImportPathTable([]int32{0}, []string{"a", "b"}); err == nil {
		t.Error("mismatched slices accepted")
	}
	// Entry referencing a later parent violates topological order.
	if _, err := ImportPathTable([]int32{1, int32(InvalidPath)}, []string{"a", "b"}); err == nil {
		t.Error("forward parent reference accepted")
	}
	// Duplicate entry: interning the same (parent, label) twice cannot
	// produce two IDs.
	if _, err := ImportPathTable(
		[]int32{int32(InvalidPath), int32(InvalidPath)},
		[]string{"a", "a"},
	); err == nil {
		t.Error("duplicate entry accepted")
	}
}

func TestPathTableDepthAndSplitEdges(t *testing.T) {
	pt := NewPathTable()
	if pt.Depth(InvalidPath) != 0 {
		t.Error("InvalidPath depth != 0")
	}
	if pt.Lookup("/") != InvalidPath {
		t.Error("root-only lookup should be InvalidPath")
	}
	if pt.Lookup("") != InvalidPath {
		t.Error("empty lookup should be InvalidPath")
	}
	id := pt.InternPath("a/b") // unanchored form is tolerated
	if pt.String(id) != "/a/b" {
		t.Errorf("String=%q", pt.String(id))
	}
}

func TestIsLeaf(t *testing.T) {
	tr := NewTree("r")
	child := tr.AddChild(tr.Root, "c", "text")
	if tr.Root.IsLeaf() {
		t.Error("root with child reported leaf")
	}
	if !child.IsLeaf() {
		t.Error("childless node not leaf")
	}
}

func TestSerializeRoundtripWithAttrs(t *testing.T) {
	in := `<bib size="large"><paper id="1"><title>a &amp; b &lt;c&gt;</title></paper></bib>`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	n, err := tr.WriteXML(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(sb.Len()) {
		t.Errorf("WriteXML reported %d bytes, wrote %d", n, sb.Len())
	}
	// Reparse the serialized form: the trees must be identical.
	tr2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v (serialized: %s)", err, sb.String())
	}
	var walk func(a, b *Node) bool
	walk = func(a, b *Node) bool {
		if a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !walk(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !walk(tr.Root, tr2.Root) {
		t.Errorf("roundtrip mismatch:\nin:  %s\nout: %s", in, sb.String())
	}
	if !reflect.DeepEqual(tr.ComputeStats(), tr2.ComputeStats()) {
		t.Error("stats diverge after roundtrip")
	}
}
