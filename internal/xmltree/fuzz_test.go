package xmltree

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzParse asserts two properties on arbitrary input: Parse never
// panics, and any accepted document survives a serialize→reparse
// roundtrip with identical structure.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a><b>x</b></a>",
		`<a attr="v"><b/>text</a>`,
		"<a>&amp;&lt;&gt;</a>",
		"<a><![CDATA[raw < cdata]]></a>",
		`<?xml version="1.0"?><r xmlns:x="u"><x:e/></r>`,
		"<a><b>unclosed",
		"</stray>",
		"<a>日本語 schütze</a>",
		"<deep><deep><deep><deep>x</deep></deep></deep></deep>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Go's decoder is lenient about the local part of namespaced
		// names (it accepts <A:0/>, local name "0"), but such labels
		// cannot be re-serialized as standalone element names. The
		// roundtrip property only applies to serializable labels; the
		// no-panic property above applies to everything.
		serializable := true
		tr.Walk(func(n *Node) bool {
			if !validXMLName(n.Label) {
				serializable = false
			}
			return serializable
		})
		if !serializable {
			return
		}
		var sb strings.Builder
		if _, err := tr.WriteXML(&sb); err != nil {
			t.Fatalf("serialize accepted doc: %v", err)
		}
		tr2, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse own output: %v\noutput: %q", err, sb.String())
		}
		var eq func(a, b *Node) bool
		eq = func(a, b *Node) bool {
			if a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
				return false
			}
			for i := range a.Children {
				if !eq(a.Children[i], b.Children[i]) {
					return false
				}
			}
			return true
		}
		if !eq(tr.Root, tr2.Root) {
			t.Fatalf("roundtrip changed the tree for %q", doc)
		}
	})
}

// validXMLName is a conservative XML-name check: names that pass are
// definitely serializable; rejecting some exotic-but-legal names only
// narrows the roundtrip property, never weakens it.
func validXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || unicode.IsLetter(r)
		if i == 0 && !letter {
			return false
		}
		if !letter && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

// FuzzParseDewey: ParseDewey never panics, and accepted codes
// roundtrip through String and Key.
func FuzzParseDewey(f *testing.F) {
	for _, s := range []string{"", "1", "1.2.3", "0", "4294967295", "1..2", "x", "1.2."} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDewey(s)
		if err != nil {
			return
		}
		if d == nil {
			return
		}
		back, err := ParseDewey(d.String())
		if err != nil || back.Compare(d) != 0 {
			t.Fatalf("string roundtrip of %q failed: %v %v", s, back, err)
		}
		if DeweyFromKey(d.Key()).Compare(d) != 0 {
			t.Fatalf("key roundtrip of %q failed", s)
		}
	})
}
