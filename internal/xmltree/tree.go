package xmltree

// Node is one element (or attribute) of the parsed tree. Attribute
// nodes are represented as ordinary child elements labeled with the
// attribute name, and character data is attached as Text to the element
// that directly contains it, per Section III of the paper.
type Node struct {
	Label    string
	Path     PathID
	Dewey    Dewey
	Text     string
	Children []*Node
}

// IsLeaf reports whether the node has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a parsed XML document (or a collection of documents joined
// under one virtual root).
type Tree struct {
	Paths *PathTable
	Root  *Node
}

// NewTree creates a tree consisting of a single root node with the
// given label (Dewey code "1").
func NewTree(rootLabel string) *Tree {
	paths := NewPathTable()
	root := &Node{
		Label: rootLabel,
		Path:  paths.Intern(InvalidPath, rootLabel),
		Dewey: Dewey{1},
	}
	return &Tree{Paths: paths, Root: root}
}

// AddChild appends a new child element under parent, assigning the next
// sibling ordinal and interning its label path. The new node is
// returned.
func (t *Tree) AddChild(parent *Node, label, text string) *Node {
	child := &Node{
		Label: label,
		Path:  t.Paths.Intern(parent.Path, label),
		Dewey: parent.Dewey.Child(uint32(len(parent.Children) + 1)),
		Text:  text,
	}
	parent.Children = append(parent.Children, child)
	return child
}

// Walk visits every node in document (pre-)order, stopping early if fn
// returns false for a node's subtree (the node's children are skipped
// but its following siblings are still visited).
func (t *Tree) Walk(fn func(*Node) bool) {
	if t.Root == nil {
		return
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Find returns the node with the given Dewey code, or nil.
func (t *Tree) Find(d Dewey) *Node {
	if t.Root == nil || len(d) == 0 || d[0] != t.Root.Dewey[0] {
		return nil
	}
	n := t.Root
	for _, ord := range d[1:] {
		if int(ord) < 1 || int(ord) > len(n.Children) {
			return nil
		}
		n = n.Children[ord-1]
	}
	return n
}

// Stats summarizes the structural statistics the paper reports in
// Table I.
type Stats struct {
	Nodes     int
	MaxDepth  int
	SumDepth  int64
	TextBytes int64
}

// AvgDepth is the mean node depth.
func (s Stats) AvgDepth() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.SumDepth) / float64(s.Nodes)
}

// ComputeStats walks the tree once and gathers Table-I style statistics.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	t.Walk(func(n *Node) bool {
		s.Nodes++
		d := n.Dewey.Depth()
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		s.SumDepth += int64(d)
		s.TextBytes += int64(len(n.Text))
		return true
	})
	return s
}
