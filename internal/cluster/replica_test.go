// Internal tests of the replica routing policy: deterministic
// least-loaded picking under synthetic load inputs, rendezvous
// stability across coordinator restarts, and the
// hedge-goes-to-a-different-replica invariant.
package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// testShardSet builds one shard of n replicas with fixed URLs.
func testShardSet(t *testing.T, n int) *shardSet {
	t.Helper()
	reps := make([]Endpoint, n)
	for i := range reps {
		reps[i] = Endpoint(fmt.Sprintf("host%d:80%02d", i, i))
	}
	shards, err := buildShards([][]Endpoint{reps})
	if err != nil {
		t.Fatal(err)
	}
	return shards[0]
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		in   string
		want [][]Endpoint
	}{
		{"h0,h1", [][]Endpoint{{"h0"}, {"h1"}}},
		{"h0a|h0b,h1a|h1b", [][]Endpoint{{"h0a", "h0b"}, {"h1a", "h1b"}}},
		{"h0a,h0b;h1a,h1b", [][]Endpoint{{"h0a", "h0b"}, {"h1a", "h1b"}}},
		{"h0; h1a , h1b", [][]Endpoint{{"h0"}, {"h1a", "h1b"}}},
		{"solo", [][]Endpoint{{"solo"}}},
	}
	for _, c := range cases {
		if got := ParseTopology(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseTopology(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSingleReplica(t *testing.T) {
	got := SingleReplica("a:1", "b:2")
	want := [][]Endpoint{{"a:1"}, {"b:2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SingleReplica = %v, want %v", got, want)
	}
}

// TestRendezvousStability: the preference order is a deterministic
// function of (key, replica URLs) — two independently-built shard sets
// (two coordinator restarts) agree on every key, and keys spread over
// all replicas rather than piling on one.
func TestRendezvousStability(t *testing.T) {
	a, b := testShardSet(t, 4), testShardSet(t, 4)
	now := time.Now()
	heads := map[int]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("corpus\x00query-%d", i)
		oa, ob := a.order(key, now), b.order(key, now)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %q: restart changed preference order: %v vs %v", key, oa, ob)
		}
		seen := map[int]bool{}
		for _, j := range oa {
			seen[j] = true
		}
		if len(seen) != 4 {
			t.Fatalf("key %q: order %v is not a permutation", key, oa)
		}
		heads[oa[0]]++
	}
	for i := 0; i < 4; i++ {
		if heads[i] == 0 {
			t.Fatalf("replica %d attracted no keys: %v", i, heads)
		}
	}
}

// TestRendezvousMinimalMovement: removing one replica reassigns only
// the keys that preferred it; every other key keeps its head replica
// (by URL). This is what keeps suggestion caches warm through a
// topology change.
func TestRendezvousMinimalMovement(t *testing.T) {
	full := testShardSet(t, 4)
	removed := full.replicas[3].URL
	shrunk, err := buildShards([][]Endpoint{{
		Endpoint(full.replicas[0].URL),
		Endpoint(full.replicas[1].URL),
		Endpoint(full.replicas[2].URL),
	}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	moved, kept := 0, 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k\x00%d", i)
		before := full.replicas[full.order(key, now)[0]].URL
		after := shrunk[0].replicas[shrunk[0].order(key, now)[0]].URL
		if before == removed {
			moved++
			continue // this key had to move
		}
		if before != after {
			t.Fatalf("key %q moved from %s to %s though %s was the removed replica",
				key, before, after, removed)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate key split: moved=%d kept=%d", moved, kept)
	}
}

// TestPickFirstLeastLoaded: the affinity head keeps the pick while its
// load score stays within LoadFactor× the lightest replica's, and is
// deterministically routed around once it does not.
func TestPickFirstLeastLoaded(t *testing.T) {
	sh := testShardSet(t, 3)
	ord := sh.order("some\x00key", time.Now())
	head, alt := ord[0], ord[1]

	// Synthetic EWMA: head slightly slower but within 2× — affinity wins.
	sh.replicas[head].ewmaNs.Store(15e6)
	sh.replicas[alt].ewmaNs.Store(10e6)
	sh.replicas[ord[2]].ewmaNs.Store(10e6)
	if got := sh.pickFirst(ord, 2.0); got != head {
		t.Fatalf("pickFirst = %d, want affinity head %d within the load factor", got, head)
	}

	// Head overloaded (queue of 9 in flight): routed to the lightest.
	sh.replicas[head].inflight.Store(9)
	got := sh.pickFirst(ord, 2.0)
	if got == head {
		t.Fatal("pickFirst kept an overloaded affinity head")
	}
	want, wantScore := ord[0], sh.replicas[ord[0]].loadScore()
	for _, i := range ord[1:] {
		if sc := sh.replicas[i].loadScore(); sc < wantScore {
			want, wantScore = i, sc
		}
	}
	if got != want {
		t.Fatalf("pickFirst = %d, want least-loaded %d", got, want)
	}

	// Deterministic: same inputs, same pick.
	for i := 0; i < 10; i++ {
		if again := sh.pickFirst(ord, 2.0); again != got {
			t.Fatalf("pickFirst flapped: %d then %d on identical inputs", got, again)
		}
	}
}

// TestHedgeTargetDifferentReplica: with ≥2 replicas the hedge target
// is never the first-attempt replica, whatever the first pick was;
// with 1 replica it falls back to the only endpoint.
func TestHedgeTargetDifferentReplica(t *testing.T) {
	sh := testShardSet(t, 3)
	now := time.Now()
	for i := 0; i < 50; i++ {
		ord := sh.order(fmt.Sprintf("q\x00%d", i), now)
		for _, first := range ord {
			if h := sh.hedgeTarget(ord, first); h == first {
				t.Fatalf("hedge target %d equals first attempt %d (order %v)", h, first, ord)
			}
		}
	}
	solo := testShardSet(t, 1)
	ord := solo.order("q\x000", now)
	if h := solo.hedgeTarget(ord, ord[0]); h != ord[0] {
		t.Fatalf("single-replica hedge target = %d, want the only replica %d", h, ord[0])
	}
}

// TestOrderCoolingDemotion: a replica in failure cooldown moves to the
// back of every preference order without disturbing the relative order
// of the healthy ones, and is restored once the cooldown lapses.
func TestOrderCoolingDemotion(t *testing.T) {
	sh := testShardSet(t, 3)
	now := time.Now()
	key := "corpus\x00cooling"
	base := sh.order(key, now)
	sh.replicas[base[0]].markFailure(now, time.Minute)
	demoted := sh.order(key, now)
	want := append(append([]int{}, base[1:]...), base[0])
	if !reflect.DeepEqual(demoted, want) {
		t.Fatalf("cooling order = %v, want %v", demoted, want)
	}
	if got := sh.order(key, now.Add(2*time.Minute)); !reflect.DeepEqual(got, base) {
		t.Fatalf("post-cooldown order = %v, want restored %v", got, base)
	}
	sh.replicas[base[0]].markSuccess()
	if got := sh.order(key, now); !reflect.DeepEqual(got, base) {
		t.Fatalf("markSuccess did not clear the cooldown: %v, want %v", got, base)
	}
}

// TestObserveLatencyEWMA: the first sample is taken whole; later
// samples fold in at α=0.25; the moving average converges toward a
// stable input.
func TestObserveLatencyEWMA(t *testing.T) {
	r := &replicaState{}
	r.observeLatency(100 * time.Millisecond)
	if got := r.ewmaNs.Load(); got != (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("first sample ewma = %d, want taken whole", got)
	}
	r.observeLatency(200 * time.Millisecond)
	want := int64(100e6) + int64(ewmaAlpha*float64(100e6))
	if got := r.ewmaNs.Load(); got != want {
		t.Fatalf("second sample ewma = %d, want %d", got, want)
	}
	for i := 0; i < 100; i++ {
		r.observeLatency(50 * time.Millisecond)
	}
	if got := float64(r.ewmaNs.Load()); got < 49e6 || got > 51e6 {
		t.Fatalf("ewma did not converge to the stable input: %gns", got)
	}
}

// TestLoadScoreOrdering: no sample beats any sample, and at equal EWMA
// an idle replica beats a busy one.
func TestLoadScoreOrdering(t *testing.T) {
	fresh, idle, busy := &replicaState{}, &replicaState{}, &replicaState{}
	idle.ewmaNs.Store(10e6)
	busy.ewmaNs.Store(10e6)
	busy.inflight.Store(3)
	if !(fresh.loadScore() < idle.loadScore()) {
		t.Fatal("unsampled replica should score below a sampled one")
	}
	if !(idle.loadScore() < busy.loadScore()) {
		t.Fatal("idle replica should score below a busy one at equal EWMA")
	}
}
