// Package cluster_test exercises the coordinator over real HTTP shard
// servers (external test package: server imports cluster, so these
// tests import both).
package cluster_test

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"xclean"
	"xclean/internal/cluster"
	"xclean/internal/dataset"
	"xclean/internal/server"
)

// clusterFixture is a standalone engine plus n shard servers and a
// coordinator fanning over them.
type clusterFixture struct {
	full    *xclean.Engine
	servers []*httptest.Server
	coord   *cluster.Coordinator
	queries []string
}

func newFixture(t *testing.T, shards int, cfg cluster.Config) *clusterFixture {
	t.Helper()
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 29, Articles: 300})
	opts := xclean.Options{MaxErrors: 2, Accumulators: -1}
	full := xclean.FromTree(c.Tree, opts)

	f := &clusterFixture{full: full, queries: append(c.SampleQueries(30, 6),
		"databse systems", "algoritm")}
	for i := 0; i < shards; i++ {
		sh, err := full.ShardEngine(i, shards)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		srv := httptest.NewServer(server.New(sh, server.Config{}).Handler())
		t.Cleanup(srv.Close)
		f.servers = append(f.servers, srv)
		cfg.Shards = append(cfg.Shards, []cluster.Endpoint{cluster.Endpoint(srv.URL)})
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	return f
}

// TestClusterHTTPParity: 2 and 4 shards served over HTTP must
// reproduce the standalone ranking exactly (scores within 1e-12).
func TestClusterHTTPParity(t *testing.T) {
	for _, n := range []int{2, 4} {
		f := newFixture(t, n, cluster.Config{})
		for _, q := range f.queries {
			ctx := fmt.Sprintf("shards=%d query=%q", n, q)
			want := f.full.Suggest(q)
			res, err := f.coord.Suggest(context.Background(), q, "", "", nil)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			if res.Partial {
				t.Fatalf("%s: healthy cluster answered partial\nshards: %+v", ctx, res.Shards)
			}
			if len(res.Suggestions) != len(want) {
				t.Fatalf("%s: %d vs %d suggestions\n got=%v\nwant=%v",
					ctx, len(res.Suggestions), len(want), res.Suggestions, want)
			}
			for i := range want {
				g, w := res.Suggestions[i], want[i]
				if g.Query() != w.Query || g.ResultType != w.ResultType ||
					g.Entities != w.Entities || g.EditDistance != w.EditDistance ||
					g.Witness != w.Witness {
					t.Fatalf("%s rank %d:\n got=%+v\nwant=%+v", ctx, i, g, w)
				}
				if math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
					t.Fatalf("%s rank %d: score %g vs %g", ctx, i, g.Score, w.Score)
				}
			}
		}
	}
}

// TestClusterKillShard: a dead shard degrades the answer to
// partial:true with the surviving shards' suggestions — never an
// error, and well within the shard deadline.
func TestClusterKillShard(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{Timeout: 5 * time.Second})
	q := f.queries[0]
	f.servers[1].Close()

	start := time.Now()
	res, err := f.coord.Suggest(context.Background(), q, "", "", nil)
	if err != nil {
		t.Fatalf("degraded cluster errored: %v", err)
	}
	if took := time.Since(start); took > 4*time.Second {
		t.Fatalf("degraded answer took %v", took)
	}
	if !res.Partial {
		t.Fatalf("dead shard not reported partial: %+v", res.Shards)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("surviving shard contributed no suggestions")
	}
	states := map[string]int{}
	for _, s := range res.Shards {
		states[s.State]++
	}
	if states["ok"] != 1 || states["ok"]+states["error"]+states["timeout"] != 2 {
		t.Fatalf("shard states = %+v", res.Shards)
	}
}

// TestClusterHedgedRetry: a shard failing exactly once answers via the
// hedged retry — final state ok, Hedged set, full (non-partial)
// answer.
func TestClusterHedgedRetry(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{})
	var failOnce atomic.Bool
	failOnce.Store(true)
	inner := f.servers[1].Config.Handler
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failOnce.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(f.servers[0].URL, flaky.URL),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Suggest(context.Background(), f.queries[0], "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hedged retry did not recover: %+v", res.Shards)
	}
	s := res.Shards[1]
	if s.State != "ok" || !s.Hedged {
		t.Fatalf("flaky shard status = %+v, want ok+hedged", s)
	}
	for _, m := range coord.MetricsSnapshot() {
		if m.Shard == s.Shard && m.Hedges == 0 {
			t.Fatalf("hedge not counted in metrics: %+v", m)
		}
	}
}

// TestClusterAllShardsDown: every shard unreachable still yields a
// well-formed (empty, partial) answer rather than an error.
func TestClusterAllShardsDown(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{Timeout: 2 * time.Second})
	f.servers[0].Close()
	f.servers[1].Close()

	res, err := f.coord.Suggest(context.Background(), f.queries[0], "", "", nil)
	if err != nil {
		t.Fatalf("all-down cluster errored: %v", err)
	}
	if !res.Partial || len(res.Suggestions) != 0 {
		t.Fatalf("all-down answer = %+v", res)
	}
	for _, s := range res.Shards {
		if s.State == "ok" {
			t.Fatalf("dead shard reported ok: %+v", s)
		}
	}
}

// TestClusterDeadlinePropagation: the caller's context deadline caps
// the fan-out even below the configured shard timeout; a hanging
// shard comes back as a timeout, not a hang.
func TestClusterDeadlinePropagation(t *testing.T) {
	f := newFixture(t, 1, cluster.Config{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)

	coord, err := cluster.New(cluster.Config{
		Shards:  cluster.SingleReplica(f.servers[0].URL, hang.URL),
		Timeout: 30 * time.Second, // deliberately far above the ctx deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := coord.Suggest(ctx, f.queries[0], "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("fan-out ignored ctx deadline: took %v", took)
	}
	if !res.Partial {
		t.Fatalf("hanging shard not reported: %+v", res.Shards)
	}
	if s := res.Shards[1]; s.State != "timeout" {
		t.Fatalf("hanging shard state = %+v, want timeout", s)
	}
}

// TestClusterHealth: the probe reports per-shard liveness.
func TestClusterHealth(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{Timeout: 2 * time.Second})
	f.servers[1].Close()
	hs := f.coord.Health(context.Background())
	if len(hs) != 2 {
		t.Fatalf("%d health entries", len(hs))
	}
	if !hs[0].Healthy || hs[1].Healthy {
		t.Fatalf("health = %+v", hs)
	}
	if hs[1].Error == "" {
		t.Fatal("dead shard reported no error")
	}
}
