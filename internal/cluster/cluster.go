// Package cluster implements the scatter-gather serving layer: a
// coordinator that fans a suggestion query out over entity-partitioned
// shard servers and merges their partial scores into the global top-k.
//
// A shard is an ordinary xserve node serving an index built with
// `xclean -save-index -shard i/n` (invindex.Index.ShardEntities): it
// holds the posting lists and entity tables of a contiguous range of
// top-level entity roots plus every collection-global statistic, and
// answers GET /shard/suggest with its γ-bounded partial accumulator
// table (core.PartialSet) in a versioned JSON envelope. The
// coordinator adds per-candidate partial sums and per-type entity
// counts across shards (Eq. 8 of the paper is additive over disjoint
// entities), recomputes error-model weights once from the union of the
// shards' variant hits, and re-ranks to top-k — see core.MergePartials
// for the correctness argument.
//
// The fan-out propagates the caller's context deadline as the
// per-shard HTTP timeout, hedges one retry per shard (fired early when
// the first attempt fails fast, or after HedgeAfter for stragglers),
// and degrades gracefully: when a shard times out or fails, the
// coordinator returns the surviving shards' merged answer marked
// Partial with per-shard statuses, rather than an error or a hang.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xclean/internal/core"
	"xclean/internal/eval"
	"xclean/internal/obs"
)

// WireVersion is the version of the /shard/suggest JSON envelope. The
// coordinator rejects responses from shards speaking a different
// version instead of silently mis-merging.
const WireVersion = 1

// ShardResponse is the versioned wire envelope a shard returns from
// GET /shard/suggest. The partial set is embedded, so the JSON object
// carries keywords/typeNorms/candidates at the top level next to the
// envelope fields.
type ShardResponse struct {
	Version    int     `json:"version"`
	Corpus     string  `json:"corpus,omitempty"`
	Query      string  `json:"query"`
	RequestID  string  `json:"requestId,omitempty"`
	TookMillis float64 `json:"tookMillis"`
	// TraceSpan is the shard's span subtree (its server span parenting
	// the engine stage spans) when the request carried a sampled
	// traceparent; the coordinator stitches it under the attempt span
	// whose ID it parents to. Absent on untraced requests — the wire
	// cost of tracing is zero when off.
	TraceSpan *obs.SpanNode `json:"traceSpan,omitempty"`
	core.PartialSet
}

// Shard identifies one shard server.
type Shard struct {
	// Name labels the shard in statuses, logs, and metric series.
	Name string `json:"name"`
	// URL is the shard's base URL (scheme://host:port).
	URL string `json:"url"`
}

// Config configures a Coordinator.
type Config struct {
	// Shards lists the shard servers as host:port or full URLs, in
	// shard order (shard order is summation order; keep it stable so
	// merged scores are reproducible).
	Shards []string
	// Corpus, when set, is forwarded as ?corpus= on every fan-out (for
	// shard servers that serve multiple corpora through the catalog).
	Corpus string
	// Beta is the error-model penalty β; it must match the shards'
	// engine configuration (0 = the shared default).
	Beta float64
	// K is the number of suggestions returned (0 = 10).
	K int
	// Timeout bounds each coordinated request (default 2s). The
	// effective per-request budget is min(Timeout, caller deadline).
	Timeout time.Duration
	// HedgeAfter is how long to wait on a shard before hedging the one
	// retry (default Timeout/4). A fast failure hedges immediately.
	HedgeAfter time.Duration
	// Client is the HTTP client for fan-out (default: a dedicated
	// keep-alive client).
	Client *http.Client
	// Logger receives shard-failure logs (default slog.Default).
	Logger *slog.Logger
}

// AttemptStatus reports one fan-out attempt against one shard — the
// first try or the hedged retry — so a partial or slow answer is
// diagnosable from the response envelope alone.
type AttemptStatus struct {
	// Attempt is the ordinal (0 = first try, 1 = hedged retry).
	Attempt int `json:"attempt"`
	// Hedge marks the hedged retry.
	Hedge bool `json:"hedge,omitempty"`
	// State is "ok", "error", "timeout", or "abandoned" (still in
	// flight when another attempt won or the budget died; its work was
	// discarded).
	State      string  `json:"state"`
	Error      string  `json:"error,omitempty"`
	TookMillis float64 `json:"tookMillis"`
}

// ShardStatus reports one shard's outcome within one coordinated
// request.
type ShardStatus struct {
	Shard      string  `json:"shard"`
	State      string  `json:"state"` // "ok", "error", or "timeout"
	Error      string  `json:"error,omitempty"`
	TookMillis float64 `json:"tookMillis"`
	// Candidates is the size of the shard's partial candidate table
	// (0 unless State is "ok").
	Candidates int `json:"candidates"`
	// Hedged reports that the hedged retry fired for this shard.
	Hedged bool `json:"hedged,omitempty"`
	// Attempts itemizes every attempt (first try and hedge) with its
	// own outcome and latency, in launch order.
	Attempts []AttemptStatus `json:"attempts,omitempty"`
}

// Result is one coordinated suggestion answer.
type Result struct {
	Suggestions []core.MergedSuggestion
	// Partial is true when at least one shard did not contribute — the
	// suggestions are the surviving shards' best answer.
	Partial bool
	// Shards holds per-shard statuses in shard order.
	Shards []ShardStatus
	// Corpus is the corpus name negotiated from shard responses.
	Corpus string
	// Spans holds the attempt span trees of a traced request (one
	// "shard.attempt" client span per attempt, shard subtrees stitched
	// under winning attempts), in shard order, for the caller to attach
	// under its server span. Nil on untraced requests.
	Spans []*obs.SpanNode
}

// shardMetrics aggregates one shard's fan-out counters across
// requests.
type shardMetrics struct {
	sink      *obs.Sink // ok-call latency, for the labeled exposition
	latency   eval.LatencyRecorder
	requests  atomic.Int64
	failures  atomic.Int64
	timeouts  atomic.Int64
	hedges    atomic.Int64
	lastError atomic.Pointer[string]
}

// Coordinator fans suggestion queries out over shard servers and
// merges the partials. Safe for concurrent use.
type Coordinator struct {
	cfg     Config
	shards  []Shard
	metrics []*shardMetrics
	client  *http.Client
	logger  *slog.Logger

	mu     sync.Mutex
	corpus string // negotiated from shard responses
}

// New builds a coordinator over the configured shards.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client, logger: cfg.Logger}
	if c.client == nil {
		c.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.logger == nil {
		c.logger = slog.Default()
	}
	for i, raw := range cfg.Shards {
		addr := strings.TrimSpace(raw)
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty shard address at position %d", i)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		u, err := url.Parse(addr)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad shard address %q", raw)
		}
		c.shards = append(c.shards, Shard{
			Name: fmt.Sprintf("shard%d@%s", i, u.Host),
			URL:  strings.TrimRight(addr, "/"),
		})
		c.metrics = append(c.metrics, &shardMetrics{sink: obs.NewSink()})
	}
	return c, nil
}

// Shards returns the shard set in shard order.
func (c *Coordinator) Shards() []Shard {
	return append([]Shard(nil), c.shards...)
}

// Corpus returns the corpus name last negotiated from shard responses
// ("" before the first successful fan-out against a named corpus).
func (c *Coordinator) Corpus() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.corpus == "" {
		return c.cfg.Corpus
	}
	return c.corpus
}

func (c *Coordinator) timeout() time.Duration {
	if c.cfg.Timeout > 0 {
		return c.cfg.Timeout
	}
	return 2 * time.Second
}

func (c *Coordinator) hedgeAfter() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	return c.timeout() / 4
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}

// Suggest coordinates one query: fan out to every shard (bounded by
// min(Config.Timeout, ctx deadline), with one hedged retry per shard),
// then merge the surviving partial sets in shard order. requestID, when
// non-empty, is forwarded as X-Request-Id so shard slow-logs correlate
// with the coordinator's. tc, when non-nil, marks the request sampled:
// every attempt carries a W3C traceparent header (trace ID from tc, a
// fresh span ID per attempt) and the result carries the stitched
// attempt span trees. Shard failures do not produce an error: the
// result carries Partial=true and per-shard statuses, and with every
// shard down the suggestion list is empty but the response is still
// well-formed. The only error is a merge-level inconsistency (shards
// answering with different keyword arity).
func (c *Coordinator) Suggest(ctx context.Context, query, corpus, requestID string, tc *obs.TraceContext) (*Result, error) {
	if corpus == "" {
		corpus = c.cfg.Corpus
	}
	budget := c.timeout()
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	cctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	type slot struct {
		resp  *ShardResponse
		st    ShardStatus
		spans []*obs.SpanNode
	}
	slots := make([]slot, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st, spans := c.callShard(cctx, i, query, corpus, requestID, tc)
			slots[i] = slot{resp: resp, st: st, spans: spans}
		}(i)
	}
	wg.Wait()

	res := &Result{Shards: make([]ShardStatus, len(slots))}
	sets := make([]core.PartialSet, 0, len(slots))
	for i, sl := range slots {
		res.Shards[i] = sl.st
		res.Spans = append(res.Spans, sl.spans...)
		if sl.resp == nil {
			res.Partial = true
			continue
		}
		if res.Corpus == "" {
			res.Corpus = sl.resp.Corpus
		}
		sets = append(sets, sl.resp.PartialSet)
	}
	if res.Corpus != "" {
		c.mu.Lock()
		c.corpus = res.Corpus
		c.mu.Unlock()
	}
	sugs, err := core.MergePartials(core.MergeConfig{Beta: c.cfg.Beta, K: c.cfg.K}, sets)
	if err != nil {
		return nil, err
	}
	res.Suggestions = sugs
	return res, nil
}

// liveAttempt is callShard's bookkeeping for one launched attempt.
// Only the coordinating goroutine touches it (launches and channel
// receives all happen there).
type liveAttempt struct {
	span    obs.SpanID // per-attempt span ID (zero when untraced)
	started time.Time
	done    bool
	state   string // "ok", "error" once done
	err     string
	took    time.Duration
}

// callShard runs one shard's fan-out leg: a first attempt, plus at
// most one hedged retry — fired after hedgeAfter for stragglers, or
// immediately when the first attempt fails fast (a refused connection
// should not wait out the hedge delay). The first successful attempt
// wins; a losing in-flight attempt is abandoned to the context (its
// goroutine drains into the buffered channel). Every attempt is
// itemized in the returned status; on a traced request (tc non-nil)
// each attempt also carried its own traceparent and comes back as one
// "shard.attempt" client span, the winner parenting the shard's
// returned subtree.
func (c *Coordinator) callShard(ctx context.Context, i int, query, corpus, requestID string, tc *obs.TraceContext) (*ShardResponse, ShardStatus, []*obs.SpanNode) {
	s := c.shards[i]
	m := c.metrics[i]
	m.requests.Add(1)
	start := time.Now()

	type outcome struct {
		ord  int
		resp *ShardResponse
		err  error
		took time.Duration
	}
	ch := make(chan outcome, 2)
	var attempts []liveAttempt
	launch := func() {
		ord := len(attempts)
		a := liveAttempt{started: time.Now()}
		header := ""
		if tc != nil {
			a.span = obs.NewSpanID()
			header = obs.Traceparent(tc.TraceID, a.span, true)
		}
		attempts = append(attempts, a)
		go func() {
			resp, err := c.fetch(ctx, s, query, corpus, requestID, header)
			ch <- outcome{ord: ord, resp: resp, err: err, took: time.Since(a.started)}
		}()
	}
	launch()

	// finish assembles the per-attempt statuses and (when traced) the
	// attempt spans: completed attempts keep their recorded outcome;
	// attempts still in flight are marked abandoned with their elapsed
	// time so far. winner is the winning attempt's ordinal (-1 = none);
	// the shard's returned subtree is stitched under its span.
	finish := func(winner int, resp *ShardResponse) ([]AttemptStatus, []*obs.SpanNode) {
		sts := make([]AttemptStatus, len(attempts))
		var spans []*obs.SpanNode
		for j := range attempts {
			a := &attempts[j]
			st := AttemptStatus{Attempt: j, Hedge: j > 0}
			if a.done {
				st.State, st.Error, st.TookMillis = a.state, a.err, millis(a.took)
			} else {
				st.State = "abandoned"
				st.TookMillis = millis(time.Since(a.started))
			}
			sts[j] = st
			if tc == nil {
				continue
			}
			node := &obs.SpanNode{
				SpanID:        a.span.String(),
				ParentSpanID:  tc.Parent.String(),
				Name:          "shard.attempt",
				Kind:          "client",
				StartUnixNano: a.started.UnixNano(),
				DurationNs:    int64(st.TookMillis * 1e6),
				Attrs: map[string]string{
					"shard":   s.Name,
					"attempt": fmt.Sprintf("%d", j),
				},
			}
			if st.Hedge {
				node.Attrs["hedge"] = "true"
			}
			switch st.State {
			case "ok":
			case "error", "timeout":
				node.Status = st.State
				node.Error = st.Error
			default:
				node.Status = "timeout"
			}
			if j == winner && resp != nil && resp.TraceSpan != nil {
				node.AddChild(resp.TraceSpan)
			}
			spans = append(spans, node)
		}
		return sts, spans
	}

	hedge := time.NewTimer(c.hedgeAfter())
	defer hedge.Stop()
	hedged := false
	pending := 1
	var lastErr error
	fail := func(state string, err error) (ShardStatus, []*obs.SpanNode) {
		m.failures.Add(1)
		if state == "timeout" {
			m.timeouts.Add(1)
		}
		msg := err.Error()
		m.lastError.Store(&msg)
		c.logger.Warn("shard fan-out failed",
			"shard", s.Name, "state", state, "hedged", hedged, "err", msg)
		sts, spans := finish(-1, nil)
		return ShardStatus{
			Shard:      s.Name,
			State:      state,
			Error:      msg,
			TookMillis: millis(time.Since(start)),
			Hedged:     hedged,
			Attempts:   sts,
		}, spans
	}
	for {
		select {
		case a := <-ch:
			pending--
			att := &attempts[a.ord]
			att.done, att.took = true, a.took
			if a.err == nil {
				att.state = "ok"
				took := time.Since(start)
				m.latency.Record(took)
				m.sink.ObserveSuggest(took, nil)
				sts, spans := finish(a.ord, a.resp)
				return a.resp, ShardStatus{
					Shard:      s.Name,
					State:      "ok",
					TookMillis: millis(took),
					Candidates: len(a.resp.Candidates),
					Hedged:     hedged,
					Attempts:   sts,
				}, spans
			}
			att.state, att.err = "error", a.err.Error()
			lastErr = a.err
			if !hedged && ctx.Err() == nil {
				hedged = true
				m.hedges.Add(1)
				pending++
				launch()
				continue
			}
			if pending == 0 {
				state := "error"
				if ctx.Err() != nil {
					state = "timeout"
				}
				st, spans := fail(state, lastErr)
				return nil, st, spans
			}
		case <-hedge.C:
			if !hedged && ctx.Err() == nil {
				hedged = true
				m.hedges.Add(1)
				pending++
				launch()
			}
		case <-ctx.Done():
			err := ctx.Err()
			if lastErr != nil {
				err = fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
			st, spans := fail("timeout", err)
			return nil, st, spans
		}
	}
}

// fetch performs one GET /shard/suggest attempt against one shard.
// traceparent, when non-empty, is the attempt's W3C trace context
// header.
func (c *Coordinator) fetch(ctx context.Context, s Shard, query, corpus, requestID, traceparent string) (*ShardResponse, error) {
	u := s.URL + "/shard/suggest?q=" + url.QueryEscape(query)
	if corpus != "" {
		u += "&corpus=" + url.QueryEscape(corpus)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("shard %s: HTTP %d: %s", s.Name, resp.StatusCode,
			strings.TrimSpace(string(body)))
	}
	var sr ShardResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard %s: bad response: %w", s.Name, err)
	}
	if sr.Version != WireVersion {
		return nil, fmt.Errorf("shard %s: wire version %d (coordinator speaks %d)",
			s.Name, sr.Version, WireVersion)
	}
	return &sr, nil
}

// ShardHealth is one shard's health-probe outcome.
type ShardHealth struct {
	Shard   string `json:"shard"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// Health probes every shard's /healthz in parallel (each probe bounded
// by the remaining context budget) and returns per-shard outcomes in
// shard order.
func (c *Coordinator) Health(ctx context.Context) []ShardHealth {
	out := make([]ShardHealth, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			h := ShardHealth{Shard: s.Name, URL: s.URL}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/healthz", nil)
			if err != nil {
				h.Error = err.Error()
				out[i] = h
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				h.Error = err.Error()
				out[i] = h
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				h.Healthy = true
			} else {
				h.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
			}
			out[i] = h
		}(i, s)
	}
	wg.Wait()
	return out
}

// ShardMetrics is the JSON snapshot of one shard's fan-out counters,
// served under /metricz.
type ShardMetrics struct {
	Shard     string            `json:"shard"`
	Requests  int64             `json:"requests"`
	Failures  int64             `json:"failures"`
	Timeouts  int64             `json:"timeouts"`
	Hedges    int64             `json:"hedges"`
	LastError string            `json:"lastError,omitempty"`
	Latency   eval.LatencyStats `json:"latency"`
}

// MetricsSnapshot returns per-shard fan-out counters in shard order.
func (c *Coordinator) MetricsSnapshot() []ShardMetrics {
	out := make([]ShardMetrics, len(c.shards))
	for i, s := range c.shards {
		m := c.metrics[i]
		sm := ShardMetrics{
			Shard:    s.Name,
			Requests: m.requests.Load(),
			Failures: m.failures.Load(),
			Timeouts: m.timeouts.Load(),
			Hedges:   m.hedges.Load(),
			Latency:  m.latency.Stats(),
		}
		if p := m.lastError.Load(); p != nil {
			sm.LastError = *p
		}
		out[i] = sm
	}
	return out
}

// WritePrometheus emits the coordinator's shard-labeled series: the
// standard engine families (per-shard fan-out latency recorded in each
// shard's sink) via the shared labeled exposition, plus the fan-out
// counters specific to the cluster layer.
func (c *Coordinator) WritePrometheus(w io.Writer) {
	sinks := make([]obs.NamedSink, len(c.shards))
	for i, s := range c.shards {
		sinks[i] = obs.NamedSink{Label: s.Name, Sink: c.metrics[i].sink}
	}
	obs.WritePrometheusLabeled(w, "xclean_cluster", "shard", sinks)
	counter := func(name, help string, v func(*shardMetrics) int64) {
		obs.WriteHeader(w, name, help, "counter")
		for i, s := range c.shards {
			obs.WriteLabeledCounterSample(w, name,
				fmt.Sprintf("shard=%q", s.Name), v(c.metrics[i]))
		}
	}
	counter("xclean_cluster_shard_failures_total",
		"Fan-out legs that exhausted their attempts without an answer.",
		func(m *shardMetrics) int64 { return m.failures.Load() })
	counter("xclean_cluster_shard_timeouts_total",
		"Fan-out legs that ran out the propagated deadline.",
		func(m *shardMetrics) int64 { return m.timeouts.Load() })
	counter("xclean_cluster_shard_hedges_total",
		"Hedged retries fired (straggler or fast-failure).",
		func(m *shardMetrics) int64 { return m.hedges.Load() })
}
